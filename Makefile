# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc quickbench

all: build

build:
	dune build @all

test:
	dune runtest

# full reproduction run: every paper table/figure at the 10K MC budget
bench:
	dune exec bench/main.exe | tee bench_output.txt

# reduced-budget pass for quick iteration
quickbench:
	SPSTA_BENCH_RUNS=500 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/timing_yield.exe
	dune exec examples/power_estimation.exe
	dune exec examples/glitch_analysis.exe
	dune exec examples/process_variation.exe
	dune exec examples/sequential_analysis.exe
	dune exec examples/gate_sizing.exe

clean:
	dune clean
