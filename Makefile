# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean doc quickbench serve-smoke session-smoke bench-json bench-compare lint check-smoke size-smoke scale-smoke static-smoke

all: build

build:
	dune build @all

test:
	dune runtest

# API reference from the .mli doc comments (requires odoc)
doc:
	dune build @doc

# full reproduction run: every paper table/figure at the 10K MC budget
bench:
	dune exec bench/main.exe | tee bench_output.txt

# reduced-budget pass for quick iteration
quickbench:
	SPSTA_BENCH_RUNS=500 dune exec bench/main.exe

# machine-readable timings -> BENCH_spsta.json (see doc/perf.md)
bench-json:
	dune exec bench/main.exe -- --json BENCH_spsta.json

# tracked regression gate: re-time the tracked suite (s344, s1238,
# c100k), append a per-commit record to the append-only history file,
# and fail on wall-time regressions against the committed baseline
# document (see doc/perf.md for the workflow).  The default threshold
# is 15%; the gate runs at 25% because shared runners show sustained
# ~1.2x scheduler drift on perfectly stable entries — real kernel
# regressions land well beyond that
bench-compare:
	SPSTA_BENCH_CIRCUITS=s344,s1238 SPSTA_BENCH_RUNS=500 SPSTA_BENCH_SCALE=c100k \
	dune exec bench/main.exe -- --json BENCH_current.json \
	  --history bench_history.jsonl --compare BENCH_spsta.json --threshold 0.25

examples:
	dune exec examples/quickstart.exe
	dune exec examples/timing_yield.exe
	dune exec examples/power_estimation.exe
	dune exec examples/glitch_analysis.exe
	dune exec examples/process_variation.exe
	dune exec examples/sequential_analysis.exe
	dune exec examples/gate_sizing.exe

# static netlist/model checking over the whole bundled suite; exits
# non-zero on any Error-severity finding (see doc/lint.md)
lint:
	dune exec bin/spsta_cli.exe -- lint c17 s27 s208 s298 s344 s349 s382 s386 s526 s1196 s1238

# run every analyzer on s27 under the engine-wired invariant sanitizer:
# any NaN, negative mass, lost probability mass or non-monotone CDF at
# any gate fails the target with the offending net named
check-smoke:
	dune exec bin/spsta_cli.exe -- check s27
	dune exec bin/spsta_cli.exe -- check c17

# statistical gate sizing under the sanitizer on a small ISCAS circuit:
# the run must commit moves that improve the 99th-percentile chip delay
# (the CLI prints "(improved)" exactly when objective_after < before)
size-smoke:
	@dune exec bin/spsta_cli.exe -- size s344 --max-moves 24 --check | tee /tmp/spsta_size_smoke.txt
	@grep -q "(improved)" /tmp/spsta_size_smoke.txt || { \
	  echo "size-smoke: FAILED (objective did not improve)"; exit 1; }
	@echo "size-smoke: ok"

# bounded 100k-gate scale gate: generation and SSTA wall-time budgets,
# bit-identity of the pooled schedule, the dirty-cone update speedup,
# and (on multi-core hosts only) a ?domains speedup floor
scale-smoke:
	dune exec bench/main.exe -- --scale-smoke
	@echo "scale-smoke: ok"

# the lib/analysis pass stack end to end: all four passes over the
# bundled ISCAS suite and the 100k-gate profile.  --min-regions 1 makes
# the CLI exit nonzero unless every circuit yields at least one
# reconvergent region (they all do, s5378 by the hundred), and the
# greps assert the JSON report shape the server/bench consumers parse
static-smoke:
	dune exec bin/spsta_cli.exe -- static c17 s27 s344 s1196 s5378 --json --min-regions 1 \
	  > /tmp/spsta_static_smoke.json
	@for key in '"facts"' '"constants"' '"reconvergent_regions"' '"unobservable_gates"' \
	  '"never_critical_gates"' '"regions"' '"t_lb"'; do \
	  grep -q "$$key" /tmp/spsta_static_smoke.json || { \
	    echo "static-smoke: FAILED (missing $$key in JSON report)"; exit 1; }; \
	done
	dune exec bin/spsta_cli.exe -- static c100k --json --min-regions 1 \
	  > /tmp/spsta_static_c100k.json
	@grep -q '"circuit":"c100k"' /tmp/spsta_static_c100k.json || { \
	  echo "static-smoke: FAILED (no c100k report)"; exit 1; }
	@echo "static-smoke: ok"

# pipe a 3-request JSONL file through the analysis server and check that
# every request is answered ok (see doc/server.md for the protocol)
serve-smoke:
	@dune exec bin/spsta_cli.exe -- serve < examples/serve_requests.jsonl \
	  > /tmp/spsta_serve_smoke.jsonl 2>/dev/null
	@ok=$$(grep -c '"status":"ok"' /tmp/spsta_serve_smoke.jsonl); \
	if [ "$$ok" -eq 3 ]; then \
	  echo "serve-smoke: 3/3 responses ok"; \
	else \
	  echo "serve-smoke: FAILED ($$ok/3 ok)"; \
	  cat /tmp/spsta_serve_smoke.jsonl; \
	  exit 1; \
	fi

# stateful session smoke over a real unix socket: stream 120 ECO
# mutations on s5378 through one session; the final state must be
# bit-identical to a from-scratch sweep of the mutated circuit with a
# >=5x per-mutation speedup, the server must drain cleanly on SIGTERM,
# and a second instance on the same --store must answer a
# previously-computed batch request as a warm hit without re-analysing
session-smoke:
	@dune build bin/spsta_cli.exe
	@rm -f /tmp/spsta_session.sock /tmp/spsta_session.store
	@_build/default/bin/spsta_cli.exe serve \
	  --socket /tmp/spsta_session.sock --store /tmp/spsta_session.store \
	  2>/tmp/spsta_session_server.log & \
	server=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S /tmp/spsta_session.sock ] && break; sleep 0.1; \
	done; \
	_build/default/bin/spsta_cli.exe session --socket /tmp/spsta_session.sock \
	  --exercise s5378 --mutations 120 --min-speedup 5 \
	  || { echo "session-smoke: FAILED (exercise)"; kill $$server; exit 1; }; \
	kill -TERM $$server; \
	wait $$server \
	  || { echo "session-smoke: FAILED (server did not drain cleanly)"; exit 1; }
	@_build/default/bin/spsta_cli.exe session \
	  --script examples/session_requests.jsonl > /dev/null \
	  || { echo "session-smoke: FAILED (example transcript replay)"; exit 1; }
	@printf '%s\n%s\n' \
	  '{"id":"warm","kind":"ssta","circuit":"s344"}' \
	  '{"id":"st","kind":"stats"}' > /tmp/spsta_session_batch.jsonl
	@_build/default/bin/spsta_cli.exe batch /tmp/spsta_session_batch.jsonl \
	  --store /tmp/spsta_session.store > /dev/null
	@_build/default/bin/spsta_cli.exe batch /tmp/spsta_session_batch.jsonl \
	  --store /tmp/spsta_session.store > /tmp/spsta_session_warm.jsonl
	@grep -o '"store":{[^}]*}' /tmp/spsta_session_warm.jsonl \
	  | grep -q '"hits":1' \
	  || { echo "session-smoke: FAILED (no warm store hit on restart)"; \
	       cat /tmp/spsta_session_warm.jsonl; exit 1; }
	@echo "session-smoke: ok"

clean:
	dune clean
