examples/gate_sizing.ml: Array Format Hashtbl List Printf Spsta_core Spsta_experiments Spsta_netlist Sys
