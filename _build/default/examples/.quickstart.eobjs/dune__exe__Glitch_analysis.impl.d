examples/glitch_analysis.ml: Array Format Hashtbl List Printf Spsta_core Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_util Sys
