examples/glitch_analysis.mli:
