examples/power_estimation.ml: Array Format List Printf Spsta_core Spsta_experiments Spsta_netlist Spsta_power Spsta_sim Sys
