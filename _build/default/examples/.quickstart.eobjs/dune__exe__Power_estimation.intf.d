examples/power_estimation.mli:
