examples/process_variation.mli:
