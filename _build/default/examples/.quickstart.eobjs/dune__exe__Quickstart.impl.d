examples/quickstart.ml: Array Format List Printf Spsta_core Spsta_experiments Spsta_netlist Spsta_sim Spsta_util Sys
