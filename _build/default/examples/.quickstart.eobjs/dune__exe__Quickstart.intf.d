examples/quickstart.mli:
