examples/sequential_analysis.mli:
