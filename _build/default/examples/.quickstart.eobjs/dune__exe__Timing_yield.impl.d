examples/timing_yield.ml: Array Format List Printf Spsta_core Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_ssta Spsta_util Sys
