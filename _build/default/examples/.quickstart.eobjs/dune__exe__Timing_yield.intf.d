examples/timing_yield.mli:
