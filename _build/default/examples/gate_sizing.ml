(* Statistical gate sizing with incremental SPSTA.

   A toy optimisation loop in the style the paper's intro gestures at
   ("efficient, incremental, and suitable for optimization"):

   - every gate starts in its slow, low-power variant (delay 1.3);
   - each round, upsize (delay 0.8) the yet-unsized gate most critical to
     the chip-delay distribution;
   - re-analyse *incrementally* (only the resized gate's fanout cone) and
     stop when the clock needed for 99% timing yield meets the target.

   The criticality signal and the yield metric both come from SPSTA's
   chip-delay distribution — statistics SSTA cannot provide.

     dune exec examples/gate_sizing.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Chip_delay = Spsta_core.Chip_delay
module A = Spsta_core.Analyzer.Moments
module Workloads = Spsta_experiments.Workloads

let slow = 1.3
let fast = 0.8

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s298" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;
  let spec = Workloads.spec_fn Workloads.Case_i in
  let sized = Hashtbl.create 64 in
  let delay_of g = if Hashtbl.mem sized g then fast else slow in
  let clock_99 () =
    let r = Chip_delay.compute ~delay_of circuit ~spec in
    Chip_delay.clock_for_yield r 0.99
  in
  let baseline_all_fast =
    let r = Chip_delay.compute ~delay_of:(fun _ -> fast) circuit ~spec in
    Chip_delay.clock_for_yield r 0.99
  in
  let start = clock_99 () in
  (* aim 30% of the way from all-slow to all-fast *)
  let target = start -. (0.3 *. (start -. baseline_all_fast)) in
  Printf.printf
    "99%%-yield clock: all-slow %.3f, all-fast %.3f, target %.3f\n" start baseline_all_fast target;
  (* the analysis result is maintained incrementally across resizings *)
  let analysis = ref (A.analyze ~delay_of circuit ~spec) in
  let resized = ref 0 in
  let rec optimise current =
    if current <= target then ()
    else begin
      (* criticality: endpoint with the largest mean rise arrival, then
         the deepest unsized gate on its input cone *)
      let e = A.critical_endpoint !analysis `Rise in
      let rec pick g =
        if not (Hashtbl.mem sized g) then Some g
        else
          match Circuit.driver circuit g with
          | Circuit.Gate { inputs; _ } ->
            let candidates = Array.to_list inputs in
            let best =
              List.fold_left
                (fun acc i ->
                  match Circuit.driver circuit i with
                  | Circuit.Gate _ -> (
                    match acc with
                    | Some b when Circuit.level circuit b >= Circuit.level circuit i -> acc
                    | Some _ | None -> Some i )
                  | Circuit.Input | Circuit.Dff_output _ -> acc)
                None candidates
            in
            ( match best with None -> None | Some i -> pick i )
          | Circuit.Input | Circuit.Dff_output _ -> None
      in
      match pick e with
      | None -> Printf.printf "no more gates to resize on the critical cone\n"
      | Some g ->
        Hashtbl.replace sized g ();
        incr resized;
        (* incremental: only g's fanout cone is recomputed *)
        analysis := A.update ~delay_of !analysis ~changed:[ g ] ~spec;
        let now = clock_99 () in
        Printf.printf "  upsized %-10s -> 99%% clock %.3f\n" (Circuit.net_name circuit g) now;
        optimise now
    end
  in
  optimise start;
  Printf.printf "met target with %d of %d gates upsized (%.0f%%)\n" !resized
    (Circuit.gate_count circuit)
    (100.0 *. float_of_int !resized /. float_of_int (Circuit.gate_count circuit))
