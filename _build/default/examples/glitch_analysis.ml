(* Glitch accounting: two-value vs four-value SPSTA (paper §3.3).

   Two-value SPSTA (eq. 8) propagates every input transition through the
   Boolean difference, so a rising and a falling input of an AND gate
   each contribute — even though the output only pulses and settles back
   (a glitch).  Four-value SPSTA evaluates start and end levels
   separately, so simultaneous opposite transitions cancel.

   The gap between the two is the glitch activity: real power, but not a
   logic transition that timing analysis should count.

     dune exec examples/glitch_analysis.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module Two_value = Spsta_core.Two_value
module Gate_kind = Spsta_logic.Gate_kind
module Workloads = Spsta_experiments.Workloads

let gate_demo () =
  (* the canonical example: AND(r, f) *)
  print_endline "AND gate, x1 rising (t=1) and x2 falling (t=2), both certain:";
  let spec_rise =
    Spsta_sim.Input_spec.make
      ~rise_arrival:(Spsta_dist.Normal.make ~mu:1.0 ~sigma:0.1)
      ~p_zero:0.0 ~p_one:0.0 ~p_rise:1.0 ~p_fall:0.0 ()
  in
  let spec_fall =
    Spsta_sim.Input_spec.make
      ~fall_arrival:(Spsta_dist.Normal.make ~mu:2.0 ~sigma:0.1)
      ~p_zero:0.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:1.0 ()
  in
  let x1 = Analyzer.Moments.source_signal spec_rise in
  let x2 = Analyzer.Moments.source_signal spec_fall in
  let y = Analyzer.Moments.gate_output Gate_kind.And [ x1; x2 ] in
  Printf.printf "  four-value output: %s (transition probability %.2f: the 0->1->0 pulse is a glitch)\n"
    (Format.asprintf "%a" Four_value.pp y.Analyzer.Moments.probs)
    (Four_value.toggling_rate y.Analyzer.Moments.probs)

let () =
  gate_demo ();
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s386" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "@.circuit: %a@." Circuit.pp_summary circuit;
  let spec = Workloads.spec_fn Workloads.Case_i in
  let two = Two_value.compute circuit ~spec in
  let four = Analyzer.Moments.analyze circuit ~spec in
  let rows =
    List.map
      (fun e ->
        let with_glitches = Two_value.toggling_rate two e in
        let logic_only =
          Four_value.toggling_rate (Analyzer.Moments.signal four e).Analyzer.Moments.probs
        in
        (Circuit.net_name circuit e, with_glitches, logic_only))
      (Circuit.endpoints circuit)
  in
  print_endline "endpoint activity (transitions/cycle):";
  print_endline "  net          eq.8 (with glitches)   four-value (logic)   glitch share";
  List.iter
    (fun (net, wg, lo) ->
      let share = if wg > 0.0 then (wg -. lo) /. wg else 0.0 in
      Printf.printf "  %-12s %20.3f %20.3f %14.1f%%\n" net wg lo (100.0 *. share))
    rows;
  let total sel = List.fold_left (fun acc (_, wg, lo) -> acc +. sel (wg, lo)) 0.0 rows in
  Printf.printf "  totals: with glitches %.3f, logic-only %.3f\n" (total fst) (total snd);

  (* ground truth: event-driven transient simulation counts the real
     transitions, glitch pulses included *)
  let rng = Spsta_util.Rng.create ~seed:11 in
  let runs = 4000 in
  let measured = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace measured e 0) (Circuit.endpoints circuit);
  for _ = 1 to runs do
    let r =
      Spsta_sim.Event_sim.run circuit
        ~source_values:(fun s -> Spsta_sim.Input_spec.sample rng (spec s))
    in
    List.iter
      (fun e ->
        Hashtbl.replace measured e
          (Hashtbl.find measured e
          + Spsta_sim.Event_sim.transition_count (Spsta_sim.Event_sim.waveform r e)))
      (Circuit.endpoints circuit)
  done;
  Printf.printf "\nevent-driven transient simulation (%d cycles), measured transitions/cycle:\n" runs;
  Printf.printf "  net          eq.8 prediction   measured (event sim)\n";
  List.iter
    (fun (net, wg, _) ->
      let e = Circuit.find_exn circuit net in
      let observed = float_of_int (Hashtbl.find measured e) /. float_of_int runs in
      Printf.printf "  %-12s %15.3f %22.3f\n" net wg observed)
    rows
