(* Power estimation from signal statistics (paper §2.2 and §3.1).

   The integral of a t.o.p. function is a toggling rate, so the same
   SPSTA pass that produces timing distributions also produces switching
   activity.  This example compares three activity estimates on a suite
   circuit:

     - transition density (eq. 6, Boolean-difference weighted, glitches
       included),
     - SPSTA four-value transition probabilities (glitch-filtered),
     - Monte Carlo observed transition frequencies,

   and converts each into a dynamic power figure.

     dune exec examples/power_estimation.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module Monte_carlo = Spsta_sim.Monte_carlo
module Transition_density = Spsta_power.Transition_density
module Power_model = Spsta_power.Power_model
module Workloads = Spsta_experiments.Workloads

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s298" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;
  List.iter
    (fun case ->
      let spec = Workloads.spec_fn case in
      let density = Transition_density.of_input_specs circuit ~spec in
      let spsta = Analyzer.Moments.analyze circuit ~spec in
      let mc = Monte_carlo.simulate ~runs:10_000 ~seed:3 circuit ~spec in
      let spsta_rate id =
        Four_value.toggling_rate (Analyzer.Moments.signal spsta id).Analyzer.Moments.probs
      in
      let mc_rate id = Monte_carlo.toggling_rate (Monte_carlo.stats mc id) in
      let total f =
        let acc = ref 0.0 in
        for id = 0 to Circuit.num_nets circuit - 1 do
          acc := !acc +. f id
        done;
        !acc
      in
      let power f = Power_model.dynamic_power circuit ~density:f in
      Printf.printf
        "case %s:\n\
        \  activity (transitions/cycle): density %.2f | spsta (glitch-free) %.2f | mc %.2f\n\
        \  dynamic power:                density %.3e W | spsta %.3e W | mc %.3e W\n"
        (Workloads.case_name case)
        (total (Transition_density.density density))
        (total spsta_rate) (total mc_rate)
        (power (Transition_density.density density))
        (power spsta_rate) (power mc_rate))
    Workloads.all_cases;
  print_endline "\ntop 5 power nets (case I, transition density):";
  let density =
    Transition_density.of_input_specs circuit ~spec:(Workloads.spec_fn Workloads.Case_i)
  in
  let hot = Power_model.per_net_power circuit ~density:(Transition_density.density density) in
  List.iteri
    (fun i (id, w) ->
      if i < 5 then Printf.printf "  %-12s %.3e W\n" (Circuit.net_name circuit id) w)
    hot
