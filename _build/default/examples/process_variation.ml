(* Process variation and spatial correlation.

   The paper's §1 argues process variation is a second-order effect on
   top of input statistics, and that its impact depends on the input
   vector.  This example puts numbers on both claims:

   1. canonical-form SSTA under three variation splits with the same
      total per-gate sigma — pure global, pure spatial, pure random —
      showing how correlation structure changes the chip-delay sigma
      without changing any per-gate moment;
   2. SPSTA with and without per-gate delay noise, against Monte Carlo,
      showing the input-statistics-induced spread dominating.

     dune exec examples/process_variation.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Param_model = Spsta_variation.Param_model
module Canonical = Spsta_variation.Canonical
module Canonical_ssta = Spsta_variation.Canonical_ssta
module Analyzer = Spsta_core.Analyzer
module Monte_carlo = Spsta_sim.Monte_carlo
module Workloads = Spsta_experiments.Workloads
module Stats = Spsta_util.Stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s386" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;

  (* part 1: correlation structure at fixed per-gate sigma *)
  print_endline "canonical-form SSTA chip delay, total per-gate sigma 0.15:";
  let total = 0.15 in
  let splits =
    [ ("all global (fully correlated)", (total, 0.0, 0.0));
      ("all spatial (region-correlated)", (0.0, total, 0.0));
      ("all random (independent)", (0.0, 0.0, total)) ]
  in
  List.iter
    (fun (label, (sg, ss, sr)) ->
      let model =
        Param_model.create ~sigma_global:sg ~sigma_spatial:ss ~sigma_random:sr ~grid:4 ()
      in
      let placement = Param_model.place model circuit in
      let r = Canonical_ssta.analyze model placement circuit in
      let chip = Canonical_ssta.chip_delay r in
      Printf.printf "  %-34s mean %.3f sigma %.3f\n" label chip.Canonical.mean
        (Canonical.stddev chip))
    splits;

  (* part 2: input statistics vs process variation in SPSTA and MC.
     Pick the endpoint the Monte Carlo reference sees as critical (the
     SPSTA-critical one can have a transition probability too small for
     the MC sample to resolve). *)
  print_endline "\nSPSTA vs MC critical rise endpoint (case I inputs):";
  let spec = Workloads.spec_fn Workloads.Case_i in
  let baseline = Monte_carlo.simulate ~runs:5000 ~seed:5 circuit ~spec in
  let e =
    let mean_of e =
      let s = Monte_carlo.stats baseline e in
      if s.Monte_carlo.count_rise >= 50 then Stats.acc_mean s.Monte_carlo.rise_times
      else neg_infinity
    in
    match Circuit.endpoints circuit with
    | first :: rest ->
      List.fold_left (fun best x -> if mean_of x > mean_of best then x else best) first rest
    | [] -> failwith "circuit has no endpoints"
  in
  List.iter
    (fun delay_sigma ->
      let spsta = Analyzer.Moments.analyze ~delay_sigma circuit ~spec in
      let mu, sigma, _ =
        Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) `Rise
      in
      let mc = Monte_carlo.simulate ~delay_sigma ~runs:5000 ~seed:5 circuit ~spec in
      let s = Monte_carlo.stats mc e in
      Printf.printf
        "  gate-delay sigma %.2f: SPSTA mu %.3f sigma %.3f | MC mu %.3f sigma %.3f\n"
        delay_sigma mu sigma
        (Stats.acc_mean s.Monte_carlo.rise_times)
        (Stats.acc_stddev s.Monte_carlo.rise_times))
    [ 0.0; 0.15; 0.3 ];
  print_endline
    "\nNote: the sigma added by moderate process variation is small next to the\n\
     spread the input statistics already produce — the paper's ordering of effects."
