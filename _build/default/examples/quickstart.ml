(* Quickstart: parse a .bench netlist, attach input statistics, run SPSTA,
   and print per-endpoint timing statistics next to a Monte Carlo check.

     dune exec examples/quickstart.exe            # uses the embedded s27
     dune exec examples/quickstart.exe -- my.bench *)

module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Monte_carlo = Spsta_sim.Monte_carlo
module Stats = Spsta_util.Stats

let () =
  (* 1. load a circuit: a .bench file from the command line, or the real
     ISCAS'89 s27 that ships with the library *)
  let circuit =
    if Array.length Sys.argv > 1 then Spsta_netlist.Bench_io.parse_file Sys.argv.(1)
    else Spsta_experiments.Benchmarks.s27 ()
  in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;

  (* 2. describe the input statistics: every primary input and flip-flop
     output gets four-value probabilities and transition arrival
     distributions.  Here: the paper's case I (all four values equally
     likely, standard-normal arrivals). *)
  let spec _source = Spsta_sim.Input_spec.case_i in

  (* 3. run SPSTA (one topological pass) and a 10K-run Monte Carlo *)
  let spsta = Analyzer.Moments.analyze circuit ~spec in
  let mc = Monte_carlo.simulate ~runs:10_000 ~seed:1 circuit ~spec in

  (* 4. read out the timing endpoints *)
  print_endline "endpoint   dir   P(spsta)  mu(spsta)  sig(spsta) |  P(mc)   mu(mc)   sig(mc)";
  let report e direction =
    let dir_name = match direction with `Rise -> "r" | `Fall -> "f" in
    let mu, sigma, p = Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) direction in
    let s = Monte_carlo.stats mc e in
    let acc, count =
      match direction with
      | `Rise -> (s.Monte_carlo.rise_times, s.Monte_carlo.count_rise)
      | `Fall -> (s.Monte_carlo.fall_times, s.Monte_carlo.count_fall)
    in
    Printf.printf "%-10s %-4s  %8.3f  %9.3f  %10.3f | %6.3f  %7.3f  %8.3f\n"
      (Circuit.net_name circuit e) dir_name p mu sigma
      (float_of_int count /. float_of_int s.Monte_carlo.n_runs)
      (Stats.acc_mean acc) (Stats.acc_stddev acc)
  in
  List.iter
    (fun e ->
      report e `Rise;
      report e `Fall)
    (Circuit.endpoints circuit)
