(* Sequential (multi-cycle) analysis.

   The paper assigns flip-flop output statistics by hand.  This example
   computes them instead: the fixed-point iteration of
   Spsta_core.Sequential finds flip-flop launch statistics consistent
   with the circuit, validates them against a real multi-cycle simulation
   (Spsta_sim.Sequential_sim), and then runs the timing analysis with the
   converged statistics.

     dune exec examples/sequential_analysis.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Sequential = Spsta_core.Sequential
module Sequential_sim = Spsta_sim.Sequential_sim
module Monte_carlo = Spsta_sim.Monte_carlo
module Analyzer = Spsta_core.Analyzer
module Workloads = Spsta_experiments.Workloads
module Stats = Spsta_util.Stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s27" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;
  let pi_spec = Workloads.spec_fn Workloads.Case_i in

  (* 1. fixed point *)
  let fp = Sequential.fixed_point circuit ~pi_spec in
  Printf.printf "fixed point %s after %d iterations\n"
    (if Sequential.converged fp then "converged" else "DID NOT converge")
    (Sequential.iterations fp);

  (* 2. validate against a multi-cycle simulation *)
  let sim = Sequential_sim.simulate ~cycles:20_000 ~seed:11 circuit ~pi_spec in
  print_endline "flip-flop steady state (analytic vs 20000 simulated cycles):";
  List.iter
    (fun (qnet, _) ->
      let s = Sequential_sim.stats sim qnet in
      Printf.printf "  %-8s q = %.4f vs %.4f\n" (Circuit.net_name circuit qnet)
        (Sequential.ff_final_one fp qnet)
        (Monte_carlo.p_one s +. Monte_carlo.p_fall s))
    (Circuit.dffs circuit);

  (* 3. timing with the converged launch statistics *)
  let spec = Sequential.spec fp ~pi_spec in
  let spsta = Analyzer.Moments.analyze circuit ~spec in
  print_endline "\nendpoint timing with converged flip-flop statistics (vs sequential sim):";
  List.iter
    (fun e ->
      let mu, sigma, p = Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) `Rise in
      let s = Sequential_sim.stats sim e in
      Printf.printf
        "  %-8s rise: SPSTA P %.3f mu %.3f sig %.3f | sim P %.3f mu %.3f sig %.3f\n"
        (Circuit.net_name circuit e) p mu sigma (Monte_carlo.p_rise s)
        (Stats.acc_mean s.Monte_carlo.rise_times)
        (Stats.acc_stddev s.Monte_carlo.rise_times))
    (Circuit.endpoints circuit)
