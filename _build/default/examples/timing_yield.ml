(* Timing yield under different operating modes.

   The paper's core argument: chip timing is a function of *input
   statistics*, so a yield estimate must be dynamic.  This example sweeps
   a clock period T over a suite circuit and prints, per operating mode,

     - SPSTA yield: P(every endpoint settles by T), from per-endpoint
       transition probabilities and arrival moments,
     - Monte Carlo yield: the fraction of simulated cycles meeting T,
     - the SSTA worst-case view, which is mode-oblivious and identical in
       both columns.

     dune exec examples/timing_yield.exe [-- circuit-name] *)

module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Normal = Spsta_dist.Normal
module Value4 = Spsta_logic.Value4
module Logic_sim = Spsta_sim.Logic_sim
module Rng = Spsta_util.Rng
module Workloads = Spsta_experiments.Workloads

(* SPSTA: treat endpoints as independent; an endpoint violates T if it
   transitions later than T. *)
let spsta_yield spsta circuit t =
  List.fold_left
    (fun acc e ->
      let miss direction =
        let mu, sigma, p = Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) direction in
        if p <= 0.0 then 0.0
        else if sigma <= 0.0 then if mu > t then p else 0.0
        else p *. (1.0 -. Normal.cdf (Normal.make ~mu ~sigma) t)
      in
      acc *. (1.0 -. miss `Rise -. miss `Fall))
    1.0 (Circuit.endpoints circuit)

let mc_yield ~runs ~seed circuit ~spec t =
  let rng = Rng.create ~seed in
  let endpoints = Circuit.endpoints circuit in
  let ok = ref 0 in
  for _ = 1 to runs do
    let r = Logic_sim.run_random rng circuit ~spec in
    let meets =
      List.for_all
        (fun e ->
          (not (Value4.is_transition r.Logic_sim.values.(e))) || r.Logic_sim.times.(e) <= t)
        endpoints
    in
    if meets then incr ok
  done;
  float_of_int !ok /. float_of_int runs

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s344" in
  let circuit = Spsta_experiments.Benchmarks.load name in
  Format.printf "circuit: %a@." Circuit.pp_summary circuit;
  let ssta = Spsta_ssta.Ssta.analyze circuit in
  let worst =
    Spsta_dist.Clark.max_normal (Spsta_ssta.Ssta.max_arrival ssta `Rise)
      (Spsta_ssta.Ssta.max_arrival ssta `Fall)
  in
  let analyses =
    List.map
      (fun case ->
        let spec = Workloads.spec_fn case in
        (case, spec, Analyzer.Moments.analyze circuit ~spec))
      Workloads.all_cases
  in
  Printf.printf "%6s  %38s  %38s  %12s\n" "T" "case I (yield: SPSTA / MC)" "case II (yield: SPSTA / MC)"
    "SSTA worst";
  let sweep_lo = 2.0 and sweep_hi = float_of_int (Circuit.depth circuit) +. 4.0 in
  let steps = 12 in
  for i = 0 to steps do
    let t = sweep_lo +. ((sweep_hi -. sweep_lo) *. float_of_int i /. float_of_int steps) in
    let per_case =
      List.map
        (fun (_, spec, spsta) ->
          (spsta_yield spsta circuit t, mc_yield ~runs:4000 ~seed:7 circuit ~spec t))
        analyses
    in
    match per_case with
    | [ (s1, m1); (s2, m2) ] ->
      Printf.printf "%6.2f  %19.4f / %-16.4f  %19.4f / %-16.4f  %12.4f\n" t s1 m1 s2 m2
        (Normal.cdf worst t)
    | _ -> assert false
  done;
  print_endline
    "\nNote how the yield curve shifts between operating modes (columns 2 vs 3)\n\
     while the SSTA worst-case column cannot distinguish them."
