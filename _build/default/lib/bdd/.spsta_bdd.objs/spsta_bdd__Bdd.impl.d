lib/bdd/bdd.ml: Hashtbl List Spsta_logic
