lib/bdd/bdd.mli: Spsta_logic
