lib/bdd/circuit_bdd.ml: Array Bdd Hashtbl List Spsta_netlist
