lib/bdd/circuit_bdd.mli: Bdd Spsta_netlist
