type t = Leaf of bool | Node of { id : int; var : int; lo : t; hi : t }

exception Size_limit_exceeded

type manager = {
  nvars : int;
  max_nodes : int;
  unique : (int * int * int, t) Hashtbl.t; (* (var, lo id, hi id) -> node *)
  and_memo : (int * int, t) Hashtbl.t;
  xor_memo : (int * int, t) Hashtbl.t;
  mutable next_id : int;
}

let node_id = function Leaf false -> 0 | Leaf true -> 1 | Node { id; _ } -> id

let create ?(max_nodes = 2_000_000) ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.create: negative nvars";
  {
    nvars;
    max_nodes;
    unique = Hashtbl.create 1024;
    and_memo = Hashtbl.create 1024;
    xor_memo = Hashtbl.create 1024;
    next_id = 2;
  }

let nvars m = m.nvars
let zero _ = Leaf false
let one _ = Leaf true

let mk m ~var ~lo ~hi =
  if node_id lo = node_id hi then lo
  else begin
    let key = (var, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if m.next_id - 2 >= m.max_nodes then raise Size_limit_exceeded;
      let n = Node { id = m.next_id; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.replace m.unique key n;
      n
  end

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: index outside universe";
  mk m ~var:i ~lo:(Leaf false) ~hi:(Leaf true)

let top_var = function Leaf _ -> max_int | Node { var; _ } -> var

let cofactor0 v t = match t with Leaf _ -> t | Node { var; lo; _ } -> if var = v then lo else t
let cofactor1 v t = match t with Leaf _ -> t | Node { var; hi; _ } -> if var = v then hi else t

let rec apply m memo op a b =
  match (a, b) with
  | Leaf x, Leaf y -> Leaf (op x y)
  | _ ->
    let key =
      (* commutative ops: normalise operand order to share memo entries *)
      let ia = node_id a and ib = node_id b in
      if ia <= ib then (ia, ib) else (ib, ia)
    in
    ( match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let v = min (top_var a) (top_var b) in
      let r =
        mk m ~var:v
          ~lo:(apply m memo op (cofactor0 v a) (cofactor0 v b))
          ~hi:(apply m memo op (cofactor1 v a) (cofactor1 v b))
      in
      Hashtbl.replace memo key r;
      r )

let band m a b =
  match (a, b) with
  | Leaf false, _ | _, Leaf false -> Leaf false
  | Leaf true, x | x, Leaf true -> x
  | _ -> apply m m.and_memo ( && ) a b

let bxor m a b =
  match (a, b) with
  | Leaf false, x | x, Leaf false -> x
  | _ -> apply m m.xor_memo ( <> ) a b

let bnot m a = bxor m a (Leaf true)

let bor m a b = bnot m (band m (bnot m a) (bnot m b))

let apply_gate m kind operands =
  let module G = Spsta_logic.Gate_kind in
  let n = List.length operands in
  if n < G.min_arity kind then invalid_arg "Bdd.apply_gate: fan-in below minimum";
  (match G.max_arity kind with
  | Some mx when n > mx -> invalid_arg "Bdd.apply_gate: fan-in above maximum"
  | Some _ | None -> ());
  let fold op init = List.fold_left op init operands in
  let base =
    match kind with
    | G.And | G.Nand -> fold (band m) (Leaf true)
    | G.Or | G.Nor -> fold (bor m) (Leaf false)
    | G.Xor | G.Xnor -> fold (bxor m) (Leaf false)
    | G.Not | G.Buf -> ( match operands with [ x ] -> x | [] | _ :: _ -> assert false )
  in
  if G.inverting kind then bnot m base else base

let equal a b = node_id a = node_id b

let is_const = function Leaf b -> Some b | Node _ -> None

let rec eval t assign =
  match t with
  | Leaf b -> b
  | Node { var; lo; hi; _ } -> if assign var then eval hi assign else eval lo assign

let size t =
  let seen = Hashtbl.create 64 in
  let rec visit = function
    | Leaf _ -> ()
    | Node { id; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        visit lo;
        visit hi
      end
  in
  visit t;
  Hashtbl.length seen

let prob_one _m t p =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf true -> 1.0
    | Leaf false -> 0.0
    | Node { id; var; lo; hi } -> (
      match Hashtbl.find_opt memo id with
      | Some x -> x
      | None ->
        let pv = p var in
        let x = (pv *. go hi) +. ((1.0 -. pv) *. go lo) in
        Hashtbl.replace memo id x;
        x )
  in
  go t

let node_count m = m.next_id - 2
