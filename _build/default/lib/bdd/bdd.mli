(** Reduced ordered binary decision diagrams with hash-consing.

    The paper's §3.5 computes *exact* signal probabilities — including
    reconvergent-fanout correlations that the independence-based eq. 5
    misses — by building the Boolean function of every net over the
    circuit sources and evaluating the one-probability by a weighted BDD
    traversal.  This module is that substrate. *)

type manager
(** Unique-table and memo state.  One manager per variable universe. *)

type t
(** A BDD node handle, valid for its manager only. *)

exception Size_limit_exceeded
(** Raised when a manager's node budget (see {!create}) is exhausted. *)

val create : ?max_nodes:int -> nvars:int -> unit -> manager
(** [nvars] fixes the variable universe 0..nvars-1 (variable order =
    index order).  [max_nodes] (default 2_000_000) bounds unique-table
    growth; exceeding it raises {!Size_limit_exceeded}. *)

val nvars : manager -> int
val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** Raises [Invalid_argument] if the index is outside the universe. *)

val bnot : manager -> t -> t
val band : manager -> t -> t -> t
val bor : manager -> t -> t -> t
val bxor : manager -> t -> t -> t
val apply_gate : manager -> Spsta_logic.Gate_kind.t -> t list -> t
(** Fold a gate over already-built operand BDDs. *)

val equal : t -> t -> bool
(** Constant-time (hash-consed) semantic equality within one manager. *)

val is_const : t -> bool option
(** [Some b] if the BDD is the constant [b]. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a variable assignment. *)

val size : t -> int
(** Number of distinct internal nodes reachable from this root. *)

val prob_one : manager -> t -> (int -> float) -> float
(** [prob_one m t p]: probability that the function is 1 when variable
    [i] is an independent Bernoulli with success probability [p i].
    Exact; linear in the BDD size (memoized per call). *)

val node_count : manager -> int
(** Total unique nodes allocated in the manager. *)
