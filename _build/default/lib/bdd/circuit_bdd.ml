module Circuit = Spsta_netlist.Circuit

exception Size_limit_exceeded

type t = {
  manager : Bdd.manager;
  circuit : Circuit.t;
  bdds : Bdd.t array; (* indexed by net id *)
  source_vars : (Circuit.id, int) Hashtbl.t;
}

let build ?max_nodes circuit =
  let sources = Circuit.sources circuit in
  let nvars = List.length sources in
  let manager = Bdd.create ?max_nodes ~nvars () in
  let source_vars = Hashtbl.create nvars in
  List.iteri (fun i s -> Hashtbl.replace source_vars s i) sources;
  let n = Circuit.num_nets circuit in
  let bdds = Array.make n (Bdd.zero manager) in
  ( try
      List.iteri (fun i s -> bdds.(s) <- Bdd.var manager i) sources;
      Array.iter
        (fun g ->
          match Circuit.driver circuit g with
          | Circuit.Gate { kind; inputs } ->
            let operands = Array.to_list (Array.map (fun i -> bdds.(i)) inputs) in
            bdds.(g) <- Bdd.apply_gate manager kind operands
          | Circuit.Input | Circuit.Dff_output _ -> assert false)
        (Circuit.topo_gates circuit)
    with Bdd.Size_limit_exceeded -> raise Size_limit_exceeded );
  { manager; circuit; bdds; source_vars }

let manager t = t.manager
let circuit t = t.circuit
let bdd_of_net t id = t.bdds.(id)
let source_index t id = Hashtbl.find_opt t.source_vars id

let exact_prob_one t ~p_source id = Bdd.prob_one t.manager t.bdds.(id) p_source
