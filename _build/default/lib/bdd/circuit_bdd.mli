(** Building per-net BDDs for a circuit, over its timing sources (primary
    inputs and flip-flop outputs) as BDD variables.  Source [i] in
    [Circuit.sources] order is variable [i]. *)

type t

exception Size_limit_exceeded
(** Re-raised from the underlying manager when the circuit's functions
    are too large to build exactly. *)

val build : ?max_nodes:int -> Spsta_netlist.Circuit.t -> t
(** Builds the BDD of every net in one topological sweep. *)

val manager : t -> Bdd.manager
val circuit : t -> Spsta_netlist.Circuit.t

val bdd_of_net : t -> Spsta_netlist.Circuit.id -> Bdd.t
(** The net's function over the sources; sources map to their own
    variable. *)

val source_index : t -> Spsta_netlist.Circuit.id -> int option
(** Variable index of a source net ([None] for internal nets). *)

val exact_prob_one : t -> p_source:(int -> float) -> Spsta_netlist.Circuit.id -> float
(** Exact signal probability of a net given independent per-source
    one-probabilities (paper §3.5: correlations from reconvergent fanout
    are handled exactly). *)
