lib/dist/clark.ml: Float List Normal Spsta_util
