lib/dist/clark.mli: Normal
