lib/dist/discrete.ml: Array Float List Normal
