lib/dist/discrete.mli: Normal
