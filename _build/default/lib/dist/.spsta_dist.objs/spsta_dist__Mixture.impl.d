lib/dist/mixture.ml: Array Clark Float List Normal Spsta_util
