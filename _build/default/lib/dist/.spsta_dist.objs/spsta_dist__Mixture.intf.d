lib/dist/mixture.mli: Clark Normal Spsta_util
