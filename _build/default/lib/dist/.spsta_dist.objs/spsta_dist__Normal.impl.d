lib/dist/normal.ml: Float Spsta_util
