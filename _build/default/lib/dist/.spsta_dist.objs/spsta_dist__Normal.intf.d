lib/dist/normal.mli: Spsta_util
