type moments = { mean : float; variance : float }

(* theta^2 = var1 + var2 - 2 cov is the variance of (t1 - t2); when it
   vanishes the two arrivals differ by a constant and the MAX is exactly
   the one with the larger mean. *)
let theta ~cov (a : Normal.t) (b : Normal.t) =
  let v = Normal.variance a +. Normal.variance b -. (2.0 *. cov) in
  sqrt (Float.max v 0.0)

let tightness ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  if th <= 0.0 then if Normal.mean a >= Normal.mean b then 1.0 else 0.0
  else Spsta_util.Special.normal_cdf ((Normal.mean a -. Normal.mean b) /. th)

let max_moments ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  if th <= 0.0 then
    if Normal.mean a >= Normal.mean b then
      { mean = Normal.mean a; variance = Normal.variance a }
    else { mean = Normal.mean b; variance = Normal.variance b }
  else begin
    let mu1 = Normal.mean a and mu2 = Normal.mean b in
    let lambda = (mu1 -. mu2) /. th in
    let p = Spsta_util.Special.normal_pdf lambda in
    let q = Spsta_util.Special.normal_cdf lambda in
    let mean = (mu1 *. q) +. (mu2 *. (1.0 -. q)) +. (th *. p) in
    let second =
      (((mu1 *. mu1) +. Normal.variance a) *. q)
      +. (((mu2 *. mu2) +. Normal.variance b) *. (1.0 -. q))
      +. ((mu1 +. mu2) *. th *. p)
    in
    { mean; variance = Float.max (second -. (mean *. mean)) 0.0 }
  end

let negate (n : Normal.t) = Normal.make ~mu:(-.Normal.mean n) ~sigma:(Normal.stddev n)

let min_moments ?(cov = 0.0) a b =
  let m = max_moments ~cov (negate a) (negate b) in
  { m with mean = -.m.mean }

let to_normal (m : moments) = Normal.make ~mu:m.mean ~sigma:(sqrt m.variance)

let max_normal ?(cov = 0.0) a b = to_normal (max_moments ~cov a b)
let min_normal ?(cov = 0.0) a b = to_normal (min_moments ~cov a b)

let fold_many name op = function
  | [] -> invalid_arg (name ^ ": empty list")
  | first :: rest -> List.fold_left (fun acc n -> op acc n) first rest

let max_normal_many dists = fold_many "Clark.max_normal_many" (max_normal ~cov:0.0) dists
let min_normal_many dists = fold_many "Clark.min_normal_many" (min_normal ~cov:0.0) dists
