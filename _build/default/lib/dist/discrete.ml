type t = {
  dt : float;
  k0 : int; (* origin bin index: bin i holds mass at time (k0 + i) * dt *)
  mass : float array;
}

let dt t = t.dt
let total t = Array.fold_left ( +. ) 0.0 t.mass

let check_dt d = if d <= 0.0 then invalid_arg "Discrete: dt must be positive"

let zero ~dt =
  check_dt dt;
  { dt; k0 = 0; mass = [||] }

let time t i = float_of_int (t.k0 + i) *. t.dt
let bin_of_time ~dt x = int_of_float (Float.round (x /. dt))

let of_normal ~dt ~mass (n : Normal.t) =
  check_dt dt;
  if mass < 0.0 then invalid_arg "Discrete.of_normal: negative mass";
  if mass = 0.0 then zero ~dt
  else if Normal.stddev n = 0.0 then
    { dt; k0 = bin_of_time ~dt (Normal.mean n); mass = [| mass |] }
  else begin
    let lo = Normal.mean n -. (6.0 *. Normal.stddev n) in
    let hi = Normal.mean n +. (6.0 *. Normal.stddev n) in
    let k_lo = bin_of_time ~dt lo and k_hi = bin_of_time ~dt hi in
    let bins = k_hi - k_lo + 1 in
    (* allocate each bin the cdf increment over its cell: exact mass, no
       quadrature error accumulation *)
    let edge k = (float_of_int k -. 0.5) *. dt in
    let arr =
      Array.init bins (fun i ->
          let k = k_lo + i in
          Normal.cdf n (edge (k + 1)) -. Normal.cdf n (edge k))
    in
    let covered = Array.fold_left ( +. ) 0.0 arr in
    let factor = if covered > 0.0 then mass /. covered else 0.0 in
    { dt; k0 = k_lo; mass = Array.map (fun m -> m *. factor) arr }
  end

let of_points ~dt points =
  check_dt dt;
  List.iter (fun (_, m) -> if m < 0.0 then invalid_arg "Discrete.of_points: negative mass") points;
  match points with
  | [] -> zero ~dt
  | _ ->
    let ks = List.map (fun (x, m) -> (bin_of_time ~dt x, m)) points in
    let k_lo = List.fold_left (fun acc (k, _) -> min acc k) max_int ks in
    let k_hi = List.fold_left (fun acc (k, _) -> max acc k) min_int ks in
    let arr = Array.make (k_hi - k_lo + 1) 0.0 in
    List.iter (fun (k, m) -> arr.(k - k_lo) <- arr.(k - k_lo) +. m) ks;
    { dt; k0 = k_lo; mass = arr }

let scale t f =
  if f < 0.0 then invalid_arg "Discrete.scale: negative factor";
  { t with mass = Array.map (fun m -> m *. f) t.mass }

let require_same_dt a b =
  if Float.abs (a.dt -. b.dt) > 1e-12 then invalid_arg "Discrete: grid step mismatch"

let add a b =
  require_same_dt a b;
  if Array.length a.mass = 0 then b
  else if Array.length b.mass = 0 then a
  else begin
    let k_lo = min a.k0 b.k0 in
    let k_hi = max (a.k0 + Array.length a.mass) (b.k0 + Array.length b.mass) in
    let arr = Array.make (k_hi - k_lo) 0.0 in
    Array.iteri (fun i m -> arr.(a.k0 - k_lo + i) <- arr.(a.k0 - k_lo + i) +. m) a.mass;
    Array.iteri (fun i m -> arr.(b.k0 - k_lo + i) <- arr.(b.k0 - k_lo + i) +. m) b.mass;
    { dt = a.dt; k0 = k_lo; mass = arr }
  end

let sum ~dt ts = List.fold_left add (zero ~dt) ts

let shift t d = { t with k0 = t.k0 + bin_of_time ~dt:t.dt d }

let convolve a b =
  require_same_dt a b;
  let na = Array.length a.mass and nb = Array.length b.mass in
  if na = 0 || nb = 0 then zero ~dt:a.dt
  else begin
    let arr = Array.make (na + nb - 1) 0.0 in
    for i = 0 to na - 1 do
      if a.mass.(i) <> 0.0 then
        for j = 0 to nb - 1 do
          arr.(i + j) <- arr.(i + j) +. (a.mass.(i) *. b.mass.(j))
        done
    done;
    { dt = a.dt; k0 = a.k0 + b.k0; mass = arr }
  end

let normalized t =
  let w = total t in
  if w <= 0.0 then invalid_arg "Discrete: zero-mass distribution";
  scale t (1.0 /. w)

(* P(max = k) = pa(k) * Fb(k-1) + pb(k) * Fa(k-1) + pa(k) * pb(k), with
   F the inclusive cdf up to the previous bin: exact for independent
   lattice random variables. *)
let max_independent a b =
  require_same_dt a b;
  let a = normalized a and b = normalized b in
  let k_lo = min a.k0 b.k0 in
  let k_hi = max (a.k0 + Array.length a.mass) (b.k0 + Array.length b.mass) in
  let n = k_hi - k_lo in
  let pa = Array.make n 0.0 and pb = Array.make n 0.0 in
  Array.iteri (fun i m -> pa.(a.k0 - k_lo + i) <- m) a.mass;
  Array.iteri (fun i m -> pb.(b.k0 - k_lo + i) <- m) b.mass;
  let out = Array.make n 0.0 in
  let fa = ref 0.0 and fb = ref 0.0 in
  for k = 0 to n - 1 do
    out.(k) <- (pa.(k) *. !fb) +. (pb.(k) *. !fa) +. (pa.(k) *. pb.(k));
    fa := !fa +. pa.(k);
    fb := !fb +. pb.(k)
  done;
  { dt = a.dt; k0 = k_lo; mass = out }

let reflect t =
  let n = Array.length t.mass in
  if n = 0 then t
  else begin
    let arr = Array.init n (fun i -> t.mass.(n - 1 - i)) in
    { t with k0 = -(t.k0 + n - 1); mass = arr }
  end

let min_independent a b = reflect (max_independent (reflect a) (reflect b))

let raw_moments t =
  let w = total t in
  if w <= 0.0 then None
  else begin
    let m1 = ref 0.0 and m2 = ref 0.0 in
    Array.iteri
      (fun i m ->
        let x = time t i in
        m1 := !m1 +. (m *. x);
        m2 := !m2 +. (m *. x *. x))
      t.mass;
    Some (!m1 /. w, !m2 /. w)
  end

let mean t = match raw_moments t with None -> 0.0 | Some (m1, _) -> m1

let variance t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) -> Float.max (m2 -. (m1 *. m1)) 0.0

let stddev t = sqrt (variance t)

let skewness t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) ->
    let var = Float.max (m2 -. (m1 *. m1)) 0.0 in
    if var <= 0.0 then 0.0
    else begin
      let w = total t in
      let m3 = ref 0.0 in
      Array.iteri
        (fun i m ->
          let x = time t i in
          m3 := !m3 +. (m *. x *. x *. x))
        t.mass;
      let m3 = !m3 /. w in
      let central3 = m3 -. (3.0 *. m1 *. m2) +. (2.0 *. m1 *. m1 *. m1) in
      central3 /. (var ** 1.5)
    end

let cdf t x =
  let acc = ref 0.0 in
  Array.iteri (fun i m -> if time t i <= x +. 1e-12 then acc := !acc +. m) t.mass;
  !acc

let quantile t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Discrete.quantile: p outside (0,1]";
  let w = total t in
  if w <= 0.0 then invalid_arg "Discrete.quantile: empty distribution";
  let target = p *. w in
  let rec scan i acc =
    if i >= Array.length t.mass then time t (Array.length t.mass - 1)
    else
      let acc = acc +. t.mass.(i) in
      if acc >= target -. 1e-15 then time t i else scan (i + 1) acc
  in
  scan 0 0.0

let series t = Array.to_list (Array.mapi (fun i m -> (time t i, m)) t.mass)

let density_series t = Array.to_list (Array.mapi (fun i m -> (time t i, m /. t.dt)) t.mass)
