(** Grid-discretised distributions on a uniform time lattice.

    This is the functional backend for t.o.p. propagation: it represents an
    arbitrary (sub-)probability mass over time, so it captures the
    non-normal shapes produced by MAX (Fig. 2/Fig. 4 of the paper) without
    a normality assumption.  All values produced by one analysis share a
    grid step [dt]; origins are integer multiples of [dt] so binary
    operations align bins exactly. *)

type t

val dt : t -> float
val total : t -> float
(** Total mass: the transition occurrence probability. *)

val zero : dt:float -> t
(** The empty (never-transitions) distribution. *)

val of_normal : dt:float -> mass:float -> Normal.t -> t
(** Discretise a normal over ±6σ, scaled so the total equals [mass].
    Raises [Invalid_argument] on negative mass or non-positive [dt]. *)

val of_points : dt:float -> (float * float) list -> t
(** Point masses at given (time, mass) pairs; times are rounded to the
    grid.  Raises [Invalid_argument] on negative masses. *)

val scale : t -> float -> t
(** Multiply all mass (non-negative factor). *)

val add : t -> t -> t
(** Pointwise mass addition (the WEIGHTED SUM after scaling).
    Raises [Invalid_argument] on mismatched [dt]. *)

val sum : dt:float -> t list -> t

val shift : t -> float -> t
(** Add a deterministic delay (rounded to the grid). *)

val convolve : t -> t -> t
(** Sum of independent random variables (normalised or not: masses
    multiply).  Used for variational gate delays. *)

val max_independent : t -> t -> t
(** Distribution of MAX(X, Y) for independent X ~ a/|a|, Y ~ b/|b|,
    returned with unit mass.  Raises [Invalid_argument] if either input
    has zero mass or the grids mismatch. *)

val min_independent : t -> t -> t

val mean : t -> float
(** Mean of the normalised distribution; 0 when empty. *)

val variance : t -> float
val stddev : t -> float

val skewness : t -> float
(** Standardised third central moment of the normalised distribution;
    0 when empty or degenerate. *)

val cdf : t -> float -> float
(** Unnormalised: mass at or before the given time. *)

val quantile : t -> float -> float
(** Time at which the *normalised* cdf first reaches p in (0,1].
    Raises [Invalid_argument] when empty. *)

val series : t -> (float * float) list
(** (bin time, mass) pairs over the support, for plotting/printing. *)

val density_series : t -> (float * float) list
(** (bin time, mass/dt) pairs: a pdf-like view of the t.o.p. function. *)
