type component = { weight : float; dist : Normal.t }

type t = component list

let weight_epsilon = 1e-15

let empty = []

let singleton ~weight dist =
  if weight < 0.0 then invalid_arg "Mixture.singleton: negative weight";
  if weight <= weight_epsilon then [] else [ { weight; dist } ]

let components t = t
let total_weight t = List.fold_left (fun acc c -> acc +. c.weight) 0.0 t
let is_empty t = total_weight t <= weight_epsilon

let scale t k =
  if k < 0.0 then invalid_arg "Mixture.scale: negative factor";
  if k <= weight_epsilon then []
  else List.map (fun c -> { c with weight = c.weight *. k }) t

let add a b = a @ b
let sum ts = List.concat ts

let add_delay t d = List.map (fun c -> { c with dist = Normal.add_constant c.dist d }) t

let add_normal_delay t d = List.map (fun c -> { c with dist = Normal.sum c.dist d }) t

let raw_moments t =
  (* first and second raw moments of the normalised mixture *)
  let w = total_weight t in
  if w <= weight_epsilon then None
  else begin
    let m1 = ref 0.0 and m2 = ref 0.0 in
    let accumulate c =
      let mu = Normal.mean c.dist in
      m1 := !m1 +. (c.weight *. mu);
      m2 := !m2 +. (c.weight *. ((mu *. mu) +. Normal.variance c.dist))
    in
    List.iter accumulate t;
    Some (!m1 /. w, !m2 /. w)
  end

let mean t = match raw_moments t with None -> 0.0 | Some (m1, _) -> m1

let variance t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) -> Float.max (m2 -. (m1 *. m1)) 0.0

let stddev t = sqrt (variance t)

(* third raw moment of a normal: mu^3 + 3 mu sigma^2 *)
let skewness t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) ->
    let var = Float.max (m2 -. (m1 *. m1)) 0.0 in
    if var <= 0.0 then 0.0
    else begin
      let w = total_weight t in
      let m3 = ref 0.0 in
      let accumulate c =
        let mu = Normal.mean c.dist and v = Normal.variance c.dist in
        m3 := !m3 +. (c.weight *. ((mu *. mu *. mu) +. (3.0 *. mu *. v)))
      in
      List.iter accumulate t;
      let m3 = !m3 /. w in
      let central3 = m3 -. (3.0 *. m1 *. m2) +. (2.0 *. m1 *. m1 *. m1) in
      central3 /. (var ** 1.5)
    end

let normalized_moments t =
  match raw_moments t with
  | None -> None
  | Some (m1, m2) -> Some { Clark.mean = m1; variance = Float.max (m2 -. (m1 *. m1)) 0.0 }

let as_normal t =
  match normalized_moments t with
  | None -> None
  | Some m -> Some (Normal.make ~mu:m.Clark.mean ~sigma:(sqrt m.Clark.variance))

(* Moment-preserving merge of two components into one normal. *)
let merge_pair a b =
  let w = a.weight +. b.weight in
  let mu = ((a.weight *. Normal.mean a.dist) +. (b.weight *. Normal.mean b.dist)) /. w in
  let second c = (Normal.mean c.dist *. Normal.mean c.dist) +. Normal.variance c.dist in
  let m2 = ((a.weight *. second a) +. (b.weight *. second b)) /. w in
  let var = Float.max (m2 -. (mu *. mu)) 0.0 in
  { weight = w; dist = Normal.make ~mu ~sigma:(sqrt var) }

let compact ?(max_components = 64) t =
  let t = List.filter (fun c -> c.weight > weight_epsilon) t in
  if List.length t <= max_components then t
  else begin
    (* Sort by mean, then repeatedly merge the closest adjacent pair.  A
       simple O(n^2) loop is fine: n is bounded by gate fan-in work. *)
    let arr = List.sort (fun a b -> compare (Normal.mean a.dist) (Normal.mean b.dist)) t in
    let rec shrink items =
      if List.length items <= max_components then items
      else begin
        (* find index of adjacent pair with the closest means *)
        let rec best i best_i best_gap = function
          | a :: (b :: _ as rest) ->
            let gap = Normal.mean b.dist -. Normal.mean a.dist in
            if gap < best_gap then best (i + 1) i gap rest else best (i + 1) best_i best_gap rest
          | [ _ ] | [] -> best_i
        in
        let target = best 0 0 infinity items in
        let rec rebuild i = function
          | a :: b :: rest when i = target -> merge_pair a b :: rest
          | x :: rest -> x :: rebuild (i + 1) rest
          | [] -> []
        in
        shrink (rebuild 0 items)
      end
    in
    shrink arr
  end

let cdf t x =
  let w = total_weight t in
  if w <= weight_epsilon then 0.0
  else List.fold_left (fun acc c -> acc +. (c.weight *. Normal.cdf c.dist x)) 0.0 t /. w

let quantile t p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Mixture.quantile: p outside (0,1)";
  if is_empty t then invalid_arg "Mixture.quantile: empty mixture";
  (* bracket the quantile across all components' 8-sigma envelopes *)
  let lo, hi =
    List.fold_left
      (fun (lo, hi) c ->
        ( Float.min lo (Normal.mean c.dist -. (8.0 *. Normal.stddev c.dist) -. 1.0),
          Float.max hi (Normal.mean c.dist +. (8.0 *. Normal.stddev c.dist) +. 1.0) ))
      (infinity, neg_infinity) t
  in
  let rec bisect lo hi i =
    if i = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if cdf t mid < p then bisect mid hi (i - 1) else bisect lo mid (i - 1)
    end
  in
  bisect lo hi 60

let sample rng t =
  let w = total_weight t in
  if w <= weight_epsilon then None
  else begin
    let arr = Array.of_list t in
    let weights = Array.map (fun c -> c.weight) arr in
    let i = Spsta_util.Rng.choose_index rng weights in
    Some (Normal.sample rng arr.(i).dist)
  end
