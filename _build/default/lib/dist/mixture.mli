(** Weighted mixtures of normal components.

    This is the moment-based representation of a signal transition
    temporal-occurrence-probability (t.o.p.) function (paper §3.1/§3.4):
    total weight = transition occurrence probability (the t.o.p. integral,
    i.e. the toggling rate per cycle), and the normalised mixture is the
    arrival-time pdf.  The paper's WEIGHTED SUM (eq. 8) is mixture
    combination. *)

type component = { weight : float; dist : Normal.t }

type t
(** A (possibly empty) mixture.  Empty = no transition ever occurs. *)

val empty : t
val singleton : weight:float -> Normal.t -> t
(** Raises [Invalid_argument] on a negative weight. *)

val components : t -> component list
val total_weight : t -> float
(** The t.o.p. integral: occurrence probability of the transition. *)

val is_empty : t -> bool
(** True when the total weight is (numerically) zero. *)

val scale : t -> float -> t
(** Multiply every weight (the P(dy/dx_i) factor of eq. 8). *)

val add : t -> t -> t
(** WEIGHTED SUM: union of components. *)

val sum : t list -> t

val add_delay : t -> float -> t
(** Shift every component by a deterministic gate delay (SUM, eq. 1). *)

val add_normal_delay : t -> Normal.t -> t
(** Convolve every component with an independent normal delay. *)

val mean : t -> float
(** Mean of the normalised mixture; 0 when empty. *)

val variance : t -> float
(** Variance of the normalised mixture (includes between-component
    spread); 0 when empty. *)

val stddev : t -> float

val skewness : t -> float
(** Standardised third central moment of the normalised mixture —
    exact (each normal component contributes analytically); 0 when the
    variance vanishes.  This is what quantifies the MAX-induced
    asymmetry SSTA's normality assumption hides (paper Fig. 2/4). *)

val normalized_moments : t -> Clark.moments option
(** [None] when empty. *)

val as_normal : t -> Normal.t option
(** Moment-matched normal of the normalised mixture; [None] when empty. *)

val compact : ?max_components:int -> t -> t
(** Merge components to bound mixture growth.  Components are merged by
    moment matching of adjacent (by mean) components until at most
    [max_components] remain (default 64).  Total weight, normalised mean
    and variance are preserved exactly for each pairwise merge. *)

val cdf : t -> float -> float
(** Cdf of the normalised mixture; 0 everywhere when empty. *)

val quantile : t -> float -> float
(** p-quantile of the normalised mixture (bisection on {!cdf}).
    Raises [Invalid_argument] for p outside (0, 1) or an empty
    mixture. *)

val sample : Spsta_util.Rng.t -> t -> float option
(** Draw an arrival time from the normalised mixture ([None] if empty). *)
