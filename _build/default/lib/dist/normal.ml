type t = { mu : float; sigma : float }

let make ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Normal.make: negative sigma";
  { mu; sigma }

let standard = { mu = 0.0; sigma = 1.0 }
let mean t = t.mu
let stddev t = t.sigma
let variance t = t.sigma *. t.sigma

let pdf t x =
  if t.sigma = 0.0 then if x = t.mu then infinity else 0.0
  else Spsta_util.Special.normal_pdf ((x -. t.mu) /. t.sigma) /. t.sigma

let cdf t x =
  if t.sigma = 0.0 then if x < t.mu then 0.0 else 1.0
  else Spsta_util.Special.normal_cdf ((x -. t.mu) /. t.sigma)

let quantile t p = t.mu +. (t.sigma *. Spsta_util.Special.normal_quantile p)
let add_constant t c = { t with mu = t.mu +. c }

let sum a b = { mu = a.mu +. b.mu; sigma = sqrt ((a.sigma *. a.sigma) +. (b.sigma *. b.sigma)) }

let sum_correlated a b ~cov =
  let var = (a.sigma *. a.sigma) +. (b.sigma *. b.sigma) +. (2.0 *. cov) in
  if var < -1e-12 then invalid_arg "Normal.sum_correlated: negative variance";
  { mu = a.mu +. b.mu; sigma = sqrt (Float.max var 0.0) }

let sample rng t = Spsta_util.Rng.gaussian rng ~mu:t.mu ~sigma:t.sigma
