(** Normal (Gaussian) distributions: the atomic arrival-time model of both
    SSTA and the moment-based SPSTA backend (paper §2.1). *)

type t = { mu : float; sigma : float }
(** [sigma >= 0]; a zero sigma denotes a deterministic arrival. *)

val make : mu:float -> sigma:float -> t
(** Raises [Invalid_argument] on negative [sigma]. *)

val standard : t
(** N(0, 1) — the paper's primary-input arrival distribution. *)

val mean : t -> float
val stddev : t -> float
val variance : t -> float

val pdf : t -> float -> float
val cdf : t -> float -> float
val quantile : t -> float -> float

val add_constant : t -> float -> t
(** Deterministic delay addition: shifts the mean (paper eq. 2 with a
    constant delay). *)

val sum : t -> t -> t
(** Sum of independent normals (paper eq. 2 with zero covariance). *)

val sum_correlated : t -> t -> cov:float -> t
(** Paper eq. 2 with explicit covariance.  Raises [Invalid_argument] if
    the implied variance is negative. *)

val sample : Spsta_util.Rng.t -> t -> float
