lib/experiments/benchmarks.ml: List Spsta_netlist
