lib/experiments/benchmarks.mli: Spsta_netlist
