lib/experiments/export.ml: Array Buffer Hashtbl List Option Printf Spsta_core Spsta_dist Spsta_logic Spsta_netlist Spsta_sim Spsta_util Table2
