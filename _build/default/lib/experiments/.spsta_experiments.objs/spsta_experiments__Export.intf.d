lib/experiments/export.mli: Spsta_netlist Spsta_sim Table2
