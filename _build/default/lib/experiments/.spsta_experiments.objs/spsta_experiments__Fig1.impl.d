lib/experiments/fig1.ml: Array Benchmarks Buffer Float List Printf Spsta_dist Spsta_logic Spsta_netlist Spsta_sim Spsta_ssta Spsta_util Workloads
