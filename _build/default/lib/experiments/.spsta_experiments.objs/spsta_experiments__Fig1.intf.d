lib/experiments/fig1.mli: Spsta_dist Spsta_netlist Workloads
