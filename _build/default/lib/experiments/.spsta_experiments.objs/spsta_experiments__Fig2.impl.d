lib/experiments/fig2.ml: Buffer List Printf Spsta_dist
