lib/experiments/fig2.mli: Spsta_dist
