lib/experiments/fig3.ml: Printf Spsta_logic
