lib/experiments/fig4.ml: Buffer List Printf Spsta_core Spsta_dist Spsta_logic Spsta_sim
