lib/experiments/runner.ml: Fig1 Fig2 Fig3 Fig4 Summary Table1 Table2 Table3 Workloads
