lib/experiments/runner.mli:
