lib/experiments/summary.ml: Array Benchmarks List Printf Spsta_core Spsta_netlist Spsta_sim Spsta_util Table2 Workloads
