lib/experiments/summary.mli: Table2
