lib/experiments/table1.ml: List Printf Spsta_logic Spsta_util
