lib/experiments/table2.ml: Benchmarks List Printf Spsta_core Spsta_dist Spsta_netlist Spsta_sim Spsta_ssta Spsta_util Workloads
