lib/experiments/table2.mli: Spsta_netlist Workloads
