lib/experiments/table3.ml: Benchmarks List Printf Spsta_core Spsta_netlist Spsta_sim Spsta_ssta Spsta_util Sys Workloads
