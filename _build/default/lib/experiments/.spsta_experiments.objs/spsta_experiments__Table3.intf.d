lib/experiments/table3.mli: Spsta_netlist Workloads
