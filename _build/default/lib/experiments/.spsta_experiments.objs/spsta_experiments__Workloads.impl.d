lib/experiments/workloads.ml: Spsta_sim
