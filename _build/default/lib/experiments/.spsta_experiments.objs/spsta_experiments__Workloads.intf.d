lib/experiments/workloads.mli: Spsta_netlist Spsta_sim
