module Circuit = Spsta_netlist.Circuit
module Bench_io = Spsta_netlist.Bench_io
module Generator = Spsta_netlist.Generator

let s27_bench_text =
  "# s27 (ISCAS'89)\n\
   INPUT(G0)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\n\
   G6 = DFF(G11)\n\
   G7 = DFF(G13)\n\
   G14 = NOT(G0)\n\
   G17 = NOT(G11)\n\
   G8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\n\
   G16 = OR(G3, G8)\n\
   G9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\n\
   G11 = NOR(G5, G9)\n\
   G12 = NOR(G1, G7)\n\
   G13 = NOR(G2, G12)\n"

let s27 () = Bench_io.parse_string ~name:"s27" s27_bench_text

let c17_bench_text =
  "# c17 (ISCAS'85)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   INPUT(G6)\n\
   INPUT(G7)\n\
   OUTPUT(G22)\n\
   OUTPUT(G23)\n\
   G10 = NAND(G1, G3)\n\
   G11 = NAND(G3, G6)\n\
   G16 = NAND(G2, G11)\n\
   G19 = NAND(G11, G7)\n\
   G22 = NAND(G10, G16)\n\
   G23 = NAND(G16, G19)\n"

let c17 () = Bench_io.parse_string ~name:"c17" c17_bench_text

let evaluated_names =
  [ "s208"; "s298"; "s344"; "s349"; "s382"; "s386"; "s526"; "s1196"; "s1238" ]

let load name =
  if name = "s27" then s27 ()
  else if name = "c17" then c17 ()
  else
    match Generator.find_profile name with
    | Some profile -> Generator.generate profile
    | None -> raise Not_found

let all () = load "c17" :: load "s27" :: List.map load evaluated_names
