(** The benchmark suite behind the paper's §4 experiments.

    s27 is the genuine ISCAS'89 netlist (small enough to embed verbatim);
    the nine evaluated circuits are deterministic synthetic stand-ins
    with matching interface/size profiles — see DESIGN.md,
    substitution 1. *)

val s27_bench_text : string
(** The real ISCAS'89 s27 netlist in [.bench] format. *)

val s27 : unit -> Spsta_netlist.Circuit.t

val c17_bench_text : string
(** The real ISCAS'85 c17 netlist (combinational, six NAND gates). *)

val c17 : unit -> Spsta_netlist.Circuit.t

val evaluated_names : string list
(** The nine circuits of Table 2/3, in paper order: s208 .. s1238. *)

val load : string -> Spsta_netlist.Circuit.t
(** [load "s344"] returns the suite circuit of that name ("s27" and
    "c17" give the real netlists, others their synthetic stand-in).
    Raises [Not_found] for unknown names. *)

val all : unit -> Spsta_netlist.Circuit.t list
(** c17 and s27 plus the nine evaluated circuits. *)
