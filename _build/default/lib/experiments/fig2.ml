module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark
module Discrete = Spsta_dist.Discrete

type result = {
  sum_exact : Normal.t;
  max_clark : Normal.t;
  max_exact_series : (float * float) list;
  max_exact_mean : float;
  max_exact_stddev : float;
  max_skewness : float;
}

let run ?(dt = 0.02) () =
  let a = Normal.make ~mu:3.0 ~sigma:1.0 in
  let b = Normal.make ~mu:2.0 ~sigma:0.5 in
  let c = Normal.make ~mu:3.0 ~sigma:2.0 in
  let da = Discrete.of_normal ~dt ~mass:1.0 a in
  let dc = Discrete.of_normal ~dt ~mass:1.0 c in
  let max_exact = Discrete.max_independent da dc in
  {
    sum_exact = Normal.sum a b;
    max_clark = Clark.max_normal a c;
    max_exact_series = Discrete.density_series max_exact;
    max_exact_mean = Discrete.mean max_exact;
    max_exact_stddev = Discrete.stddev max_exact;
    max_skewness = Discrete.skewness max_exact;
  }

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig 2: SSTA basic operations\n\
        SUM  N(3,1) + N(2,0.5)      = N(%.3f, %.3f) (exactly normal)\n\
        MAX  N(3,1) vs N(3,2), Clark moments: N(%.3f, %.3f)\n\
        MAX  exact lattice: mean %.3f stddev %.3f skewness %.3f (non-normal)\n"
       (Normal.mean r.sum_exact) (Normal.stddev r.sum_exact)
       (Normal.mean r.max_clark) (Normal.stddev r.max_clark)
       r.max_exact_mean r.max_exact_stddev r.max_skewness);
  Buffer.add_string buf "MAX density series (every 25th point):\n";
  List.iteri
    (fun i (x, d) ->
      if i mod 25 = 0 && d > 1e-4 then Buffer.add_string buf (Printf.sprintf "  %7.2f  %.5f\n" x d))
    r.max_exact_series;
  Buffer.contents buf
