(** Fig. 2 of the paper: the two basic SSTA operations.  SUM of two
    normals stays normal; MAX of two normals is skewed and *not* normal —
    rendered by comparing Clark's moment-matched normal against the exact
    lattice distribution. *)

type result = {
  sum_exact : Spsta_dist.Normal.t;  (** N(3,1) + N(2,0.5) *)
  max_clark : Spsta_dist.Normal.t;  (** moment-matched MAX(N(3,1), N(3,2)) *)
  max_exact_series : (float * float) list;  (** exact density of the MAX *)
  max_exact_mean : float;
  max_exact_stddev : float;
  max_skewness : float;  (** of the exact MAX: nonzero = non-normal *)
}

val run : ?dt:float -> unit -> result
val render : result -> string
