module Truth = Spsta_logic.Truth
module Gate_kind = Spsta_logic.Gate_kind

type result = {
  p_inputs : float * float;
  rho_inputs : float * float;
  p_output : float;
  boolean_diff_probs : float * float;
  rho_output : float;
}

let run ?(p1 = 0.5) ?(p2 = 0.5) ?(rho1 = 0.5) ?(rho2 = 0.5) () =
  let gate = Truth.of_gate Gate_kind.And ~arity:2 in
  let probs = [| p1; p2 |] in
  let diff i = Truth.prob_one (Truth.boolean_difference gate i) probs in
  let d1 = diff 0 and d2 = diff 1 in
  {
    p_inputs = (p1, p2);
    rho_inputs = (rho1, rho2);
    p_output = Truth.prob_one gate probs;
    boolean_diff_probs = (d1, d2);
    rho_output = (d1 *. rho1) +. (d2 *. rho2);
  }

let render r =
  let p1, p2 = r.p_inputs and rho1, rho2 = r.rho_inputs in
  let d1, d2 = r.boolean_diff_probs in
  Printf.sprintf
    "Fig 3: AND gate signal probability / toggling rate\n\
     inputs: P(x1)=%.3f P(x2)=%.3f rho(x1)=%.3f rho(x2)=%.3f\n\
     P(y) = P(x1) P(x2) = %.3f\n\
     P(dy/dx1) = P(x2) = %.3f, P(dy/dx2) = P(x1) = %.3f\n\
     rho(y) = P(dy/dx1) rho(x1) + P(dy/dx2) rho(x2) = %.3f\n"
    p1 p2 rho1 rho2 r.p_output d1 d2 r.rho_output
