(** Fig. 3 of the paper: signal probability and signal toggling rate
    computation for a two-input AND gate (eq. 5 and eq. 6). *)

type result = {
  p_inputs : float * float;
  rho_inputs : float * float;
  p_output : float;  (** P(y) = P(x1) P(x2) *)
  boolean_diff_probs : float * float;  (** P(dy/dx1), P(dy/dx2) *)
  rho_output : float;  (** eq. 6 *)
}

val run : ?p1:float -> ?p2:float -> ?rho1:float -> ?rho2:float -> unit -> result
(** Defaults reproduce the paper's 0.5/0.5 example. *)

val render : result -> string
