(** Fig. 4 of the paper: the MAX and the WEIGHTED SUM results for a
    two-input AND gate whose inputs both have 0.9 signal probability and
    symmetric arrival distributions with the same mean but different
    deviations.  MAX skews the output; the WEIGHTED SUM keeps it
    symmetric. *)

type series_stats = {
  series : (float * float) list;  (** normalised density over time *)
  mean : float;
  stddev : float;
  skewness : float;
}

type result = {
  max_result : series_stats;  (** plain MAX(t1, t2) as SSTA would take *)
  weighted_sum_result : series_stats;  (** SPSTA's rising-output t.o.p., normalised *)
  rise_probability : float;  (** total mass of the rising t.o.p. *)
}

val run : ?dt:float -> ?sigma1:float -> ?sigma2:float -> unit -> result
(** Defaults: dt 0.02, arrival N(5,1) and N(5,0.5). *)

val render : result -> string
