module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind
module Timing_rule = Spsta_logic.Timing_rule
module Table = Spsta_util.Table

let cell kind op a b =
  let v = op a b in
  let annotation =
    (* annotate the simultaneous-switching diagonal like the paper *)
    if Value4.is_transition v && Value4.is_transition a && Value4.is_transition b then
      Printf.sprintf "%s (%s)" (Value4.to_string v)
        (Timing_rule.to_string (Timing_rule.for_output kind v))
    else Value4.to_string v
  in
  annotation

let render_gate name kind op =
  let table = Table.create ~headers:(name :: List.map Value4.to_string Value4.all) in
  List.iter
    (fun a ->
      Table.add_row table
        (Value4.to_string a :: List.map (fun b -> cell kind op a b) Value4.all))
    Value4.all;
  Table.render table

let render () =
  Printf.sprintf "Table 1: four-value logic operations\n%s\n\n%s\n"
    (render_gate "AND" Gate_kind.And Value4.land2)
    (render_gate "OR" Gate_kind.Or Value4.lor2)
