(** Table 1 of the paper: the four-value AND and OR operations, with the
    MIN/MAX arrival-time annotation for simultaneous same-direction input
    transitions.  Generated from {!Spsta_logic.Value4}, so the rendering
    is also a machine check of the implemented semantics. *)

val render : unit -> string
