(** Table 3 of the paper: CPU runtimes of SPSTA, SSTA and 10K-run Monte
    Carlo per circuit.  Absolute seconds are machine-specific; the
    reproduced claim is the ordering (SSTA < SPSTA << MC). *)

type row = {
  circuit_name : string;
  spsta_seconds : float;
  ssta_seconds : float;
  mc_seconds : float;
  mc_runs : int;
}

val run_circuit : ?runs:int -> ?seed:int -> Spsta_netlist.Circuit.t -> case:Workloads.case -> row
val run_suite : ?runs:int -> ?seed:int -> case:Workloads.case -> unit -> row list
val render : row list -> string
