type case = Case_i | Case_ii

let all_cases = [ Case_i; Case_ii ]
let case_name = function Case_i -> "I" | Case_ii -> "II"

let spec_of_case = function
  | Case_i -> Spsta_sim.Input_spec.case_i
  | Case_ii -> Spsta_sim.Input_spec.case_ii

let uniform spec _id = spec
let spec_fn case = uniform (spec_of_case case)
