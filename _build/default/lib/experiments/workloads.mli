(** The paper's two input-statistics regimes (§4), applied uniformly to
    every timing source. *)

type case = Case_i | Case_ii

val all_cases : case list
val case_name : case -> string
(** "I" or "II". *)

val spec_of_case : case -> Spsta_sim.Input_spec.t

val uniform :
  Spsta_sim.Input_spec.t -> Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t
(** A constant per-source spec function. *)

val spec_fn : case -> Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t
