lib/interconnect/wire_model.ml: Array Rc_tree Spsta_netlist Spsta_variation
