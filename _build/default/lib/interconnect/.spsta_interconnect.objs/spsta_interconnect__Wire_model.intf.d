lib/interconnect/wire_model.mli: Rc_tree Spsta_netlist Spsta_variation
