type node = int

type entry = {
  parent : int; (* -1 for the root *)
  resistance : float; (* of the segment from the parent *)
  capacitance : float;
}

type t = {
  mutable entries : entry array;
  mutable size : int;
  driver_resistance : float;
}

let create ?(driver_resistance = 0.0) ~root_cap () =
  if driver_resistance < 0.0 then invalid_arg "Rc_tree.create: negative driver resistance";
  if root_cap < 0.0 then invalid_arg "Rc_tree.create: negative capacitance";
  {
    entries = Array.make 8 { parent = -1; resistance = 0.0; capacitance = root_cap };
    size = 1;
    driver_resistance;
  }

let root _ = 0

let add_child t parent ~resistance ~capacitance =
  if resistance < 0.0 || capacitance < 0.0 then invalid_arg "Rc_tree.add_child: negative R or C";
  if parent < 0 || parent >= t.size then invalid_arg "Rc_tree.add_child: unknown parent";
  if t.size = Array.length t.entries then begin
    let next = Array.make (2 * t.size) t.entries.(0) in
    Array.blit t.entries 0 next 0 t.size;
    t.entries <- next
  end;
  t.entries.(t.size) <- { parent; resistance; capacitance };
  t.size <- t.size + 1;
  t.size - 1

let node_count t = t.size

let total_capacitance t =
  let acc = ref 0.0 in
  for i = 0 to t.size - 1 do
    acc := !acc +. t.entries.(i).capacitance
  done;
  !acc

(* C of the subtree rooted at each node: children appear after parents,
   so one reverse sweep accumulates *)
let subtree_caps t =
  let caps = Array.init t.size (fun i -> t.entries.(i).capacitance) in
  for i = t.size - 1 downto 1 do
    caps.(t.entries.(i).parent) <- caps.(t.entries.(i).parent) +. caps.(i)
  done;
  caps

let elmore_delay t node =
  if node < 0 || node >= t.size then invalid_arg "Rc_tree.elmore_delay: unknown node";
  let caps = subtree_caps t in
  let rec walk i acc =
    if i = 0 then acc +. (t.driver_resistance *. caps.(0))
    else walk t.entries.(i).parent (acc +. (t.entries.(i).resistance *. caps.(i)))
  in
  walk node 0.0

let worst_elmore t =
  let worst = ref 0.0 in
  for i = 0 to t.size - 1 do
    let d = elmore_delay t i in
    if d > !worst then worst := d
  done;
  !worst

let balanced ?driver_resistance ~fanout ~segment_r ~segment_c ~sink_cap () =
  let t = create ?driver_resistance ~root_cap:0.0 () in
  for _ = 1 to fanout do
    ignore (add_child t (root t) ~resistance:segment_r ~capacitance:(segment_c +. sink_cap))
  done;
  t

let chain ?driver_resistance ~stages ~segment_r ~segment_c ~sink_cap () =
  let t = create ?driver_resistance ~root_cap:0.0 () in
  let rec extend parent remaining =
    if remaining = 0 then ()
    else begin
      let cap = if remaining = 1 then segment_c +. sink_cap else segment_c in
      let child = add_child t parent ~resistance:segment_r ~capacitance:cap in
      extend child (remaining - 1)
    end
  in
  extend (root t) stages;
  t
