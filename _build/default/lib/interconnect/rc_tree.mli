(** RC trees and the Elmore delay metric — the interconnect substrate the
    paper's discussion of variational interconnect analysis (§1, refs
    [3, 9, 10, 17]) presumes.

    A tree is rooted at the driver; each node carries the resistance of
    the wire segment from its parent and its own capacitance.  The Elmore
    delay to a sink is sum over the root-to-sink path segments of
    R(segment) * C(subtree below the segment). *)

type node
(** A tree node handle. *)

type t

val create : ?driver_resistance:float -> root_cap:float -> unit -> t
(** A fresh tree whose root (the driver output) has the given
    capacitance; [driver_resistance] (default 0) is in series before the
    root and sees the whole tree. *)

val root : t -> node

val add_child : t -> node -> resistance:float -> capacitance:float -> node
(** Attach a wire segment + node under a parent.
    Raises [Invalid_argument] on negative R or C. *)

val total_capacitance : t -> float

val elmore_delay : t -> node -> float
(** Elmore delay from the driver to this node. *)

val worst_elmore : t -> float
(** Maximum Elmore delay over all nodes. *)

val node_count : t -> int

val balanced :
  ?driver_resistance:float ->
  fanout:int ->
  segment_r:float ->
  segment_c:float ->
  sink_cap:float ->
  unit ->
  t
(** A star topology: [fanout] sinks, each behind one wire segment —
    the default net model used by {!Wire_model}. *)

val chain :
  ?driver_resistance:float ->
  stages:int ->
  segment_r:float ->
  segment_c:float ->
  sink_cap:float ->
  unit ->
  t
(** A single line of [stages] segments with the sink at the far end —
    the classic distributed-RC wire. *)
