module Circuit = Spsta_netlist.Circuit
module Param_model = Spsta_variation.Param_model

type params = {
  gate_delay : float;
  driver_resistance : float;
  r_per_unit : float;
  c_per_unit : float;
  sink_cap : float;
  unit_length : float;
}

let default_params =
  {
    gate_delay = 1.0;
    driver_resistance = 0.2;
    r_per_unit = 0.1;
    c_per_unit = 0.2;
    sink_cap = 0.1;
    unit_length = 1.0;
  }

type t = { params : params; trees : Rc_tree.t array; delays : float array }

let manhattan grid a b =
  let ax = a mod grid and ay = a / grid in
  let bx = b mod grid and by = b / grid in
  abs (ax - bx) + abs (ay - by)

let build ?(params = default_params) ?placement circuit =
  let n = Circuit.num_nets circuit in
  let tree_of_net id =
    let sinks = Circuit.fanout circuit id in
    let tree = Rc_tree.create ~driver_resistance:params.driver_resistance ~root_cap:0.0 () in
    Array.iter
      (fun sink ->
        let length =
          match placement with
          | None -> params.unit_length
          | Some (p, grid) ->
            let d = manhattan grid (Param_model.region p id) (Param_model.region p sink) in
            params.unit_length *. float_of_int (1 + d)
        in
        ignore
          (Rc_tree.add_child tree (Rc_tree.root tree)
             ~resistance:(params.r_per_unit *. length)
             ~capacitance:((params.c_per_unit *. length) +. params.sink_cap)))
      sinks;
    tree
  in
  let trees = Array.init n tree_of_net in
  let delays = Array.map Rc_tree.worst_elmore trees in
  { params; trees; delays }

let net_tree t id = t.trees.(id)
let net_delay t id = t.delays.(id)
let stage_delay t id = t.params.gate_delay +. t.delays.(id)

let total_wire_capacitance t =
  Array.fold_left (fun acc tree -> acc +. Rc_tree.total_capacitance tree) 0.0 t.trees
