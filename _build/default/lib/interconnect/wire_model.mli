(** A wire-load model tying circuits to RC interconnect: each net gets a
    star RC tree whose segment length grows with the net's fanout (and,
    when a placement is given, with the die-region distance between
    driver and sinks), and the net's delay is its worst Elmore delay.

    This replaces the paper's zero-net-delay assumption with a loaded
    model so the timing engines can be exercised with realistic
    per-stage delays; see the bench interconnect ablation. *)

type params = {
  gate_delay : float;  (** intrinsic gate delay (the paper's 1.0) *)
  driver_resistance : float;
  r_per_unit : float;  (** wire resistance per unit length *)
  c_per_unit : float;  (** wire capacitance per unit length *)
  sink_cap : float;  (** per driven gate input *)
  unit_length : float;  (** base segment length per fanout branch *)
}

val default_params : params
(** Normalised so a fanout-1 net adds roughly 0.1 to the unit gate
    delay, growing superlinearly with fanout. *)

type t

val build :
  ?params:params ->
  ?placement:Spsta_variation.Param_model.placement * int ->
  Spsta_netlist.Circuit.t ->
  t
(** Builds every net's RC tree.  With [placement] (a placement and the
    model's grid size), segment lengths also scale with the Manhattan
    distance between driver and sink regions. *)

val net_tree : t -> Spsta_netlist.Circuit.id -> Rc_tree.t
val net_delay : t -> Spsta_netlist.Circuit.id -> float
(** Worst Elmore delay of the net driven by this id (0 for loadless
    nets). *)

val stage_delay : t -> Spsta_netlist.Circuit.id -> float
(** Gate intrinsic delay plus its output net's Elmore delay: what the
    timing engines consume as [delay_of]. *)

val total_wire_capacitance : t -> float
