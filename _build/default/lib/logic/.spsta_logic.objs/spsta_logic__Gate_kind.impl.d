lib/logic/gate_kind.ml: Fun List Printf String Value4
