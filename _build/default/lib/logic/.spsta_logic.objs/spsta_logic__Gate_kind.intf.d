lib/logic/gate_kind.mli: Value4
