lib/logic/mis_model.ml: Timing_rule
