lib/logic/mis_model.mli: Timing_rule
