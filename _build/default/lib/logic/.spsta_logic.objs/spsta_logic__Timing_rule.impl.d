lib/logic/timing_rule.ml: Float Gate_kind List Value4
