lib/logic/timing_rule.mli: Gate_kind Value4
