lib/logic/truth.ml: Array Bytes Char Gate_kind Int List
