lib/logic/truth.mli: Gate_kind
