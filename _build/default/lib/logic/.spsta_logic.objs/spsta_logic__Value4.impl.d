lib/logic/value4.ml: Format Int
