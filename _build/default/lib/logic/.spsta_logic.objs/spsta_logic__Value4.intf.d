lib/logic/value4.mli: Format
