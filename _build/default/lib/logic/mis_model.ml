type t = { min_speedup : float; max_slowdown : float; window : float }

let make ?(min_speedup = 0.15) ?(max_slowdown = 0.10) ?(window = infinity) () =
  if min_speedup < 0.0 || max_slowdown < 0.0 then
    invalid_arg "Mis_model.make: negative rate";
  if not (window > 0.0) then invalid_arg "Mis_model.make: window must be positive";
  { min_speedup; max_slowdown; window }

let none = { min_speedup = 0.0; max_slowdown = 0.0; window = infinity }

let factor t rule ~simultaneous =
  if simultaneous < 1 then invalid_arg "Mis_model.factor: needs at least one switching input";
  let extra = float_of_int (simultaneous - 1) in
  match rule with
  | Timing_rule.Min -> 1.0 /. (1.0 +. (t.min_speedup *. extra))
  | Timing_rule.Max -> 1.0 +. (t.max_slowdown *. extra)
