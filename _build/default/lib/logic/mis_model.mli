(** Multiple-input switching (MIS) gate-delay model (paper §1, citing
    Agarwal/Dartu/Blaauw DAC'04: ignoring MIS underestimates mean gate
    delay by up to 20% and overestimates its deviation by up to 26%).

    When [k] inputs switch (near-)simultaneously:
    - toward the controlling value (MIN-rule transitions), the parallel
      conducting transistors *speed up* the output:
      factor = 1 / (1 + min_speedup * (k-1));
    - toward the non-controlling value (MAX-rule transitions), charge
      sharing and the later effective ramp *slow it down*:
      factor = 1 + max_slowdown * (k-1).

    The simulator counts inputs switching within [window] of the
    deciding transition; the analyzer applies the factor to each
    simultaneous-switching term of eq. 11 (exact when [window] is
    infinite, conservative otherwise). *)

type t = {
  min_speedup : float;  (** per extra simultaneous input, >= 0 *)
  max_slowdown : float;  (** per extra simultaneous input, >= 0 *)
  window : float;  (** simultaneity window in time units, > 0 *)
}

val make : ?min_speedup:float -> ?max_slowdown:float -> ?window:float -> unit -> t
(** Defaults: speedup 0.15, slowdown 0.10, window infinite.
    Raises [Invalid_argument] on negative rates or non-positive
    window. *)

val none : t
(** Factors of 1 everywhere: the single-input-switching model. *)

val factor : t -> Timing_rule.t -> simultaneous:int -> float
(** Delay multiplier for a transition decided by [simultaneous]
    switching inputs (>= 1). *)
