type t = Min | Max

let equal (a : t) (b : t) = a = b
let to_string = function Min -> "MIN" | Max -> "MAX"

let for_output kind out =
  let final =
    match out with
    | Value4.Rising -> true
    | Value4.Falling -> false
    | Value4.Zero | Value4.One -> invalid_arg "Timing_rule.for_output: steady output"
  in
  match Gate_kind.controlled_value kind with
  | None -> Max
  | Some controlled ->
    (* ending at the controlled value means an input reached the
       controlling value: first such input wins (MIN); ending at the
       non-controlled value requires every input non-controlling: last
       transition wins (MAX) *)
    if final = controlled then Min else Max

let combine rule times =
  match times with
  | [] -> invalid_arg "Timing_rule.combine: no transitioning inputs"
  | first :: rest ->
    let op = match rule with Min -> Float.min | Max -> Float.max in
    List.fold_left op first rest
