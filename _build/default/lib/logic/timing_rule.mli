(** Which of MIN or MAX governs an output transition's arrival time.

    For a gate with a controlling value, a transition *toward* the
    controlling value propagates as soon as the first input reaches it
    (MIN), while a transition toward the non-controlling value must wait
    for the last input (MAX) — the paper's Table 1 annotations.  Gates
    without a controlling value (XOR family, inverters, buffers) settle
    with the last transitioning input (MAX; exact when a single input
    switches). *)

type t = Min | Max

val equal : t -> t -> bool
val to_string : t -> string

val for_output : Gate_kind.t -> Value4.t -> t
(** [for_output kind out] — [out] is the gate's *own* output transition
    ([Rising] or [Falling], after any inversion).
    Raises [Invalid_argument] for steady outputs. *)

val combine : t -> float list -> float
(** Fold arrival times under the rule.
    Raises [Invalid_argument] on an empty list. *)
