type t = { arity : int; bits : Bytes.t }

let max_arity = 20

let arity t = t.arity

let table_size arity = 1 lsl arity

let byte_size arity = (table_size arity + 7) / 8

let get_bit bits i = Char.code (Bytes.get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit bits i =
  let j = i lsr 3 in
  Bytes.set bits j (Char.chr (Char.code (Bytes.get bits j) lor (1 lsl (i land 7))))

let create ~arity f =
  if arity < 0 || arity > max_arity then invalid_arg "Truth.create: arity out of range";
  let bits = Bytes.make (byte_size arity) '\000' in
  for a = 0 to table_size arity - 1 do
    if f a then set_bit bits a
  done;
  { arity; bits }

let eval t assignment = get_bit t.bits (assignment land (table_size t.arity - 1))

let of_gate kind ~arity =
  let eval_assignment a =
    let inputs = List.init arity (fun i -> a land (1 lsl i) <> 0) in
    Gate_kind.eval_bool kind inputs
  in
  create ~arity eval_assignment

let var ~arity i =
  if i < 0 || i >= arity then invalid_arg "Truth.var: index out of range";
  create ~arity (fun a -> a land (1 lsl i) <> 0)

let const ~arity b = create ~arity (fun _ -> b)

let check_same_arity a b = if a.arity <> b.arity then invalid_arg "Truth: arity mismatch"

let lnot t = create ~arity:t.arity (fun a -> not (eval t a))

let lift2 op a b =
  check_same_arity a b;
  create ~arity:a.arity (fun x -> op (eval a x) (eval b x))

let land2 = lift2 ( && )
let lor2 = lift2 ( || )
let lxor2 = lift2 (fun x y -> x <> y)

let equal a b = a.arity = b.arity && Bytes.equal a.bits b.bits

let cofactor t i b =
  if i < 0 || i >= t.arity then invalid_arg "Truth.cofactor: index out of range";
  let mask = 1 lsl i in
  create ~arity:t.arity (fun a ->
      let a' = if b then a lor mask else a land Int.lognot mask in
      eval t a')

let boolean_difference t i = lxor2 (cofactor t i true) (cofactor t i false)

let depends_on t i = not (equal (cofactor t i true) (cofactor t i false))

let prob_one t p =
  if Array.length p <> t.arity then invalid_arg "Truth.prob_one: probability arity mismatch";
  Array.iter
    (fun x -> if not (x >= 0.0 && x <= 1.0) then invalid_arg "Truth.prob_one: probability outside [0,1]")
    p;
  let total = ref 0.0 in
  for a = 0 to table_size t.arity - 1 do
    if eval t a then begin
      let w = ref 1.0 in
      for i = 0 to t.arity - 1 do
        let pi = if a land (1 lsl i) <> 0 then p.(i) else 1.0 -. p.(i) in
        w := !w *. pi
      done;
      total := !total +. !w
    end
  done;
  !total

let count_ones t =
  let n = ref 0 in
  for a = 0 to table_size t.arity - 1 do
    if eval t a then incr n
  done;
  !n
