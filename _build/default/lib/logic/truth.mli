(** Truth-table representation of Boolean functions over a small, fixed
    input arity.  This is the exact-function substrate behind signal
    probability (eq. 5), Boolean difference (eq. 7), and the power
    estimation equations (eq. 6).

    Inputs are indexed 0..arity-1; an assignment is an int whose bit [i]
    is the value of input [i]. *)

type t

val arity : t -> int

val create : arity:int -> (int -> bool) -> t
(** [create ~arity f] tabulates [f] over all [2^arity] assignments.
    Raises [Invalid_argument] if arity is negative or above {!max_arity}. *)

val max_arity : int
(** Practical cap (20): tables are dense, 2^20 entries at most. *)

val of_gate : Gate_kind.t -> arity:int -> t
(** The function computed by a gate of the given fan-in. *)

val var : arity:int -> int -> t
(** Projection x_i. *)

val const : arity:int -> bool -> t

val eval : t -> int -> bool
(** [eval t assignment]; assignment bits above the arity are ignored. *)

val lnot : t -> t
val land2 : t -> t -> t
val lor2 : t -> t -> t
val lxor2 : t -> t -> t
(** Pointwise connectives.  Raise [Invalid_argument] on arity mismatch. *)

val equal : t -> t -> bool

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] fixes input [i] to [b]; the result keeps the same
    arity but no longer depends on input [i]. *)

val boolean_difference : t -> int -> t
(** Eq. 7: y|x_i=1 XOR y|x_i=0 — the condition under which a transition
    on input [i] propagates to the output. *)

val depends_on : t -> int -> bool

val prob_one : t -> float array -> float
(** [prob_one t p] = P(f = 1) when input [i] is an independent Bernoulli
    with P(one) = p.(i) (eq. 5 generalised).  Array length must equal the
    arity; probabilities must lie in [0, 1]. *)

val count_ones : t -> int
(** Number of satisfying assignments. *)
