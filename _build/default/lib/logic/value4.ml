type t = Zero | One | Rising | Falling

let equal a b =
  match (a, b) with
  | Zero, Zero | One, One | Rising, Rising | Falling, Falling -> true
  | (Zero | One | Rising | Falling), _ -> false

let rank = function Zero -> 0 | One -> 1 | Rising -> 2 | Falling -> 3
let compare a b = Int.compare (rank a) (rank b)

let to_string = function Zero -> "0" | One -> "1" | Rising -> "r" | Falling -> "f"

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'r' -> Some Rising
  | 'f' -> Some Falling
  | _ -> None

let all = [ Zero; One; Rising; Falling ]

let initial = function Zero | Rising -> false | One | Falling -> true
let final = function Zero | Falling -> false | One | Rising -> true

let of_initial_final i f =
  match (i, f) with
  | false, false -> Zero
  | true, true -> One
  | false, true -> Rising
  | true, false -> Falling

let is_transition = function Rising | Falling -> true | Zero | One -> false

(* The no-glitch Table 1 semantics fall out of evaluating the start-of-
   cycle and end-of-cycle levels separately: a net that starts and ends at
   the same level is steady even if it would pulse in between. *)
let lift2 op a b = of_initial_final (op (initial a) (initial b)) (op (final a) (final b))

let lnot v = of_initial_final (not (initial v)) (not (final v))
let land2 = lift2 ( && )
let lor2 = lift2 ( || )
let lxor2 = lift2 (fun x y -> x <> y)

let pp fmt v = Format.pp_print_string fmt (to_string v)
