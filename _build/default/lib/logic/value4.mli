(** The paper's four-value logic (§3.3): logic zero, logic one, rising
    transition, falling transition.

    A value describes what a net does during one clock cycle.  [Rising]
    means the net starts the cycle at 0 and ends at 1; the *time* of the
    transition is tracked separately by the simulators and analyzers. *)

type t = Zero | One | Rising | Falling

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
(** "0", "1", "r", "f" — the paper's notation. *)

val of_char : char -> t option
(** Inverse of {!to_string} on single characters. *)

val all : t list

val initial : t -> bool
(** Value at the start of the cycle: [Rising] starts low, [Falling] high. *)

val final : t -> bool
(** Value at the end of the cycle. *)

val of_initial_final : bool -> bool -> t
(** Reconstruct a four-value symbol from start/end-of-cycle levels. *)

val is_transition : t -> bool

val lnot : t -> t
(** Four-value negation: swaps 0/1 and r/f. *)

val land2 : t -> t -> t
(** Four-value AND per Table 1 of the paper (glitches resolve to the
    steady value: [land2 Rising Falling = Zero]). *)

val lor2 : t -> t -> t
(** Four-value OR per Table 1. *)

val lxor2 : t -> t -> t
(** Four-value XOR under the same no-glitch convention. *)

val pp : Format.formatter -> t -> unit
