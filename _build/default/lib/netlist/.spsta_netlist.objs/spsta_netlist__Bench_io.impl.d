lib/netlist/bench_io.ml: Array Buffer Circuit Filename List Printf Spsta_logic String
