lib/netlist/builder_of_circuit.ml: Circuit List
