lib/netlist/builder_of_circuit.mli: Circuit
