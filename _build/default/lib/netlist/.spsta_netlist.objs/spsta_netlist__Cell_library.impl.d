lib/netlist/cell_library.ml: Array Circuit Float List Spsta_logic
