lib/netlist/cell_library.mli: Circuit Spsta_logic
