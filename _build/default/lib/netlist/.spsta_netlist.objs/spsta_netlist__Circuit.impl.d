lib/netlist/circuit.ml: Array Format Hashtbl List Printf Queue Spsta_logic
