lib/netlist/circuit.mli: Format Spsta_logic
