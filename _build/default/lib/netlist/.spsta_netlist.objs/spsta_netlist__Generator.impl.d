lib/netlist/generator.ml: Array Circuit Hashtbl List Printf Spsta_logic Spsta_util
