lib/netlist/generator.mli: Circuit
