lib/netlist/transform.ml: Array Builder_of_circuit Circuit Hashtbl List Printf Spsta_logic String
