lib/netlist/verilog_io.ml: Array Buffer Circuit Hashtbl List Printf Spsta_logic String
