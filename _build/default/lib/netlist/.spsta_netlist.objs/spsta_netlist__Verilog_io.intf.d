lib/netlist/verilog_io.mli: Circuit
