exception Parse_error of { line : int; message : string }

let parse_fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = '[' || c = ']' || c = '$' || c = '-' || c = '/'

let check_ident lineno s =
  if s = "" then parse_fail lineno "empty net name";
  String.iter (fun c -> if not (is_ident_char c) then parse_fail lineno "invalid character %C in net name %s" c s) s;
  s

(* "HEAD(arg1, arg2, ...)" -> (HEAD, [args]) *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> parse_fail lineno "expected '(' in %S" s
  | Some open_paren ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      parse_fail lineno "expected trailing ')' in %S" s;
    let head = String.trim (String.sub s 0 open_paren) in
    let args_str = String.sub s (open_paren + 1) (String.length s - open_paren - 2) in
    let args =
      String.split_on_char ',' args_str
      |> List.map String.trim
      |> List.filter (fun a -> a <> "")
    in
    (head, args)

let parse_string ?(name = "") text =
  let builder = Circuit.Builder.create ~name () in
  let handle_line lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line <> "" then begin
      match String.index_opt line '=' with
      | None -> begin
        (* INPUT(x) or OUTPUT(x) *)
        let head, args = parse_call lineno line in
        let arg =
          match args with
          | [ a ] -> check_ident lineno a
          | [] | _ :: _ -> parse_fail lineno "%s expects exactly one net" head
        in
        match String.uppercase_ascii head with
        | "INPUT" -> Circuit.Builder.add_input builder arg
        | "OUTPUT" -> Circuit.Builder.add_output builder arg
        | other -> parse_fail lineno "unknown declaration %s" other
      end
      | Some eq -> begin
        let output = check_ident lineno (String.trim (String.sub line 0 eq)) in
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let head, args = parse_call lineno rhs in
        let args = List.map (check_ident lineno) args in
        match String.uppercase_ascii head with
        | "DFF" -> begin
          match args with
          | [ d ] -> Circuit.Builder.add_dff builder ~q:output ~d
          | [] | _ :: _ -> parse_fail lineno "DFF expects exactly one data net"
        end
        | head_name -> begin
          match Spsta_logic.Gate_kind.of_string head_name with
          | Some kind -> Circuit.Builder.add_gate builder ~output kind args
          | None -> parse_fail lineno "unknown gate type %s" head_name
        end
      end
    end
  in
  List.iteri (fun i l -> handle_line (i + 1) l) (String.split_on_char '\n' text);
  Circuit.Builder.finalize builder

let basename_no_ext path =
  let base = Filename.basename path in
  match Filename.chop_suffix_opt ~suffix:".bench" base with
  | Some stem -> stem
  | None -> ( try Filename.chop_extension base with Invalid_argument _ -> base )

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~name:(basename_no_ext path) text

let to_string circuit =
  let buf = Buffer.create 4096 in
  if Circuit.name circuit <> "" then
    Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name circuit));
  let net = Circuit.net_name circuit in
  List.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (net i)))
    (Circuit.primary_inputs circuit);
  List.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (net i)))
    (Circuit.primary_outputs circuit);
  List.iter
    (fun (q, d) -> Buffer.add_string buf (Printf.sprintf "%s = DFF(%s)\n" (net q) (net d)))
    (Circuit.dffs circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        let args = String.concat ", " (Array.to_list (Array.map net inputs)) in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (net g) (Spsta_logic.Gate_kind.to_string kind) args)
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  Buffer.contents buf

let write_file circuit path =
  let oc = open_out path in
  output_string oc (to_string circuit);
  close_out oc
