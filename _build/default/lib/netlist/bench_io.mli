(** Reader and writer for the ISCAS'89 [.bench] netlist format:

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    v} *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Circuit.t
(** Raises {!Parse_error} on malformed text and
    {!Circuit.Invalid_circuit} on structurally invalid netlists. *)

val parse_file : string -> Circuit.t
(** Circuit name defaults to the file basename without extension. *)

val to_string : Circuit.t -> string
(** Render back to [.bench]; [parse_string (to_string c)] is structurally
    identical to [c]. *)

val write_file : Circuit.t -> string -> unit
