let builder_with_interface circuit =
  let b = Circuit.Builder.create ~name:(Circuit.name circuit) () in
  List.iter
    (fun i -> Circuit.Builder.add_input b (Circuit.net_name circuit i))
    (Circuit.primary_inputs circuit);
  List.iter
    (fun o -> Circuit.Builder.add_output b (Circuit.net_name circuit o))
    (Circuit.primary_outputs circuit);
  List.iter
    (fun (q, d) ->
      Circuit.Builder.add_dff b ~q:(Circuit.net_name circuit q) ~d:(Circuit.net_name circuit d))
    (Circuit.dffs circuit);
  b
