(** Internal helper shared by netlist transformations: a fresh builder
    pre-populated with a circuit's interface (inputs, outputs,
    flip-flops) so a rewrite only re-emits gates. *)

val builder_with_interface : Circuit.t -> Circuit.Builder.t
