module Gate_kind = Spsta_logic.Gate_kind

type t = {
  base : Gate_kind.t -> float;
  per_input : Gate_kind.t -> float;
  rise_fall_skew : Gate_kind.t -> float;
}

let validate t =
  List.iter
    (fun kind ->
      if t.base kind < 0.0 then invalid_arg "Cell_library.make: negative base delay";
      if t.per_input kind < 0.0 then invalid_arg "Cell_library.make: negative per-input delay";
      if Float.abs (t.rise_fall_skew kind) >= 1.0 then
        invalid_arg "Cell_library.make: skew magnitude must be below 1")
    Gate_kind.all;
  t

let make ~base ~per_input ~rise_fall_skew = validate { base; per_input; rise_fall_skew }

let unit_delay =
  make ~base:(fun _ -> 1.0) ~per_input:(fun _ -> 0.0) ~rise_fall_skew:(fun _ -> 0.0)

let default =
  let base = function
    | Gate_kind.Not -> 0.6
    | Gate_kind.Buf -> 0.7
    | Gate_kind.Nand -> 0.8
    | Gate_kind.Nor -> 0.9
    | Gate_kind.And -> 1.0
    | Gate_kind.Or -> 1.0
    | Gate_kind.Xor -> 1.4
    | Gate_kind.Xnor -> 1.4
  in
  let per_input = function
    | Gate_kind.Not | Gate_kind.Buf -> 0.0
    | Gate_kind.Nand | Gate_kind.Nor | Gate_kind.And | Gate_kind.Or -> 0.15
    | Gate_kind.Xor | Gate_kind.Xnor -> 0.25
  in
  let rise_fall_skew = function
    | Gate_kind.Nand -> 0.10 (* pmos pull-up is weaker: rise slower *)
    | Gate_kind.Nor -> 0.15
    | Gate_kind.Not -> 0.05
    | Gate_kind.And | Gate_kind.Or | Gate_kind.Xor | Gate_kind.Xnor | Gate_kind.Buf -> 0.0
  in
  make ~base ~per_input ~rise_fall_skew

let nominal t kind ~fanin = t.base kind +. (t.per_input kind *. float_of_int (max 0 (fanin - 1)))

let delay t kind ~fanin direction =
  let d = nominal t kind ~fanin in
  match direction with
  | `Rise -> d *. (1.0 +. t.rise_fall_skew kind)
  | `Fall -> d *. (1.0 -. t.rise_fall_skew kind)

let rise_fall_of t kind ~fanin = (delay t kind ~fanin `Rise, delay t kind ~fanin `Fall)

let mean_delay t kind ~fanin =
  let r, f = rise_fall_of t kind ~fanin in
  (r +. f) /. 2.0

let gate_delays t circuit id =
  match Circuit.driver circuit id with
  | Circuit.Gate { kind; inputs } -> rise_fall_of t kind ~fanin:(Array.length inputs)
  | Circuit.Input | Circuit.Dff_output _ ->
    invalid_arg "Cell_library.gate_delays: net is not gate-driven"
