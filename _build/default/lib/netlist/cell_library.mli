(** A simple characterised cell library: per gate kind, a base delay, a
    per-fan-in increment, and a rise/fall asymmetry — the step from the
    paper's uniform unit delay toward realistic standard-cell timing.

    delay(kind, fanin, direction) =
      (base kind + per_input kind * (fanin - 1)) * skew(kind, direction)

    where rise delays are multiplied by [1 + rise_fall_skew kind] and
    fall delays by [1 - rise_fall_skew kind]. *)

type t

val unit_delay : t
(** The paper's model: every delay is exactly 1.0. *)

val default : t
(** A generic library: inverters fastest, XOR slowest, fan-in adds ~15%
    per input, NAND/NOR mildly rise/fall asymmetric. *)

val make :
  base:(Spsta_logic.Gate_kind.t -> float) ->
  per_input:(Spsta_logic.Gate_kind.t -> float) ->
  rise_fall_skew:(Spsta_logic.Gate_kind.t -> float) ->
  t
(** Raises [Invalid_argument] if any base or per-input delay is negative
    or a skew magnitude reaches 1. *)

val delay : t -> Spsta_logic.Gate_kind.t -> fanin:int -> [ `Rise | `Fall ] -> float

val rise_fall_of : t -> Spsta_logic.Gate_kind.t -> fanin:int -> float * float
(** (rise delay, fall delay). *)

val mean_delay : t -> Spsta_logic.Gate_kind.t -> fanin:int -> float
(** Average of rise and fall — a direction-less summary for engines that
    take a single per-gate delay. *)

val gate_delays :
  t -> Circuit.t -> Circuit.id -> float * float
(** (rise, fall) delay of the gate driving this net.
    Raises [Invalid_argument] if the net is not gate-driven. *)
