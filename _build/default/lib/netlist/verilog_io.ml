module Gate_kind = Spsta_logic.Gate_kind

exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ---- lexer ---- *)

type token = Ident of string | Punct of char

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '$' || c = '\\' || c = '[' || c = ']' || c = '.'

(* tokens tagged with their source line for error reporting *)
let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail !line "unterminated block comment"
        else if text.[!i] = '*' && text.[!i + 1] = '/' then i := !i + 2
        else begin
          if text.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else if c = '(' || c = ')' || c = ',' || c = ';' then begin
      tokens := (Punct c, !line) :: !tokens;
      incr i
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !tokens

(* ---- parser ---- *)

type stream = { mutable tokens : (token * int) list; mutable last_line : int }

let next s =
  match s.tokens with
  | [] -> fail s.last_line "unexpected end of input"
  | (t, l) :: rest ->
    s.tokens <- rest;
    s.last_line <- l;
    (t, l)

let expect_punct s c =
  match next s with
  | Punct p, _ when p = c -> ()
  | Ident id, l -> fail l "expected %C, got identifier %s" c id
  | Punct p, l -> fail l "expected %C, got %C" c p

let expect_ident s =
  match next s with
  | Ident id, l -> (id, l)
  | Punct p, l -> fail l "expected identifier, got %C" p

let expect_keyword s kw =
  let id, l = expect_ident s in
  if String.lowercase_ascii id <> kw then fail l "expected %s, got %s" kw id

(* identifier list terminated by ';' *)
let ident_list s =
  let rec go acc =
    let id, _ = expect_ident s in
    match next s with
    | Punct ',', _ -> go (id :: acc)
    | Punct ';', _ -> List.rev (id :: acc)
    | Punct p, l -> fail l "expected ',' or ';', got %C" p
    | Ident other, l -> fail l "expected ',' or ';', got %s" other
  in
  go []

(* parenthesised identifier list *)
let paren_list s =
  expect_punct s '(';
  let rec go acc =
    let id, _ = expect_ident s in
    match next s with
    | Punct ',', _ -> go (id :: acc)
    | Punct ')', _ -> List.rev (id :: acc)
    | Punct p, l -> fail l "expected ',' or ')', got %C" p
    | Ident other, l -> fail l "expected ',' or ')', got %s" other
  in
  go []

let parse_string ?name text =
  let s = { tokens = tokenize text; last_line = 1 } in
  expect_keyword s "module";
  let module_name, _ = expect_ident s in
  let _ports = paren_list s in
  expect_punct s ';';
  let builder =
    Circuit.Builder.create ~name:(match name with Some n -> n | None -> module_name) ()
  in
  let outputs = ref [] in
  let rec statements () =
    match next s with
    | Ident kw, line -> (
      match String.lowercase_ascii kw with
      | "endmodule" -> ()
      | "input" ->
        List.iter (Circuit.Builder.add_input builder) (ident_list s);
        statements ()
      | "output" ->
        outputs := !outputs @ ident_list s;
        statements ()
      | "wire" | "reg" ->
        ignore (ident_list s);
        statements ()
      | "dff" -> (
        (* optional instance name, then (Q, D) *)
        let ports =
          match next s with
          | Punct '(', _ ->
            s.tokens <- (Punct '(', line) :: s.tokens;
            paren_list s
          | Ident _, _ -> paren_list s
          | Punct p, l -> fail l "expected instance name or '(', got %C" p
        in
        expect_punct s ';';
        match ports with
        | [ q; d ] ->
          Circuit.Builder.add_dff builder ~q ~d;
          statements ()
        | _ -> fail line "dff expects exactly (Q, D)" )
      | lower -> (
        match Gate_kind.of_string lower with
        | None -> fail line "unknown statement or primitive %s" kw
        | Some kind -> (
          let ports =
            match next s with
            | Punct '(', _ ->
              s.tokens <- (Punct '(', line) :: s.tokens;
              paren_list s
            | Ident _, _ -> paren_list s
            | Punct p, l -> fail l "expected instance name or '(', got %C" p
          in
          expect_punct s ';';
          match ports with
          | out :: (_ :: _ as inputs) ->
            Circuit.Builder.add_gate builder ~output:out kind inputs;
            statements ()
          | _ -> fail line "primitive %s needs an output and at least one input" kw ) ) )
    | Punct p, l -> fail l "unexpected %C" p
  in
  statements ();
  List.iter (Circuit.Builder.add_output builder) !outputs;
  Circuit.Builder.finalize builder

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string circuit =
  let buf = Buffer.create 4096 in
  let net = Circuit.net_name circuit in
  let name = if Circuit.name circuit = "" then "top" else Circuit.name circuit in
  let inputs = List.map net (Circuit.primary_inputs circuit) in
  let outputs = List.map net (Circuit.primary_outputs circuit) in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" name (String.concat ", " (inputs @ outputs)));
  if inputs <> [] then
    Buffer.add_string buf (Printf.sprintf "  input %s;\n" (String.concat ", " inputs));
  if outputs <> [] then
    Buffer.add_string buf (Printf.sprintf "  output %s;\n" (String.concat ", " outputs));
  let interface = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace interface n ()) (inputs @ outputs);
  let wires =
    List.init (Circuit.num_nets circuit) (fun i -> net i)
    |> List.filter (fun n -> not (Hashtbl.mem interface n))
  in
  if wires <> [] then
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (String.concat ", " wires));
  List.iteri
    (fun i (q, d) ->
      Buffer.add_string buf (Printf.sprintf "  dff DFF_%d (%s, %s);\n" i (net q) (net d)))
    (Circuit.dffs circuit);
  Array.iteri
    (fun i g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s_%d (%s, %s);\n"
             (String.lowercase_ascii (Gate_kind.to_string kind))
             (String.uppercase_ascii (Gate_kind.to_string kind))
             i (net g)
             (String.concat ", " (Array.to_list (Array.map net inputs))))
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file circuit path =
  let oc = open_out path in
  output_string oc (to_string circuit);
  close_out oc
