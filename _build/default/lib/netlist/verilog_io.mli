(** Reader and writer for gate-level structural Verilog, the other
    format ISCAS benchmarks circulate in:

    {v
    module s27 (G0, G1, G2, G3, G17);
      input G0, G1, G2, G3;
      output G17;
      wire G8, G9;
      not NOT_0 (G14, G0);
      nand (G9, G16, G15);
      dff DFF_0 (G5, G10);   // (Q, D)
    endmodule
    v}

    Supported primitives: and, nand, or, nor, xor, xnor, not, buf, and
    dff instances with (Q, D) port order.  Instance names are optional
    and ignored (the output net names the gate, as in {!Circuit}). *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Circuit.t
(** [name] overrides the module name as the circuit name.
    Raises {!Parse_error} on malformed text and
    {!Circuit.Invalid_circuit} on structurally invalid netlists. *)

val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
(** Render as structural Verilog; [parse_string (to_string c)] is
    structurally identical to [c]. *)

val write_file : Circuit.t -> string -> unit
