lib/paths/path_enum.ml: Array Hashtbl Int List Printf Spsta_netlist Spsta_util String
