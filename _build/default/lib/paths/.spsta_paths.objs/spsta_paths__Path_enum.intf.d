lib/paths/path_enum.mli: Spsta_netlist
