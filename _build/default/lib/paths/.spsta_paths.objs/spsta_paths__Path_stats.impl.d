lib/paths/path_stats.ml: Array Buffer Hashtbl List Path_enum Printf Spsta_netlist Spsta_util Spsta_variation
