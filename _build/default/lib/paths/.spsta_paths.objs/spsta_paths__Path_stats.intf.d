lib/paths/path_stats.mli: Path_enum Spsta_netlist Spsta_variation
