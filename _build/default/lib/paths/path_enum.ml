module Circuit = Spsta_netlist.Circuit
module Heap = Spsta_util.Heap

type t = {
  source : Circuit.id;
  gates : Circuit.id list;
  endpoint : Circuit.id;
}

let length p = List.length p.gates

let nets p = p.source :: p.gates

let shared_gates a b =
  let set = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace set g ()) a.gates;
  List.fold_left (fun acc g -> if Hashtbl.mem set g then acc + 1 else acc) 0 b.gates

(* partial backtrace: [head] still to be expanded, [gates] already fixed
   in source-to-endpoint order starting just after [head].  The priority
   is an exact bound: level(head) counts the most gates any extension of
   [head] can add. *)
type partial = { head : Circuit.id; fixed : Circuit.id list; bound : int }

let enumerate ?endpoint ~k circuit =
  if k <= 0 then []
  else begin
    let heap =
      (* max-heap on the bound: invert the comparison *)
      Heap.create ~cmp:(fun a b -> Int.compare b.bound a.bound)
    in
    let endpoints = match endpoint with Some e -> [ e ] | None -> Circuit.endpoints circuit in
    let seed e =
      Heap.push heap { head = e; fixed = []; bound = Circuit.level circuit e }
    in
    List.iter seed endpoints;
    let results = ref [] in
    let count = ref 0 in
    let endpoint_of head fixed =
      match List.rev fixed with last :: _ -> last | [] -> head
    in
    let rec search () =
      if !count < k then
        match Heap.pop heap with
        | None -> ()
        | Some { head; fixed; bound } -> (
          match Circuit.driver circuit head with
          | Circuit.Input | Circuit.Dff_output _ ->
            results := { source = head; gates = fixed; endpoint = endpoint_of head fixed } :: !results;
            incr count;
            search ()
          | Circuit.Gate { inputs; _ } ->
            let distinct = List.sort_uniq compare (Array.to_list inputs) in
            List.iter
              (fun i ->
                Heap.push heap
                  { head = i; fixed = head :: fixed; bound = Circuit.level circuit i + List.length fixed + 1 })
              distinct;
            ignore bound;
            search () )
    in
    search ();
    List.rev !results
  end

let to_string circuit p =
  let names = List.map (Circuit.net_name circuit) (nets p) in
  Printf.sprintf "%s (length %d)" (String.concat " -> " names) (length p)
