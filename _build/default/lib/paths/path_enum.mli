(** Structural critical-path enumeration (the substrate of path-based
    SSTA, paper §1): the K longest source-to-endpoint paths under unit
    gate delays, in exactly descending length order (A* backward search
    with the per-net logic level as the heuristic, which is exact). *)

type t = {
  source : Spsta_netlist.Circuit.id;
  gates : Spsta_netlist.Circuit.id list;  (** in source-to-endpoint order *)
  endpoint : Spsta_netlist.Circuit.id;  (** = last gate, or the source for degenerate paths *)
}

val length : t -> int
(** Number of gates = unit-delay path delay. *)

val nets : t -> Spsta_netlist.Circuit.id list
(** Source followed by the gates. *)

val shared_gates : t -> t -> int
(** Number of gates on both paths (path-sharing, the correlation source). *)

val enumerate :
  ?endpoint:Spsta_netlist.Circuit.id ->
  k:int ->
  Spsta_netlist.Circuit.t ->
  t list
(** The [k] longest paths ending at [endpoint] (default: all endpoints
    considered together), longest first; ties broken arbitrarily but
    deterministically.  Returns fewer than [k] when the circuit has
    fewer distinct paths. *)

val to_string : Spsta_netlist.Circuit.t -> t -> string
(** "I3 -> N7 -> N12 -> N31 (length 3)". *)
