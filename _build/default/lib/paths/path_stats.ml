module Circuit = Spsta_netlist.Circuit
module Canonical = Spsta_variation.Canonical
module Param_model = Spsta_variation.Param_model
module Rng = Spsta_util.Rng

type t = {
  path_list : Path_enum.t list;
  forms : Canonical.t array;
  nparams : int;
}

let analyze ?(input_sigma = 1.0) model placement circuit path_list =
  if input_sigma < 0.0 then invalid_arg "Path_stats.analyze: negative input sigma";
  ignore circuit;
  let shared = Param_model.num_params model in
  (* index the gates and sources appearing on any analysed path *)
  let gate_index = Hashtbl.create 64 and source_index = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun g -> if not (Hashtbl.mem gate_index g) then Hashtbl.add gate_index g (Hashtbl.length gate_index))
        p.Path_enum.gates;
      let s = p.Path_enum.source in
      if not (Hashtbl.mem source_index s) then Hashtbl.add source_index s (Hashtbl.length source_index))
    path_list;
  let n_gates = Hashtbl.length gate_index and n_sources = Hashtbl.length source_index in
  let nparams = shared + n_gates + n_sources in
  (* decompose per-gate delays into the extended vector so shared gates
     share their random terms across paths *)
  let sigma_random =
    (* recover the model's per-gate random sigma from a canonical form *)
    let probe =
      match path_list with
      | { Path_enum.gates = g :: _; _ } :: _ -> Some g
      | _ -> None
    in
    match probe with
    | None -> 0.0
    | Some g -> (Param_model.gate_delay_canonical model placement g).Canonical.rand
  in
  let form_of_path p =
    let mean = ref 0.0 in
    let sens = Array.make nparams 0.0 in
    List.iter
      (fun g ->
        let d = Param_model.gate_delay_canonical model placement g in
        mean := !mean +. d.Canonical.mean;
        Array.iteri (fun i s -> sens.(i) <- sens.(i) +. s) d.Canonical.sens;
        sens.(shared + Hashtbl.find gate_index g) <-
          sens.(shared + Hashtbl.find gate_index g) +. sigma_random)
      p.Path_enum.gates;
    sens.(shared + n_gates + Hashtbl.find source_index p.Path_enum.source) <- input_sigma;
    Canonical.make ~mean:!mean ~sens ~rand:0.0
  in
  { path_list; forms = Array.of_list (List.map form_of_path path_list); nparams }

let paths t = t.path_list
let delay_form t i = t.forms.(i)
let delay_mean t i = t.forms.(i).Canonical.mean
let delay_stddev t i = Canonical.stddev t.forms.(i)
let correlation t i j = Canonical.correlation t.forms.(i) t.forms.(j)

let criticality ?(samples = 20_000) ?(seed = 42) t =
  let k = Array.length t.forms in
  let wins = Array.make k 0 in
  if k > 0 then begin
    let rng = Rng.create ~seed in
    for _ = 1 to samples do
      let params = Array.init t.nparams (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
      let best = ref 0 and best_delay = ref neg_infinity in
      Array.iteri
        (fun i form ->
          let d = Canonical.sample rng ~params form in
          if d > !best_delay then begin
            best_delay := d;
            best := i
          end)
        t.forms;
      wins.(!best) <- wins.(!best) + 1
    done
  end;
  Array.map (fun w -> float_of_int w /. float_of_int samples) wins

let render circuit ?criticality t =
  let buf = Buffer.create 2048 in
  let table =
    Spsta_util.Table.create ~headers:[ "#"; "path"; "len"; "mu"; "sigma"; "criticality" ]
  in
  List.iteri
    (fun i p ->
      Spsta_util.Table.add_row table
        [
          string_of_int i;
          Path_enum.to_string circuit p;
          string_of_int (Path_enum.length p);
          Printf.sprintf "%.3f" (delay_mean t i);
          Printf.sprintf "%.3f" (delay_stddev t i);
          (match criticality with Some c -> Printf.sprintf "%.3f" c.(i) | None -> "-");
        ])
    t.path_list;
  Buffer.add_string buf (Spsta_util.Table.render table);
  let k = Array.length t.forms in
  if k > 1 then begin
    Buffer.add_string buf "\npath delay correlations:\n";
    for i = 0 to k - 1 do
      Buffer.add_string buf "  ";
      for j = 0 to k - 1 do
        Buffer.add_string buf (Printf.sprintf "%6.2f" (correlation t i j))
      done;
      Buffer.add_string buf "\n"
    done
  end;
  Buffer.contents buf
