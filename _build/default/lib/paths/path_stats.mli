(** Statistical path analysis (path-based SSTA, paper §1): per-path
    delay distributions under a correlated process model, pairwise path
    correlations from shared segments and shared parameters, and path
    criticality probabilities.

    Path delays are represented exactly as first-order canonical forms
    over an extended parameter vector: the process model's shared
    parameters plus one independent parameter per gate appearing on any
    analysed path, so two paths sharing a gate share that gate's random
    delay term — the "correlations due to path-sharing" that block-based
    (mean, sigma) analysis loses. *)

type t

val analyze :
  ?input_sigma:float ->
  Spsta_variation.Param_model.t ->
  Spsta_variation.Param_model.placement ->
  Spsta_netlist.Circuit.t ->
  Path_enum.t list ->
  t
(** [input_sigma] (default 1.0) is the per-source arrival sigma,
    independent per source (shared when two paths launch from the same
    source). *)

val paths : t -> Path_enum.t list
val delay_form : t -> int -> Spsta_variation.Canonical.t
(** Canonical delay of path [i] (same index as {!paths}). *)

val delay_mean : t -> int -> float
val delay_stddev : t -> int -> float

val correlation : t -> int -> int -> float
(** Delay correlation between two paths. *)

val criticality : ?samples:int -> ?seed:int -> t -> float array
(** Monte Carlo estimate of P(path i has the largest delay), summing to
    1 over the analysed set (default 20_000 samples, seed 42). *)

val render : Spsta_netlist.Circuit.t -> ?criticality:float array -> t -> string
(** Table of paths with mean / sigma / criticality and the pairwise
    correlation matrix. *)
