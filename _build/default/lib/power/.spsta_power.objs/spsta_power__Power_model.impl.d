lib/power/power_model.ml: Array List Spsta_netlist
