lib/power/power_model.mli: Spsta_netlist
