lib/power/transition_density.ml: Array List Spsta_core Spsta_logic Spsta_netlist Spsta_sim
