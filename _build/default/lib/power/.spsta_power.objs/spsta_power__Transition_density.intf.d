lib/power/transition_density.mli: Spsta_netlist Spsta_sim
