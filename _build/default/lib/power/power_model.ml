module Circuit = Spsta_netlist.Circuit

type params = {
  vdd : float;
  frequency : float;
  gate_input_cap : float;
  wire_cap : float;
}

let default_params =
  { vdd = 1.2; frequency = 1.0e9; gate_input_cap = 2.0e-15; wire_cap = 5.0e-15 }

let net_capacitance params circuit id =
  params.wire_cap +. (params.gate_input_cap *. float_of_int (Array.length (Circuit.fanout circuit id)))

let net_power params circuit density id =
  0.5 *. params.vdd *. params.vdd *. params.frequency
  *. net_capacitance params circuit id *. density id

let dynamic_power ?(params = default_params) circuit ~density =
  let total = ref 0.0 in
  for id = 0 to Circuit.num_nets circuit - 1 do
    total := !total +. net_power params circuit density id
  done;
  !total

let per_net_power ?(params = default_params) circuit ~density =
  let entries =
    List.init (Circuit.num_nets circuit) (fun id -> (id, net_power params circuit density id))
  in
  List.sort (fun (_, a) (_, b) -> compare b a) entries
