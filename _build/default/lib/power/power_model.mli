(** Dynamic power estimation from switching activity: the paper's §3.1
    observes that t.o.p. integrals are exactly the per-net toggling rates
    power estimation needs, so SPSTA results feed straight into
    P = 1/2 V^2 f * sum_y C_y rho_y. *)

type params = {
  vdd : float;  (** supply voltage, volts *)
  frequency : float;  (** clock frequency, Hz *)
  gate_input_cap : float;  (** capacitance per driven gate input, farads *)
  wire_cap : float;  (** fixed per-net wiring capacitance, farads *)
}

val default_params : params
(** 1.2 V, 1 GHz, 2 fF per fan-out pin, 5 fF of wire per net — a generic
    mid-2000s technology flavour; absolute watts are illustrative, the
    analyses compare activities. *)

val net_capacitance : params -> Spsta_netlist.Circuit.t -> Spsta_netlist.Circuit.id -> float
(** [wire_cap + gate_input_cap * fanout]. *)

val dynamic_power :
  ?params:params ->
  Spsta_netlist.Circuit.t ->
  density:(Spsta_netlist.Circuit.id -> float) ->
  float
(** Total dynamic power in watts given per-net transition densities
    (per cycle). *)

val per_net_power :
  ?params:params ->
  Spsta_netlist.Circuit.t ->
  density:(Spsta_netlist.Circuit.id -> float) ->
  (Spsta_netlist.Circuit.id * float) list
(** Per-net contributions, sorted descending — a power hot-spot report. *)
