module Circuit = Spsta_netlist.Circuit
module Truth = Spsta_logic.Truth
module Input_spec = Spsta_sim.Input_spec
module Signal_prob = Spsta_core.Signal_prob

type t = float array

let compute circuit ~p_one ~source_rate =
  let n = Circuit.num_nets circuit in
  let density = Array.make n 0.0 in
  List.iter (fun s -> density.(s) <- source_rate s) (Circuit.sources circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        let k = Array.length inputs in
        let truth = Truth.of_gate kind ~arity:k in
        let p = Array.map p_one inputs in
        let total = ref 0.0 in
        for i = 0 to k - 1 do
          let w = Truth.prob_one (Truth.boolean_difference truth i) p in
          total := !total +. (w *. density.(inputs.(i)))
        done;
        density.(g) <- !total
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  density

let of_input_specs circuit ~spec =
  let sp =
    Signal_prob.compute circuit ~p_source:(fun s -> Input_spec.signal_probability (spec s))
  in
  compute circuit ~p_one:(Signal_prob.prob sp)
    ~source_rate:(fun s -> Input_spec.toggling_rate (spec s))

let density t id = t.(id)
let total t = Array.fold_left ( +. ) 0.0 t
