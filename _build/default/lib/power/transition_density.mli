(** Transition densities (paper §2.2.2, eq. 6; Najm 1993): the expected
    number of transitions per cycle of every net, from source toggling
    rates weighted by Boolean-difference probabilities.  Glitches are
    included, which is why densities can exceed the four-value transition
    probabilities. *)

type t

val compute :
  Spsta_netlist.Circuit.t ->
  p_one:(Spsta_netlist.Circuit.id -> float) ->
  source_rate:(Spsta_netlist.Circuit.id -> float) ->
  t
(** [p_one] gives static signal probabilities at every net (only sources
    are read for the weights' inputs via internal propagation);
    [source_rate] the toggling rate of each source. *)

val of_input_specs :
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t

val density : t -> Spsta_netlist.Circuit.id -> float
val total : t -> float
(** Sum over all nets: the aggregate switching activity. *)
