lib/sim/event_sim.ml: Array Float Hashtbl Int List Spsta_logic Spsta_netlist Spsta_util
