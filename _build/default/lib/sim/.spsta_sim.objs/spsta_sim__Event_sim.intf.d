lib/sim/event_sim.mli: Spsta_logic Spsta_netlist
