lib/sim/input_spec.ml: Float List Spsta_dist Spsta_logic Spsta_util
