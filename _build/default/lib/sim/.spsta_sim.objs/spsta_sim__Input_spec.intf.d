lib/sim/input_spec.mli: Spsta_dist Spsta_logic Spsta_util
