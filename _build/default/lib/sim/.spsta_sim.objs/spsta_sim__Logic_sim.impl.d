lib/sim/logic_sim.ml: Array Float Input_spec List Spsta_logic Spsta_netlist Spsta_util
