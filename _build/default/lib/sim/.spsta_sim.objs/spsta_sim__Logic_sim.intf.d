lib/sim/logic_sim.mli: Input_spec Spsta_logic Spsta_netlist Spsta_util
