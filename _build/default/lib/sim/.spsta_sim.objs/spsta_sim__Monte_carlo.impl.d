lib/sim/monte_carlo.ml: Array Domain Int64 Logic_sim Spsta_logic Spsta_netlist Spsta_util
