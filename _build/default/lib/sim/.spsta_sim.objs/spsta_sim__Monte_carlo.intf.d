lib/sim/monte_carlo.mli: Input_spec Spsta_logic Spsta_netlist Spsta_util
