lib/sim/sequential_sim.ml: Array Hashtbl Input_spec Logic_sim Monte_carlo Spsta_logic Spsta_netlist Spsta_util
