lib/sim/sequential_sim.mli: Input_spec Monte_carlo Spsta_netlist
