module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind
module Heap = Spsta_util.Heap

type waveform = { initial : bool; changes : (float * bool) list }

let final w = match List.rev w.changes with (_, v) :: _ -> v | [] -> w.initial
let transition_count w = List.length w.changes
let settle_time w = match List.rev w.changes with (t, _) :: _ -> t | [] -> 0.0

type event = {
  time : float;
  seq : int;
  net : Circuit.id;
  value : bool;
  mutable cancelled : bool;
}

type result = { circuit : Circuit.t; waveforms : waveform array }

let run ?(gate_delay = 1.0) ?delay_of ?(inertial = 0.0) circuit ~source_values =
  let delay_of = match delay_of with Some f -> f | None -> fun _ -> gate_delay in
  let n = Circuit.num_nets circuit in
  let values = Array.make n false in
  let changes = Array.make n [] in
  (* initial levels: sources from their four-value symbol, gates by a
     topological Boolean evaluation *)
  let source_info = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let v, t = source_values s in
      Hashtbl.replace source_info s (v, t);
      values.(s) <- Value4.initial v)
    (Circuit.sources circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        values.(g) <-
          Gate_kind.eval_bool kind (Array.to_list (Array.map (fun i -> values.(i)) inputs))
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  let initials = Array.copy values in
  (* event queue ordered by (time, seq) for determinism *)
  let queue =
    Heap.create ~cmp:(fun a b ->
        match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c)
  in
  let seq = ref 0 in
  let pending = Array.make n None in
  let schedule net time value =
    (* inertial filtering: a change scheduled within the window of the
       previous pending change for the same net swallows it (the pulse
       would be too short to propagate).  With the default window of 0
       this still cancels same-instant reschedules, so simultaneous
       opposing input events produce no zero-width pulse *)
    ( match pending.(net) with
    | Some prev when (not prev.cancelled) && time -. prev.time <= inertial ->
      prev.cancelled <- true
    | Some _ | None -> () );
    incr seq;
    let ev = { time; seq = !seq; net; value; cancelled = false } in
    pending.(net) <- Some ev;
    Heap.push queue ev
  in
  (* source transitions *)
  Hashtbl.iter
    (fun s (v, t) ->
      if Value4.is_transition v then schedule s t (Value4.final v))
    source_info;
  let propagate time net =
    Array.iter
      (fun out ->
        match Circuit.driver circuit out with
        | Circuit.Gate { kind; inputs } ->
          let o =
            Gate_kind.eval_bool kind (Array.to_list (Array.map (fun i -> values.(i)) inputs))
          in
          schedule out (time +. delay_of out) o
        | Circuit.Dff_output _ -> () (* captured at the next clock edge *)
        | Circuit.Input -> assert false)
      (Circuit.fanout circuit net)
  in
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some ev ->
      if not ev.cancelled then begin
        ( match pending.(ev.net) with
        | Some p when p == ev -> pending.(ev.net) <- None
        | Some _ | None -> () );
        if values.(ev.net) <> ev.value then begin
          values.(ev.net) <- ev.value;
          changes.(ev.net) <- (ev.time, ev.value) :: changes.(ev.net);
          propagate ev.time ev.net
        end
      end;
      drain ()
  in
  drain ();
  let waveforms =
    Array.init n (fun i -> { initial = initials.(i); changes = List.rev changes.(i) })
  in
  { circuit; waveforms }

let waveform r id = r.waveforms.(id)

let total_transitions r =
  Array.fold_left (fun acc w -> acc + transition_count w) 0 r.waveforms

let glitch_count r id =
  let w = r.waveforms.(id) in
  let needed = if final w <> w.initial then 1 else 0 in
  transition_count w - needed
