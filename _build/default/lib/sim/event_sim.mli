(** Event-driven transient logic simulation.

    The cycle simulator ({!Logic_sim}) computes only the start/end levels
    and one settle time per net — glitches are invisible by construction.
    This engine plays the cycle out: source transitions are scheduled as
    events, every gate re-evaluates when an input changes and schedules
    its output change one gate delay later, and the result is the full
    waveform of every net.  Glitches (pulses that cancel before the cycle
    ends) appear as extra transitions, which is exactly what
    transition-density power estimation (eq. 6) counts and the
    four-value analysis deliberately filters (§3.3).

    An optional inertial window drops scheduled output changes that are
    overridden within [inertial] time units — the classic pulse-width
    filtering of gate-level simulators. *)

type waveform = {
  initial : bool;  (** level at the start of the cycle *)
  changes : (float * bool) list;  (** (time, new level), chronological *)
}

val final : waveform -> bool
val transition_count : waveform -> int
val settle_time : waveform -> float
(** Time of the last change; 0.0 for constant waveforms. *)

type result

val run :
  ?gate_delay:float ->
  ?delay_of:(Spsta_netlist.Circuit.id -> float) ->
  ?inertial:float ->
  Spsta_netlist.Circuit.t ->
  source_values:(Spsta_netlist.Circuit.id -> Spsta_logic.Value4.t * float) ->
  result
(** Same interface as {!Logic_sim.run}: each source contributes its
    start level and (for r/f values) one transition at the given time.
    [inertial] (default 0) cancels a *pending* output change when a new
    one is scheduled within the window — the standard gate-level
    filtering, effective for input spacings below the gate delay plus
    the window; the default still suppresses zero-width pulses from
    simultaneous opposing input events. *)

val waveform : result -> Spsta_netlist.Circuit.id -> waveform

val total_transitions : result -> int
(** Sum of transition counts over every net: the quantity eq. 6
    estimates in expectation. *)

val glitch_count : result -> Spsta_netlist.Circuit.id -> int
(** Transitions beyond what the start/end levels require: 0 for a clean
    net, 2 per full pulse. *)
