module Normal = Spsta_dist.Normal
module Value4 = Spsta_logic.Value4

type t = {
  p_zero : float;
  p_one : float;
  p_rise : float;
  p_fall : float;
  rise_arrival : Normal.t;
  fall_arrival : Normal.t;
}

let make ?(rise_arrival = Normal.standard) ?(fall_arrival = Normal.standard) ~p_zero ~p_one
    ~p_rise ~p_fall () =
  let probs = [ p_zero; p_one; p_rise; p_fall ] in
  List.iter (fun p -> if p < 0.0 then invalid_arg "Input_spec.make: negative probability") probs;
  let total = List.fold_left ( +. ) 0.0 probs in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg "Input_spec.make: probabilities must sum to 1";
  { p_zero; p_one; p_rise; p_fall; rise_arrival; fall_arrival }

let case_i = make ~p_zero:0.25 ~p_one:0.25 ~p_rise:0.25 ~p_fall:0.25 ()
let case_ii = make ~p_zero:0.75 ~p_one:0.15 ~p_rise:0.02 ~p_fall:0.08 ()

let signal_probability t = t.p_one +. ((t.p_rise +. t.p_fall) /. 2.0)
let toggling_rate t = t.p_rise +. t.p_fall

let toggling_variance t =
  let rho = toggling_rate t in
  rho *. (1.0 -. rho)

let sample rng t =
  let weights = [| t.p_zero; t.p_one; t.p_rise; t.p_fall |] in
  match Spsta_util.Rng.choose_index rng weights with
  | 0 -> (Value4.Zero, 0.0)
  | 1 -> (Value4.One, 0.0)
  | 2 -> (Value4.Rising, Normal.sample rng t.rise_arrival)
  | 3 -> (Value4.Falling, Normal.sample rng t.fall_arrival)
  | _ -> assert false
