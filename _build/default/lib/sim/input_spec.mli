(** Statistical characterisation of a timing source (primary input or
    flip-flop output) over one clock cycle: the four-value occurrence
    probabilities and the arrival-time distributions of its transitions.

    This is the "input statistics" whose effect on chip timing the paper
    argues SSTA wrongly ignores. *)

type t = {
  p_zero : float;
  p_one : float;
  p_rise : float;
  p_fall : float;
  rise_arrival : Spsta_dist.Normal.t;
  fall_arrival : Spsta_dist.Normal.t;
}

val make :
  ?rise_arrival:Spsta_dist.Normal.t ->
  ?fall_arrival:Spsta_dist.Normal.t ->
  p_zero:float ->
  p_one:float ->
  p_rise:float ->
  p_fall:float ->
  unit ->
  t
(** Arrival distributions default to the standard normal (the paper's
    choice).  Raises [Invalid_argument] unless the four probabilities are
    non-negative and sum to 1 (within 1e-9). *)

val case_i : t
(** The paper's experiment part (I): all four values equally likely.
    Signal probability 0.5, mean toggling rate 0.5, toggling variance
    0.25. *)

val case_ii : t
(** The paper's experiment part (II): 15% one, 75% zero, 2% rising,
    8% falling.  Signal probability 0.2, mean toggling rate 0.1,
    toggling variance 0.09. *)

val signal_probability : t -> float
(** Time-averaged probability of observing logic one:
    [p_one + (p_rise + p_fall) / 2]. *)

val toggling_rate : t -> float
(** [p_rise + p_fall]: expected transitions per cycle. *)

val toggling_variance : t -> float
(** Variance of the per-cycle transition count (a Bernoulli variable). *)

val sample : Spsta_util.Rng.t -> t -> Spsta_logic.Value4.t * float
(** Draw a cycle behaviour: the four-value symbol and, for transitions,
    the arrival time (0 for steady values). *)
