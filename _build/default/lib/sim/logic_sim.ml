module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind
module Timing_rule = Spsta_logic.Timing_rule

type result = { values : Value4.t array; times : float array }

let run ?(gate_delay = 1.0) ?delay_of ?delay_rf ?mis circuit ~source_values =
  let delay_of = match delay_of with Some f -> f | None -> fun _ -> gate_delay in
  let delay_for g out =
    match delay_rf with
    | Some f ->
      let rise, fall = f g in
      ( match out with
      | Value4.Rising -> rise
      | Value4.Falling -> fall
      | Value4.Zero | Value4.One -> 0.0 )
    | None -> delay_of g
  in
  let n = Circuit.num_nets circuit in
  let values = Array.make n Value4.Zero in
  let times = Array.make n 0.0 in
  let assign_source s =
    let v, t = source_values s in
    values.(s) <- v;
    times.(s) <- t
  in
  List.iter assign_source (Circuit.sources circuit);
  let eval_gate g kind inputs =
    let in_values = Array.map (fun i -> values.(i)) inputs in
    let out = Gate_kind.eval4 kind (Array.to_list in_values) in
    values.(g) <- out;
    if Value4.is_transition out then begin
      let rule = Timing_rule.for_output kind out in
      let transition_times = ref [] in
      Array.iteri
        (fun idx v ->
          if Value4.is_transition v then transition_times := times.(inputs.(idx)) :: !transition_times)
        in_values;
      let winner = Timing_rule.combine rule !transition_times in
      let delay =
        match mis with
        | None -> delay_for g out
        | Some model ->
          let simultaneous =
            List.length
              (List.filter
                 (fun t ->
                   Float.abs (t -. winner) <= model.Spsta_logic.Mis_model.window)
                 !transition_times)
          in
          delay_for g out *. Spsta_logic.Mis_model.factor model rule ~simultaneous
      in
      times.(g) <- winner +. delay
    end
  in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } -> eval_gate g kind inputs
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  { values; times }

let run_random ?(gate_delay = 1.0) ?(delay_sigma = 0.0) ?mis rng circuit ~spec =
  let delay_of =
    if delay_sigma > 0.0 then begin
      (* one independent delay sample per gate for this run *)
      let delays =
        Array.init (Circuit.num_nets circuit) (fun _ ->
            Spsta_util.Rng.gaussian rng ~mu:gate_delay ~sigma:delay_sigma)
      in
      Some (fun g -> delays.(g))
    end
    else None
  in
  run ~gate_delay ?delay_of ?mis circuit ~source_values:(fun s -> Input_spec.sample rng (spec s))
