(** Single-cycle four-value logic simulation with arrival-time
    propagation — one Monte Carlo trial of the paper's reference
    simulator (§4): four-value symbols propagate through the netlist, no
    glitches are counted, and transition times combine under the MIN/MAX
    rule dictated by each gate's logic and the transition direction.

    Arrival times are exact for gates with a controlling value and for
    single-switching-input XOR gates; for XOR-family gates with several
    switching inputs the reported time is the conservative settle bound
    (the transient can cancel internally and settle earlier — see
    {!Event_sim} for the exact waveform). *)

type result = {
  values : Spsta_logic.Value4.t array;  (** per net id *)
  times : float array;  (** arrival time per net id; meaningful only for transitions *)
}

val run :
  ?gate_delay:float ->
  ?delay_of:(Spsta_netlist.Circuit.id -> float) ->
  ?delay_rf:(Spsta_netlist.Circuit.id -> float * float) ->
  ?mis:Spsta_logic.Mis_model.t ->
  Spsta_netlist.Circuit.t ->
  source_values:(Spsta_netlist.Circuit.id -> Spsta_logic.Value4.t * float) ->
  result
(** [run circuit ~source_values] assigns each source net the given
    four-value symbol and arrival time, then evaluates every gate in
    topological order.  [gate_delay] defaults to 1.0 (the paper's unit
    gate delay; net delays are zero); [delay_of] overrides the delay per
    gate (e.g. a per-run process-variation sample); [delay_rf] gives
    direction-dependent (rise, fall) delays (e.g. a {!Spsta_netlist.Cell_library})
    and takes precedence over both. *)

val run_random :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  Spsta_util.Rng.t ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** Draw every source independently from its {!Input_spec.t} and
    simulate.  A positive [delay_sigma] draws every gate's delay from
    N(gate_delay, delay_sigma) independently for this run (process
    variation for a concrete input vector — the paper's §1 point that
    variation effects differ per vector). *)
