module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Stats = Spsta_util.Stats

type net_stats = {
  n_runs : int;
  count_zero : int;
  count_one : int;
  count_rise : int;
  count_fall : int;
  rise_times : Stats.acc;
  fall_times : Stats.acc;
}

let ratio count n = if n = 0 then 0.0 else float_of_int count /. float_of_int n

let p_zero s = ratio s.count_zero s.n_runs
let p_one s = ratio s.count_one s.n_runs
let p_rise s = ratio s.count_rise s.n_runs
let p_fall s = ratio s.count_fall s.n_runs
let signal_probability s = p_one s +. ((p_rise s +. p_fall s) /. 2.0)
let toggling_rate s = p_rise s +. p_fall s

type mutable_stats = {
  mutable zero : int;
  mutable one : int;
  mutable rise : int;
  mutable fall : int;
  rise_acc : Stats.acc;
  fall_acc : Stats.acc;
}

type result = { circuit : Circuit.t; runs : int; per_net : net_stats array }

let simulate ?gate_delay ?delay_sigma ?mis ?(runs = 10_000) ~seed circuit ~spec =
  let n = Circuit.num_nets circuit in
  let accs =
    Array.init n (fun _ ->
        { zero = 0; one = 0; rise = 0; fall = 0; rise_acc = Stats.acc_create (); fall_acc = Stats.acc_create () })
  in
  let rng = Spsta_util.Rng.create ~seed in
  for _ = 1 to runs do
    let r = Logic_sim.run_random ?gate_delay ?delay_sigma ?mis rng circuit ~spec in
    for i = 0 to n - 1 do
      let a = accs.(i) in
      match r.Logic_sim.values.(i) with
      | Value4.Zero -> a.zero <- a.zero + 1
      | Value4.One -> a.one <- a.one + 1
      | Value4.Rising ->
        a.rise <- a.rise + 1;
        Stats.acc_add a.rise_acc r.Logic_sim.times.(i)
      | Value4.Falling ->
        a.fall <- a.fall + 1;
        Stats.acc_add a.fall_acc r.Logic_sim.times.(i)
    done
  done;
  let per_net =
    Array.map
      (fun a ->
        {
          n_runs = runs;
          count_zero = a.zero;
          count_one = a.one;
          count_rise = a.rise;
          count_fall = a.fall;
          rise_times = a.rise_acc;
          fall_times = a.fall_acc;
        })
      accs
  in
  { circuit; runs; per_net }

let stats r id = r.per_net.(id)

let merge a b =
  if Circuit.num_nets a.circuit <> Circuit.num_nets b.circuit then
    invalid_arg "Monte_carlo.merge: mismatched circuits";
  let combine (x : net_stats) (y : net_stats) =
    {
      n_runs = x.n_runs + y.n_runs;
      count_zero = x.count_zero + y.count_zero;
      count_one = x.count_one + y.count_one;
      count_rise = x.count_rise + y.count_rise;
      count_fall = x.count_fall + y.count_fall;
      rise_times = Stats.acc_merge x.rise_times y.rise_times;
      fall_times = Stats.acc_merge x.fall_times y.fall_times;
    }
  in
  {
    circuit = a.circuit;
    runs = a.runs + b.runs;
    per_net = Array.mapi (fun i x -> combine x b.per_net.(i)) a.per_net;
  }

let simulate_parallel ?gate_delay ?delay_sigma ?mis ?(runs = 10_000) ?domains ~seed circuit
    ~spec =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Monte_carlo.simulate_parallel: domains must be positive"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* deterministic per-shard seeds derived from the master seed *)
  let master = Spsta_util.Rng.create ~seed in
  let shard_seed = Array.init domains (fun _ -> Int64.to_int (Spsta_util.Rng.bits64 master)) in
  let shard_runs = Array.init domains (fun i -> (runs + i) / domains) in
  let worker i () =
    simulate ?gate_delay ?delay_sigma ?mis ~runs:shard_runs.(i) ~seed:shard_seed.(i) circuit
      ~spec
  in
  if domains = 1 then worker 0 ()
  else begin
    let handles = Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    let first = worker 0 () in
    Array.fold_left (fun acc h -> merge acc (Domain.join h)) first handles
  end
