(** Monte Carlo statistical timing: repeat {!Logic_sim} trials with
    independently drawn source behaviours and accumulate per-net
    statistics — the paper's accuracy reference (10,000 runs in §4). *)

type net_stats = {
  n_runs : int;
  count_zero : int;
  count_one : int;
  count_rise : int;
  count_fall : int;
  rise_times : Spsta_util.Stats.acc;  (** arrival times of observed rises *)
  fall_times : Spsta_util.Stats.acc;
}

val p_zero : net_stats -> float
val p_one : net_stats -> float
val p_rise : net_stats -> float
val p_fall : net_stats -> float
val signal_probability : net_stats -> float
(** Time-averaged one-probability: p_one + (p_rise + p_fall)/2. *)

val toggling_rate : net_stats -> float

type result = {
  circuit : Spsta_netlist.Circuit.t;
  runs : int;
  per_net : net_stats array;
}

val simulate :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  ?runs:int ->
  seed:int ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** [runs] defaults to 10_000, matching the paper.  [delay_sigma] adds
    independent N(gate_delay, delay_sigma) process variation per gate
    per run (default 0). *)

val simulate_parallel :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  ?runs:int ->
  ?domains:int ->
  seed:int ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** Multicore variant: the runs are split across [domains] (default:
    the machine's recommended domain count) worker domains, each with
    its own generator derived deterministically from [seed], and the
    per-net statistics are merged.  The result is deterministic given
    ([seed], [domains]) but differs from the sequential {!simulate}
    stream for the same seed. *)

val merge : result -> result -> result
(** Combine two results over the same circuit (e.g. shards of a larger
    campaign).  Raises [Invalid_argument] on mismatched circuits. *)

val stats : result -> Spsta_netlist.Circuit.id -> net_stats
