module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Stats = Spsta_util.Stats
module Rng = Spsta_util.Rng

type result = {
  circuit : Circuit.t;
  cycles : int;
  per_net : Monte_carlo.net_stats array;
}

type acc = {
  mutable zero : int;
  mutable one : int;
  mutable rise : int;
  mutable fall : int;
  rise_acc : Stats.acc;
  fall_acc : Stats.acc;
}

let simulate ?gate_delay ?(warmup = 200) ?(cycles = 10_000) ~seed circuit ~pi_spec =
  let rng = Rng.create ~seed in
  let dffs = Array.of_list (Circuit.dffs circuit) in
  let n_ff = Array.length dffs in
  (* prev.(i) = captured value two edges ago, state.(i) = at the last edge *)
  let prev = Array.init n_ff (fun _ -> Rng.bool rng) in
  let state = Array.init n_ff (fun _ -> Rng.bool rng) in
  let ff_index = Hashtbl.create 16 in
  Array.iteri (fun i (qnet, _) -> Hashtbl.replace ff_index qnet i) dffs;
  let n = Circuit.num_nets circuit in
  let accs =
    Array.init n (fun _ ->
        { zero = 0; one = 0; rise = 0; fall = 0; rise_acc = Stats.acc_create ();
          fall_acc = Stats.acc_create () })
  in
  let source_values s =
    match Hashtbl.find_opt ff_index s with
    | Some i -> (Value4.of_initial_final prev.(i) state.(i), 0.0)
    | None -> Input_spec.sample rng (pi_spec s)
  in
  let record r =
    for i = 0 to n - 1 do
      let a = accs.(i) in
      match r.Logic_sim.values.(i) with
      | Value4.Zero -> a.zero <- a.zero + 1
      | Value4.One -> a.one <- a.one + 1
      | Value4.Rising ->
        a.rise <- a.rise + 1;
        Stats.acc_add a.rise_acc r.Logic_sim.times.(i)
      | Value4.Falling ->
        a.fall <- a.fall + 1;
        Stats.acc_add a.fall_acc r.Logic_sim.times.(i)
    done
  in
  let step ~measure =
    let r = Logic_sim.run ?gate_delay circuit ~source_values in
    if measure then record r;
    (* capture: D's settled end-of-cycle value becomes next state *)
    Array.iteri
      (fun i (_, d) ->
        prev.(i) <- state.(i);
        state.(i) <- Value4.final r.Logic_sim.values.(d))
      dffs
  in
  for _ = 1 to warmup do
    step ~measure:false
  done;
  for _ = 1 to cycles do
    step ~measure:true
  done;
  let per_net =
    Array.map
      (fun a ->
        {
          Monte_carlo.n_runs = cycles;
          count_zero = a.zero;
          count_one = a.one;
          count_rise = a.rise;
          count_fall = a.fall;
          rise_times = a.rise_acc;
          fall_times = a.fall_acc;
        })
      accs
  in
  { circuit; cycles; per_net }

let stats r id = r.per_net.(id)
