(** Multi-cycle sequential Monte Carlo: instead of drawing flip-flop
    outputs from an assumed distribution (as the paper's experiments and
    {!Monte_carlo} do), simulate consecutive clock cycles with real
    flip-flop state — the reference for the {!Spsta_core.Sequential}
    fixed-point analysis.

    In cycle [t] a flip-flop output shows the four-value symbol formed by
    its captured values at the two surrounding clock edges, transitioning
    at the edge (time 0); its data net's settled end-of-cycle value is
    captured for cycle [t+1]. *)

type result = {
  circuit : Spsta_netlist.Circuit.t;
  cycles : int;  (** measured cycles (after warm-up) *)
  per_net : Monte_carlo.net_stats array;
}

val simulate :
  ?gate_delay:float ->
  ?warmup:int ->
  ?cycles:int ->
  seed:int ->
  Spsta_netlist.Circuit.t ->
  pi_spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** Defaults: 200 warm-up cycles discarded, 10_000 measured cycles.
    Only primary inputs read [pi_spec]; flip-flop behaviour is emergent.
    Initial state is drawn uniformly. *)

val stats : result -> Spsta_netlist.Circuit.id -> Monte_carlo.net_stats
