lib/spsta/analyzer.ml: Array Four_value List Option Spsta_dist Spsta_logic Spsta_netlist Spsta_sim Top
