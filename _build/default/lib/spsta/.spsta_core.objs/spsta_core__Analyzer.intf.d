lib/spsta/analyzer.mli: Four_value Spsta_logic Spsta_netlist Spsta_sim Top
