lib/spsta/chip_delay.ml: Analyzer Float List Spsta_dist Spsta_netlist Top
