lib/spsta/chip_delay.mli: Spsta_dist Spsta_netlist Spsta_sim
