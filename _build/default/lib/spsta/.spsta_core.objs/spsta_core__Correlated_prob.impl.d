lib/spsta/correlated_prob.ml: Array Float List Spsta_logic Spsta_netlist
