lib/spsta/correlated_prob.mli: Spsta_netlist
