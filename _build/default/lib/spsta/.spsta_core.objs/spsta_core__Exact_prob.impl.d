lib/spsta/exact_prob.ml: Array Float List Signal_prob Spsta_bdd Spsta_netlist Spsta_sim
