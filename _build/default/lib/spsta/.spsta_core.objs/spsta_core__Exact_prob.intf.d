lib/spsta/exact_prob.mli: Signal_prob Spsta_netlist Spsta_sim
