lib/spsta/four_value.ml: Float Format List Spsta_logic Spsta_sim
