lib/spsta/four_value.mli: Format Spsta_logic Spsta_sim
