lib/spsta/sequential.ml: Array Float Four_value Hashtbl List Spsta_dist Spsta_netlist Spsta_sim
