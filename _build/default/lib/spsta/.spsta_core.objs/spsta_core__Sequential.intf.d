lib/spsta/sequential.mli: Four_value Spsta_netlist Spsta_sim
