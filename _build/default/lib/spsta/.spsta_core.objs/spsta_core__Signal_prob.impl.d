lib/spsta/signal_prob.ml: Array List Spsta_logic Spsta_netlist
