lib/spsta/signal_prob.mli: Spsta_netlist
