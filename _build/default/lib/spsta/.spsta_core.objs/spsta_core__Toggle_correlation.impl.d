lib/spsta/toggle_correlation.ml: Array Float List Signal_prob Spsta_logic Spsta_netlist Spsta_sim
