lib/spsta/toggle_correlation.mli: Spsta_netlist Spsta_sim
