lib/spsta/top.ml: List Spsta_dist Spsta_logic
