lib/spsta/top.mli: Spsta_dist Spsta_logic
