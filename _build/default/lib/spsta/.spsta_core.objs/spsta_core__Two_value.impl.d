lib/spsta/two_value.ml: Array List Signal_prob Spsta_dist Spsta_logic Spsta_netlist Spsta_sim
