lib/spsta/two_value.mli: Spsta_dist Spsta_netlist Spsta_sim
