(** Chip-level delay distribution from SPSTA endpoint t.o.p. functions.

    The "actual timing performance distribution" of the paper's Fig. 1:
    the latest transition over all timing endpoints in a cycle.  Using
    the discretised t.o.p. backend and treating endpoints as independent
    (the engine's standing assumption), the chip-delay cdf is the product
    of per-endpoint settled-by-T probabilities — including the
    probability an endpoint does not transition at all, which is exactly
    what the MIN/MAX methods cannot represent. *)

type t

val compute :
  ?dt:float ->
  ?gate_delay:float ->
  ?delay_of:(Spsta_netlist.Circuit.id -> float) ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t
(** [dt] is the grid step (default 0.05). *)

val p_idle : t -> float
(** Probability no endpoint transitions during a cycle (the chip delay
    is undefined / trivially met). *)

val distribution : t -> Spsta_dist.Discrete.t
(** Mass over chip delays, total = 1 - p_idle. *)

val mean : t -> float
val stddev : t -> float

val yield_at : t -> float -> float
(** P(every endpoint settles by T): idle cycles count as meeting
    timing. *)

val clock_for_yield : t -> float -> float
(** Smallest grid time T with [yield_at t T >= target].
    Raises [Invalid_argument] if the target is outside (0, 1] or
    unreachable on the grid. *)

val endpoint_criticality : t -> (Spsta_netlist.Circuit.id * float) list
(** P(this endpoint sets the chip delay), grid-approximated, normalised
    over transitioning cycles; sorted descending. *)
