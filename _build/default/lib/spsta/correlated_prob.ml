module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind

type t = { probs : float array; cov : float array array }

let clamp01 p = Float.min 1.0 (Float.max 0.0 p)

(* A "virtual" partially-built gate expression: its one-probability and
   its covariance against every circuit net. *)
type virtual_net = { p : float; row : float array }

let compute circuit ~p_source =
  let n = Circuit.num_nets circuit in
  let probs = Array.make n 0.0 in
  let cov = Array.make_matrix n n 0.0 in
  let init_source s =
    let p = p_source s in
    if not (p >= 0.0 && p <= 1.0) then invalid_arg "Correlated_prob.compute: probability outside [0,1]";
    probs.(s) <- p;
    cov.(s).(s) <- p *. (1.0 -. p)
  in
  List.iter init_source (Circuit.sources circuit);
  let of_net i = { p = probs.(i); row = Array.copy cov.(i) } in
  let vnot v = { p = 1.0 -. v.p; row = Array.map (fun c -> -.c) v.row } in
  (* AND of two virtuals: eq. 15 for the probability; covariance rows by
     the first-order expansion cov(ab, k) ~ P(b) cov(a,k) + P(a) cov(b,k).
     cov(a, b) itself is only known when one operand is a real net whose
     row covers the other; we thread it explicitly. *)
  let vand ~cov_ab a b =
    let p = clamp01 ((a.p *. b.p) +. cov_ab) in
    let row = Array.init n (fun k -> (b.p *. a.row.(k)) +. (a.p *. b.row.(k))) in
    { p; row }
  in
  (* cov between a virtual and a real net: read from the virtual's row *)
  let fold_assoc ~op first_net rest_nets =
    List.fold_left
      (fun acc i ->
        let operand = of_net i in
        op acc operand ~cov_ab:acc.row.(i))
      (of_net first_net) rest_nets
  in
  let and_op acc operand ~cov_ab = vand ~cov_ab acc operand in
  let or_op acc operand ~cov_ab =
    (* a OR b = NOT (NOT a AND NOT b); cov(!a,!b) = cov(a,b) *)
    vnot (vand ~cov_ab (vnot acc) (vnot operand))
  in
  let xor_op acc operand ~cov_ab =
    (* a XOR b = (a AND !b) + (!a AND b), a disjoint union: probabilities
       and covariance rows add exactly *)
    let t1 = vand ~cov_ab:(-.cov_ab) acc (vnot operand) in
    let t2 = vand ~cov_ab:(-.cov_ab) (vnot acc) operand in
    { p = clamp01 (t1.p +. t2.p); row = Array.init n (fun k -> t1.row.(k) +. t2.row.(k)) }
  in
  let step g kind inputs =
    let input_list = Array.to_list inputs in
    let result =
      match (kind, input_list) with
      | (Gate_kind.Not | Gate_kind.Buf), [ i ] ->
        let v = of_net i in
        if Gate_kind.equal kind Gate_kind.Not then vnot v else v
      | (Gate_kind.Not | Gate_kind.Buf), _ -> invalid_arg "Correlated_prob: NOT/BUF arity"
      | (Gate_kind.And | Gate_kind.Nand | Gate_kind.Or | Gate_kind.Nor | Gate_kind.Xor
        | Gate_kind.Xnor), [] ->
        invalid_arg "Correlated_prob: empty gate"
      | (Gate_kind.And | Gate_kind.Nand), first :: rest ->
        let v = fold_assoc ~op:and_op first rest in
        if Gate_kind.inverting kind then vnot v else v
      | (Gate_kind.Or | Gate_kind.Nor), first :: rest ->
        let v = fold_assoc ~op:or_op first rest in
        if Gate_kind.inverting kind then vnot v else v
      | (Gate_kind.Xor | Gate_kind.Xnor), first :: rest ->
        let v = fold_assoc ~op:xor_op first rest in
        if Gate_kind.inverting kind then vnot v else v
    in
    probs.(g) <- result.p;
    Array.blit result.row 0 cov.(g) 0 n;
    (* keep the matrix symmetric and the diagonal Bernoulli-consistent *)
    for k = 0 to n - 1 do
      cov.(k).(g) <- cov.(g).(k)
    done;
    cov.(g).(g) <- result.p *. (1.0 -. result.p)
  in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } -> step g kind inputs
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  { probs; cov }

let prob t id = t.probs.(id)
let covariance t a b = t.cov.(a).(b)

let correlation t a b =
  let sa = sqrt t.cov.(a).(a) and sb = sqrt t.cov.(b).(b) in
  if sa <= 0.0 || sb <= 0.0 then 0.0 else t.cov.(a).(b) /. (sa *. sb)
