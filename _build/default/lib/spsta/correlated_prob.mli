(** Signal probabilities with first-order correlation tracking (paper
    §3.5, eq. 14–17).

    Eq. 5 assumes gate inputs are independent; exact computation (eq. 14)
    needs covariances of every order.  This module implements the
    truncated middle ground the paper describes: it propagates
    one-probabilities *and* the full pairwise covariance matrix, applying
    [P(x1 x2) = P(x1) P(x2) + cov(x1, x2)] (eq. 15) exactly and dropping
    third- and higher-order central moments when projecting covariances
    through gates.  Accuracy sits between eq. 5 and the BDD-exact
    computation (verified in the test suite). *)

type t

val compute :
  Spsta_netlist.Circuit.t ->
  p_source:(Spsta_netlist.Circuit.id -> float) ->
  t
(** Sources are independent Bernoullis with the given one-probabilities.
    O(nets^2) memory. *)

val prob : t -> Spsta_netlist.Circuit.id -> float
(** P(net = 1), first-order corrected. *)

val covariance : t -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id -> float

val correlation : t -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id -> float
