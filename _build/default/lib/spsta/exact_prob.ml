module Circuit = Spsta_netlist.Circuit
module Circuit_bdd = Spsta_bdd.Circuit_bdd
module Input_spec = Spsta_sim.Input_spec

type t = {
  bdds : Circuit_bdd.t;
  p_initial : float array; (* per source variable index *)
  p_final : float array;
}

let compute ?max_nodes circuit ~spec =
  let bdds = Circuit_bdd.build ?max_nodes circuit in
  let sources = Circuit.sources circuit in
  let n = List.length sources in
  let p_initial = Array.make n 0.0 and p_final = Array.make n 0.0 in
  List.iteri
    (fun i s ->
      let sp = spec s in
      (* one at cycle start: steady one or falling; at cycle end: steady
         one or risen *)
      p_initial.(i) <- sp.Input_spec.p_one +. sp.Input_spec.p_fall;
      p_final.(i) <- sp.Input_spec.p_one +. sp.Input_spec.p_rise)
    sources;
  { bdds; p_initial; p_final }

let prob_initial_one t id = Circuit_bdd.exact_prob_one t.bdds ~p_source:(fun v -> t.p_initial.(v)) id
let prob_final_one t id = Circuit_bdd.exact_prob_one t.bdds ~p_source:(fun v -> t.p_final.(v)) id

let signal_probability t id = (prob_initial_one t id +. prob_final_one t id) /. 2.0

let independence_gap t ~approx id = Float.abs (Signal_prob.prob approx id -. prob_final_one t id)
