(** BDD-exact signal probabilities (paper §3.5): unlike eq. 5, which
    assumes gate inputs are independent, building each net's Boolean
    function over the circuit sources accounts exactly for
    reconvergent-fanout correlations. *)

type t

val compute :
  ?max_nodes:int ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t
(** Raises [Spsta_bdd.Circuit_bdd.Size_limit_exceeded] when the circuit
    functions exceed the node budget. *)

val prob_initial_one : t -> Spsta_netlist.Circuit.id -> float
(** Exact probability the net is one at the start of the cycle. *)

val prob_final_one : t -> Spsta_netlist.Circuit.id -> float

val signal_probability : t -> Spsta_netlist.Circuit.id -> float
(** Exact time-averaged one-probability:
    (start-of-cycle + end-of-cycle) / 2. *)

val independence_gap :
  t -> approx:Signal_prob.t -> Spsta_netlist.Circuit.id -> float
(** Absolute error of the independence-based estimate against the exact
    end-of-cycle probability for one net. *)
