module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind

type t = { p_zero : float; p_one : float; p_rise : float; p_fall : float }

let make ~p_zero ~p_one ~p_rise ~p_fall =
  let probs = [ p_zero; p_one; p_rise; p_fall ] in
  List.iter (fun p -> if p < -1e-12 then invalid_arg "Four_value.make: negative probability") probs;
  let total = List.fold_left ( +. ) 0.0 probs in
  if Float.abs (total -. 1.0) > 1e-9 then invalid_arg "Four_value.make: probabilities must sum to 1";
  let clamp p = Float.max p 0.0 in
  { p_zero = clamp p_zero; p_one = clamp p_one; p_rise = clamp p_rise; p_fall = clamp p_fall }

let of_input_spec (s : Spsta_sim.Input_spec.t) =
  make ~p_zero:s.Spsta_sim.Input_spec.p_zero ~p_one:s.Spsta_sim.Input_spec.p_one
    ~p_rise:s.Spsta_sim.Input_spec.p_rise ~p_fall:s.Spsta_sim.Input_spec.p_fall

let prob t = function
  | Value4.Zero -> t.p_zero
  | Value4.One -> t.p_one
  | Value4.Rising -> t.p_rise
  | Value4.Falling -> t.p_fall

let signal_probability t = t.p_one +. ((t.p_rise +. t.p_fall) /. 2.0)
let toggling_rate t = t.p_rise +. t.p_fall
let initial_one t = t.p_one +. t.p_fall
let final_one t = t.p_one +. t.p_rise

(* Exact O(4^k) enumeration with zero-weight pruning.  [visit] receives
   each input-value combination (as a list, innermost input first is
   avoided by building in order) together with its joint probability. *)
let enumerate inputs visit =
  let rec go acc_rev weight = function
    | [] -> visit (List.rev acc_rev) weight
    | dist :: rest ->
      let branch v =
        let p = prob dist v in
        if p > 0.0 then go (v :: acc_rev) (weight *. p) rest
      in
      List.iter branch Value4.all
  in
  go [] 1.0 inputs

let gate_output kind inputs =
  let zero = ref 0.0 and one = ref 0.0 and rise = ref 0.0 and fall = ref 0.0 in
  let visit values weight =
    match Gate_kind.eval4 kind values with
    | Value4.Zero -> zero := !zero +. weight
    | Value4.One -> one := !one +. weight
    | Value4.Rising -> rise := !rise +. weight
    | Value4.Falling -> fall := !fall +. weight
  in
  enumerate inputs visit;
  let total = !zero +. !one +. !rise +. !fall in
  (* renormalise away float drift so downstream [make] checks hold *)
  if total <= 0.0 then invalid_arg "Four_value.gate_output: degenerate inputs";
  make ~p_zero:(!zero /. total) ~p_one:(!one /. total) ~p_rise:(!rise /. total)
    ~p_fall:(!fall /. total)

let and_gate_closed_form inputs =
  if inputs = [] then invalid_arg "Four_value.and_gate_closed_form: no inputs";
  let product f = List.fold_left (fun acc x -> acc *. f x) 1.0 inputs in
  let p_one = product (fun x -> x.p_one) in
  let p_rise = product (fun x -> x.p_one +. x.p_rise) -. p_one in
  let p_fall = product (fun x -> x.p_one +. x.p_fall) -. p_one in
  let p_zero = 1.0 -. p_one -. p_rise -. p_fall in
  make ~p_zero ~p_one ~p_rise ~p_fall

let pp fmt t =
  Format.fprintf fmt "{0:%.4f 1:%.4f r:%.4f f:%.4f}" t.p_zero t.p_one t.p_rise t.p_fall
