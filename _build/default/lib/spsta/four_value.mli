(** Four-value signal probabilities (paper §3.3, eq. 9/10): per net, the
    occurrence probabilities of logic zero, logic one, a rising and a
    falling transition over one clock cycle. *)

type t = { p_zero : float; p_one : float; p_rise : float; p_fall : float }

val make : p_zero:float -> p_one:float -> p_rise:float -> p_fall:float -> t
(** Raises [Invalid_argument] unless non-negative and summing to 1
    (within 1e-9). *)

val of_input_spec : Spsta_sim.Input_spec.t -> t

val prob : t -> Spsta_logic.Value4.t -> float

val signal_probability : t -> float
(** Time-averaged one-probability: [p_one + (p_rise + p_fall) / 2]. *)

val toggling_rate : t -> float

val initial_one : t -> float
(** Probability the net starts the cycle at one: [p_one + p_fall]. *)

val final_one : t -> float
(** Probability the net ends the cycle at one: [p_one + p_rise]. *)

val gate_output : Spsta_logic.Gate_kind.t -> t list -> t
(** Eq. 9/10 generalised by exact enumeration: the output four-value
    probabilities of a gate whose inputs are independent with the given
    distributions.  For the AND/OR families this reproduces the paper's
    closed-form products exactly (checked by tests); enumeration is
    [O(4^k)] with early pruning of zero-weight branches. *)

val and_gate_closed_form : t list -> t
(** Paper eq. 10 verbatim (products over [(P1 + Pr)] etc.) for an AND
    gate — kept separate so tests can confirm the enumeration matches
    the published formulas. *)

val pp : Format.formatter -> t -> unit
