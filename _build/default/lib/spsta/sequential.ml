module Circuit = Spsta_netlist.Circuit
module Input_spec = Spsta_sim.Input_spec
module Normal = Spsta_dist.Normal

type t = {
  circuit : Circuit.t;
  per_net : Four_value.t array;
  ff_q : (Circuit.id, float) Hashtbl.t; (* Q net -> steady-state final-one prob of its D *)
  iterations : int;
  converged : bool;
}

let launch_dist q =
  Four_value.make ~p_zero:((1.0 -. q) *. (1.0 -. q)) ~p_one:(q *. q)
    ~p_rise:(q *. (1.0 -. q)) ~p_fall:(q *. (1.0 -. q))

(* one probability-only propagation pass given flip-flop launch q's *)
let propagate circuit ~pi_spec ~q_of =
  let n = Circuit.num_nets circuit in
  let zero = Four_value.make ~p_zero:1.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:0.0 in
  let per_net = Array.make n zero in
  List.iter (fun s -> per_net.(s) <- Four_value.of_input_spec (pi_spec s)) (Circuit.primary_inputs circuit);
  List.iter (fun (qnet, _) -> per_net.(qnet) <- launch_dist (q_of qnet)) (Circuit.dffs circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        per_net.(g) <-
          Four_value.gate_output kind (Array.to_list (Array.map (fun i -> per_net.(i)) inputs))
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  per_net

let fixed_point ?(max_iterations = 100) ?(tolerance = 1e-9) ?(damping = 1.0) circuit ~pi_spec =
  if not (damping > 0.0 && damping <= 1.0) then
    invalid_arg "Sequential.fixed_point: damping outside (0,1]";
  let q = Hashtbl.create 16 in
  List.iter (fun (qnet, _) -> Hashtbl.replace q qnet 0.5) (Circuit.dffs circuit);
  let rec iterate i =
    let per_net = propagate circuit ~pi_spec ~q_of:(Hashtbl.find q) in
    let delta = ref 0.0 in
    List.iter
      (fun (qnet, d) ->
        let estimate = Four_value.final_one per_net.(d) in
        let previous = Hashtbl.find q qnet in
        let next = previous +. (damping *. (estimate -. previous)) in
        delta := Float.max !delta (Float.abs (next -. previous));
        Hashtbl.replace q qnet next)
      (Circuit.dffs circuit);
    if !delta < tolerance then (per_net, i, true)
    else if i >= max_iterations then (per_net, i, false)
    else iterate (i + 1)
  in
  let per_net, iterations, converged = iterate 1 in
  { circuit; per_net; ff_q = q; iterations; converged }

let converged t = t.converged
let iterations t = t.iterations

let ff_final_one t id =
  match Hashtbl.find_opt t.ff_q id with
  | Some q -> q
  | None -> invalid_arg "Sequential.ff_final_one: not a flip-flop output net"

let probs t id = t.per_net.(id)

let clock_edge = Normal.make ~mu:0.0 ~sigma:0.0

let spec t ~pi_spec id =
  match Hashtbl.find_opt t.ff_q id with
  | None -> pi_spec id
  | Some q ->
    let d = launch_dist q in
    Input_spec.make ~rise_arrival:clock_edge ~fall_arrival:clock_edge
      ~p_zero:d.Four_value.p_zero ~p_one:d.Four_value.p_one ~p_rise:d.Four_value.p_rise
      ~p_fall:d.Four_value.p_fall ()
