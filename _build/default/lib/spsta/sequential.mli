(** Steady-state flip-flop statistics by fixed-point iteration.

    The paper's experiments *assign* statistics to flip-flop outputs.
    This extension computes them: a flip-flop output launches each cycle
    with the value its data net settled to in the previous cycle, so in
    steady state (and treating consecutive cycles as independent — the
    standard approximation) a flip-flop whose data net ends the cycle at
    one with probability [q] has

      P(1) = q^2,  P(0) = (1-q)^2,  P(rise) = P(fall) = q (1-q)

    as its launch distribution, with transitions at the clock edge.
    Iterating the four-value propagation until the [q]'s stabilise gives
    input statistics that are *consistent* with the circuit, rather than
    assumed. *)

type t

val fixed_point :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?damping:float ->
  Spsta_netlist.Circuit.t ->
  pi_spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t
(** Iterates from q = 1/2 for every flip-flop.  [max_iterations]
    defaults to 100, [tolerance] (max |dq| per iteration) to 1e-9,
    [damping] in (0, 1] (fraction of the new estimate used per step) to
    1.0.  Primary-input statistics come from [pi_spec]. *)

val converged : t -> bool
val iterations : t -> int

val ff_final_one : t -> Spsta_netlist.Circuit.id -> float
(** Steady-state P(data net ends the cycle at one) for a flip-flop
    output net.  Raises [Invalid_argument] for non-flip-flop nets. *)

val probs : t -> Spsta_netlist.Circuit.id -> Four_value.t
(** Converged four-value probabilities of any net. *)

val spec :
  t ->
  pi_spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  Spsta_netlist.Circuit.id ->
  Spsta_sim.Input_spec.t
(** A source-spec function for the timing analyzers: primary inputs keep
    [pi_spec]; flip-flop outputs get their converged probabilities with
    transitions at the clock edge (deterministic time 0). *)
