module Circuit = Spsta_netlist.Circuit
module Truth = Spsta_logic.Truth

type t = float array

let compute circuit ~p_source =
  let n = Circuit.num_nets circuit in
  let probs = Array.make n 0.0 in
  let assign_source s =
    let p = p_source s in
    if not (p >= 0.0 && p <= 1.0) then invalid_arg "Signal_prob.compute: probability outside [0,1]";
    probs.(s) <- p
  in
  List.iter assign_source (Circuit.sources circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        let truth = Truth.of_gate kind ~arity:(Array.length inputs) in
        let p = Array.map (fun i -> probs.(i)) inputs in
        probs.(g) <- Truth.prob_one truth p
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  probs

let prob t id = t.(id)
let all t = Array.copy t
