(** Two-value signal probability propagation (paper §2.2.1, eq. 5): given
    independent one-probabilities at the sources, compute P(net = 1) for
    every net in a single topological traversal, treating gate inputs as
    independent (reconvergent-fanout correlations are ignored — see
    {!Exact_prob} for the BDD-exact variant and {!Correlated_prob} for
    the first-order correction). *)

type t

val compute :
  Spsta_netlist.Circuit.t ->
  p_source:(Spsta_netlist.Circuit.id -> float) ->
  t
(** Raises [Invalid_argument] if a source probability is outside [0,1]. *)

val prob : t -> Spsta_netlist.Circuit.id -> float
(** P(net = 1). *)

val all : t -> float array
(** Indexed by net id. *)
