module Circuit = Spsta_netlist.Circuit
module Truth = Spsta_logic.Truth
module Input_spec = Spsta_sim.Input_spec

type source_moments = { mean : float; variance : float }

type t = {
  means : float array; (* per net *)
  cov : float array array; (* full symmetric covariance matrix *)
}

let compute circuit ~p_one ~source_rate =
  let n = Circuit.num_nets circuit in
  let means = Array.make n 0.0 in
  let cov = Array.make_matrix n n 0.0 in
  let init_source s =
    let m = source_rate s in
    if m.variance < 0.0 then invalid_arg "Toggle_correlation.compute: negative source variance";
    means.(s) <- m.mean;
    cov.(s).(s) <- m.variance
  in
  List.iter init_source (Circuit.sources circuit);
  let step g kind (inputs : Circuit.id array) =
    let k = Array.length inputs in
    let truth = Truth.of_gate kind ~arity:k in
    let p = Array.map (fun i -> p_one i) inputs in
    let weights =
      Array.init k (fun i -> Truth.prob_one (Truth.boolean_difference truth i) p)
    in
    let m = ref 0.0 in
    for i = 0 to k - 1 do
      m := !m +. (weights.(i) *. means.(inputs.(i)))
    done;
    means.(g) <- !m;
    (* cov(g, k) = sum_i w_i cov(x_i, k) for every already-known net k;
       diagonal = sum_{i,j} w_i w_j cov(x_i, x_j) *)
    for other = 0 to n - 1 do
      if other <> g then begin
        let c = ref 0.0 in
        for i = 0 to k - 1 do
          c := !c +. (weights.(i) *. cov.(inputs.(i)).(other))
        done;
        cov.(g).(other) <- !c;
        cov.(other).(g) <- !c
      end
    done;
    let v = ref 0.0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        v := !v +. (weights.(i) *. weights.(j) *. cov.(inputs.(i)).(inputs.(j)))
      done
    done;
    cov.(g).(g) <- Float.max !v 0.0
  in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } -> step g kind inputs
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  { means; cov }

let of_input_specs circuit ~spec =
  let sp = Signal_prob.compute circuit ~p_source:(fun s -> Input_spec.signal_probability (spec s)) in
  let source_rate s =
    let i = spec s in
    { mean = Input_spec.toggling_rate i; variance = Input_spec.toggling_variance i }
  in
  compute circuit ~p_one:(Signal_prob.prob sp) ~source_rate

let mean_rate t id = t.means.(id)
let variance t id = t.cov.(id).(id)
let covariance t a b = t.cov.(a).(b)

let correlation t a b =
  let sa = sqrt (variance t a) and sb = sqrt (variance t b) in
  if sa <= 0.0 || sb <= 0.0 then 0.0 else covariance t a b /. (sa *. sb)
