(** Moments and correlations of signal toggling rates (paper §3.4,
    eq. 13).

    Toggling rates are treated as correlated random variables (their
    randomness coming from the input ensemble); a net's rate is the
    Boolean-difference-weighted sum of its gate's input rates (eq. 6),
    which is linear, so means, variances and covariances propagate in a
    single netlist traversal — including the covariances induced by
    reconvergent fanout, which the independence-based analysis drops. *)

type t

type source_moments = { mean : float; variance : float }

val compute :
  Spsta_netlist.Circuit.t ->
  p_one:(Spsta_netlist.Circuit.id -> float) ->
  source_rate:(Spsta_netlist.Circuit.id -> source_moments) ->
  t
(** [p_one] supplies the static signal probabilities used in the
    Boolean-difference weights (typically from {!Signal_prob}); sources
    are pairwise uncorrelated, as in the paper's experiments. *)

val of_input_specs :
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t
(** Convenience wrapper: signal probabilities via eq. 5 and source
    toggling moments from the input statistics. *)

val mean_rate : t -> Spsta_netlist.Circuit.id -> float
val variance : t -> Spsta_netlist.Circuit.id -> float
val covariance : t -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id -> float
val correlation : t -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id -> float
(** 0 when either variance vanishes. *)
