module Circuit = Spsta_netlist.Circuit
module Truth = Spsta_logic.Truth
module Mixture = Spsta_dist.Mixture
module Input_spec = Spsta_sim.Input_spec

type net_top = { rate : float; top : Mixture.t }

type t = net_top array

let compute ?(gate_delay = 1.0) circuit ~spec =
  let sp =
    Signal_prob.compute circuit ~p_source:(fun s -> Input_spec.signal_probability (spec s))
  in
  let n = Circuit.num_nets circuit in
  let per_net = Array.make n { rate = 0.0; top = Mixture.empty } in
  let init_source s =
    let i = spec s in
    let top =
      Mixture.add
        (Mixture.singleton ~weight:i.Input_spec.p_rise i.Input_spec.rise_arrival)
        (Mixture.singleton ~weight:i.Input_spec.p_fall i.Input_spec.fall_arrival)
    in
    per_net.(s) <- { rate = Input_spec.toggling_rate i; top }
  in
  List.iter init_source (Circuit.sources circuit);
  let step g kind inputs =
    let k = Array.length inputs in
    let truth = Truth.of_gate kind ~arity:k in
    let p = Array.map (fun i -> Signal_prob.prob sp i) inputs in
    let contributions =
      List.init k (fun i ->
          let weight = Truth.prob_one (Truth.boolean_difference truth i) p in
          Mixture.scale per_net.(inputs.(i)).top weight)
    in
    let combined = Mixture.add_delay (Mixture.sum contributions) gate_delay in
    let combined = Mixture.compact ~max_components:16 combined in
    per_net.(g) <- { rate = Mixture.total_weight combined; top = combined }
  in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } -> step g kind inputs
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  per_net

let top t id = t.(id)
let toggling_rate t id = t.(id).rate
let mean_arrival t id = Mixture.mean t.(id).top
let stddev_arrival t id = Mixture.stddev t.(id).top
