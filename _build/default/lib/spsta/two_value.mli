(** Two-value SPSTA (paper §3.2, eq. 8): t.o.p. propagation by WEIGHTED
    SUM with Boolean-difference weights, without separating rising and
    falling transitions.

    As §3.3 notes, this variant *includes glitches* (a rising and a
    falling input can both propagate) and misses the direction-dependent
    MIN/MAX spreading — it is kept as the simpler reference point that
    motivates the four-value extension, and as a transition-density
    engine for power estimation. *)

type net_top = {
  rate : float;  (** expected transitions per cycle, glitches included *)
  top : Spsta_dist.Mixture.t;  (** total weight = [rate] *)
}

type t

val compute :
  ?gate_delay:float ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  t
(** Signal probabilities for the Boolean-difference weights come from
    eq. 5 with the specs' time-averaged one-probabilities. *)

val top : t -> Spsta_netlist.Circuit.id -> net_top

val toggling_rate : t -> Spsta_netlist.Circuit.id -> float
(** Eq. 6: this is exactly Najm's transition density. *)

val mean_arrival : t -> Spsta_netlist.Circuit.id -> float
(** Mean of the normalised t.o.p.; 0 for never-switching nets. *)

val stddev_arrival : t -> Spsta_netlist.Circuit.id -> float
