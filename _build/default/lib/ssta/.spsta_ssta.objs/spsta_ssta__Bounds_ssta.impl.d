lib/ssta/bounds_ssta.ml: Array Float List Spsta_dist Spsta_netlist
