lib/ssta/bounds_ssta.mli: Spsta_dist Spsta_netlist
