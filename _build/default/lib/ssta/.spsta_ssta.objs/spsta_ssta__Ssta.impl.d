lib/ssta/ssta.ml: Array List Spsta_dist Spsta_logic Spsta_netlist
