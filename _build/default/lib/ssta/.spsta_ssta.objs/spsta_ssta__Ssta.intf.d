lib/ssta/ssta.mli: Spsta_dist Spsta_netlist
