lib/ssta/sta.ml: Array Float List Spsta_netlist
