lib/ssta/sta.mli: Spsta_netlist
