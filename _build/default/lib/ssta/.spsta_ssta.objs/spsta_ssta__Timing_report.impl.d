lib/ssta/timing_report.ml: Array Buffer Float List Printf Spsta_netlist
