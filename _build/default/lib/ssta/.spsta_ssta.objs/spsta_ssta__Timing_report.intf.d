lib/ssta/timing_report.mli: Spsta_netlist
