module Circuit = Spsta_netlist.Circuit

type bounds = { earliest : float; latest : float }

type result = { circuit : Circuit.t; per_net : bounds array }

let analyze ?(gate_delay = 1.0) ?(input_bounds = { earliest = 0.0; latest = 0.0 }) circuit =
  let n = Circuit.num_nets circuit in
  let per_net = Array.make n input_bounds in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { inputs; _ } ->
        let earliest =
          Array.fold_left (fun acc i -> Float.min acc per_net.(i).earliest) infinity inputs
        in
        let latest =
          Array.fold_left (fun acc i -> Float.max acc per_net.(i).latest) neg_infinity inputs
        in
        per_net.(g) <- { earliest = earliest +. gate_delay; latest = latest +. gate_delay }
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  { circuit; per_net }

let bounds r id = r.per_net.(id)

let critical_endpoint r =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Sta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left
      (fun best e -> if r.per_net.(e).latest > r.per_net.(best).latest then e else best)
      first rest

let max_latest r =
  List.fold_left (fun acc e -> Float.max acc r.per_net.(e).latest) neg_infinity
    (Circuit.endpoints r.circuit)
