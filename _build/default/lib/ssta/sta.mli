(** Classical corner static timing analysis: per-net [min, max] arrival
    bounds under unit gate delays, input-vector oblivious.  This is the
    "two dotted lines" of the paper's Fig. 1. *)

type bounds = { earliest : float; latest : float }

type result

val analyze :
  ?gate_delay:float ->
  ?input_bounds:bounds ->
  Spsta_netlist.Circuit.t ->
  result
(** [input_bounds] defaults to {earliest = 0.; latest = 0.}; the paper's
    N(0,1) inputs are commonly bounded at +-3 sigma, i.e.
    [{earliest = -3.; latest = 3.}]. *)

val bounds : result -> Spsta_netlist.Circuit.id -> bounds

val critical_endpoint : result -> Spsta_netlist.Circuit.id
(** Endpoint with the largest [latest] arrival. *)

val max_latest : result -> float
(** Largest [latest] over all endpoints — the STA clock-period bound. *)
