module Circuit = Spsta_netlist.Circuit

type t = {
  circuit : Circuit.t;
  gate_delay : float;
  arrivals : float array;
  requireds : float array;
}

let analyze ?(gate_delay = 1.0) ?(input_arrival = 0.0) ~clock_period circuit =
  let n = Circuit.num_nets circuit in
  let arrivals = Array.make n input_arrival in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { inputs; _ } ->
        let latest = Array.fold_left (fun acc i -> Float.max acc arrivals.(i)) neg_infinity inputs in
        arrivals.(g) <- latest +. gate_delay
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  (* backward pass: endpoints are constrained by the clock; a net's
     required time is the tightest of its fanouts' requirements minus the
     consuming gate's delay *)
  let requireds = Array.make n infinity in
  List.iter (fun e -> requireds.(e) <- Float.min requireds.(e) clock_period) (Circuit.endpoints circuit);
  let topo = Circuit.topo_gates circuit in
  for i = Array.length topo - 1 downto 0 do
    let g = topo.(i) in
    match Circuit.driver circuit g with
    | Circuit.Gate { inputs; _ } ->
      let budget = requireds.(g) -. gate_delay in
      Array.iter (fun input -> requireds.(input) <- Float.min requireds.(input) budget) inputs
    | Circuit.Input | Circuit.Dff_output _ -> assert false
  done;
  { circuit; gate_delay; arrivals; requireds }

let arrival t id = t.arrivals.(id)
let required t id = t.requireds.(id)
let slack t id = t.requireds.(id) -. t.arrivals.(id)

let worst_slack t =
  List.fold_left (fun acc e -> Float.min acc (slack t e)) infinity (Circuit.endpoints t.circuit)

let violations t =
  Circuit.endpoints t.circuit
  |> List.filter (fun e -> slack t e < 0.0)
  |> List.sort (fun a b -> compare (slack t a) (slack t b))

let worst_endpoint t =
  match Circuit.endpoints t.circuit with
  | [] -> invalid_arg "Timing_report: circuit has no endpoints"
  | first :: rest ->
    List.fold_left (fun best e -> if slack t e < slack t best then e else best) first rest

let worst_path t =
  let rec backtrace acc net =
    match Circuit.driver t.circuit net with
    | Circuit.Input | Circuit.Dff_output _ -> net :: acc
    | Circuit.Gate { inputs; _ } ->
      let critical_input =
        Array.fold_left
          (fun best i -> if t.arrivals.(i) > t.arrivals.(best) then i else best)
          inputs.(0) inputs
      in
      backtrace (net :: acc) critical_input
  in
  backtrace [] (worst_endpoint t)

let render circuit t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "worst slack: %.3f, violating endpoints: %d\n" (worst_slack t)
       (List.length (violations t)));
  Buffer.add_string buf "worst path:\n";
  List.iter
    (fun net ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s arrival %.3f  required %.3f  slack %.3f\n"
           (Circuit.net_name circuit net) (arrival t net) (required t net) (slack t net)))
    (worst_path t);
  Buffer.contents buf
