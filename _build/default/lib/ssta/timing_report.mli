(** Deterministic timing reports on top of {!Sta}: required times,
    slacks, and worst-path backtraces against a clock constraint — the
    signoff-style view that frames what the statistical engines refine.

    Arrival times use the latest (max) corner; required times propagate
    backward from the clock period at every endpoint; slack = required -
    arrival.  Negative slack = violation. *)

type t

val analyze :
  ?gate_delay:float ->
  ?input_arrival:float ->
  clock_period:float ->
  Spsta_netlist.Circuit.t ->
  t
(** [input_arrival] (default 0) is the latest launch time of every
    source. *)

val arrival : t -> Spsta_netlist.Circuit.id -> float
(** Latest arrival at the net. *)

val required : t -> Spsta_netlist.Circuit.id -> float
(** Latest permissible arrival.  Nets that reach no endpoint get
    [infinity] (their timing cannot matter). *)

val slack : t -> Spsta_netlist.Circuit.id -> float

val worst_slack : t -> float
val violations : t -> Spsta_netlist.Circuit.id list
(** Endpoints with negative slack, worst first. *)

val worst_path : t -> Spsta_netlist.Circuit.id list
(** Source-to-endpoint backtrace through the latest-arrival inputs of
    the worst-slack endpoint. *)

val render : Spsta_netlist.Circuit.t -> t -> string
(** A signoff-style summary: worst slack, violation count, and the worst
    path with per-stage arrivals. *)
