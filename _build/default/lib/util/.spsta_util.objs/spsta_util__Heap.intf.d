lib/util/heap.mli:
