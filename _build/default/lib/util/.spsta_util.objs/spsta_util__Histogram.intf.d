lib/util/histogram.mli:
