lib/util/rng.mli:
