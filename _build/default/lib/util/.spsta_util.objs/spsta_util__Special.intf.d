lib/util/special.mli:
