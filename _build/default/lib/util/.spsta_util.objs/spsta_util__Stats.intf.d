lib/util/stats.mli:
