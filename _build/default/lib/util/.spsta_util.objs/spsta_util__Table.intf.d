lib/util/table.mli:
