(** A mutable binary heap with an explicit ordering, used for
    priority-driven searches (e.g. longest-path enumeration). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Min-heap with respect to [cmp] (pop returns the smallest). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum. *)

val peek : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Drains the heap (ascending). *)
