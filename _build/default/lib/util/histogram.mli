(** Fixed-bin histograms, used to visualise Monte Carlo arrival-time
    distributions (Fig. 1) and to compare distribution shapes. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal bins.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Samples outside [lo, hi) are clamped into the end bins. *)

val count : t -> int
(** Total samples added. *)

val bin_count : t -> int
val bin_center : t -> int -> float
val density : t -> int -> float
(** Normalised height of bin [i] so the histogram integrates to 1;
    0 when the histogram is empty. *)

val densities : t -> (float * float) array
(** All (center, density) pairs, in bin order. *)

val of_samples : ?bins:int -> float array -> t
(** Histogram spanning the sample range (default 50 bins).
    Raises [Invalid_argument] on an empty array. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one bin per line — handy in example programs. *)
