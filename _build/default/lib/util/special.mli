(** Special functions needed by the statistical timing formulas:
    the error function and the standard normal pdf/cdf/quantile. *)

val erf : float -> float
(** Error function, accurate to ~1.2e-7 absolute (sufficient for timing
    moments; validated against high-precision references in the tests). *)

val erfc : float -> float
(** Complementary error function, [1 - erf x] without cancellation. *)

val normal_pdf : float -> float
(** Standard normal density φ(x). *)

val normal_cdf : float -> float
(** Standard normal distribution function Φ(x). *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} on (0, 1) (Acklam's rational approximation,
    relative error < 1.15e-9).  Raises [Invalid_argument] outside (0, 1). *)
