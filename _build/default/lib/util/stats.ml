type acc = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable lo : float;
  mutable hi : float;
}

let acc_create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let acc_add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let acc_count t = t.n
let acc_mean t = if t.n = 0 then 0.0 else t.mu
let acc_variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let acc_stddev t = sqrt (acc_variance t)

let acc_min t =
  if t.n = 0 then invalid_arg "Stats.acc_min: empty accumulator";
  t.lo

let acc_max t =
  if t.n = 0 then invalid_arg "Stats.acc_max: empty accumulator";
  t.hi

let acc_merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mu -. a.mu in
    let nf = float_of_int n in
    let mu = a.mu +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mu; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  end

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let central_moment xs ~order ~mu =
  let n = float_of_int (Array.length xs) in
  Array.fold_left (fun acc x -> acc +. ((x -. mu) ** float_of_int order)) 0.0 xs /. n

let variance xs =
  check_nonempty "Stats.variance" xs;
  central_moment xs ~order:2 ~mu:(mean xs)

let stddev xs = sqrt (variance xs)

let skewness xs =
  check_nonempty "Stats.skewness" xs;
  let mu = mean xs in
  let v = central_moment xs ~order:2 ~mu in
  if v <= 0.0 then 0.0 else central_moment xs ~order:3 ~mu /. (v ** 1.5)

let covariance xs ys =
  check_nonempty "Stats.covariance" xs;
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.covariance: length mismatch";
  let mx = mean xs and my = mean ys in
  let n = float_of_int (Array.length xs) in
  let sum = ref 0.0 in
  Array.iteri (fun i x -> sum := !sum +. ((x -. mx) *. (ys.(i) -. my))) xs;
  !sum /. n

let correlation xs ys =
  let sx = stddev xs and sy = stddev ys in
  if sx <= 0.0 || sy <= 0.0 then 0.0 else covariance xs ys /. (sx *. sy)

let percentile xs ~p =
  check_nonempty "Stats.percentile" xs;
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  if i >= n - 1 then sorted.(n - 1)
  else
    let frac = pos -. float_of_int i in
    (sorted.(i) *. (1.0 -. frac)) +. (sorted.(i + 1) *. frac)

let relative_error ~reference x =
  let diff = Float.abs (x -. reference) in
  if reference = 0.0 then diff else diff /. Float.abs reference

let ks_statistic xs ~cdf =
  check_nonempty "Stats.ks_statistic" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let nf = float_of_int n in
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      (* the empirical cdf jumps from i/n to (i+1)/n at x *)
      worst := Float.max !worst (Float.abs (f -. (float_of_int i /. nf)));
      worst := Float.max !worst (Float.abs (f -. (float_of_int (i + 1) /. nf))))
    sorted;
  !worst

let ks_critical ~n ~alpha =
  if n <= 0 then invalid_arg "Stats.ks_critical: n must be positive";
  let c =
    if Float.abs (alpha -. 0.10) < 1e-9 then 1.224
    else if Float.abs (alpha -. 0.05) < 1e-9 then 1.358
    else if Float.abs (alpha -. 0.01) < 1e-9 then 1.628
    else invalid_arg "Stats.ks_critical: unsupported alpha"
  in
  c /. sqrt (float_of_int n)
