type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let cell_float x = Printf.sprintf "%.2f" x

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    if n <= 0 then c
    else
      match align with
      | Left -> c ^ String.make n ' '
      | Right -> String.make n ' ' ^ c
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line t.headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (function
      | Cells c -> Buffer.add_string buf (line c ^ "\n")
      | Separator -> Buffer.add_string buf (rule ^ "\n"))
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf
