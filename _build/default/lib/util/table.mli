(** Minimal ASCII table rendering for experiment reports, mirroring the
    row/column layout of the paper's tables. *)

type align = Left | Right

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_separator : t -> unit
(** Horizontal rule between row groups (e.g. rising vs falling blocks). *)

val render : ?align:align -> t -> string
(** Render with column padding; [align] applies to data cells
    (headers are centred-ish via left alignment). Default [Right]. *)

val cell_float : float -> string
(** Standard 2-decimal cell formatting used across the experiment tables. *)
