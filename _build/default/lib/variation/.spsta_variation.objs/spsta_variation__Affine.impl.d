lib/variation/affine.ml: Float List
