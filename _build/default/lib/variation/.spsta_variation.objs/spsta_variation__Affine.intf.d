lib/variation/affine.mli:
