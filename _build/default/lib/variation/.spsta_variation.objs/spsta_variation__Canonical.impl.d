lib/variation/canonical.ml: Array Float List Spsta_dist Spsta_util
