lib/variation/canonical.mli: Spsta_dist Spsta_util
