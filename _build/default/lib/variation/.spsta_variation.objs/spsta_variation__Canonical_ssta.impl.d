lib/variation/canonical_ssta.ml: Array Canonical List Param_model Spsta_logic Spsta_netlist
