lib/variation/canonical_ssta.mli: Canonical Param_model Spsta_netlist
