lib/variation/interval_sta.ml: Affine Array Float List Spsta_netlist
