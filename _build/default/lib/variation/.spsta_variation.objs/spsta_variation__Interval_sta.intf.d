lib/variation/interval_sta.mli: Affine Spsta_netlist
