lib/variation/param_model.ml: Array Canonical List Spsta_netlist Spsta_util
