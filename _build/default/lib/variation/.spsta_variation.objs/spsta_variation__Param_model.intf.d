lib/variation/param_model.mli: Canonical Spsta_netlist Spsta_util
