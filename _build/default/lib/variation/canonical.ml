module Normal = Spsta_dist.Normal
module Special = Spsta_util.Special

type t = { mean : float; sens : float array; rand : float }

let make ~mean ~sens ~rand =
  if rand < 0.0 then invalid_arg "Canonical.make: negative independent sigma";
  { mean; sens; rand }

let constant ~nparams x = { mean = x; sens = Array.make nparams 0.0; rand = 0.0 }

let nparams t = Array.length t.sens

let variance t =
  Array.fold_left (fun acc s -> acc +. (s *. s)) (t.rand *. t.rand) t.sens

let stddev t = sqrt (variance t)

let check_compatible a b =
  if Array.length a.sens <> Array.length b.sens then
    invalid_arg "Canonical: parameter-count mismatch"

let covariance a b =
  check_compatible a b;
  let acc = ref 0.0 in
  Array.iteri (fun i s -> acc := !acc +. (s *. b.sens.(i))) a.sens;
  !acc

let correlation a b =
  let sa = stddev a and sb = stddev b in
  if sa <= 0.0 || sb <= 0.0 then 0.0 else covariance a b /. (sa *. sb)

let add a b =
  check_compatible a b;
  {
    mean = a.mean +. b.mean;
    sens = Array.mapi (fun i s -> s +. b.sens.(i)) a.sens;
    rand = sqrt ((a.rand *. a.rand) +. (b.rand *. b.rand));
  }

let add_constant t c = { t with mean = t.mean +. c }
let negate t = { mean = -.t.mean; sens = Array.map (fun s -> -.s) t.sens; rand = t.rand }

let scale t k =
  { mean = k *. t.mean; sens = Array.map (fun s -> k *. s) t.sens; rand = Float.abs k *. t.rand }

(* Clark MAX with the covariance implied by the shared parameters, then
   re-expression: sensitivities blend with the tightness Q (the standard
   canonical-SSTA recipe); the independent sigma is set so the canonical
   variance equals Clark's second moment. *)
let max2 a b =
  check_compatible a b;
  let var_a = variance a and var_b = variance b in
  let cov = covariance a b in
  let theta2 = var_a +. var_b -. (2.0 *. cov) in
  if theta2 <= 1e-24 then if a.mean >= b.mean then a else b
  else begin
    let theta = sqrt theta2 in
    let lambda = (a.mean -. b.mean) /. theta in
    let q = Special.normal_cdf lambda in
    let p = Special.normal_pdf lambda in
    let mean = (a.mean *. q) +. (b.mean *. (1.0 -. q)) +. (theta *. p) in
    let second =
      (((a.mean *. a.mean) +. var_a) *. q)
      +. (((b.mean *. b.mean) +. var_b) *. (1.0 -. q))
      +. ((a.mean +. b.mean) *. theta *. p)
    in
    let var_clark = Float.max (second -. (mean *. mean)) 0.0 in
    let sens = Array.mapi (fun i s -> (q *. s) +. ((1.0 -. q) *. b.sens.(i))) a.sens in
    let linear_var = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 sens in
    let rand2 = Float.max (var_clark -. linear_var) 0.0 in
    { mean; sens; rand = sqrt rand2 }
  end

let min2 a b = negate (max2 (negate a) (negate b))

let fold_many name op = function
  | [] -> invalid_arg (name ^ ": empty list")
  | first :: rest -> List.fold_left op first rest

let max_many forms = fold_many "Canonical.max_many" max2 forms
let min_many forms = fold_many "Canonical.min_many" min2 forms

let to_normal t = Normal.make ~mu:t.mean ~sigma:(stddev t)

let sample rng ~params t =
  if Array.length params <> Array.length t.sens then
    invalid_arg "Canonical.sample: parameter-count mismatch";
  let linear = ref t.mean in
  Array.iteri (fun i s -> linear := !linear +. (s *. params.(i))) t.sens;
  if t.rand > 0.0 then !linear +. Spsta_util.Rng.gaussian rng ~mu:0.0 ~sigma:t.rand else !linear
