(** First-order canonical timing forms (Visweswariah et al., DAC 2004 —
    the block-based SSTA the paper cites as reference [25]):

      A = mean + sum_i sens.(i) * dX_i + rand * dR

    with dX_i shared standard-normal parameters (process variation) and
    dR an independent standard normal private to this form.  Linear
    operations are exact; MAX/MIN moment-match the result back onto the
    canonical form (Clark), preserving the correlation structure that a
    plain (mean, sigma) representation loses. *)

type t = {
  mean : float;
  sens : float array;  (** sensitivity to each shared parameter *)
  rand : float;  (** independent-term sigma, >= 0 *)
}

val make : mean:float -> sens:float array -> rand:float -> t
(** Raises [Invalid_argument] on negative [rand]. *)

val constant : nparams:int -> float -> t
val nparams : t -> int

val variance : t -> float
val stddev : t -> float
val covariance : t -> t -> float
(** Shared-parameter covariance (independent terms contribute nothing
    across distinct forms). *)

val correlation : t -> t -> float

val add : t -> t -> t
(** Sum of the two forms treating their [rand] terms as independent
    (exact for SUM of arrival + delay).
    Raises [Invalid_argument] on parameter-count mismatch. *)

val add_constant : t -> float -> t
val negate : t -> t
val scale : t -> float -> t

val max2 : t -> t -> t
(** Clark MAX re-expressed canonically: sensitivities blend by the
    tightness probability; the independent term absorbs the variance the
    linear part cannot express. *)

val min2 : t -> t -> t
val max_many : t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val min_many : t list -> t

val to_normal : t -> Spsta_dist.Normal.t
val sample : Spsta_util.Rng.t -> params:float array -> t -> float
(** Evaluate under a concrete parameter vector, drawing the independent
    term from the given generator. *)
