module Circuit = Spsta_netlist.Circuit

type result = {
  circuit : Circuit.t;
  per_net : Affine.t array;
  naive : (float * float) array; (* plain interval propagation, for comparison *)
}

let analyze ?(gate_delay = 1.0) ?(delay_radius = 0.0) ?(input_radius = 3.0) circuit =
  if delay_radius < 0.0 || input_radius < 0.0 then
    invalid_arg "Interval_sta.analyze: negative radius";
  let ctx = Affine.create_context () in
  let n = Circuit.num_nets circuit in
  let per_net = Array.make n (Affine.constant 0.0) in
  let naive = Array.make n (0.0, 0.0) in
  List.iter
    (fun s ->
      per_net.(s) <- Affine.make ctx ~center:0.0 ~radius:input_radius;
      naive.(s) <- (-.input_radius, input_radius))
    (Circuit.sources circuit);
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { inputs; _ } ->
        let operands = Array.to_list (Array.map (fun i -> per_net.(i)) inputs) in
        let delay = Affine.make ctx ~center:gate_delay ~radius:delay_radius in
        per_net.(g) <- Affine.add (Affine.join_max_many ctx operands) delay;
        let lo =
          Array.fold_left (fun acc i -> Float.max acc (fst naive.(i))) neg_infinity inputs
        in
        let hi =
          Array.fold_left (fun acc i -> Float.max acc (snd naive.(i))) neg_infinity inputs
        in
        naive.(g) <- (lo +. gate_delay -. delay_radius, hi +. gate_delay +. delay_radius)
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    (Circuit.topo_gates circuit);
  { circuit; per_net; naive }

let arrival r id = r.per_net.(id)

(* intersect the affine enclosure with the naive one: both are
   guaranteed, so their intersection is too and is never wider *)
let arrival_interval r id =
  let alo, ahi = Affine.interval r.per_net.(id) in
  let nlo, nhi = r.naive.(id) in
  (Float.max alo nlo, Float.min ahi nhi)

let endpoints_exn r =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Interval_sta: circuit has no endpoints"
  | endpoints -> endpoints

let chip_interval r =
  let endpoints = endpoints_exn r in
  (* interval of the max: combine endpoint enclosures conservatively *)
  List.fold_left
    (fun (lo, hi) e ->
      let elo, ehi = arrival_interval r e in
      (Float.max lo elo, Float.max hi ehi))
    (neg_infinity, neg_infinity) endpoints

let naive_chip_interval r =
  List.fold_left
    (fun (lo, hi) e ->
      let elo, ehi = r.naive.(e) in
      (Float.max lo elo, Float.max hi ehi))
    (neg_infinity, neg_infinity)
    (endpoints_exn r)
