module Circuit = Spsta_netlist.Circuit
module Rng = Spsta_util.Rng

type t = {
  nominal : float;
  sigma_global : float;
  sigma_spatial : float;
  sigma_random : float;
  grid : int;
}

let create ?(nominal = 1.0) ?(sigma_global = 0.0) ?(sigma_spatial = 0.0) ?(sigma_random = 0.0)
    ~grid () =
  if grid <= 0 then invalid_arg "Param_model.create: grid must be positive";
  List.iter
    (fun s -> if s < 0.0 then invalid_arg "Param_model.create: negative sigma")
    [ sigma_global; sigma_spatial; sigma_random ];
  { nominal; sigma_global; sigma_spatial; sigma_random; grid }

let nominal t = t.nominal
let grid t = t.grid
let num_params t = 1 + (t.grid * t.grid)

let total_sigma t =
  sqrt
    ((t.sigma_global *. t.sigma_global)
    +. (t.sigma_spatial *. t.sigma_spatial)
    +. (t.sigma_random *. t.sigma_random))

let delay_correlation t ~same_region =
  let var = total_sigma t ** 2.0 in
  if var <= 0.0 then 0.0
  else begin
    let shared =
      (t.sigma_global *. t.sigma_global)
      +. if same_region then t.sigma_spatial *. t.sigma_spatial else 0.0
    in
    shared /. var
  end

type placement = { regions : int array }

(* columns follow logic level so paths sweep across the die (spatially
   close stages correlate); rows are seeded-random *)
let place ?(seed = 0) t circuit =
  let n = Circuit.num_nets circuit in
  let rng = Rng.create ~seed in
  let depth = max 1 (Circuit.depth circuit) in
  let regions =
    Array.init n (fun id ->
        let col = Circuit.level circuit id * (t.grid - 1) / depth in
        let row = Rng.int rng t.grid in
        (row * t.grid) + min col (t.grid - 1))
  in
  { regions }

let region p id = p.regions.(id)

let gate_delay_canonical t p id =
  let sens = Array.make (num_params t) 0.0 in
  sens.(0) <- t.sigma_global;
  sens.(1 + region p id) <- t.sigma_spatial;
  Canonical.make ~mean:t.nominal ~sens ~rand:t.sigma_random

let sample_delays rng t p circuit =
  let g = Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
  let spatial = Array.init (t.grid * t.grid) (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let n = Circuit.num_nets circuit in
  let delays =
    Array.init n (fun id ->
        t.nominal +. (t.sigma_global *. g)
        +. (t.sigma_spatial *. spatial.(region p id))
        +. (t.sigma_random *. Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
  in
  fun id -> delays.(id)
