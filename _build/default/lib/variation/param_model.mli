(** Correlated process-parameter model (paper §1: die-to-die plus
    spatially correlated intra-die plus independent random variation).

    The die is divided into a [grid] x [grid] array of regions.  A gate's
    delay is

      d = nominal + sigma_global * G + sigma_spatial * S(region)
                  + sigma_random * R(gate)

    where G (one per die), S (one per region) and R (one per gate) are
    independent standard normals.  Two gates in the same region share G
    and S; gates in different regions share only G — the classic grid
    spatial-correlation model that principal-component SSTA targets. *)

type t

val create :
  ?nominal:float ->
  ?sigma_global:float ->
  ?sigma_spatial:float ->
  ?sigma_random:float ->
  grid:int ->
  unit ->
  t
(** Defaults: nominal 1.0 (the paper's unit delay), sigmas 0.
    Raises [Invalid_argument] on non-positive [grid] or negative
    sigmas. *)

val nominal : t -> float
val grid : t -> int

val num_params : t -> int
(** 1 global + grid^2 spatial parameters (the shared, correlated ones;
    per-gate random terms are not counted). *)

val total_sigma : t -> float
(** Standard deviation of a single gate's delay:
    sqrt(sg^2 + ss^2 + sr^2). *)

val delay_correlation : t -> same_region:bool -> float
(** Correlation between two distinct gates' delays. *)

type placement
(** Assignment of every net to a die region. *)

val place : ?seed:int -> t -> Spsta_netlist.Circuit.t -> placement
(** Deterministic pseudo-random placement: gates spread over the grid by
    seeded hashing (levels bias columns so paths walk across the die). *)

val region : placement -> Spsta_netlist.Circuit.id -> int
(** Region index in [0, grid^2). *)

val gate_delay_canonical : t -> placement -> Spsta_netlist.Circuit.id -> Canonical.t
(** The gate's delay as a first-order canonical form over this model's
    parameter vector. *)

val sample_delays :
  Spsta_util.Rng.t -> t -> placement -> Spsta_netlist.Circuit.t ->
  (Spsta_netlist.Circuit.id -> float)
(** Draw one die: one global deviate, one per region, one per gate;
    returns the per-gate delay function for a simulator run. *)
