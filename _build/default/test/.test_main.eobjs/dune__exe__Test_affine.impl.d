test/test_affine.ml: Alcotest Array Float Hashtbl List QCheck QCheck_alcotest Spsta_experiments Spsta_logic Spsta_netlist Spsta_util Spsta_variation
