test/test_bdd.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Spsta_bdd Spsta_logic
