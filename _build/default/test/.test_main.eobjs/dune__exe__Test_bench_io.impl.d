test/test_bench_io.ml: Alcotest Filename Fun List Spsta_experiments Spsta_logic Spsta_netlist String Sys
