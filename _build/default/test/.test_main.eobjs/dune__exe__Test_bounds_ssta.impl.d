test/test_bounds_ssta.ml: Alcotest Array Float List Printf Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_ssta Spsta_util
