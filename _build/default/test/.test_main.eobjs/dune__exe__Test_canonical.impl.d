test/test_canonical.ml: Alcotest Array Float List Printf Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_util Spsta_variation
