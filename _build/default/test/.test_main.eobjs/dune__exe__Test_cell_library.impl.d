test/test_cell_library.ml: Alcotest Array Float List Spsta_core Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_ssta Spsta_util
