test/test_chip_delay.ml: Alcotest Array Float List Spsta_core Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_util
