test/test_circuit.ml: Alcotest Array Hashtbl List Spsta_logic Spsta_netlist
