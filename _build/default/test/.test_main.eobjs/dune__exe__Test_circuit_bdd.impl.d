test/test_circuit_bdd.ml: Alcotest Array List Spsta_bdd Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim
