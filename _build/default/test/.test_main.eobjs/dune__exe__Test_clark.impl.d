test/test_clark.ml: Alcotest Float QCheck QCheck_alcotest Spsta_dist Spsta_util
