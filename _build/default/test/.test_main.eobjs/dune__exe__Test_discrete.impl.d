test/test_discrete.ml: Alcotest Float QCheck QCheck_alcotest Spsta_dist Spsta_util
