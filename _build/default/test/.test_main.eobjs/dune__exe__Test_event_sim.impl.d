test/test_event_sim.ml: Alcotest Array Float Hashtbl List QCheck QCheck_alcotest Spsta_logic Spsta_netlist Spsta_power Spsta_sim Spsta_util
