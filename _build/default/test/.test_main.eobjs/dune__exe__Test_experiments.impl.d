test/test_experiments.ml: Alcotest Array Float List Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim String
