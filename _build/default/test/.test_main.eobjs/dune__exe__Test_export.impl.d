test/test_export.ml: Alcotest Filename Float Fun List Spsta_core Spsta_experiments Spsta_netlist String Sys
