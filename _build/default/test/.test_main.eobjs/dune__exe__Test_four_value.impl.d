test/test_four_value.ml: Alcotest Float List QCheck QCheck_alcotest Spsta_core Spsta_logic
