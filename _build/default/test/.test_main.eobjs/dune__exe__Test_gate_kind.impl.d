test/test_gate_kind.ml: Alcotest List QCheck QCheck_alcotest Spsta_logic
