test/test_generator.ml: Alcotest List QCheck QCheck_alcotest Spsta_netlist
