test/test_histogram.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Spsta_util String
