test/test_incremental.ml: Alcotest Array Float Hashtbl List Spsta_core Spsta_experiments Spsta_netlist Spsta_sim
