test/test_input_spec.ml: Alcotest Float Hashtbl Option Spsta_logic Spsta_sim Spsta_util
