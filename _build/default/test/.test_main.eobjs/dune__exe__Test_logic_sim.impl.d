test/test_logic_sim.ml: Alcotest Array Float List QCheck QCheck_alcotest Spsta_logic Spsta_netlist Spsta_sim Spsta_util
