test/test_mixture.ml: Alcotest Float Gen List QCheck QCheck_alcotest Spsta_dist Spsta_util
