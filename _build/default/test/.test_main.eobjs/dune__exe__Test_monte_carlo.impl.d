test/test_monte_carlo.ml: Alcotest Float List Spsta_logic Spsta_netlist Spsta_sim Spsta_util
