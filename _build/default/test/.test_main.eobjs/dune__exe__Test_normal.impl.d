test/test_normal.ml: Alcotest Float List QCheck QCheck_alcotest Spsta_dist Spsta_util
