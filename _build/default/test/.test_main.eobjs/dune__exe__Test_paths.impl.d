test/test_paths.ml: Alcotest Array Float Int List QCheck QCheck_alcotest Spsta_experiments Spsta_logic Spsta_netlist Spsta_paths Spsta_util Spsta_variation String
