test/test_rng.ml: Alcotest Array Float Spsta_util
