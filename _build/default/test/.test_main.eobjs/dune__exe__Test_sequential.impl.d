test/test_sequential.ml: Alcotest Array Float List Printf Spsta_core Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim
