test/test_signal_prob.ml: Alcotest Array Float List Spsta_bdd Spsta_core Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim
