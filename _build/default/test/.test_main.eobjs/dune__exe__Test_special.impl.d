test/test_special.ml: Alcotest Float List QCheck QCheck_alcotest Spsta_util
