test/test_sta_ssta.ml: Alcotest Float List Printf Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_ssta
