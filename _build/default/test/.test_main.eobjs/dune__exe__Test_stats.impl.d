test/test_stats.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Spsta_util
