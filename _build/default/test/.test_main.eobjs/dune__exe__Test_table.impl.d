test/test_table.ml: Alcotest List Spsta_util String
