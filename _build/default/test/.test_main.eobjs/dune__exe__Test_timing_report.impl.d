test/test_timing_report.ml: Alcotest Float List Spsta_experiments Spsta_logic Spsta_netlist Spsta_ssta String
