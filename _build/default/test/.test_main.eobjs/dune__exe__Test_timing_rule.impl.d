test/test_timing_rule.ml: Alcotest Fmt List Spsta_logic
