test/test_toggle_power.ml: Alcotest Array Float List Spsta_core Spsta_experiments Spsta_logic Spsta_netlist Spsta_power Spsta_sim
