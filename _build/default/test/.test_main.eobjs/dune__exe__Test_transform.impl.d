test/test_transform.ml: Alcotest Array Float Hashtbl List Printf Spsta_core Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Spsta_util
