test/test_truth.ml: Alcotest Array Float Gen QCheck QCheck_alcotest Spsta_logic
