test/test_two_value_exact.ml: Alcotest Array Float List Printf Spsta_core Spsta_dist Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim
