test/test_value4.ml: Alcotest List Printf QCheck QCheck_alcotest Spsta_logic String
