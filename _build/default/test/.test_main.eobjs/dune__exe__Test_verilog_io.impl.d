test/test_verilog_io.ml: Alcotest Array Filename Fun List Spsta_experiments Spsta_logic Spsta_netlist Spsta_sim Sys
