module Bdd = Spsta_bdd.Bdd
module Gate_kind = Spsta_logic.Gate_kind
module Truth = Spsta_logic.Truth

let test_constants () =
  let m = Bdd.create ~nvars:2 () in
  Alcotest.(check bool) "zero is const false" true (Bdd.is_const (Bdd.zero m) = Some false);
  Alcotest.(check bool) "one is const true" true (Bdd.is_const (Bdd.one m) = Some true);
  Alcotest.(check bool) "var is not const" true (Bdd.is_const (Bdd.var m 0) = None)

let test_var_bounds () =
  let m = Bdd.create ~nvars:2 () in
  Alcotest.check_raises "var out of range" (Invalid_argument "Bdd.var: index outside universe")
    (fun () -> ignore (Bdd.var m 2))

let test_hash_consing () =
  let m = Bdd.create ~nvars:3 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let x = Bdd.band m a b and y = Bdd.band m b a in
  Alcotest.(check bool) "AND commutes to the same node" true (Bdd.equal x y);
  let z = Bdd.bnot m (Bdd.bnot m x) in
  Alcotest.(check bool) "double negation is physical identity" true (Bdd.equal x z)

let test_basic_laws () =
  let m = Bdd.create ~nvars:3 () in
  let a = Bdd.var m 0 in
  Alcotest.(check bool) "a AND !a = 0" true
    (Bdd.equal (Bdd.band m a (Bdd.bnot m a)) (Bdd.zero m));
  Alcotest.(check bool) "a OR !a = 1" true (Bdd.equal (Bdd.bor m a (Bdd.bnot m a)) (Bdd.one m));
  Alcotest.(check bool) "a XOR a = 0" true (Bdd.equal (Bdd.bxor m a a) (Bdd.zero m));
  Alcotest.(check bool) "a AND 1 = a" true (Bdd.equal (Bdd.band m a (Bdd.one m)) a)

let test_eval () =
  let m = Bdd.create ~nvars:3 () in
  let f =
    (* (x0 AND x1) OR x2 *)
    Bdd.bor m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2)
  in
  let assign bits v = bits land (1 lsl v) <> 0 in
  for bits = 0 to 7 do
    let expected = (assign bits 0 && assign bits 1) || assign bits 2 in
    Alcotest.(check bool) "eval matches" expected (Bdd.eval f (assign bits))
  done

let test_apply_gate () =
  let m = Bdd.create ~nvars:3 () in
  let vars = [ Bdd.var m 0; Bdd.var m 1; Bdd.var m 2 ] in
  List.iter
    (fun kind ->
      let f = Bdd.apply_gate m kind vars in
      let truth = Truth.of_gate kind ~arity:3 in
      for bits = 0 to 7 do
        Alcotest.(check bool)
          (Gate_kind.to_string kind)
          (Truth.eval truth bits)
          (Bdd.eval f (fun v -> bits land (1 lsl v) <> 0))
      done)
    [ Gate_kind.And; Gate_kind.Nand; Gate_kind.Or; Gate_kind.Nor; Gate_kind.Xor; Gate_kind.Xnor ]

let test_prob_one () =
  let m = Bdd.create ~nvars:2 () in
  let p = function 0 -> 0.5 | _ -> 0.3 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check (float 1e-12)) "P(and)" 0.15 (Bdd.prob_one m f p);
  let g = Bdd.bor m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check (float 1e-12)) "P(or)" 0.65 (Bdd.prob_one m g p);
  Alcotest.(check (float 1e-12)) "P(const 1)" 1.0 (Bdd.prob_one m (Bdd.one m) p)

let test_size () =
  let m = Bdd.create ~nvars:4 () in
  Alcotest.(check int) "leaf size" 0 (Bdd.size (Bdd.one m));
  Alcotest.(check int) "var size" 1 (Bdd.size (Bdd.var m 0));
  (* parity of n vars needs 2n-1 nodes in a BDD without complement edges *)
  let parity =
    List.fold_left (Bdd.bxor m) (Bdd.zero m) [ Bdd.var m 0; Bdd.var m 1; Bdd.var m 2; Bdd.var m 3 ]
  in
  Alcotest.(check int) "parity size" 7 (Bdd.size parity)

let test_size_limit () =
  let m = Bdd.create ~max_nodes:3 ~nvars:8 () in
  Alcotest.(check bool) "node budget enforced" true
    ( match
        List.fold_left (Bdd.bxor m) (Bdd.zero m) (List.init 8 (fun i -> Bdd.var m i))
      with
    | (_ : Bdd.t) -> false
    | exception Bdd.Size_limit_exceeded -> true )

(* random 3-var expressions: BDD semantics = truth-table semantics *)
let random_expr_semantics =
  let gen =
    (* encode an expression tree: leaves are vars, internal nodes ops *)
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map (fun i -> `Var i) (int_range 0 2)
          else
            frequency
              [
                (1, map (fun i -> `Var i) (int_range 0 2));
                (2, map2 (fun a b -> `And (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> `Or (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> `Xor (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> `Not a) (self (n - 1)));
              ]))
  in
  QCheck.Test.make ~name:"random expressions: BDD = truth table" ~count:300 (QCheck.make gen)
    (fun expr ->
      let m = Bdd.create ~nvars:3 () in
      let rec to_bdd = function
        | `Var i -> Bdd.var m i
        | `And (a, b) -> Bdd.band m (to_bdd a) (to_bdd b)
        | `Or (a, b) -> Bdd.bor m (to_bdd a) (to_bdd b)
        | `Xor (a, b) -> Bdd.bxor m (to_bdd a) (to_bdd b)
        | `Not a -> Bdd.bnot m (to_bdd a)
      in
      let rec to_truth = function
        | `Var i -> Truth.var ~arity:3 i
        | `And (a, b) -> Truth.land2 (to_truth a) (to_truth b)
        | `Or (a, b) -> Truth.lor2 (to_truth a) (to_truth b)
        | `Xor (a, b) -> Truth.lxor2 (to_truth a) (to_truth b)
        | `Not a -> Truth.lnot (to_truth a)
      in
      let f = to_bdd expr and t = to_truth expr in
      let ok = ref true in
      for bits = 0 to 7 do
        if Bdd.eval f (fun v -> bits land (1 lsl v) <> 0) <> Truth.eval t bits then ok := false
      done;
      !ok)

(* prob_one agrees with exact weighted enumeration of the truth table *)
let prob_matches_enumeration =
  QCheck.Test.make ~name:"prob_one = weighted minterm sum" ~count:200
    QCheck.(
      pair (array_of_size (Gen.return 8) bool)
        (triple (float_range 0. 1.) (float_range 0. 1.) (float_range 0. 1.)))
    (fun (table, (p0, p1, p2)) ->
      let m = Bdd.create ~nvars:3 () in
      (* build the BDD from the truth table via Shannon minterms *)
      let f = ref (Bdd.zero m) in
      for bits = 0 to 7 do
        if table.(bits) then begin
          let minterm = ref (Bdd.one m) in
          for v = 0 to 2 do
            let lit = if bits land (1 lsl v) <> 0 then Bdd.var m v else Bdd.bnot m (Bdd.var m v) in
            minterm := Bdd.band m !minterm lit
          done;
          f := Bdd.bor m !f !minterm
        end
      done;
      let probs = [| p0; p1; p2 |] in
      let truth = Truth.create ~arity:3 (fun a -> table.(a)) in
      Float.abs (Bdd.prob_one m !f (fun v -> probs.(v)) -. Truth.prob_one truth probs) < 1e-9)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "var bounds" `Quick test_var_bounds;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "boolean laws" `Quick test_basic_laws;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "apply_gate" `Quick test_apply_gate;
    Alcotest.test_case "prob_one" `Quick test_prob_one;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "size limit" `Quick test_size_limit;
    QCheck_alcotest.to_alcotest random_expr_semantics;
    QCheck_alcotest.to_alcotest prob_matches_enumeration;
  ]
