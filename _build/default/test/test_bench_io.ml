module Circuit = Spsta_netlist.Circuit
module Bench_io = Spsta_netlist.Bench_io
module Gate_kind = Spsta_logic.Gate_kind

let s27 () = Spsta_experiments.Benchmarks.s27 ()

let test_parse_s27 () =
  let c = s27 () in
  Alcotest.(check int) "inputs" 4 (List.length (Circuit.primary_inputs c));
  Alcotest.(check int) "outputs" 1 (List.length (Circuit.primary_outputs c));
  Alcotest.(check int) "dffs" 3 (List.length (Circuit.dffs c));
  Alcotest.(check int) "gates" 10 (Circuit.gate_count c);
  Alcotest.(check int) "NOR gates" 4 (Circuit.count_gates_of_kind c Gate_kind.Nor);
  Alcotest.(check int) "NOT gates" 2 (Circuit.count_gates_of_kind c Gate_kind.Not)

let test_roundtrip () =
  let c = s27 () in
  let c' = Bench_io.parse_string ~name:"s27" (Bench_io.to_string c) in
  Alcotest.(check int) "nets preserved" (Circuit.num_nets c) (Circuit.num_nets c');
  Alcotest.(check int) "gates preserved" (Circuit.gate_count c) (Circuit.gate_count c');
  Alcotest.(check int) "depth preserved" (Circuit.depth c) (Circuit.depth c');
  (* same drivers net-by-net (by name) *)
  List.iter
    (fun (q, d) ->
      let q' = Circuit.find_exn c' (Circuit.net_name c q) in
      match Circuit.driver c' q' with
      | Circuit.Dff_output { data } ->
        Alcotest.(check string) "dff data preserved" (Circuit.net_name c d) (Circuit.net_name c' data)
      | Circuit.Input | Circuit.Gate _ -> Alcotest.fail "expected DFF")
    (Circuit.dffs c)

let test_comments_and_blanks () =
  let text = "# a comment\n\nINPUT(x)   # trailing comment\nOUTPUT(y)\ny = NOT(x)\n" in
  let c = Bench_io.parse_string text in
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c)

let test_whitespace_tolerance () =
  let text = "INPUT( x )\nOUTPUT( y )\n  y   =  AND( x ,  x )  \n" in
  let c = Bench_io.parse_string text in
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c)

let expect_parse_error ~line text =
  match Bench_io.parse_string text with
  | (_ : Circuit.t) -> Alcotest.fail "expected Parse_error"
  | exception Bench_io.Parse_error { line = l; _ } ->
    Alcotest.(check int) "error line" line l

let test_parse_errors () =
  expect_parse_error ~line:1 "INPUT x\n";
  expect_parse_error ~line:2 "INPUT(a)\ny = FROB(a)\n";
  expect_parse_error ~line:1 "WIBBLE(a)\n";
  expect_parse_error ~line:3 "INPUT(a)\nOUTPUT(y)\ny = DFF(a, a)\n";
  expect_parse_error ~line:1 "INPUT(a b)\n"

let test_buff_alias () =
  let c = Bench_io.parse_string "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n" in
  Alcotest.(check int) "BUFF parsed as BUF" 1 (Circuit.count_gates_of_kind c Gate_kind.Buf)

let test_invalid_circuit_propagates () =
  Alcotest.(check bool) "undriven ref raises Invalid_circuit" true
    ( match Bench_io.parse_string "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" with
    | (_ : Circuit.t) -> false
    | exception Circuit.Invalid_circuit _ -> true )

let test_generator_roundtrip () =
  let profile =
    { Spsta_netlist.Generator.name = "rt"; n_inputs = 5; n_outputs = 3; n_dffs = 4;
      n_gates = 40; target_depth = 5; seed = 99 }
  in
  let c = Spsta_netlist.Generator.generate profile in
  let c' = Bench_io.parse_string ~name:"rt" (Bench_io.to_string c) in
  Alcotest.(check int) "generated circuit roundtrips" (Circuit.num_nets c) (Circuit.num_nets c');
  Alcotest.(check int) "depth roundtrips" (Circuit.depth c) (Circuit.depth c')

let test_write_file () =
  let path = Filename.temp_file "spsta_test" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_io.write_file (s27 ()) path;
      let c = Bench_io.parse_file path in
      Alcotest.(check bool) "name from filename" true (String.length (Circuit.name c) > 0);
      Alcotest.(check int) "gates" 10 (Circuit.gate_count c))

let suite =
  [
    Alcotest.test_case "parse s27" `Quick test_parse_s27;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "whitespace tolerance" `Quick test_whitespace_tolerance;
    Alcotest.test_case "parse errors with line numbers" `Quick test_parse_errors;
    Alcotest.test_case "BUFF alias" `Quick test_buff_alias;
    Alcotest.test_case "invalid circuit propagates" `Quick test_invalid_circuit_propagates;
    Alcotest.test_case "generator roundtrip" `Quick test_generator_roundtrip;
    Alcotest.test_case "write_file/parse_file" `Quick test_write_file;
  ]
