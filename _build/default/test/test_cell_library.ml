module Cell_library = Spsta_netlist.Cell_library
module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Input_spec = Spsta_sim.Input_spec
module A = Spsta_core.Analyzer.Moments

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_unit_delay () =
  List.iter
    (fun kind ->
      List.iter
        (fun fanin ->
          close "unit rise" 1.0 (Cell_library.delay Cell_library.unit_delay kind ~fanin `Rise);
          close "unit fall" 1.0 (Cell_library.delay Cell_library.unit_delay kind ~fanin `Fall))
        [ 1; 2; 4 ])
    [ Gate_kind.Not; Gate_kind.And; Gate_kind.Xor ]

let test_fanin_scaling () =
  let lib = Cell_library.default in
  let d2 = Cell_library.mean_delay lib Gate_kind.And ~fanin:2 in
  let d4 = Cell_library.mean_delay lib Gate_kind.And ~fanin:4 in
  Alcotest.(check bool) "fan-in increases delay" true (d4 > d2);
  close "linear increment" (d2 +. (2.0 *. 0.15)) d4 ~tol:1e-12

let test_rise_fall_skew () =
  let lib = Cell_library.default in
  let rise, fall = Cell_library.rise_fall_of lib Gate_kind.Nand ~fanin:2 in
  Alcotest.(check bool) "NAND rises slower" true (rise > fall);
  let r_sym, f_sym = Cell_library.rise_fall_of lib Gate_kind.And ~fanin:2 in
  close "AND symmetric" r_sym f_sym

let test_make_validation () =
  Alcotest.check_raises "negative base" (Invalid_argument "Cell_library.make: negative base delay")
    (fun () ->
      ignore
        (Cell_library.make ~base:(fun _ -> -1.0) ~per_input:(fun _ -> 0.0)
           ~rise_fall_skew:(fun _ -> 0.0)));
  Alcotest.check_raises "skew too large"
    (Invalid_argument "Cell_library.make: skew magnitude must be below 1") (fun () ->
      ignore
        (Cell_library.make ~base:(fun _ -> 1.0) ~per_input:(fun _ -> 0.0)
           ~rise_fall_skew:(fun _ -> 1.0)))

let nand_gate () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Nand [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_gate_delays_accessor () =
  let c = nand_gate () in
  let y = Circuit.find_exn c "y" in
  let rise, fall = Cell_library.gate_delays Cell_library.default c y in
  let er, ef = Cell_library.rise_fall_of Cell_library.default Gate_kind.Nand ~fanin:2 in
  close "rise accessor" er rise;
  close "fall accessor" ef fall;
  Alcotest.check_raises "source net"
    (Invalid_argument "Cell_library.gate_delays: net is not gate-driven") (fun () ->
      ignore (Cell_library.gate_delays Cell_library.default c (Circuit.find_exn c "a")))

(* simulator and SPSTA must both apply the direction-correct delay *)
let test_sim_uses_direction_delay () =
  let c = nand_gate () in
  let lib = Cell_library.default in
  let delay_rf = Cell_library.gate_delays lib c in
  let y = Circuit.find_exn c "y" in
  (* both inputs fall at t=2: NAND output rises *)
  let sim_rise =
    Spsta_sim.Logic_sim.run ~delay_rf c ~source_values:(fun _ -> (Value4.Falling, 2.0))
  in
  let er, ef = Cell_library.rise_fall_of lib Gate_kind.Nand ~fanin:2 in
  close "sim rise time" (2.0 +. er) sim_rise.Spsta_sim.Logic_sim.times.(y);
  (* both inputs rise at t=2: NAND output falls at MAX + fall delay *)
  let sim_fall =
    Spsta_sim.Logic_sim.run ~delay_rf c ~source_values:(fun s ->
        if Circuit.net_name c s = "a" then (Value4.Rising, 2.0) else (Value4.Rising, 3.0))
  in
  close "sim fall time" (3.0 +. ef) sim_fall.Spsta_sim.Logic_sim.times.(y)

let test_spsta_uses_direction_delay () =
  let c = nand_gate () in
  let lib = Cell_library.default in
  let delay_rf = Cell_library.gate_delays lib c in
  (* deterministic falling inputs at t=2 -> NAND rises *)
  let spec _ =
    Input_spec.make
      ~fall_arrival:(Spsta_dist.Normal.make ~mu:2.0 ~sigma:0.0)
      ~p_zero:0.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:1.0 ()
  in
  let r = A.analyze ~delay_rf c ~spec in
  let y = Circuit.find_exn c "y" in
  let mu, _, p = A.transition_stats (A.signal r y) `Rise in
  let er, _ = Cell_library.rise_fall_of lib Gate_kind.Nand ~fanin:2 in
  close "rise probability one" 1.0 p ~tol:1e-12;
  close "spsta rise arrival" (2.0 +. er) mu ~tol:1e-9

let test_ssta_rf () =
  let c = nand_gate () in
  let lib = Cell_library.default in
  let r = Spsta_ssta.Ssta.analyze_rf ~delay_rf:(Cell_library.gate_delays lib c) c in
  let y = Circuit.find_exn c "y" in
  let a = Spsta_ssta.Ssta.arrival r y in
  let er, ef = Cell_library.rise_fall_of lib Gate_kind.Nand ~fanin:2 in
  (* NAND rise comes from the MIN of input falls (mean -1/sqrt(pi)) *)
  close "ssta rise mean" (-.(1.0 /. sqrt Float.pi) +. er)
    (Spsta_dist.Normal.mean a.Spsta_ssta.Ssta.rise) ~tol:1e-6;
  close "ssta fall mean" ((1.0 /. sqrt Float.pi) +. ef)
    (Spsta_dist.Normal.mean a.Spsta_ssta.Ssta.fall) ~tol:1e-6

(* end-to-end: SPSTA with a full cell library still tracks MC *)
let test_library_spsta_vs_mc () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let lib = Cell_library.default in
  let delay_rf g = Cell_library.gate_delays lib c g in
  let spec _ = Input_spec.case_i in
  let spsta = A.analyze ~delay_rf c ~spec in
  (* Monte Carlo with the same library *)
  let rng = Spsta_util.Rng.create ~seed:21 in
  let acc_rise = Spsta_util.Stats.acc_create () in
  let g17 = Circuit.find_exn c "G17" in
  let runs = 30_000 in
  let rises = ref 0 in
  for _ = 1 to runs do
    let r =
      Spsta_sim.Logic_sim.run ~delay_rf c
        ~source_values:(fun s -> Input_spec.sample rng (spec s))
    in
    if Value4.equal r.Spsta_sim.Logic_sim.values.(g17) Value4.Rising then begin
      incr rises;
      Spsta_util.Stats.acc_add acc_rise r.Spsta_sim.Logic_sim.times.(g17)
    end
  done;
  let mu, sigma, p = A.transition_stats (A.signal spsta g17) `Rise in
  close "library P vs MC" (float_of_int !rises /. float_of_int runs) p ~tol:0.03;
  close "library mean vs MC" (Spsta_util.Stats.acc_mean acc_rise) mu ~tol:0.15;
  close "library sigma vs MC" (Spsta_util.Stats.acc_stddev acc_rise) sigma ~tol:0.15

let suite =
  [
    Alcotest.test_case "unit delay library" `Quick test_unit_delay;
    Alcotest.test_case "fan-in scaling" `Quick test_fanin_scaling;
    Alcotest.test_case "rise/fall skew" `Quick test_rise_fall_skew;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "gate delay accessor" `Quick test_gate_delays_accessor;
    Alcotest.test_case "simulator direction delays" `Quick test_sim_uses_direction_delay;
    Alcotest.test_case "SPSTA direction delays" `Quick test_spsta_uses_direction_delay;
    Alcotest.test_case "SSTA rise/fall delays" `Quick test_ssta_rf;
    Alcotest.test_case "library SPSTA vs MC on s27" `Slow test_library_spsta_vs_mc;
  ]
