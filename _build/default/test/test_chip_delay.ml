module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Input_spec = Spsta_sim.Input_spec
module Chip_delay = Spsta_core.Chip_delay
module Logic_sim = Spsta_sim.Logic_sim
module Rng = Spsta_util.Rng
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let buffer () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_single_endpoint () =
  (* one buffer, input transitions with probability 1/2 at t=0 exactly:
     chip delay = 1 with probability 1/2, idle otherwise *)
  let c = buffer () in
  let spec _ =
    Input_spec.make
      ~rise_arrival:(Spsta_dist.Normal.make ~mu:0.0 ~sigma:0.0)
      ~p_zero:0.5 ~p_one:0.0 ~p_rise:0.5 ~p_fall:0.0 ()
  in
  let r = Chip_delay.compute c ~spec in
  close "idle probability" 0.5 (Chip_delay.p_idle r) ~tol:1e-9;
  close "chip delay mass" 0.5 (Spsta_dist.Discrete.total (Chip_delay.distribution r)) ~tol:1e-9;
  close "chip delay mean" 1.0 (Chip_delay.mean r) ~tol:0.05;
  close "yield before" 0.5 (Chip_delay.yield_at r 0.5) ~tol:1e-6;
  close "yield after" 1.0 (Chip_delay.yield_at r 1.5) ~tol:1e-6

let test_clock_for_yield () =
  let c = buffer () in
  let spec _ = Input_spec.case_i in
  let r = Chip_delay.compute c ~spec in
  let t90 = Chip_delay.clock_for_yield r 0.9 in
  Alcotest.(check bool) "yield at t90" true (Chip_delay.yield_at r t90 >= 0.9);
  Alcotest.(check bool) "monotone" true (Chip_delay.clock_for_yield r 0.99 >= t90);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Chip_delay.clock_for_yield: target outside (0,1]") (fun () ->
      ignore (Chip_delay.clock_for_yield r 1.5))

let test_criticality_sums_to_one () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let r = Chip_delay.compute c ~spec:(fun _ -> Input_spec.case_i) in
  let crit = Chip_delay.endpoint_criticality r in
  Alcotest.(check int) "one entry per endpoint" (List.length (Circuit.endpoints c))
    (List.length crit);
  close "criticalities sum to 1" 1.0 (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 crit)
    ~tol:1e-6;
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted descending" true (descending crit)

(* reference: direct Monte Carlo chip delays on s27 *)
let test_chip_delay_vs_mc () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let r = Chip_delay.compute ~dt:0.02 c ~spec in
  let rng = Rng.create ~seed:19 in
  let endpoints = Circuit.endpoints c in
  let acc = Stats.acc_create () in
  let idle = ref 0 in
  let runs = 30_000 in
  for _ = 1 to runs do
    let sim = Logic_sim.run_random rng c ~spec in
    let latest =
      List.fold_left
        (fun best e ->
          if Value4.is_transition sim.Logic_sim.values.(e) then
            Float.max best sim.Logic_sim.times.(e)
          else best)
        neg_infinity endpoints
    in
    if latest = neg_infinity then incr idle else Stats.acc_add acc latest
  done;
  let mc_idle = float_of_int !idle /. float_of_int runs in
  (* s27's endpoints are strongly correlated (G17 = NOT G11), so the
     independence-based chip MAX overestimates; keep tolerances loose
     enough to track the shape while still catching regressions *)
  close "idle probability vs MC" mc_idle (Chip_delay.p_idle r) ~tol:0.06;
  close "chip mean vs MC" (Stats.acc_mean acc) (Chip_delay.mean r) ~tol:0.4;
  close "chip sigma vs MC" (Stats.acc_stddev acc) (Chip_delay.stddev r) ~tol:0.3

let suite =
  [
    Alcotest.test_case "single endpoint" `Quick test_single_endpoint;
    Alcotest.test_case "clock for yield" `Quick test_clock_for_yield;
    Alcotest.test_case "criticality" `Quick test_criticality_sums_to_one;
    Alcotest.test_case "chip delay vs MC on s27" `Slow test_chip_delay_vs_mc;
  ]
