module Circuit = Spsta_netlist.Circuit
module Circuit_bdd = Spsta_bdd.Circuit_bdd
module Bdd = Spsta_bdd.Bdd
module Gate_kind = Spsta_logic.Gate_kind
module Logic_sim = Spsta_sim.Logic_sim
module Value4 = Spsta_logic.Value4

let s27 () = Spsta_experiments.Benchmarks.s27 ()

let test_sources_are_vars () =
  let c = s27 () in
  let b = Circuit_bdd.build c in
  List.iteri
    (fun i s ->
      Alcotest.(check bool) "source var index" true (Circuit_bdd.source_index b s = Some i);
      Alcotest.(check bool) "source bdd is its variable" true
        (Bdd.equal (Circuit_bdd.bdd_of_net b s) (Bdd.var (Circuit_bdd.manager b) i)))
    (Circuit.sources c);
  let gate = (Circuit.topo_gates c).(0) in
  Alcotest.(check bool) "gate has no source index" true (Circuit_bdd.source_index b gate = None)

(* every net's BDD must agree with logic simulation on every one of the
   2^7 = 128 source assignments of s27 *)
let test_bdd_matches_simulation () =
  let c = s27 () in
  let b = Circuit_bdd.build c in
  let sources = Array.of_list (Circuit.sources c) in
  let n_sources = Array.length sources in
  for bits = 0 to (1 lsl n_sources) - 1 do
    let source_values s =
      let rec index i = if sources.(i) = s then i else index (i + 1) in
      let v = bits land (1 lsl index 0) <> 0 in
      ((if v then Value4.One else Value4.Zero), 0.0)
    in
    let sim = Logic_sim.run c ~source_values in
    Array.iter
      (fun g ->
        let expected = Value4.final sim.Logic_sim.values.(g) in
        let actual =
          Bdd.eval (Circuit_bdd.bdd_of_net b g) (fun v -> bits land (1 lsl v) <> 0)
        in
        if expected <> actual then
          Alcotest.failf "net %s mismatch at assignment %d" (Circuit.net_name c g) bits)
      (Circuit.topo_gates c)
  done

let test_exact_prob_uniform () =
  (* under p=1/2 sources, the exact probability is the satisfying
     fraction; cross-check one net by enumeration *)
  let c = s27 () in
  let b = Circuit_bdd.build c in
  let g17 = Circuit.find_exn c "G17" in
  let f = Circuit_bdd.bdd_of_net b g17 in
  let n_sources = List.length (Circuit.sources c) in
  let count = ref 0 in
  for bits = 0 to (1 lsl n_sources) - 1 do
    if Bdd.eval f (fun v -> bits land (1 lsl v) <> 0) then incr count
  done;
  let expected = float_of_int !count /. float_of_int (1 lsl n_sources) in
  Alcotest.(check (float 1e-12)) "uniform exact prob"
    expected
    (Circuit_bdd.exact_prob_one b ~p_source:(fun _ -> 0.5) g17)

let test_size_limit () =
  let profile =
    { Spsta_netlist.Generator.name = "big"; n_inputs = 16; n_outputs = 4; n_dffs = 0;
      n_gates = 200; target_depth = 10; seed = 7 }
  in
  let c = Spsta_netlist.Generator.generate profile in
  Alcotest.(check bool) "tiny budget exceeded" true
    ( match Circuit_bdd.build ~max_nodes:4 c with
    | (_ : Circuit_bdd.t) -> false
    | exception Circuit_bdd.Size_limit_exceeded -> true )

let suite =
  [
    Alcotest.test_case "sources map to variables" `Quick test_sources_are_vars;
    Alcotest.test_case "BDDs match simulation on s27" `Quick test_bdd_matches_simulation;
    Alcotest.test_case "exact probability by enumeration" `Quick test_exact_prob_uniform;
    Alcotest.test_case "size limit propagates" `Quick test_size_limit;
  ]
