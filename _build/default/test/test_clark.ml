module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark
module Rng = Spsta_util.Rng
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* MAX of two standard normals has mean 1/sqrt(pi) and variance
   1 - 1/pi: a classical closed form to pin the implementation. *)
let test_max_standard_pair () =
  let m = Clark.max_moments Normal.standard Normal.standard in
  close "mean of max of two std normals" (1.0 /. sqrt Float.pi) m.Clark.mean ~tol:1e-6;
  close "variance of max of two std normals" (1.0 -. (1.0 /. Float.pi)) m.Clark.variance ~tol:1e-6

let test_min_duality () =
  let a = Normal.make ~mu:1.0 ~sigma:2.0 and b = Normal.make ~mu:3.0 ~sigma:0.5 in
  let mx = Clark.max_moments a b and mn = Clark.min_moments a b in
  (* E[max] + E[min] = E[a] + E[b] exactly *)
  close "max+min mean identity" (Normal.mean a +. Normal.mean b) (mx.Clark.mean +. mn.Clark.mean)
    ~tol:1e-9

let test_degenerate_theta () =
  (* identical distributions with full covariance: MAX is the input *)
  let a = Normal.make ~mu:2.0 ~sigma:1.0 in
  let m = Clark.max_moments ~cov:1.0 a a in
  close "theta=0 mean" 2.0 m.Clark.mean;
  close "theta=0 variance" 1.0 m.Clark.variance;
  let b = Normal.make ~mu:5.0 ~sigma:1.0 in
  let m2 = Clark.max_moments ~cov:1.0 a b in
  close "theta=0 dominant mean" 5.0 m2.Clark.mean

let test_dominant_input () =
  (* when one input is far later, MAX is just that input *)
  let late = Normal.make ~mu:100.0 ~sigma:1.0 and early = Normal.make ~mu:0.0 ~sigma:1.0 in
  let m = Clark.max_moments late early in
  close "dominant mean" 100.0 m.Clark.mean ~tol:1e-6;
  close "dominant variance" 1.0 m.Clark.variance ~tol:1e-4;
  let mn = Clark.min_moments late early in
  close "dominated min mean" 0.0 mn.Clark.mean ~tol:1e-6

let test_tightness () =
  close "symmetric tightness" 0.5 (Clark.tightness Normal.standard Normal.standard) ~tol:1e-6;
  Alcotest.(check bool) "later input dominates" true
    (Clark.tightness (Normal.make ~mu:5.0 ~sigma:1.0) Normal.standard > 0.99)

let test_many_empty () =
  Alcotest.check_raises "empty max list" (Invalid_argument "Clark.max_normal_many: empty list")
    (fun () -> ignore (Clark.max_normal_many []))

let test_many_single () =
  let a = Normal.make ~mu:3.0 ~sigma:2.0 in
  let m = Clark.max_normal_many [ a ] in
  close "singleton max identity" 3.0 (Normal.mean m);
  close "singleton max sigma" 2.0 (Normal.stddev m)

let mc_reference ~seed op a b =
  let rng = Rng.create ~seed in
  let acc = Stats.acc_create () in
  for _ = 1 to 200_000 do
    Stats.acc_add acc (op (Normal.sample rng a) (Normal.sample rng b))
  done;
  acc

let test_max_against_sampling () =
  let a = Normal.make ~mu:1.0 ~sigma:1.5 and b = Normal.make ~mu:2.0 ~sigma:0.5 in
  let m = Clark.max_moments a b in
  let acc = mc_reference ~seed:9 Float.max a b in
  close "MC mean agreement" (Stats.acc_mean acc) m.Clark.mean ~tol:0.02;
  close "MC variance agreement" (Stats.acc_variance acc) m.Clark.variance ~tol:0.02

let test_min_against_sampling () =
  let a = Normal.make ~mu:0.0 ~sigma:2.0 and b = Normal.make ~mu:0.5 ~sigma:1.0 in
  let m = Clark.min_moments a b in
  let acc = mc_reference ~seed:10 Float.min a b in
  close "MC min mean agreement" (Stats.acc_mean acc) m.Clark.mean ~tol:0.02;
  close "MC min variance agreement" (Stats.acc_variance acc) m.Clark.variance ~tol:0.03

let max_bounds =
  QCheck.Test.make ~name:"E[max] >= both input means" ~count:300
    QCheck.(quad (float_range (-5.) 5.) (float_range 0.01 3.) (float_range (-5.) 5.) (float_range 0.01 3.))
    (fun (m1, s1, m2, s2) ->
      let a = Normal.make ~mu:m1 ~sigma:s1 and b = Normal.make ~mu:m2 ~sigma:s2 in
      let m = Clark.max_moments a b in
      m.Clark.mean >= m1 -. 1e-9 && m.Clark.mean >= m2 -. 1e-9)

let max_commutes =
  QCheck.Test.make ~name:"Clark max commutes" ~count:300
    QCheck.(quad (float_range (-5.) 5.) (float_range 0.01 3.) (float_range (-5.) 5.) (float_range 0.01 3.))
    (fun (m1, s1, m2, s2) ->
      let a = Normal.make ~mu:m1 ~sigma:s1 and b = Normal.make ~mu:m2 ~sigma:s2 in
      let x = Clark.max_moments a b and y = Clark.max_moments b a in
      Float.abs (x.Clark.mean -. y.Clark.mean) < 1e-9
      && Float.abs (x.Clark.variance -. y.Clark.variance) < 1e-9)

let variance_nonneg =
  QCheck.Test.make ~name:"Clark variance non-negative" ~count:300
    QCheck.(
      pair
        (quad (float_range (-10.) 10.) (float_range 0. 3.) (float_range (-10.) 10.) (float_range 0. 3.))
        (float_range (-1.) 1.))
    (fun ((m1, s1, m2, s2), rho) ->
      let a = Normal.make ~mu:m1 ~sigma:s1 and b = Normal.make ~mu:m2 ~sigma:s2 in
      let cov = rho *. s1 *. s2 in
      let m = Clark.max_moments ~cov a b in
      m.Clark.variance >= 0.0)

let suite =
  [
    Alcotest.test_case "max of two standard normals" `Quick test_max_standard_pair;
    Alcotest.test_case "min/max mean identity" `Quick test_min_duality;
    Alcotest.test_case "degenerate theta" `Quick test_degenerate_theta;
    Alcotest.test_case "dominant input" `Quick test_dominant_input;
    Alcotest.test_case "tightness" `Quick test_tightness;
    Alcotest.test_case "empty fold" `Quick test_many_empty;
    Alcotest.test_case "singleton fold" `Quick test_many_single;
    Alcotest.test_case "max vs sampling" `Quick test_max_against_sampling;
    Alcotest.test_case "min vs sampling" `Quick test_min_against_sampling;
    QCheck_alcotest.to_alcotest max_bounds;
    QCheck_alcotest.to_alcotest max_commutes;
    QCheck_alcotest.to_alcotest variance_nonneg;
  ]
