module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Event_sim = Spsta_sim.Event_sim
module Logic_sim = Spsta_sim.Logic_sim
module Input_spec = Spsta_sim.Input_spec

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let gate2 kind =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" kind [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let run_gate ?inertial kind (va, ta) (vb, tb) =
  let c = gate2 kind in
  let source_values s = if Circuit.net_name c s = "a" then (va, ta) else (vb, tb) in
  let r = Event_sim.run ?inertial c ~source_values in
  Event_sim.waveform r (Circuit.find_exn c "y")

let test_clean_transition () =
  let w = run_gate Gate_kind.And (Value4.Rising, 1.0) (Value4.One, 0.0) in
  Alcotest.(check bool) "starts low" false w.Event_sim.initial;
  Alcotest.(check bool) "ends high" true (Event_sim.final w);
  Alcotest.(check int) "one change" 1 (Event_sim.transition_count w);
  close "arrival" 2.0 (Event_sim.settle_time w)

let test_glitch_pulse () =
  (* AND(r@1, f@3): the cycle simulator says steady 0, but the transient
     pulses 0 -> 1 (at 2) -> 0 (at 4): a real glitch *)
  let w = run_gate Gate_kind.And (Value4.Rising, 1.0) (Value4.Falling, 3.0) in
  Alcotest.(check bool) "net value returns to 0" false (Event_sim.final w);
  Alcotest.(check int) "two transitions (a pulse)" 2 (Event_sim.transition_count w);
  match w.Event_sim.changes with
  | [ (t1, true); (t2, false) ] ->
    close "pulse up" 2.0 t1;
    close "pulse down" 4.0 t2
  | _ -> Alcotest.fail "expected a single pulse"

let test_simultaneous_no_glitch () =
  (* AND(r@1, f@1): both events land together; gate evaluates to the
     settled 0 and never pulses *)
  let w = run_gate Gate_kind.And (Value4.Rising, 1.0) (Value4.Falling, 1.0) in
  Alcotest.(check int) "no transitions" 0 (Event_sim.transition_count w)

let test_inertial_filtering () =
  (* input spacing 0.5 with unit gate delay: the down-change is scheduled
     while the up-change is still pending, so a window >= 0.5 swallows
     the pulse *)
  let w = run_gate ~inertial:0.75 Gate_kind.And (Value4.Rising, 1.0) (Value4.Falling, 1.5) in
  Alcotest.(check int) "pulse filtered" 0 (Event_sim.transition_count w);
  (* a narrower window lets it through *)
  let w2 = run_gate ~inertial:0.25 Gate_kind.And (Value4.Rising, 1.0) (Value4.Falling, 1.5) in
  Alcotest.(check int) "pulse survives" 2 (Event_sim.transition_count w2)

let test_glitch_count () =
  let c = gate2 Gate_kind.And in
  let source_values s =
    if Circuit.net_name c s = "a" then (Value4.Rising, 1.0) else (Value4.Falling, 3.0)
  in
  let r = Event_sim.run c ~source_values in
  let y = Circuit.find_exn c "y" in
  Alcotest.(check int) "glitch count" 2 (Event_sim.glitch_count r y);
  Alcotest.(check int) "total includes sources" 4 (Event_sim.total_transitions r)

(* agreement with the cycle simulator: same final values everywhere, and
   same settle time on nets the cycle simulator sees transition *)
let agreement_with_cycle_sim =
  QCheck.Test.make ~name:"event sim agrees with cycle sim" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c =
        Spsta_netlist.Generator.generate
          { Spsta_netlist.Generator.name = "ev"; n_inputs = 4; n_outputs = 3; n_dffs = 2;
            n_gates = 30; target_depth = 4; seed }
      in
      let rng = Spsta_util.Rng.create ~seed:(seed + 13) in
      let assignments = Hashtbl.create 16 in
      List.iter
        (fun s -> Hashtbl.replace assignments s (Input_spec.sample rng Input_spec.case_i))
        (Circuit.sources c);
      let source_values s = Hashtbl.find assignments s in
      let cycle = Logic_sim.run c ~source_values in
      let event = Event_sim.run c ~source_values in
      (* cone-cleanliness: no glitch anywhere in the transitive fan-in,
         and no XOR-family gate with several switching inputs (whose
         cancellations can settle the transient earlier than the cycle
         simulator's conservative MAX).  On clean cones the transient
         evaluation context matches the cycle simulator's and the settle
         times must agree exactly; other nets are only level-checked. *)
      let cone_clean = Array.make (Circuit.num_nets c) true in
      Array.iter
        (fun g ->
          match Circuit.driver c g with
          | Circuit.Gate { kind; inputs } ->
            let switching =
              Array.fold_left
                (fun acc i -> if Value4.is_transition cycle.Logic_sim.values.(i) then acc + 1 else acc)
                0 inputs
            in
            let xor_multi =
              match kind with
              | Spsta_logic.Gate_kind.Xor | Spsta_logic.Gate_kind.Xnor -> switching > 1
              | Spsta_logic.Gate_kind.And | Spsta_logic.Gate_kind.Nand
              | Spsta_logic.Gate_kind.Or | Spsta_logic.Gate_kind.Nor
              | Spsta_logic.Gate_kind.Not | Spsta_logic.Gate_kind.Buf ->
                false
            in
            cone_clean.(g) <-
              Event_sim.glitch_count event g = 0
              && (not xor_multi)
              && Array.for_all (fun i -> cone_clean.(i)) inputs
          | Circuit.Input | Circuit.Dff_output _ -> ())
        (Circuit.topo_gates c);
      Array.for_all
        (fun g ->
          let w = Event_sim.waveform event g in
          let cycle_value = cycle.Logic_sim.values.(g) in
          Value4.final cycle_value = Event_sim.final w
          && Value4.initial cycle_value = w.Event_sim.initial
          &&
          if Value4.is_transition cycle_value && cone_clean.(g) then
            Float.abs (Event_sim.settle_time w -. cycle.Logic_sim.times.(g)) < 1e-9
          else true)
        (Circuit.topo_gates c))

(* eq. 6 transition densities estimate the event simulator's expected
   transition counts (glitches included) on a tree circuit, where the
   independence assumptions hold *)
let test_transition_density_matches_event_sim () =
  let b = Circuit.Builder.create () in
  List.iter (Circuit.Builder.add_input b) [ "a"; "b"; "c" ];
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Or [ "n1"; "c" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let spec _ = Input_spec.case_i in
  let density = Spsta_power.Transition_density.of_input_specs c ~spec in
  let rng = Spsta_util.Rng.create ~seed:17 in
  let runs = 30_000 in
  let y = Circuit.find_exn c "y" in
  let observed = ref 0 in
  for _ = 1 to runs do
    let r = Event_sim.run c ~source_values:(fun s -> Input_spec.sample rng (spec s)) in
    observed := !observed + Event_sim.transition_count (Event_sim.waveform r y)
  done;
  let mean_observed = float_of_int !observed /. float_of_int runs in
  close "eq. 6 predicts event-sim activity"
    (Spsta_power.Transition_density.density density y)
    mean_observed ~tol:0.02

let suite =
  [
    Alcotest.test_case "clean transition" `Quick test_clean_transition;
    Alcotest.test_case "glitch pulse" `Quick test_glitch_pulse;
    Alcotest.test_case "simultaneous inputs cancel" `Quick test_simultaneous_no_glitch;
    Alcotest.test_case "inertial filtering" `Quick test_inertial_filtering;
    Alcotest.test_case "glitch counting" `Quick test_glitch_count;
    QCheck_alcotest.to_alcotest agreement_with_cycle_sim;
    Alcotest.test_case "eq. 6 vs event sim" `Slow test_transition_density_matches_event_sim;
  ]
