module Circuit = Spsta_netlist.Circuit
module Experiments = Spsta_experiments

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec at i = i + m <= n && (String.sub haystack i m = needle || at (i + 1)) in
  at 0

let test_benchmarks_suite () =
  Alcotest.(check int) "nine evaluated circuits" 9
    (List.length Experiments.Benchmarks.evaluated_names);
  Alcotest.(check int) "eleven total" 11 (List.length (Experiments.Benchmarks.all ()));
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Experiments.Benchmarks.load "s9999"))

let test_c17 () =
  let c = Experiments.Benchmarks.c17 () in
  Alcotest.(check int) "inputs" 5 (List.length (Circuit.primary_inputs c));
  Alcotest.(check int) "outputs" 2 (List.length (Circuit.primary_outputs c));
  Alcotest.(check int) "gates" 6 (Circuit.gate_count c);
  Alcotest.(check int) "all NAND" 6 (Circuit.count_gates_of_kind c Spsta_logic.Gate_kind.Nand);
  Alcotest.(check int) "depth" 3 (Circuit.depth c);
  (* with all inputs one: G10 = NAND(1,1) = 0, G11 = 0, G16 = NAND(1,0) = 1,
     G22 = NAND(0,1) = 1 *)
  let r =
    Spsta_sim.Logic_sim.run c ~source_values:(fun _ -> (Spsta_logic.Value4.One, 0.0))
  in
  let g22 = Circuit.find_exn c "G22" in
  Alcotest.(check bool) "G22 truth" true
    (Spsta_logic.Value4.equal r.Spsta_sim.Logic_sim.values.(g22) Spsta_logic.Value4.One)

let test_benchmark_determinism () =
  let a = Experiments.Benchmarks.load "s344" and b = Experiments.Benchmarks.load "s344" in
  Alcotest.(check string) "stable synthetic netlists"
    (Spsta_netlist.Bench_io.to_string a)
    (Spsta_netlist.Bench_io.to_string b)

let test_workloads () =
  Alcotest.(check int) "two cases" 2 (List.length Experiments.Workloads.all_cases);
  Alcotest.(check string) "case names" "I"
    (Experiments.Workloads.case_name Experiments.Workloads.Case_i);
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_ii 0 in
  Alcotest.(check (float 1e-12)) "case II sp" 0.2 (Spsta_sim.Input_spec.signal_probability spec)

let test_table1_contents () =
  let text = Experiments.Table1.render () in
  Alcotest.(check bool) "AND r/r annotated MAX" true (contains text "r (MAX)");
  Alcotest.(check bool) "AND f/f annotated MIN" true (contains text "f (MIN)");
  Alcotest.(check bool) "both tables rendered" true
    (contains text "AND" && contains text "OR")

let test_fig2_numbers () =
  let r = Experiments.Fig2.run () in
  (* SUM of N(3,1)+N(2,0.5) *)
  Alcotest.(check (float 1e-9)) "sum mean" 5.0 (Spsta_dist.Normal.mean r.Experiments.Fig2.sum_exact);
  (* Clark matches the exact lattice MAX *)
  Alcotest.(check bool) "clark mean close to exact" true
    (Float.abs
       (Spsta_dist.Normal.mean r.Experiments.Fig2.max_clark -. r.Experiments.Fig2.max_exact_mean)
    < 0.01);
  Alcotest.(check bool) "MAX is right-skewed" true (r.Experiments.Fig2.max_skewness > 0.1)

let test_fig3_numbers () =
  let r = Experiments.Fig3.run () in
  Alcotest.(check (float 1e-12)) "P(y)" 0.25 r.Experiments.Fig3.p_output;
  Alcotest.(check (float 1e-12)) "rho(y)" 0.5 r.Experiments.Fig3.rho_output;
  let d1, d2 = r.Experiments.Fig3.boolean_diff_probs in
  Alcotest.(check (float 1e-12)) "P(dy/dx1)" 0.5 d1;
  Alcotest.(check (float 1e-12)) "P(dy/dx2)" 0.5 d2

let test_fig4_shape () =
  let r = Experiments.Fig4.run () in
  (* the paper's point: MAX skews, WEIGHTED SUM stays symmetric *)
  Alcotest.(check bool) "MAX skewed" true
    (Float.abs r.Experiments.Fig4.max_result.Experiments.Fig4.skewness > 0.3);
  Alcotest.(check bool) "WEIGHTED SUM symmetric" true
    (Float.abs r.Experiments.Fig4.weighted_sum_result.Experiments.Fig4.skewness < 0.1);
  Alcotest.(check bool) "rise probability positive" true (r.Experiments.Fig4.rise_probability > 0.0)

let test_table2_row_shape () =
  let c = Experiments.Benchmarks.s27 () in
  let rows = Experiments.Table2.run_circuit ~runs:800 ~seed:3 c ~case:Experiments.Workloads.Case_i in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check string) "circuit name" "s27" r.Experiments.Table2.circuit_name;
      Alcotest.(check bool) "probabilities in range" true
        (r.Experiments.Table2.mc.Experiments.Table2.prob >= 0.0
        && r.Experiments.Table2.mc.Experiments.Table2.prob <= 1.0);
      Alcotest.(check bool) "SSTA has no probability" true
        (Float.is_nan r.Experiments.Table2.ssta.Experiments.Table2.prob))
    rows;
  let text = Experiments.Table2.render ~case:Experiments.Workloads.Case_i rows in
  Alcotest.(check bool) "render mentions circuit" true (contains text "s27")

let test_table2_determinism () =
  let c = Experiments.Benchmarks.s27 () in
  let a = Experiments.Table2.run_circuit ~runs:500 ~seed:3 c ~case:Experiments.Workloads.Case_i in
  let b = Experiments.Table2.run_circuit ~runs:500 ~seed:3 c ~case:Experiments.Workloads.Case_i in
  List.iter2
    (fun x y ->
      Alcotest.(check (float 1e-12)) "same MC mu" x.Experiments.Table2.mc.Experiments.Table2.mu
        y.Experiments.Table2.mc.Experiments.Table2.mu)
    a b

let test_table3_row () =
  let c = Experiments.Benchmarks.s27 () in
  let r = Experiments.Table3.run_circuit ~runs:300 ~seed:3 c ~case:Experiments.Workloads.Case_i in
  Alcotest.(check bool) "non-negative runtimes" true
    (r.Experiments.Table3.spsta_seconds >= 0.0
    && r.Experiments.Table3.ssta_seconds >= 0.0
    && r.Experiments.Table3.mc_seconds >= 0.0);
  Alcotest.(check int) "runs recorded" 300 r.Experiments.Table3.mc_runs

let test_fig1_result () =
  let r =
    Experiments.Fig1.run ~runs:500 ~seed:3 ~circuit:(Experiments.Benchmarks.s27 ())
      ~case:Experiments.Workloads.Case_i ()
  in
  Alcotest.(check bool) "collected chip delays" true (Array.length r.Experiments.Fig1.mc_delays > 0);
  Alcotest.(check bool) "bounds ordered" true
    (r.Experiments.Fig1.sta_earliest <= r.Experiments.Fig1.sta_latest);
  Alcotest.(check bool) "ssta best <= worst" true
    (Spsta_dist.Normal.mean r.Experiments.Fig1.ssta_best
    <= Spsta_dist.Normal.mean r.Experiments.Fig1.ssta_worst);
  (* every observed chip delay respects the STA latest bound *)
  Array.iter
    (fun d ->
      if d > r.Experiments.Fig1.sta_latest +. 1e-9 then
        Alcotest.failf "chip delay %.3f exceeds STA bound %.3f" d r.Experiments.Fig1.sta_latest)
    r.Experiments.Fig1.mc_delays

let test_summary_of_rows () =
  let stats mu sigma prob = { Experiments.Table2.mu; sigma; prob } in
  let row mc_prob =
    {
      Experiments.Table2.circuit_name = "x";
      direction = `Rise;
      endpoint = "e";
      spsta = stats 11.0 2.0 0.1;
      ssta = stats 12.0 0.5 nan;
      mc = stats 10.0 2.0 mc_prob;
    }
  in
  let e = Experiments.Summary.of_rows [ row 0.5; row 0.0001 ] in
  Alcotest.(check int) "low-probability row skipped" 1 e.Experiments.Summary.rows_used;
  Alcotest.(check (float 1e-9)) "spsta mu error" 0.1 e.Experiments.Summary.spsta_mu;
  Alcotest.(check (float 1e-9)) "ssta mu error" 0.2 e.Experiments.Summary.ssta_mu;
  Alcotest.(check (float 1e-9)) "ssta sigma error" 0.75 e.Experiments.Summary.ssta_sigma

let test_runner_ids () =
  Alcotest.(check int) "eight experiments" 8 (List.length Experiments.Runner.experiment_ids);
  Alcotest.(check bool) "unknown id" true
    ( match Experiments.Runner.run "nope" with
    | (_ : string) -> false
    | exception Not_found -> true );
  (* the cheap experiments run end-to-end *)
  List.iter
    (fun id ->
      let out = Experiments.Runner.run ~runs:50 ~seed:1 id in
      Alcotest.(check bool) (id ^ " produces output") true (String.length out > 0))
    [ "table1"; "fig2"; "fig3"; "fig4" ]

let suite =
  [
    Alcotest.test_case "benchmark suite" `Quick test_benchmarks_suite;
    Alcotest.test_case "c17 netlist" `Quick test_c17;
    Alcotest.test_case "benchmark determinism" `Quick test_benchmark_determinism;
    Alcotest.test_case "workloads" `Quick test_workloads;
    Alcotest.test_case "table1 contents" `Quick test_table1_contents;
    Alcotest.test_case "fig2 numbers" `Quick test_fig2_numbers;
    Alcotest.test_case "fig3 numbers" `Quick test_fig3_numbers;
    Alcotest.test_case "fig4 shape" `Quick test_fig4_shape;
    Alcotest.test_case "table2 rows" `Quick test_table2_row_shape;
    Alcotest.test_case "table2 determinism" `Quick test_table2_determinism;
    Alcotest.test_case "table3 row" `Quick test_table3_row;
    Alcotest.test_case "fig1 result" `Quick test_fig1_result;
    Alcotest.test_case "summary arithmetic" `Quick test_summary_of_rows;
    Alcotest.test_case "runner dispatch" `Quick test_runner_ids;
  ]

let test_runner_heavy_smoke () =
  (* the Monte-Carlo-backed experiments run end-to-end at a tiny budget *)
  List.iter
    (fun id ->
      let out = Experiments.Runner.run ~runs:100 ~seed:1 id in
      Alcotest.(check bool) (id ^ " produces output") true (String.length out > 100))
    [ "table2"; "table3"; "fig1" ]

let suite = suite @ [ Alcotest.test_case "runner heavy smoke" `Slow test_runner_heavy_smoke ]
