module Circuit = Spsta_netlist.Circuit
module Export = Spsta_experiments.Export
module Workloads = Spsta_experiments.Workloads

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let test_csv_of_series () =
  let csv = Export.csv_of_series ~header:"x,y" [ (1.0, 2.0); (3.0, 4.0) ] in
  match lines csv with
  | [ header; r1; r2 ] ->
    Alcotest.(check string) "header" "x,y" header;
    Alcotest.(check bool) "row 1" true (String.length r1 > 0 && r1.[0] = '1');
    Alcotest.(check bool) "row 2" true (String.length r2 > 0 && r2.[0] = '3')
  | _ -> Alcotest.fail "expected three lines"

let test_top_series_masses () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec = Workloads.spec_fn Workloads.Case_i in
  let e = Circuit.find_exn c "G17" in
  let csv = Export.top_series ~dt:0.1 c ~spec ~net:e in
  let rows = List.tl (lines csv) in
  Alcotest.(check bool) "has rows" true (List.length rows > 10);
  (* integrating the densities recovers the transition probabilities *)
  let sum_rise = ref 0.0 and sum_fall = ref 0.0 in
  List.iter
    (fun row ->
      match String.split_on_char ',' row with
      | [ _; r; f ] ->
        sum_rise := !sum_rise +. (0.1 *. float_of_string r);
        sum_fall := !sum_fall +. (0.1 *. float_of_string f)
      | _ -> Alcotest.fail "malformed row")
    rows;
  let spsta = Spsta_core.Analyzer.Moments.analyze c ~spec in
  let _, _, p_rise =
    Spsta_core.Analyzer.Moments.transition_stats (Spsta_core.Analyzer.Moments.signal spsta e) `Rise
  in
  Alcotest.(check bool) "rise mass recovered" true (Float.abs (!sum_rise -. p_rise) < 0.01);
  Alcotest.(check bool) "fall mass positive" true (!sum_fall > 0.0)

let test_mc_histogram () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec = Workloads.spec_fn Workloads.Case_i in
  let e = Circuit.find_exn c "G13" in
  let csv = Export.mc_histogram ~runs:2000 ~seed:3 c ~spec ~net:e in
  Alcotest.(check bool) "has data rows" true (List.length (lines csv) > 5)

let test_chip_delay_csv () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec = Workloads.spec_fn Workloads.Case_i in
  let csv = Export.chip_delay_distribution c ~spec in
  let rows = List.tl (lines csv) in
  let total =
    List.fold_left
      (fun acc row ->
        match String.split_on_char ',' row with
        | [ _; m ] -> acc +. float_of_string m
        | _ -> acc)
      0.0 rows
  in
  let r = Spsta_core.Chip_delay.compute c ~spec in
  Alcotest.(check bool) "mass matches 1 - idle" true
    (Float.abs (total -. (1.0 -. Spsta_core.Chip_delay.p_idle r)) < 1e-6)

let test_table2_csv () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let rows = Spsta_experiments.Table2.run_circuit ~runs:300 ~seed:3 c ~case:Workloads.Case_i in
  let csv = Export.table2_csv rows in
  Alcotest.(check int) "header + 2 rows" 3 (List.length (lines csv))

let test_write_file () =
  let path = Filename.temp_file "spsta_export" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_file ~path "a,b\n1,2\n";
      let ic = open_in path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "roundtrip" "a,b\n1,2\n" contents)

let suite =
  [
    Alcotest.test_case "csv_of_series" `Quick test_csv_of_series;
    Alcotest.test_case "top series integrates to P" `Quick test_top_series_masses;
    Alcotest.test_case "mc histogram" `Quick test_mc_histogram;
    Alcotest.test_case "chip delay csv" `Quick test_chip_delay_csv;
    Alcotest.test_case "table2 csv" `Quick test_table2_csv;
    Alcotest.test_case "write_file" `Quick test_write_file;
  ]
