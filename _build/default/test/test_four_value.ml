module Four_value = Spsta_core.Four_value
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let case_i = Four_value.make ~p_zero:0.25 ~p_one:0.25 ~p_rise:0.25 ~p_fall:0.25
let case_ii = Four_value.make ~p_zero:0.75 ~p_one:0.15 ~p_rise:0.02 ~p_fall:0.08

let test_make_validation () =
  Alcotest.check_raises "sum" (Invalid_argument "Four_value.make: probabilities must sum to 1")
    (fun () -> ignore (Four_value.make ~p_zero:0.5 ~p_one:0.5 ~p_rise:0.5 ~p_fall:0.0))

let test_derived_stats () =
  close "case I SP" 0.5 (Four_value.signal_probability case_i);
  close "case II SP" 0.2 (Four_value.signal_probability case_ii);
  close "case I rate" 0.5 (Four_value.toggling_rate case_i);
  close "case II initial one" 0.23 (Four_value.initial_one case_ii);
  close "case II final one" 0.17 (Four_value.final_one case_ii)

let test_prob_accessor () =
  close "rise" 0.02 (Four_value.prob case_ii Value4.Rising);
  close "zero" 0.75 (Four_value.prob case_ii Value4.Zero)

(* the paper's eq. 10 closed form must equal the exact enumeration *)
let test_and_closed_form_matches_enumeration () =
  List.iter
    (fun inputs ->
      let closed = Four_value.and_gate_closed_form inputs in
      let enumerated = Four_value.gate_output Gate_kind.And inputs in
      close "p_zero" closed.Four_value.p_zero enumerated.Four_value.p_zero ~tol:1e-12;
      close "p_one" closed.Four_value.p_one enumerated.Four_value.p_one ~tol:1e-12;
      close "p_rise" closed.Four_value.p_rise enumerated.Four_value.p_rise ~tol:1e-12;
      close "p_fall" closed.Four_value.p_fall enumerated.Four_value.p_fall ~tol:1e-12)
    [ [ case_i; case_i ]; [ case_ii; case_ii ]; [ case_i; case_ii ]; [ case_i; case_i; case_ii ] ]

let test_and_case_i_values () =
  (* AND of two case-I inputs: P1 = 1/16, Pr = Pf = 3/16, P0 = 9/16 *)
  let y = Four_value.gate_output Gate_kind.And [ case_i; case_i ] in
  close "P1" (1.0 /. 16.0) y.Four_value.p_one;
  close "Pr" (3.0 /. 16.0) y.Four_value.p_rise;
  close "Pf" (3.0 /. 16.0) y.Four_value.p_fall;
  close "P0" (9.0 /. 16.0) y.Four_value.p_zero

let test_inverting_gates_swap () =
  let y = Four_value.gate_output Gate_kind.And [ case_i; case_ii ] in
  let ny = Four_value.gate_output Gate_kind.Nand [ case_i; case_ii ] in
  close "NAND zero = AND one" y.Four_value.p_one ny.Four_value.p_zero;
  close "NAND rise = AND fall" y.Four_value.p_fall ny.Four_value.p_rise

let test_not_buf () =
  let n = Four_value.gate_output Gate_kind.Not [ case_ii ] in
  close "NOT zero" 0.15 n.Four_value.p_zero;
  close "NOT rise" 0.08 n.Four_value.p_rise;
  let b = Four_value.gate_output Gate_kind.Buf [ case_ii ] in
  close "BUF passthrough" 0.75 b.Four_value.p_zero

let test_xor_glitch_filtering () =
  (* both inputs always rising: XOR output is steady 0 (the r/r glitch) *)
  let always_rising = Four_value.make ~p_zero:0.0 ~p_one:0.0 ~p_rise:1.0 ~p_fall:0.0 in
  let y = Four_value.gate_output Gate_kind.Xor [ always_rising; always_rising ] in
  close "XOR r/r steady zero" 1.0 y.Four_value.p_zero;
  (* AND of opposite transitions: also steady zero *)
  let always_falling = Four_value.make ~p_zero:0.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:1.0 in
  let g = Four_value.gate_output Gate_kind.And [ always_rising; always_falling ] in
  close "AND r/f steady zero" 1.0 g.Four_value.p_zero

let probabilities_sum_to_one =
  let gen_fv =
    QCheck.Gen.(
      map
        (fun (a, b, c) ->
          let d = 1.0 +. a +. b +. c in
          Four_value.make ~p_zero:(a /. d) ~p_one:(b /. d) ~p_rise:(c /. d) ~p_fall:(1.0 /. d))
        (triple (float_range 0.0 3.0) (float_range 0.0 3.0) (float_range 0.0 3.0)))
  in
  let gen =
    QCheck.Gen.(
      pair
        (oneofl [ Gate_kind.And; Gate_kind.Nand; Gate_kind.Or; Gate_kind.Nor; Gate_kind.Xor; Gate_kind.Xnor ])
        (list_size (int_range 2 4) gen_fv))
  in
  QCheck.Test.make ~name:"gate_output probabilities sum to 1" ~count:300 (QCheck.make gen)
    (fun (kind, inputs) ->
      let y = Four_value.gate_output kind inputs in
      Float.abs
        (y.Four_value.p_zero +. y.Four_value.p_one +. y.Four_value.p_rise +. y.Four_value.p_fall
        -. 1.0)
      < 1e-9)

(* the marginal start/end one-probabilities must propagate through the
   ordinary boolean signal-probability rule *)
let marginals_consistent =
  let gen_fv =
    QCheck.Gen.(
      map
        (fun (a, b, c) ->
          let d = 1.0 +. a +. b +. c in
          Four_value.make ~p_zero:(a /. d) ~p_one:(b /. d) ~p_rise:(c /. d) ~p_fall:(1.0 /. d))
        (triple (float_range 0.0 3.0) (float_range 0.0 3.0) (float_range 0.0 3.0)))
  in
  QCheck.Test.make ~name:"AND marginals: final_one(y) = prod final_one(x)" ~count:300
    (QCheck.make (QCheck.Gen.pair gen_fv gen_fv))
    (fun (x1, x2) ->
      let y = Four_value.gate_output Gate_kind.And [ x1; x2 ] in
      Float.abs (Four_value.final_one y -. (Four_value.final_one x1 *. Four_value.final_one x2))
      < 1e-9
      && Float.abs
           (Four_value.initial_one y -. (Four_value.initial_one x1 *. Four_value.initial_one x2))
         < 1e-9)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "derived statistics" `Quick test_derived_stats;
    Alcotest.test_case "prob accessor" `Quick test_prob_accessor;
    Alcotest.test_case "eq. 10 closed form = enumeration" `Quick
      test_and_closed_form_matches_enumeration;
    Alcotest.test_case "AND case I values" `Quick test_and_case_i_values;
    Alcotest.test_case "inverting gates swap" `Quick test_inverting_gates_swap;
    Alcotest.test_case "NOT/BUF" `Quick test_not_buf;
    Alcotest.test_case "glitch filtering" `Quick test_xor_glitch_filtering;
    QCheck_alcotest.to_alcotest probabilities_sum_to_one;
    QCheck_alcotest.to_alcotest marginals_consistent;
  ]
