module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4

let test_string_roundtrip () =
  List.iter
    (fun k ->
      match Gate_kind.of_string (Gate_kind.to_string k) with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (Gate_kind.equal k k')
      | None -> Alcotest.failf "no parse for %s" (Gate_kind.to_string k))
    Gate_kind.all

let test_of_string_aliases () =
  Alcotest.(check bool) "BUFF alias" true (Gate_kind.of_string "BUFF" = Some Gate_kind.Buf);
  Alcotest.(check bool) "INV alias" true (Gate_kind.of_string "inv" = Some Gate_kind.Not);
  Alcotest.(check bool) "case-insensitive" true (Gate_kind.of_string "nand" = Some Gate_kind.Nand);
  Alcotest.(check bool) "unknown" true (Gate_kind.of_string "MUX" = None)

let test_eval_bool_and_family () =
  Alcotest.(check bool) "and tt" true (Gate_kind.eval_bool Gate_kind.And [ true; true ]);
  Alcotest.(check bool) "and tf" false (Gate_kind.eval_bool Gate_kind.And [ true; false ]);
  Alcotest.(check bool) "nand tf" true (Gate_kind.eval_bool Gate_kind.Nand [ true; false ]);
  Alcotest.(check bool) "or ff" false (Gate_kind.eval_bool Gate_kind.Or [ false; false ]);
  Alcotest.(check bool) "nor ff" true (Gate_kind.eval_bool Gate_kind.Nor [ false; false ]);
  Alcotest.(check bool) "xor tft" false (Gate_kind.eval_bool Gate_kind.Xor [ true; false; true ]);
  Alcotest.(check bool) "xnor tft" true (Gate_kind.eval_bool Gate_kind.Xnor [ true; false; true ]);
  Alcotest.(check bool) "not t" false (Gate_kind.eval_bool Gate_kind.Not [ true ]);
  Alcotest.(check bool) "buf t" true (Gate_kind.eval_bool Gate_kind.Buf [ true ])

let test_arity_checks () =
  Alcotest.(check bool) "raises on 2-input NOT" true
    ( try
        ignore (Gate_kind.eval_bool Gate_kind.Not [ true; false ]);
        false
      with Invalid_argument _ -> true );
  Alcotest.(check bool) "raises on 1-input AND" true
    ( try
        ignore (Gate_kind.eval_bool Gate_kind.And [ true ]);
        false
      with Invalid_argument _ -> true )

let test_controlling_values () =
  Alcotest.(check bool) "AND controls with 0" true
    (Gate_kind.controlling_value Gate_kind.And = Some false);
  Alcotest.(check bool) "NOR controls with 1" true
    (Gate_kind.controlling_value Gate_kind.Nor = Some true);
  Alcotest.(check bool) "XOR has no controlling value" true
    (Gate_kind.controlling_value Gate_kind.Xor = None);
  Alcotest.(check bool) "AND controlled output 0" true
    (Gate_kind.controlled_value Gate_kind.And = Some false);
  Alcotest.(check bool) "NAND controlled output 1" true
    (Gate_kind.controlled_value Gate_kind.Nand = Some true);
  Alcotest.(check bool) "NOR controlled output 0" true
    (Gate_kind.controlled_value Gate_kind.Nor = Some false)

let test_inverting () =
  Alcotest.(check (list bool)) "inversion flags"
    [ false; true; false; true; false; true; true; false ]
    (List.map Gate_kind.inverting Gate_kind.all)

let test_eval4_matches_value4 () =
  (* the generic eval4 must agree with the dedicated pairwise tables *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let check name kind reference =
            Alcotest.(check bool) name true
              (Value4.equal (Gate_kind.eval4 kind [ a; b ]) reference)
          in
          check "and" Gate_kind.And (Value4.land2 a b);
          check "or" Gate_kind.Or (Value4.lor2 a b);
          check "xor" Gate_kind.Xor (Value4.lxor2 a b);
          check "nand" Gate_kind.Nand (Value4.lnot (Value4.land2 a b)))
        Value4.all)
    Value4.all

let test_eval4_wide_gate () =
  let out = Gate_kind.eval4 Gate_kind.And [ Value4.One; Value4.Rising; Value4.One; Value4.Rising ] in
  Alcotest.(check bool) "4-input AND rising" true (Value4.equal out Value4.Rising);
  let glitch = Gate_kind.eval4 Gate_kind.And [ Value4.Rising; Value4.Falling; Value4.One ] in
  Alcotest.(check bool) "glitch suppressed" true (Value4.equal glitch Value4.Zero)

let eval4_consistent_with_bool =
  let gen =
    QCheck.Gen.(
      pair (oneofl [ Gate_kind.And; Gate_kind.Nand; Gate_kind.Or; Gate_kind.Nor; Gate_kind.Xor; Gate_kind.Xnor ])
        (list_size (int_range 2 5) (oneofl Value4.all)))
  in
  QCheck.Test.make ~name:"eval4 = bool eval of initial/final levels" ~count:500 (QCheck.make gen)
    (fun (kind, inputs) ->
      let out = Gate_kind.eval4 kind inputs in
      Value4.initial out = Gate_kind.eval_bool kind (List.map Value4.initial inputs)
      && Value4.final out = Gate_kind.eval_bool kind (List.map Value4.final inputs))

let suite =
  [
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "of_string aliases" `Quick test_of_string_aliases;
    Alcotest.test_case "eval_bool" `Quick test_eval_bool_and_family;
    Alcotest.test_case "arity validation" `Quick test_arity_checks;
    Alcotest.test_case "controlling/controlled values" `Quick test_controlling_values;
    Alcotest.test_case "inverting flags" `Quick test_inverting;
    Alcotest.test_case "eval4 matches Value4 tables" `Quick test_eval4_matches_value4;
    Alcotest.test_case "eval4 wide gates and glitches" `Quick test_eval4_wide_gate;
    QCheck_alcotest.to_alcotest eval4_consistent_with_bool;
  ]
