(* Incremental re-analysis: Analyzer.update must match a full analyze. *)

module Circuit = Spsta_netlist.Circuit
module Input_spec = Spsta_sim.Input_spec
module Four_value = Spsta_core.Four_value
module A = Spsta_core.Analyzer.Moments

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let signals_equal c name full incremental =
  Array.iter
    (fun g ->
      let s_full = A.signal full g and s_inc = A.signal incremental g in
      let label = name ^ "/" ^ Circuit.net_name c g in
      close (label ^ " p_rise") s_full.A.probs.Four_value.p_rise
        s_inc.A.probs.Four_value.p_rise ~tol:1e-12;
      let fm, fs, _ = A.transition_stats s_full `Rise in
      let im, is_, _ = A.transition_stats s_inc `Rise in
      close (label ^ " rise mean") fm im ~tol:1e-12;
      close (label ^ " rise sigma") fs is_ ~tol:1e-12)
    (Circuit.topo_gates c)

(* change one primary input's statistics and update only its cone *)
let test_update_matches_full_source_change () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let base_spec _ = Input_spec.case_i in
  let base = A.analyze c ~spec:base_spec in
  let changed_source = List.hd (Circuit.primary_inputs c) in
  let new_spec s = if s = changed_source then Input_spec.case_ii else Input_spec.case_i in
  let full = A.analyze c ~spec:new_spec in
  let incremental = A.update base ~changed:[ changed_source ] ~spec:new_spec in
  signals_equal c "source change" full incremental

let test_update_matches_full_multi_change () =
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let base_spec _ = Input_spec.case_ii in
  let base = A.analyze c ~spec:base_spec in
  let sources = Circuit.sources c in
  let changed = List.filteri (fun i _ -> i mod 3 = 0) sources in
  let new_spec s = if List.mem s changed then Input_spec.case_i else Input_spec.case_ii in
  let full = A.analyze c ~spec:new_spec in
  let incremental = A.update base ~changed ~spec:new_spec in
  signals_equal c "multi change" full incremental

let test_update_is_pure () =
  (* updating must not mutate the original result *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let base = A.analyze c ~spec in
  let g17 = Circuit.find_exn c "G17" in
  let before, _, _ = A.transition_stats (A.signal base g17) `Rise in
  let changed_source = List.hd (Circuit.sources c) in
  let new_spec s = if s = changed_source then Input_spec.case_ii else Input_spec.case_i in
  let _ = A.update base ~changed:[ changed_source ] ~spec:new_spec in
  let after, _, _ = A.transition_stats (A.signal base g17) `Rise in
  close "original untouched" before after ~tol:0.0

let test_untouched_cone_shared () =
  (* nets outside the cone must be byte-identical (physically shared) *)
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let spec _ = Input_spec.case_i in
  let base = A.analyze c ~spec in
  let changed_source = List.hd (Circuit.sources c) in
  let incremental = A.update base ~changed:[ changed_source ] ~spec in
  (* find a gate not reachable from the changed source *)
  let dirty = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem dirty id) then begin
      Hashtbl.replace dirty id ();
      Array.iter mark (Circuit.fanout c id)
    end
  in
  mark changed_source;
  let clean_gates =
    Array.to_list (Circuit.topo_gates c) |> List.filter (fun g -> not (Hashtbl.mem dirty g))
  in
  Alcotest.(check bool) "some clean gates exist" true (clean_gates <> []);
  List.iter
    (fun g ->
      Alcotest.(check bool) "clean gate shared" true (A.signal base g == A.signal incremental g))
    clean_gates

let test_noop_update () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let base = A.analyze c ~spec in
  let incremental = A.update base ~changed:[] ~spec in
  signals_equal c "noop" base incremental

let suite =
  [
    Alcotest.test_case "source change" `Quick test_update_matches_full_source_change;
    Alcotest.test_case "multiple changes" `Quick test_update_matches_full_multi_change;
    Alcotest.test_case "update is pure" `Quick test_update_is_pure;
    Alcotest.test_case "clean cone shared" `Quick test_untouched_cone_shared;
    Alcotest.test_case "no-op update" `Quick test_noop_update;
  ]
