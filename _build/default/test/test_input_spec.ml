module Input_spec = Spsta_sim.Input_spec
module Value4 = Spsta_logic.Value4
module Rng = Spsta_util.Rng

let close ?(tol = 1e-12) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* the paper's derived statistics for the two experiment regimes *)
let test_case_i_stats () =
  close "signal probability" 0.5 (Input_spec.signal_probability Input_spec.case_i);
  close "toggling rate" 0.5 (Input_spec.toggling_rate Input_spec.case_i);
  close "toggling variance" 0.25 (Input_spec.toggling_variance Input_spec.case_i)

let test_case_ii_stats () =
  close "signal probability" 0.2 (Input_spec.signal_probability Input_spec.case_ii);
  close "toggling rate" 0.1 (Input_spec.toggling_rate Input_spec.case_ii);
  close "toggling variance" 0.09 (Input_spec.toggling_variance Input_spec.case_ii)

let test_make_validation () =
  Alcotest.check_raises "sum check" (Invalid_argument "Input_spec.make: probabilities must sum to 1")
    (fun () -> ignore (Input_spec.make ~p_zero:0.5 ~p_one:0.5 ~p_rise:0.5 ~p_fall:0.0 ()));
  Alcotest.check_raises "negative" (Invalid_argument "Input_spec.make: negative probability")
    (fun () -> ignore (Input_spec.make ~p_zero:1.2 ~p_one:(-0.2) ~p_rise:0.0 ~p_fall:0.0 ()))

let test_sample_distribution () =
  let rng = Rng.create ~seed:77 in
  let counts = Hashtbl.create 4 in
  let n = 100_000 in
  for _ = 1 to n do
    let v, _ = Input_spec.sample rng Input_spec.case_ii in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let frac v = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts v)) /. float_of_int n in
  close "zero fraction" 0.75 (frac Value4.Zero) ~tol:0.01;
  close "one fraction" 0.15 (frac Value4.One) ~tol:0.01;
  close "rise fraction" 0.02 (frac Value4.Rising) ~tol:0.005;
  close "fall fraction" 0.08 (frac Value4.Falling) ~tol:0.005

let test_sample_arrival_times () =
  let rng = Rng.create ~seed:78 in
  let acc = Spsta_util.Stats.acc_create () in
  for _ = 1 to 200_000 do
    let v, t = Input_spec.sample rng Input_spec.case_i in
    if Value4.is_transition v then Spsta_util.Stats.acc_add acc t
  done;
  close "transition arrivals have standard-normal mean" 0.0 (Spsta_util.Stats.acc_mean acc)
    ~tol:0.02;
  close "transition arrivals have standard-normal stddev" 1.0 (Spsta_util.Stats.acc_stddev acc)
    ~tol:0.02

let test_steady_time_zero () =
  let rng = Rng.create ~seed:79 in
  let spec = Input_spec.make ~p_zero:1.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:0.0 () in
  let v, t = Input_spec.sample rng spec in
  Alcotest.(check bool) "always zero" true (Value4.equal v Value4.Zero);
  close "steady time" 0.0 t

let suite =
  [
    Alcotest.test_case "case I derived stats" `Quick test_case_i_stats;
    Alcotest.test_case "case II derived stats" `Quick test_case_ii_stats;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "sample distribution" `Quick test_sample_distribution;
    Alcotest.test_case "sample arrival times" `Quick test_sample_arrival_times;
    Alcotest.test_case "steady values at time zero" `Quick test_steady_time_zero;
  ]
