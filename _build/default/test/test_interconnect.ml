module Rc_tree = Spsta_interconnect.Rc_tree
module Wire_model = Spsta_interconnect.Wire_model
module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_single_segment () =
  (* driver R=2 into one segment R=3, C at far end 5 plus root cap 1:
     elmore(sink) = 2*(1+5) + 3*5 = 27 *)
  let t = Rc_tree.create ~driver_resistance:2.0 ~root_cap:1.0 () in
  let sink = Rc_tree.add_child t (Rc_tree.root t) ~resistance:3.0 ~capacitance:5.0 in
  close "total capacitance" 6.0 (Rc_tree.total_capacitance t);
  close "elmore at sink" 27.0 (Rc_tree.elmore_delay t sink);
  close "elmore at root" 12.0 (Rc_tree.elmore_delay t (Rc_tree.root t));
  close "worst" 27.0 (Rc_tree.worst_elmore t)

let test_chain_closed_form () =
  (* uniform chain of n stages, no driver R, no sink cap:
     elmore(end) = r c (n + (n-1) + ... + 1) = r c n (n+1) / 2 *)
  let n = 5 in
  let t = Rc_tree.chain ~stages:n ~segment_r:2.0 ~segment_c:3.0 ~sink_cap:0.0 () in
  close "chain elmore" (2.0 *. 3.0 *. float_of_int (n * (n + 1) / 2)) (Rc_tree.worst_elmore t);
  Alcotest.(check int) "node count" (n + 1) (Rc_tree.node_count t)

let test_star_symmetry () =
  let t =
    Rc_tree.balanced ~driver_resistance:1.0 ~fanout:4 ~segment_r:0.5 ~segment_c:0.2 ~sink_cap:0.3 ()
  in
  (* every sink identical: elmore = Rd * Ctotal + r * (c + csink) *)
  let expected = (1.0 *. (4.0 *. 0.5)) +. (0.5 *. 0.5) in
  close "star sink delay" expected (Rc_tree.worst_elmore t);
  close "star total cap" 2.0 (Rc_tree.total_capacitance t)

let test_validation () =
  let t = Rc_tree.create ~root_cap:0.0 () in
  Alcotest.check_raises "negative R" (Invalid_argument "Rc_tree.add_child: negative R or C")
    (fun () -> ignore (Rc_tree.add_child t (Rc_tree.root t) ~resistance:(-1.0) ~capacitance:0.0));
  Alcotest.check_raises "negative driver R"
    (Invalid_argument "Rc_tree.create: negative driver resistance") (fun () ->
      ignore (Rc_tree.create ~driver_resistance:(-1.0) ~root_cap:0.0 ()))

let fanout_circuit k =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n0" Gate_kind.Buf [ "a" ];
  for i = 1 to k do
    Circuit.Builder.add_gate b ~output:(Printf.sprintf "s%d" i) Gate_kind.Not [ "n0" ];
    Circuit.Builder.add_output b (Printf.sprintf "s%d" i)
  done;
  Circuit.Builder.finalize b

let test_wire_model_fanout_scaling () =
  let c1 = fanout_circuit 1 and c4 = fanout_circuit 4 in
  let w1 = Wire_model.build c1 and w4 = Wire_model.build c4 in
  let d1 = Wire_model.net_delay w1 (Circuit.find_exn c1 "n0") in
  let d4 = Wire_model.net_delay w4 (Circuit.find_exn c4 "n0") in
  Alcotest.(check bool) "fanout increases net delay" true (d4 > d1);
  (* loadless outputs have no wire delay *)
  close "loadless sink" 0.0 (Wire_model.net_delay w4 (Circuit.find_exn c4 "s1"))

let test_stage_delay () =
  let c = fanout_circuit 2 in
  let w = Wire_model.build c in
  let n0 = Circuit.find_exn c "n0" in
  close "stage = gate + wire"
    (Wire_model.default_params.Wire_model.gate_delay +. Wire_model.net_delay w n0)
    (Wire_model.stage_delay w n0)

let test_placement_distance_matters () =
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let model = Spsta_variation.Param_model.create ~grid:4 () in
  let p = Spsta_variation.Param_model.place ~seed:5 model c in
  let near = Wire_model.build c in
  let far = Wire_model.build ~placement:(p, 4) c in
  (* with placement, total wiring cannot be smaller than the unit model *)
  Alcotest.(check bool) "placement adds wire" true
    (Wire_model.total_wire_capacitance far >= Wire_model.total_wire_capacitance near)

let test_timing_engines_consume_wire_delays () =
  (* loaded delays shift all three engines consistently on a chain *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Buf [ "n1" ];
  Circuit.Builder.add_output b "n2";
  let c = Circuit.Builder.finalize b in
  let w = Wire_model.build c in
  let delay_of = Wire_model.stage_delay w in
  let out = Circuit.find_exn c "n2" in
  let expected =
    delay_of (Circuit.find_exn c "n1") +. delay_of out
  in
  (* logic sim *)
  let sim =
    Spsta_sim.Logic_sim.run ~delay_of c
      ~source_values:(fun _ -> (Spsta_logic.Value4.Rising, 0.0))
  in
  close "sim loaded arrival" expected sim.Spsta_sim.Logic_sim.times.(out);
  (* spsta *)
  let spec _ =
    Spsta_sim.Input_spec.make
      ~rise_arrival:(Spsta_dist.Normal.make ~mu:0.0 ~sigma:0.0)
      ~p_zero:0.0 ~p_one:0.0 ~p_rise:1.0 ~p_fall:0.0 ()
  in
  let spsta = Spsta_core.Analyzer.Moments.analyze ~delay_of c ~spec in
  let mu, _, _ =
    Spsta_core.Analyzer.Moments.transition_stats
      (Spsta_core.Analyzer.Moments.signal spsta out) `Rise
  in
  close "spsta loaded arrival" expected mu ~tol:1e-9;
  (* ssta (variational with zero sigma) *)
  let ssta =
    Spsta_ssta.Ssta.analyze_variational
      ~gate_delay:(fun g -> Spsta_dist.Normal.make ~mu:(delay_of g) ~sigma:0.0)
      ~input_arrival:
        { Spsta_ssta.Ssta.rise = Spsta_dist.Normal.make ~mu:0.0 ~sigma:0.0;
          fall = Spsta_dist.Normal.make ~mu:0.0 ~sigma:0.0 }
      c
  in
  close "ssta loaded arrival" expected
    (Spsta_dist.Normal.mean (Spsta_ssta.Ssta.arrival ssta out).Spsta_ssta.Ssta.rise)

let suite =
  [
    Alcotest.test_case "single segment elmore" `Quick test_single_segment;
    Alcotest.test_case "chain closed form" `Quick test_chain_closed_form;
    Alcotest.test_case "star symmetry" `Quick test_star_symmetry;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "fanout scaling" `Quick test_wire_model_fanout_scaling;
    Alcotest.test_case "stage delay" `Quick test_stage_delay;
    Alcotest.test_case "placement-aware wiring" `Quick test_placement_distance_matters;
    Alcotest.test_case "engines consume wire delays" `Quick test_timing_engines_consume_wire_delays;
  ]
