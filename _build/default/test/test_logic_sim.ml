module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Logic_sim = Spsta_sim.Logic_sim

(* one gate y = kind(a, b) with explicit source behaviours *)
let gate_circuit kind =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" kind [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let run_gate kind (va, ta) (vb, tb) =
  let c = gate_circuit kind in
  let source_values s =
    if Circuit.net_name c s = "a" then (va, ta) else (vb, tb)
  in
  let r = Logic_sim.run c ~source_values in
  let y = Circuit.find_exn c "y" in
  (r.Logic_sim.values.(y), r.Logic_sim.times.(y))

let check_case name kind a b expected_v expected_t =
  let v, t = run_gate kind a b in
  if not (Value4.equal v expected_v) then
    Alcotest.failf "%s: expected value %s, got %s" name (Value4.to_string expected_v)
      (Value4.to_string v);
  match expected_t with
  | None -> ()
  | Some et -> Alcotest.(check (float 1e-9)) (name ^ " time") et t

let test_and_rising_max () =
  (* both rising: output rises with the later input, plus unit delay *)
  check_case "AND r/r" Gate_kind.And (Value4.Rising, 1.0) (Value4.Rising, 3.0) Value4.Rising
    (Some 4.0)

let test_and_falling_min () =
  check_case "AND f/f" Gate_kind.And (Value4.Falling, 1.0) (Value4.Falling, 3.0) Value4.Falling
    (Some 2.0)

let test_or_rising_min () =
  check_case "OR r/r" Gate_kind.Or (Value4.Rising, 1.0) (Value4.Rising, 3.0) Value4.Rising
    (Some 2.0)

let test_or_falling_max () =
  check_case "OR f/f" Gate_kind.Or (Value4.Falling, 1.0) (Value4.Falling, 3.0) Value4.Falling
    (Some 4.0)

let test_nand_swaps () =
  (* NAND of two fallers rises at the first faller *)
  check_case "NAND f/f" Gate_kind.Nand (Value4.Falling, 1.0) (Value4.Falling, 3.0) Value4.Rising
    (Some 2.0)

let test_single_switcher () =
  check_case "AND r with steady 1" Gate_kind.And (Value4.Rising, 2.5) (Value4.One, 0.0)
    Value4.Rising (Some 3.5);
  check_case "AND r with steady 0 masks" Gate_kind.And (Value4.Rising, 2.5) (Value4.Zero, 0.0)
    Value4.Zero None

let test_glitch_suppression () =
  check_case "AND r/f glitch" Gate_kind.And (Value4.Rising, 1.0) (Value4.Falling, 2.0) Value4.Zero
    None;
  check_case "OR r/f glitch" Gate_kind.Or (Value4.Rising, 1.0) (Value4.Falling, 2.0) Value4.One None

let test_xor_settles_last () =
  check_case "XOR r with steady 0" Gate_kind.Xor (Value4.Rising, 1.5) (Value4.Zero, 0.0)
    Value4.Rising (Some 2.5);
  check_case "XOR r with steady 1 falls" Gate_kind.Xor (Value4.Rising, 1.5) (Value4.One, 0.0)
    Value4.Falling (Some 2.5);
  check_case "XOR r/r cancels" Gate_kind.Xor (Value4.Rising, 1.0) (Value4.Rising, 2.0) Value4.Zero
    None

let test_gate_delay_param () =
  let c = gate_circuit Gate_kind.And in
  let r =
    Logic_sim.run ~gate_delay:0.25 c ~source_values:(fun _ -> (Value4.Rising, 1.0))
  in
  let y = Circuit.find_exn c "y" in
  Alcotest.(check (float 1e-9)) "custom delay" 1.25 r.Logic_sim.times.(y)

let test_chain_accumulates_delay () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Buf [ "n1" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.Not [ "n2" ];
  Circuit.Builder.add_output b "n3";
  let c = Circuit.Builder.finalize b in
  let r = Logic_sim.run c ~source_values:(fun _ -> (Value4.Rising, 0.5)) in
  let n3 = Circuit.find_exn c "n3" in
  Alcotest.(check bool) "inverted" true (Value4.equal r.Logic_sim.values.(n3) Value4.Falling);
  Alcotest.(check (float 1e-9)) "three unit delays" 3.5 r.Logic_sim.times.(n3)

(* property: per-gate values always equal eval4 of the input values *)
let values_consistent =
  QCheck.Test.make ~name:"simulation values = eval4 at every gate" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile =
        { Spsta_netlist.Generator.name = "sim"; n_inputs = 5; n_outputs = 3; n_dffs = 3;
          n_gates = 40; target_depth = 5; seed }
      in
      let c = Spsta_netlist.Generator.generate profile in
      let rng = Spsta_util.Rng.create ~seed in
      let r =
        Logic_sim.run_random rng c ~spec:(fun _ -> Spsta_sim.Input_spec.case_i)
      in
      Array.for_all
        (fun g ->
          match Circuit.driver c g with
          | Circuit.Gate { kind; inputs } ->
            let in_values = Array.to_list (Array.map (fun i -> r.Logic_sim.values.(i)) inputs) in
            Value4.equal r.Logic_sim.values.(g) (Gate_kind.eval4 kind in_values)
          | Circuit.Input | Circuit.Dff_output _ -> true)
        (Circuit.topo_gates c))

(* property: transition times never precede the earliest transitioning
   input plus the gate delay *)
let times_monotone =
  QCheck.Test.make ~name:"arrival times respect causality" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile =
        { Spsta_netlist.Generator.name = "mono"; n_inputs = 4; n_outputs = 2; n_dffs = 2;
          n_gates = 30; target_depth = 4; seed }
      in
      let c = Spsta_netlist.Generator.generate profile in
      let rng = Spsta_util.Rng.create ~seed:(seed + 1) in
      let r = Logic_sim.run_random rng c ~spec:(fun _ -> Spsta_sim.Input_spec.case_i) in
      Array.for_all
        (fun g ->
          match Circuit.driver c g with
          | Circuit.Gate { inputs; _ } ->
            if Value4.is_transition r.Logic_sim.values.(g) then begin
              let transitioning =
                Array.to_list inputs
                |> List.filter (fun i -> Value4.is_transition r.Logic_sim.values.(i))
              in
              match transitioning with
              | [] -> false
              | _ ->
                let earliest =
                  List.fold_left (fun acc i -> Float.min acc r.Logic_sim.times.(i)) infinity
                    transitioning
                in
                let latest =
                  List.fold_left (fun acc i -> Float.max acc r.Logic_sim.times.(i)) neg_infinity
                    transitioning
                in
                r.Logic_sim.times.(g) >= earliest +. 1.0 -. 1e-9
                && r.Logic_sim.times.(g) <= latest +. 1.0 +. 1e-9
            end
            else true
          | Circuit.Input | Circuit.Dff_output _ -> true)
        (Circuit.topo_gates c))

let suite =
  [
    Alcotest.test_case "AND rising = MAX" `Quick test_and_rising_max;
    Alcotest.test_case "AND falling = MIN" `Quick test_and_falling_min;
    Alcotest.test_case "OR rising = MIN" `Quick test_or_rising_min;
    Alcotest.test_case "OR falling = MAX" `Quick test_or_falling_max;
    Alcotest.test_case "NAND swaps directions" `Quick test_nand_swaps;
    Alcotest.test_case "single switching input" `Quick test_single_switcher;
    Alcotest.test_case "glitch suppression" `Quick test_glitch_suppression;
    Alcotest.test_case "XOR settles with last input" `Quick test_xor_settles_last;
    Alcotest.test_case "gate delay parameter" `Quick test_gate_delay_param;
    Alcotest.test_case "delay accumulates along chains" `Quick test_chain_accumulates_delay;
    QCheck_alcotest.to_alcotest values_consistent;
    QCheck_alcotest.to_alcotest times_monotone;
  ]
