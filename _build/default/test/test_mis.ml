(* Multiple-input switching delay model. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Timing_rule = Spsta_logic.Timing_rule
module Mis_model = Spsta_logic.Mis_model
module Input_spec = Spsta_sim.Input_spec
module Logic_sim = Spsta_sim.Logic_sim
module Monte_carlo = Spsta_sim.Monte_carlo
module A = Spsta_core.Analyzer.Moments
module Normal = Spsta_dist.Normal
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_factor () =
  let m = Mis_model.make ~min_speedup:0.2 ~max_slowdown:0.1 () in
  close "single input is neutral (min)" 1.0 (Mis_model.factor m Timing_rule.Min ~simultaneous:1);
  close "single input is neutral (max)" 1.0 (Mis_model.factor m Timing_rule.Max ~simultaneous:1);
  close "min speeds up" (1.0 /. 1.4) (Mis_model.factor m Timing_rule.Min ~simultaneous:3);
  close "max slows down" 1.2 (Mis_model.factor m Timing_rule.Max ~simultaneous:3);
  close "none is neutral" 1.0 (Mis_model.factor Mis_model.none Timing_rule.Max ~simultaneous:5)

let test_make_validation () =
  Alcotest.check_raises "negative rate" (Invalid_argument "Mis_model.make: negative rate")
    (fun () -> ignore (Mis_model.make ~min_speedup:(-0.1) ()));
  Alcotest.check_raises "zero window" (Invalid_argument "Mis_model.make: window must be positive")
    (fun () -> ignore (Mis_model.make ~window:0.0 ()));
  Alcotest.check_raises "factor arity"
    (Invalid_argument "Mis_model.factor: needs at least one switching input") (fun () ->
      ignore (Mis_model.factor Mis_model.none Timing_rule.Max ~simultaneous:0))

let and_gate () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let run_and mis (va, ta) (vb, tb) =
  let c = and_gate () in
  let source_values s = if Circuit.net_name c s = "a" then (va, ta) else (vb, tb) in
  let r = Logic_sim.run ~mis c ~source_values in
  r.Logic_sim.times.(Circuit.find_exn c "y")

let test_sim_simultaneous_rise () =
  let m = Mis_model.make ~max_slowdown:0.2 ~window:0.5 () in
  (* both rise at the same instant: MAX-rule slowdown applies *)
  close "simultaneous rise slowed" (2.0 +. 1.2)
    (run_and m (Value4.Rising, 2.0) (Value4.Rising, 2.0));
  (* far apart: single-input delay *)
  close "separated rise unaffected" (5.0 +. 1.0)
    (run_and m (Value4.Rising, 2.0) (Value4.Rising, 5.0))

let test_sim_simultaneous_fall () =
  let m = Mis_model.make ~min_speedup:0.25 ~window:0.5 () in
  (* both fall together: MIN-rule speedup *)
  close "simultaneous fall sped up" (2.0 +. (1.0 /. 1.25))
    (run_and m (Value4.Falling, 2.0) (Value4.Falling, 2.0));
  close "separated fall unaffected" (2.0 +. 1.0)
    (run_and m (Value4.Falling, 2.0) (Value4.Falling, 5.0))

let test_window_boundary () =
  let m = Mis_model.make ~max_slowdown:0.2 ~window:1.0 () in
  (* 0.8 apart: within window -> both count *)
  close "inside window" (2.8 +. 1.2) (run_and m (Value4.Rising, 2.0) (Value4.Rising, 2.8));
  (* 1.5 apart: outside -> single *)
  close "outside window" (3.5 +. 1.0) (run_and m (Value4.Rising, 2.0) (Value4.Rising, 3.5))

(* SPSTA with an infinite window must match MC exactly on probability-1
   simultaneous switching *)
let test_analyzer_term_adjustment () =
  let m = Mis_model.make ~max_slowdown:0.2 ~min_speedup:0.25 () in
  let rising t sigma =
    A.source_signal
      (Input_spec.make ~rise_arrival:(Normal.make ~mu:t ~sigma) ~p_zero:0.0 ~p_one:0.0
         ~p_rise:1.0 ~p_fall:0.0 ())
  in
  let y = A.gate_output ~mis:m Gate_kind.And [ rising 2.0 0.0; rising 2.0 0.0 ] in
  let mu, _, p = A.transition_stats y `Rise in
  close "certain rise" 1.0 p ~tol:1e-12;
  close "slowed arrival" (2.0 +. 1.2) mu ~tol:1e-9;
  (* inverting gate: NAND of two fallers rises via MIN-rule speedup, and
     the delay applied is the (final) rising one *)
  let falling t =
    A.source_signal
      (Input_spec.make ~fall_arrival:(Normal.make ~mu:t ~sigma:0.0) ~p_zero:0.0 ~p_one:0.0
         ~p_rise:0.0 ~p_fall:1.0 ())
  in
  let ny = A.gate_output ~mis:m Gate_kind.Nand [ falling 2.0; falling 2.0 ] in
  let nmu, _, np = A.transition_stats ny `Rise in
  close "nand certain rise" 1.0 np ~tol:1e-12;
  close "nand sped arrival" (2.0 +. (1.0 /. 1.25)) nmu ~tol:1e-9

let test_spsta_vs_mc_with_mis () =
  (* end-to-end on s27 with an infinite window: the analyzer's per-term
     correction must track the simulator *)
  let m = Mis_model.make ~max_slowdown:0.15 ~min_speedup:0.2 () in
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let spsta = A.analyze ~mis:m c ~spec in
  let mc = Monte_carlo.simulate ~mis:m ~runs:30_000 ~seed:23 c ~spec in
  List.iter
    (fun e ->
      let mu, _, p = A.transition_stats (A.signal spsta e) `Rise in
      let s = Monte_carlo.stats mc e in
      if p > 0.05 then
        close
          (Printf.sprintf "%s rise mean with MIS" (Circuit.net_name c e))
          (Stats.acc_mean s.Monte_carlo.rise_times)
          mu ~tol:0.3)
    (Circuit.endpoints c)

let test_mis_shifts_mean () =
  (* the paper's point: ignoring MIS underestimates the mean *)
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let spec _ = Input_spec.case_i in
  let m = Mis_model.make ~max_slowdown:0.2 ~min_speedup:0.0 () in
  let base = Monte_carlo.simulate ~runs:4000 ~seed:29 c ~spec in
  let mis = Monte_carlo.simulate ~mis:m ~runs:4000 ~seed:29 c ~spec in
  let total r =
    List.fold_left
      (fun acc e ->
        let s = Monte_carlo.stats r e in
        acc +. Stats.acc_mean s.Monte_carlo.rise_times)
      0.0 (Circuit.endpoints c)
  in
  Alcotest.(check bool) "MAX slowdown raises mean arrivals" true (total mis > total base)

let suite =
  [
    Alcotest.test_case "factor" `Quick test_factor;
    Alcotest.test_case "validation" `Quick test_make_validation;
    Alcotest.test_case "simulator simultaneous rise" `Quick test_sim_simultaneous_rise;
    Alcotest.test_case "simulator simultaneous fall" `Quick test_sim_simultaneous_fall;
    Alcotest.test_case "window boundary" `Quick test_window_boundary;
    Alcotest.test_case "analyzer term adjustment" `Quick test_analyzer_term_adjustment;
    Alcotest.test_case "SPSTA vs MC with MIS" `Slow test_spsta_vs_mc_with_mis;
    Alcotest.test_case "MIS raises mean arrivals" `Quick test_mis_shifts_mean;
  ]
