module Normal = Spsta_dist.Normal
module Mixture = Spsta_dist.Mixture
module Rng = Spsta_util.Rng
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (Mixture.is_empty Mixture.empty);
  close "empty weight" 0.0 (Mixture.total_weight Mixture.empty);
  close "empty mean" 0.0 (Mixture.mean Mixture.empty);
  Alcotest.(check bool) "no normalised moments" true
    (Mixture.normalized_moments Mixture.empty = None)

let test_singleton () =
  let m = Mixture.singleton ~weight:0.4 (Normal.make ~mu:2.0 ~sigma:1.5) in
  close "weight" 0.4 (Mixture.total_weight m);
  close "mean" 2.0 (Mixture.mean m);
  close "stddev" 1.5 (Mixture.stddev m)

let test_singleton_invalid () =
  Alcotest.check_raises "negative weight" (Invalid_argument "Mixture.singleton: negative weight")
    (fun () -> ignore (Mixture.singleton ~weight:(-0.1) Normal.standard))

let test_two_component_moments () =
  (* equal-weight mixture of N(0,1) and N(4,1): mean 2, var 1 + 4 *)
  let m =
    Mixture.add
      (Mixture.singleton ~weight:0.5 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Mixture.singleton ~weight:0.5 (Normal.make ~mu:4.0 ~sigma:1.0))
  in
  close "bimodal mean" 2.0 (Mixture.mean m);
  close "bimodal variance" 5.0 (Mixture.variance m)

let test_scale () =
  let m = Mixture.singleton ~weight:0.5 Normal.standard in
  let s = Mixture.scale m 0.2 in
  close "scaled weight" 0.1 (Mixture.total_weight s);
  close "scale keeps mean" 0.0 (Mixture.mean s);
  Alcotest.(check bool) "scale to zero empties" true (Mixture.is_empty (Mixture.scale m 0.0))

let test_add_delay () =
  let m =
    Mixture.add
      (Mixture.singleton ~weight:0.3 (Normal.make ~mu:1.0 ~sigma:1.0))
      (Mixture.singleton ~weight:0.7 (Normal.make ~mu:2.0 ~sigma:0.5))
  in
  let d = Mixture.add_delay m 10.0 in
  close "delay shifts mean" (Mixture.mean m +. 10.0) (Mixture.mean d);
  close "delay keeps variance" (Mixture.variance m) (Mixture.variance d) ~tol:1e-9

let test_add_normal_delay () =
  let m = Mixture.singleton ~weight:1.0 (Normal.make ~mu:0.0 ~sigma:3.0) in
  let d = Mixture.add_normal_delay m (Normal.make ~mu:1.0 ~sigma:4.0) in
  close "convolved mean" 1.0 (Mixture.mean d);
  close "convolved stddev" 5.0 (Mixture.stddev d)

let test_compact_preserves_moments () =
  let components =
    List.init 100 (fun i ->
        Mixture.singleton ~weight:0.01 (Normal.make ~mu:(float_of_int i /. 10.0) ~sigma:0.3))
  in
  let m = Mixture.sum components in
  let c = Mixture.compact ~max_components:8 m in
  Alcotest.(check bool) "compacted size" true (List.length (Mixture.components c) <= 8);
  close "compact preserves weight" (Mixture.total_weight m) (Mixture.total_weight c) ~tol:1e-12;
  close "compact preserves mean" (Mixture.mean m) (Mixture.mean c) ~tol:1e-9;
  close "compact preserves variance" (Mixture.variance m) (Mixture.variance c) ~tol:1e-9

let test_sample_moments () =
  let rng = Rng.create ~seed:21 in
  let m =
    Mixture.add
      (Mixture.singleton ~weight:1.0 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Mixture.singleton ~weight:3.0 (Normal.make ~mu:8.0 ~sigma:2.0))
  in
  let acc = Stats.acc_create () in
  for _ = 1 to 100_000 do
    match Mixture.sample rng m with
    | Some x -> Stats.acc_add acc x
    | None -> Alcotest.fail "unexpected empty sample"
  done;
  close "sampled mean" (Mixture.mean m) (Stats.acc_mean acc) ~tol:0.05;
  close "sampled stddev" (Mixture.stddev m) (Stats.acc_stddev acc) ~tol:0.05

let test_sample_empty () =
  let rng = Rng.create ~seed:22 in
  Alcotest.(check bool) "empty sample is None" true (Mixture.sample rng Mixture.empty = None)

let weighted_mean_identity =
  QCheck.Test.make ~name:"mixture mean = weighted mean of components" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 10)
        (triple (float_range 0.01 1.0) (float_range (-10.) 10.) (float_range 0. 2.)))
    (fun specs ->
      let m =
        Mixture.sum
          (List.map (fun (w, mu, sigma) -> Mixture.singleton ~weight:w (Normal.make ~mu ~sigma)) specs)
      in
      let total = List.fold_left (fun acc (w, _, _) -> acc +. w) 0.0 specs in
      let expected = List.fold_left (fun acc (w, mu, _) -> acc +. (w *. mu)) 0.0 specs /. total in
      Float.abs (Mixture.mean m -. expected) < 1e-9)

let as_normal_matches =
  QCheck.Test.make ~name:"as_normal carries normalised moments" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (triple (float_range 0.01 1.0) (float_range (-5.) 5.) (float_range 0. 2.)))
    (fun specs ->
      let m =
        Mixture.sum
          (List.map (fun (w, mu, sigma) -> Mixture.singleton ~weight:w (Normal.make ~mu ~sigma)) specs)
      in
      match Mixture.as_normal m with
      | None -> false
      | Some n ->
        Float.abs (Normal.mean n -. Mixture.mean m) < 1e-9
        && Float.abs (Normal.stddev n -. Mixture.stddev m) < 1e-9)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "singleton validation" `Quick test_singleton_invalid;
    Alcotest.test_case "two-component moments" `Quick test_two_component_moments;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "constant delay" `Quick test_add_delay;
    Alcotest.test_case "normal delay convolution" `Quick test_add_normal_delay;
    Alcotest.test_case "compact preserves moments" `Quick test_compact_preserves_moments;
    Alcotest.test_case "sampling moments" `Quick test_sample_moments;
    Alcotest.test_case "sampling empty" `Quick test_sample_empty;
    QCheck_alcotest.to_alcotest weighted_mean_identity;
    QCheck_alcotest.to_alcotest as_normal_matches;
  ]

let test_skewness () =
  (* a single normal is symmetric *)
  let close ?(tol = 1e-9) name expected actual =
    if Float.abs (expected -. actual) > tol then
      Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual
  in
  close "normal skewness" 0.0 (Mixture.skewness (Mixture.singleton ~weight:1.0 Normal.standard));
  (* a rare far-right component skews right *)
  let right =
    Mixture.add
      (Mixture.singleton ~weight:0.9 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Mixture.singleton ~weight:0.1 (Normal.make ~mu:6.0 ~sigma:1.0))
  in
  Alcotest.(check bool) "right-skewed" true (Mixture.skewness right > 0.5);
  (* mirroring negates the skewness *)
  let left =
    Mixture.add
      (Mixture.singleton ~weight:0.9 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Mixture.singleton ~weight:0.1 (Normal.make ~mu:(-6.0) ~sigma:1.0))
  in
  close "mirror negates" (-.Mixture.skewness right) (Mixture.skewness left) ~tol:1e-9;
  (* agreement with the lattice representation *)
  let d =
    Spsta_dist.Discrete.add
      (Spsta_dist.Discrete.of_normal ~dt:0.01 ~mass:0.9 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Spsta_dist.Discrete.of_normal ~dt:0.01 ~mass:0.1 (Normal.make ~mu:6.0 ~sigma:1.0))
  in
  close "lattice agreement" (Mixture.skewness right) (Spsta_dist.Discrete.skewness d) ~tol:0.01

let suite = suite @ [ Alcotest.test_case "skewness" `Quick test_skewness ]

let test_cdf_quantile () =
  let close ?(tol = 1e-9) name expected actual =
    if Float.abs (expected -. actual) > tol then
      Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual
  in
  let m =
    Mixture.add
      (Mixture.singleton ~weight:0.5 (Normal.make ~mu:0.0 ~sigma:1.0))
      (Mixture.singleton ~weight:0.5 (Normal.make ~mu:10.0 ~sigma:1.0))
  in
  close "cdf between modes" 0.5 (Mixture.cdf m 5.0) ~tol:1e-6;
  close "cdf far left" 0.0 (Mixture.cdf m (-10.0)) ~tol:1e-6;
  close "quantile roundtrip" 0.25 (Mixture.cdf m (Mixture.quantile m 0.25)) ~tol:1e-6;
  close "median between modes" 5.0 (Mixture.quantile m 0.5) ~tol:0.01;
  Alcotest.check_raises "empty quantile" (Invalid_argument "Mixture.quantile: empty mixture")
    (fun () -> ignore (Mixture.quantile Mixture.empty 0.5));
  close "empty cdf" 0.0 (Mixture.cdf Mixture.empty 0.0)

let suite = suite @ [ Alcotest.test_case "cdf and quantile" `Quick test_cdf_quantile ]
