module Normal = Spsta_dist.Normal
module Rng = Spsta_util.Rng

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_make_invalid () =
  Alcotest.check_raises "negative sigma" (Invalid_argument "Normal.make: negative sigma")
    (fun () -> ignore (Normal.make ~mu:0.0 ~sigma:(-1.0)))

let test_standard () =
  close "standard mean" 0.0 (Normal.mean Normal.standard);
  close "standard stddev" 1.0 (Normal.stddev Normal.standard);
  close "standard variance" 1.0 (Normal.variance Normal.standard)

let test_pdf_cdf () =
  let n = Normal.make ~mu:2.0 ~sigma:3.0 in
  close "cdf at mean" 0.5 (Normal.cdf n 2.0) ~tol:1e-6;
  close "cdf at +1 sigma" 0.8413447461 (Normal.cdf n 5.0) ~tol:2e-7;
  close "pdf at mean" (0.3989422804 /. 3.0) (Normal.pdf n 2.0) ~tol:1e-9

let test_degenerate () =
  let d = Normal.make ~mu:4.0 ~sigma:0.0 in
  close "cdf before point" 0.0 (Normal.cdf d 3.999);
  close "cdf at point" 1.0 (Normal.cdf d 4.0);
  close "pdf off point" 0.0 (Normal.pdf d 5.0)

let test_sum () =
  let a = Normal.make ~mu:1.0 ~sigma:3.0 and b = Normal.make ~mu:2.0 ~sigma:4.0 in
  let s = Normal.sum a b in
  close "sum mean" 3.0 (Normal.mean s);
  close "sum stddev" 5.0 (Normal.stddev s)

let test_sum_correlated () =
  let a = Normal.make ~mu:0.0 ~sigma:1.0 and b = Normal.make ~mu:0.0 ~sigma:1.0 in
  let s = Normal.sum_correlated a b ~cov:1.0 in
  close "perfectly correlated sum stddev" 2.0 (Normal.stddev s);
  let anti = Normal.sum_correlated a b ~cov:(-1.0) in
  close "anti-correlated sum stddev" 0.0 (Normal.stddev anti);
  Alcotest.check_raises "impossible covariance"
    (Invalid_argument "Normal.sum_correlated: negative variance") (fun () ->
      ignore (Normal.sum_correlated a b ~cov:(-2.0)))

let test_add_constant () =
  let n = Normal.add_constant (Normal.make ~mu:1.0 ~sigma:2.0) 5.0 in
  close "shifted mean" 6.0 (Normal.mean n);
  close "unchanged sigma" 2.0 (Normal.stddev n)

let test_quantile_roundtrip () =
  let n = Normal.make ~mu:(-3.0) ~sigma:0.7 in
  List.iter
    (fun p -> close "quantile roundtrip" p (Normal.cdf n (Normal.quantile n p)) ~tol:1e-6)
    [ 0.01; 0.25; 0.5; 0.9; 0.999 ]

let test_sampling_moments () =
  let rng = Rng.create ~seed:5 in
  let n = Normal.make ~mu:7.0 ~sigma:2.5 in
  let acc = Spsta_util.Stats.acc_create () in
  for _ = 1 to 100_000 do
    Spsta_util.Stats.acc_add acc (Normal.sample rng n)
  done;
  Alcotest.(check bool) "sample mean" true (Float.abs (Spsta_util.Stats.acc_mean acc -. 7.0) < 0.05);
  Alcotest.(check bool) "sample stddev" true
    (Float.abs (Spsta_util.Stats.acc_stddev acc -. 2.5) < 0.05)

let sum_commutes =
  QCheck.Test.make ~name:"normal sum commutes" ~count:200
    QCheck.(quad (float_range (-5.) 5.) (float_range 0. 3.) (float_range (-5.) 5.) (float_range 0. 3.))
    (fun (m1, s1, m2, s2) ->
      let a = Normal.make ~mu:m1 ~sigma:s1 and b = Normal.make ~mu:m2 ~sigma:s2 in
      let x = Normal.sum a b and y = Normal.sum b a in
      Float.abs (Normal.mean x -. Normal.mean y) < 1e-12
      && Float.abs (Normal.stddev x -. Normal.stddev y) < 1e-12)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_invalid;
    Alcotest.test_case "standard normal" `Quick test_standard;
    Alcotest.test_case "pdf/cdf" `Quick test_pdf_cdf;
    Alcotest.test_case "degenerate sigma=0" `Quick test_degenerate;
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "correlated sum" `Quick test_sum_correlated;
    Alcotest.test_case "add constant" `Quick test_add_constant;
    Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
    Alcotest.test_case "sampling moments" `Quick test_sampling_moments;
    QCheck_alcotest.to_alcotest sum_commutes;
  ]
