module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Path_enum = Spsta_paths.Path_enum
module Path_stats = Spsta_paths.Path_stats
module Param_model = Spsta_variation.Param_model
module Canonical = Spsta_variation.Canonical
module Heap = Spsta_util.Heap

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* heap sanity first: the enumerator depends on it *)
let test_heap_basic () =
  let h = Heap.of_list ~cmp:Int.compare [ 5; 1; 4; 1; 3 ] in
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty pop" true (Heap.pop h = None);
  Heap.push h 2;
  Heap.push h 1;
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some 1);
  Alcotest.(check bool) "pop min" true (Heap.pop h = Some 1);
  Alcotest.(check bool) "then next" true (Heap.pop h = Some 2)

let heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun items ->
      let h = Heap.of_list ~cmp:Int.compare items in
      Heap.to_sorted_list h = List.sort Int.compare items)

(* diamond: a -> n1 -> n3 (long: a -> n1 -> n2 -> n3) *)
let diamond () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Not [ "n1" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.And [ "n1"; "n2" ];
  Circuit.Builder.add_output b "n3";
  Circuit.Builder.finalize b

let test_enumerate_diamond () =
  let c = diamond () in
  let paths = Path_enum.enumerate ~k:10 c in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  match paths with
  | [ long; short ] ->
    Alcotest.(check int) "longest first" 3 (Path_enum.length long);
    Alcotest.(check int) "shorter second" 2 (Path_enum.length short);
    Alcotest.(check int) "shared gates" 2 (Path_enum.shared_gates long short);
    Alcotest.(check string) "source" "a" (Circuit.net_name c long.Path_enum.source);
    Alcotest.(check string) "endpoint" "n3"
      (Circuit.net_name c long.Path_enum.endpoint)
  | _ -> Alcotest.fail "expected exactly two paths"

let test_enumerate_ordering () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let paths = Path_enum.enumerate ~k:25 c in
  Alcotest.(check int) "k paths" 25 (List.length paths);
  let lengths = List.map Path_enum.length paths in
  let rec descending = function
    | a :: (b :: _ as rest) -> a >= b && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "descending lengths" true (descending lengths);
  (* the longest enumerated path must realise the circuit depth *)
  Alcotest.(check int) "first = depth" (Circuit.depth c) (List.hd lengths)

let test_enumerate_endpoint_filter () =
  let c = diamond () in
  let n3 = Circuit.find_exn c "n3" in
  let paths = Path_enum.enumerate ~endpoint:n3 ~k:10 c in
  List.iter
    (fun p -> Alcotest.(check int) "ends at n3" n3 p.Path_enum.endpoint)
    paths;
  Alcotest.(check int) "both paths found" 2 (List.length paths)

let test_enumerate_k_zero () =
  Alcotest.(check int) "k=0" 0 (List.length (Path_enum.enumerate ~k:0 (diamond ())))

let test_path_to_string () =
  let c = diamond () in
  match Path_enum.enumerate ~k:1 c with
  | [ p ] ->
    Alcotest.(check string) "rendering" "a -> n1 -> n2 -> n3 (length 3)"
      (Path_enum.to_string c p)
  | _ -> Alcotest.fail "expected one path"

(* path statistics *)
let test_path_delay_random_only () =
  (* only per-gate random sigma: a length-L path has variance
     input^2 + L sigma^2 *)
  let model = Param_model.create ~sigma_random:0.2 ~grid:2 () in
  let c = diamond () in
  let placement = Param_model.place model c in
  let paths = Path_enum.enumerate ~k:2 c in
  let t = Path_stats.analyze ~input_sigma:0.5 model placement c paths in
  close "long path mean" 3.0 (Path_stats.delay_mean t 0);
  close "long path sigma" (sqrt ((0.5 ** 2.) +. (3.0 *. (0.2 ** 2.)))) (Path_stats.delay_stddev t 0)
    ~tol:1e-9;
  close "short path sigma" (sqrt ((0.5 ** 2.) +. (2.0 *. (0.2 ** 2.)))) (Path_stats.delay_stddev t 1)
    ~tol:1e-9

let test_path_correlation_shared_segments () =
  (* diamond paths share the source, n1 and n3: with random-only sigma
     and shared input arrival, cov = input^2 + 2 sigma^2 *)
  let model = Param_model.create ~sigma_random:0.2 ~grid:2 () in
  let c = diamond () in
  let placement = Param_model.place model c in
  let paths = Path_enum.enumerate ~k:2 c in
  let t = Path_stats.analyze ~input_sigma:0.5 model placement c paths in
  let expected_cov = (0.5 ** 2.) +. (2.0 *. (0.2 ** 2.)) in
  let cov =
    Canonical.covariance (Path_stats.delay_form t 0) (Path_stats.delay_form t 1)
  in
  close "shared-segment covariance" expected_cov cov ~tol:1e-9;
  Alcotest.(check bool) "correlation below 1" true (Path_stats.correlation t 0 1 < 1.0);
  Alcotest.(check bool) "correlation positive" true (Path_stats.correlation t 0 1 > 0.0)

let test_global_variation_correlates_paths () =
  (* global-only variation: all paths fully correlated per unit length
     ratio; two equal-length disjoint paths have correlation ~1 *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"x" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Buf [ "b" ];
  Circuit.Builder.add_output b "x";
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let model = Param_model.create ~sigma_global:0.3 ~grid:2 () in
  let placement = Param_model.place model c in
  let paths = Path_enum.enumerate ~k:2 c in
  let t = Path_stats.analyze ~input_sigma:0.0 model placement c paths in
  close "disjoint paths, global variation" 1.0 (Path_stats.correlation t 0 1) ~tol:1e-9

let test_criticality () =
  let model = Param_model.create ~sigma_random:0.1 ~grid:2 () in
  let c = diamond () in
  let placement = Param_model.place model c in
  let paths = Path_enum.enumerate ~k:2 c in
  let t = Path_stats.analyze ~input_sigma:0.1 model placement c paths in
  let crit = Path_stats.criticality ~samples:5000 ~seed:7 t in
  close "criticalities sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 crit) ~tol:1e-9;
  (* the longer path dominates: one extra unit-delay gate vs small sigma *)
  Alcotest.(check bool) "long path critical" true (crit.(0) > 0.95)

let test_criticality_balanced () =
  (* two equal disjoint paths: criticality ~ 0.5 each *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"x" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Buf [ "b" ];
  Circuit.Builder.add_output b "x";
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let model = Param_model.create ~sigma_random:0.2 ~grid:2 () in
  let placement = Param_model.place model c in
  let t =
    Path_stats.analyze ~input_sigma:0.5 model placement c (Path_enum.enumerate ~k:2 c)
  in
  let crit = Path_stats.criticality ~samples:20_000 ~seed:11 t in
  close "balanced criticality" 0.5 crit.(0) ~tol:0.02

let test_render () =
  let c = diamond () in
  let model = Param_model.create ~sigma_random:0.1 ~grid:2 () in
  let placement = Param_model.place model c in
  let t = Path_stats.analyze model placement c (Path_enum.enumerate ~k:2 c) in
  let crit = Path_stats.criticality ~samples:500 t in
  let text = Path_stats.render c ~criticality:crit t in
  Alcotest.(check bool) "mentions the path" true (String.length text > 50)

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap peek/pop" `Quick test_heap_peek_pop;
    QCheck_alcotest.to_alcotest heap_sorts;
    Alcotest.test_case "diamond enumeration" `Quick test_enumerate_diamond;
    Alcotest.test_case "descending order on s344" `Quick test_enumerate_ordering;
    Alcotest.test_case "endpoint filter" `Quick test_enumerate_endpoint_filter;
    Alcotest.test_case "k = 0" `Quick test_enumerate_k_zero;
    Alcotest.test_case "path rendering" `Quick test_path_to_string;
    Alcotest.test_case "path delay moments" `Quick test_path_delay_random_only;
    Alcotest.test_case "shared-segment correlation" `Quick test_path_correlation_shared_segments;
    Alcotest.test_case "global variation correlates disjoint paths" `Quick
      test_global_variation_correlates_paths;
    Alcotest.test_case "criticality of dominant path" `Quick test_criticality;
    Alcotest.test_case "criticality of balanced paths" `Quick test_criticality_balanced;
    Alcotest.test_case "render" `Quick test_render;
  ]
