module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Input_spec = Spsta_sim.Input_spec
module Sequential = Spsta_core.Sequential
module Sequential_sim = Spsta_sim.Sequential_sim
module Monte_carlo = Spsta_sim.Monte_carlo
module Four_value = Spsta_core.Four_value

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* a toggle register: q = DFF(not q).  The data net ends at one exactly
   when q launched at zero, so the steady-state q is 1/2 regardless of
   inputs, and q toggles every cycle. *)
let toggle_register () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "en" (* unused input keeps the circuit well-formed *);
  Circuit.Builder.add_gate b ~output:"d" Gate_kind.Not [ "q" ];
  Circuit.Builder.add_dff b ~q:"q" ~d:"d";
  Circuit.Builder.add_output b "d";
  Circuit.Builder.finalize b

let test_toggle_fixed_point () =
  let c = toggle_register () in
  let r = Sequential.fixed_point c ~pi_spec:(fun _ -> Input_spec.case_i) in
  Alcotest.(check bool) "converged" true (Sequential.converged r);
  let q = Circuit.find_exn c "q" in
  close "steady q" 0.5 (Sequential.ff_final_one r q) ~tol:1e-6

(* a latch that re-circulates an AND of itself with a rarely-one input:
   the fixed point is q = 0 *)
let decaying_register () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "x";
  Circuit.Builder.add_gate b ~output:"d" Gate_kind.And [ "q"; "x" ];
  Circuit.Builder.add_dff b ~q:"q" ~d:"d";
  Circuit.Builder.add_output b "d";
  Circuit.Builder.finalize b

let test_decaying_fixed_point () =
  let c = decaying_register () in
  let r = Sequential.fixed_point c ~pi_spec:(fun _ -> Input_spec.case_ii) in
  Alcotest.(check bool) "converged" true (Sequential.converged r);
  let q = Circuit.find_exn c "q" in
  close "decays to zero" 0.0 (Sequential.ff_final_one r q) ~tol:1e-4

let test_damping_and_bounds () =
  let c = toggle_register () in
  let r = Sequential.fixed_point ~damping:0.5 c ~pi_spec:(fun _ -> Input_spec.case_i) in
  Alcotest.(check bool) "damped still converges" true (Sequential.converged r);
  Alcotest.(check bool) "iterations positive" true (Sequential.iterations r >= 1);
  Alcotest.check_raises "bad damping"
    (Invalid_argument "Sequential.fixed_point: damping outside (0,1]") (fun () ->
      ignore (Sequential.fixed_point ~damping:0.0 c ~pi_spec:(fun _ -> Input_spec.case_i)))

let test_ff_accessor_guard () =
  let c = toggle_register () in
  let r = Sequential.fixed_point c ~pi_spec:(fun _ -> Input_spec.case_i) in
  Alcotest.check_raises "non-FF net"
    (Invalid_argument "Sequential.ff_final_one: not a flip-flop output net") (fun () ->
      ignore (Sequential.ff_final_one r (Circuit.find_exn c "d")))

let test_spec_override () =
  let c = toggle_register () in
  let pi_spec _ = Input_spec.case_ii in
  let r = Sequential.fixed_point c ~pi_spec in
  let q = Circuit.find_exn c "q" in
  let spec_q = Sequential.spec r ~pi_spec q in
  (* steady q = 1/2: launch distribution is the 1/4 split *)
  close "launch p_rise" 0.25 spec_q.Input_spec.p_rise ~tol:1e-6;
  close "launch p_one" 0.25 spec_q.Input_spec.p_one ~tol:1e-6;
  (* PI keeps the base spec *)
  let en = Circuit.find_exn c "en" in
  close "pi untouched" 0.75 (Sequential.spec r ~pi_spec en).Input_spec.p_zero

(* sequential MC on the toggle register: q must rise ~half the cycles *)
let test_sequential_sim_toggle () =
  let c = toggle_register () in
  let r = Sequential_sim.simulate ~cycles:4000 ~seed:7 c ~pi_spec:(fun _ -> Input_spec.case_i) in
  let q = Circuit.find_exn c "q" in
  let s = Sequential_sim.stats r q in
  close "q rises half the time" 0.5 (Monte_carlo.p_rise s) ~tol:0.02;
  close "q falls half the time" 0.5 (Monte_carlo.p_fall s) ~tol:0.02;
  close "q never steady" 0.0 (Monte_carlo.p_one s) ~tol:1e-12

let test_sequential_sim_determinism () =
  let c = toggle_register () in
  let a = Sequential_sim.simulate ~cycles:500 ~seed:9 c ~pi_spec:(fun _ -> Input_spec.case_i) in
  let b = Sequential_sim.simulate ~cycles:500 ~seed:9 c ~pi_spec:(fun _ -> Input_spec.case_i) in
  let d = Circuit.find_exn c "d" in
  Alcotest.(check int) "same counts"
    (Sequential_sim.stats a d).Monte_carlo.count_rise
    (Sequential_sim.stats b d).Monte_carlo.count_rise

(* fixed point vs sequential MC on the real s27: the steady-state
   flip-flop probabilities predicted analytically must match the
   emergent simulated ones.  s27's FFs are correlated across cycles, so
   allow a modest tolerance for the independence approximation. *)
let test_s27_fixed_point_vs_sim () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let pi_spec _ = Input_spec.case_i in
  let fp = Sequential.fixed_point c ~pi_spec in
  Alcotest.(check bool) "converged on s27" true (Sequential.converged fp);
  let sim = Sequential_sim.simulate ~warmup:500 ~cycles:30_000 ~seed:11 c ~pi_spec in
  List.iter
    (fun (qnet, _) ->
      let predicted = Sequential.ff_final_one fp qnet in
      let observed =
        let s = Sequential_sim.stats sim qnet in
        (* P(S_t = 1) = P(launch one) + P(fall): start-of-cycle value *)
        Monte_carlo.p_one s +. Monte_carlo.p_fall s
      in
      close (Printf.sprintf "FF %s steady-state" (Circuit.net_name c qnet)) observed predicted
        ~tol:0.08)
    (Circuit.dffs c)

let test_s27_gate_probs_vs_sim () =
  (* downstream gate probabilities with the converged spec should track
     the sequential simulation *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let pi_spec _ = Input_spec.case_i in
  let fp = Sequential.fixed_point c ~pi_spec in
  let sim = Sequential_sim.simulate ~warmup:500 ~cycles:30_000 ~seed:13 c ~pi_spec in
  let worst = ref 0.0 in
  Array.iter
    (fun g ->
      let predicted = Four_value.signal_probability (Sequential.probs fp g) in
      let observed = Monte_carlo.signal_probability (Sequential_sim.stats sim g) in
      worst := Float.max !worst (Float.abs (predicted -. observed)))
    (Circuit.topo_gates c);
  Alcotest.(check bool)
    (Printf.sprintf "worst gate SP gap %.3f within 0.1" !worst)
    true (!worst < 0.1)

let suite =
  [
    Alcotest.test_case "toggle register fixed point" `Quick test_toggle_fixed_point;
    Alcotest.test_case "decaying register fixed point" `Quick test_decaying_fixed_point;
    Alcotest.test_case "damping" `Quick test_damping_and_bounds;
    Alcotest.test_case "ff accessor guard" `Quick test_ff_accessor_guard;
    Alcotest.test_case "spec override" `Quick test_spec_override;
    Alcotest.test_case "sequential sim: toggle" `Quick test_sequential_sim_toggle;
    Alcotest.test_case "sequential sim determinism" `Quick test_sequential_sim_determinism;
    Alcotest.test_case "s27 fixed point vs sequential sim" `Slow test_s27_fixed_point_vs_sim;
    Alcotest.test_case "s27 gate probabilities vs sequential sim" `Slow test_s27_gate_probs_vs_sim;
  ]
