module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Signal_prob = Spsta_core.Signal_prob
module Exact_prob = Spsta_core.Exact_prob
module Correlated_prob = Spsta_core.Correlated_prob

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let gate2 kind =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" kind [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let prob_of kind pa pb =
  let c = gate2 kind in
  let p = function s when Circuit.net_name c s = "a" -> pa | _ -> pb in
  let r = Signal_prob.compute c ~p_source:p in
  Signal_prob.prob r (Circuit.find_exn c "y")

let test_gate_closed_forms () =
  close "AND" (0.3 *. 0.6) (prob_of Gate_kind.And 0.3 0.6);
  close "OR" (0.3 +. 0.6 -. (0.3 *. 0.6)) (prob_of Gate_kind.Or 0.3 0.6);
  close "NAND" (1.0 -. (0.3 *. 0.6)) (prob_of Gate_kind.Nand 0.3 0.6);
  close "XOR" ((0.3 *. 0.4) +. (0.7 *. 0.6)) (prob_of Gate_kind.Xor 0.3 0.6)

let test_validation () =
  let c = gate2 Gate_kind.And in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Signal_prob.compute: probability outside [0,1]") (fun () ->
      ignore (Signal_prob.compute c ~p_source:(fun _ -> 1.5)))

(* on a fanout-free tree, eq. 5 is exact: it must equal the BDD value *)
let tree_circuit () =
  let b = Circuit.Builder.create () in
  List.iter (Circuit.Builder.add_input b) [ "a"; "b"; "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Nand [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Nor [ "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Xor [ "n1"; "n2" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_tree_exact () =
  let c = tree_circuit () in
  let p_src _ = Spsta_sim.Input_spec.signal_probability Spsta_sim.Input_spec.case_ii in
  let approx = Signal_prob.compute c ~p_source:p_src in
  (* evaluate via the BDD with identical source probabilities: on a tree
     the independence assumption is exact *)
  let bdds = Spsta_bdd.Circuit_bdd.build c in
  let sources = Array.of_list (Circuit.sources c) in
  let p_var v = p_src sources.(v) in
  Array.iter
    (fun g ->
      close
        ("net " ^ Circuit.net_name c g)
        (Spsta_bdd.Circuit_bdd.exact_prob_one bdds ~p_source:p_var g)
        (Signal_prob.prob approx g))
    (Circuit.topo_gates c)

let test_reconvergence_gap () =
  (* y = AND(a, NOT a) is always 0, but independence predicts p(1-p) *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"na" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "na" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let approx = Signal_prob.compute c ~p_source:(fun _ -> 0.5) in
  close "independence error" 0.25 (Signal_prob.prob approx (Circuit.find_exn c "y"))

let test_correlated_prob_fixes_reconvergence () =
  (* the first-order correction handles y = AND(a, NOT a) exactly:
     P = Pa (1-Pa) + cov(a, !a) = 0.25 - 0.25 = 0 *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"na" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "na" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let r = Correlated_prob.compute c ~p_source:(fun _ -> 0.5) in
  close "corrected contradiction" 0.0 (Correlated_prob.prob r (Circuit.find_exn c "y"));
  (* y = AND(a, a) = a likewise *)
  let b2 = Circuit.Builder.create () in
  Circuit.Builder.add_input b2 "a";
  Circuit.Builder.add_gate b2 ~output:"y" Gate_kind.And [ "a"; "a" ];
  Circuit.Builder.add_output b2 "y";
  let c2 = Circuit.Builder.finalize b2 in
  let r2 = Correlated_prob.compute c2 ~p_source:(fun _ -> 0.3) in
  close "idempotent AND" 0.3 (Correlated_prob.prob r2 (Circuit.find_exn c2 "y"))

let test_correlated_prob_matches_eq5_on_tree () =
  (* without reconvergence the correction term is zero *)
  let c = tree_circuit () in
  let p _ = 0.4 in
  let eq5 = Signal_prob.compute c ~p_source:p in
  let corr = Correlated_prob.compute c ~p_source:p in
  Array.iter
    (fun g ->
      close ("net " ^ Circuit.net_name c g) (Signal_prob.prob eq5 g) (Correlated_prob.prob corr g)
        ~tol:1e-9)
    (Circuit.topo_gates c)

let test_correlated_improves_s27 () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Spsta_sim.Input_spec.case_i in
  let p_src s = Spsta_sim.Input_spec.signal_probability (spec s) in
  let eq5 = Signal_prob.compute c ~p_source:p_src in
  let corr = Correlated_prob.compute c ~p_source:p_src in
  let bdds = Spsta_bdd.Circuit_bdd.build c in
  let sources = Array.of_list (Circuit.sources c) in
  let p_var v = p_src sources.(v) in
  let total_eq5 = ref 0.0 and total_corr = ref 0.0 in
  Array.iter
    (fun g ->
      let exact = Spsta_bdd.Circuit_bdd.exact_prob_one bdds ~p_source:p_var g in
      total_eq5 := !total_eq5 +. Float.abs (Signal_prob.prob eq5 g -. exact);
      total_corr := !total_corr +. Float.abs (Correlated_prob.prob corr g -. exact))
    (Circuit.topo_gates c);
  Alcotest.(check bool) "first-order correction beats independence" true
    (!total_corr < !total_eq5)

let test_correlation_accessor () =
  let c = tree_circuit () in
  let r = Correlated_prob.compute c ~p_source:(fun _ -> 0.5) in
  let a = Circuit.find_exn c "a" in
  Alcotest.(check (float 1e-9)) "self correlation" 1.0 (Correlated_prob.correlation r a a);
  let b = Circuit.find_exn c "b" in
  Alcotest.(check (float 1e-9)) "independent sources" 0.0 (Correlated_prob.correlation r a b)

let suite =
  [
    Alcotest.test_case "gate closed forms" `Quick test_gate_closed_forms;
    Alcotest.test_case "source validation" `Quick test_validation;
    Alcotest.test_case "exact on trees" `Quick test_tree_exact;
    Alcotest.test_case "reconvergence gap quantified" `Quick test_reconvergence_gap;
    Alcotest.test_case "first-order correction on contradictions" `Quick
      test_correlated_prob_fixes_reconvergence;
    Alcotest.test_case "correction neutral on trees" `Quick test_correlated_prob_matches_eq5_on_tree;
    Alcotest.test_case "correction improves s27" `Quick test_correlated_improves_s27;
    Alcotest.test_case "correlation accessors" `Quick test_correlation_accessor;
  ]
