module Special = Spsta_util.Special

let close ?(tol = 1e-6) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* reference values computed with high-precision tables *)
let test_erf_values () =
  close "erf 0" 0.0 (Special.erf 0.0);
  close "erf 0.5" 0.5204998778 (Special.erf 0.5) ~tol:2e-7;
  close "erf 1" 0.8427007929 (Special.erf 1.0) ~tol:2e-7;
  close "erf 2" 0.9953222650 (Special.erf 2.0) ~tol:2e-7;
  close "erf -1" (-0.8427007929) (Special.erf (-1.0)) ~tol:2e-7

let test_erf_odd () =
  List.iter
    (fun x -> close "erf odd" (-.Special.erf x) (Special.erf (-.x)) ~tol:1e-12)
    [ 0.1; 0.7; 1.3; 2.9 ]

let test_erfc_complement () =
  List.iter
    (fun x -> close "erfc = 1 - erf" (1.0 -. Special.erf x) (Special.erfc x) ~tol:1e-12)
    [ -2.0; -0.5; 0.0; 0.5; 2.0 ]

let test_normal_cdf_values () =
  close "Phi(0)" 0.5 (Special.normal_cdf 0.0);
  close "Phi(1)" 0.8413447461 (Special.normal_cdf 1.0) ~tol:2e-7;
  close "Phi(-1)" 0.1586552539 (Special.normal_cdf (-1.0)) ~tol:2e-7;
  close "Phi(1.96)" 0.9750021049 (Special.normal_cdf 1.96) ~tol:2e-7;
  close "Phi(3)" 0.9986501020 (Special.normal_cdf 3.0) ~tol:2e-7

let test_normal_pdf_values () =
  close "phi(0)" 0.3989422804 (Special.normal_pdf 0.0) ~tol:1e-9;
  close "phi(1)" 0.2419707245 (Special.normal_pdf 1.0) ~tol:1e-9;
  close "phi symmetric" (Special.normal_pdf 1.7) (Special.normal_pdf (-1.7)) ~tol:1e-15

let test_quantile_known () =
  close "q(0.5)" 0.0 (Special.normal_quantile 0.5) ~tol:1e-6;
  close "q(0.975)" 1.9599639845 (Special.normal_quantile 0.975) ~tol:1e-6;
  close "q(0.0013499)" (-3.0) (Special.normal_quantile 0.001349898) ~tol:1e-4

let test_quantile_out_of_range () =
  List.iter
    (fun p ->
      Alcotest.check_raises "quantile domain"
        (Invalid_argument "Special.normal_quantile: p outside (0,1)") (fun () ->
          ignore (Special.normal_quantile p)))
    [ 0.0; 1.0; -0.3; 1.5 ]

let quantile_roundtrip =
  QCheck.Test.make ~name:"normal_quantile inverts normal_cdf" ~count:500
    QCheck.(float_range 0.001 0.999)
    (fun p -> Float.abs (Special.normal_cdf (Special.normal_quantile p) -. p) < 1e-6)

let cdf_monotone =
  QCheck.Test.make ~name:"normal_cdf monotone" ~count:500
    QCheck.(pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Special.normal_cdf lo <= Special.normal_cdf hi +. 1e-12)

let suite =
  [
    Alcotest.test_case "erf values" `Quick test_erf_values;
    Alcotest.test_case "erf odd symmetry" `Quick test_erf_odd;
    Alcotest.test_case "erfc complement" `Quick test_erfc_complement;
    Alcotest.test_case "normal cdf values" `Quick test_normal_cdf_values;
    Alcotest.test_case "normal pdf values" `Quick test_normal_pdf_values;
    Alcotest.test_case "quantile known points" `Quick test_quantile_known;
    Alcotest.test_case "quantile domain errors" `Quick test_quantile_out_of_range;
    QCheck_alcotest.to_alcotest quantile_roundtrip;
    QCheck_alcotest.to_alcotest cdf_monotone;
  ]
