module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_acc_basic () =
  let acc = Stats.acc_create () in
  List.iter (Stats.acc_add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.acc_count acc);
  close "mean" 2.5 (Stats.acc_mean acc);
  close "variance" 1.25 (Stats.acc_variance acc);
  close "min" 1.0 (Stats.acc_min acc);
  close "max" 4.0 (Stats.acc_max acc)

let test_acc_empty () =
  let acc = Stats.acc_create () in
  close "empty mean" 0.0 (Stats.acc_mean acc);
  close "empty variance" 0.0 (Stats.acc_variance acc);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.acc_min: empty accumulator")
    (fun () -> ignore (Stats.acc_min acc))

let test_acc_single () =
  let acc = Stats.acc_create () in
  Stats.acc_add acc 5.0;
  close "single mean" 5.0 (Stats.acc_mean acc);
  close "single variance" 0.0 (Stats.acc_variance acc)

let test_array_stats () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close "mean" 5.0 (Stats.mean xs);
  close "variance" 4.0 (Stats.variance xs);
  close "stddev" 2.0 (Stats.stddev xs)

let test_skewness () =
  close "symmetric data" 0.0 (Stats.skewness [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check bool) "right-skewed positive" true (Stats.skewness [| 1.0; 1.0; 1.0; 10.0 |] > 0.0);
  close "constant data" 0.0 (Stats.skewness [| 3.0; 3.0; 3.0 |])

let test_covariance () =
  let xs = [| 1.0; 2.0; 3.0 |] and ys = [| 2.0; 4.0; 6.0 |] in
  close "cov of linear" (4.0 /. 3.0) (Stats.covariance xs ys);
  close "corr of linear" 1.0 (Stats.correlation xs ys) ~tol:1e-12;
  close "corr anti" (-1.0) (Stats.correlation xs [| 6.0; 4.0; 2.0 |]) ~tol:1e-12;
  close "corr with constant" 0.0 (Stats.correlation xs [| 5.0; 5.0; 5.0 |])

let test_covariance_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.covariance: length mismatch")
    (fun () -> ignore (Stats.covariance [| 1.0 |] [| 1.0; 2.0 |]))

let test_percentile () =
  let xs = [| 5.0; 1.0; 3.0 |] in
  close "p0 = min" 1.0 (Stats.percentile xs ~p:0.0);
  close "p100 = max" 5.0 (Stats.percentile xs ~p:1.0);
  close "median" 3.0 (Stats.percentile xs ~p:0.5);
  close "interpolated" 2.0 (Stats.percentile xs ~p:0.25)

let test_relative_error () =
  close "basic" 0.1 (Stats.relative_error ~reference:10.0 11.0);
  close "zero reference" 3.0 (Stats.relative_error ~reference:0.0 3.0);
  close "negative reference" 0.5 (Stats.relative_error ~reference:(-2.0) (-1.0))

let acc_matches_array =
  QCheck.Test.make ~name:"acc agrees with array formulas" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
    (fun values ->
      let xs = Array.of_list values in
      let acc = Stats.acc_create () in
      Array.iter (Stats.acc_add acc) xs;
      Float.abs (Stats.acc_mean acc -. Stats.mean xs) < 1e-9
      && Float.abs (Stats.acc_variance acc -. Stats.variance xs) < 1e-6)

let merge_matches_concat =
  QCheck.Test.make ~name:"acc_merge = concatenated stream" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30) (float_range (-50.0) 50.0))
        (list_of_size (Gen.int_range 0 30) (float_range (-50.0) 50.0)))
    (fun (left, right) ->
      let a = Stats.acc_create () and b = Stats.acc_create () and c = Stats.acc_create () in
      List.iter (Stats.acc_add a) left;
      List.iter (Stats.acc_add b) right;
      List.iter (Stats.acc_add c) (left @ right);
      let m = Stats.acc_merge a b in
      Stats.acc_count m = Stats.acc_count c
      && Float.abs (Stats.acc_mean m -. Stats.acc_mean c) < 1e-9
      && Float.abs (Stats.acc_variance m -. Stats.acc_variance c) < 1e-6)

let suite =
  [
    Alcotest.test_case "acc basics" `Quick test_acc_basic;
    Alcotest.test_case "acc empty" `Quick test_acc_empty;
    Alcotest.test_case "acc single sample" `Quick test_acc_single;
    Alcotest.test_case "array stats" `Quick test_array_stats;
    Alcotest.test_case "skewness" `Quick test_skewness;
    Alcotest.test_case "covariance/correlation" `Quick test_covariance;
    Alcotest.test_case "covariance mismatch" `Quick test_covariance_mismatch;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "relative error" `Quick test_relative_error;
    QCheck_alcotest.to_alcotest acc_matches_array;
    QCheck_alcotest.to_alcotest merge_matches_concat;
  ]

let test_ks_statistic () =
  (* samples drawn exactly at quantiles of U(0,1): tiny KS distance *)
  let uniform = Array.init 100 (fun i -> (float_of_int i +. 0.5) /. 100.0) in
  let d = Stats.ks_statistic uniform ~cdf:(fun x -> Float.min 1.0 (Float.max 0.0 x)) in
  Alcotest.(check bool) "near-perfect fit" true (d < 0.011);
  (* the same samples against a badly wrong model *)
  let d_bad = Stats.ks_statistic uniform ~cdf:(fun x -> Float.min 1.0 (Float.max 0.0 (x ** 4.0))) in
  Alcotest.(check bool) "bad model detected" true (d_bad > 0.3)

let test_ks_gaussian_accepts () =
  let rng = Spsta_util.Rng.create ~seed:99 in
  let n = 5000 in
  let samples = Array.init n (fun _ -> Spsta_util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let d = Stats.ks_statistic samples ~cdf:Spsta_util.Special.normal_cdf in
  Alcotest.(check bool) "gaussian sample passes KS at 1%" true
    (d < Stats.ks_critical ~n ~alpha:0.01)

let test_ks_critical () =
  close "alpha 0.05, n=100" 0.1358 (Stats.ks_critical ~n:100 ~alpha:0.05) ~tol:1e-4;
  Alcotest.check_raises "unsupported alpha" (Invalid_argument "Stats.ks_critical: unsupported alpha")
    (fun () -> ignore (Stats.ks_critical ~n:10 ~alpha:0.2))

let suite =
  suite
  @ [
      Alcotest.test_case "ks statistic" `Quick test_ks_statistic;
      Alcotest.test_case "ks accepts gaussian" `Quick test_ks_gaussian_accepts;
      Alcotest.test_case "ks critical values" `Quick test_ks_critical;
    ]
