module Table = Spsta_util.Table

let test_basic_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let text = Table.render t in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "line count: rule, header, rule, 2 rows, rule" 6 (List.length lines);
  (* all lines have equal width *)
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "equal widths" (List.hd widths) w) widths

let test_row_width_check () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "short row" (Invalid_argument "Table.add_row: row width differs from header")
    (fun () -> Table.add_row t [ "only-one" ])

let test_separator () =
  let t = Table.create ~headers:[ "x" ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  let text = Table.render t in
  let rules =
    List.filter (fun l -> String.length l > 0 && l.[0] = '+') (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "four rules with separator" 4 (List.length rules)

let test_alignment () =
  let t = Table.create ~headers:[ "h" ] in
  Table.add_row t [ "x" ];
  let right = Table.render ~align:Table.Right t in
  let left = Table.render ~align:Table.Left t in
  Alcotest.(check bool) "alignment affects output" true (right <> left || String.length right > 0)

let test_cell_float () =
  Alcotest.(check string) "two decimals" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "negative" "-0.50" (Table.cell_float (-0.5))

let test_content_preserved () =
  let t = Table.create ~headers:[ "col" ] in
  Table.add_row t [ "needle" ];
  let text = Table.render t in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "cell text present" true (contains text "needle")

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "row width validation" `Quick test_row_width_check;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "cell_float" `Quick test_cell_float;
    Alcotest.test_case "content preserved" `Quick test_content_preserved;
  ]
