module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Timing_report = Spsta_ssta.Timing_report

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* a -> n1 -> n3(endpoint); b -> n2 -> n3; plus short tap n1 -> out2 *)
let sample_circuit () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Not [ "b" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.And [ "n1"; "n2" ];
  Circuit.Builder.add_gate b ~output:"out2" Gate_kind.Not [ "n1" ];
  Circuit.Builder.add_output b "n3";
  Circuit.Builder.add_output b "out2";
  Circuit.Builder.finalize b

let test_arrivals () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~clock_period:5.0 c in
  let at name = Timing_report.arrival r (Circuit.find_exn c name) in
  close "source" 0.0 (at "a");
  close "level 1" 1.0 (at "n1");
  close "level 2" 2.0 (at "n3");
  close "tap" 2.0 (at "out2")

let test_required_and_slack () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~clock_period:5.0 c in
  let required name = Timing_report.required r (Circuit.find_exn c name) in
  let slack name = Timing_report.slack r (Circuit.find_exn c name) in
  close "endpoint required" 5.0 (required "n3");
  (* n1 feeds n3 (budget 4) and out2 (budget 4): required 4 *)
  close "internal required" 4.0 (required "n1");
  close "source required" 3.0 (required "a");
  close "endpoint slack" 3.0 (slack "n3");
  close "worst slack" 3.0 (Timing_report.worst_slack r);
  Alcotest.(check int) "no violations at T=5" 0 (List.length (Timing_report.violations r))

let test_violations () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~clock_period:1.5 c in
  close "worst slack negative" (-0.5) (Timing_report.worst_slack r);
  Alcotest.(check int) "both endpoints violate" 2 (List.length (Timing_report.violations r))

let test_worst_path () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~clock_period:1.0 c in
  let path = List.map (Circuit.net_name c) (Timing_report.worst_path r) in
  (* both endpoints arrive at 2; the backtrace walks source -> endpoint *)
  Alcotest.(check int) "path length" 3 (List.length path);
  Alcotest.(check bool) "starts at a source" true
    (List.mem (List.hd path) [ "a"; "b" ])

let test_input_arrival_shift () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~input_arrival:2.0 ~clock_period:5.0 c in
  close "shifted arrival" 4.0 (Timing_report.arrival r (Circuit.find_exn c "n3"));
  close "shifted worst slack" 1.0 (Timing_report.worst_slack r)

let test_slack_consistency_on_suite () =
  (* invariants on a real circuit: slack(endpoint) = T - arrival for
     the critical endpoint; required <= T everywhere on endpoint cones *)
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let t = 12.0 in
  let r = Timing_report.analyze ~clock_period:t c in
  let worst =
    List.fold_left (fun acc e -> Float.max acc (Timing_report.arrival r e)) neg_infinity
      (Circuit.endpoints c)
  in
  close "worst slack identity" (t -. worst) (Timing_report.worst_slack r) ~tol:1e-9;
  (* along the worst path, slack is constant and equals the worst slack *)
  let path = Timing_report.worst_path r in
  List.iter
    (fun net ->
      close "uniform slack along worst path" (Timing_report.worst_slack r)
        (Timing_report.slack r net) ~tol:1e-9)
    path

let test_render () =
  let c = sample_circuit () in
  let r = Timing_report.analyze ~clock_period:1.0 c in
  let text = Timing_report.render c r in
  Alcotest.(check bool) "mentions worst slack" true (String.length text > 40)

let suite =
  [
    Alcotest.test_case "arrivals" `Quick test_arrivals;
    Alcotest.test_case "required times and slack" `Quick test_required_and_slack;
    Alcotest.test_case "violations" `Quick test_violations;
    Alcotest.test_case "worst path" `Quick test_worst_path;
    Alcotest.test_case "input arrival shift" `Quick test_input_arrival_shift;
    Alcotest.test_case "slack consistency on s344" `Quick test_slack_consistency_on_suite;
    Alcotest.test_case "render" `Quick test_render;
  ]
