module Timing_rule = Spsta_logic.Timing_rule
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4

let rule = Alcotest.testable (Fmt.of_to_string Timing_rule.to_string) Timing_rule.equal

(* the paper's Table 1 annotations: AND r->MAX f->MIN; OR r->MIN f->MAX;
   inverting gates follow their base transition *)
let test_and_or_family () =
  Alcotest.check rule "AND rising" Timing_rule.Max (Timing_rule.for_output Gate_kind.And Value4.Rising);
  Alcotest.check rule "AND falling" Timing_rule.Min (Timing_rule.for_output Gate_kind.And Value4.Falling);
  Alcotest.check rule "OR rising" Timing_rule.Min (Timing_rule.for_output Gate_kind.Or Value4.Rising);
  Alcotest.check rule "OR falling" Timing_rule.Max (Timing_rule.for_output Gate_kind.Or Value4.Falling)

let test_inverting_family () =
  (* NAND rises when the underlying AND falls: first faller wins (MIN) *)
  Alcotest.check rule "NAND rising" Timing_rule.Min (Timing_rule.for_output Gate_kind.Nand Value4.Rising);
  Alcotest.check rule "NAND falling" Timing_rule.Max (Timing_rule.for_output Gate_kind.Nand Value4.Falling);
  Alcotest.check rule "NOR rising" Timing_rule.Max (Timing_rule.for_output Gate_kind.Nor Value4.Rising);
  Alcotest.check rule "NOR falling" Timing_rule.Min (Timing_rule.for_output Gate_kind.Nor Value4.Falling)

let test_no_controlling_value () =
  List.iter
    (fun kind ->
      Alcotest.check rule "settles with the last transition" Timing_rule.Max
        (Timing_rule.for_output kind Value4.Rising);
      Alcotest.check rule "settles with the last transition" Timing_rule.Max
        (Timing_rule.for_output kind Value4.Falling))
    [ Gate_kind.Xor; Gate_kind.Xnor; Gate_kind.Not; Gate_kind.Buf ]

let test_steady_invalid () =
  Alcotest.check_raises "steady output" (Invalid_argument "Timing_rule.for_output: steady output")
    (fun () -> ignore (Timing_rule.for_output Gate_kind.And Value4.One))

let test_combine () =
  Alcotest.(check (float 1e-12)) "max" 3.0 (Timing_rule.combine Timing_rule.Max [ 1.0; 3.0; 2.0 ]);
  Alcotest.(check (float 1e-12)) "min" 1.0 (Timing_rule.combine Timing_rule.Min [ 1.0; 3.0; 2.0 ]);
  Alcotest.(check (float 1e-12)) "singleton" 5.0 (Timing_rule.combine Timing_rule.Max [ 5.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Timing_rule.combine: no transitioning inputs")
    (fun () -> ignore (Timing_rule.combine Timing_rule.Max []))

let suite =
  [
    Alcotest.test_case "AND/OR annotations" `Quick test_and_or_family;
    Alcotest.test_case "NAND/NOR annotations" `Quick test_inverting_family;
    Alcotest.test_case "no controlling value" `Quick test_no_controlling_value;
    Alcotest.test_case "steady output rejected" `Quick test_steady_invalid;
    Alcotest.test_case "combine" `Quick test_combine;
  ]
