module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Input_spec = Spsta_sim.Input_spec
module Toggle_correlation = Spsta_core.Toggle_correlation
module Two_value = Spsta_core.Two_value
module Transition_density = Spsta_power.Transition_density
module Power_model = Spsta_power.Power_model

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let and_gate () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

(* fig. 3 numbers: AND with p=0.5 inputs, rho=0.5 each -> rho(y) = 0.5 *)
let test_density_and_gate () =
  let c = and_gate () in
  let d = Transition_density.compute c ~p_one:(fun _ -> 0.5) ~source_rate:(fun _ -> 0.5) in
  close "eq. 6 on AND" 0.5 (Transition_density.density d (Circuit.find_exn c "y"))

let test_density_of_specs () =
  let c = and_gate () in
  let d = Transition_density.of_input_specs c ~spec:(fun _ -> Input_spec.case_i) in
  close "case I AND density" 0.5 (Transition_density.density d (Circuit.find_exn c "y"));
  (* total = two sources (0.5 each) + gate (0.5) *)
  close "total activity" 1.5 (Transition_density.total d)

let test_density_xor_chain () =
  (* xor always propagates: density adds *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Xor [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let d = Transition_density.compute c ~p_one:(fun _ -> 0.5) ~source_rate:(fun _ -> 0.3) in
  close "XOR density adds" 0.6 (Transition_density.density d (Circuit.find_exn c "y"))

let test_toggle_correlation_means () =
  (* eq. 13 means equal the transition-density computation *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let t = Toggle_correlation.of_input_specs c ~spec in
  let d = Transition_density.of_input_specs c ~spec in
  Array.iter
    (fun g ->
      close
        ("mean rate of " ^ Circuit.net_name c g)
        (Transition_density.density d g) (Toggle_correlation.mean_rate t g) ~tol:1e-9)
    (Circuit.topo_gates c)

let test_toggle_correlation_sources () =
  let c = and_gate () in
  let t = Toggle_correlation.of_input_specs c ~spec:(fun _ -> Input_spec.case_i) in
  let a = Circuit.find_exn c "a" and b = Circuit.find_exn c "b" in
  close "source variance" 0.25 (Toggle_correlation.variance t a);
  close "independent sources" 0.0 (Toggle_correlation.covariance t a b);
  close "self correlation" 1.0 (Toggle_correlation.correlation t a a)

let test_toggle_correlation_fanout () =
  (* two buffers off the same source have perfectly correlated rates *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_output b "n1";
  Circuit.Builder.add_output b "n2";
  let c = Circuit.Builder.finalize b in
  let t = Toggle_correlation.of_input_specs c ~spec:(fun _ -> Input_spec.case_i) in
  let n1 = Circuit.find_exn c "n1" and n2 = Circuit.find_exn c "n2" in
  close "buffer branches fully correlated" 1.0 (Toggle_correlation.correlation t n1 n2) ~tol:1e-9;
  close "branch variance preserved" 0.25 (Toggle_correlation.variance t n1) ~tol:1e-9

let test_toggle_variance_shrinks_through_and () =
  (* an AND gate passes each input rate with weight 1/2 (at p=0.5):
     var = 0.25 (0.25 + 0.25) = 0.125 *)
  let c = and_gate () in
  let t = Toggle_correlation.of_input_specs c ~spec:(fun _ -> Input_spec.case_i) in
  close "AND rate variance" 0.125 (Toggle_correlation.variance t (Circuit.find_exn c "y"))
    ~tol:1e-9

let test_two_value_rate_matches_density () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let tv = Two_value.compute c ~spec in
  let d = Transition_density.of_input_specs c ~spec in
  Array.iter
    (fun g ->
      close
        ("rate of " ^ Circuit.net_name c g)
        (Transition_density.density d g) (Two_value.toggling_rate tv g) ~tol:1e-9)
    (Circuit.topo_gates c)

let test_two_value_includes_glitches () =
  (* four-value filtering can only reduce activity *)
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let spec _ = Input_spec.case_i in
  let tv = Two_value.compute c ~spec in
  let fv = Spsta_core.Analyzer.Moments.analyze c ~spec in
  Array.iter
    (fun g ->
      let with_glitches = Two_value.toggling_rate tv g in
      let logic_only =
        Spsta_core.Four_value.toggling_rate
          (Spsta_core.Analyzer.Moments.signal fv g).Spsta_core.Analyzer.Moments.probs
      in
      if logic_only > with_glitches +. 1e-6 then
        Alcotest.failf "net %s: logic-only %.4f exceeds with-glitches %.4f"
          (Circuit.net_name c g) logic_only with_glitches)
    (Circuit.topo_gates c)

let test_power_model () =
  let c = and_gate () in
  let y = Circuit.find_exn c "y" in
  let params = Power_model.default_params in
  (* y drives nothing: capacitance = wire only *)
  close "sink capacitance" params.Power_model.wire_cap (Power_model.net_capacitance params c y);
  let a = Circuit.find_exn c "a" in
  close "driver capacitance"
    (params.Power_model.wire_cap +. params.Power_model.gate_input_cap)
    (Power_model.net_capacitance params c a);
  let p1 = Power_model.dynamic_power c ~density:(fun _ -> 0.5) in
  let p2 = Power_model.dynamic_power c ~density:(fun _ -> 1.0) in
  close "power linear in density" (2.0 *. p1) p2 ~tol:1e-20;
  Alcotest.(check bool) "positive power" true (p1 > 0.0)

let test_per_net_power_sorted () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let d = Transition_density.of_input_specs c ~spec:(fun _ -> Input_spec.case_i) in
  let entries = Power_model.per_net_power c ~density:(Transition_density.density d) in
  Alcotest.(check int) "one entry per net" (Circuit.num_nets c) (List.length entries);
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted descending" true (descending entries)

let suite =
  [
    Alcotest.test_case "eq. 6 on an AND gate" `Quick test_density_and_gate;
    Alcotest.test_case "density from input specs" `Quick test_density_of_specs;
    Alcotest.test_case "XOR density adds" `Quick test_density_xor_chain;
    Alcotest.test_case "eq. 13 means = transition density" `Quick test_toggle_correlation_means;
    Alcotest.test_case "source moments" `Quick test_toggle_correlation_sources;
    Alcotest.test_case "fanout correlation" `Quick test_toggle_correlation_fanout;
    Alcotest.test_case "variance through AND" `Quick test_toggle_variance_shrinks_through_and;
    Alcotest.test_case "two-value rate = density" `Quick test_two_value_rate_matches_density;
    Alcotest.test_case "glitches only add activity" `Quick test_two_value_includes_glitches;
    Alcotest.test_case "power model" `Quick test_power_model;
    Alcotest.test_case "per-net power sorted" `Quick test_per_net_power_sorted;
  ]
