module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Transform = Spsta_netlist.Transform
module Value4 = Spsta_logic.Value4
module Logic_sim = Spsta_sim.Logic_sim
module Signal_prob = Spsta_core.Signal_prob

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let wide_gate_circuit kind fanin =
  let b = Circuit.Builder.create () in
  let names = List.init fanin (fun i -> Printf.sprintf "i%d" i) in
  List.iter (Circuit.Builder.add_input b) names;
  Circuit.Builder.add_gate b ~output:"y" kind names;
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

(* the decomposed circuit must compute the same boolean function *)
let check_equivalent original transformed =
  let sources = Circuit.sources original in
  let n = List.length sources in
  Alcotest.(check int) "same source count" n (List.length (Circuit.sources transformed));
  for bits = 0 to (1 lsl n) - 1 do
    let value_of circuit =
      let srcs = Array.of_list (Circuit.sources circuit) in
      let source_values s =
        let rec index i = if srcs.(i) = s then i else index (i + 1) in
        ((if bits land (1 lsl index 0) <> 0 then Value4.One else Value4.Zero), 0.0)
      in
      let r = Logic_sim.run circuit ~source_values in
      List.map
        (fun o -> Value4.final r.Logic_sim.values.(o))
        (Circuit.primary_outputs circuit)
    in
    if value_of original <> value_of transformed then
      Alcotest.failf "boolean mismatch at assignment %d" bits
  done

let test_decompose_nand5 () =
  let c = wide_gate_circuit Gate_kind.Nand 5 in
  let d = Transform.decompose_gates c in
  Alcotest.(check bool) "fan-in bounded" true
    (Array.for_all
       (fun g ->
         match Circuit.driver d g with
         | Circuit.Gate { inputs; _ } -> Array.length inputs <= 2
         | Circuit.Input | Circuit.Dff_output _ -> true)
       (Circuit.topo_gates d));
  check_equivalent c d

let test_decompose_all_kinds () =
  List.iter
    (fun kind ->
      let c = wide_gate_circuit kind 4 in
      check_equivalent c (Transform.decompose_gates c))
    [ Gate_kind.And; Gate_kind.Nand; Gate_kind.Or; Gate_kind.Nor; Gate_kind.Xor; Gate_kind.Xnor ]

let test_decompose_preserves_signal_prob () =
  (* the probabilistic analyses see the same function: eq. 5 results are
     identical on surviving nets *)
  let c = wide_gate_circuit Gate_kind.Nor 5 in
  let d = Transform.decompose_gates c in
  let p _ = 0.3 in
  let pc = Signal_prob.compute c ~p_source:p in
  let pd = Signal_prob.compute d ~p_source:p in
  close "output probability preserved"
    (Signal_prob.prob pc (Circuit.find_exn c "y"))
    (Signal_prob.prob pd (Circuit.find_exn d "y"))

let test_decompose_noop_on_small () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let d = Transform.decompose_gates c in
  Alcotest.(check int) "s27 is already 2-input" (Circuit.gate_count c) (Circuit.gate_count d)

let test_decompose_s344 () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let d = Transform.decompose_gates c in
  Alcotest.(check bool) "more gates after decomposition" true
    (Circuit.gate_count d >= Circuit.gate_count c);
  Alcotest.(check bool) "depth grows or stays" true (Circuit.depth d >= Circuit.depth c);
  (* spot-check equivalence by random simulation *)
  let rng = Spsta_util.Rng.create ~seed:3 in
  for _ = 1 to 200 do
    let assignment = Hashtbl.create 32 in
    List.iter
      (fun s -> Hashtbl.replace assignment (Circuit.net_name c s) (Spsta_util.Rng.bool rng))
      (Circuit.sources c);
    let run circuit =
      let source_values s =
        let v = Hashtbl.find assignment (Circuit.net_name circuit s) in
        ((if v then Value4.One else Value4.Zero), 0.0)
      in
      let r = Logic_sim.run circuit ~source_values in
      List.map (fun o -> Value4.final r.Logic_sim.values.(o)) (Circuit.primary_outputs circuit)
    in
    if run c <> run d then Alcotest.fail "random equivalence check failed"
  done

let buffer_chain_circuit () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"b1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"b2" Gate_kind.Buf [ "b1" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Not [ "b2" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_strip_buffers () =
  let c = buffer_chain_circuit () in
  let s = Transform.strip_buffers c in
  Alcotest.(check int) "only the NOT remains" 1 (Circuit.gate_count s);
  check_equivalent c s

let test_strip_keeps_interface_buffers () =
  (* a buffer driving a primary output must survive *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let s = Transform.strip_buffers c in
  Alcotest.(check int) "interface buffer kept" 1 (Circuit.gate_count s);
  Alcotest.(check bool) "output net still exists" true (Circuit.find s "y" <> None)

let test_statistics () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let stats = Transform.statistics c in
  let get key = List.assoc key stats in
  Alcotest.(check int) "gates" 10 (get "gates");
  Alcotest.(check int) "nor count" 4 (get "nor");
  Alcotest.(check int) "ff count" 3 (get "flip_flops");
  Alcotest.(check bool) "max fanout positive" true (get "max_fanout" > 0)

let suite =
  [
    Alcotest.test_case "decompose NAND5" `Quick test_decompose_nand5;
    Alcotest.test_case "decompose all kinds" `Quick test_decompose_all_kinds;
    Alcotest.test_case "decompose preserves eq. 5" `Quick test_decompose_preserves_signal_prob;
    Alcotest.test_case "decompose no-op on 2-input circuits" `Quick test_decompose_noop_on_small;
    Alcotest.test_case "decompose s344 equivalence" `Quick test_decompose_s344;
    Alcotest.test_case "strip buffers" `Quick test_strip_buffers;
    Alcotest.test_case "strip keeps interface buffers" `Quick test_strip_keeps_interface_buffers;
    Alcotest.test_case "statistics" `Quick test_statistics;
  ]
