module Truth = Spsta_logic.Truth
module Gate_kind = Spsta_logic.Gate_kind

let test_var () =
  let x1 = Truth.var ~arity:3 1 in
  Alcotest.(check bool) "x1 at 010" true (Truth.eval x1 0b010);
  Alcotest.(check bool) "x1 at 101" false (Truth.eval x1 0b101)

let test_var_invalid () =
  Alcotest.check_raises "out of range" (Invalid_argument "Truth.var: index out of range")
    (fun () -> ignore (Truth.var ~arity:2 2))

let test_const () =
  Alcotest.(check bool) "true const" true (Truth.eval (Truth.const ~arity:2 true) 0b11);
  Alcotest.(check int) "true count" 4 (Truth.count_ones (Truth.const ~arity:2 true));
  Alcotest.(check int) "false count" 0 (Truth.count_ones (Truth.const ~arity:2 false))

let test_of_gate () =
  let and2 = Truth.of_gate Gate_kind.And ~arity:2 in
  Alcotest.(check int) "AND has one minterm" 1 (Truth.count_ones and2);
  Alcotest.(check bool) "AND(1,1)" true (Truth.eval and2 0b11);
  let nor3 = Truth.of_gate Gate_kind.Nor ~arity:3 in
  Alcotest.(check int) "NOR3 has one minterm" 1 (Truth.count_ones nor3);
  Alcotest.(check bool) "NOR3(0,0,0)" true (Truth.eval nor3 0b000)

let test_connectives () =
  let a = Truth.var ~arity:2 0 and b = Truth.var ~arity:2 1 in
  Alcotest.(check bool) "and equal to gate" true
    (Truth.equal (Truth.land2 a b) (Truth.of_gate Gate_kind.And ~arity:2));
  Alcotest.(check bool) "or equal to gate" true
    (Truth.equal (Truth.lor2 a b) (Truth.of_gate Gate_kind.Or ~arity:2));
  Alcotest.(check bool) "xor equal to gate" true
    (Truth.equal (Truth.lxor2 a b) (Truth.of_gate Gate_kind.Xor ~arity:2));
  Alcotest.(check bool) "double negation" true (Truth.equal a (Truth.lnot (Truth.lnot a)))

let test_cofactor () =
  let and2 = Truth.of_gate Gate_kind.And ~arity:2 in
  (* AND|x0=1 = x1; AND|x0=0 = false *)
  Alcotest.(check bool) "positive cofactor" true
    (Truth.equal (Truth.cofactor and2 0 true) (Truth.var ~arity:2 1));
  Alcotest.(check bool) "negative cofactor" true
    (Truth.equal (Truth.cofactor and2 0 false) (Truth.const ~arity:2 false))

let test_boolean_difference () =
  let and2 = Truth.of_gate Gate_kind.And ~arity:2 in
  (* d(AND)/dx0 = x1 *)
  Alcotest.(check bool) "AND difference" true
    (Truth.equal (Truth.boolean_difference and2 0) (Truth.var ~arity:2 1));
  let xor2 = Truth.of_gate Gate_kind.Xor ~arity:2 in
  (* XOR always propagates *)
  Alcotest.(check bool) "XOR difference is 1" true
    (Truth.equal (Truth.boolean_difference xor2 0) (Truth.const ~arity:2 true))

let test_depends_on () =
  let a = Truth.var ~arity:3 0 in
  Alcotest.(check bool) "depends on own var" true (Truth.depends_on a 0);
  Alcotest.(check bool) "independent of others" false (Truth.depends_on a 2)

let test_prob_one_and () =
  let and2 = Truth.of_gate Gate_kind.And ~arity:2 in
  Alcotest.(check (float 1e-12)) "P(AND) = p1 p2" 0.15 (Truth.prob_one and2 [| 0.5; 0.3 |]);
  let or2 = Truth.of_gate Gate_kind.Or ~arity:2 in
  Alcotest.(check (float 1e-12)) "P(OR) = p1+p2-p1p2" 0.65 (Truth.prob_one or2 [| 0.5; 0.3 |])

let test_prob_one_validation () =
  let and2 = Truth.of_gate Gate_kind.And ~arity:2 in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Truth.prob_one: probability arity mismatch") (fun () ->
      ignore (Truth.prob_one and2 [| 0.5 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Truth.prob_one: probability outside [0,1]") (fun () ->
      ignore (Truth.prob_one and2 [| 0.5; 1.5 |]))

let test_max_arity_guard () =
  Alcotest.check_raises "arity cap" (Invalid_argument "Truth.create: arity out of range")
    (fun () -> ignore (Truth.create ~arity:25 (fun _ -> false)))

(* shannon expansion: f = x_i f|x_i=1 + !x_i f|x_i=0 *)
let shannon_expansion =
  let gen =
    QCheck.Gen.(
      pair (int_range 0 2) (array_size (return 8) bool))
  in
  QCheck.Test.make ~name:"Shannon expansion" ~count:300 (QCheck.make gen)
    (fun (i, table) ->
      let f = Truth.create ~arity:3 (fun a -> table.(a)) in
      let xi = Truth.var ~arity:3 i in
      let expansion =
        Truth.lor2
          (Truth.land2 xi (Truth.cofactor f i true))
          (Truth.land2 (Truth.lnot xi) (Truth.cofactor f i false))
      in
      Truth.equal f expansion)

(* prob_one on a uniform distribution is count_ones / 2^n *)
let prob_uniform =
  QCheck.Test.make ~name:"prob_one at p=1/2 counts minterms" ~count:300
    QCheck.(array_of_size (Gen.return 8) bool)
    (fun table ->
      let f = Truth.create ~arity:3 (fun a -> table.(a)) in
      let p = Truth.prob_one f [| 0.5; 0.5; 0.5 |] in
      Float.abs (p -. (float_of_int (Truth.count_ones f) /. 8.0)) < 1e-12)

(* boolean difference of an inverting gate matches its base gate *)
let diff_invariant_under_inversion =
  QCheck.Test.make ~name:"boolean difference invariant under output inversion" ~count:100
    QCheck.(pair (int_range 0 1) (array_of_size (Gen.return 4) bool))
    (fun (i, table) ->
      let f = Truth.create ~arity:2 (fun a -> table.(a)) in
      Truth.equal (Truth.boolean_difference f i) (Truth.boolean_difference (Truth.lnot f) i))

let suite =
  [
    Alcotest.test_case "var" `Quick test_var;
    Alcotest.test_case "var validation" `Quick test_var_invalid;
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "of_gate" `Quick test_of_gate;
    Alcotest.test_case "connectives" `Quick test_connectives;
    Alcotest.test_case "cofactor" `Quick test_cofactor;
    Alcotest.test_case "boolean difference" `Quick test_boolean_difference;
    Alcotest.test_case "depends_on" `Quick test_depends_on;
    Alcotest.test_case "prob_one closed forms" `Quick test_prob_one_and;
    Alcotest.test_case "prob_one validation" `Quick test_prob_one_validation;
    Alcotest.test_case "arity cap" `Quick test_max_arity_guard;
    QCheck_alcotest.to_alcotest shannon_expansion;
    QCheck_alcotest.to_alcotest prob_uniform;
    QCheck_alcotest.to_alcotest diff_invariant_under_inversion;
  ]
