module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Input_spec = Spsta_sim.Input_spec
module Two_value = Spsta_core.Two_value
module Exact_prob = Spsta_core.Exact_prob
module Signal_prob = Spsta_core.Signal_prob
module Mixture = Spsta_dist.Mixture

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let buffer_chain n =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to n do
    let name = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b ~output:name Gate_kind.Buf [ !prev ];
    prev := name
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let test_two_value_chain () =
  (* buffers propagate the t.o.p. unchanged except for the delay *)
  let c = buffer_chain 3 in
  let r = Two_value.compute c ~spec:(fun _ -> Input_spec.case_i) in
  let out = List.hd (Circuit.primary_outputs c) in
  close "rate preserved" 0.5 (Two_value.toggling_rate r out);
  close "mean = chain delay" 3.0 (Two_value.mean_arrival r out);
  close "sigma preserved" 1.0 (Two_value.stddev_arrival r out);
  let top = Two_value.top r out in
  close "record rate agrees" 0.5 top.Two_value.rate;
  close "mixture weight agrees" 0.5 (Mixture.total_weight top.Two_value.top)

let test_two_value_never_switching () =
  let c = buffer_chain 1 in
  let steady = Input_spec.make ~p_zero:0.6 ~p_one:0.4 ~p_rise:0.0 ~p_fall:0.0 () in
  let r = Two_value.compute c ~spec:(fun _ -> steady) in
  let out = List.hd (Circuit.primary_outputs c) in
  close "no activity" 0.0 (Two_value.toggling_rate r out);
  close "empty mean" 0.0 (Two_value.mean_arrival r out)

let test_exact_prob_api () =
  let c = Spsta_experiments.Benchmarks.c17 () in
  let spec _ = Input_spec.case_ii in
  let exact = Exact_prob.compute c ~spec in
  let g22 = Circuit.find_exn c "G22" in
  let p_start = Exact_prob.prob_initial_one exact g22 in
  let p_end = Exact_prob.prob_final_one exact g22 in
  close "time-average" ((p_start +. p_end) /. 2.0) (Exact_prob.signal_probability exact g22);
  Alcotest.(check bool) "probabilities in range" true
    (p_start >= 0.0 && p_start <= 1.0 && p_end >= 0.0 && p_end <= 1.0);
  (* c17 has reconvergent fanout (G11 and G16 feed two gates each):
     eq. 5 should show a measurable gap on at least one net *)
  let approx =
    Signal_prob.compute c ~p_source:(fun s -> Input_spec.signal_probability (spec s))
  in
  let worst =
    Array.fold_left
      (fun acc g -> Float.max acc (Exact_prob.independence_gap exact ~approx g))
      0.0 (Circuit.topo_gates c)
  in
  Alcotest.(check bool) "reconvergence gap observable" true (worst > 1e-4)

let test_exact_prob_sources () =
  let c = Spsta_experiments.Benchmarks.c17 () in
  let spec _ = Input_spec.case_ii in
  let exact = Exact_prob.compute c ~spec in
  let s = List.hd (Circuit.sources c) in
  (* case II: start-one = p1 + pf = 0.23; end-one = p1 + pr = 0.17 *)
  close "source start prob" 0.23 (Exact_prob.prob_initial_one exact s);
  close "source end prob" 0.17 (Exact_prob.prob_final_one exact s)

let suite =
  [
    Alcotest.test_case "two-value buffer chain" `Quick test_two_value_chain;
    Alcotest.test_case "two-value steady inputs" `Quick test_two_value_never_switching;
    Alcotest.test_case "exact-prob accessors" `Quick test_exact_prob_api;
    Alcotest.test_case "exact-prob sources" `Quick test_exact_prob_sources;
  ]
