module Value4 = Spsta_logic.Value4
open Value4

(* the paper's Table 1, transcribed literally: (a, b, a AND b, a OR b) *)
let table1 =
  [
    (Zero, Zero, Zero, Zero);
    (Zero, One, Zero, One);
    (Zero, Rising, Zero, Rising);
    (Zero, Falling, Zero, Falling);
    (One, Zero, Zero, One);
    (One, One, One, One);
    (One, Rising, Rising, One);
    (One, Falling, Falling, One);
    (Rising, Zero, Zero, Rising);
    (Rising, One, Rising, One);
    (Rising, Rising, Rising, Rising);
    (Rising, Falling, Zero, One);
    (Falling, Zero, Zero, Falling);
    (Falling, One, Falling, One);
    (Falling, Rising, Zero, One);
    (Falling, Falling, Falling, Falling);
  ]

let value = Alcotest.testable Value4.pp Value4.equal

let test_table1_and () =
  List.iter
    (fun (a, b, expected_and, _) ->
      Alcotest.check value
        (Printf.sprintf "%s AND %s" (to_string a) (to_string b))
        expected_and (land2 a b))
    table1

let test_table1_or () =
  List.iter
    (fun (a, b, _, expected_or) ->
      Alcotest.check value
        (Printf.sprintf "%s OR %s" (to_string a) (to_string b))
        expected_or (lor2 a b))
    table1

let test_not () =
  Alcotest.check value "not 0" One (lnot Zero);
  Alcotest.check value "not 1" Zero (lnot One);
  Alcotest.check value "not r" Falling (lnot Rising);
  Alcotest.check value "not f" Rising (lnot Falling)

let test_xor () =
  Alcotest.check value "r xor 0" Rising (lxor2 Rising Zero);
  Alcotest.check value "r xor 1" Falling (lxor2 Rising One);
  (* two same-direction transitions cancel through XOR (glitch) *)
  Alcotest.check value "r xor r" Zero (lxor2 Rising Rising);
  Alcotest.check value "r xor f" One (lxor2 Rising Falling)

let test_initial_final_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check value "roundtrip" v (of_initial_final (initial v) (final v)))
    all

let test_initial_final_levels () =
  Alcotest.(check bool) "rising starts low" false (initial Rising);
  Alcotest.(check bool) "rising ends high" true (final Rising);
  Alcotest.(check bool) "falling starts high" true (initial Falling);
  Alcotest.(check bool) "falling ends low" false (final Falling)

let test_is_transition () =
  Alcotest.(check (list bool)) "transitions" [ false; false; true; true ]
    (List.map is_transition all)

let test_to_of_char () =
  List.iter
    (fun v ->
      match of_char (to_string v).[0] with
      | Some v' -> Alcotest.check value "char roundtrip" v v'
      | None -> Alcotest.fail "char roundtrip failed")
    all;
  Alcotest.(check bool) "unknown char" true (of_char 'x' = None)

let test_compare_total_order () =
  let sorted = List.sort compare [ Falling; One; Rising; Zero ] in
  Alcotest.(check (list string)) "stable order" [ "0"; "1"; "r"; "f" ]
    (List.map to_string sorted)

let and_commutes =
  let gen = QCheck.Gen.oneofl all in
  QCheck.Test.make ~name:"value4 AND/OR commute" ~count:100
    (QCheck.make (QCheck.Gen.pair gen gen))
    (fun (a, b) -> equal (land2 a b) (land2 b a) && equal (lor2 a b) (lor2 b a))

let de_morgan =
  let gen = QCheck.Gen.oneofl all in
  QCheck.Test.make ~name:"value4 De Morgan" ~count:100
    (QCheck.make (QCheck.Gen.pair gen gen))
    (fun (a, b) -> equal (lnot (land2 a b)) (lor2 (lnot a) (lnot b)))

let suite =
  [
    Alcotest.test_case "paper Table 1: AND" `Quick test_table1_and;
    Alcotest.test_case "paper Table 1: OR" `Quick test_table1_or;
    Alcotest.test_case "NOT" `Quick test_not;
    Alcotest.test_case "XOR no-glitch semantics" `Quick test_xor;
    Alcotest.test_case "initial/final roundtrip" `Quick test_initial_final_roundtrip;
    Alcotest.test_case "initial/final levels" `Quick test_initial_final_levels;
    Alcotest.test_case "is_transition" `Quick test_is_transition;
    Alcotest.test_case "char conversions" `Quick test_to_of_char;
    Alcotest.test_case "compare is a total order" `Quick test_compare_total_order;
    QCheck_alcotest.to_alcotest and_commutes;
    QCheck_alcotest.to_alcotest de_morgan;
  ]
