(* Process-variation extension: variational gate delays across the
   analyzers and the Monte Carlo simulator. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Input_spec = Spsta_sim.Input_spec
module Logic_sim = Spsta_sim.Logic_sim
module Monte_carlo = Spsta_sim.Monte_carlo
module A = Spsta_core.Analyzer.Moments
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let buffer_chain n =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to n do
    let name = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b ~output:name Gate_kind.Buf [ !prev ];
    prev := name
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let always_rising =
  Input_spec.make ~p_zero:0.0 ~p_one:0.0 ~p_rise:1.0 ~p_fall:0.0
    ~rise_arrival:(Spsta_dist.Normal.make ~mu:0.0 ~sigma:0.0)
    ()

(* a 4-buffer chain with sigma_d per gate: output variance = 4 sigma_d^2 *)
let test_spsta_chain_variance () =
  let c = buffer_chain 4 in
  let r = A.analyze ~delay_sigma:0.3 c ~spec:(fun _ -> always_rising) in
  let out = List.hd (Circuit.primary_outputs c) in
  let mu, sigma, p = A.transition_stats (A.signal r out) `Rise in
  close "certain transition" 1.0 p ~tol:1e-12;
  close "mean unchanged" 4.0 mu ~tol:1e-9;
  close "accumulated process sigma" (0.3 *. sqrt 4.0) sigma ~tol:1e-9

let test_mc_chain_variance () =
  let c = buffer_chain 4 in
  let r =
    Monte_carlo.simulate ~delay_sigma:0.3 ~runs:40_000 ~seed:3 c ~spec:(fun _ -> always_rising)
  in
  let out = List.hd (Circuit.primary_outputs c) in
  let s = Monte_carlo.stats r out in
  close "MC mean" 4.0 (Stats.acc_mean s.Monte_carlo.rise_times) ~tol:0.01;
  close "MC sigma" 0.6 (Stats.acc_stddev s.Monte_carlo.rise_times) ~tol:0.01

let test_zero_sigma_matches_deterministic () =
  let c = buffer_chain 3 in
  let spec _ = Input_spec.case_i in
  let a = A.analyze ~delay_sigma:0.0 c ~spec in
  let b = A.analyze c ~spec in
  let out = List.hd (Circuit.primary_outputs c) in
  let am, asg, _ = A.transition_stats (A.signal a out) `Rise in
  let bm, bsg, _ = A.transition_stats (A.signal b out) `Rise in
  close "means equal" bm am;
  close "sigmas equal" bsg asg

let test_delay_of_override () =
  let c = buffer_chain 2 in
  let out = List.hd (Circuit.primary_outputs c) in
  let delays = fun g -> if Circuit.level c g = 1 then 0.5 else 2.0 in
  let r =
    Logic_sim.run ~delay_of:delays c ~source_values:(fun _ -> (Value4.Rising, 0.0))
  in
  close "per-gate delays" 2.5 r.Logic_sim.times.(out)

let test_variation_widens_mc () =
  (* with input statistics fixed, process variation must widen the
     observed arrival spread on a real circuit *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let flat = Monte_carlo.simulate ~runs:8000 ~seed:5 c ~spec in
  let wide = Monte_carlo.simulate ~delay_sigma:0.5 ~runs:8000 ~seed:5 c ~spec in
  let g17 = Circuit.find_exn c "G17" in
  let sd r = Stats.acc_stddev (Monte_carlo.stats r g17).Monte_carlo.rise_times in
  Alcotest.(check bool) "variation widens spread" true (sd wide > sd flat)

let test_spsta_tracks_mc_with_variation () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let spsta = A.analyze ~delay_sigma:0.3 c ~spec in
  let mc = Monte_carlo.simulate ~delay_sigma:0.3 ~runs:30_000 ~seed:7 c ~spec in
  let g13 = Circuit.find_exn c "G13" in
  let mu, sigma, _ = A.transition_stats (A.signal spsta g13) `Rise in
  let s = Monte_carlo.stats mc g13 in
  close "variational mean vs MC" (Stats.acc_mean s.Monte_carlo.rise_times) mu ~tol:0.1;
  close "variational sigma vs MC" (Stats.acc_stddev s.Monte_carlo.rise_times) sigma ~tol:0.1

let suite =
  [
    Alcotest.test_case "SPSTA chain variance" `Quick test_spsta_chain_variance;
    Alcotest.test_case "MC chain variance" `Slow test_mc_chain_variance;
    Alcotest.test_case "zero sigma = deterministic" `Quick test_zero_sigma_matches_deterministic;
    Alcotest.test_case "per-gate delay override" `Quick test_delay_of_override;
    Alcotest.test_case "variation widens MC spread" `Quick test_variation_widens_mc;
    Alcotest.test_case "SPSTA tracks MC under variation" `Slow test_spsta_tracks_mc_with_variation;
  ]
