module Circuit = Spsta_netlist.Circuit
module Verilog_io = Spsta_netlist.Verilog_io
module Bench_io = Spsta_netlist.Bench_io
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4

let sample_verilog =
  "// a tiny sequential design\n\
   module tiny (a, b, y);\n\
  \  input a, b;\n\
  \  output y;\n\
  \  wire n1, n2, q;\n\
  \  /* the combinational core */\n\
  \  nand N1 (n1, a, b);\n\
  \  not (n2, n1);\n\
  \  dff FF (q, n2);\n\
  \  or OR_0 (y, n2, q);\n\
   endmodule\n"

let test_parse_sample () =
  let c = Verilog_io.parse_string sample_verilog in
  Alcotest.(check string) "module name" "tiny" (Circuit.name c);
  Alcotest.(check int) "inputs" 2 (List.length (Circuit.primary_inputs c));
  Alcotest.(check int) "outputs" 1 (List.length (Circuit.primary_outputs c));
  Alcotest.(check int) "dffs" 1 (List.length (Circuit.dffs c));
  Alcotest.(check int) "gates" 3 (Circuit.gate_count c);
  Alcotest.(check int) "nand" 1 (Circuit.count_gates_of_kind c Gate_kind.Nand)

let test_roundtrip_s27 () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let c' = Verilog_io.parse_string (Verilog_io.to_string c) in
  Alcotest.(check int) "nets" (Circuit.num_nets c) (Circuit.num_nets c');
  Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
  Alcotest.(check int) "depth" (Circuit.depth c) (Circuit.depth c');
  Alcotest.(check int) "dffs" (List.length (Circuit.dffs c)) (List.length (Circuit.dffs c'))

(* cross-format: the Verilog roundtrip computes the same functions as
   the original .bench netlist on every assignment of c17 *)
let test_cross_format_equivalence () =
  let original = Spsta_experiments.Benchmarks.c17 () in
  let roundtrip = Verilog_io.parse_string (Verilog_io.to_string original) in
  let sources = Array.of_list (Circuit.sources original) in
  for bits = 0 to (1 lsl Array.length sources) - 1 do
    let outputs circuit =
      let srcs = Array.of_list (Circuit.sources circuit) in
      let source_values s =
        let rec index i = if srcs.(i) = s then i else index (i + 1) in
        ((if bits land (1 lsl index 0) <> 0 then Value4.One else Value4.Zero), 0.0)
      in
      let r = Spsta_sim.Logic_sim.run circuit ~source_values in
      List.map
        (fun o -> Value4.final r.Spsta_sim.Logic_sim.values.(o))
        (Circuit.primary_outputs circuit)
    in
    if outputs original <> outputs roundtrip then Alcotest.failf "mismatch at %d" bits
  done

let test_generated_roundtrip () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let c' = Verilog_io.parse_string (Verilog_io.to_string c) in
  Alcotest.(check int) "nets preserved" (Circuit.num_nets c) (Circuit.num_nets c');
  Alcotest.(check int) "depth preserved" (Circuit.depth c) (Circuit.depth c')

let expect_error ~line text =
  match Verilog_io.parse_string text with
  | (_ : Circuit.t) -> Alcotest.fail "expected Parse_error"
  | exception Verilog_io.Parse_error { line = l; _ } -> Alcotest.(check int) "error line" line l

let test_parse_errors () =
  expect_error ~line:1 "garbage\n";
  expect_error ~line:2 "module m (a);\n  frobnicate (a);\nendmodule\n";
  expect_error ~line:3 "module m (a);\n  input a\nendmodule\n";
  expect_error ~line:3 "module m (a, y);\n  input a;\n  dff (y, a, a);\nendmodule\n";
  expect_error ~line:1 "module m @;\n"

let test_unterminated_comment () =
  expect_error ~line:2 "module m (a);\n/* no end\n"

let test_instance_names_optional () =
  let with_names = "module m (a, y);\n input a;\n output y;\n not INV_1 (y, a);\nendmodule\n" in
  let without = "module m (a, y);\n input a;\n output y;\n not (y, a);\nendmodule\n" in
  let c1 = Verilog_io.parse_string with_names in
  let c2 = Verilog_io.parse_string without in
  Alcotest.(check int) "same gates" (Circuit.gate_count c1) (Circuit.gate_count c2)

let test_write_parse_file () =
  let path = Filename.temp_file "spsta_verilog" ".v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Verilog_io.write_file (Spsta_experiments.Benchmarks.c17 ()) path;
      let c = Verilog_io.parse_file path in
      Alcotest.(check int) "gates" 6 (Circuit.gate_count c))

let test_bench_to_verilog_to_bench () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let via_verilog = Verilog_io.parse_string (Verilog_io.to_string c) in
  let back = Bench_io.parse_string ~name:"s27" (Bench_io.to_string via_verilog) in
  Alcotest.(check int) "full format cycle preserves structure" (Circuit.num_nets c)
    (Circuit.num_nets back)

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "roundtrip s27" `Quick test_roundtrip_s27;
    Alcotest.test_case "cross-format equivalence" `Quick test_cross_format_equivalence;
    Alcotest.test_case "generated roundtrip" `Quick test_generated_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "optional instance names" `Quick test_instance_names_optional;
    Alcotest.test_case "write/parse file" `Quick test_write_parse_file;
    Alcotest.test_case "bench -> verilog -> bench" `Quick test_bench_to_verilog_to_bench;
  ]
