(* Benchmark harness: regenerates every table and figure of the paper
   (printed as the paper's rows/series), then times the competing
   analyses with Bechamel.

   Sections, in order:
     TABLE1   four-value logic tables
     FIG2     SUM and MAX basic operations
     FIG3     AND-gate signal probability / toggling rate
     FIG4     MAX vs WEIGHTED SUM distributions
     TABLE2   critical-path statistics, input cases I and II
     FIG1     chip timing distribution vs STA/SSTA views
     TABLE3   wall-clock runtimes per circuit
     SUMMARY  aggregate accuracy vs Monte Carlo (the paper's headline)
     ABLATION t.o.p. backend; correlation handling; process variation
     EXTENSION critical paths; sequential fixed point; chip delay/yield
     ABLATION interconnect loading; cell library; multiple-input
              switching; enclosure comparison (STA / Frechet / affine)
     SCALING  runtime growth up to ~10k-gate profiles
     BECHAMEL micro-benchmarks (one Test.make per table/figure path)

   SPSTA_BENCH_RUNS overrides the Monte Carlo run count (default 10000).

   `--json [PATH]` switches to the machine-readable mode instead: each
   circuit (SPSTA_BENCH_CIRCUITS, comma-separated suite names) is timed
   across the competing engines and the wall-clock results — including
   optimised-vs-baseline grid-kernel and sequential-vs-parallel speedup
   ratios — are written as one JSON document (default BENCH_spsta.json;
   schema spsta-bench/5, documented in doc/perf.md).  Two flags extend
   the json mode with regression tracking (doc/perf.md):

     --history FILE    append a per-commit record of the tracked
                       wall-clock metrics to FILE (JSONL, append-only)
     --compare BASE    compare the fresh results against the BASE
                       document and exit nonzero on any wall-time
                       regression beyond the threshold
     --threshold FRAC  regression threshold as a fraction (default 0.15)

   `--compare BASE CURRENT [--threshold FRAC]` compares two existing
   documents without running anything. *)

module Experiments = Spsta_experiments
module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Monte_carlo = Spsta_sim.Monte_carlo
module Ssta = Spsta_ssta.Ssta
module Json = Spsta_server.Json

let runs =
  match Sys.getenv_opt "SPSTA_BENCH_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | Some _ | None -> 10_000 )
  | None -> 10_000

let seed = 42

let section title body =
  Printf.printf "==================== %s ====================\n%!" title;
  body ();
  print_newline ()

let ablation () =
  (* moment backend vs discretised backend: do the two t.o.p.
     representations agree on endpoint moments? *)
  let module B = (val Spsta_core.Top.discrete_backend ~dt:0.05 ()) in
  let module Disc = Analyzer.Make (B) in
  let compare_circuit name =
    let circuit = Experiments.Benchmarks.load name in
    let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
    let moments = Analyzer.Moments.analyze circuit ~spec in
    let disc = Disc.analyze circuit ~spec in
    Printf.printf "%s (endpoint rise stats, moment vs discretised backend):\n" name;
    List.iter
      (fun e ->
        let m_mu, m_sig, m_p =
          Analyzer.Moments.transition_stats (Analyzer.Moments.signal moments e) `Rise
        in
        let d_mu, d_sig, d_p = Disc.transition_stats (Disc.signal disc e) `Rise in
        Printf.printf
          "  %-8s moment: mu %6.3f sig %6.3f P %5.3f | grid: mu %6.3f sig %6.3f P %5.3f\n"
          (Circuit.net_name circuit e) m_mu m_sig m_p d_mu d_sig d_p)
      (Circuit.endpoints circuit)
  in
  compare_circuit "s27";
  compare_circuit "s344"

let correlation_ablation () =
  (* reconvergent-fanout signal probability: eq. 5 vs first-order
     correction vs BDD-exact, on s27 *)
  let circuit = Experiments.Benchmarks.s27 () in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let p_src s = Spsta_sim.Input_spec.signal_probability (spec s) in
  let eq5 = Spsta_core.Signal_prob.compute circuit ~p_source:p_src in
  let corr = Spsta_core.Correlated_prob.compute circuit ~p_source:p_src in
  let exact = Spsta_core.Exact_prob.compute circuit ~spec in
  let sum5 = ref 0.0 and sumc = ref 0.0 and n = ref 0 in
  Array.iter
    (fun g ->
      let reference = Spsta_core.Exact_prob.signal_probability exact g in
      sum5 := !sum5 +. Float.abs (Spsta_core.Signal_prob.prob eq5 g -. reference);
      sumc := !sumc +. Float.abs (Spsta_core.Correlated_prob.prob corr g -. reference);
      incr n)
    (Circuit.topo_gates circuit);
  Printf.printf
    "s27 signal probability, mean |error| vs BDD-exact:\n\
    \  eq. 5 (independence):        %.5f\n\
    \  eq. 15-17 (1st-order corr.): %.5f\n"
    (!sum5 /. float_of_int !n)
    (!sumc /. float_of_int !n)

let process_variation_ablation () =
  (* sweep per-gate delay sigma: SPSTA's predicted endpoint spread vs MC,
     demonstrating that input-statistics variance dominates moderate
     process variance (the paper's motivation point 2) *)
  let circuit = Experiments.Benchmarks.load "s344" in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  Printf.printf "s344, case I, rising critical endpoint under process variation:\n";
  Printf.printf "  %-8s %-22s %-22s\n" "sigma_d" "SPSTA mu/sigma" "MC mu/sigma";
  List.iter
    (fun delay_sigma ->
      let spsta = Analyzer.Moments.analyze ~delay_sigma circuit ~spec in
      let mc = Monte_carlo.simulate ~delay_sigma ~runs:(min runs 5000) ~seed circuit ~spec in
      let e = Analyzer.Moments.critical_endpoint spsta `Rise in
      let s_mu, s_sig, _ = Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) `Rise in
      let stats = Monte_carlo.stats mc e in
      let m_mu = Spsta_util.Stats.acc_mean stats.Monte_carlo.rise_times in
      let m_sig = Spsta_util.Stats.acc_stddev stats.Monte_carlo.rise_times in
      Printf.printf "  %-8.2f %8.3f / %-11.3f %8.3f / %-11.3f\n" delay_sigma s_mu s_sig m_mu m_sig)
    [ 0.0; 0.1; 0.2; 0.4 ]

let paths_section () =
  let circuit = Experiments.Benchmarks.load "s344" in
  let model =
    Spsta_variation.Param_model.create ~sigma_global:0.05 ~sigma_spatial:0.05 ~sigma_random:0.05
      ~grid:4 ()
  in
  let placement = Spsta_variation.Param_model.place model circuit in
  let paths = Spsta_paths.Path_enum.enumerate ~k:6 circuit in
  let stats = Spsta_paths.Path_stats.analyze model placement circuit paths in
  let crit = Spsta_paths.Path_stats.criticality ~samples:(min runs 20_000) stats in
  print_string (Spsta_paths.Path_stats.render circuit ~criticality:crit stats)

let sequential_section () =
  let circuit = Experiments.Benchmarks.s27 () in
  let pi_spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let fp = Spsta_core.Sequential.fixed_point circuit ~pi_spec in
  let sim = Spsta_sim.Sequential_sim.simulate ~cycles:runs ~seed circuit ~pi_spec in
  Printf.printf "s27 steady-state flip-flop statistics (fixed point, %d iterations, %s):\n"
    (Spsta_core.Sequential.iterations fp)
    (if Spsta_core.Sequential.converged fp then "converged" else "NOT converged");
  List.iter
    (fun (qnet, _) ->
      let predicted = Spsta_core.Sequential.ff_final_one fp qnet in
      let s = Spsta_sim.Sequential_sim.stats sim qnet in
      let observed = Monte_carlo.p_one s +. Monte_carlo.p_fall s in
      Printf.printf "  %-6s q_analytic %.4f | q_simulated %.4f\n"
        (Circuit.net_name circuit qnet) predicted observed)
    (Circuit.dffs circuit)

let chip_delay_section () =
  let circuit = Experiments.Benchmarks.load "s344" in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let r = Spsta_core.Chip_delay.compute circuit ~spec in
  Printf.printf
    "s344 chip delay from SPSTA t.o.p. functions (cf. Fig. 1):\n\
    \  idle-cycle probability %.4f, mean %.3f, sigma %.3f\n"
    (Spsta_core.Chip_delay.p_idle r) (Spsta_core.Chip_delay.mean r)
    (Spsta_core.Chip_delay.stddev r);
  List.iter
    (fun target ->
      Printf.printf "  clock for %.1f%% yield: %.3f\n" (100.0 *. target)
        (Spsta_core.Chip_delay.clock_for_yield r target))
    [ 0.9; 0.99; 0.999 ]

let interconnect_ablation () =
  (* unit delays vs Elmore-loaded stage delays on s344, case I *)
  let circuit = Experiments.Benchmarks.load "s344" in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let wires = Spsta_interconnect.Wire_model.build circuit in
  let delay_of = Spsta_interconnect.Wire_model.stage_delay wires in
  let unit_r = Analyzer.Moments.analyze circuit ~spec in
  let loaded_r = Analyzer.Moments.analyze ~delay_of circuit ~spec in
  let e = Analyzer.Moments.critical_endpoint loaded_r `Rise in
  let u_mu, u_sig, _ = Analyzer.Moments.transition_stats (Analyzer.Moments.signal unit_r e) `Rise in
  let l_mu, l_sig, _ =
    Analyzer.Moments.transition_stats (Analyzer.Moments.signal loaded_r e) `Rise
  in
  Printf.printf
    "s344 critical rise endpoint %s:\n\
    \  unit delays:       mu %.3f sigma %.3f\n\
    \  Elmore wire loads: mu %.3f sigma %.3f (total wire cap %.1f)\n"
    (Circuit.net_name circuit e) u_mu u_sig l_mu l_sig
    (Spsta_interconnect.Wire_model.total_wire_capacitance wires)

let cell_library_ablation () =
  (* unit-delay model vs the characterised library, SPSTA vs MC *)
  let circuit = Experiments.Benchmarks.s27 () in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let lib = Spsta_netlist.Cell_library.default in
  let delay_rf = Spsta_netlist.Cell_library.gate_delays lib circuit in
  let spsta = Analyzer.Moments.analyze ~delay_rf circuit ~spec in
  let rng = Spsta_util.Rng.create ~seed in
  let g17 = Circuit.find_exn circuit "G17" in
  let acc = Spsta_util.Stats.acc_create () in
  let n_rise = ref 0 in
  let trials = min runs 10_000 in
  for _ = 1 to trials do
    let r =
      Spsta_sim.Logic_sim.run ~delay_rf circuit
        ~source_values:(fun s -> Spsta_sim.Input_spec.sample rng (spec s))
    in
    match r.Spsta_sim.Logic_sim.values.(g17) with
    | Spsta_logic.Value4.Rising ->
      incr n_rise;
      Spsta_util.Stats.acc_add acc r.Spsta_sim.Logic_sim.times.(g17)
    | Spsta_logic.Value4.Falling | Spsta_logic.Value4.Zero | Spsta_logic.Value4.One -> ()
  done;
  let mu, sigma, p = Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta g17) `Rise in
  Printf.printf
    "s27 G17 rising under the characterised cell library (NAND/NOR skewed, fan-in loaded):\n\
    \  SPSTA: P %.3f mu %.3f sigma %.3f\n\
    \  MC:    P %.3f mu %.3f sigma %.3f\n"
    p mu sigma
    (float_of_int !n_rise /. float_of_int trials)
    (Spsta_util.Stats.acc_mean acc) (Spsta_util.Stats.acc_stddev acc)

let mis_ablation () =
  (* the paper's motivating claim: ignoring multiple-input switching
     underestimates mean gate delay; quantify on s386 with a 20% MAX
     slowdown / 20% MIN speedup model applied to both SPSTA and MC *)
  let circuit = Experiments.Benchmarks.load "s386" in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  (* slowdown-only model (toward-non-controlling simultaneity): isolates
     the paper's "ignoring MIS underestimates the mean" direction *)
  let model = Spsta_logic.Mis_model.make ~max_slowdown:0.25 ~min_speedup:0.0 () in
  let endpoints = Circuit.endpoints circuit in
  let report label ?mis () =
    let spsta = Analyzer.Moments.analyze ?mis circuit ~spec in
    let mc = Monte_carlo.simulate ?mis ~runs:(min runs 5000) ~seed circuit ~spec in
    (* aggregate over endpoints with enough MC observations *)
    let n = ref 0 and s_sum = ref 0.0 and m_sum = ref 0.0 in
    List.iter
      (fun e ->
        let stats = Monte_carlo.stats mc e in
        if stats.Monte_carlo.count_rise >= 100 then begin
          incr n;
          let s_mu, _, _ =
            Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) `Rise
          in
          s_sum := !s_sum +. s_mu;
          m_sum := !m_sum +. Spsta_util.Stats.acc_mean stats.Monte_carlo.rise_times
        end)
      endpoints;
    Printf.printf "  %-12s mean rise arrival over %d endpoints: SPSTA %.3f | MC %.3f\n" label !n
      (!s_sum /. float_of_int !n) (!m_sum /. float_of_int !n)
  in
  Printf.printf "s386 with and without a 25%% MAX-slowdown MIS model:\n";
  report "no MIS" ();
  report "MIS on" ~mis:model ()

let enclosure_ablation () =
  (* the paper's Fig. 1 pessimism theme, quantified three ways on s344:
     corner STA, Frechet cdf bounds (ref [1]) and affine interval
     analysis (refs [10, 20]) against the true MC chip-delay range *)
  let circuit = Experiments.Benchmarks.load "s344" in
  let sta =
    Spsta_ssta.Sta.analyze ~input_bounds:{ Spsta_ssta.Sta.earliest = -3.0; latest = 3.0 } circuit
  in
  let frechet =
    Spsta_ssta.Bounds_ssta.quantile_bounds
      (Spsta_ssta.Bounds_ssta.chip_band (Spsta_ssta.Bounds_ssta.analyze circuit))
      0.99
  in
  let affine = Spsta_variation.Interval_sta.analyze ~delay_radius:0.1 circuit in
  let alo, ahi = Spsta_variation.Interval_sta.chip_interval affine in
  let nlo, nhi = Spsta_variation.Interval_sta.naive_chip_interval affine in
  let fig = Experiments.Fig1.run ~runs:(min runs 5000) ~seed ~circuit ~case:Experiments.Workloads.Case_i () in
  Printf.printf
    "s344 chip-delay enclosures (inputs +-3, gate delay 1 +- 0.1 where modelled):\n\
    \  corner STA bound:            [%.2f, %.2f]\n\
    \  Frechet 99%%-quantile band:   [%.2f, %.2f]\n\
    \  affine interval (correlated): [%.2f, %.2f]\n\
    \  naive interval:              [%.2f, %.2f]\n\
    \  actual MC distribution:      mean %.2f sigma %.2f (input-statistics aware)\n"
    (List.fold_left
       (fun acc e -> Float.min acc (Spsta_ssta.Sta.bounds sta e).Spsta_ssta.Sta.earliest)
       infinity (Circuit.endpoints circuit))
    (Spsta_ssta.Sta.max_latest sta)
    (fst frechet) (snd frechet) alo ahi nlo nhi
    (Spsta_util.Stats.mean fig.Experiments.Fig1.mc_delays)
    (Spsta_util.Stats.stddev fig.Experiments.Fig1.mc_delays)

let scaling_section () =
  (* runtime growth with circuit size (the paper's Table 3 claim that
     SPSTA stays linear in the netlist): larger ISCAS'89 profiles with a
     reduced MC budget *)
  let table =
    Spsta_util.Table.create
      ~headers:[ "test"; "gates"; "SPSTA (s)"; "SSTA (s)"; "MC1000 (s)" ]
  in
  let time f =
    let start = Sys.time () in
    let _ = f () in
    Sys.time () -. start
  in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  List.iter
    (fun name ->
      let circuit = Experiments.Benchmarks.load name in
      let t_spsta = time (fun () -> Analyzer.Moments.analyze circuit ~spec) in
      let t_ssta = time (fun () -> Ssta.analyze circuit) in
      let t_mc = time (fun () -> Monte_carlo.simulate ~runs:1000 ~seed circuit ~spec) in
      Spsta_util.Table.add_row table
        [ name; string_of_int (Circuit.gate_count circuit); Printf.sprintf "%.4f" t_spsta;
          Printf.sprintf "%.4f" t_ssta; Printf.sprintf "%.4f" t_mc ])
    [ "s344"; "s1238"; "s5378"; "s9234"; "s15850" ];
  print_endline (Spsta_util.Table.render table)

let bechamel_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  let circuit = Experiments.Benchmarks.load "s344" in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      stage "table2/spsta-s344" (fun () -> ignore (Analyzer.Moments.analyze circuit ~spec));
      stage "table2+table3/ssta-s344" (fun () -> ignore (Ssta.analyze circuit));
      stage "table2+table3/mc100-s344" (fun () ->
          ignore (Monte_carlo.simulate ~runs:100 ~seed circuit ~spec));
      stage "table1/value4-tables" (fun () -> ignore (Experiments.Table1.render ()));
      stage "fig1/sta-ssta-views" (fun () ->
          ignore (Experiments.Fig1.run ~runs:50 ~seed ~case:Experiments.Workloads.Case_i ()));
      stage "fig2/sum-max-ops" (fun () -> ignore (Experiments.Fig2.run ()));
      stage "fig3/and-gate" (fun () -> ignore (Experiments.Fig3.run ()));
      stage "fig4/weighted-sum" (fun () -> ignore (Experiments.Fig4.run ()));
      stage "summary/exact-prob-s27" (fun () ->
          ignore (Spsta_core.Exact_prob.compute (Experiments.Benchmarks.s27 ()) ~spec));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  let report test =
    let stats = analyze (benchmark test) in
    Hashtbl.iter
      (fun name result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      stats
  in
  List.iter report tests

(* ---------- machine-readable mode ---------- *)

let wall f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. start, v)

(* Noise-resistant wall clock.  Sub-millisecond analyses (SSTA on the
   small circuits runs in tens of microseconds) are hopeless to time
   single-shot: timer granularity and scheduler noise dominate.  A
   calibration run picks a repetition count n so one measurement batch
   takes at least [min_batch_s]; the reported time is the minimum over
   at least three batches — more until the batches have spanned
   [measure_budget_s], capped at [max_batches] — divided by n.  Only
   runs whose calibration alone
   exceeds [batch_budget_s] stay single-sample (minutes-long Monte
   Carlo sweeps must not quadruple) — in particular the multi-second
   scale sweeps, which used to report one cold sample carrying CSR
   construction and first-touch page faults, are min-of-3 warm batches
   now.  The total number of timed calls behind each figure is recorded
   next to every entry in the JSON ([timing_n]; 1 flags a
   single-sample entry).

   The [Gc.compact] before calibration is not cosmetic: the
   allocation-heavy entries (the untruncated grid baseline above all)
   are strongly coupled to the heap state the process accumulated
   before the measurement — the same s1238 grid sweep was observed at
   0.13 s after one workload history and 1.17 s after another, a 9x
   swing with identical work.  Compacting first pins every measurement
   to the same (fresh-heap) starting point, which is what makes
   figures comparable across processes, and hence across commits — the
   whole point of the tracked history and the [--compare] gate. *)
let min_batch_s = 0.010
let batch_budget_s = 3.0
let measure_budget_s = 1.0
let max_batches = 10

(* returns (seconds per call, value of the calibration run, total timed calls) *)
let wall_best f =
  Gc.compact ();
  let t0, v = wall f in
  if t0 >= batch_budget_s then (t0, v, 1)
  else begin
    let n =
      if t0 >= min_batch_s then 1
      else int_of_float (ceil (min_batch_s /. Float.max t0 1e-7))
    in
    let batch () =
      Gc.compact ();
      let start = Unix.gettimeofday () in
      for _ = 1 to n do
        ignore (f ())
      done;
      (Unix.gettimeofday () -. start) /. float_of_int n
    in
    (* At least three batches, then keep going until the batches have
       spanned [measure_budget_s] of measured time (or [max_batches]):
       noise on a shared host arrives in sustained bursts, and a
       minimum taken over a longer window is far more likely to catch
       a quiet stretch than three back-to-back samples. *)
    let best = ref infinity in
    let batches = ref 0 in
    let spent = ref 0.0 in
    while
      !batches < 3
      || (!spent < measure_budget_s && !batches < max_batches)
    do
      let t = batch () in
      incr batches;
      spent := !spent +. (t *. float_of_int n);
      if t < !best then best := t
    done;
    (!best, v, !batches * n)
  end

(* Sizing workload.  Two measurements feed the [sizing] JSON section:

   - incremental-vs-full: from a fully analysed sized circuit, the
     dirty-cone [Ssta.update_rf] on one resized gate (averaged over the
     top candidate gates the sizer's inner loop actually trials)
     against a full [Ssta.analyze_rf] from the same state — the
     speedup the sizer banks on every move evaluation;
   - the greedy sizer itself, recording what it bought (objective and
     area before and after, area recovered by downsizing).  The run
     targets a 20% objective improvement rather than minimising to
     convergence: that bounds the move count, and the slack between the
     target and the best objective reached is what lets the downsize
     phase recover area — an unconstrained run pins the limit to the
     optimum and phase B can rarely move. *)
let sizer_bench_moves = 200
let sizer_bench_target_frac = 0.8

let json_bench_sizing circuit =
  let module Sized = Spsta_netlist.Sized_library in
  let module Transform = Spsta_netlist.Transform in
  let module Criticality = Spsta_opt.Criticality in
  let module Sizer = Spsta_opt.Sizer in
  let module Crit_bounds = Spsta_analysis.Crit_bounds in
  let sized = Sized.default in
  let asg = Sized.initial circuit in
  let delay_rf id = Sized.delay_rf sized circuit asg id in
  let t_full, r0, n_full = wall_best (fun () -> Ssta.analyze_rf ~delay_rf circuit) in
  (* trial gates = what the sizer's inner loop evaluates: the top-ranked
     critical gates with headroom to upsize *)
  let crit = Criticality.of_ssta r0 in
  let candidates =
    let rec take k = function
      | (g, _) :: rest when k > 0 -> g :: take (k - 1) rest
      | _ -> []
    in
    take Sizer.default_config.Sizer.candidates (Criticality.ranked crit)
  in
  let n_cands = List.length candidates in
  let t_incr_all, _, n_incr =
    wall_best (fun () ->
        List.iter
          (fun g ->
            let dirty = Transform.resize_gate sized circuit asg g ~size:1 in
            let r = Ssta.update_rf ~delay_rf r0 ~changed:dirty in
            ignore (Transform.resize_gate sized circuit asg g ~size:0);
            ignore r)
          candidates)
  in
  let t_incr = if n_cands > 0 then t_incr_all /. float_of_int n_cands else t_incr_all in
  let target =
    sizer_bench_target_frac *. Criticality.quantile crit Sizer.default_config.Sizer.quantile
  in
  let config =
    { Sizer.default_config with Sizer.max_moves = sizer_bench_moves; target = Some target }
  in
  (* static criticality pruning (lib/analysis): gates no delay
     realisation within the size family's bounds can make critical are
     rejected before phase A spends a trial on them *)
  let t_prune, bounds =
    wall (fun () ->
        Crit_bounds.run
          ~delay_bounds:(fun id -> Crit_bounds.bounds_of_sized sized circuit id)
          circuit)
  in
  let never_critical = Crit_bounds.num_never_critical bounds in
  let t_sizer, report, n_sizer =
    wall_best (fun () ->
        Sizer.run ~config ~prune:(Crit_bounds.never_critical bounds) sized circuit)
  in
  let up_moves, down_moves =
    List.fold_left
      (fun (u, d) (m : Sizer.move) ->
        match m.Sizer.direction with `Up -> (u + 1, d) | `Down -> (u, d + 1))
      (0, 0) report.Sizer.moves
  in
  (* area the downsizing phase clawed back after the upsizing peak *)
  let area_recovered =
    let prev = ref report.Sizer.area_before in
    List.fold_left
      (fun acc (m : Sizer.move) ->
        let delta = !prev -. m.Sizer.area_after in
        prev := m.Sizer.area_after;
        match m.Sizer.direction with `Down -> acc +. delta | `Up -> acc)
      0.0 report.Sizer.moves
  in
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  Printf.eprintf
    "           sizing: full %.5fs incr %.6fs (x%.1f) sizer %.3fs (%d up, %d down; \
%d never-critical, %d pruned)\n%!"
    t_full t_incr (ratio t_full t_incr) t_sizer up_moves down_moves never_critical
    report.Sizer.pruned;
  (* Power-recovery workload: the same timing target approached from the
     all-largest assignment, where phase A has nothing to upsize and
     phase B alone claws the area back. *)
  let recovery =
    let from_largest = Sized.uniform sized circuit ~size:(Sized.num_sizes sized - 1) in
    let r = Sizer.run ~config ~initial:from_largest sized circuit in
    let downs =
      List.fold_left
        (fun d (m : Sizer.move) -> match m.Sizer.direction with `Down -> d + 1 | `Up -> d)
        0 r.Sizer.moves
    in
    Printf.eprintf
      "           recovery: area %.1f -> %.1f (%d down moves, objective %.3f -> %.3f)\n%!"
      r.Sizer.area_before r.Sizer.area_after downs r.Sizer.objective_before
      r.Sizer.objective_after;
    Json.Obj
      [ ("objective_q99_before", Json.float r.Sizer.objective_before);
        ("objective_q99_after", Json.float r.Sizer.objective_after);
        ("area_before", Json.float r.Sizer.area_before);
        ("area_after", Json.float r.Sizer.area_after);
        ("area_recovered", Json.float (r.Sizer.area_before -. r.Sizer.area_after));
        ("capacitance_before", Json.float r.Sizer.capacitance_before);
        ("capacitance_after", Json.float r.Sizer.capacitance_after);
        ("down_moves", Json.int downs);
        ("moves", Json.int (List.length r.Sizer.moves));
        ("evaluations", Json.int r.Sizer.evaluations) ]
  in
  Json.Obj
    [ ("full_analysis_s", Json.float t_full);
      ("incremental_update_s", Json.float t_incr);
      ("incremental_speedup", Json.float (ratio t_full t_incr));
      ("sizer_s", Json.float t_sizer);
      ("timing_n",
       Json.Obj
         [ ("full_analysis_s", Json.int n_full);
           ("incremental_update_s", Json.int (n_incr * n_cands));
           ("sizer_s", Json.int n_sizer) ]);
      ("max_moves", Json.int sizer_bench_moves);
      ("target", Json.float target);
      ("moves", Json.int (List.length report.Sizer.moves));
      ("up_moves", Json.int up_moves);
      ("down_moves", Json.int down_moves);
      ("evaluations", Json.int report.Sizer.evaluations);
      ("static_prune_s", Json.float t_prune);
      ("never_critical", Json.int never_critical);
      ("pruned", Json.int report.Sizer.pruned);
      ("objective_q99_before", Json.float report.Sizer.objective_before);
      ("objective_q99_after", Json.float report.Sizer.objective_after);
      ("area_before", Json.float report.Sizer.area_before);
      ("area_after", Json.float report.Sizer.area_after);
      ("area_recovered", Json.float area_recovered);
      ("capacitance_before", Json.float report.Sizer.capacitance_before);
      ("capacitance_after", Json.float report.Sizer.capacitance_after);
      ("recovery", recovery) ]

(* Per-circuit timings of the competing engines.  The grid backend is
   measured twice from the same inputs in the same process: once with
   the epsilon-truncation and kernel-cache optimisations disabled (the
   pre-optimisation baseline) and once as configured by default — the
   ratio isolates the kernel work, not machine noise across runs.  The
   parallel variants use the machine's recommended domain count; on a
   single-core host they degenerate to the sequential timings. *)
let json_bench_circuit ~mc_runs ~domains name =
  let circuit = Experiments.Benchmarks.load name in
  let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
  let dt = 0.1 and delay_sigma = 0.4 in
  let grid_run backend_domains (module B : Spsta_core.Top.BACKEND
        with type top = Spsta_dist.Discrete.t) =
    let module D = Analyzer.Make (B) in
    let r = D.analyze ~delay_sigma ~domains:backend_domains circuit ~spec in
    let e = D.critical_endpoint r `Rise in
    let s = D.signal r e in
    (D.transition_stats s `Rise, Spsta_dist.Discrete.dropped_mass s.D.rise)
  in
  let baseline_backend = Spsta_core.Top.discrete_backend ~truncate_eps:0.0 ~cache_normals:false ~dt () in
  let opt_backend = Spsta_core.Top.discrete_backend ~dt () in
  let t_grid_baseline, (baseline_stats, _), n_grid_baseline =
    wall_best (fun () -> grid_run 1 baseline_backend)
  in
  let t_grid, (opt_stats, dropped), n_grid = wall_best (fun () -> grid_run 1 opt_backend) in
  let t_grid_par, _, n_grid_par = wall_best (fun () -> grid_run domains opt_backend) in
  let t_moment, _, n_moment =
    wall_best (fun () -> Analyzer.Moments.analyze ~delay_sigma circuit ~spec)
  in
  let t_moment_par, _, n_moment_par =
    wall_best (fun () -> Analyzer.Moments.analyze ~delay_sigma ~domains circuit ~spec)
  in
  let t_ssta, _, n_ssta = wall_best (fun () -> Ssta.analyze circuit) in
  let t_ssta_par, _, n_ssta_par = wall_best (fun () -> Ssta.analyze ~domains circuit) in
  let t_mc, mc_scalar, n_mc =
    wall_best (fun () -> Monte_carlo.simulate ~runs:mc_runs ~engine:`Scalar ~seed circuit ~spec)
  in
  let t_mc_par, _, n_mc_par =
    wall_best (fun () ->
        Monte_carlo.simulate_parallel ~runs:mc_runs ~engine:`Scalar ~domains ~seed circuit ~spec)
  in
  let t_mc_packed, mc_packed, n_mc_packed =
    wall_best (fun () -> Monte_carlo.simulate ~runs:mc_runs ~engine:`Packed ~seed circuit ~spec)
  in
  let t_mc_packed_par, _, n_mc_packed_par =
    wall_best (fun () ->
        Monte_carlo.simulate ~runs:mc_runs ~engine:`Packed ~domains ~seed circuit ~spec)
  in
  (* cross-engine fidelity: the packed engine must reproduce the scalar
     reference exactly — equal per-net counts and bit-equal Welford
     accumulators *)
  let mc_counts_equal, mc_stats_equal =
    let counts = ref true and stats = ref true in
    let acc_eq (p : Spsta_util.Stats.acc) (q : Spsta_util.Stats.acc) =
      p.Spsta_util.Stats.n = q.Spsta_util.Stats.n
      && p.Spsta_util.Stats.mu = q.Spsta_util.Stats.mu
      && p.Spsta_util.Stats.m2 = q.Spsta_util.Stats.m2
      && p.Spsta_util.Stats.lo = q.Spsta_util.Stats.lo
      && p.Spsta_util.Stats.hi = q.Spsta_util.Stats.hi
    in
    Array.iteri
      (fun i (x : Monte_carlo.net_stats) ->
        let y = mc_packed.Monte_carlo.per_net.(i) in
        if
          not
            (x.Monte_carlo.count_zero = y.Monte_carlo.count_zero
            && x.Monte_carlo.count_one = y.Monte_carlo.count_one
            && x.Monte_carlo.count_rise = y.Monte_carlo.count_rise
            && x.Monte_carlo.count_fall = y.Monte_carlo.count_fall)
        then counts := false;
        if
          not
            (acc_eq x.Monte_carlo.rise_times y.Monte_carlo.rise_times
            && acc_eq x.Monte_carlo.fall_times y.Monte_carlo.fall_times)
        then stats := false)
      mc_scalar.Monte_carlo.per_net;
    (!counts, !stats)
  in
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  let (b_mu, b_sig, b_p) = baseline_stats and (o_mu, o_sig, o_p) = opt_stats in
  Printf.eprintf
    "  %-8s grid %.3fs (baseline %.3fs, x%.2f) moment %.3fs mc %.3fs (packed %.3fs, x%.2f)\n%!"
    name t_grid t_grid_baseline (ratio t_grid_baseline t_grid) t_moment t_mc t_mc_packed
    (ratio t_mc t_mc_packed);
  Json.Obj
    [ ("name", Json.string name);
      ("gates", Json.int (Circuit.gate_count circuit));
      ("depth", Json.int (Circuit.depth circuit));
      ("timings_s",
       Json.Obj
         [ ("spsta_moment", Json.float t_moment);
           ("spsta_moment_parallel", Json.float t_moment_par);
           ("spsta_grid_baseline", Json.float t_grid_baseline);
           ("spsta_grid", Json.float t_grid);
           ("spsta_grid_parallel", Json.float t_grid_par);
           ("ssta", Json.float t_ssta);
           ("ssta_parallel", Json.float t_ssta_par);
           ("mc", Json.float t_mc);
           ("mc_parallel", Json.float t_mc_par);
           ("mc_packed", Json.float t_mc_packed);
           ("mc_packed_parallel", Json.float t_mc_packed_par) ]);
      (* total timed calls behind each timings_s entry: min over three
         batches of calls sized to span at least 10 ms each; 1 flags a
         single-sample entry beyond the batch budget *)
      ("timing_n",
       Json.Obj
         [ ("spsta_moment", Json.int n_moment);
           ("spsta_moment_parallel", Json.int n_moment_par);
           ("spsta_grid_baseline", Json.int n_grid_baseline);
           ("spsta_grid", Json.int n_grid);
           ("spsta_grid_parallel", Json.int n_grid_par);
           ("ssta", Json.int n_ssta);
           ("ssta_parallel", Json.int n_ssta_par);
           ("mc", Json.int n_mc);
           ("mc_parallel", Json.int n_mc_par);
           ("mc_packed", Json.int n_mc_packed);
           ("mc_packed_parallel", Json.int n_mc_packed_par) ]);
      ("speedups",
       Json.Obj
         [ ("grid_kernels", Json.float (ratio t_grid_baseline t_grid));
           ("grid_domains", Json.float (ratio t_grid t_grid_par));
           ("moment_domains", Json.float (ratio t_moment t_moment_par));
           ("ssta_domains", Json.float (ratio t_ssta t_ssta_par));
           ("mc_domains", Json.float (ratio t_mc t_mc_par));
           ("mc_packed_speedup", Json.float (ratio t_mc t_mc_packed));
           ("mc_packed_domains", Json.float (ratio t_mc_packed t_mc_packed_par)) ]);
      (* engine-fidelity check: the packed bit-parallel engine must equal
         the scalar oracle exactly at the same (runs, seed) *)
      ("mc_fidelity",
       Json.Obj
         [ ("counts_equal", Json.bool mc_counts_equal);
           ("stats_equal", Json.bool mc_stats_equal) ]);
      (* optimisation-fidelity check: the truncated grid's critical
         endpoint must match the exact baseline to well within eps *)
      ("grid_fidelity",
       Json.Obj
         [ ("critical_rise_p_err", Json.float (Float.abs (b_p -. o_p)));
           ("critical_rise_mean_err", Json.float (Float.abs (b_mu -. o_mu)));
           ("critical_rise_sigma_err", Json.float (Float.abs (b_sig -. o_sig)));
           ("dropped_mass", Json.float dropped) ]);
      ("sizing", json_bench_sizing circuit) ]

(* ---------- scale section: the 100k / 1M-gate generated profiles ----------

   Wall-clock at netlist sizes where asymptotics, not constants, decide
   the outcome: generation, full SSTA (sequential and across the domain
   pool), and the dirty-cone incremental update against the full-sweep
   baseline it replaces.  The grid/moment engines only run at c100k —
   at a million gates they are minutes-long and the scale story they'd
   tell is the same.  Domain speedups here are honest measurements on
   the current host; on a single-core machine they sit near 1.0 by
   construction (see doc/perf.md). *)

let scale_dirty_cone circuit root =
  (* register-bounded fanout marking, mirroring Propagate.update *)
  let n = Circuit.num_nets circuit in
  let dirty = Array.make n false in
  let gates = ref 0 in
  let rec mark id =
    if not dirty.(id) then begin
      dirty.(id) <- true;
      (match Circuit.driver circuit id with
      | Circuit.Gate _ -> incr gates
      | Circuit.Input | Circuit.Dff_output _ -> ());
      Array.iter
        (fun out ->
          match Circuit.driver circuit out with
          | Circuit.Dff_output _ -> ()
          | Circuit.Gate _ | Circuit.Input -> mark out)
        (Circuit.fanout circuit id)
    end
  in
  mark root;
  !gates

let scale_profile name =
  match Spsta_netlist.Generator.find_profile name with
  | Some p -> p
  | None -> failwith (Printf.sprintf "unknown scale profile %s" name)

let json_bench_scale ~domains name =
  let profile = scale_profile name in
  let t_gen, circuit = wall (fun () -> Spsta_netlist.Generator.generate profile) in
  let gates = Circuit.gate_count circuit in
  let t_ssta, r0, n_ssta = wall_best (fun () -> Ssta.analyze circuit) in
  let t_ssta_par, _, n_ssta_par = wall_best (fun () -> Ssta.analyze ~domains circuit) in
  (* two incremental workloads: a mid-topo gate flip (the sizer's move
     evaluation — typically a tiny cone) and a primary-input re-seed
     (the sequential-iteration workload — a larger cone) *)
  let topo = Circuit.topo_gates circuit in
  let root = topo.(Array.length topo / 2) in
  let dirty_gates = scale_dirty_cone circuit root in
  let t_upd, _, n_upd = wall_best (fun () -> Ssta.update r0 ~changed:[ root ]) in
  let src_root = List.hd (Circuit.sources circuit) in
  let src_dirty = scale_dirty_cone circuit src_root in
  let t_src_upd, _, n_src_upd = wall_best (fun () -> Ssta.update r0 ~changed:[ src_root ]) in
  (* the structural+dataflow lint sweep and the full static-analysis
     pass stack (lib/analysis) at scale — both single-core, both pure
     functions of the circuit *)
  let t_lint, findings, n_lint =
    wall_best (fun () -> Spsta_lint.Lint.check_circuit circuit)
  in
  let t_static, static, n_static =
    wall_best (fun () -> Spsta_analysis.Static.run circuit)
  in
  let fact_fields =
    List.map
      (fun (name, count) -> (name, Json.int count))
      (Spsta_analysis.Static.fact_counts static)
  in
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  let with_grid = gates <= 200_000 in
  let grid_fields =
    if not with_grid then []
    else begin
      let spec = Experiments.Workloads.spec_fn Experiments.Workloads.Case_i in
      let t_moment, _, n_moment =
        wall_best (fun () -> Analyzer.Moments.analyze circuit ~spec)
      in
      let t_moment_par, _, n_moment_par =
        wall_best (fun () -> Analyzer.Moments.analyze ~domains circuit ~spec)
      in
      [ ("moment_s", Json.float t_moment);
        ("moment_parallel_s", Json.float t_moment_par);
        ("moment_domains", Json.float (ratio t_moment t_moment_par));
        ("moment_n", Json.int n_moment);
        ("moment_parallel_n", Json.int n_moment_par) ]
    end
  in
  Printf.eprintf
    "  %-8s gen %.2fs ssta %.3fs (par %.3fs, x%.2f) update %.5fs (x%.0f, %d dirty) \
src-update %.5fs (x%.0f, %d dirty) lint %.3fs (%d findings) static %.3fs (%d facts)\n%!"
    name t_gen t_ssta t_ssta_par (ratio t_ssta t_ssta_par) t_upd (ratio t_ssta t_upd)
    dirty_gates t_src_upd (ratio t_ssta t_src_upd) src_dirty t_lint (List.length findings)
    t_static
    (Spsta_analysis.Static.total_facts static);
  Json.Obj
    ([ ("name", Json.string name);
       ("gates", Json.int gates);
       ("depth", Json.int (Circuit.depth circuit));
       ("generate_s", Json.float t_gen);
       ("ssta_s", Json.float t_ssta);
       ("ssta_parallel_s", Json.float t_ssta_par);
       ("ssta_domains", Json.float (ratio t_ssta t_ssta_par));
       ("incremental_update_s", Json.float t_upd);
       ("incremental_speedup", Json.float (ratio t_ssta t_upd));
       ("dirty_gates", Json.int dirty_gates);
       ("source_update_s", Json.float t_src_upd);
       ("source_update_speedup", Json.float (ratio t_ssta t_src_upd));
       ("source_dirty_gates", Json.int src_dirty);
       ("lint_s", Json.float t_lint);
       ("lint_findings", Json.int (List.length findings));
       ("static_s", Json.float t_static);
       ("static_facts", Json.Obj fact_fields);
       ("timing_n",
        Json.Obj
          [ ("ssta_s", Json.int n_ssta);
            ("ssta_parallel_s", Json.int n_ssta_par);
            ("incremental_update_s", Json.int n_upd);
            ("source_update_s", Json.int n_src_upd);
            ("lint_s", Json.int n_lint);
            ("static_s", Json.int n_static) ]) ]
    @ grid_fields)

let scale_names () =
  match Sys.getenv_opt "SPSTA_BENCH_SCALE" with
  | None -> [ "c100k"; "c1000k" ]
  | Some s -> (
    match String.trim s with
    | "" | "0" | "off" -> []
    | "1" | "on" -> [ "c100k"; "c1000k" ]
    | s ->
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun s -> s <> ""))

let json_mode path =
  let circuits =
    match Sys.getenv_opt "SPSTA_BENCH_CIRCUITS" with
    | Some s when String.trim s <> "" ->
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    | Some _ | None -> [ "s344"; "s1238"; "s5378" ]
  in
  let mc_runs = min runs 2_000 in
  let domains = Spsta_util.Parallel.default_domains () in
  let scale = scale_names () in
  Printf.eprintf "bench json mode: %s (mc runs %d, %d domains; scale: %s)\n%!"
    (String.concat ", " circuits) mc_runs domains
    (if scale = [] then "off" else String.concat ", " scale);
  let doc =
    Json.Obj
      [ ("schema", Json.string "spsta-bench/5");
        ("mc_runs", Json.int mc_runs);
        ("seed", Json.int seed);
        ("domains", Json.int domains);
        ("host_cores", Json.int (Domain.recommended_domain_count ()));
        ("circuits", Json.List (List.map (json_bench_circuit ~mc_runs ~domains) circuits));
        ("scale", Json.List (List.map (json_bench_scale ~domains) scale)) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path;
  doc

(* Bounded CI gate for the scale work (`make scale-smoke`): c100k must
   generate and analyze inside generous wall-time budgets, the pooled
   sweep must be bit-identical to the sequential one, and the dirty-cone
   update must beat the full sweep by a wide margin.  The ?domains
   speedup floor is guarded by the host's core count — a single-core
   runner cannot speed anything up and is not asked to. *)
let scale_smoke () =
  let failed = ref false in
  let check name ok detail =
    Printf.printf "%s  %-42s %s\n%!" (if ok then "PASS" else "FAIL") name detail;
    if not ok then failed := true
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "scale smoke: c100k on %d core(s)\n%!" cores;
  let t_gen, circuit = wall (fun () -> Spsta_netlist.Generator.generate (scale_profile "c100k")) in
  check "generation under 60 s" (t_gen < 60.0) (Printf.sprintf "%.2fs" t_gen);
  let t_ssta, r_seq, _ = wall_best (fun () -> Ssta.analyze circuit) in
  check "ssta under 10 s" (t_ssta < 10.0) (Printf.sprintf "%.3fs" t_ssta);
  (* pooled schedule must be bit-identical to the sequential sweep *)
  let domains = if cores >= 4 then 4 else max 2 cores in
  let r_par = Ssta.analyze ~domains circuit in
  let identical = ref true in
  for i = 0 to Circuit.num_nets circuit - 1 do
    let a = Ssta.arrival r_seq i and b = Ssta.arrival r_par i in
    let eq n m =
      Spsta_dist.Normal.mean n = Spsta_dist.Normal.mean m
      && Spsta_dist.Normal.stddev n = Spsta_dist.Normal.stddev m
    in
    if not (eq a.Ssta.rise b.Ssta.rise && eq a.Ssta.fall b.Ssta.fall) then identical := false
  done;
  check
    (Printf.sprintf "bit-identical at domains=%d" domains)
    !identical
    (Printf.sprintf "%d nets" (Circuit.num_nets circuit));
  (* speedup floor, guarded by what the host can physically deliver *)
  (if cores >= 2 then begin
     let t_par, _, _ = wall_best (fun () -> Ssta.analyze ~domains circuit) in
     let speedup = if t_par > 0.0 then t_ssta /. t_par else 0.0 in
     let floor = if cores >= 4 then 1.5 else 1.05 in
     check
       (Printf.sprintf "ssta domains=%d speedup >= %.2f" domains floor)
       (speedup >= floor)
       (Printf.sprintf "x%.2f" speedup)
   end
   else Printf.printf "SKIP  %-42s single-core host\n%!" "ssta ?domains speedup floor");
  (* dirty-cone incremental update vs the full sweep it replaces: the
     sizer-style single-gate flip.  The update's fixed cost is
     functionally copying the per-net state arrays, which is coupled to
     heap state — wall_best's fresh-heap pinning is what makes this
     ratio reproducible.  The absolute bound is the complementary
     guard: a cone update must stay in single-digit milliseconds at
     100k gates or the sizer's per-candidate economics break regardless
     of the ratio. *)
  let topo = Circuit.topo_gates circuit in
  let root = topo.(Array.length topo / 2) in
  let t_upd, _, _ = wall_best (fun () -> Ssta.update r_seq ~changed:[ root ]) in
  let speedup = if t_upd > 0.0 then t_ssta /. t_upd else 0.0 in
  check "incremental update speedup >= 20"
    (speedup >= 20.0)
    (Printf.sprintf "x%.0f (%d dirty gates)" speedup (scale_dirty_cone circuit root));
  check "incremental update under 10 ms" (t_upd < 0.010)
    (Printf.sprintf "%.4fs" t_upd);
  (* the full static-analysis stack (ISSUE acceptance: all four passes
     combined under 1 s single-core at c100k, bit-deterministic) *)
  let module Static = Spsta_analysis.Static in
  let t_static, s1, _ = wall_best (fun () -> Static.run circuit) in
  check "static passes under 1 s" (t_static < 1.0) (Printf.sprintf "%.3fs" t_static);
  let s2 = Static.run circuit in
  let regions t =
    match t.Static.reconvergence with
    | None -> []
    | Some r -> Spsta_analysis.Reconvergence.regions r
  in
  check "static run-twice deterministic"
    (Static.fact_counts s1 = Static.fact_counts s2 && regions s1 = regions s2)
    (Printf.sprintf "%d facts" (Static.total_facts s1));
  if !failed then exit 1

(* ---------- regression tracking (lib/server/bench_track.ml) ---------- *)

module Bench_track = Spsta_server.Bench_track

let read_doc path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Json.of_string_opt text with
  | Some doc -> doc
  | None ->
    Printf.eprintf "error: %s is not valid JSON\n%!" path;
    exit 2

let commit_id () =
  match Sys.getenv_opt "SPSTA_BENCH_COMMIT" with
  | Some c when String.trim c <> "" -> String.trim c
  | Some _ | None -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      if line = "" then "unknown" else line
    with _ -> "unknown")

let utc_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* prints the verdict; true iff no metric regressed beyond the threshold *)
let report_compare ~threshold ~base_path base current =
  let compared, regressions = Bench_track.compare_docs ~threshold ~base ~current () in
  Printf.eprintf "compare vs %s: %d metrics within +%.0f%%, %d regressed\n%!" base_path
    (compared - List.length regressions)
    (100.0 *. threshold) (List.length regressions);
  List.iter
    (fun (r : Bench_track.regression) ->
      Printf.eprintf "  REGRESSED %-36s %.4fs -> %.4fs (x%.2f)\n%!" r.Bench_track.metric
        r.Bench_track.base_s r.Bench_track.current_s r.Bench_track.ratio)
    regressions;
  regressions = []

type json_opts = {
  mutable out : string;
  mutable history : string option;
  mutable base : string option;
  mutable threshold : float;
}

let bad_usage () =
  Printf.eprintf
    "usage: %s [--json [PATH] [--history FILE] [--compare BASE] [--threshold FRAC]]\n\
    \       %s --compare BASE CURRENT [--threshold FRAC]\n\
    \       %s --scale-smoke\n%!"
    Sys.argv.(0) Sys.argv.(0) Sys.argv.(0);
  exit 2

let parse_threshold s =
  match float_of_string_opt s with
  | Some x when x > 0.0 -> x
  | Some _ | None ->
    Printf.eprintf "error: --threshold wants a positive fraction, got %s\n%!" s;
    exit 2

let json_cli rest =
  let o = { out = "BENCH_spsta.json"; history = None; base = None; threshold = Bench_track.default_threshold } in
  let rec parse = function
    | [] -> ()
    | "--history" :: file :: rest ->
      o.history <- Some file;
      parse rest
    | "--compare" :: base :: rest ->
      o.base <- Some base;
      parse rest
    | "--threshold" :: t :: rest ->
      o.threshold <- parse_threshold t;
      parse rest
    | path :: rest when String.length path > 0 && path.[0] <> '-' ->
      o.out <- path;
      parse rest
    | _ -> bad_usage ()
  in
  parse rest;
  (* read the baseline before the long run so a bad path fails fast *)
  let base = Option.map (fun p -> (p, read_doc p)) o.base in
  let doc = json_mode o.out in
  Option.iter
    (fun path ->
      Bench_track.append_history ~path
        (Bench_track.history_record ~commit:(commit_id ()) ~utc:(utc_now ()) doc);
      Printf.eprintf "appended history record to %s\n%!" path)
    o.history;
  match base with
  | None -> exit 0
  | Some (base_path, base) ->
    if report_compare ~threshold:o.threshold ~base_path base doc then exit 0
    else begin
      (* Confirm-on-fail: one flagged metric out of ~30 is as likely a
         sustained scheduler burst on a shared host as a real
         regression.  Re-measure the whole suite once (minutes later,
         so a burst has moved on) and fail only on metrics that regress
         in BOTH independent runs — a real regression reproduces by
         definition.  The re-measured document replaces the output
         file; the history keeps the first run's record only. *)
      Printf.eprintf "re-measuring to separate interference from real regressions...\n%!";
      let doc2 = json_mode o.out in
      let regressed_in d =
        let _, rs = Bench_track.compare_docs ~threshold:o.threshold ~base ~current:d () in
        rs
      in
      let second = regressed_in doc2 in
      let persistent =
        List.filter
          (fun (r : Bench_track.regression) ->
            List.exists
              (fun (r2 : Bench_track.regression) -> r2.Bench_track.metric = r.Bench_track.metric)
              second)
          (regressed_in doc)
      in
      match persistent with
      | [] ->
        Printf.eprintf "no regression reproduced on re-measurement; passing\n%!";
        exit 0
      | rs ->
        Printf.eprintf "%d regression(s) reproduced across both runs:\n%!" (List.length rs);
        List.iter
          (fun (r : Bench_track.regression) ->
            Printf.eprintf "  REGRESSED %-36s %.4fs -> %.4fs (x%.2f)\n%!" r.Bench_track.metric
              r.Bench_track.base_s r.Bench_track.current_s r.Bench_track.ratio)
          rs;
        exit 1
    end

let compare_cli rest =
  let threshold, rest =
    match rest with
    | b :: c :: "--threshold" :: t :: [] -> (parse_threshold t, [ b; c ])
    | rest -> (Bench_track.default_threshold, rest)
  in
  match rest with
  | [ base_path; current_path ] ->
    let base = read_doc base_path and current = read_doc current_path in
    exit (if report_compare ~threshold ~base_path base current then 0 else 1)
  | _ -> bad_usage ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest -> json_cli rest
  | _ :: "--compare" :: rest -> compare_cli rest
  | _ :: "--scale-smoke" :: _ ->
    scale_smoke ();
    exit 0
  | _ -> ()

let () =
  section "TABLE1" (fun () -> print_string (Experiments.Table1.render ()));
  section "FIG2" (fun () -> print_string (Experiments.Fig2.render (Experiments.Fig2.run ())));
  section "FIG3" (fun () -> print_string (Experiments.Fig3.render (Experiments.Fig3.run ())));
  section "FIG4" (fun () -> print_string (Experiments.Fig4.render (Experiments.Fig4.run ())));
  section "TABLE2" (fun () ->
      List.iter
        (fun case ->
          print_string
            (Experiments.Table2.render ~case (Experiments.Table2.run_suite ~runs ~seed ~case ()));
          print_newline ())
        Experiments.Workloads.all_cases);
  section "FIG1" (fun () ->
      print_string
        (Experiments.Fig1.render
           (Experiments.Fig1.run ~runs ~seed ~case:Experiments.Workloads.Case_i ())));
  section "TABLE3" (fun () ->
      print_string
        (Experiments.Table3.render
           (Experiments.Table3.run_suite ~runs ~seed ~case:Experiments.Workloads.Case_i ())));
  section "SUMMARY" (fun () ->
      print_string (Experiments.Summary.render (Experiments.Summary.run ~runs ~seed ())));
  section "ABLATION: t.o.p. backend" ablation;
  section "ABLATION: correlation handling" correlation_ablation;
  section "ABLATION: process variation" process_variation_ablation;
  section "EXTENSION: critical paths" paths_section;
  section "EXTENSION: sequential fixed point" sequential_section;
  section "EXTENSION: chip delay / yield" chip_delay_section;
  section "ABLATION: interconnect loading" interconnect_ablation;
  section "ABLATION: cell library" cell_library_ablation;
  section "ABLATION: multiple-input switching" mis_ablation;
  section "ABLATION: enclosures" enclosure_ablation;
  section "SCALING" scaling_section;
  section "BECHAMEL" bechamel_benchmarks
