(* spsta: command-line front end.

   Subcommands:
     analyze    - SPSTA on a .bench file or named suite circuit
     lint       - static netlist / model checks with structured findings
     check      - run every analyzer under the invariant sanitizer
     ssta       - the min/max-separated SSTA baseline
     mc         - Monte Carlo reference simulation
     power      - transition densities and dynamic power
     exact-prob - BDD-exact signal probabilities vs eq. 5
     paths      - K most critical paths with variational statistics
     sequential - steady-state flip-flop statistics (fixed point vs sim)
     chip-delay - chip-level delay distribution, yield, criticality
     variation  - canonical-form SSTA under a correlated process model
     criticality - per-gate statistical criticality and slack
     static     - dataflow passes: constants, reconvergence, observability, criticality
     size       - greedy statistical gate sizing on the incremental engine
     gen        - emit a synthetic suite circuit as .bench
     experiment - regenerate a paper table/figure
     list       - list suite circuits and experiments
     serve      - JSONL analysis/session service (stdin, Unix socket or TCP)
     batch      - execute a JSONL request file concurrently
     session    - interactive timing-session client (scripts, ECO exercise, REPL) *)

open Cmdliner

module Circuit = Spsta_netlist.Circuit
module Bench_io = Spsta_netlist.Bench_io
module Generator = Spsta_netlist.Generator
module Input_spec = Spsta_sim.Input_spec
module Monte_carlo = Spsta_sim.Monte_carlo
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module Experiments = Spsta_experiments

let load_circuit name_or_path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
      fmt
  in
  if Sys.file_exists name_or_path then
    try
      if Filename.check_suffix name_or_path ".v" then
        Spsta_netlist.Verilog_io.parse_file name_or_path
      else Bench_io.parse_file name_or_path
    with
    | Bench_io.Parse_error { line; message } ->
      fail "%s:%d: %s" name_or_path line message
    | Spsta_netlist.Verilog_io.Parse_error { line; message } ->
      fail "%s:%d: %s" name_or_path line message
    | Circuit.Invalid_circuit message -> fail "%s: invalid circuit: %s" name_or_path message
    | Sys_error message -> fail "%s" message
  else
    try Experiments.Benchmarks.load name_or_path
    with Not_found -> fail "%s is neither a file nor a suite circuit" name_or_path

let case_of_string = function
  | "I" | "i" | "1" -> Experiments.Workloads.Case_i
  | "II" | "ii" | "2" -> Experiments.Workloads.Case_ii
  | s ->
    Printf.eprintf "error: unknown input case %s (use I or II)\n" s;
    exit 1

let circuit_arg =
  let doc = "Circuit: a .bench file path or a suite name (e.g. s344)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let case_arg =
  let doc = "Input statistics case: I (p1=p0=pr=pf=0.25) or II (15/75/2/8%)." in
  Arg.(value & opt string "I" & info [ "case" ] ~docv:"CASE" ~doc)

let runs_arg =
  let doc = "Monte Carlo runs." in
  Arg.(value & opt int 10_000 & info [ "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (all analyses are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let top_arg =
  let doc = "Show only the N most critical endpoints (0 = all nets)." in
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Worker domains for the propagation (0 = one per available core).  Every analysis on \
     the levelized engine (SPSTA, SSTA, STA, bounds, canonical, interval) is bit-identical \
     at every domain count, and so is Monte Carlo: each trial draws from its own seeded \
     substream, so the domain count is purely a throughput knob."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let mc_engine_arg =
  let doc =
    "Monte Carlo engine: packed (bit-parallel, 64 trials per machine word) or scalar (one \
     logic simulation per trial — the oracle).  Both return bit-identical statistics."
  in
  let engine = Arg.enum [ ("packed", `Packed); ("scalar", `Scalar) ] in
  Arg.(value & opt engine `Packed & info [ "mc-engine" ] ~docv:"ENGINE" ~doc)

let mc_domains_arg =
  let doc =
    "Worker domains for the Monte Carlo trial chunks (0 = one per available core).  \
     Results are bit-identical at every domain count."
  in
  Arg.(value & opt int 1 & info [ "mc-domains"; "domains" ] ~docv:"N" ~doc)

let check_arg =
  let doc =
    "Install the per-gate invariant sanitizer: after every gate evaluation verify the \
     propagated state (finite moments, non-negative masses, conservation up to the \
     tracked truncation bound) and abort with a diagnostic naming the circuit, net, gate \
     kind and level on the first violation.  Also enabled by SPSTA_CHECK=1; without \
     either, no wrapper is installed and results are bit-identical to a run without the \
     feature."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

(* flag absent -> None: fall back to the SPSTA_CHECK environment toggle *)
let resolve_check flag = if flag then Some true else None

let resolve_domains = function
  | 0 -> Spsta_util.Parallel.default_domains ()
  | d when d >= 1 -> d
  | d ->
    Printf.eprintf "error: --domains must be non-negative (got %d)\n" d;
    exit 1

let print_header circuit =
  Format.printf "%a@." Circuit.pp_summary circuit

let endpoint_ids circuit = Circuit.endpoints circuit

let analyze_cmd =
  let run name case_str domains check =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let result =
      Analyzer.Moments.analyze ?check:(resolve_check check)
        ~domains:(resolve_domains domains) circuit ~spec
    in
    let table =
      Spsta_util.Table.create
        ~headers:[ "endpoint"; "P(r)"; "mu(r)"; "sigma(r)"; "P(f)"; "mu(f)"; "sigma(f)"; "SP" ]
    in
    let add e =
      let s = Analyzer.Moments.signal result e in
      let rmu, rsig, rp = Analyzer.Moments.transition_stats s `Rise in
      let fmu, fsig, fp = Analyzer.Moments.transition_stats s `Fall in
      Spsta_util.Table.add_row table
        [
          Circuit.net_name circuit e;
          Printf.sprintf "%.3f" rp;
          Printf.sprintf "%.3f" rmu;
          Printf.sprintf "%.3f" rsig;
          Printf.sprintf "%.3f" fp;
          Printf.sprintf "%.3f" fmu;
          Printf.sprintf "%.3f" fsig;
          Printf.sprintf "%.3f" (Four_value.signal_probability s.Analyzer.Moments.probs);
        ]
    in
    List.iter add (endpoint_ids circuit);
    print_endline (Spsta_util.Table.render table)
  in
  let info = Cmd.info "analyze" ~doc:"SPSTA endpoint timing statistics" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ domains_arg $ check_arg)

module Lint = Spsta_lint.Lint

let lint_cmd =
  let run names json strict case_str lib_name dt eps =
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    let library =
      match lib_name with
      | "unit" -> Spsta_netlist.Cell_library.unit_delay
      | "default" -> Spsta_netlist.Cell_library.default
      | other ->
        Printf.eprintf "error: unknown cell library %s (unit or default)\n" other;
        exit 1
    in
    let grid = (dt, eps) in
    let lint_one name =
      if Sys.file_exists name then Lint.lint_path ~library ~spec ~grid name
      else
        match Experiments.Benchmarks.load name with
        | circuit -> Lint.check_circuit ~library ~spec ~grid circuit
        | exception Not_found ->
          [
            {
              Lint.rule = "io-error";
              severity = Lint.Error;
              nets = [];
              message = Printf.sprintf "%s is neither a file nor a suite circuit" name;
            };
          ]
    in
    let results = List.map (fun name -> (name, lint_one name)) names in
    if json then
      print_endline
        (Printf.sprintf "[%s]"
           (String.concat ","
              (List.map
                 (fun (name, findings) -> Lint.json_of_findings ~subject:name findings)
                 results)))
    else
      List.iter
        (fun (name, findings) ->
          Printf.printf "%s: %d error(s), %d warning(s), %d info(s)\n" name
            (Lint.count Lint.Error findings)
            (Lint.count Lint.Warning findings)
            (Lint.count Lint.Info findings);
          print_string (Lint.render_text findings))
        results;
    let code =
      List.fold_left (fun acc (_, findings) -> max acc (Lint.exit_code ~strict findings)) 0 results
    in
    if code <> 0 then exit code
  in
  let circuits_arg =
    let doc = "Circuits to lint: .bench/.v file paths or suite names." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let json_arg =
    let doc = "Emit findings as a JSON array (one object per circuit)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero on Warning findings too." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let lib_arg =
    let doc = "Cell library whose delays are checked: unit or default." in
    Arg.(value & opt string "unit" & info [ "lib" ] ~docv:"LIB" ~doc)
  in
  let dt_lint_arg =
    let doc = "Grid step checked against the error-bound and sigma rules." in
    Arg.(value & opt float 0.1 & info [ "dt" ] ~docv:"DT" ~doc)
  in
  let eps_lint_arg =
    let doc = "Grid truncation threshold checked against the error-bound rule." in
    Arg.(value & opt float 1e-9 & info [ "truncate-eps" ] ~docv:"EPS" ~doc)
  in
  let exits =
    Cmd.Exit.defaults
    @ [
        Cmd.Exit.info ~doc:"on Error findings in any linted circuit." 3;
        Cmd.Exit.info ~doc:"on Warning findings with $(b,--strict) (and no Errors)." 4;
      ]
  in
  let info =
    Cmd.info "lint" ~exits
      ~doc:"Static netlist and timing-model checks with structured findings"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Walks each circuit (and the selected cell library, input statistics and \
             grid settings) and reports structural defects (dangling or dead logic, \
             arity violations, degenerate flip-flop wiring) and model defects \
             (probabilities outside [0,1], vectors not summing to 1, negative or zero \
             delays, grid settings whose truncation bound cannot stay small).  Files \
             that fail to parse or finalize report the rejection as an error finding \
             (undriven nets, multiply-driven nets and combinational cycles are \
             classified individually, with the offending nets named).";
        ]
  in
  Cmd.v info
    Term.(
      const run $ circuits_arg $ json_arg $ strict_arg $ case_arg $ lib_arg $ dt_lint_arg
      $ eps_lint_arg)

let check_cmd =
  let run name case_str dt domains =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let domains = resolve_domains domains in
    let failures = ref 0 in
    let run_one label f =
      let t0 = Unix.gettimeofday () in
      match f () with
      | () -> Printf.printf "  %-16s ok (%.3f s)\n%!" label (Unix.gettimeofday () -. t0)
      | exception (Spsta_engine.Propagate.Sanitize.Violation _ as exn) ->
        incr failures;
        Printf.printf "  %-16s VIOLATION: %s\n%!" label (Printexc.to_string exn)
    in
    run_one "spsta-moments" (fun () ->
        ignore (Analyzer.Moments.analyze ~check:true ~domains circuit ~spec));
    run_one "spsta-grid" (fun () ->
        let module B = (val Spsta_core.Top.discrete_backend ~dt ()) in
        let module A = Spsta_core.Analyzer.Make (B) in
        ignore (A.analyze ~check:true ~domains circuit ~spec));
    run_one "ssta" (fun () ->
        ignore (Spsta_ssta.Ssta.analyze ~check:true ~domains circuit));
    run_one "sta" (fun () -> ignore (Spsta_ssta.Sta.analyze ~check:true ~domains circuit));
    run_one "bounds-ssta" (fun () ->
        ignore (Spsta_ssta.Bounds_ssta.analyze ~check:true ~domains circuit));
    run_one "canonical-ssta" (fun () ->
        let model =
          Spsta_variation.Param_model.create ~sigma_global:0.1 ~sigma_spatial:0.1
            ~sigma_random:0.1 ~grid:4 ()
        in
        let placement = Spsta_variation.Param_model.place model circuit in
        ignore (Spsta_variation.Canonical_ssta.analyze ~check:true ~domains model placement circuit));
    run_one "interval-sta" (fun () ->
        ignore (Spsta_variation.Interval_sta.analyze ~check:true ~domains circuit));
    if !failures > 0 then begin
      Printf.printf "%d analysis(es) reported sanitizer violations\n" !failures;
      exit 3
    end
    else print_endline "all analyses completed with zero sanitizer violations"
  in
  let dt_arg =
    let doc = "Grid step for the discrete-backend SPSTA pass." in
    Arg.(value & opt float 0.1 & info [ "dt" ] ~docv:"DT" ~doc)
  in
  let exits =
    Cmd.Exit.defaults @ [ Cmd.Exit.info ~doc:"on any sanitizer violation." 3 ]
  in
  let info =
    Cmd.info "check" ~exits
      ~doc:"Run every analyzer under the invariant sanitizer"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs SPSTA (both t.o.p. backends), SSTA, corner STA, bounds-based SSTA, \
             canonical-form SSTA and interval STA over the circuit with the per-gate \
             invariant sanitizer installed, reporting the first violation (if any) per \
             analysis with the offending circuit, net, gate kind and level.";
        ]
  in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ dt_arg $ domains_arg)

let ssta_cmd =
  let run name domains check =
    let circuit = load_circuit name in
    print_header circuit;
    let result =
      Spsta_ssta.Ssta.analyze ?check:(resolve_check check)
        ~domains:(resolve_domains domains) circuit
    in
    let table =
      Spsta_util.Table.create ~headers:[ "endpoint"; "mu(r)"; "sigma(r)"; "mu(f)"; "sigma(f)" ]
    in
    let add e =
      let a = Spsta_ssta.Ssta.arrival result e in
      let open Spsta_dist.Normal in
      Spsta_util.Table.add_row table
        [
          Circuit.net_name circuit e;
          Printf.sprintf "%.3f" (mean a.Spsta_ssta.Ssta.rise);
          Printf.sprintf "%.3f" (stddev a.Spsta_ssta.Ssta.rise);
          Printf.sprintf "%.3f" (mean a.Spsta_ssta.Ssta.fall);
          Printf.sprintf "%.3f" (stddev a.Spsta_ssta.Ssta.fall);
        ]
    in
    List.iter add (endpoint_ids circuit);
    print_endline (Spsta_util.Table.render table)
  in
  let info = Cmd.info "ssta" ~doc:"Min/max-separated SSTA baseline" in
  Cmd.v info Term.(const run $ circuit_arg $ domains_arg $ check_arg)

let mc_cmd =
  let run name case_str runs seed domains engine =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let domains = resolve_domains domains in
    let result = Monte_carlo.simulate ~runs ~seed ~engine ~domains circuit ~spec in
    let table =
      Spsta_util.Table.create
        ~headers:[ "endpoint"; "P(r)"; "mu(r)"; "sigma(r)"; "P(f)"; "mu(f)"; "sigma(f)"; "SP" ]
    in
    let add e =
      let s = Monte_carlo.stats result e in
      Spsta_util.Table.add_row table
        [
          Circuit.net_name circuit e;
          Printf.sprintf "%.3f" (Monte_carlo.p_rise s);
          Printf.sprintf "%.3f" (Spsta_util.Stats.acc_mean s.Monte_carlo.rise_times);
          Printf.sprintf "%.3f" (Spsta_util.Stats.acc_stddev s.Monte_carlo.rise_times);
          Printf.sprintf "%.3f" (Monte_carlo.p_fall s);
          Printf.sprintf "%.3f" (Spsta_util.Stats.acc_mean s.Monte_carlo.fall_times);
          Printf.sprintf "%.3f" (Spsta_util.Stats.acc_stddev s.Monte_carlo.fall_times);
          Printf.sprintf "%.3f" (Monte_carlo.signal_probability s);
        ]
    in
    List.iter add (endpoint_ids circuit);
    print_endline (Spsta_util.Table.render table)
  in
  let info = Cmd.info "mc" ~doc:"Monte Carlo reference simulation" in
  Cmd.v info
    Term.(const run $ circuit_arg $ case_arg $ runs_arg $ seed_arg $ mc_domains_arg
          $ mc_engine_arg)

let power_cmd =
  let run name case_str top =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let density = Spsta_power.Transition_density.of_input_specs circuit ~spec in
    let total_power =
      Spsta_power.Power_model.dynamic_power circuit
        ~density:(Spsta_power.Transition_density.density density)
    in
    Printf.printf "total switching activity: %.2f transitions/cycle\n"
      (Spsta_power.Transition_density.total density);
    Printf.printf "dynamic power (default params): %.3e W\n" total_power;
    if top > 0 then begin
      Printf.printf "top %d nets by power:\n" top;
      let hot =
        Spsta_power.Power_model.per_net_power circuit
          ~density:(Spsta_power.Transition_density.density density)
      in
      List.iteri
        (fun i (id, w) ->
          if i < top then Printf.printf "  %-12s %.3e W\n" (Circuit.net_name circuit id) w)
        hot
    end
  in
  let info = Cmd.info "power" ~doc:"Transition density and dynamic power" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ top_arg)

let exact_prob_cmd =
  let run name case_str =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let exact = Spsta_core.Exact_prob.compute circuit ~spec in
    let approx =
      Spsta_core.Signal_prob.compute circuit
        ~p_source:(fun s -> Input_spec.signal_probability (spec s))
    in
    let worst = ref (0, 0.0) in
    let sum = ref 0.0 and n = ref 0 in
    Array.iter
      (fun g ->
        let gap =
          Float.abs
            (Spsta_core.Exact_prob.signal_probability exact g -. Spsta_core.Signal_prob.prob approx g)
        in
        sum := !sum +. gap;
        incr n;
        if gap > snd !worst then worst := (g, gap))
      (Circuit.topo_gates circuit);
    Printf.printf "independence-assumption SP error vs BDD-exact: mean %.5f, worst %.5f at %s\n"
      (if !n = 0 then 0.0 else !sum /. float_of_int !n)
      (snd !worst)
      (Circuit.net_name circuit (fst !worst))
  in
  let info = Cmd.info "exact-prob" ~doc:"BDD-exact signal probabilities vs eq. 5" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg)

let paths_cmd =
  let run name k sigma_global sigma_spatial sigma_random =
    let circuit = load_circuit name in
    print_header circuit;
    let model =
      Spsta_variation.Param_model.create ~sigma_global ~sigma_spatial ~sigma_random ~grid:4 ()
    in
    let placement = Spsta_variation.Param_model.place model circuit in
    let paths = Spsta_paths.Path_enum.enumerate ~k circuit in
    let stats = Spsta_paths.Path_stats.analyze model placement circuit paths in
    let crit = Spsta_paths.Path_stats.criticality stats in
    print_endline (Spsta_paths.Path_stats.render circuit ~criticality:crit stats)
  in
  let k_arg =
    let doc = "Number of critical paths to enumerate." in
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)
  in
  let sigma name default doc = Arg.(value & opt float default & info [ name ] ~docv:"SIGMA" ~doc) in
  let info = Cmd.info "paths" ~doc:"Critical paths with variational statistics" in
  Cmd.v info
    Term.(
      const run $ circuit_arg $ k_arg
      $ sigma "sigma-global" 0.05 "Die-to-die delay sigma."
      $ sigma "sigma-spatial" 0.05 "Within-die spatially correlated sigma."
      $ sigma "sigma-random" 0.05 "Per-gate independent sigma.")

let sequential_cmd =
  let run name case_str cycles seed =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let pi_spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let fp = Spsta_core.Sequential.fixed_point circuit ~pi_spec in
    Printf.printf "fixed point: %s after %d iterations\n"
      (if Spsta_core.Sequential.converged fp then "converged" else "NOT converged")
      (Spsta_core.Sequential.iterations fp);
    let sim = Spsta_sim.Sequential_sim.simulate ~cycles ~seed circuit ~pi_spec in
    let table =
      Spsta_util.Table.create ~headers:[ "flip-flop"; "q (fixed point)"; "q (simulated)" ]
    in
    List.iter
      (fun (qnet, _) ->
        let predicted = Spsta_core.Sequential.ff_final_one fp qnet in
        let s = Spsta_sim.Sequential_sim.stats sim qnet in
        let observed = Monte_carlo.p_one s +. Monte_carlo.p_fall s in
        Spsta_util.Table.add_row table
          [ Circuit.net_name circuit qnet; Printf.sprintf "%.4f" predicted;
            Printf.sprintf "%.4f" observed ])
      (Circuit.dffs circuit);
    print_endline (Spsta_util.Table.render table)
  in
  let cycles_arg =
    let doc = "Measured simulation cycles." in
    Arg.(value & opt int 10_000 & info [ "cycles" ] ~docv:"N" ~doc)
  in
  let info = Cmd.info "sequential" ~doc:"Steady-state flip-flop statistics" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ cycles_arg $ seed_arg)

let chip_delay_cmd =
  let run name case_str top =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    print_header circuit;
    let r = Spsta_core.Chip_delay.compute circuit ~spec in
    Printf.printf "idle-cycle probability: %.4f\n" (Spsta_core.Chip_delay.p_idle r);
    Printf.printf "chip delay: mean %.3f, stddev %.3f\n" (Spsta_core.Chip_delay.mean r)
      (Spsta_core.Chip_delay.stddev r);
    List.iter
      (fun target ->
        Printf.printf "clock for %.1f%% yield: %.3f\n" (100.0 *. target)
          (Spsta_core.Chip_delay.clock_for_yield r target))
      [ 0.9; 0.99; 0.999 ];
    let crit = Spsta_core.Chip_delay.endpoint_criticality r in
    let limit = if top > 0 then top else List.length crit in
    Printf.printf "endpoint criticality (top %d):\n" limit;
    List.iteri
      (fun i (e, p) ->
        if i < limit then Printf.printf "  %-12s %.4f\n" (Circuit.net_name circuit e) p)
      crit
  in
  let info = Cmd.info "chip-delay" ~doc:"Chip-level delay distribution and yield" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ top_arg)

let variation_cmd =
  let run name sigma_global sigma_spatial sigma_random grid domains check =
    let circuit = load_circuit name in
    print_header circuit;
    let model =
      Spsta_variation.Param_model.create ~sigma_global ~sigma_spatial ~sigma_random ~grid ()
    in
    let placement = Spsta_variation.Param_model.place model circuit in
    let r =
      Spsta_variation.Canonical_ssta.analyze ?check:(resolve_check check)
        ~domains:(resolve_domains domains) model placement circuit
    in
    let chip = Spsta_variation.Canonical_ssta.chip_delay r in
    Printf.printf "canonical-form SSTA chip delay: mean %.3f, sigma %.3f\n"
      chip.Spsta_variation.Canonical.mean
      (Spsta_variation.Canonical.stddev chip);
    let e_rise = Spsta_variation.Canonical_ssta.critical_endpoint r `Rise in
    let e_fall = Spsta_variation.Canonical_ssta.critical_endpoint r `Fall in
    let show direction e =
      let a = Spsta_variation.Canonical_ssta.arrival r e in
      let form =
        match direction with
        | `Rise -> a.Spsta_variation.Canonical_ssta.rise
        | `Fall -> a.Spsta_variation.Canonical_ssta.fall
      in
      Printf.printf "critical %s endpoint %s: mean %.3f sigma %.3f\n"
        (match direction with `Rise -> "rise" | `Fall -> "fall")
        (Circuit.net_name circuit e) form.Spsta_variation.Canonical.mean
        (Spsta_variation.Canonical.stddev form)
    in
    show `Rise e_rise;
    show `Fall e_fall;
    if e_rise <> e_fall then
      Printf.printf "rise/fall critical endpoint correlation: %.3f\n"
        (Spsta_variation.Canonical_ssta.endpoint_correlation r `Rise e_rise e_fall)
  in
  let sigma name default doc = Arg.(value & opt float default & info [ name ] ~docv:"SIGMA" ~doc) in
  let grid_arg =
    let doc = "Spatial-correlation grid dimension." in
    Arg.(value & opt int 4 & info [ "grid" ] ~docv:"G" ~doc)
  in
  let info = Cmd.info "variation" ~doc:"Canonical-form SSTA under process variation" in
  Cmd.v info
    Term.(
      const run $ circuit_arg
      $ sigma "sigma-global" 0.1 "Die-to-die delay sigma."
      $ sigma "sigma-spatial" 0.1 "Within-die spatially correlated sigma."
      $ sigma "sigma-random" 0.1 "Per-gate independent sigma."
      $ grid_arg $ domains_arg $ check_arg)

let report_cmd =
  let run name clock =
    let circuit = load_circuit name in
    print_header circuit;
    print_endline "structure:";
    List.iter
      (fun (key, value) -> Printf.printf "  %-16s %d\n" key value)
      (Spsta_netlist.Transform.statistics circuit);
    let r = Spsta_ssta.Timing_report.analyze ~clock_period:clock circuit in
    Printf.printf "timing at clock %.2f:\n" clock;
    print_string (Spsta_ssta.Timing_report.render circuit r)
  in
  let clock_arg =
    let doc = "Clock period constraint." in
    Arg.(value & opt float 10.0 & info [ "clock" ] ~docv:"T" ~doc)
  in
  let info = Cmd.info "report" ~doc:"Structural and slack report" in
  Cmd.v info Term.(const run $ circuit_arg $ clock_arg)

(* ---------- optimization workloads ---------- *)

module Json = Spsta_server.Json
module Criticality = Spsta_opt.Criticality
module Sizer = Spsta_opt.Sizer
module Sized_library = Spsta_netlist.Sized_library
module Cell_library = Spsta_netlist.Cell_library

let lib_of_name = function
  | "unit" -> Cell_library.unit_delay
  | "default" -> Cell_library.default
  | other ->
    Printf.eprintf "error: unknown cell library %s (unit or default)\n" other;
    exit 1

let criticality_cmd =
  let run name domain case_str lib_name dt top json check =
    let circuit = load_circuit name in
    let check = resolve_check check in
    let crit =
      match domain with
      | `Ssta ->
        let library = lib_of_name lib_name in
        let result =
          Spsta_ssta.Ssta.analyze_rf ?check
            ~delay_rf:(fun id -> Cell_library.gate_delays library circuit id)
            circuit
        in
        Criticality.of_ssta result
      | `Grid ->
        let case = case_of_string case_str in
        let spec = Experiments.Workloads.spec_fn case in
        let module B = (val Spsta_core.Top.discrete_backend ~dt ()) in
        let module A = Spsta_core.Analyzer.Make (B) in
        let result = A.analyze ?check circuit ~spec in
        Criticality.of_transition_stats circuit ~stats:(fun id dir ->
            A.transition_stats (A.signal result id) dir)
    in
    let chip = Criticality.chip_delay crit in
    let ranked = Criticality.ranked crit in
    let shown = if top > 0 then List.filteri (fun i _ -> i < top) ranked else ranked in
    if json then begin
      let gate (g, c) =
        Json.Obj
          [ ("net", Json.string (Circuit.net_name circuit g));
            ("criticality", Json.float c);
            ("slack", Json.float (Criticality.slack crit g)) ]
      in
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("circuit", Json.string (Circuit.name circuit));
                ("domain", Json.string (match domain with `Ssta -> "ssta" | `Grid -> "grid"));
                ( "chip_delay",
                  Json.Obj
                    [ ("mean", Json.float (Spsta_dist.Normal.mean chip));
                      ("stddev", Json.float (Spsta_dist.Normal.stddev chip));
                      ("q99", Json.float (Criticality.quantile crit 0.99)) ] );
                ("gates", Json.List (List.map gate shown)) ]))
    end
    else begin
      print_header circuit;
      Printf.printf "chip delay: mean %.3f, sigma %.3f, q99 %.3f\n"
        (Spsta_dist.Normal.mean chip) (Spsta_dist.Normal.stddev chip)
        (Criticality.quantile crit 0.99);
      let table =
        Spsta_util.Table.create ~headers:[ "gate"; "criticality"; "slack" ]
      in
      List.iter
        (fun (g, c) ->
          Spsta_util.Table.add_row table
            [ Circuit.net_name circuit g;
              Printf.sprintf "%.4f" c;
              Printf.sprintf "%.3f" (Criticality.slack crit g) ])
        shown;
      print_endline (Spsta_util.Table.render table)
    end
  in
  let domain_arg =
    let doc =
      "Timing domain the criticality is computed in: ssta (Clark moment-matched \
       arrivals under cell-library delays) or grid (discretised SPSTA t.o.p. \
       transition statistics)."
    in
    Arg.(value & opt (Arg.enum [ ("ssta", `Ssta); ("grid", `Grid) ]) `Ssta
         & info [ "domain" ] ~docv:"DOMAIN" ~doc)
  in
  let lib_arg =
    let doc = "Cell library for the ssta domain: unit or default." in
    Arg.(value & opt string "default" & info [ "lib" ] ~docv:"LIB" ~doc)
  in
  let dt_arg =
    let doc = "Grid step for the grid domain." in
    Arg.(value & opt float 0.1 & info [ "dt" ] ~docv:"DT" ~doc)
  in
  let top_arg =
    let doc = "Show only the N most critical gates (0 = all)." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the report as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let info =
    Cmd.info "criticality"
      ~doc:"Per-gate statistical criticality and slack"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Computes the probability every gate lies on the statistically critical \
             path: Clark tightness splits the chip delay over endpoints and a reverse \
             topological pass distributes each gate's criticality over its fan-in.  \
             Available in the SSTA domain (normal arrivals under cell-library delays) \
             and the grid-SPSTA domain (transition statistics of the discretised \
             t.o.p. functions).";
        ]
  in
  Cmd.v info
    Term.(
      const run $ circuit_arg $ domain_arg $ case_arg $ lib_arg $ dt_arg $ top_arg
      $ json_arg $ check_arg)

module Static = Spsta_analysis.Static
module Crit_bounds = Spsta_analysis.Crit_bounds
module Reconvergence = Spsta_analysis.Reconvergence

let static_cmd =
  let run names pass_str lib_name p_source top json min_regions cross =
    let passes =
      match String.trim pass_str with
      | "" | "all" -> Static.all_passes
      | s ->
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun n -> n <> "")
        |> List.map (fun n ->
               match Static.pass_of_name n with
               | Some p -> p
               | None ->
                 Printf.eprintf
                   "error: unknown pass %s (const, reconv, obs, crit or all)\n" n;
                 exit 1)
    in
    let library = lib_of_name lib_name in
    let p_source =
      match p_source with
      | None -> None
      | Some p when p >= 0.0 && p <= 1.0 -> Some (fun _ -> p)
      | Some p ->
        Printf.eprintf "error: --p-source %g outside [0,1]\n" p;
        exit 1
    in
    let short = ref 0 in
    let analyse name =
      let circuit = load_circuit name in
      let t =
        Static.run ~passes ?p_source
          ~delay_bounds:(fun id -> Crit_bounds.bounds_of_library library circuit id)
          circuit
      in
      let regions =
        match t.Static.reconvergence with
        | None -> []
        | Some r -> Reconvergence.regions r
      in
      ( match (min_regions, t.Static.reconvergence) with
      | n, Some r when n > 0 && Reconvergence.num_regions r < n -> incr short
      | _ -> () );
      let widest =
        List.stable_sort
          (fun (a : Reconvergence.region) b ->
            match compare b.width a.width with 0 -> compare a.stem b.stem | c -> c)
          regions
      in
      let shown = if top > 0 then List.filteri (fun i _ -> i < top) widest else widest in
      let checked =
        if cross then
          match t.Static.reconvergence with
          | Some r -> Reconvergence.cross_check ?p_source circuit r
          | None -> []
        else []
      in
      (name, circuit, t, shown, checked)
    in
    let results = List.map analyse names in
    if json then begin
      let region circuit (r : Reconvergence.region) =
        Json.Obj
          [ ("stem", Json.string (Circuit.net_name circuit r.stem));
            ("merge", Json.string (Circuit.net_name circuit r.merge));
            ("width", Json.int r.width);
            ("depth", Json.int r.depth);
            ( "gates",
              match r.gates with Some n -> Json.int n | None -> Json.Null ) ]
      in
      let one (name, circuit, t, shown, checked) =
        let base =
          [ ("circuit", Json.string name);
            ("nets", Json.int (Circuit.num_nets circuit));
            ("gates", Json.int (Array.length (Circuit.topo_gates circuit)));
            ( "passes",
              Json.List
                (List.map (fun p -> Json.string (Static.pass_name p)) passes) );
            ( "facts",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.int v)) (Static.fact_counts t)) );
            ("regions", Json.List (List.map (region circuit) shown)) ]
        in
        let crit =
          match t.Static.criticality with
          | Some c -> [ ("t_lb", Json.float (Crit_bounds.t_lb c)) ]
          | None -> []
        in
        let xs =
          if cross then
            [ ( "cross_check",
                Json.List
                  (List.map
                     (fun (net, eq5, exact) ->
                       Json.Obj
                         [ ("net", Json.string (Circuit.net_name circuit net));
                           ("eq5", Json.float eq5);
                           ("exact", Json.float exact) ])
                     checked) ) ]
          else []
        in
        Json.Obj (base @ crit @ xs)
      in
      print_endline (Json.to_string (Json.List (List.map one results)))
    end
    else
      List.iter
        (fun (_, circuit, t, shown, checked) ->
          print_header circuit;
          List.iter
            (fun (k, v) -> Printf.printf "  %-22s %d\n" k v)
            (Static.fact_counts t);
          ( match t.Static.criticality with
          | Some c -> Printf.printf "  %-22s %.3f\n" "t_lb" (Crit_bounds.t_lb c)
          | None -> () );
          if shown <> [] then begin
            let table =
              Spsta_util.Table.create
                ~headers:[ "stem"; "merge"; "width"; "depth"; "gates" ]
            in
            List.iter
              (fun (r : Reconvergence.region) ->
                Spsta_util.Table.add_row table
                  [ Circuit.net_name circuit r.stem;
                    Circuit.net_name circuit r.merge;
                    string_of_int r.width;
                    string_of_int r.depth;
                    (match r.gates with Some n -> string_of_int n | None -> ">cap") ])
              shown;
            print_endline (Spsta_util.Table.render table)
          end;
          List.iter
            (fun (net, eq5, exact) ->
              Printf.printf "  cross-check %-12s eq5 %.6f exact %.6f (err %.2e)\n"
                (Circuit.net_name circuit net) eq5 exact (abs_float (eq5 -. exact)))
            checked)
        results;
    if !short > 0 then begin
      Printf.eprintf "error: %d circuit(s) below --min-regions %d\n" !short min_regions;
      exit 1
    end
  in
  let circuits_arg =
    let doc = "Circuits to analyse: .bench/.v file paths or suite names." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let pass_arg =
    let doc =
      "Comma-separated passes to run: const (constant & probability-interval \
       propagation), reconv (reconvergent-fanout regions), obs (dead/unobservable \
       logic), crit (static criticality bounds), or all."
    in
    Arg.(value & opt string "all" & info [ "pass" ] ~docv:"PASSES" ~doc)
  in
  let lib_arg =
    let doc = "Cell library bounding the crit pass delays: unit or default." in
    Arg.(value & opt string "unit" & info [ "lib" ] ~docv:"LIB" ~doc)
  in
  let p_source_arg =
    let doc =
      "Pin every source to this one-probability (exact 0/1 seeds constant cones); \
       without it sources stay at the sound [0,1] interval."
    in
    Arg.(value & opt (some float) None & info [ "p-source" ] ~docv:"P" ~doc)
  in
  let top_arg =
    let doc = "Show only the N widest reconvergent regions (0 = all)." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the reports as a JSON array (one object per circuit)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let min_regions_arg =
    let doc =
      "Fail unless the reconv pass finds at least N regions in every circuit \
       (0 disables the gate)."
    in
    Arg.(value & opt int 0 & info [ "min-regions" ] ~docv:"N" ~doc)
  in
  let cross_arg =
    let doc =
      "BDD cross-check: report the eq. 5 (independent) versus exact probability at \
       every region merge net (skipped silently when the circuit exceeds the BDD \
       node budget)."
    in
    Arg.(value & flag & info [ "cross-check" ] ~doc)
  in
  let exits =
    Cmd.Exit.defaults
    @ [ Cmd.Exit.info ~doc:"when a circuit falls below $(b,--min-regions)." 1 ]
  in
  let info =
    Cmd.info "static" ~exits
      ~doc:"Dataflow static analysis: constants, reconvergence, observability, criticality"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs the reusable dataflow passes over each circuit's levelized CSR \
             form: Fréchet-bounded constant and probability-interval propagation, \
             post-dominator reconvergent-fanout region detection (the nets where the \
             paper's eq. 5 independence assumption is unsound), backward \
             observability (dead and constant-masked logic), and min/max arrival \
             bounds that prove gates statically never-critical.  The same facts \
             power the lint dataflow rules, the sizer's $(b,--static-prune) and the \
             server's $(b,static) request kind.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ circuits_arg $ pass_arg $ lib_arg $ p_source_arg $ top_arg $ json_arg
      $ min_regions_arg $ cross_arg)

let size_cmd =
  let run name quantile target area_budget max_moves candidates threshold sizes ratio
      initial static_prune json check =
    let circuit = load_circuit name in
    let sized =
      try Sized_library.family ~sizes ~ratio Cell_library.default
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let initial =
      match initial with
      | "smallest" -> None
      | "largest" ->
        Some (Sized_library.uniform sized circuit ~size:(Sized_library.num_sizes sized - 1))
      | other ->
        Printf.eprintf "error: unknown initial assignment %s (smallest or largest)\n" other;
        exit 1
    in
    let config =
      {
        Sizer.quantile;
        target = (if target > 0.0 then Some target else None);
        area_budget = (if area_budget > 0.0 then Some area_budget else None);
        max_moves;
        candidates;
        downsize_threshold = threshold;
      }
    in
    let never_critical, prune =
      if static_prune then begin
        let bounds =
          Crit_bounds.run
            ~delay_bounds:(fun id -> Crit_bounds.bounds_of_sized sized circuit id)
            circuit
        in
        (Crit_bounds.num_never_critical bounds, Some (Crit_bounds.never_critical bounds))
      end
      else (0, None)
    in
    let report =
      try Sizer.run ~config ?check:(resolve_check check) ?initial ?prune sized circuit
      with Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let dir = function `Up -> "up" | `Down -> "down" in
    if json then begin
      let move (m : Sizer.move) =
        Json.Obj
          [ ("net", Json.string (Circuit.net_name circuit m.Sizer.net));
            ("direction", Json.string (dir m.Sizer.direction));
            ("from_size", Json.int m.Sizer.from_size);
            ("to_size", Json.int m.Sizer.to_size);
            ("objective_after", Json.float m.Sizer.objective_after);
            ("area_after", Json.float m.Sizer.area_after) ]
      in
      let curve points =
        Json.List
          (List.map
             (fun (p, t) ->
               Json.Obj [ ("yield", Json.float p); ("clock", Json.float t) ])
             points)
      in
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("circuit", Json.string (Circuit.name circuit));
                ("quantile", Json.float quantile);
                ("objective_before", Json.float report.Sizer.objective_before);
                ("objective_after", Json.float report.Sizer.objective_after);
                ("area_before", Json.float report.Sizer.area_before);
                ("area_after", Json.float report.Sizer.area_after);
                ("capacitance_before", Json.float report.Sizer.capacitance_before);
                ("capacitance_after", Json.float report.Sizer.capacitance_after);
                ("evaluations", Json.int report.Sizer.evaluations);
                ("never_critical", Json.int never_critical);
                ("pruned", Json.int report.Sizer.pruned);
                ("moves", Json.List (List.map move report.Sizer.moves));
                ("yield_before", curve report.Sizer.yield_before);
                ("yield_after", curve report.Sizer.yield_after) ]))
    end
    else begin
      print_header circuit;
      Printf.printf "objective (q%.2g): %.4f -> %.4f%s\n" quantile
        report.Sizer.objective_before report.Sizer.objective_after
        (if report.Sizer.objective_after < report.Sizer.objective_before then " (improved)"
         else "");
      Printf.printf "area: %.1f -> %.1f\n" report.Sizer.area_before report.Sizer.area_after;
      Printf.printf "switched capacitance: %.1f -> %.1f\n" report.Sizer.capacitance_before
        report.Sizer.capacitance_after;
      Printf.printf "moves: %d (%d incremental evaluations)\n"
        (List.length report.Sizer.moves)
        report.Sizer.evaluations;
      if static_prune then
        Printf.printf "static prune: %d never-critical gate(s), %d candidate(s) skipped\n"
          never_critical report.Sizer.pruned;
      List.iter
        (fun (m : Sizer.move) ->
          Printf.printf "  %-4s %-12s %d -> %d  objective %.4f  area %.1f\n"
            (dir m.Sizer.direction)
            (Circuit.net_name circuit m.Sizer.net)
            m.Sizer.from_size m.Sizer.to_size m.Sizer.objective_after m.Sizer.area_after)
        report.Sizer.moves
    end
  in
  let quantile_arg =
    let doc = "Objective percentile of the chip-delay distribution, in (0, 1)." in
    Arg.(value & opt float 0.99 & info [ "quantile" ] ~docv:"Q" ~doc)
  in
  let target_arg =
    let doc = "Target objective: stop upsizing once reached (0 = minimize)." in
    Arg.(value & opt float 0.0 & info [ "target" ] ~docv:"T" ~doc)
  in
  let budget_arg =
    let doc = "Absolute total-area budget (0 = unbounded)." in
    Arg.(value & opt float 0.0 & info [ "area-budget" ] ~docv:"A" ~doc)
  in
  let moves_arg =
    let doc = "Maximum committed moves across both phases." in
    Arg.(value & opt int 400 & info [ "max-moves" ] ~docv:"N" ~doc)
  in
  let candidates_arg =
    let doc = "Critical gates trialled per upsize iteration." in
    Arg.(value & opt int 8 & info [ "candidates" ] ~docv:"K" ~doc)
  in
  let threshold_arg =
    let doc = "Criticality at or below which a gate may be downsized." in
    Arg.(value & opt float 0.01 & info [ "downsize-threshold" ] ~docv:"C" ~doc)
  in
  let sizes_arg =
    let doc = "Sized variants per cell." in
    Arg.(value & opt int 4 & info [ "sizes" ] ~docv:"N" ~doc)
  in
  let ratio_arg =
    let doc = "Drive-strength ratio between adjacent sizes (> 1)." in
    Arg.(value & opt float 1.5 & info [ "ratio" ] ~docv:"R" ~doc)
  in
  let initial_arg =
    let doc =
      "Starting assignment: smallest (tightening run) or largest (power recovery: \
       phase B downsizes everything the target can spare)."
    in
    Arg.(value & opt string "smallest" & info [ "initial" ] ~docv:"START" ~doc)
  in
  let static_prune_arg =
    let doc =
      "Skip upsize trials on gates the static arrival bounds \
       ($(b,spsta static --pass crit)) prove can never be critical under any drive \
       strength in the family; the skipped-candidate count is reported."
    in
    Arg.(value & flag & info [ "static-prune" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the full move/yield report as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let info =
    Cmd.info "size"
      ~doc:"Greedy statistical gate sizing on the incremental SSTA engine"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs a TILOS-style sensitivity-guided sizing loop over a derived \
             drive-strength family of the default cell library: upsize the best \
             objective-per-area move on the statistically critical set, then downsize \
             off-critical gates to recover area and switched capacitance.  Every \
             candidate move is evaluated with dirty-cone incremental re-analysis; the \
             loop is deterministic and reproduces bit-identical reports for a fixed \
             circuit and flags.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ circuit_arg $ quantile_arg $ target_arg $ budget_arg $ moves_arg
      $ candidates_arg $ threshold_arg $ sizes_arg $ ratio_arg $ initial_arg
      $ static_prune_arg $ json_arg $ check_arg)

let waveform_cmd =
  let run name net_name case_str check =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    let net =
      match net_name with
      | Some n -> (
        match Circuit.find circuit n with
        | Some id -> id
        | None ->
          Printf.eprintf "error: no net named %s\n" n;
          exit 1 )
      | None ->
        (* default: the deepest endpoint *)
        List.fold_left
          (fun best e -> if Circuit.level circuit e > Circuit.level circuit best then e else best)
          (List.hd (Circuit.endpoints circuit))
          (Circuit.endpoints circuit)
    in
    print_header circuit;
    let module B = (val Spsta_core.Top.discrete_backend ~dt:0.1 ()) in
    let module A = Spsta_core.Analyzer.Make (B) in
    let r = A.analyze ?check:(resolve_check check) circuit ~spec in
    let s = A.signal r net in
    Printf.printf "net %s: " (Circuit.net_name circuit net);
    Format.printf "%a@." Spsta_core.Four_value.pp s.A.probs;
    let show label top =
      let total = Spsta_dist.Discrete.total top in
      if total <= 0.0 then Printf.printf "%s: no transitions\n" label
      else begin
        Printf.printf "%s t.o.p. (P = %.3f, mean %.3f, sigma %.3f, skew %+.3f):\n" label total
          (Spsta_dist.Discrete.mean top) (Spsta_dist.Discrete.stddev top)
          (Spsta_dist.Discrete.skewness top);
        let peak =
          List.fold_left (fun acc (_, m) -> Float.max acc m) 0.0 (Spsta_dist.Discrete.series top)
        in
        List.iter
          (fun (t, m) ->
            if m > peak /. 50.0 then
              Printf.printf "  %7.2f | %s\n" t
                (String.make (int_of_float (Float.round (m /. peak *. 50.0))) '#'))
          (Spsta_dist.Discrete.series top)
      end
    in
    show "rise" s.A.rise;
    show "fall" s.A.fall
  in
  let net_arg =
    let doc = "Net to display (default: the deepest endpoint)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"NET" ~doc)
  in
  let info = Cmd.info "waveform" ~doc:"ASCII t.o.p. waveform of a net" in
  Cmd.v info Term.(const run $ circuit_arg $ net_arg $ case_arg $ check_arg)

let export_cmd =
  let run name case_str out_dir runs seed =
    let circuit = load_circuit name in
    let case = case_of_string case_str in
    let spec = Experiments.Workloads.spec_fn case in
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let file base = Filename.concat out_dir base in
    let circuit_name = if Circuit.name circuit = "" then "circuit" else Circuit.name circuit in
    (* chip delay distribution *)
    Experiments.Export.write_file
      ~path:(file (circuit_name ^ "_chip_delay.csv"))
      (Experiments.Export.chip_delay_distribution circuit ~spec);
    (* per-endpoint t.o.p. series and MC histogram for the deepest endpoint *)
    let e =
      List.fold_left
        (fun best x -> if Circuit.level circuit x > Circuit.level circuit best then x else best)
        (List.hd (Circuit.endpoints circuit))
        (Circuit.endpoints circuit)
    in
    Experiments.Export.write_file
      ~path:(file (Printf.sprintf "%s_%s_top.csv" circuit_name (Circuit.net_name circuit e)))
      (Experiments.Export.top_series circuit ~spec ~net:e);
    Experiments.Export.write_file
      ~path:(file (Printf.sprintf "%s_%s_mc.csv" circuit_name (Circuit.net_name circuit e)))
      (Experiments.Export.mc_histogram ~runs ~seed circuit ~spec ~net:e);
    Printf.printf "wrote 3 CSV files under %s\n" out_dir
  in
  let out_arg =
    let doc = "Output directory for the CSV files." in
    Arg.(value & opt string "export" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let info = Cmd.info "export" ~doc:"Export analysis artefacts as CSV" in
  Cmd.v info Term.(const run $ circuit_arg $ case_arg $ out_arg $ runs_arg $ seed_arg)

let gen_cmd =
  let run name out format =
    match Generator.find_profile name with
    | None ->
      Printf.eprintf "error: no profile named %s\n" name;
      exit 1
    | Some profile ->
      let circuit = Generator.generate profile in
      let to_string, write_file =
        match format with
        | "bench" -> (Bench_io.to_string, Bench_io.write_file)
        | "verilog" | "v" ->
          (Spsta_netlist.Verilog_io.to_string, Spsta_netlist.Verilog_io.write_file)
        | other ->
          Printf.eprintf "error: unknown format %s (bench or verilog)\n" other;
          exit 1
      in
      ( match out with
      | None -> print_string (to_string circuit)
      | Some path ->
        write_file circuit path;
        Printf.printf "wrote %s\n" path )
  in
  let out_arg =
    let doc = "Output path (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let format_arg =
    let doc = "Netlist format: bench (default) or verilog." in
    Arg.(value & opt string "bench" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let info = Cmd.info "gen" ~doc:"Emit a synthetic suite circuit as .bench or Verilog" in
  Cmd.v info Term.(const run $ circuit_arg $ out_arg $ format_arg)

let experiment_cmd =
  let run id runs seed mc_engine mc_domains =
    let mc_domains = resolve_domains mc_domains in
    match Experiments.Runner.run ~runs ~seed ~mc_engine ~mc_domains id with
    | output -> print_string output
    | exception Not_found ->
      Printf.eprintf "error: unknown experiment %s (one of: %s)\n" id
        (String.concat ", " Experiments.Runner.experiment_ids);
      exit 1
  in
  let id_arg =
    let doc = "Experiment id: table1, table2, table3, fig1..fig4, summary." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let info = Cmd.info "experiment" ~doc:"Regenerate a paper table or figure" in
  Cmd.v info Term.(const run $ id_arg $ runs_arg $ seed_arg $ mc_engine_arg $ mc_domains_arg)

let list_cmd =
  let run () =
    print_endline "suite circuits:";
    List.iter
      (fun c -> Format.printf "  %a@." Circuit.pp_summary c)
      (Experiments.Benchmarks.all ());
    print_endline "experiments:";
    List.iter (Printf.printf "  %s\n") Experiments.Runner.experiment_ids
  in
  let info = Cmd.info "list" ~doc:"List suite circuits and experiments" in
  Cmd.v info Term.(const run $ const ())

(* ---------- service mode ---------- *)

module Server = Spsta_server.Server
module Protocol = Spsta_server.Protocol
module Transport = Spsta_server.Transport

let server_config workers queue cache deadline_ms analysis_domains max_sessions idle_timeout
    store max_frame max_inflight no_fsync =
  let base = Server.default_config in
  {
    base with
    Server.workers = (if workers > 0 then workers else base.Server.workers);
    queue_capacity = (if queue > 0 then queue else base.Server.queue_capacity);
    result_cache = (if cache > 0 then cache else base.Server.result_cache);
    default_deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
    analysis_domains =
      (if analysis_domains > 0 then analysis_domains else base.Server.analysis_domains);
    max_sessions = (if max_sessions > 0 then max_sessions else base.Server.max_sessions);
    idle_timeout_s = (if idle_timeout > 0.0 then idle_timeout else base.Server.idle_timeout_s);
    store_path = (if store = "" then None else Some store);
    store_fsync = not no_fsync;
    max_frame_bytes = (if max_frame > 0 then max_frame else base.Server.max_frame_bytes);
    max_inflight = (if max_inflight > 0 then max_inflight else base.Server.max_inflight);
  }

let workers_arg =
  let doc = "Worker domains (0 = one per available core)." in
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Bounded job-queue capacity (submissions block when full)." in
  Arg.(value & opt int 0 & info [ "queue" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Result memo-table capacity (entries)." in
  Arg.(value & opt int 0 & info [ "cache" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Default per-request deadline in milliseconds (0 = none)." in
  Arg.(value & opt float 0.0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let analysis_domains_arg =
  let doc =
    "Domains per SPSTA/SSTA propagation within one request (default 1; responses are \
     bit-identical at every value).  Raise only for few large requests — [--workers] \
     already parallelises across requests."
  in
  Arg.(value & opt int 0 & info [ "analysis-domains" ] ~docv:"N" ~doc)

let max_sessions_arg =
  let doc = "Maximum concurrently open timing sessions (0 = default)." in
  Arg.(value & opt int 0 & info [ "max-sessions" ] ~docv:"N" ~doc)

let idle_timeout_arg =
  let doc = "Evict sessions idle longer than this many seconds (socket transports only)." in
  Arg.(value & opt float 0.0 & info [ "idle-timeout" ] ~docv:"S" ~doc)

let store_arg =
  let doc =
    "Persistent result store (append-only JSONL).  Memoised analysis payloads survive \
     restarts, and any instance pointed at the same path answers previously-computed \
     requests as warm cache hits."
  in
  Arg.(value & opt string "" & info [ "store" ] ~docv:"PATH" ~doc)

let max_frame_arg =
  let doc = "Maximum JSONL frame size in bytes on socket transports (0 = default 1 MiB)." in
  Arg.(value & opt int 0 & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let max_inflight_arg =
  let doc = "Maximum in-flight requests per connection before [overloaded] (0 = default)." in
  Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)

let no_fsync_arg =
  let doc = "Skip the fsync after each store append (faster, loses crash durability)." in
  Arg.(value & flag & info [ "no-fsync" ] ~doc)

let config_term =
  Term.(
    const server_config $ workers_arg $ queue_arg $ cache_arg $ deadline_arg
    $ analysis_domains_arg $ max_sessions_arg $ idle_timeout_arg $ store_arg $ max_frame_arg
    $ max_inflight_arg $ no_fsync_arg)

let socket_arg =
  let doc = "Serve on (or connect to) a Unix-domain socket at this path." in
  Arg.(value & opt string "" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Serve on (or connect to) TCP 127.0.0.1:$(docv)." in
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let run config socket port =
    let listen =
      if socket <> "" then Transport.Unix_socket socket
      else if port > 0 then Transport.Tcp port
      else Transport.Stdio
    in
    (* transport events are chatter on the stdio transport, where stderr
       already carries the final metrics block *)
    let log = match listen with Transport.Stdio -> fun _ -> () | _ -> prerr_endline in
    let t = Transport.run ~config ~log listen in
    prerr_string (Spsta_server.Metrics.render (Server.metrics t))
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Serve JSONL analysis and session requests — from stdin, a Unix-domain socket \
         ($(b,--socket)) or TCP ($(b,--port)).  SIGTERM/SIGINT drain gracefully."
  in
  Cmd.v info Term.(const run $ config_term $ socket_arg $ port_arg)

let batch_cmd =
  let run file config =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "error: no request file %s\n" file;
      exit 1
    end;
    let t, responses = Server.run_batch_file ~config file in
    List.iter (fun r -> print_endline (Protocol.response_to_line r)) responses;
    prerr_string (Spsta_server.Metrics.render (Server.metrics t));
    if List.exists (fun r -> not (Protocol.is_ok r)) responses then exit 2
  in
  let file_arg =
    let doc = "JSONL request file (one request object per line)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let exits =
    Cmd.Exit.defaults
    @ [ Cmd.Exit.info ~doc:"when any response in the batch is an error." 2 ]
  in
  let info =
    Cmd.info "batch" ~exits
      ~doc:"Execute a JSONL request file concurrently; print responses in request order"
  in
  Cmd.v info Term.(const run $ file_arg $ config_term)

(* ---------- session client ---------- *)

(* Lock-step JSONL client: one request on the wire at a time, so the
   next line read is always the matching response. *)
let session_rpc ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  match input_line ic with
  | exception End_of_file ->
    Printf.eprintf "error: server closed the connection\n";
    exit 1
  | response -> response

let session_request id kind = Protocol.request_to_line { Protocol.id; deadline_ms = None; kind }

let session_expect_ok line =
  match Protocol.response_of_line line with
  | Ok (Protocol.Ok { result; _ }) -> result
  | Ok (Protocol.Error { code; message; _ }) ->
    Printf.eprintf "error: server answered %s: %s\n" (Protocol.error_code_name code) message;
    exit 1
  | Error e ->
    Printf.eprintf "error: unparseable response: %s\n" e.Protocol.message;
    exit 1

let json_float json key =
  match Spsta_server.Json.member key json with
  | Some (Spsta_server.Json.Num n) -> n
  | _ -> nan

let json_bool json key =
  match Spsta_server.Json.member key json with
  | Some (Spsta_server.Json.Bool b) -> b
  | _ -> false

(* Connect to a running server, or — with neither [--socket] nor
   [--port] — spin up an in-process stdio server on a pipe pair, so
   scripts and quick experiments need no separate process. *)
let session_connect config socket port =
  if socket <> "" then begin
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX socket) in
    ((fun () -> try Unix.shutdown_connection ic with _ -> ()), ic, oc)
  end
  else if port > 0 then begin
    let ic, oc = Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) in
    ((fun () -> try Unix.shutdown_connection ic with _ -> ()), ic, oc)
  end
  else begin
    let req_r, req_w = Unix.pipe () in
    let resp_r, resp_w = Unix.pipe () in
    let server =
      Domain.spawn (fun () ->
          let sic = Unix.in_channel_of_descr req_r in
          let soc = Unix.out_channel_of_descr resp_w in
          ignore (Server.serve ~config sic soc))
    in
    let ic = Unix.in_channel_of_descr resp_r in
    let oc = Unix.out_channel_of_descr req_w in
    let cleanup () =
      close_out_noerr oc;
      Domain.join server;
      close_in_noerr ic
    in
    (cleanup, ic, oc)
  end

(* Scripted ECO exercise: open a session, stream [mutations] single-gate
   edits (resizes with an occasional inversion-flip retype), then verify
   the incremental state against a from-scratch sweep and report the
   measured speedup.  Exits non-zero unless the arrivals are
   bit-identical and the speedup clears [--min-speedup]. *)
let session_exercise ic oc circuit mutations seed min_speedup =
  let module Rng = Spsta_util.Rng in
  let module Gate_kind = Spsta_logic.Gate_kind in
  let c = Spsta_server.Cache.default_loader circuit in
  let gates = Circuit.topo_gates c in
  if Array.length gates = 0 then begin
    Printf.eprintf "error: circuit %s has no gates to mutate\n" circuit;
    exit 1
  end;
  let rng = Rng.create ~seed in
  let session = Printf.sprintf "exercise-%d" seed in
  let rpc kind = session_expect_ok (session_rpc ic oc (session_request session kind)) in
  let sizes = 4 in
  let opened =
    rpc (Protocol.Session_open { session; circuit; sizes; ratio = 1.5 })
  in
  Printf.printf "opened %s on %s: %d gates, full analysis %.3f ms\n%!" session circuit
    (Array.length gates) (json_float opened "full_ms");
  (* mirror the server-side state so every resize really changes the
     size and every retype flips the current kind *)
  let size_of = Array.make (Circuit.num_nets c) 0 in
  let kind_of =
    Array.map
      (fun g ->
        match Circuit.driver c g with
        | Circuit.Gate { kind; _ } -> kind
        | Circuit.Input | Circuit.Dff_output _ -> Gate_kind.Buf)
      (Array.init (Circuit.num_nets c) Fun.id)
  in
  let flip = function
    | Gate_kind.And -> Gate_kind.Nand
    | Gate_kind.Nand -> Gate_kind.And
    | Gate_kind.Or -> Gate_kind.Nor
    | Gate_kind.Nor -> Gate_kind.Or
    | Gate_kind.Xor -> Gate_kind.Xnor
    | Gate_kind.Xnor -> Gate_kind.Xor
    | Gate_kind.Not -> Gate_kind.Buf
    | Gate_kind.Buf -> Gate_kind.Not
  in
  let applied = ref 0 in
  for i = 1 to mutations do
    let g = gates.(Rng.int rng (Array.length gates)) in
    let net = Circuit.net_name c g in
    let mutation =
      if i mod 5 = 0 then begin
        let gate = flip kind_of.(g) in
        kind_of.(g) <- gate;
        Protocol.Retype { net; gate }
      end
      else begin
        (* a fresh size uniform over the others *)
        let shift = 1 + Rng.int rng (sizes - 1) in
        let size = (size_of.(g) + shift) mod sizes in
        size_of.(g) <- size;
        Protocol.Resize { net; size }
      end
    in
    let payload = rpc (Protocol.Session_mutate { session; mutation }) in
    if json_bool payload "applied" then incr applied
  done;
  let v = rpc (Protocol.Session_verify { session }) in
  let identical = json_bool v "identical" in
  let speedup = json_float v "speedup" in
  Printf.printf
    "%d mutations (%d applied), mean dirty cone %.1f gates\n\
     full sweep %.3f ms, mean incremental %.3f ms, speedup %.1fx\n\
     bit-identical to from-scratch analysis: %b\n%!"
    mutations !applied (json_float v "mean_dirty_cone") (json_float v "full_ms")
    (json_float v "mean_incremental_ms") speedup identical;
  ignore (rpc (Protocol.Session_close { session }));
  if not identical then begin
    Printf.eprintf "error: incremental state diverged from the from-scratch analysis\n";
    exit 1
  end;
  if min_speedup > 0.0 && speedup < min_speedup then begin
    Printf.eprintf "error: speedup %.2fx below required %.2fx\n" speedup min_speedup;
    exit 1
  end

(* Replay a JSONL request file (or stdin) lock-step, printing each
   response; exit 2 if any response is an error. *)
let session_replay ic oc input =
  let ok = ref true in
  ( try
      while true do
        let line = String.trim (input_line input) in
        if line <> "" then begin
          let response = session_rpc ic oc line in
          print_endline response;
          match Protocol.response_of_line response with
          | Ok r -> if not (Protocol.is_ok r) then ok := false
          | Error _ -> ok := false
        end
      done
    with End_of_file -> () );
  if not !ok then exit 2

let session_cmd =
  let run config socket port script exercise mutations seed min_speedup =
    let cleanup, ic, oc = session_connect config socket port in
    Fun.protect ~finally:cleanup (fun () ->
        match exercise with
        | Some circuit -> session_exercise ic oc circuit mutations seed min_speedup
        | None -> (
          match script with
          | Some file ->
            if not (Sys.file_exists file) then begin
              Printf.eprintf "error: no script file %s\n" file;
              exit 1
            end;
            let input = open_in file in
            Fun.protect ~finally:(fun () -> close_in_noerr input) (fun () ->
                session_replay ic oc input)
          | None -> session_replay ic oc stdin ))
  in
  let script_arg =
    let doc = "Replay a JSONL request file lock-step and print each response." in
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let exercise_arg =
    let doc =
      "Run a scripted ECO exercise against this circuit: open a session, stream random \
       single-gate mutations, verify bit-identity against a from-scratch analysis and \
       report the incremental speedup."
    in
    Arg.(value & opt (some string) None & info [ "exercise" ] ~docv:"CIRCUIT" ~doc)
  in
  let mutations_arg =
    let doc = "Mutations to stream in $(b,--exercise) mode." in
    Arg.(value & opt int 120 & info [ "mutations" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for $(b,--exercise) mode." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"K" ~doc)
  in
  let min_speedup_arg =
    let doc =
      "Fail unless the measured incremental speedup reaches this factor ($(b,--exercise) \
       mode; 0 disables the gate)."
    in
    Arg.(value & opt float 0.0 & info [ "min-speedup" ] ~docv:"X" ~doc)
  in
  let exits =
    Cmd.Exit.defaults
    @ [ Cmd.Exit.info ~doc:"when any replayed response is an error." 2 ]
  in
  let info =
    Cmd.info "session" ~exits
      ~doc:
        "Interactive timing-session client: connect to a server ($(b,--socket) or \
         $(b,--port)) or run one in-process, then stream requests from a script, an \
         exercise generator, or stdin."
  in
  Cmd.v info
    Term.(
      const run $ config_term $ socket_arg $ port_arg $ script_arg $ exercise_arg
      $ mutations_arg $ seed_arg $ min_speedup_arg)

let subcommands =
  [ analyze_cmd; lint_cmd; check_cmd; ssta_cmd; mc_cmd; power_cmd; exact_prob_cmd;
    paths_cmd; sequential_cmd; chip_delay_cmd; variation_cmd; report_cmd; criticality_cmd;
    static_cmd; size_cmd; waveform_cmd; export_cmd; gen_cmd; experiment_cmd; list_cmd; serve_cmd;
    batch_cmd; session_cmd ]

let main =
  let doc = "Signal Probability Based Statistical Timing Analysis (DATE 2008)" in
  let info = Cmd.info "spsta" ~version:"1.0.0" ~doc in
  Cmd.group info subcommands

(* Cmdliner's unknown-command error does not enumerate the choices;
   pre-scan the first argument so a typo gets the full subcommand list
   (unambiguous prefixes are still accepted and left to cmdliner). *)
let () =
  let names = List.map Cmd.name subcommands in
  ( match Sys.argv with
  | [||] | [| _ |] -> ()
  | argv ->
    let cmd = argv.(1) in
    let is_prefix name =
      String.length cmd <= String.length name && String.sub name 0 (String.length cmd) = cmd
    in
    if String.length cmd > 0 && cmd.[0] <> '-' && not (List.exists is_prefix names) then begin
      Printf.eprintf "spsta: unknown subcommand %s\navailable subcommands: %s\n" cmd
        (String.concat ", " names);
      Printf.eprintf "run 'spsta --help' for details\n";
      exit Cmd.Exit.cli_error
    end );
  exit (Cmd.eval main)
