(* Interval signal probabilities under arbitrary correlation
   (Fréchet–Hoeffding per-gate bounds), with exact 0/1 endpoints acting
   as the constant lattice.  Forward pass; the register boundary narrows
   unpinned flip-flop outputs by intersection with their D interval. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind

type t = {
  circuit : Circuit.t;
  arena : Dataflow.Arena.t;
  lo : float array;
  hi : float array;
  pin : Bytes.t;  (* sources pinned by p_source: boundary leaves them alone *)
  scratch : int array;  (* fan-in dedupe workspace, length max_fanin *)
  mutable stats : Dataflow.stats;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(* Interval XOR under arbitrary correlation: for point marginals p, q
   the reachable set is [|p-q|, min(p+q, 2-p-q)]; minimise/maximise over
   the operand boxes. *)
let xor_step la ha lb hb =
  let l =
    if la <= hb && lb <= ha then 0.0 else if la > hb then la -. hb else lb -. ha
  in
  let h =
    if la +. lb <= 1.0 && 1.0 <= ha +. hb then 1.0
    else Float.min (ha +. hb) (2.0 -. la -. lb)
  in
  (l, h)

let transfer t csr k =
  let out = csr.Circuit.gate_net.(k) in
  let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
  let kind = Gate_kind.of_code csr.Circuit.kind_code.(k) in
  let lo_a = t.lo and hi_a = t.hi in
  let l, h =
    match kind with
    | Gate_kind.Buf | Gate_kind.Not ->
      let i = csr.Circuit.fanin.(i0) in
      (lo_a.(i), hi_a.(i))
    | Gate_kind.And | Gate_kind.Nand | Gate_kind.Or | Gate_kind.Nor ->
      (* idempotent: fold each distinct input once *)
      let m = ref 0 in
      for j = i0 to i1 - 1 do
        let id = csr.Circuit.fanin.(j) in
        let dup = ref false in
        for s = 0 to !m - 1 do
          if t.scratch.(s) = id then dup := true
        done;
        if not !dup then (
          t.scratch.(!m) <- id;
          incr m)
      done;
      let conj = kind = Gate_kind.And || kind = Gate_kind.Nand in
      let l = ref (if conj then 1.0 else 0.0) in
      let h = ref !l in
      for s = 0 to !m - 1 do
        let id = t.scratch.(s) in
        if conj then (
          l := Float.max 0.0 (!l +. lo_a.(id) -. 1.0);
          h := Float.min !h hi_a.(id))
        else (
          l := Float.max !l lo_a.(id);
          h := Float.min 1.0 (!h +. hi_a.(id)))
      done;
      (!l, !h)
    | Gate_kind.Xor | Gate_kind.Xnor ->
      (* a XOR a cancels: keep inputs of odd multiplicity *)
      let m = ref 0 in
      for j = i0 to i1 - 1 do
        let id = csr.Circuit.fanin.(j) in
        let pos = ref (-1) in
        for s = 0 to !m - 1 do
          if t.scratch.(s) = id then pos := s
        done;
        if !pos >= 0 then (
          t.scratch.(!pos) <- t.scratch.(!m - 1);
          decr m)
        else (
          t.scratch.(!m) <- id;
          incr m)
      done;
      let l = ref 0.0 and h = ref 0.0 in
      for s = 0 to !m - 1 do
        let id = t.scratch.(s) in
        let l', h' = xor_step !l !h lo_a.(id) hi_a.(id) in
        l := l';
        h := h'
      done;
      (!l, !h)
  in
  let l, h = if Gate_kind.inverting kind then (1.0 -. h, 1.0 -. l) else (l, h) in
  let l = clamp01 l and h = clamp01 h in
  if l <> lo_a.(out) || h <> hi_a.(out) then (
    lo_a.(out) <- l;
    hi_a.(out) <- h;
    true)
  else false

(* The steady-state one-probability of a flip-flop output equals its D
   net's, so Q may be narrowed by intersection.  An empty intersection
   can only arise from rounding fuzz; keep the old interval then.  The
   tolerance keeps sequential feedback from scheduling rounds for
   sub-ulp shrinkage (max_rounds still backstops). *)
let narrow_eps = 1e-12

let boundary t circuit =
  let changed = ref false in
  List.iter
    (fun (q, d) ->
      if Bytes.get t.pin q = '\000' then (
        let lo = Float.max t.lo.(q) t.lo.(d) and hi = Float.min t.hi.(q) t.hi.(d) in
        if
          lo <= hi
          && (lo -. t.lo.(q) > narrow_eps || t.hi.(q) -. hi > narrow_eps)
        then (
          t.lo.(q) <- lo;
          t.hi.(q) <- hi;
          changed := true)))
    (Circuit.dffs circuit);
  !changed

let run ?arena ?p_source ?(max_rounds = 64) circuit =
  let arena = match arena with Some a -> a | None -> Dataflow.Arena.create circuit in
  let lo = Dataflow.Arena.floats arena "p_lo" ~init:0.0 in
  let hi = Dataflow.Arena.floats arena "p_hi" ~init:1.0 in
  let pin = Dataflow.Arena.bytes arena "p_pin" ~init:'\000' in
  (match p_source with
  | None -> ()
  | Some f ->
    List.iter
      (fun s ->
        let p = f s in
        if not (Float.is_finite p && 0.0 <= p && p <= 1.0) then
          invalid_arg
            (Printf.sprintf "Constprop.run: p_source %g outside [0,1] for net %s" p
               (Circuit.net_name circuit s));
        lo.(s) <- p;
        hi.(s) <- p;
        Bytes.set pin s '\001')
      (Circuit.sources circuit));
  let csr = Circuit.csr circuit in
  let state =
    {
      circuit;
      arena;
      lo;
      hi;
      pin;
      scratch = Array.make (max 1 csr.Circuit.max_fanin) 0;
      stats = { Dataflow.rounds = 0; sweeps = 0; gate_visits = 0 };
    }
  in
  let module P = struct
    type nonrec t = t

    let name = "constprop"
    let direction = `Forward
    let state = state
    let transfer = transfer
    let boundary = boundary
  end in
  state.stats <- Dataflow.run ~max_rounds circuit (module P);
  state

let lo t id = t.lo.(id)
let hi t id = t.hi.(id)
let interval t id = (t.lo.(id), t.hi.(id))

let const_of t id =
  if t.hi.(id) = 0.0 then Some false else if t.lo.(id) = 1.0 then Some true else None

let constants t =
  Array.fold_right
    (fun id acc -> if const_of t id <> None then id :: acc else acc)
    (Circuit.topo_gates t.circuit) []

let num_constants t =
  Array.fold_left
    (fun acc id -> if const_of t id <> None then acc + 1 else acc)
    0 (Circuit.topo_gates t.circuit)

let num_bounded t =
  let n = ref 0 in
  for id = 0 to Array.length t.lo - 1 do
    if t.hi.(id) -. t.lo.(id) < 1.0 then incr n
  done;
  !n

let mask t =
  let n = Array.length t.lo in
  let b = Bytes.make n '\000' in
  for id = 0 to n - 1 do
    if const_of t id <> None then Bytes.set b id '\001'
  done;
  b

let stats t = t.stats
