(** Constant and signal-probability-interval propagation.

    Every net carries an interval [[lo, hi]] bounding its one-probability
    P(net = 1) under {e arbitrary} correlation between gate inputs: the
    per-gate transfer uses the Fréchet–Hoeffding bounds (AND of p and q
    lies in [max(0, p+q-1), min(p, q)], OR in [max(p, q), min(1, p+q)],
    XOR in [|p-q| .. min(p+q, 2-p-q)]), so unlike the paper's eq. 5 the
    result is sound on reconvergent fanout.  Literal duplicate fan-in is
    recognised (a AND a = a, a XOR a = 0), which is what lets structural
    constants appear without constant sources.

    A net whose interval collapses to exactly [0,0] or [1,1] is a
    {e static constant}: controlling values propagate through
    {!Spsta_logic.Gate_kind} semantics (AND with a constant-0 input is
    constant 0, etc.), so one constant seeds a folded cone.  Downstream
    consumers ({!Spsta_ssta.Ssta}, lint rule [constant-logic]) read the
    constant set as a {!mask}.

    Sources default to [[0,1]]; [p_source] pins a source to a point
    probability (and exact 0/1 pins make it a constant).  Pinned
    flip-flop outputs are left alone by the register boundary; unpinned
    ones are narrowed each round by intersecting with their D net's
    interval (sound for the steady state, where Q and D share a
    distribution). *)

type t

val run :
  ?arena:Dataflow.Arena.t ->
  ?p_source:(Spsta_netlist.Circuit.id -> float) ->
  ?max_rounds:int ->
  Spsta_netlist.Circuit.t ->
  t
(** Lanes ["p_lo"], ["p_hi"], ["p_pin"] in the arena (created fresh when
    [arena] is omitted; pass an arena that already holds those lanes
    only if stale contents are acceptable).  Raises [Invalid_argument]
    if [p_source] yields a value outside [0,1]. *)

val lo : t -> Spsta_netlist.Circuit.id -> float
val hi : t -> Spsta_netlist.Circuit.id -> float
val interval : t -> Spsta_netlist.Circuit.id -> float * float

val const_of : t -> Spsta_netlist.Circuit.id -> bool option
(** [Some v] when the net is statically tied to [v]. *)

val constants : t -> Spsta_netlist.Circuit.id list
(** Gate-driven nets that are static constants, in topological order
    (pinned constant sources are the caller's spec, not a discovery,
    and are excluded here — but they do appear in {!mask}). *)

val num_constants : t -> int
(** [List.length (constants t)]. *)

val num_bounded : t -> int
(** Nets whose interval is strictly narrower than [[0,1]]. *)

val mask : t -> Bytes.t
(** Per-net constant mask (['\001'] where constant, including constant
    sources), indexed by net id — the shape
    {!Spsta_ssta.Ssta.analyze}'s [constant_mask] expects. *)

val stats : t -> Dataflow.stats
