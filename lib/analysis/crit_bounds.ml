(* Interval arrival analysis.  Two single-round passes on the dataflow
   driver: forward min/max arrivals (the bound of a MAX-fold is the
   MAX-fold of the bounds), backward longest-remaining-path.  Registers
   cut paths, so neither pass needs a boundary round. *)

module Circuit = Spsta_netlist.Circuit
module Cell_library = Spsta_netlist.Cell_library
module Sized_library = Spsta_netlist.Sized_library

type t = {
  circuit : Circuit.t;
  amin : float array;
  amax : float array;
  down : float array;  (* max delay still ahead; -inf when no endpoint is reachable *)
  dmin : float array;
  dmax : float array;
  t_lb : float;
  stats : Dataflow.stats;
}

let forward_transfer t csr k =
  let out = csr.Circuit.gate_net.(k) in
  let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
  let lo = ref neg_infinity and hi = ref neg_infinity in
  for j = i0 to i1 - 1 do
    let i = csr.Circuit.fanin.(j) in
    lo := Float.max !lo t.amin.(i);
    hi := Float.max !hi t.amax.(i)
  done;
  let lo = !lo +. t.dmin.(out) and hi = !hi +. t.dmax.(out) in
  if lo <> t.amin.(out) || hi <> t.amax.(out) then (
    t.amin.(out) <- lo;
    t.amax.(out) <- hi;
    true)
  else false

let backward_transfer t csr k =
  let out = csr.Circuit.gate_net.(k) in
  if t.down.(out) = neg_infinity then false
  else (
    let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
    let cand = t.down.(out) +. t.dmax.(out) in
    let changed = ref false in
    for j = i0 to i1 - 1 do
      let i = csr.Circuit.fanin.(j) in
      if cand > t.down.(i) then (
        t.down.(i) <- cand;
        changed := true)
    done;
    !changed)

let no_boundary _t _circuit = false

let run ?arena ?(delay_bounds = fun _ -> (1.0, 1.0)) circuit =
  let arena = match arena with Some a -> a | None -> Dataflow.Arena.create circuit in
  let n = Circuit.num_nets circuit in
  let amin = Dataflow.Arena.floats arena "amin" ~init:0.0 in
  let amax = Dataflow.Arena.floats arena "amax" ~init:0.0 in
  let down = Dataflow.Arena.floats arena "down" ~init:neg_infinity in
  Array.fill amin 0 n 0.0;
  Array.fill amax 0 n 0.0;
  Array.fill down 0 n neg_infinity;
  let dmin = Array.make n 0.0 and dmax = Array.make n 0.0 in
  Array.iter
    (fun g ->
      let lo, hi = delay_bounds g in
      if not (Float.is_finite lo && Float.is_finite hi && 0.0 <= lo && lo <= hi) then
        invalid_arg
          (Printf.sprintf "Crit_bounds.run: bad delay bounds (%g, %g) for net %s" lo hi
             (Circuit.net_name circuit g));
      dmin.(g) <- lo;
      dmax.(g) <- hi)
    (Circuit.topo_gates circuit);
  let t =
    {
      circuit;
      amin;
      amax;
      down;
      dmin;
      dmax;
      t_lb = 0.0;
      stats = { Dataflow.rounds = 0; sweeps = 0; gate_visits = 0 };
    }
  in
  List.iter (fun e -> down.(e) <- 0.0) (Circuit.endpoints circuit);
  let module Forward = struct
    type nonrec t = t

    let name = "crit-bounds-forward"
    let direction = `Forward
    let state = t
    let transfer = forward_transfer
    let boundary = no_boundary
  end in
  let module Backward = struct
    type nonrec t = t

    let name = "crit-bounds-backward"
    let direction = `Backward
    let state = t
    let transfer = backward_transfer
    let boundary = no_boundary
  end in
  let s1 = Dataflow.run ~max_rounds:1 circuit (module Forward) in
  let s2 = Dataflow.run ~max_rounds:1 circuit (module Backward) in
  let t_lb =
    List.fold_left (fun acc e -> Float.max acc amin.(e)) 0.0 (Circuit.endpoints circuit)
  in
  {
    t with
    t_lb;
    stats =
      {
        Dataflow.rounds = s1.Dataflow.rounds + s2.Dataflow.rounds;
        sweeps = s1.Dataflow.sweeps + s2.Dataflow.sweeps;
        gate_visits = s1.Dataflow.gate_visits + s2.Dataflow.gate_visits;
      };
  }

let bounds_of_library library circuit id =
  let r, f = Cell_library.gate_delays library circuit id in
  (Float.min r f, Float.max r f)

let bounds_of_sized sized circuit id =
  match Circuit.driver circuit id with
  | Circuit.Gate { kind; inputs } ->
    let fanin = Array.length inputs in
    let lo = ref infinity and hi = ref neg_infinity in
    for s = 0 to Sized_library.num_sizes sized - 1 do
      let r, f = Sized_library.rise_fall_of sized ~size:s kind ~fanin in
      lo := Float.min !lo (Float.min r f);
      hi := Float.max !hi (Float.max r f)
    done;
    (!lo, !hi)
  | _ ->
    invalid_arg
      (Printf.sprintf "Crit_bounds.bounds_of_sized: net %s is not gate-driven"
         (Circuit.net_name circuit id))

let arrival_bounds t id = (t.amin.(id), t.amax.(id))
let t_lb t = t.t_lb
let never_critical t id = t.amax.(id) +. t.down.(id) < t.t_lb

let num_never_critical t =
  Array.fold_left
    (fun acc g -> if never_critical t g then acc + 1 else acc)
    0 (Circuit.topo_gates t.circuit)

let stats t = t.stats
