(** Static criticality pruning: per-net min/max arrival bounds.

    With every gate delay bounded in [[dmin, dmax]] (over rise/fall, and
    over every drive strength when pruning for the sizer), a forward
    sweep bounds the arrival at each net and a backward sweep bounds the
    longest remaining path to any endpoint.  A gate whose most
    pessimistic path through it — [amax + downstream_max] — still falls
    short of the most optimistic critical-path length [t_lb] (the best
    case of the worst endpoint) can {e never} lie on a critical path,
    under any delay realisation within the bounds.  {!Spsta_opt.Sizer}
    skips candidate moves on those gates.

    Register boundaries cut paths exactly as in the timing engines:
    sources launch at 0, flip-flop D nets terminate paths. *)

type t

val run :
  ?arena:Dataflow.Arena.t ->
  ?delay_bounds:(Spsta_netlist.Circuit.id -> float * float) ->
  Spsta_netlist.Circuit.t ->
  t
(** [delay_bounds net] gives [(dmin, dmax)] for the gate driving [net];
    defaults to the unit-delay model [(1.0, 1.0)].  Raises
    [Invalid_argument] on bounds that are non-finite, negative or
    inverted.  Uses lanes ["amin"], ["amax"], ["down"]. *)

val bounds_of_library :
  Spsta_netlist.Cell_library.t ->
  Spsta_netlist.Circuit.t ->
  Spsta_netlist.Circuit.id ->
  float * float
(** min/max of the cell's rise and fall delays. *)

val bounds_of_sized :
  Spsta_netlist.Sized_library.t ->
  Spsta_netlist.Circuit.t ->
  Spsta_netlist.Circuit.id ->
  float * float
(** min/max over every drive strength {e and} direction — sound for any
    assignment the sizer could ever pick. *)

val arrival_bounds : t -> Spsta_netlist.Circuit.id -> float * float
(** [(amin, amax)] — every realisation's arrival lies within. *)

val t_lb : t -> float
(** Lower bound on the critical-path length: max over endpoints of
    their minimum arrival (0.0 for a circuit without endpoints). *)

val never_critical : t -> Spsta_netlist.Circuit.id -> bool
(** Whether no delay realisation puts this net's driving gate on a
    critical path.  Nets that reach no endpoint are never critical. *)

val num_never_critical : t -> int
(** Over gate-driven nets. *)

val stats : t -> Dataflow.stats
