(* Generic dataflow driver: sweeps a PASS's transfer function over the
   CSR gate stream in topological or reverse-topological order, with a
   boundary hook for register crossings.  On the combinational DAG one
   directed sweep reaches the fixpoint, so rounds are only spent when
   the boundary hook keeps injecting changes (sequential feedback). *)

module Circuit = Spsta_netlist.Circuit

module Arena = struct
  type lane = F of float array | B of Bytes.t | I of int array

  type t = { n : int; lanes : (string, lane) Hashtbl.t }

  let create circuit = { n = Circuit.num_nets circuit; lanes = Hashtbl.create 8 }
  let num_nets t = t.n

  let mismatch name = invalid_arg (Printf.sprintf "Arena: lane %S has another type" name)

  let floats t name ~init =
    match Hashtbl.find_opt t.lanes name with
    | Some (F a) -> a
    | Some _ -> mismatch name
    | None ->
      let a = Array.make t.n init in
      Hashtbl.add t.lanes name (F a);
      a

  let bytes t name ~init =
    match Hashtbl.find_opt t.lanes name with
    | Some (B b) -> b
    | Some _ -> mismatch name
    | None ->
      let b = Bytes.make t.n init in
      Hashtbl.add t.lanes name (B b);
      b

  let ints t name ~init =
    match Hashtbl.find_opt t.lanes name with
    | Some (I a) -> a
    | Some _ -> mismatch name
    | None ->
      let a = Array.make t.n init in
      Hashtbl.add t.lanes name (I a);
      a

  let mem t name = Hashtbl.mem t.lanes name
end

type stats = { rounds : int; sweeps : int; gate_visits : int }

module type PASS = sig
  type t

  val name : string
  val direction : [ `Forward | `Backward ]
  val state : t
  val transfer : t -> Circuit.csr -> int -> bool
  val boundary : t -> Circuit.t -> bool
end

let run ?(max_rounds = 64) circuit (module P : PASS) =
  if max_rounds < 1 then invalid_arg "Dataflow.run: max_rounds < 1";
  let csr = Circuit.csr circuit in
  let n = Array.length csr.Circuit.gate_net in
  let sweeps = ref 0 and visits = ref 0 and rounds = ref 0 in
  let sweep () =
    incr sweeps;
    visits := !visits + n;
    let changed = ref false in
    (match P.direction with
    | `Forward ->
      for k = 0 to n - 1 do
        if P.transfer P.state csr k then changed := true
      done
    | `Backward ->
      for k = n - 1 downto 0 do
        if P.transfer P.state csr k then changed := true
      done);
    !changed
  in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    let (_ : bool) = sweep () in
    continue := P.boundary P.state circuit
  done;
  { rounds = !rounds; sweeps = !sweeps; gate_visits = !visits }
