(** A reusable forward/backward dataflow fixpoint framework over
    {!Spsta_netlist.Circuit}.

    A pass is a first-class {!PASS} module: a lattice of per-net facts
    (owned by the pass, usually as {!Arena} lanes), a sweep direction,
    and a [transfer] function per gate.  {!run} drives the pass over the
    circuit's CSR gate stream ({!Spsta_netlist.Circuit.csr}) in
    topological (forward) or reverse-topological (backward) order, so a
    single sweep reaches the combinational fixpoint; the [boundary]
    hook carries facts across register boundaries and requests further
    rounds until sequential convergence.

    Facts live in a shared {!Arena}: named per-net lanes in
    struct-of-arrays style (one flat array per fact, not one record per
    net), so several passes over the same circuit can share storage and
    read each other's results without boxing — the layout that keeps
    the framework allocation-lean at c100k/c1000k scale. *)

module Arena : sig
  type t
  (** A set of named per-net fact lanes for one circuit. *)

  val create : Spsta_netlist.Circuit.t -> t
  val num_nets : t -> int

  val floats : t -> string -> init:float -> float array
  (** The float lane of that name, creating it filled with [init] on
      first request; later requests return the same array (and ignore
      [init]).  Raises [Invalid_argument] if the name is already bound
      to a lane of a different type. *)

  val bytes : t -> string -> init:char -> Bytes.t
  (** Byte lane (dense bool/small-enum facts), same discipline. *)

  val ints : t -> string -> init:int -> int array
  (** Int lane, same discipline. *)

  val mem : t -> string -> bool
  (** Whether a lane of that name exists (any type). *)
end

type stats = { rounds : int; sweeps : int; gate_visits : int }
(** [rounds] is the number of sweep+boundary iterations executed,
    [sweeps] the number of full passes over the gate stream, and
    [gate_visits] the total [transfer] invocations. *)

module type PASS = sig
  type t
  (** The pass's fact state — typically a record of {!Arena} lanes. *)

  val name : string
  val direction : [ `Forward | `Backward ]

  val state : t

  val transfer : t -> Spsta_netlist.Circuit.csr -> int -> bool
  (** [transfer state csr k] updates the fact of gate [k]'s output from
      the facts of its fan-in (forward) or fan-out (backward) and
      returns whether anything changed.  [k] indexes the CSR gate
      stream, not a net id — the output net is [csr.gate_net.(k)]. *)

  val boundary : t -> Spsta_netlist.Circuit.t -> bool
  (** Called after each sweep to transport facts across register
      boundaries (flip-flop D to Q for forward passes, Q to D for
      backward ones).  Returns whether any fact changed — [true]
      schedules another round. *)
end

val run : ?max_rounds:int -> Spsta_netlist.Circuit.t -> (module PASS) -> stats
(** Runs the pass to its fixpoint: sweep all gates in the pass's
    direction, apply [boundary], and repeat while [boundary] reports a
    change, up to [max_rounds] (default 64) rounds.  The caller keeps
    the pass state it packed into the module; [run] returns only the
    iteration statistics. *)
