(* Backward observability.  Reverse-topological single sweep: every
   consumer gate is visited before its inputs' facts are read upstream,
   and registers need no transport (flip-flop D nets are themselves
   endpoints), so one round reaches the fixpoint. *)

module Circuit = Spsta_netlist.Circuit

type t = {
  circuit : Circuit.t;
  obs : Bytes.t;  (* constant-aware observability *)
  reach : Bytes.t;  (* structural reachability, the old lint rule *)
  constants : Constprop.t option;
  mutable stats : Dataflow.stats;
}

let is_const t id =
  match t.constants with None -> false | Some c -> Constprop.const_of c id <> None

let transfer t csr k =
  let out = csr.Circuit.gate_net.(k) in
  let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
  let changed = ref false in
  if Bytes.get t.reach out = '\001' then
    for j = i0 to i1 - 1 do
      let i = csr.Circuit.fanin.(j) in
      if Bytes.get t.reach i = '\000' then (
        Bytes.set t.reach i '\001';
        changed := true)
    done;
  (* a constant output transmits nothing: inputs stay unobservable
     through this gate *)
  if Bytes.get t.obs out = '\001' && not (is_const t out) then
    for j = i0 to i1 - 1 do
      let i = csr.Circuit.fanin.(j) in
      if Bytes.get t.obs i = '\000' && not (is_const t i) then (
        Bytes.set t.obs i '\001';
        changed := true)
    done;
  !changed

let boundary _t _circuit = false

let run ?arena ?constants circuit =
  let arena = match arena with Some a -> a | None -> Dataflow.Arena.create circuit in
  let n = Circuit.num_nets circuit in
  let obs = Dataflow.Arena.bytes arena "obs" ~init:'\000' in
  let reach = Dataflow.Arena.bytes arena "reach" ~init:'\000' in
  Bytes.fill obs 0 n '\000';
  Bytes.fill reach 0 n '\000';
  let t =
    {
      circuit;
      obs;
      reach;
      constants;
      stats = { Dataflow.rounds = 0; sweeps = 0; gate_visits = 0 };
    }
  in
  List.iter
    (fun e ->
      Bytes.set reach e '\001';
      if not (is_const t e) then Bytes.set obs e '\001')
    (Circuit.endpoints circuit);
  let module P = struct
    type nonrec t = t

    let name = "observability"
    let direction = `Backward
    let state = t
    let transfer = transfer
    let boundary = boundary
  end in
  t.stats <- Dataflow.run ~max_rounds:1 circuit (module P);
  t

let observable t id = Bytes.get t.obs id = '\001'

let fold_dead t f =
  Array.fold_left
    (fun acc id -> if Bytes.get t.obs id = '\000' then f acc id else acc)
    [] (Circuit.topo_gates t.circuit)

let dead t = List.rev (fold_dead t (fun acc id -> id :: acc))
let num_dead t = List.length (dead t)

let sharpened t =
  List.rev
    (fold_dead t (fun acc id ->
         if Bytes.get t.reach id = '\001' && not (is_const t id) then id :: acc else acc))

let num_sharpened t = List.length (sharpened t)
let stats t = t.stats
