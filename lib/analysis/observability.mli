(** Dead and unobservable logic: backward observability from the timing
    endpoints.

    A net is {e observable} when some endpoint (primary output or
    flip-flop D pin) can depend on its value.  The backward transfer
    sharpens plain structural reachability with constant facts from
    {!Constprop}: a gate whose output is a static constant transmits
    nothing, so its inputs are not observable through it — which finds
    dead logic the structural dead-logic lint rule (fanout-reachability
    only) cannot.  Without a [constants] argument the pass degrades to
    exactly the structural rule.

    Both lattices are computed in one sweep: ["obs"] (constant-aware)
    and ["reach"] (structural), so {!sharpened} — dead here, alive
    structurally — is what the [unobservable-logic] lint rule reports
    without duplicating the structural rule's findings. *)

type t

val run :
  ?arena:Dataflow.Arena.t ->
  ?constants:Constprop.t ->
  Spsta_netlist.Circuit.t ->
  t
(** Uses lanes ["obs"] and ["reach"]. *)

val observable : t -> Spsta_netlist.Circuit.id -> bool

val dead : t -> Spsta_netlist.Circuit.id list
(** Unobservable gate-driven nets, in topological order. *)

val num_dead : t -> int

val sharpened : t -> Spsta_netlist.Circuit.id list
(** Unobservable gate nets that plain structural reachability considers
    alive — the strict improvement over the [dead-logic] lint rule.
    Nets that are themselves static constants are excluded (those are
    the [constant-logic] rule's findings, not this one's). *)

val num_sharpened : t -> int

val stats : t -> Dataflow.stats
