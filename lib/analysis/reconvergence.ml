(* Immediate post-dominators over the combinational net DAG
   (Cooper–Harvey–Kennedy "a simple, fast dominance algorithm", run on
   the reverse graph with a virtual sink behind the endpoints).  The
   DAG lets one reverse-topological sweep finalize every node: all
   successors of a net are processed before the net itself, so the
   intersection never sees an unfinished chain and no iteration is
   needed — which is what makes this a single-round backward PASS. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Circuit_bdd = Spsta_bdd.Circuit_bdd

type region = {
  stem : Circuit.id;
  merge : Circuit.id;
  width : int;
  depth : int;
  gates : int option;
}

type state = {
  circuit : Circuit.t;
  sink : int;  (* = num_nets; ord.(sink) is the maximum *)
  ord : int array;  (* length num_nets + 1: sources, then topo gates, then sink *)
  ipdom : int array;  (* per net; sink for "post-dominated only by the sink",
                         -1 for nets that reach no endpoint *)
  is_endpoint : Bytes.t;
}

type t = {
  st : state;
  taint : Bytes.t;
  stem_mark : Bytes.t;
  regions : region list;
  num_tainted : int;
  stats : Dataflow.stats;
}

(* Walk both ipdom chains up (toward the sink, increasing ord) to their
   nearest common ancestor.  Chains of live nets always terminate at the
   sink, whose ord is the global maximum. *)
let intersect st a b =
  let a = ref a and b = ref b in
  while !a <> !b do
    while st.ord.(!a) < st.ord.(!b) do
      a := st.ipdom.(!a)
    done;
    while st.ord.(!b) < st.ord.(!a) do
      b := st.ipdom.(!b)
    done
  done;
  !a

(* Live combinational successors of a net: consumer gate outputs (the
   register boundary cuts flip-flop consumers) plus the virtual sink for
   endpoints.  Dead successors (no path to any endpoint) are skipped —
   their paths can never remerge with observable logic. *)
let fold_succ st v f acc =
  let acc = ref acc in
  Array.iter
    (fun s ->
      match Circuit.driver st.circuit s with
      | Circuit.Dff_output _ -> ()
      | _ -> if st.ipdom.(s) <> -1 then acc := f !acc s)
    (Circuit.fanout st.circuit v);
  if Bytes.get st.is_endpoint v = '\001' then acc := f !acc st.sink;
  !acc

let compute_ipdom st v =
  fold_succ st v (fun acc s -> if acc = -1 then s else intersect st acc s) (-1)

let transfer st csr k =
  let out = csr.Circuit.gate_net.(k) in
  let ip = compute_ipdom st out in
  if ip <> st.ipdom.(out) then (
    st.ipdom.(out) <- ip;
    true)
  else false

(* Sources are not part of the gate stream; their successors are all
   gates (already final after the sweep), so finish them here.  Nothing
   crosses a register, hence no further round. *)
let boundary st circuit =
  List.iter (fun s -> st.ipdom.(s) <- compute_ipdom st s) (Circuit.sources circuit);
  false

let run ?arena ?(region_gate_cap = 64) circuit =
  if region_gate_cap < 0 then invalid_arg "Reconvergence.run: region_gate_cap < 0";
  let arena = match arena with Some a -> a | None -> Dataflow.Arena.create circuit in
  let n = Circuit.num_nets circuit in
  let sink = n in
  let ord = Array.make (n + 1) 0 in
  let next = ref 0 in
  List.iter
    (fun s ->
      ord.(s) <- !next;
      incr next)
    (Circuit.sources circuit);
  Array.iter
    (fun g ->
      ord.(g) <- !next;
      incr next)
    (Circuit.topo_gates circuit);
  ord.(sink) <- n;
  let ipdom = Dataflow.Arena.ints arena "pdom" ~init:(-1) in
  Array.fill ipdom 0 n (-1);
  let is_endpoint = Bytes.make n '\000' in
  List.iter (fun e -> Bytes.set is_endpoint e '\001') (Circuit.endpoints circuit);
  let st = { circuit; sink; ord; ipdom; is_endpoint } in
  let module P = struct
    type t = state

    let name = "reconvergence"
    let direction = `Backward
    let state = st
    let transfer = transfer
    let boundary = boundary
  end in
  let stats = Dataflow.run ~max_rounds:1 circuit (module P) in
  (* Region detection: a bounded forward walk from each stem tracking
     which branch reached each net.  The ipdom chain alone misses
     partial reconvergence — a stem with extra diverging fanout has
     ipdom = sink even when two of its branches remerge a gate away,
     and partial remerges are exactly where eq. 5 correlation damage
     happens — so regions come from the walk while the ipdom chain
     keeps providing the supergate grouping ({!merge_of}). *)
  let stem_mark = Bytes.make n '\000' in
  let taint_seed = Bytes.make n '\000' in
  let stamp = Array.make n (-1) in
  let mask = Array.make n 0 in
  let visited = Array.make (region_gate_cap + 1) 0 in
  let idx = ref 0 in
  let max_branches = 62 (* one OCaml int of branch bits *) in
  let comb_succs v =
    (* distinct combinational consumer output nets, ascending id *)
    Array.fold_left
      (fun acc s ->
        match Circuit.driver circuit s with
        | Circuit.Dff_output _ -> acc
        | _ -> if List.mem s acc then acc else s :: acc)
      [] (Circuit.fanout circuit v)
    |> List.sort compare
  in
  let by_level a b =
    match compare (Circuit.level circuit a) (Circuit.level circuit b) with
    | 0 -> compare a b
    | c -> c
  in
  let region_of v =
    match comb_succs v with
    | [] | [ _ ] -> None
    | branches ->
      let i = !idx in
      incr idx;
      let count = ref 0 and overflow = ref false in
      let visit s bit =
        if stamp.(s) <> i then
          if !count >= region_gate_cap then overflow := true
          else (
            stamp.(s) <- i;
            mask.(s) <- bit;
            visited.(!count) <- s;
            incr count)
      in
      List.iteri (fun j s -> if j < max_branches then visit s (1 lsl j)) branches;
      (* phase 1: collect the forward cone up to the cap *)
      let head = ref 0 in
      while !head < !count do
        let u = visited.(!head) in
        incr head;
        Array.iter
          (fun s ->
            match Circuit.driver circuit s with
            | Circuit.Dff_output _ -> ()
            | _ -> visit s 0)
          (Circuit.fanout circuit u)
      done;
      (* phase 2: propagate branch masks in level order — every visited
         predecessor of a net has a strictly lower level, so each net's
         mask is final when it is expanded *)
      let order = Array.sub visited 0 !count in
      Array.sort by_level order;
      Array.iter
        (fun u ->
          Array.iter
            (fun s ->
              match Circuit.driver circuit s with
              | Circuit.Dff_output _ -> ()
              | _ -> if stamp.(s) = i then mask.(s) <- mask.(s) lor mask.(u))
            (Circuit.fanout circuit u))
        order;
      let popcount m =
        let c = ref 0 and m = ref m in
        while !m <> 0 do
          m := !m land (!m - 1);
          incr c
        done;
        !c
      in
      let merge =
        Array.fold_left
          (fun acc u -> if acc = -1 && popcount mask.(u) >= 2 then u else acc)
          (-1) order
      in
      if merge = -1 then None
      else (
        Bytes.set stem_mark v '\001';
        Array.iter (fun u -> if popcount mask.(u) >= 2 then Bytes.set taint_seed u '\001') order;
        let lm = Circuit.level circuit merge in
        let gates =
          if !overflow then None
          else
            Some
              (Array.fold_left
                 (fun acc u -> if Circuit.level circuit u < lm then acc + 1 else acc)
                 0 order)
        in
        Some
          {
            stem = v;
            merge;
            width = popcount mask.(merge);
            depth = lm - Circuit.level circuit v;
            gates;
          })
  in
  let regions =
    List.filter_map region_of (Circuit.sources circuit)
    @ List.filter_map region_of (Array.to_list (Circuit.topo_gates circuit))
  in
  (* taint: forward closure of every remerge net within the
     combinational frame — the nets where eq. 5 independence is
     unsound (under-approximate past the per-region walk cap) *)
  let taint = Dataflow.Arena.bytes arena "taint" ~init:'\000' in
  Bytes.blit taint_seed 0 taint 0 n;
  let csr = Circuit.csr circuit in
  let num_tainted = ref 0 in
  Array.iteri
    (fun k out ->
      if Bytes.get taint out = '\000' then (
        let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
        let hit = ref false in
        for j = i0 to i1 - 1 do
          if Bytes.get taint csr.Circuit.fanin.(j) = '\001' then hit := true
        done;
        if !hit then Bytes.set taint out '\001');
      if Bytes.get taint out = '\001' then incr num_tainted)
    csr.Circuit.gate_net;
  { st; taint; stem_mark; regions; num_tainted = !num_tainted; stats }

let regions t = t.regions
let num_regions t = List.length t.regions

let merge_of t id =
  let m = t.st.ipdom.(id) in
  if m = -1 || m = t.st.sink then None else Some m

let is_stem t id = Bytes.get t.stem_mark id = '\001'
let tainted t id = Bytes.get t.taint id = '\001'
let num_tainted t = t.num_tainted
let stats t = t.stats

(* Independent (eq. 5) propagation — deliberately the naive rule the
   region detection indicts, for measuring its error against the exact
   BDD probability on the merge nets. *)
let eq5_probs circuit ~p_source =
  let n = Circuit.num_nets circuit in
  let p = Array.make n 0.5 in
  List.iter (fun s -> p.(s) <- p_source s) (Circuit.sources circuit);
  let csr = Circuit.csr circuit in
  Array.iteri
    (fun k out ->
      let i0 = csr.Circuit.fanin_off.(k) and i1 = csr.Circuit.fanin_off.(k + 1) in
      let kind = Gate_kind.of_code csr.Circuit.kind_code.(k) in
      let v =
        match kind with
        | Gate_kind.And | Gate_kind.Nand ->
          let acc = ref 1.0 in
          for j = i0 to i1 - 1 do
            acc := !acc *. p.(csr.Circuit.fanin.(j))
          done;
          !acc
        | Gate_kind.Or | Gate_kind.Nor ->
          let acc = ref 1.0 in
          for j = i0 to i1 - 1 do
            acc := !acc *. (1.0 -. p.(csr.Circuit.fanin.(j)))
          done;
          1.0 -. !acc
        | Gate_kind.Xor | Gate_kind.Xnor ->
          let acc = ref 0.0 in
          for j = i0 to i1 - 1 do
            let b = p.(csr.Circuit.fanin.(j)) in
            acc := (!acc *. (1.0 -. b)) +. (b *. (1.0 -. !acc))
          done;
          !acc
        | Gate_kind.Not | Gate_kind.Buf -> p.(csr.Circuit.fanin.(i0))
      in
      p.(out) <- (if Gate_kind.inverting kind then 1.0 -. v else v))
    csr.Circuit.gate_net;
  p

let cross_check ?(p_source = fun _ -> 0.5) ?(max_nodes = 200_000) circuit t =
  if t.regions = [] then []
  else
    match Circuit_bdd.build ~max_nodes circuit with
    | exception Circuit_bdd.Size_limit_exceeded -> []
    | bdd ->
      let src_p = Array.of_list (List.map p_source (Circuit.sources circuit)) in
      let exact = Circuit_bdd.exact_prob_one bdd ~p_source:(fun i -> src_p.(i)) in
      let p = eq5_probs circuit ~p_source in
      List.map (fun r -> (r.merge, p.(r.merge), exact r.merge)) t.regions
