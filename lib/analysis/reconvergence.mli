(** Reconvergent-fanout region detection (paper §3.5).

    The paper's eq. 5 propagates signal probabilities as if gate inputs
    were independent; that assumption breaks exactly where the paths of
    a fanout stem remerge.  The pass detects regions with a bounded
    forward walk from every fanout stem, tracking which branch reaches
    each net: the first net (by level, then id) reached by two or more
    distinct branches is the region's merge — the first gate whose
    inputs are correlated by this stem.  The walk catches {e partial}
    reconvergence (branches that remerge while others diverge toward
    different endpoints), the common shape in real netlists; it is
    capped per stem ([region_gate_cap]), so distant remerges are an
    admitted under-approximation.  Independently, immediate
    {e post}-dominators over the combinational net DAG
    (Cooper–Harvey–Kennedy, one reverse-topological sweep, virtual sink
    behind the endpoints) provide the dominator-based supergate
    grouping {!merge_of}: when [merge_of stem] is a real gate net [m],
    {e every} path from the stem runs into [m] and [[stem, m]] is a
    closed supergate.  Per region the pass records the remerging branch
    width, the level depth to the merge, and a capped interior net
    count.

    [tainted] is the forward closure of every remerge net: the set of
    nets whose eq. 5 probability may be unsound.  Everything is
    restricted to the combinational frame (flip-flop boundaries cut
    both the dominator edges and the taint closure, matching the
    paper's treatment of flip-flop outputs as fresh sources). *)

type region = {
  stem : Spsta_netlist.Circuit.id;  (** the fanout stem *)
  merge : Spsta_netlist.Circuit.id;
      (** first net (by level, then id) where branches remerge *)
  width : int;  (** distinct branches of the stem remerging at [merge] *)
  depth : int;  (** level(merge) - level(stem) *)
  gates : int option;
      (** nets strictly between stem and merge levels inside the walked
          cone (dead side branches included), [None] when the bounded
          walk exceeded its cap *)
}

type t

val run : ?arena:Dataflow.Arena.t -> ?region_gate_cap:int -> Spsta_netlist.Circuit.t -> t
(** [region_gate_cap] (default 64) bounds the per-stem forward walk
    (and the first 62 branches of a stem carry tracking bits).
    Uses lanes ["pdom"] and ["taint"]. *)

val regions : t -> region list
(** In topological order of the stem. *)

val num_regions : t -> int

val merge_of : t -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id option
(** The immediate post-dominator of a net, when it is a gate net — the
    dominator-based supergate grouping ([None] for nets that reach no
    endpoint or whose first post-dominator is the virtual sink). *)

val is_stem : t -> Spsta_netlist.Circuit.id -> bool
(** Whether the net heads a reconvergent region. *)

val tainted : t -> Spsta_netlist.Circuit.id -> bool
(** Whether independent-probability propagation (eq. 5) is unsound on
    this net. *)

val num_tainted : t -> int

val cross_check :
  ?p_source:(Spsta_netlist.Circuit.id -> float) ->
  ?max_nodes:int ->
  Spsta_netlist.Circuit.t ->
  t ->
  (Spsta_netlist.Circuit.id * float * float) list
(** For each region merge net, [(net, eq5, exact)]: the independent
    (eq. 5) probability versus the BDD-exact one ({!Spsta_bdd.Circuit_bdd}),
    quantifying the unsoundness the region detection flags.  [p_source]
    defaults to 0.5 everywhere; [max_nodes] (default 200_000) bounds the
    BDD build — returns [] when the circuit is too large to build
    exactly. *)

val stats : t -> Dataflow.stats
