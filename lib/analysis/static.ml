module Circuit = Spsta_netlist.Circuit

type pass = [ `Constants | `Reconvergence | `Observability | `Criticality ]

let all_passes : pass list = [ `Constants; `Reconvergence; `Observability; `Criticality ]

let pass_name = function
  | `Constants -> "const"
  | `Reconvergence -> "reconv"
  | `Observability -> "obs"
  | `Criticality -> "crit"

let pass_of_name = function
  | "const" | "constants" | "constprop" -> Some `Constants
  | "reconv" | "reconvergence" -> Some `Reconvergence
  | "obs" | "observability" -> Some `Observability
  | "crit" | "criticality" -> Some `Criticality
  | _ -> None

type t = {
  circuit : Circuit.t;
  arena : Dataflow.Arena.t;
  constants : Constprop.t option;
  reconvergence : Reconvergence.t option;
  observability : Observability.t option;
  criticality : Crit_bounds.t option;
}

let run ?(passes = all_passes) ?p_source ?delay_bounds ?region_gate_cap circuit =
  let want p = List.mem p passes in
  let arena = Dataflow.Arena.create circuit in
  let constants =
    if want `Constants then Some (Constprop.run ~arena ?p_source circuit) else None
  in
  let reconvergence =
    if want `Reconvergence then Some (Reconvergence.run ~arena ?region_gate_cap circuit)
    else None
  in
  let observability =
    if want `Observability then Some (Observability.run ~arena ?constants circuit)
    else None
  in
  let criticality =
    if want `Criticality then Some (Crit_bounds.run ~arena ?delay_bounds circuit) else None
  in
  { circuit; arena; constants; reconvergence; observability; criticality }

let fact_counts t =
  let opt o f = match o with None -> [] | Some x -> f x in
  opt t.constants (fun c ->
      [ ("constants", Constprop.num_constants c); ("bounded_nets", Constprop.num_bounded c) ])
  @ opt t.reconvergence (fun r ->
        [
          ("reconvergent_regions", Reconvergence.num_regions r);
          ("tainted_nets", Reconvergence.num_tainted r);
        ])
  @ opt t.observability (fun o ->
        [
          ("unobservable_gates", Observability.num_dead o);
          ("sharpened_dead", Observability.num_sharpened o);
        ])
  @ opt t.criticality (fun c ->
        [ ("never_critical_gates", Crit_bounds.num_never_critical c) ])

let total_facts t = List.fold_left (fun acc (_, n) -> acc + n) 0 (fact_counts t)
