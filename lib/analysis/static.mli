(** Orchestrator for the static-analysis passes: runs a selected subset
    over one shared {!Dataflow.Arena} and bundles the results for the
    CLI, lint, server and bench consumers. *)

type pass = [ `Constants | `Reconvergence | `Observability | `Criticality ]

val all_passes : pass list
(** In dependency order: constants before observability. *)

val pass_name : pass -> string
(** "const", "reconv", "obs", "crit". *)

val pass_of_name : string -> pass option
(** Accepts the short names above and a few obvious long spellings
    ("constants", "reconvergence", "observability", "criticality"). *)

type t = {
  circuit : Spsta_netlist.Circuit.t;
  arena : Dataflow.Arena.t;
  constants : Constprop.t option;
  reconvergence : Reconvergence.t option;
  observability : Observability.t option;
  criticality : Crit_bounds.t option;
}

val run :
  ?passes:pass list ->
  ?p_source:(Spsta_netlist.Circuit.id -> float) ->
  ?delay_bounds:(Spsta_netlist.Circuit.id -> float * float) ->
  ?region_gate_cap:int ->
  Spsta_netlist.Circuit.t ->
  t
(** Runs the requested [passes] (default {!all_passes}; order in the
    list is irrelevant — dependencies decide).  When both are selected,
    {!Observability} consumes {!Constprop}'s constant facts.
    [p_source] and [delay_bounds] parameterise the constant and
    criticality passes respectively (see {!Constprop.run} and
    {!Crit_bounds.run} for their defaults). *)

val fact_counts : t -> (string * int) list
(** One [(name, count)] pair per fact kind the selected passes
    produced — stable names and ordering, for the JSON report:
    [constants], [bounded_nets], [reconvergent_regions], [tainted_nets],
    [unobservable_gates], [sharpened_dead], [never_critical_gates]. *)

val total_facts : t -> int
(** Sum of {!fact_counts}. *)
