type moments = { mean : float; variance : float }

(* theta^2 = var1 + var2 - 2 cov is the variance of (t1 - t2); when it
   vanishes the two arrivals differ by a constant and the MAX is exactly
   the one with the larger mean. *)
let theta ~cov (a : Normal.t) (b : Normal.t) =
  let v = Normal.variance a +. Normal.variance b -. (2.0 *. cov) in
  sqrt (Float.max v 0.0)

let tightness ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  if th <= 0.0 then if Normal.mean a >= Normal.mean b then 1.0 else 0.0
  else Spsta_util.Special.normal_cdf ((Normal.mean a -. Normal.mean b) /. th)

let max_moments ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  if th <= 0.0 then
    if Normal.mean a >= Normal.mean b then
      { mean = Normal.mean a; variance = Normal.variance a }
    else { mean = Normal.mean b; variance = Normal.variance b }
  else begin
    let mu1 = Normal.mean a and mu2 = Normal.mean b in
    let lambda = (mu1 -. mu2) /. th in
    let p = Spsta_util.Special.normal_pdf lambda in
    let q = Spsta_util.Special.normal_cdf lambda in
    let mean = (mu1 *. q) +. (mu2 *. (1.0 -. q)) +. (th *. p) in
    let second =
      (((mu1 *. mu1) +. Normal.variance a) *. q)
      +. (((mu2 *. mu2) +. Normal.variance b) *. (1.0 -. q))
      +. ((mu1 +. mu2) *. th *. p)
    in
    { mean; variance = Float.max (second -. (mean *. mean)) 0.0 }
  end

(* MIN(t1, t2) = -MAX(-t1, -t2), with the negations folded into the
   float arithmetic instead of allocating two mirrored [Normal.t]s per
   call: on a million-gate sweep the MIN chain runs once per AND/OR
   input pair and the throwaway records were measurable.  Negation is
   exact in IEEE arithmetic, so every intermediate here carries the same
   bits as the negate-then-[max_moments] formulation. *)
let min_moments ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  let mu1 = -.Normal.mean a
  and mu2 = -.Normal.mean b in
  if th <= 0.0 then
    if mu1 >= mu2 then { mean = -.mu1; variance = Normal.variance a }
    else { mean = -.mu2; variance = Normal.variance b }
  else begin
    let lambda = (mu1 -. mu2) /. th in
    let p = Spsta_util.Special.normal_pdf lambda in
    let q = Spsta_util.Special.normal_cdf lambda in
    let mean = (mu1 *. q) +. (mu2 *. (1.0 -. q)) +. (th *. p) in
    let second =
      (((mu1 *. mu1) +. Normal.variance a) *. q)
      +. (((mu2 *. mu2) +. Normal.variance b) *. (1.0 -. q))
      +. ((mu1 +. mu2) *. th *. p)
    in
    { mean = -.mean; variance = Float.max (second -. (mean *. mean)) 0.0 }
  end

let to_normal (m : moments) = Normal.make ~mu:m.mean ~sigma:(sqrt m.variance)

let max_normal ?(cov = 0.0) a b = to_normal (max_moments ~cov a b)
let min_normal ?(cov = 0.0) a b = to_normal (min_moments ~cov a b)

let fold_many name op = function
  | [] -> invalid_arg (name ^ ": empty list")
  | first :: rest -> List.fold_left (fun acc n -> op acc n) first rest

let max_normal_many dists = fold_many "Clark.max_normal_many" (max_normal ~cov:0.0) dists
let min_normal_many dists = fold_many "Clark.min_normal_many" (min_normal ~cov:0.0) dists

(* Array counterparts used by the per-gate hot path: same left-to-right
   pairwise folds as the [_many] list versions (hence bit-identical
   results), minus the per-gate [Array.to_list] / [List.map] garbage. *)

let fold_map name op f xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg (name ^ ": empty array");
  let acc = ref (f xs.(0)) in
  for i = 1 to n - 1 do
    acc := op !acc (f xs.(i))
  done;
  !acc

let max_normal_map f xs =
  fold_map "Clark.max_normal_map" (fun acc n -> max_normal acc n) f xs

let min_normal_map f xs =
  fold_map "Clark.min_normal_map" (fun acc n -> min_normal acc n) f xs

let max_normal_map2 f g xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Clark.max_normal_map2: empty array";
  let acc = ref (f xs.(0)) in
  acc := max_normal !acc (g xs.(0));
  for i = 1 to n - 1 do
    acc := max_normal !acc (f xs.(i));
    acc := max_normal !acc (g xs.(i))
  done;
  !acc
