type moments = { mean : float; variance : float }

type mv = {
  mutable mv_mean : float;
  mutable mv_var : float;
  mutable mv_mean2 : float;
  mutable mv_var2 : float;
  mutable mv_cov : float;
}

let mv_create () = { mv_mean = 0.0; mv_var = 0.0; mv_mean2 = 0.0; mv_var2 = 0.0; mv_cov = 0.0 }

(* theta^2 = var1 + var2 - 2 cov is the variance of (t1 - t2); when it
   vanishes the two arrivals differ by a constant and the MAX is exactly
   the one with the larger mean. *)
let theta_v ~cov v1 v2 = sqrt (Float.max (v1 +. v2 -. (2.0 *. cov)) 0.0)
let theta ~cov (a : Normal.t) (b : Normal.t) = theta_v ~cov (Normal.variance a) (Normal.variance b)

let tightness ?(cov = 0.0) (a : Normal.t) (b : Normal.t) =
  let th = theta ~cov a b in
  if th <= 0.0 then if Normal.mean a >= Normal.mean b then 1.0 else 0.0
  else Spsta_util.Special.normal_cdf ((Normal.mean a -. Normal.mean b) /. th)

(* The one Clark formula, at float level: both operands, the covariance
   and the result travel through a caller-owned all-float buffer, so the
   flat engine's folds cross this module boundary without boxing a single
   float (pointer + immediate bool only) and without allocating.

   MIN(t1, t2) = -MAX(-t1, -t2), with the negations folded into the
   arithmetic under [neg] instead of allocating mirrored operands:
   negation is exact in IEEE arithmetic, so every intermediate carries
   the same bits as the negate-then-MAX formulation. *)
let clark_mv (b : mv) ~min:neg =
  let va = b.mv_var and vb = b.mv_var2 in
  let th = theta_v ~cov:b.mv_cov va vb in
  let mu1 = if neg then -.b.mv_mean else b.mv_mean in
  let mu2 = if neg then -.b.mv_mean2 else b.mv_mean2 in
  if th <= 0.0 then begin
    if mu1 >= mu2 then ()
    else begin
      b.mv_mean <- (if neg then -.mu2 else mu2);
      b.mv_var <- vb
    end
  end
  else begin
    let lambda = (mu1 -. mu2) /. th in
    let p = Spsta_util.Special.normal_pdf lambda in
    let q = Spsta_util.Special.normal_cdf lambda in
    let mean = (mu1 *. q) +. (mu2 *. (1.0 -. q)) +. (th *. p) in
    let second =
      (((mu1 *. mu1) +. va) *. q)
      +. (((mu2 *. mu2) +. vb) *. (1.0 -. q))
      +. ((mu1 +. mu2) *. th *. p)
    in
    b.mv_mean <- (if neg then -.mean else mean);
    b.mv_var <- Float.max (second -. (mean *. mean)) 0.0
  end

let max_mv b = clark_mv b ~min:false
let min_mv b = clark_mv b ~min:true

(* The record API is re-expressed through the float core so there is
   exactly one formula; the per-call buffer is cheap here because these
   entry points already allocate their result. *)
let moments_via ~min ~cov (a : Normal.t) (b : Normal.t) =
  let buf =
    {
      mv_mean = Normal.mean a;
      mv_var = Normal.variance a;
      mv_mean2 = Normal.mean b;
      mv_var2 = Normal.variance b;
      mv_cov = cov;
    }
  in
  clark_mv buf ~min;
  { mean = buf.mv_mean; variance = buf.mv_var }

let max_moments ?(cov = 0.0) a b = moments_via ~min:false ~cov a b
let min_moments ?(cov = 0.0) a b = moments_via ~min:true ~cov a b

let to_normal (m : moments) = Normal.make ~mu:m.mean ~sigma:(sqrt m.variance)

let max_normal ?(cov = 0.0) a b = to_normal (max_moments ~cov a b)
let min_normal ?(cov = 0.0) a b = to_normal (min_moments ~cov a b)

let fold_many name op = function
  | [] -> invalid_arg (name ^ ": empty list")
  | first :: rest -> List.fold_left (fun acc n -> op acc n) first rest

let max_normal_many dists = fold_many "Clark.max_normal_many" (max_normal ~cov:0.0) dists
let min_normal_many dists = fold_many "Clark.min_normal_many" (min_normal ~cov:0.0) dists

(* Array counterparts used by the per-gate hot path: same left-to-right
   pairwise folds as the [_many] list versions (hence bit-identical
   results), minus the per-gate [Array.to_list] / [List.map] garbage. *)

let fold_map name op f xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg (name ^ ": empty array");
  let acc = ref (f xs.(0)) in
  for i = 1 to n - 1 do
    acc := op !acc (f xs.(i))
  done;
  !acc

let max_normal_map f xs =
  fold_map "Clark.max_normal_map" (fun acc n -> max_normal acc n) f xs

let min_normal_map f xs =
  fold_map "Clark.min_normal_map" (fun acc n -> min_normal acc n) f xs

let max_normal_map2 f g xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Clark.max_normal_map2: empty array";
  let acc = ref (f xs.(0)) in
  acc := max_normal !acc (g xs.(0));
  for i = 1 to n - 1 do
    acc := max_normal !acc (f xs.(i));
    acc := max_normal !acc (g xs.(i))
  done;
  !acc
