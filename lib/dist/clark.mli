(** Clark's moment-matching MAX/MIN of two (possibly correlated) normal
    arrival times — the paper's eq. 4 and the workhorse of SSTA.

    The true distribution of MAX(t1, t2) is not normal; these functions
    return the exact first two moments, which SSTA then re-interprets as a
    normal ("moment matching"). *)

type moments = { mean : float; variance : float }

type mv = {
  mutable mv_mean : float;  (** operand 1 mean in, result mean out *)
  mutable mv_var : float;  (** operand 1 variance in, result variance out *)
  mutable mv_mean2 : float;  (** operand 2 mean *)
  mutable mv_var2 : float;  (** operand 2 variance *)
  mutable mv_cov : float;  (** covariance of the operands *)
}
(** Caller-owned operand/result buffer for the float-level entry points.
    All fields are floats, so the record is flat: reads, writes and the
    call itself never box or allocate — the representation the
    allocation-free flat engine folds through.  Reuse one buffer per
    fold; the accumulator lives in the first operand slot. *)

val mv_create : unit -> mv
(** A zeroed buffer. *)

val max_mv : mv -> unit
(** Clark MAX of the two operands in the buffer, written back into the
    operand-1 slots.  Bit-identical to {!max_moments} on the same values:
    both run the single underlying formula. *)

val min_mv : mv -> unit
(** MIN(t1, t2) = -MAX(-t1, -t2), negations folded into the arithmetic
    (exact in IEEE); bit-identical to {!min_moments}. *)

val max_moments : ?cov:float -> Normal.t -> Normal.t -> moments
(** First two moments of MAX(t1, t2); [cov] defaults to 0 (independent). *)

val min_moments : ?cov:float -> Normal.t -> Normal.t -> moments
(** Via MIN(t1, t2) = -MAX(-t1, -t2). *)

val max_normal : ?cov:float -> Normal.t -> Normal.t -> Normal.t
(** Moment-matched normal approximation of the MAX. *)

val min_normal : ?cov:float -> Normal.t -> Normal.t -> Normal.t

val max_normal_many : Normal.t list -> Normal.t
(** Left-associated pairwise MAX of independent arrivals.
    Raises [Invalid_argument] on an empty list. *)

val min_normal_many : Normal.t list -> Normal.t

val max_normal_map : ('a -> Normal.t) -> 'a array -> Normal.t
(** [max_normal_map f xs] is [max_normal_many (List.map f (Array.to_list xs))]
    without the intermediate lists — the same left-to-right pairwise fold,
    bit-identical results.  Raises [Invalid_argument] on an empty array. *)

val min_normal_map : ('a -> Normal.t) -> 'a array -> Normal.t

val max_normal_map2 : ('a -> Normal.t) -> ('a -> Normal.t) -> 'a array -> Normal.t
(** Folds [f xs.(0); g xs.(0); f xs.(1); g xs.(1); ...] through
    {!max_normal} — the XOR settle order.  Raises [Invalid_argument] on
    an empty array. *)

val tightness : ?cov:float -> Normal.t -> Normal.t -> float
(** Clark's Q = P(t1 > t2): the probability the first input dominates the
    MAX. Used for criticality estimation. *)
