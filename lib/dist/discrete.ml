type t = {
  dt : float;
  k0 : int; (* origin bin index: bin i holds mass at time (k0 + i) * dt *)
  mass : float array;
  dropped : float; (* upper bound on mass removed by epsilon-truncation *)
}

let dt t = t.dt
let total t = Array.fold_left ( +. ) 0.0 t.mass
let dropped_mass t = t.dropped

let check_dt d = if d <= 0.0 then invalid_arg "Discrete: dt must be positive"

let zero ~dt =
  check_dt dt;
  { dt; k0 = 0; mass = [||]; dropped = 0.0 }

let time t i = float_of_int (t.k0 + i) *. t.dt
let bin_of_time ~dt x = int_of_float (Float.round (x /. dt))

(* Unit-mass discretisation of a non-degenerate normal over +-6 sigma:
   each bin gets the cdf increment over its cell (exact mass, no
   quadrature error accumulation), renormalised to 1. *)
let discretise_normal ~dt (n : Normal.t) =
  let lo = Normal.mean n -. (6.0 *. Normal.stddev n) in
  let hi = Normal.mean n +. (6.0 *. Normal.stddev n) in
  let k_lo = bin_of_time ~dt lo and k_hi = bin_of_time ~dt hi in
  let bins = k_hi - k_lo + 1 in
  let edge k = (float_of_int k -. 0.5) *. dt in
  let arr =
    Array.init bins (fun i ->
        let k = k_lo + i in
        Normal.cdf n (edge (k + 1)) -. Normal.cdf n (edge k))
  in
  let covered = Array.fold_left ( +. ) 0.0 arr in
  let factor = if covered > 0.0 then 1.0 /. covered else 0.0 in
  (k_lo, Array.map (fun m -> m *. factor) arr)

(* The analyzer discretises the same gate-delay kernel once per gate and
   the same input-arrival normal once per source; memoise the unit-mass
   shape per (dt, mu, sigma).  Lookups copy on scale, so cached arrays
   are never shared mutably.  The mutex keeps the table safe under
   domain-parallel analysis. *)
let normal_cache : (float * float * float, int * float array) Hashtbl.t = Hashtbl.create 256
let normal_cache_mutex = Mutex.create ()
let normal_cache_limit = 4096

let cached_discretise_normal ~dt n =
  let key = (dt, Normal.mean n, Normal.stddev n) in
  Mutex.lock normal_cache_mutex;
  let hit = Hashtbl.find_opt normal_cache key in
  Mutex.unlock normal_cache_mutex;
  match hit with
  | Some shape -> shape
  | None ->
    let shape = discretise_normal ~dt n in
    Mutex.lock normal_cache_mutex;
    if Hashtbl.length normal_cache >= normal_cache_limit then Hashtbl.reset normal_cache;
    Hashtbl.replace normal_cache key shape;
    Mutex.unlock normal_cache_mutex;
    shape

let of_normal ?(cache = true) ~dt ~mass (n : Normal.t) =
  check_dt dt;
  if mass < 0.0 then invalid_arg "Discrete.of_normal: negative mass";
  if mass = 0.0 then zero ~dt
  else if Normal.stddev n = 0.0 then
    { dt; k0 = bin_of_time ~dt (Normal.mean n); mass = [| mass |]; dropped = 0.0 }
  else begin
    let k0, shape =
      if cache then cached_discretise_normal ~dt n else discretise_normal ~dt n
    in
    { dt; k0; mass = Array.map (fun m -> m *. mass) shape; dropped = 0.0 }
  end

let of_points ~dt points =
  check_dt dt;
  List.iter (fun (_, m) -> if m < 0.0 then invalid_arg "Discrete.of_points: negative mass") points;
  match points with
  | [] -> zero ~dt
  | _ ->
    let ks = List.map (fun (x, m) -> (bin_of_time ~dt x, m)) points in
    let k_lo = List.fold_left (fun acc (k, _) -> min acc k) max_int ks in
    let k_hi = List.fold_left (fun acc (k, _) -> max acc k) min_int ks in
    let arr = Array.make (k_hi - k_lo + 1) 0.0 in
    List.iter (fun (k, m) -> arr.(k - k_lo) <- arr.(k - k_lo) +. m) ks;
    { dt; k0 = k_lo; mass = arr; dropped = 0.0 }

let scale t f =
  if f < 0.0 then invalid_arg "Discrete.scale: negative factor";
  { t with mass = Array.map (fun m -> m *. f) t.mass; dropped = t.dropped *. f }

let require_same_dt a b =
  if Float.abs (a.dt -. b.dt) > 1e-12 then invalid_arg "Discrete: grid step mismatch"

let add a b =
  require_same_dt a b;
  if Array.length a.mass = 0 then { b with dropped = a.dropped +. b.dropped }
  else if Array.length b.mass = 0 then { a with dropped = a.dropped +. b.dropped }
  else begin
    let k_lo = min a.k0 b.k0 in
    let k_hi = max (a.k0 + Array.length a.mass) (b.k0 + Array.length b.mass) in
    let arr = Array.make (k_hi - k_lo) 0.0 in
    Array.iteri (fun i m -> arr.(a.k0 - k_lo + i) <- arr.(a.k0 - k_lo + i) +. m) a.mass;
    Array.iteri (fun i m -> arr.(b.k0 - k_lo + i) <- arr.(b.k0 - k_lo + i) +. m) b.mass;
    { dt = a.dt; k0 = k_lo; mass = arr; dropped = a.dropped +. b.dropped }
  end

let sum ~dt ts = List.fold_left add (zero ~dt) ts

let shift t d = { t with k0 = t.k0 + bin_of_time ~dt:t.dt d }

let truncate ~eps t =
  if eps <= 0.0 || Array.length t.mass = 0 then t
  else begin
    let n = Array.length t.mass in
    let lo = ref 0 and hi = ref (n - 1) in
    let lcut = ref 0.0 and rcut = ref 0.0 in
    (* grow each cut while its cumulative mass stays within eps; always
       keep at least one bin so the support never vanishes *)
    while !lo < !hi && !lcut +. t.mass.(!lo) <= eps do
      lcut := !lcut +. t.mass.(!lo);
      incr lo
    done;
    while !hi > !lo && !rcut +. t.mass.(!hi) <= eps do
      rcut := !rcut +. t.mass.(!hi);
      decr hi
    done;
    if !lo = 0 && !hi = n - 1 then t
    else
      { t with
        k0 = t.k0 + !lo;
        mass = Array.sub t.mass !lo (!hi - !lo + 1);
        dropped = t.dropped +. !lcut +. !rcut }
  end

let convolve a b =
  require_same_dt a b;
  let na = Array.length a.mass and nb = Array.length b.mass in
  if na = 0 || nb = 0 then
    { (zero ~dt:a.dt) with dropped = a.dropped +. b.dropped }
  else begin
    let arr = Array.make (na + nb - 1) 0.0 in
    for i = 0 to na - 1 do
      if a.mass.(i) <> 0.0 then
        for j = 0 to nb - 1 do
          arr.(i + j) <- arr.(i + j) +. (a.mass.(i) *. b.mass.(j))
        done
    done;
    (* truncated mass of one operand reaches the output scaled by the
       other's retained total — keep the conservative bound *)
    let ta = total a and tb = total b in
    { dt = a.dt; k0 = a.k0 + b.k0; mass = arr;
      dropped = (a.dropped *. tb) +. (b.dropped *. ta) +. (a.dropped *. b.dropped) }
  end

let normalized t =
  let w = total t in
  if w <= 0.0 then invalid_arg "Discrete: zero-mass distribution";
  scale t (1.0 /. w)

(* P(max = k) = pa(k) * Fb(k-1) + pb(k) * Fa(k-1) + pa(k) * pb(k), with
   F the inclusive cdf up to the previous bin: exact for independent
   lattice random variables. *)
let max_independent a b =
  require_same_dt a b;
  let carry = a.dropped /. Float.max (total a) Float.min_float
              +. (b.dropped /. Float.max (total b) Float.min_float) in
  let a = normalized a and b = normalized b in
  let k_lo = min a.k0 b.k0 in
  let k_hi = max (a.k0 + Array.length a.mass) (b.k0 + Array.length b.mass) in
  let n = k_hi - k_lo in
  let pa = Array.make n 0.0 and pb = Array.make n 0.0 in
  Array.iteri (fun i m -> pa.(a.k0 - k_lo + i) <- m) a.mass;
  Array.iteri (fun i m -> pb.(b.k0 - k_lo + i) <- m) b.mass;
  let out = Array.make n 0.0 in
  let fa = ref 0.0 and fb = ref 0.0 in
  for k = 0 to n - 1 do
    out.(k) <- (pa.(k) *. !fb) +. (pb.(k) *. !fa) +. (pa.(k) *. pb.(k));
    fa := !fa +. pa.(k);
    fb := !fb +. pb.(k)
  done;
  { dt = a.dt; k0 = k_lo; mass = out; dropped = carry }

let reflect t =
  let n = Array.length t.mass in
  if n = 0 then t
  else begin
    let arr = Array.init n (fun i -> t.mass.(n - 1 - i)) in
    { t with k0 = -(t.k0 + n - 1); mass = arr }
  end

let min_independent a b = reflect (max_independent (reflect a) (reflect b))

(* In-place accumulation for WEIGHTED SUM chains: a growable buffer with
   slack on both sides, so the common case of overlapping supports adds
   into existing storage instead of allocating a fresh array per term. *)
module Accum = struct
  type dist = t

  type t = {
    acc_dt : float;
    mutable buf : float array;
    mutable k_buf : int; (* bin index of buf.(0) *)
    mutable lo : int; (* first used slot; empty when lo = hi *)
    mutable hi : int; (* one past the last used slot *)
    mutable acc_dropped : float;
  }

  let create ~dt =
    check_dt dt;
    { acc_dt = dt; buf = [||]; k_buf = 0; lo = 0; hi = 0; acc_dropped = 0.0 }

  let is_empty a = a.lo = a.hi

  (* make slots [need_lo, need_hi) (relative to k_buf) addressable,
     reallocating with headroom on both sides when they are not *)
  let reserve a need_lo need_hi =
    if need_lo < 0 || need_hi > Array.length a.buf then begin
      let used_lo = min a.lo need_lo and used_hi = max a.hi need_hi in
      let span = used_hi - used_lo in
      let pad = max 32 span in
      let buf = Array.make (span + (2 * pad)) 0.0 in
      (* old slot i moves to slot i + shift in the new buffer *)
      let shift = pad - used_lo in
      Array.blit a.buf a.lo buf (a.lo + shift) (a.hi - a.lo);
      a.buf <- buf;
      a.k_buf <- a.k_buf - shift;
      a.lo <- a.lo + shift;
      a.hi <- a.hi + shift
    end

  let add a (d : dist) =
    if Float.abs (a.acc_dt -. d.dt) > 1e-12 then invalid_arg "Discrete: grid step mismatch";
    a.acc_dropped <- a.acc_dropped +. d.dropped;
    let nd = Array.length d.mass in
    if nd > 0 then begin
      if is_empty a then begin
        let pad = max 32 nd in
        if Array.length a.buf < nd + (2 * pad) then a.buf <- Array.make (nd + (2 * pad)) 0.0
        else Array.fill a.buf 0 (Array.length a.buf) 0.0;
        a.k_buf <- d.k0 - pad;
        a.lo <- pad;
        a.hi <- pad + nd;
        Array.blit d.mass 0 a.buf pad nd
      end
      else begin
        let need_lo = d.k0 - a.k_buf in
        let need_hi = need_lo + nd in
        reserve a need_lo need_hi;
        let need_lo = d.k0 - a.k_buf in
        for i = 0 to nd - 1 do
          a.buf.(need_lo + i) <- a.buf.(need_lo + i) +. d.mass.(i)
        done;
        a.lo <- min a.lo need_lo;
        a.hi <- max a.hi (need_lo + nd)
      end
    end

  let total a =
    let acc = ref 0.0 in
    for i = a.lo to a.hi - 1 do
      acc := !acc +. a.buf.(i)
    done;
    !acc

  let to_dist a =
    { dt = a.acc_dt;
      k0 = a.k_buf + a.lo;
      mass = Array.sub a.buf a.lo (a.hi - a.lo);
      dropped = a.acc_dropped }
end

let raw_moments t =
  let w = total t in
  if w <= 0.0 then None
  else begin
    let m1 = ref 0.0 and m2 = ref 0.0 in
    Array.iteri
      (fun i m ->
        let x = time t i in
        m1 := !m1 +. (m *. x);
        m2 := !m2 +. (m *. x *. x))
      t.mass;
    Some (!m1 /. w, !m2 /. w)
  end

let mean t = match raw_moments t with None -> 0.0 | Some (m1, _) -> m1

let variance t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) -> Float.max (m2 -. (m1 *. m1)) 0.0

let stddev t = sqrt (variance t)

let skewness t =
  match raw_moments t with
  | None -> 0.0
  | Some (m1, m2) ->
    let var = Float.max (m2 -. (m1 *. m1)) 0.0 in
    if var <= 0.0 then 0.0
    else begin
      let w = total t in
      let m3 = ref 0.0 in
      Array.iteri
        (fun i m ->
          let x = time t i in
          m3 := !m3 +. (m *. x *. x *. x))
        t.mass;
      let m3 = !m3 /. w in
      let central3 = m3 -. (3.0 *. m1 *. m2) +. (2.0 *. m1 *. m1 *. m1) in
      central3 /. (var ** 1.5)
    end

(* The last bin index whose time is <= x, compared in bin space: the
   tolerance is relative to dt, so it is immune to both large absolute
   times and tiny grid steps (an absolute 1e-12 slack is meaningless for
   t ~ 1e6 and far too coarse for dt ~ 1e-12). *)
let last_bin_at_or_before t x =
  let kx = Float.floor ((x /. t.dt) +. 1e-6) in
  if kx < float_of_int t.k0 then -1
  else begin
    let n = Array.length t.mass in
    if kx >= float_of_int (t.k0 + n - 1) then n - 1
    else int_of_float kx - t.k0
  end

let cdf t x =
  let last = last_bin_at_or_before t x in
  let acc = ref 0.0 in
  for i = 0 to last do
    acc := !acc +. t.mass.(i)
  done;
  !acc

let quantile t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Discrete.quantile: p outside (0,1]";
  let w = total t in
  if w <= 0.0 then invalid_arg "Discrete.quantile: empty distribution";
  (* tolerance relative to the total mass: prefix sums of w-scale terms
     carry w-scale rounding, never an absolute 1e-15 *)
  let target = (p *. w) -. (1e-9 *. w) in
  let rec scan i acc =
    if i >= Array.length t.mass then time t (Array.length t.mass - 1)
    else
      let acc = acc +. t.mass.(i) in
      if acc >= target then time t i else scan (i + 1) acc
  in
  scan 0 0.0

let series t = Array.to_list (Array.mapi (fun i m -> (time t i, m)) t.mass)

let density_series t = Array.to_list (Array.mapi (fun i m -> (time t i, m /. t.dt)) t.mass)
