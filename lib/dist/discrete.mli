(** Grid-discretised distributions on a uniform time lattice.

    This is the functional backend for t.o.p. propagation: it represents an
    arbitrary (sub-)probability mass over time, so it captures the
    non-normal shapes produced by MAX (Fig. 2/Fig. 4 of the paper) without
    a normality assumption.  All values produced by one analysis share a
    grid step [dt]; origins are integer multiples of [dt] so binary
    operations align bins exactly. *)

type t

val dt : t -> float
val total : t -> float
(** Total mass: the transition occurrence probability. *)

val dropped_mass : t -> float
(** Upper bound on the mass removed from this value by
    {!truncate} calls anywhere in its construction history.  Propagated
    through {!scale}/{!add}/{!shift} exactly, through {!convolve} and
    {!max_independent}/{!min_independent} as a conservative bound.
    0 for values built without truncation. *)

val zero : dt:float -> t
(** The empty (never-transitions) distribution. *)

val of_normal : ?cache:bool -> dt:float -> mass:float -> Normal.t -> t
(** Discretise a normal over ±6σ, scaled so the total equals [mass].
    With [cache] (the default) the unit-mass shape is memoised per
    [(dt, mean, stddev)] in a domain-safe table, which makes repeated
    gate-delay kernels (the hot case in grid-backend analysis) a lookup
    plus one scaling pass.  Raises [Invalid_argument] on negative mass
    or non-positive [dt]. *)

val of_points : dt:float -> (float * float) list -> t
(** Point masses at given (time, mass) pairs; times are rounded to the
    grid.  Raises [Invalid_argument] on negative masses. *)

val scale : t -> float -> t
(** Multiply all mass (non-negative factor). *)

val add : t -> t -> t
(** Pointwise mass addition (the WEIGHTED SUM after scaling).
    Raises [Invalid_argument] on mismatched [dt]. *)

val sum : dt:float -> t list -> t

val shift : t -> float -> t
(** Add a deterministic delay (rounded to the grid). *)

val truncate : eps:float -> t -> t
(** Drop the longest prefix and suffix of bins whose cumulative mass
    stays within [eps] per side, keeping at least one bin.  The removed
    mass is accounted for in {!dropped_mass} — the error any downstream
    moment or quantile can incur is bounded by the (per-side) [eps]
    times the number of truncations, which {!dropped_mass} tracks
    exactly.  [eps <= 0] is the identity. *)

val convolve : t -> t -> t
(** Sum of independent random variables (normalised or not: masses
    multiply).  Used for variational gate delays. *)

val max_independent : t -> t -> t
(** Distribution of MAX(X, Y) for independent X ~ a/|a|, Y ~ b/|b|,
    returned with unit mass.  Raises [Invalid_argument] if either input
    has zero mass or the grids mismatch. *)

val min_independent : t -> t -> t

val mean : t -> float
(** Mean of the normalised distribution; 0 when empty. *)

val variance : t -> float
val stddev : t -> float

val skewness : t -> float
(** Standardised third central moment of the normalised distribution;
    0 when empty or degenerate. *)

val cdf : t -> float -> float
(** Unnormalised: mass at or before the given time.  "At" is decided in
    bin space with a tolerance relative to [dt] (not an absolute time
    tolerance), so the answer is exact for times on the grid regardless
    of how large the times or how small the grid step. *)

val quantile : t -> float -> float
(** Time at which the *normalised* cdf first reaches p in (0,1], with a
    tolerance relative to the total mass.  When the accumulated mass
    never reaches the target — possible only through floating-point
    rounding of the prefix sums, since p <= 1 — the last support bin is
    returned; callers that need the distinction should compare
    [cdf t (quantile t p)] against [p *. total t].  Raises
    [Invalid_argument] when empty or [p] is outside (0,1]. *)

(** In-place accumulation of a WEIGHTED SUM chain: semantically
    equivalent to folding {!add}, but reuses one growable buffer instead
    of allocating a fresh array per term.  The result is bit-identical
    to the [add] fold (same masses added in the same order). *)
module Accum : sig
  type dist := t
  type t

  val create : dt:float -> t
  val add : t -> dist -> unit
  val total : t -> float
  val to_dist : t -> dist
end

val series : t -> (float * float) list
(** (bin time, mass) pairs over the support, for plotting/printing. *)

val density_series : t -> (float * float) list
(** (bin time, mass/dt) pairs: a pdf-like view of the t.o.p. function. *)
