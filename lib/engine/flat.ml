module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Parallel = Spsta_util.Parallel
module Clark = Spsta_dist.Clark
module FA = Float.Array

(* Flat struct-of-arrays fast path for the SSTA-shaped domains.

   The record engine ([Propagate.Make]) pays boxed prices per gate: an
   operand array, several [Normal.t]/state records, a closure result —
   hundreds of bytes of minor-heap churn per gate, which at a million
   gates dominates the sweep and serializes the parallel domains on GC.
   Here per-net state lives in preallocated [floatarray]s (one slot per
   net id per component), gates are walked through the circuit's cached
   CSR view ({!Circuit.csr}), and the inner loop is scalar float code
   folding through {!Clark.max_mv}/{!Clark.min_mv} via caller-owned
   all-float buffers: no per-gate allocation at all.

   Every fold replays the record engine's operation order exactly —
   carry sigma, re-square it per Clark step like [Normal.variance],
   re-sqrt like [Clark.to_normal] — so results are bit-identical
   (IEEE-exact) to [Ssta]/[Sta] on the record engine, at every domain
   count.  The analyzers assert this in their test suites. *)

(* Per-direction (rise, fall) normal moments travelling between an
   analyzer's closures and the kernel: an all-float mutable record, so
   writes and reads never allocate or box. *)
type rf_buf = {
  mutable rise_mu : float;
  mutable rise_sig : float;
  mutable fall_mu : float;
  mutable fall_sig : float;
}

let rf_buf () = { rise_mu = 0.0; rise_sig = 0.0; fall_mu = 0.0; fall_sig = 0.0 }

(* The scheduling skeleton shared by the flat kernels: the same
   sequential sweep / levelized-parallel sweep (persistent pool, chunk
   claiming, narrow-level fusion, [wide_cutoff]) / dirty-cone update as
   [Propagate.Make], re-expressed over CSR gate-index ranges.  The
   cutoffs and chunk decompositions are copied verbatim from the record
   engine so the two schedules stay aligned. *)
module type KERNEL = sig
  type t

  type scratch
  (** Per-worker state (Clark buffers, …) — never shared across domains. *)

  val circuit : t -> Circuit.t
  val scratch : t -> scratch
  val seed : t -> scratch -> Circuit.id -> unit
  val eval : t -> scratch -> int -> unit
  (** Evaluate the gate at CSR index [k] (= topo position), reading
      operand slots and writing the output slot.  Pure per gate, which
      is what keeps the parallel schedule bit-identical. *)
end

module Sweep (K : KERNEL) = struct
  let wide_cutoff domains = max 16 (2 * domains)

  let seq_range t scratch glo ghi =
    for k = glo to ghi - 1 do
      K.eval t scratch k
    done

  let par_range ~domains t glo ghi =
    let width = ghi - glo in
    let chunks = min width (max domains (min (4 * domains) (width / 8))) in
    let bounds = Parallel.ranges ~chunks width in
    Parallel.run_chunks ~domains ~chunks:(Array.length bounds) (fun c ->
        (* per-chunk scratch: chunks of one level run concurrently *)
        let scratch = K.scratch t in
        let lo, hi = bounds.(c) in
        seq_range t scratch (glo + lo) (glo + hi))

  let sweep ~domains ~instrument t =
    let circuit = K.circuit t in
    let csr = Circuit.csr circuit in
    let level_off = csr.Circuit.level_off in
    let nlev = Array.length level_off - 1 in
    match instrument with
    | None when domains = 1 -> seq_range t (K.scratch t) 0 (Array.length csr.Circuit.gate_net)
    | Some f ->
      (* instrumented path: exact per-level stats, no fusion *)
      let cutoff = wide_cutoff domains in
      let scratch = K.scratch t in
      for l = 0 to nlev - 1 do
        let glo = level_off.(l) and ghi = level_off.(l + 1) in
        let width = ghi - glo in
        let start = Unix.gettimeofday () in
        if domains = 1 || width < cutoff then seq_range t scratch glo ghi
        else par_range ~domains t glo ghi;
        f
          { Propagate.level = Circuit.level circuit csr.Circuit.gate_net.(glo);
            gates = width;
            (* clamped: [gettimeofday] is not monotone, and a clock
               step must not report a negative level time *)
            elapsed_s = Float.max 0.0 (Unix.gettimeofday () -. start) }
      done
    | None ->
      (* runs of adjacent narrow levels are fused; levels are contiguous
         CSR ranges, so a fused run is just a longer range *)
      let cutoff = wide_cutoff domains in
      let scratch = K.scratch t in
      let l = ref 0 in
      while !l < nlev do
        let glo = level_off.(!l) in
        if domains > 1 && level_off.(!l + 1) - glo >= cutoff then begin
          par_range ~domains t glo level_off.(!l + 1);
          incr l
        end
        else begin
          incr l;
          while !l < nlev && (domains = 1 || level_off.(!l + 1) - level_off.(!l) < cutoff) do
            incr l
          done;
          seq_range t scratch glo level_off.(!l)
        end
      done

  let run ~domains ~instrument t =
    let circuit = K.circuit t in
    (match Circuit.sources circuit with
    | [] ->
      (* acyclicity forces every non-empty circuit to have a minimal
         net, and minimal nets are sources *)
      if Circuit.num_nets circuit > 0 then invalid_arg "Flat.run: circuit has nets but no sources"
    | sources ->
      let scratch = K.scratch t in
      List.iter (K.seed t scratch) sources);
    sweep ~domains ~instrument t

  let update t ~changed =
    let circuit = K.circuit t in
    let cone = Propagate.dirty_cone circuit ~changed in
    let scratch = K.scratch t in
    (* refresh changed sources (their seed is what changed); marking
       never reaches a source, so the changed roots are the only
       candidates *)
    List.iter
      (fun id ->
        match Circuit.driver circuit id with
        | Circuit.Input | Circuit.Dff_output _ -> K.seed t scratch id
        | Circuit.Gate _ -> ())
      changed;
    Array.iter (fun id -> K.eval t scratch (Circuit.topo_position circuit id)) cone
end

(* ------------------------------------------------------------------ *)
(* Min/max-separated SSTA (the [Ssta] analyzer's domain): one normal
   arrival per transition direction per net. *)

module Ssta = struct
  type check = float -> float -> float -> float -> (string * string) option

  type state = {
    circuit : Circuit.t;
    rise_mean : floatarray;
    rise_sigma : floatarray;
    fall_mean : floatarray;
    fall_sigma : floatarray;
  }

  type cfg = {
    source : Circuit.id -> rf_buf -> unit;
    delay : Circuit.id -> rf_buf -> unit;
    check : check option;
  }

  (* Left-to-right Clark fold over one direction's slots, the float
     rendering of [Clark.max_normal_map]/[min_normal_map]: the
     accumulator starts at the first operand (and is returned untouched
     for single-input gates, like the record fold), and each step
     re-squares the carried sigma exactly like [Normal.variance] and
     re-sqrts the result exactly like [Clark.to_normal], so the chain is
     bit-identical to the record engine's. *)
  let fold_clark ~min ~into_rise (mv : Clark.mv) (base : rf_buf) (mean : floatarray)
      (sigma : floatarray) (fanin : int array) off off2 =
    let i0 = fanin.(off) in
    let m = ref (FA.get mean i0) in
    let s = ref (FA.get sigma i0) in
    mv.Clark.mv_cov <- 0.0;
    for j = off + 1 to off2 - 1 do
      let i = fanin.(j) in
      mv.Clark.mv_mean <- !m;
      mv.Clark.mv_var <- !s *. !s;
      let os = FA.get sigma i in
      mv.Clark.mv_mean2 <- FA.get mean i;
      mv.Clark.mv_var2 <- os *. os;
      if min then Clark.min_mv mv else Clark.max_mv mv;
      m := mv.Clark.mv_mean;
      s := sqrt mv.Clark.mv_var
    done;
    if into_rise then begin
      base.rise_mu <- !m;
      base.rise_sig <- !s
    end
    else begin
      base.fall_mu <- !m;
      base.fall_sig <- !s
    end

  (* XOR/XNOR settle: MAX over both directions of every input, in
     [Clark.max_normal_map2]'s interleaved order — rise(0), fall(0),
     rise(1), fall(1), … *)
  let fold_settle (mv : Clark.mv) (base : rf_buf) (rise_mean : floatarray)
      (rise_sigma : floatarray) (fall_mean : floatarray) (fall_sigma : floatarray)
      (fanin : int array) off off2 =
    mv.Clark.mv_cov <- 0.0;
    let i0 = fanin.(off) in
    let m = ref (FA.get rise_mean i0) in
    let s = ref (FA.get rise_sigma i0) in
    mv.Clark.mv_mean <- !m;
    mv.Clark.mv_var <- !s *. !s;
    let os0 = FA.get fall_sigma i0 in
    mv.Clark.mv_mean2 <- FA.get fall_mean i0;
    mv.Clark.mv_var2 <- os0 *. os0;
    Clark.max_mv mv;
    m := mv.Clark.mv_mean;
    s := sqrt mv.Clark.mv_var;
    for j = off + 1 to off2 - 1 do
      let i = fanin.(j) in
      mv.Clark.mv_mean <- !m;
      mv.Clark.mv_var <- !s *. !s;
      let osr = FA.get rise_sigma i in
      mv.Clark.mv_mean2 <- FA.get rise_mean i;
      mv.Clark.mv_var2 <- osr *. osr;
      Clark.max_mv mv;
      m := mv.Clark.mv_mean;
      s := sqrt mv.Clark.mv_var;
      mv.Clark.mv_mean <- !m;
      mv.Clark.mv_var <- !s *. !s;
      let osf = FA.get fall_sigma i in
      mv.Clark.mv_mean2 <- FA.get fall_mean i;
      mv.Clark.mv_var2 <- osf *. osf;
      Clark.max_mv mv;
      m := mv.Clark.mv_mean;
      s := sqrt mv.Clark.mv_var
    done;
    base.rise_mu <- !m;
    base.rise_sig <- !s;
    base.fall_mu <- !m;
    base.fall_sig <- !s

  module K = struct
    type t = {
      st : state;
      cfg : cfg;
      gate_net : int array;
      kind_code : int array;
      fanin_off : int array;
      fanin : int array;
    }

    type scratch = { mv : Clark.mv; base : rf_buf; db : rf_buf }

    let circuit t = t.st.circuit
    let scratch _ = { mv = Clark.mv_create (); base = rf_buf (); db = rf_buf () }

    let store_checked t net ~rise_mu ~rise_sig ~fall_mu ~fall_sig =
      let st = t.st in
      FA.set st.rise_mean net rise_mu;
      FA.set st.rise_sigma net rise_sig;
      FA.set st.fall_mean net fall_mu;
      FA.set st.fall_sigma net fall_sig;
      match t.cfg.check with
      | None -> ()
      | Some chk -> (
        match chk rise_mu rise_sig fall_mu fall_sig with
        | None -> ()
        | Some (rule, message) ->
          Propagate.Sanitize.fail ~circuit:st.circuit net ~rule ~message)

    let seed t scratch id =
      let b = scratch.db in
      t.cfg.source id b;
      store_checked t id ~rise_mu:b.rise_mu ~rise_sig:b.rise_sig ~fall_mu:b.fall_mu
        ~fall_sig:b.fall_sig

    let eval t scratch k =
      let st = t.st in
      let mv = scratch.mv and base = scratch.base in
      let off = t.fanin_off.(k) and off2 = t.fanin_off.(k + 1) in
      let fanin = t.fanin in
      let kind = Gate_kind.of_code t.kind_code.(k) in
      (* base (non-inverted) gate timing, [Ssta.base_arrivals] at float
         level: AND rise = MAX of rises / fall = MIN of falls, OR is the
         dual, XOR settles over both directions, NOT/BUF copy *)
      (match kind with
      | Gate_kind.And | Gate_kind.Nand ->
        fold_clark ~min:false ~into_rise:true mv base st.rise_mean st.rise_sigma fanin off off2;
        fold_clark ~min:true ~into_rise:false mv base st.fall_mean st.fall_sigma fanin off off2
      | Gate_kind.Or | Gate_kind.Nor ->
        fold_clark ~min:true ~into_rise:true mv base st.rise_mean st.rise_sigma fanin off off2;
        fold_clark ~min:false ~into_rise:false mv base st.fall_mean st.fall_sigma fanin off off2
      | Gate_kind.Xor | Gate_kind.Xnor ->
        fold_settle mv base st.rise_mean st.rise_sigma st.fall_mean st.fall_sigma fanin off off2
      | Gate_kind.Not | Gate_kind.Buf ->
        (* arity 1 is enforced at [Builder.finalize] *)
        let i0 = fanin.(off) in
        base.rise_mu <- FA.get st.rise_mean i0;
        base.rise_sig <- FA.get st.rise_sigma i0;
        base.fall_mu <- FA.get st.fall_mean i0;
        base.fall_sig <- FA.get st.fall_sigma i0);
      (* inverting gates swap the directions *)
      let inv = Gate_kind.inverting kind in
      let r_mu0 = if inv then base.fall_mu else base.rise_mu in
      let r_s0 = if inv then base.fall_sig else base.rise_sig in
      let f_mu0 = if inv then base.rise_mu else base.fall_mu in
      let f_s0 = if inv then base.rise_sig else base.fall_sig in
      let g = t.gate_net.(k) in
      (* one [delay] call per evaluated gate — the contract session
         accounting relies on to measure dirty cones *)
      let db = scratch.db in
      t.cfg.delay g db;
      (* SUM with the gate delay, [Normal.sum] at float level *)
      let rise_mu = r_mu0 +. db.rise_mu in
      let rise_sig = sqrt ((r_s0 *. r_s0) +. (db.rise_sig *. db.rise_sig)) in
      let fall_mu = f_mu0 +. db.fall_mu in
      let fall_sig = sqrt ((f_s0 *. f_s0) +. (db.fall_sig *. db.fall_sig)) in
      store_checked t g ~rise_mu ~rise_sig ~fall_mu ~fall_sig
  end

  module S = Sweep (K)

  let kernel st cfg =
    let csr = Circuit.csr st.circuit in
    {
      K.st;
      cfg;
      gate_net = csr.Circuit.gate_net;
      kind_code = csr.Circuit.kind_code;
      fanin_off = csr.Circuit.fanin_off;
      fanin = csr.Circuit.fanin;
    }

  let run ~source ~delay ?check ?domains ?instrument circuit =
    let domains = match domains with Some d -> Parallel.check_domains d | None -> 1 in
    let n = Circuit.num_nets circuit in
    let st =
      {
        circuit;
        (* the fill value is arbitrary: every net is either a source
           (seeded) or a gate (written before it is ever read) *)
        rise_mean = FA.make n 0.0;
        rise_sigma = FA.make n 0.0;
        fall_mean = FA.make n 0.0;
        fall_sigma = FA.make n 0.0;
      }
    in
    S.run ~domains ~instrument (kernel st { source; delay; check });
    st

  let update ~source ~delay ?check st ~changed =
    let st' =
      {
        st with
        rise_mean = FA.copy st.rise_mean;
        rise_sigma = FA.copy st.rise_sigma;
        fall_mean = FA.copy st.fall_mean;
        fall_sigma = FA.copy st.fall_sigma;
      }
    in
    S.update (kernel st' { source; delay; check }) ~changed;
    st'

  let circuit st = st.circuit
  let rise_mean st id = FA.get st.rise_mean id
  let rise_sigma st id = FA.get st.rise_sigma id
  let fall_mean st id = FA.get st.fall_mean id
  let fall_sigma st id = FA.get st.fall_sigma id
end

(* ------------------------------------------------------------------ *)
(* Corner STA (the [Sta] analyzer's domain): a deterministic
   [earliest, latest] window per net. *)

module Sta = struct
  type buf = { mutable b_early : float; mutable b_late : float }

  let buf () = { b_early = 0.0; b_late = 0.0 }

  type check = float -> float -> (string * string) option

  type state = { circuit : Circuit.t; early : floatarray; late : floatarray }

  type cfg = {
    source : Circuit.id -> buf -> unit;
    delay : Circuit.id -> float;
    check : check option;
  }

  module K = struct
    type t = { st : state; cfg : cfg; gate_net : int array; fanin_off : int array; fanin : int array }
    type scratch = buf

    let circuit t = t.st.circuit
    let scratch _ = buf ()

    let store_checked t net ~early ~late =
      let st = t.st in
      FA.set st.early net early;
      FA.set st.late net late;
      match t.cfg.check with
      | None -> ()
      | Some chk -> (
        match chk early late with
        | None -> ()
        | Some (rule, message) -> Propagate.Sanitize.fail ~circuit:st.circuit net ~rule ~message)

    let seed t scratch id =
      t.cfg.source id scratch;
      store_checked t id ~early:scratch.b_early ~late:scratch.b_late

    (* [Sta.gate_eval] at float level: the record folds run
       [Float.min]/[Float.max] from the infinities, so the same fold
       here (operands interleaved — the two directions never interact)
       is bit-identical. *)
    let eval t _scratch k =
      let st = t.st in
      let off = t.fanin_off.(k) and off2 = t.fanin_off.(k + 1) in
      let e = ref infinity and l = ref neg_infinity in
      for j = off to off2 - 1 do
        let i = t.fanin.(j) in
        e := Float.min !e (FA.get st.early i);
        l := Float.max !l (FA.get st.late i)
      done;
      let g = t.gate_net.(k) in
      let d = t.cfg.delay g in
      store_checked t g ~early:(!e +. d) ~late:(!l +. d)
  end

  module S = Sweep (K)

  let kernel st cfg =
    let csr = Circuit.csr st.circuit in
    {
      K.st;
      cfg;
      gate_net = csr.Circuit.gate_net;
      fanin_off = csr.Circuit.fanin_off;
      fanin = csr.Circuit.fanin;
    }

  let run ~source ~delay ?check ?domains ?instrument circuit =
    let domains = match domains with Some d -> Parallel.check_domains d | None -> 1 in
    let n = Circuit.num_nets circuit in
    let st = { circuit; early = FA.make n 0.0; late = FA.make n 0.0 } in
    S.run ~domains ~instrument (kernel st { source; delay; check });
    st

  let update ~source ~delay ?check st ~changed =
    let st' = { st with early = FA.copy st.early; late = FA.copy st.late } in
    S.update (kernel st' { source; delay; check }) ~changed;
    st'

  let circuit st = st.circuit
  let earliest st id = FA.get st.early id
  let latest st id = FA.get st.late id
end
