(** Flat struct-of-arrays kernels for the SSTA-shaped propagation
    domains.

    The record engine ({!Propagate.Make}) allocates an operand array
    plus several state records per gate; at a million gates that churn
    dominates the sweep and serializes the parallel domains on GC.
    These kernels keep per-net state in preallocated [floatarray]s (one
    slot per net id per moment component), walk the gates through the
    circuit's cached CSR view ({!Spsta_netlist.Circuit.csr}), and fold
    the Clark/min/max arithmetic through caller-owned all-float buffers
    ({!Spsta_dist.Clark.mv}, {!rf_buf}) — the inner loop performs no
    allocation at all.

    Scheduling (sequential sweep, levelized-parallel sweep over the
    persistent {!Spsta_util.Parallel} pool with narrow-level fusion,
    dirty-cone incremental update via {!Propagate.dirty_cone}) mirrors
    the record engine exactly, and every fold replays the record
    engine's operation order — results are bit-identical (IEEE-exact)
    to the record engine at every domain count.  The analyzers
    ({!Spsta_ssta.Ssta}, {!Spsta_ssta.Sta}) route through these kernels
    by default and materialize records only at their API boundary. *)

type rf_buf = {
  mutable rise_mu : float;
  mutable rise_sig : float;
  mutable fall_mu : float;
  mutable fall_sig : float;
}
(** Per-direction normal moments travelling between an analyzer's
    closures (source seeds, per-gate delays) and the kernel: an
    all-float mutable record, so writes and reads never allocate. *)

val rf_buf : unit -> rf_buf
(** A zeroed buffer. *)

(** Min/max-separated SSTA: one normal arrival per transition direction
    per net, Clark MAX/MIN folds per gate (the {!Spsta_ssta.Ssta}
    domain). *)
module Ssta : sig
  type check = float -> float -> float -> float -> (string * string) option
  (** [check rise_mu rise_sigma fall_mu fall_sigma] verifies one net's
      slots, returning [Some (rule, message)] on a violation — the
      float-level twin of {!Propagate.Sanitize.check}.  Violations are
      raised as {!Propagate.Sanitize.Violation} naming the net.  Must be
      pure: it runs inside the (possibly parallel) sweep. *)

  type state
  (** Arrival moments for every net, in four flat float arrays. *)

  val run :
    source:(Spsta_netlist.Circuit.id -> rf_buf -> unit) ->
    delay:(Spsta_netlist.Circuit.id -> rf_buf -> unit) ->
    ?check:check ->
    ?domains:int ->
    ?instrument:(Propagate.level_stat -> unit) ->
    Spsta_netlist.Circuit.t ->
    state
  (** Full sweep.  [source] fills the buffer with a source net's arrival
      moments; [delay] fills it with a gate's (rise, fall) delay moments
      and is called exactly once per evaluated gate.  [domains],
      [instrument] and the scheduling cutoffs behave exactly as in
      {!Propagate.Make.run}. *)

  val update :
    source:(Spsta_netlist.Circuit.id -> rf_buf -> unit) ->
    delay:(Spsta_netlist.Circuit.id -> rf_buf -> unit) ->
    ?check:check ->
    state ->
    changed:Spsta_netlist.Circuit.id list ->
    state
  (** Dirty-cone incremental re-propagation, {!Propagate.Make.update}
      semantics: re-seeds changed sources, re-evaluates exactly the
      combinational fanout cones in sequential order ([delay] is called
      once per dirty gate), shares slots outside the cones by copying
      the arrays.  The input state is not mutated. *)

  val circuit : state -> Spsta_netlist.Circuit.t
  val rise_mean : state -> Spsta_netlist.Circuit.id -> float
  val rise_sigma : state -> Spsta_netlist.Circuit.id -> float
  val fall_mean : state -> Spsta_netlist.Circuit.id -> float
  val fall_sigma : state -> Spsta_netlist.Circuit.id -> float
end

(** Corner STA: a deterministic [earliest, latest] window per net (the
    {!Spsta_ssta.Sta} domain). *)
module Sta : sig
  type buf = { mutable b_early : float; mutable b_late : float }

  val buf : unit -> buf

  type check = float -> float -> (string * string) option
  (** [check earliest latest] — see {!Ssta.check}. *)

  type state

  val run :
    source:(Spsta_netlist.Circuit.id -> buf -> unit) ->
    delay:(Spsta_netlist.Circuit.id -> float) ->
    ?check:check ->
    ?domains:int ->
    ?instrument:(Propagate.level_stat -> unit) ->
    Spsta_netlist.Circuit.t ->
    state

  val update :
    source:(Spsta_netlist.Circuit.id -> buf -> unit) ->
    delay:(Spsta_netlist.Circuit.id -> float) ->
    ?check:check ->
    state ->
    changed:Spsta_netlist.Circuit.id list ->
    state

  val circuit : state -> Spsta_netlist.Circuit.t
  val earliest : state -> Spsta_netlist.Circuit.id -> float
  val latest : state -> Spsta_netlist.Circuit.id -> float
end
