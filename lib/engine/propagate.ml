module Circuit = Spsta_netlist.Circuit
module Parallel = Spsta_util.Parallel

type 'state result = { circuit : Circuit.t; per_net : 'state array }

type level_stat = { level : int; gates : int; elapsed_s : float }

module type DOMAIN = sig
  type state

  val source : Circuit.id -> state
  val eval : Circuit.t -> Circuit.id -> Circuit.driver -> state array -> state
end

module Make (D : DOMAIN) = struct
  (* One gate of the propagation, reading operands from [per_net] and
     writing its own slot.  Gates within one level never read each
     other, so a whole level can run this step concurrently; [D.eval]
     is pure, which makes the parallel schedule bit-identical to the
     sequential one. *)
  let step circuit per_net g =
    match Circuit.driver circuit g with
    | Circuit.Gate { inputs; _ } as driver ->
      per_net.(g) <- D.eval circuit g driver (Array.map (fun i -> per_net.(i)) inputs)
    | Circuit.Input | Circuit.Dff_output _ -> assert false

  let sweep_levels ~domains ~instrument circuit per_net =
    Array.iter
      (fun gates ->
        let width = Array.length gates in
        let start =
          match instrument with None -> 0.0 | Some _ -> Unix.gettimeofday ()
        in
        (* narrow levels aren't worth a domain spawn; the cutoff only
           affects scheduling, never values *)
        if domains = 1 || width < max 16 (2 * domains) then
          Array.iter (step circuit per_net) gates
        else
          Parallel.iter_ranges ~domains width (fun lo hi ->
              for i = lo to hi - 1 do
                step circuit per_net gates.(i)
              done);
        match instrument with
        | None -> ()
        | Some f ->
          f
            { level = Circuit.level circuit gates.(0);
              gates = width;
              elapsed_s = Unix.gettimeofday () -. start })
      (Circuit.gates_by_level circuit)

  let run ?domains ?instrument circuit =
    let domains =
      match domains with Some d -> Parallel.check_domains d | None -> 1
    in
    let n = Circuit.num_nets circuit in
    match Circuit.sources circuit with
    | [] ->
      (* acyclicity forces every non-empty circuit to have a minimal
         net, and minimal nets are sources *)
      if n > 0 then invalid_arg "Propagate.run: circuit has nets but no sources";
      { circuit; per_net = [||] }
    | s0 :: _ as sources ->
      (* the fill value is arbitrary: every net is either a source
         (seeded below) or a gate (written before it is ever read) *)
      let per_net = Array.make n (D.source s0) in
      List.iter (fun s -> per_net.(s) <- D.source s) sources;
      if domains = 1 && Option.is_none instrument then
        Array.iter (step circuit per_net) (Circuit.topo_gates circuit)
      else sweep_levels ~domains ~instrument circuit per_net;
      { circuit; per_net }

  let update r ~changed =
    let circuit = r.circuit in
    let n = Circuit.num_nets circuit in
    (* mark the union of fanout cones of the changed nets *)
    let dirty = Array.make n false in
    let rec mark id =
      if not dirty.(id) then begin
        dirty.(id) <- true;
        Array.iter mark (Circuit.fanout circuit id)
      end
    in
    List.iter mark changed;
    let per_net = Array.copy r.per_net in
    (* refresh dirty sources (their seed may be what changed) *)
    List.iter
      (fun s -> if dirty.(s) then per_net.(s) <- D.source s)
      (Circuit.sources circuit);
    Array.iter
      (fun g -> if dirty.(g) then step circuit per_net g)
      (Circuit.topo_gates circuit);
    { circuit; per_net }
end
