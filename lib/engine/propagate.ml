module Circuit = Spsta_netlist.Circuit
module Parallel = Spsta_util.Parallel

type 'state result = { circuit : Circuit.t; per_net : 'state array }

type level_stat = { level : int; gates : int; elapsed_s : float }

module type DOMAIN = sig
  type state

  val source : Circuit.id -> state
  val eval : Circuit.t -> Circuit.id -> Circuit.driver -> state array -> state
end

module Sanitize = struct
  type 'state check = Circuit.t -> Circuit.id -> 'state -> (string * string) option

  exception
    Violation of {
      circuit : string;
      net : string;
      driver : string;
      level : int;
      rule : string;
      message : string;
    }

  let () =
    Printexc.register_printer (function
      | Violation { circuit; net; driver; level; rule; message } ->
        Some
          (Printf.sprintf "sanitizer violation [%s] at net %S (%s, level %d) in circuit %S: %s"
             rule net driver level circuit message)
      | _ -> None)

  let driver_label circuit id =
    match Circuit.driver circuit id with
    | Circuit.Input -> "input"
    | Circuit.Dff_output _ -> "dff"
    | Circuit.Gate { kind; _ } -> Spsta_logic.Gate_kind.to_string kind

  let enabled_by_env () =
    match Sys.getenv_opt "SPSTA_CHECK" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false

  let resolve = function Some enabled -> enabled | None -> enabled_by_env ()

  let fail ~circuit id ~rule ~message =
    raise
      (Violation
         { circuit = Circuit.name circuit;
           net = Circuit.net_name circuit id;
           driver = driver_label circuit id;
           level = Circuit.level circuit id;
           rule;
           message })

  let checked circuit check id state =
    match check circuit id state with
    | None -> state
    | Some (rule, message) -> fail ~circuit id ~rule ~message

  let wrap (type s) ~circuit ~(check : s check) (module D : DOMAIN with type state = s) :
      (module DOMAIN with type state = s) =
    (module struct
      type state = s

      let source id = checked circuit check id (D.source id)
      let eval c id driver operands = checked circuit check id (D.eval c id driver operands)
    end)
end

(* Mark the union of fanout cones of the changed nets — through
   combinational edges only.  A flip-flop's Q net is a *source* of
   the levelized timing graph: its seed does not read the D arrival,
   so crossing the D -> Q structural edge would re-derive bit-identical
   values while flooding the dirty set through every register (on the
   sequential ISCAS circuits a critical gate's structural cone is the
   whole netlist; its combinational cone is a few percent).  Callers
   whose *seed* changed — a Q net after a sequential iteration, a
   source with new input statistics — name that net in [changed] and it
   is marked as a root here.

   Shared by the record engine's {!Make.update} and the flat kernels in
   {!Flat}: one marking pass, one set of register-boundary semantics. *)
let dirty_cone circuit ~changed =
  let n = Circuit.num_nets circuit in
  (* a byte per net, not a word: initialising the mark store is part of
     every update's fixed cost, and at 100k+ nets the word-array
     [Array.make n false] was the single largest term for small cones *)
  let dirty = Bytes.make n '\000' in
  (* collect the dirty *gates* while marking: re-evaluation then costs
     O(cone log cone), not the O(circuit) floor of scanning every gate
     in topo order for its dirty bit — at a million gates that scan
     ate the entire incremental win *)
  let cone = ref [] in
  let rec mark id =
    if Bytes.get dirty id = '\000' then begin
      Bytes.set dirty id '\001';
      (match Circuit.driver circuit id with
      | Circuit.Gate _ -> cone := id :: !cone
      | Circuit.Input | Circuit.Dff_output _ -> ());
      Array.iter
        (fun out ->
          match Circuit.driver circuit out with
          | Circuit.Dff_output _ -> ()
          | Circuit.Gate _ | Circuit.Input -> mark out)
        (Circuit.fanout circuit id)
    end
  in
  List.iter mark changed;
  let cone = Array.of_list !cone in
  (* sequential evaluation order, restricted to the cone: sorting on
     the topo position replays exactly the full sweep's order *)
  Array.sort
    (fun a b -> compare (Circuit.topo_position circuit a) (Circuit.topo_position circuit b))
    cone;
  cone

module Make (D : DOMAIN) = struct
  (* Reusable operand buffers, one per fan-in arity, replacing the
     fresh [Array.map] allocation [step] used to pay per gate: on a
     million-gate sweep those throwaway arrays were a measurable slice
     of the minor-heap churn that serializes parallel domains on GC.
     One scratch per worker — never shared across domains. *)
  type scratch = D.state array array ref

  let scratch_create () : scratch = ref [||]

  let operand_buf (scratch : scratch) n init =
    let tbl =
      if Array.length !scratch <= n then begin
        let t = Array.make (n + 1) [||] in
        Array.blit !scratch 0 t 0 (Array.length !scratch);
        scratch := t;
        t
      end
      else !scratch
    in
    if Array.length tbl.(n) <> n then tbl.(n) <- Array.make n init;
    tbl.(n)

  (* One gate of the propagation, reading operands from [per_net] and
     writing its own slot.  Gates within one level never read each
     other, so a whole level can run this step concurrently; [D.eval]
     is pure and must not retain the operand buffer, which makes the
     parallel schedule bit-identical to the sequential one. *)
  let step circuit per_net scratch g =
    match Circuit.driver circuit g with
    | Circuit.Gate { inputs; _ } as driver ->
      let n = Array.length inputs in
      (* finalize rejects zero-arity gates, so [inputs.(0)] exists *)
      let ops = operand_buf scratch n per_net.(inputs.(0)) in
      for j = 0 to n - 1 do
        ops.(j) <- per_net.(inputs.(j))
      done;
      per_net.(g) <- D.eval circuit g driver ops
    | Circuit.Input | Circuit.Dff_output _ -> assert false

  (* Narrow levels aren't worth a barrier; the cutoff only affects
     scheduling, never values. *)
  let wide_cutoff domains = max 16 (2 * domains)

  (* One wide level across the persistent domain pool: the level is cut
     into chunks (several per domain, each a contiguous gate range of at
     least ~8 gates) claimed through an atomic work index, so uneven
     per-gate costs load-balance while the chunk decomposition — hence
     the result — stays a pure function of (width, domains). *)
  let par_level ~domains circuit per_net gates =
    let width = Array.length gates in
    let chunks = min width (max domains (min (4 * domains) (width / 8))) in
    let bounds = Parallel.ranges ~chunks width in
    Parallel.run_chunks ~domains ~chunks:(Array.length bounds) (fun k ->
        (* per-chunk scratch: chunks of one level run concurrently *)
        let scratch = scratch_create () in
        let lo, hi = bounds.(k) in
        for i = lo to hi - 1 do
          step circuit per_net scratch gates.(i)
        done)

  let sweep_levels ~domains ~instrument circuit per_net =
    let by_level = Circuit.gates_by_level circuit in
    let cutoff = wide_cutoff domains in
    let scratch = scratch_create () in
    match instrument with
    | Some f ->
      (* instrumented path: exact per-level stats, no fusion *)
      Array.iter
        (fun gates ->
          let width = Array.length gates in
          let start = Unix.gettimeofday () in
          if domains = 1 || width < cutoff then Array.iter (step circuit per_net scratch) gates
          else par_level ~domains circuit per_net gates;
          f
            { level = Circuit.level circuit gates.(0);
              gates = width;
              (* clamped: [gettimeofday] is not monotone, and a clock
                 step must not report a negative level time *)
              elapsed_s = Float.max 0.0 (Unix.gettimeofday () -. start) })
        by_level
    | None ->
      (* runs of adjacent narrow levels are fused into one sequential
         batch on the calling domain — zero scheduler interaction —
         so only the genuinely wide levels pay a barrier *)
      let nlev = Array.length by_level in
      let i = ref 0 in
      while !i < nlev do
        let gates = by_level.(!i) in
        if domains > 1 && Array.length gates >= cutoff then begin
          par_level ~domains circuit per_net gates;
          incr i
        end
        else begin
          Array.iter (step circuit per_net scratch) gates;
          incr i;
          while
            !i < nlev && (domains = 1 || Array.length by_level.(!i) < cutoff)
          do
            Array.iter (step circuit per_net scratch) by_level.(!i);
            incr i
          done
        end
      done

  let run ?domains ?instrument circuit =
    let domains =
      match domains with Some d -> Parallel.check_domains d | None -> 1
    in
    let n = Circuit.num_nets circuit in
    match Circuit.sources circuit with
    | [] ->
      (* acyclicity forces every non-empty circuit to have a minimal
         net, and minimal nets are sources *)
      if n > 0 then invalid_arg "Propagate.run: circuit has nets but no sources";
      { circuit; per_net = [||] }
    | s0 :: _ as sources ->
      (* the fill value is arbitrary: every net is either a source
         (seeded below) or a gate (written before it is ever read) *)
      let per_net = Array.make n (D.source s0) in
      List.iter (fun s -> per_net.(s) <- D.source s) sources;
      if domains = 1 && Option.is_none instrument then begin
        let scratch = scratch_create () in
        Array.iter (step circuit per_net scratch) (Circuit.topo_gates circuit)
      end
      else sweep_levels ~domains ~instrument circuit per_net;
      { circuit; per_net }

  let update r ~changed =
    let circuit = r.circuit in
    let cone = dirty_cone circuit ~changed in
    let per_net = Array.copy r.per_net in
    (* refresh changed sources (their seed is what changed); marking
       itself never reaches a source — fanout targets are always gates
       or register D pins — so the changed roots are the only
       candidates *)
    List.iter
      (fun id ->
        match Circuit.driver circuit id with
        | Circuit.Input | Circuit.Dff_output _ -> per_net.(id) <- D.source id
        | Circuit.Gate _ -> ())
      changed;
    let scratch = scratch_create () in
    Array.iter (step circuit per_net scratch) cone;
    { circuit; per_net }
end
