(** The one levelized propagation engine behind every analyzer.

    Each timing analysis in the reproduction — SPSTA moment/grid
    propagation, min/max SSTA, corner STA, bounds-SSTA, canonical-form
    SSTA and interval/affine STA — is the same traversal: seed the
    sources, then fold each gate's operand states into its output state
    in topological order.  This module implements that traversal exactly
    once, functorized over the *propagation domain* (the per-net state
    and the per-gate transfer function), and gives every instantiation

    - the sequential topological sweep,
    - the levelized domain-parallel sweep ({!Spsta_netlist.Circuit.gates_by_level}
      + the persistent worker pool behind {!Spsta_util.Parallel.run_chunks}:
      wide levels are cut into chunks claimed through an atomic work
      index, runs of narrow levels are fused into one sequential batch),
      bit-identical to the sequential one at every domain count,
    - dirty-cone incremental {!Make.update} via fanout marking, with
      re-evaluation cost proportional to the cone, and
    - per-level timing / gate-count instrumentation hooks. *)

type 'state result = {
  circuit : Spsta_netlist.Circuit.t;
  per_net : 'state array;  (** indexed by net id; every net holds its final state *)
}
(** Defined outside {!Make} so that results produced by different
    applications of the functor at the same state type are
    interchangeable (analyzers rebuild their domain per call, closing
    over per-call parameters, and feed an earlier [analyze] result to a
    later [update]). *)

type level_stat = {
  level : int;  (** logic level just evaluated *)
  gates : int;  (** number of gates at that level *)
  elapsed_s : float;  (** wall-clock seconds spent on the level *)
}

module type DOMAIN = sig
  type state

  val source : Spsta_netlist.Circuit.id -> state
  (** State seeded at a source net (primary input or flip-flop output).
      Must be pure: the engine may call it more than once per source. *)

  val eval :
    Spsta_netlist.Circuit.t ->
    Spsta_netlist.Circuit.id ->
    Spsta_netlist.Circuit.driver ->
    state array ->
    state
  (** [eval circuit id driver operands] computes the state of gate [id]
      from the final states of its operands ([operands.(i)] is the state
      of the driver's [inputs.(i)]).  Must be a pure function of its
      arguments: the engine evaluates a whole logic level concurrently,
      and purity is what makes the parallel schedule bit-identical to
      the sequential one.  The [operands] array is a per-worker scratch
      buffer the engine refills for every gate — read it eagerly during
      the call and never retain it. *)
end

val dirty_cone :
  Spsta_netlist.Circuit.t -> changed:Spsta_netlist.Circuit.id list -> Spsta_netlist.Circuit.id array
(** The union of the combinational fanout cones of [changed]: every
    gate-driven net reachable from a changed net without crossing a
    register boundary (a flip-flop Q net is a timing source — its seed
    does not read the D arrival), sorted by topological position so
    replaying the array reproduces exactly the sequential sweep's
    evaluation order.  O(cone log cone).  The marking pass behind both
    {!Make.update} and the flat kernels' updates ({!Flat}). *)

(** Engine-wired invariant sanitizer: wrap any {!DOMAIN} so that every
    state the engine produces — each source seed and each gate output —
    is verified by a caller-supplied predicate before propagation
    continues.  The first violated invariant raises {!Sanitize.Violation}
    naming the circuit, net, driver kind and logic level, which turns
    "the numbers look wrong somewhere" into a pinpointed diagnostic.

    The wrapper is applied (or not) when the domain is built, so an
    unchecked analysis runs the exact same code as before — strictly
    zero overhead when checking is off. *)
module Sanitize : sig
  type 'state check =
    Spsta_netlist.Circuit.t -> Spsta_netlist.Circuit.id -> 'state -> (string * string) option
  (** [check circuit id state] returns [Some (rule, message)] when
      [state] violates the invariant named [rule], [None] when healthy.
      Must be pure — it runs inside the (possibly parallel) sweep. *)

  exception
    Violation of {
      circuit : string;  (** circuit name ("" when unnamed) *)
      net : string;  (** net whose state violated the invariant *)
      driver : string;  (** "input", "dff", or the gate kind ("NAND", …) *)
      level : int;  (** logic level of the net *)
      rule : string;  (** invariant identifier, e.g. "mass-conservation" *)
      message : string;
    }
  (** Registered with [Printexc] so uncaught violations print the full
      location. *)

  val enabled_by_env : unit -> bool
  (** True when the [SPSTA_CHECK] environment variable is set to [1],
      [true], [yes] or [on]. *)

  val resolve : bool option -> bool
  (** Resolve an analyzer's [?check] argument: the explicit value when
      given, otherwise {!enabled_by_env}. *)

  val fail :
    circuit:Spsta_netlist.Circuit.t -> Spsta_netlist.Circuit.id -> rule:string -> message:string -> 'a
  (** Raise {!Violation} located at the given net (name, driver kind and
      level are read off the circuit).  For checkers that verify states
      outside a wrapped {!DOMAIN} — the flat kernels check float slots
      directly and report violations through this. *)

  val wrap :
    circuit:Spsta_netlist.Circuit.t ->
    check:'s check ->
    (module DOMAIN with type state = 's) ->
    (module DOMAIN with type state = 's)
  (** [wrap ~circuit ~check (module D)] is [D] with every [source] and
      [eval] result passed through [check]; a [Some] verdict raises
      {!Violation} located at the offending net. *)
end

module Make (D : DOMAIN) : sig
  val run :
    ?domains:int ->
    ?instrument:(level_stat -> unit) ->
    Spsta_netlist.Circuit.t ->
    D.state result
  (** Full propagation: seed every source with {!DOMAIN.source}, then
      evaluate every gate with {!DOMAIN.eval} in dependency order.

      [domains] (default 1) evaluates each logic level's gates across
      that many domains of the persistent {!Spsta_util.Parallel} pool
      (spawned once per process, reused across levels, sweeps and
      analyses).  Levels narrower than [max 16 (2 * domains)] gates run
      sequentially on the calling domain, and adjacent narrow levels
      are fused into one batch so deep narrow regions pay no barriers;
      wide levels are split into chunks claimed through an atomic work
      index.  The cutoff, fusion and chunking affect scheduling only,
      never values: results are bit-identical to the sequential
      traversal at every domain count.  Raises [Invalid_argument] if
      [domains < 1].

      [instrument] is called once per logic level, in ascending level
      order, with the level's gate count and wall-clock time.  Supplying
      it forces the levelized traversal even at [domains = 1] (results
      are unchanged — any topological order yields the same states). *)

  val update :
    D.state result ->
    changed:Spsta_netlist.Circuit.id list ->
    D.state result
  (** Incremental re-propagation after the sources in [changed] (or the
      domain parameters affecting them) changed: marks the union of the
      combinational fanout cones of [changed], collecting the dirty
      gates as it goes, re-seeds the changed sources and re-evaluates
      exactly the dirty gates in the sequential evaluation order (sorted
      by topo position) — the work is O(cone), never a scan of the whole
      gate list, so update cost tracks the cone size even on
      million-gate circuits.
      Marking stops at register boundaries — a flip-flop Q net is a
      source whose seed does not read the D arrival, so a dirty D net
      leaves the Q side untouched; callers whose seed itself changed (a
      source with new statistics, a Q net between sequential
      iterations) list that net in [changed] directly.  States outside
      the cones are physically shared with the input result, which is
      not mutated.  Equivalent to a full {!run} with the updated domain
      whenever the domain's [source]/[eval] differ from the original
      run's only at the changed nets. *)
end
