module Circuit = Spsta_netlist.Circuit
module Discrete = Spsta_dist.Discrete
module Analyzer = Spsta_core.Analyzer
module Monte_carlo = Spsta_sim.Monte_carlo
module Histogram = Spsta_util.Histogram

let csv_of_series ~header series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ^ "\n");
  List.iter (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%.6f,%.8f\n" x y)) series;
  Buffer.contents buf

let top_series ?(dt = 0.05) circuit ~spec ~net =
  let module B = (val Spsta_core.Top.discrete_backend ~dt () : Spsta_core.Top.BACKEND
                    with type top = Discrete.t)
  in
  let module A = Analyzer.Make (B) in
  let r = A.analyze circuit ~spec in
  let s = A.signal r net in
  let rise = Discrete.density_series s.A.rise and fall = Discrete.density_series s.A.fall in
  let fall_at = Hashtbl.create 64 in
  List.iter (fun (t, d) -> Hashtbl.replace fall_at t d) fall;
  let times =
    List.sort_uniq compare (List.map fst rise @ List.map fst fall)
  in
  let rise_at = Hashtbl.create 64 in
  List.iter (fun (t, d) -> Hashtbl.replace rise_at t d) rise;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,rise_density,fall_density\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%.8f,%.8f\n" t
           (Option.value ~default:0.0 (Hashtbl.find_opt rise_at t))
           (Option.value ~default:0.0 (Hashtbl.find_opt fall_at t))))
    times;
  Buffer.contents buf

(* rise-arrival samples at [net]; trial [i] draws from
   [Rng.stream ~seed i], so both engines collect identical samples *)
let mc_histogram ?(runs = 10_000) ?(seed = 42) ?(bins = 50) ?(engine = `Packed) circuit ~spec ~net
    =
  let samples = ref [] in
  (match engine with
  | `Scalar ->
    for run = 0 to runs - 1 do
      let rng = Spsta_util.Rng.stream ~seed run in
      let r = Spsta_sim.Logic_sim.run_random rng circuit ~spec in
      if Spsta_logic.Value4.equal r.Spsta_sim.Logic_sim.values.(net) Spsta_logic.Value4.Rising
      then samples := r.Spsta_sim.Logic_sim.times.(net) :: !samples
    done
  | `Packed ->
    let sim = Spsta_sim.Packed_sim.create circuit in
    let base = ref 0 in
    while !base < runs do
      let k = min 64 (runs - !base) in
      let b0 = !base in
      let rngs = Array.init k (fun l -> Spsta_util.Rng.stream ~seed (b0 + l)) in
      Spsta_sim.Packed_sim.run sim ~rngs ~spec;
      for l = 0 to k - 1 do
        if
          Spsta_logic.Value4.equal
            (Spsta_sim.Packed_sim.lane_value sim net ~lane:l)
            Spsta_logic.Value4.Rising
        then samples := Spsta_sim.Packed_sim.lane_time sim net ~lane:l :: !samples
      done;
      base := !base + k
    done);
  match !samples with
  | [] -> "time,rise_density\n"
  | samples ->
    let h = Histogram.of_samples ~bins (Array.of_list samples) in
    csv_of_series ~header:"time,rise_density" (Array.to_list (Histogram.densities h))

let chip_delay_distribution ?dt circuit ~spec =
  let r = Spsta_core.Chip_delay.compute ?dt circuit ~spec in
  csv_of_series ~header:"time,mass"
    (Discrete.series (Spsta_core.Chip_delay.distribution r))

let table2_csv rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "circuit,dir,endpoint,spsta_mu,spsta_sigma,spsta_p,ssta_mu,ssta_sigma,mc_mu,mc_sigma,mc_p\n";
  List.iter
    (fun (r : Table2.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n"
           r.Table2.circuit_name
           (match r.Table2.direction with `Rise -> "r" | `Fall -> "f")
           r.Table2.endpoint r.Table2.spsta.Table2.mu r.Table2.spsta.Table2.sigma
           r.Table2.spsta.Table2.prob r.Table2.ssta.Table2.mu r.Table2.ssta.Table2.sigma
           r.Table2.mc.Table2.mu r.Table2.mc.Table2.sigma r.Table2.mc.Table2.prob))
    rows;
  Buffer.contents buf

let write_file ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
