(** CSV export of analysis artefacts, so results plot with any external
    tool (gnuplot, pandas, ...).  Columns are documented per function;
    all files carry a one-line header. *)

val csv_of_series : header:string -> (float * float) list -> string
(** Two-column CSV from (x, y) pairs; [header] names the columns, e.g.
    "time,density". *)

val top_series :
  ?dt:float ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  net:Spsta_netlist.Circuit.id ->
  string
(** "time,rise_density,fall_density" of a net's t.o.p. functions from
    the discretised analyzer (grid [dt], default 0.05). *)

val mc_histogram :
  ?runs:int ->
  ?seed:int ->
  ?bins:int ->
  ?engine:Spsta_sim.Monte_carlo.engine ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  net:Spsta_netlist.Circuit.id ->
  string
(** "time,rise_density" histogram of Monte Carlo rise arrivals at a
    net.  Trial [i] draws from [Rng.stream ~seed i] regardless of
    [engine] (default packed), so both engines bin the same samples. *)

val chip_delay_distribution :
  ?dt:float ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  string
(** "time,mass" of the {!Spsta_core.Chip_delay} distribution. *)

val table2_csv : Table2.row list -> string
(** The Table 2 rows as CSV
    ("circuit,dir,endpoint,spsta_mu,...,mc_p"). *)

val write_file : path:string -> string -> unit
