module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark
module Logic_sim = Spsta_sim.Logic_sim
module Packed_sim = Spsta_sim.Packed_sim
module Sta = Spsta_ssta.Sta
module Ssta = Spsta_ssta.Ssta
module Histogram = Spsta_util.Histogram
module Rng = Spsta_util.Rng

type result = {
  circuit_name : string;
  mc_delays : float array;
  sta_earliest : float;
  sta_latest : float;
  ssta_best : Normal.t;
  ssta_worst : Normal.t;
  bounds_99 : float * float;
}

(* per-run chip delay: the latest transition arrival over all endpoints;
   runs whose endpoints are all steady contribute nothing.  Trial [i]
   always draws from [Rng.stream ~seed i] and the samples are collected
   in ascending trial order, so both engines return the same array. *)
let chip_delays ?(engine = `Packed) ~runs ~seed circuit ~spec =
  let endpoints = Circuit.endpoints circuit in
  let delays = ref [] in
  (match engine with
  | `Scalar ->
    for run = 0 to runs - 1 do
      let rng = Rng.stream ~seed run in
      let r = Logic_sim.run_random rng circuit ~spec in
      let latest =
        List.fold_left
          (fun acc e ->
            if Value4.is_transition r.Logic_sim.values.(e) then
              Float.max acc r.Logic_sim.times.(e)
            else acc)
          neg_infinity endpoints
      in
      if latest > neg_infinity then delays := latest :: !delays
    done
  | `Packed ->
    let sim = Packed_sim.create circuit in
    let base = ref 0 in
    while !base < runs do
      let k = min 64 (runs - !base) in
      let b0 = !base in
      let rngs = Array.init k (fun l -> Rng.stream ~seed (b0 + l)) in
      Packed_sim.run sim ~rngs ~spec;
      for l = 0 to k - 1 do
        let latest =
          List.fold_left
            (fun acc e ->
              if Value4.is_transition (Packed_sim.lane_value sim e ~lane:l) then
                Float.max acc (Packed_sim.lane_time sim e ~lane:l)
              else acc)
            neg_infinity endpoints
        in
        if latest > neg_infinity then delays := latest :: !delays
      done;
      base := !base + k
    done);
  let a = Array.of_list !delays in
  (* the list was built by prepending; restore ascending trial order *)
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

let run ?(runs = 10_000) ?(seed = 42) ?mc_engine ?circuit ~case () =
  let circuit = match circuit with Some c -> c | None -> Benchmarks.load "s344" in
  let spec = Workloads.spec_fn case in
  let mc_delays = chip_delays ?engine:mc_engine ~runs ~seed circuit ~spec in
  (* STA with +-3 sigma input arrival bounds (the paper's note that STA
     bounds may represent the +-3 sigma points) *)
  let sta = Sta.analyze ~input_bounds:{ Sta.earliest = -3.0; latest = 3.0 } circuit in
  let endpoints = Circuit.endpoints circuit in
  let sta_earliest =
    List.fold_left (fun acc e -> Float.min acc (Sta.bounds sta e).Sta.earliest) infinity endpoints
  in
  let sta_latest = Sta.max_latest sta in
  let ssta = Ssta.analyze circuit in
  let endpoint_arrivals =
    List.concat_map
      (fun e ->
        let a = Ssta.arrival ssta e in
        [ a.Ssta.rise; a.Ssta.fall ])
      endpoints
  in
  let bounds = Spsta_ssta.Bounds_ssta.analyze circuit in
  {
    circuit_name = Circuit.name circuit;
    mc_delays;
    sta_earliest;
    sta_latest;
    ssta_best = Clark.min_normal_many endpoint_arrivals;
    ssta_worst = Clark.max_normal_many endpoint_arrivals;
    bounds_99 =
      Spsta_ssta.Bounds_ssta.quantile_bounds (Spsta_ssta.Bounds_ssta.chip_band bounds) 0.99;
  }

let render r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig 1 (%s): chip timing distribution vs STA bounds vs SSTA best/worst\n\
        STA bounds: [%.2f, %.2f]\n\
        SSTA best case:  N(%.2f, %.2f)\n\
        SSTA worst case: N(%.2f, %.2f)\n\
        MC chip delays: %d samples, mean %.2f, stddev %.2f\n"
       r.circuit_name r.sta_earliest r.sta_latest
       (Normal.mean r.ssta_best) (Normal.stddev r.ssta_best)
       (Normal.mean r.ssta_worst) (Normal.stddev r.ssta_worst)
       (Array.length r.mc_delays)
       (Spsta_util.Stats.mean r.mc_delays)
       (Spsta_util.Stats.stddev r.mc_delays));
  let optimistic, pessimistic = r.bounds_99 in
  Buffer.add_string buf
    (Printf.sprintf
       "Frechet 99%%-quantile band of the STA-model arrival (ref [1]): [%.2f, %.2f]\n"
       optimistic pessimistic);
  if Array.length r.mc_delays > 0 then begin
    Buffer.add_string buf "MC chip-delay histogram:\n";
    Buffer.add_string buf (Histogram.render (Histogram.of_samples ~bins:30 r.mc_delays))
  end;
  Buffer.contents buf
