(** Fig. 1 of the paper: the actual chip timing performance distribution
    (Monte Carlo, per-run latest endpoint arrival) against the STA
    min/max bounds and the SSTA best/worst-case distributions, showing
    how the static methods relate to the real distribution. *)

type result = {
  circuit_name : string;
  mc_delays : float array;  (** per-run chip delay (runs with no transition are skipped) *)
  sta_earliest : float;
  sta_latest : float;
  ssta_best : Spsta_dist.Normal.t;  (** Clark-MIN over endpoint arrivals *)
  ssta_worst : Spsta_dist.Normal.t;  (** Clark-MAX over endpoint arrivals *)
  bounds_99 : float * float;
      (** (optimistic, pessimistic) 99%-quantile bounds of the STA-model
          chip arrival from the Frechet bounds engine (ref [1]) *)
}

val run :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?circuit:Spsta_netlist.Circuit.t ->
  case:Workloads.case ->
  unit ->
  result
(** Defaults: 10_000 runs, seed 42, the s344-class circuit, the packed
    Monte Carlo engine.  Trial [i] always draws from
    [Rng.stream ~seed i], so [mc_delays] is the same array under either
    engine. *)

val render : result -> string
(** Histogram of the MC distribution with the bounds and the best/worst
    normals overlaid as series. *)
