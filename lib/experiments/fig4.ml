module Normal = Spsta_dist.Normal
module Discrete = Spsta_dist.Discrete
module Gate_kind = Spsta_logic.Gate_kind
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module Top = Spsta_core.Top

type series_stats = {
  series : (float * float) list;
  mean : float;
  stddev : float;
  skewness : float;
}

type result = {
  max_result : series_stats;
  weighted_sum_result : series_stats;
  rise_probability : float;
}

let stats_of top =
  let w = Discrete.total top in
  {
    series = Discrete.density_series (if w > 0.0 then Discrete.scale top (1.0 /. w) else top);
    mean = Discrete.mean top;
    stddev = Discrete.stddev top;
    skewness = Discrete.skewness top;
  }

let run ?(dt = 0.02) ?(sigma1 = 1.0) ?(sigma2 = 0.5) () =
  let module B = (val Top.discrete_backend ~dt () : Top.BACKEND with type top = Discrete.t) in
  let module A = Analyzer.Make (B) in
  (* 0.9 signal probability: steady one 80%, rising 10%, falling 10% *)
  let spec sigma =
    Spsta_sim.Input_spec.make
      ~rise_arrival:(Normal.make ~mu:5.0 ~sigma)
      ~fall_arrival:(Normal.make ~mu:5.0 ~sigma)
      ~p_zero:0.0 ~p_one:0.8 ~p_rise:0.1 ~p_fall:0.1 ()
  in
  let x1 = A.source_signal (spec sigma1) in
  let x2 = A.source_signal (spec sigma2) in
  let y = A.gate_output ~gate_delay:0.0 Gate_kind.And [ x1; x2 ] in
  let d1 = Discrete.of_normal ~dt ~mass:1.0 (Normal.make ~mu:5.0 ~sigma:sigma1) in
  let d2 = Discrete.of_normal ~dt ~mass:1.0 (Normal.make ~mu:5.0 ~sigma:sigma2) in
  {
    max_result = stats_of (Discrete.max_independent d1 d2);
    weighted_sum_result = stats_of y.A.rise;
    rise_probability = y.A.probs.Four_value.p_rise;
  }

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig 4: AND gate, inputs at 0.9 signal probability, same mean, sigma 1.0 vs 0.5\n\
        MAX result:          mean %.3f stddev %.3f skewness %+.3f\n\
        WEIGHTED SUM result: mean %.3f stddev %.3f skewness %+.3f (P_rise = %.3f)\n"
       r.max_result.mean r.max_result.stddev r.max_result.skewness
       r.weighted_sum_result.mean r.weighted_sum_result.stddev r.weighted_sum_result.skewness
       r.rise_probability);
  let sample label s =
    Buffer.add_string buf (label ^ " density (every 25th point):\n");
    List.iteri
      (fun i (x, d) ->
        if i mod 25 = 0 && d > 1e-4 then
          Buffer.add_string buf (Printf.sprintf "  %7.2f  %.5f\n" x d))
      s.series
  in
  sample "MAX" r.max_result;
  sample "WEIGHTED SUM" r.weighted_sum_result;
  Buffer.contents buf
