let experiment_ids =
  [ "table1"; "table2"; "table3"; "fig1"; "fig2"; "fig3"; "fig4"; "summary" ]

let run ?runs ?seed ?mc_engine ?mc_domains id =
  match id with
  | "table1" -> Table1.render ()
  | "table2" ->
    let part case =
      Table2.render ~case (Table2.run_suite ?runs ?seed ?mc_engine ?mc_domains ~case ())
    in
    part Workloads.Case_i ^ "\n\n" ^ part Workloads.Case_ii
  | "table3" ->
    Table3.render (Table3.run_suite ?runs ?seed ?mc_engine ?mc_domains ~case:Workloads.Case_i ())
  | "fig1" ->
    let part case =
      Fig1.render (Fig1.run ?runs ?seed ?mc_engine ~case ())
    in
    part Workloads.Case_i
  | "fig2" -> Fig2.render (Fig2.run ())
  | "fig3" -> Fig3.render (Fig3.run ())
  | "fig4" -> Fig4.render (Fig4.run ())
  | "summary" -> Summary.render (Summary.run ?runs ?seed ?mc_engine ?mc_domains ())
  | _ -> raise Not_found
