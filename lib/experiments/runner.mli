(** Dispatch table from experiment identifiers (as used in DESIGN.md and
    the CLI) to the code that regenerates each paper artefact. *)

val experiment_ids : string list
(** "table1", "table2", "table3", "fig1" .. "fig4", "summary". *)

val run :
  ?runs:int -> ?seed:int -> ?mc_engine:Spsta_sim.Monte_carlo.engine -> ?mc_domains:int ->
  string -> string
(** Produce the rendered artefact.  Raises [Not_found] on unknown ids.
    [runs]/[seed] apply to the Monte-Carlo-backed experiments;
    [mc_engine] (default packed) and [mc_domains] (default 1) pick the
    Monte Carlo engine and its domain count without changing any
    rendered number ([mc_domains] is ignored by fig1, whose reference
    loop is single-domain). *)
