module Circuit = Spsta_netlist.Circuit
module Stats = Spsta_util.Stats
module Monte_carlo = Spsta_sim.Monte_carlo
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value

type errors = {
  spsta_mu : float;
  spsta_sigma : float;
  ssta_mu : float;
  ssta_sigma : float;
  rows_used : int;
}

type t = {
  arrival_errors : errors;
  signal_prob_error : float;
  signal_prob_nets : int;
}

let mean_of = function [] -> 0.0 | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let of_rows rows =
  let usable = List.filter (fun (r : Table2.row) -> r.Table2.mc.Table2.prob >= 0.005) rows in
  let rel reference x = Stats.relative_error ~reference x in
  let spsta_mu = mean_of (List.map (fun r -> rel r.Table2.mc.Table2.mu r.Table2.spsta.Table2.mu) usable) in
  let spsta_sigma =
    mean_of (List.map (fun r -> rel r.Table2.mc.Table2.sigma r.Table2.spsta.Table2.sigma) usable)
  in
  let ssta_mu = mean_of (List.map (fun r -> rel r.Table2.mc.Table2.mu r.Table2.ssta.Table2.mu) usable) in
  let ssta_sigma =
    mean_of (List.map (fun r -> rel r.Table2.mc.Table2.sigma r.Table2.ssta.Table2.sigma) usable)
  in
  { spsta_mu; spsta_sigma; ssta_mu; ssta_sigma; rows_used = List.length usable }

(* mean relative signal-probability error of SPSTA vs MC over all
   non-source nets whose MC signal probability is bounded away from 0 *)
let signal_prob_errors ?(runs = 10_000) ?(seed = 42) ?mc_engine ?mc_domains ~case circuit =
  let spec = Workloads.spec_fn case in
  let mc = Monte_carlo.simulate ~runs ~seed ?engine:mc_engine ?domains:mc_domains circuit ~spec in
  let spsta = Analyzer.Moments.analyze circuit ~spec in
  let errors = ref [] in
  Array.iter
    (fun g ->
      let reference = Monte_carlo.signal_probability (Monte_carlo.stats mc g) in
      if reference >= 0.01 then begin
        let estimate =
          Four_value.signal_probability (Analyzer.Moments.signal spsta g).Analyzer.Moments.probs
        in
        errors := Stats.relative_error ~reference estimate :: !errors
      end)
    (Circuit.topo_gates circuit);
  !errors

let run ?(runs = 10_000) ?(seed = 42) ?mc_engine ?mc_domains () =
  let rows_i = Table2.run_suite ~runs ~seed ?mc_engine ?mc_domains ~case:Workloads.Case_i () in
  let rows_ii = Table2.run_suite ~runs ~seed ?mc_engine ?mc_domains ~case:Workloads.Case_ii () in
  let arrival_errors = of_rows (rows_i @ rows_ii) in
  let sp_errors =
    List.concat_map
      (fun name ->
        let circuit = Benchmarks.load name in
        signal_prob_errors ~runs ~seed ?mc_engine ?mc_domains ~case:Workloads.Case_i circuit)
      Benchmarks.evaluated_names
  in
  {
    arrival_errors;
    signal_prob_error = mean_of sp_errors;
    signal_prob_nets = List.length sp_errors;
  }

let render t =
  Printf.sprintf
    "Summary (paper section 4 headline, reproduced):\n\
    \  SPSTA arrival mean error vs MC:   %5.1f%%   (paper:  6.2%%)\n\
    \  SPSTA arrival stddev error vs MC: %5.1f%%   (paper: 18.6%%)\n\
    \  SSTA  arrival mean error vs MC:   %5.1f%%   (paper: 13.4%%)\n\
    \  SSTA  arrival stddev error vs MC: %5.1f%%   (paper: 64.3%%)\n\
    \  rows used: %d (MC transition probability >= 0.5%%)\n\
    \  SPSTA signal probability error vs MC: %5.1f%% over %d nets (paper: 14.28%%)\n"
    (100.0 *. t.arrival_errors.spsta_mu)
    (100.0 *. t.arrival_errors.spsta_sigma)
    (100.0 *. t.arrival_errors.ssta_mu)
    (100.0 *. t.arrival_errors.ssta_sigma)
    t.arrival_errors.rows_used
    (100.0 *. t.signal_prob_error)
    t.signal_prob_nets
