(** The paper's §4 headline numbers: average relative errors of SPSTA and
    SSTA against Monte Carlo over the Table 2 rows (means and standard
    deviations of critical-path arrivals), and the average signal
    probability error of SPSTA across all nets. *)

type errors = {
  spsta_mu : float;
  spsta_sigma : float;
  ssta_mu : float;
  ssta_sigma : float;
  rows_used : int;
}

type t = {
  arrival_errors : errors;
  signal_prob_error : float;  (** mean relative SP error over all nets *)
  signal_prob_nets : int;
}

val of_rows : Table2.row list -> errors
(** Rows whose Monte Carlo transition probability is below 0.5% are
    skipped (their MC moments are noise). *)

val run :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?mc_domains:int ->
  unit ->
  t
(** Runs Table 2 for both cases plus a per-net signal-probability
    comparison on the full suite.  [mc_engine]/[mc_domains] select the
    Monte Carlo engine (default packed) and domain count (default 1);
    the result is identical for every combination. *)

val render : t -> string
