module Circuit = Spsta_netlist.Circuit
module Stats = Spsta_util.Stats
module Normal = Spsta_dist.Normal
module Monte_carlo = Spsta_sim.Monte_carlo
module Ssta = Spsta_ssta.Ssta
module Analyzer = Spsta_core.Analyzer
module Table = Spsta_util.Table

type method_stats = { mu : float; sigma : float; prob : float }

type row = {
  circuit_name : string;
  direction : [ `Rise | `Fall ];
  endpoint : string;
  spsta : method_stats;
  ssta : method_stats;
  mc : method_stats;
}

let mc_direction_stats (s : Monte_carlo.net_stats) direction =
  let acc, count =
    match direction with
    | `Rise -> (s.Monte_carlo.rise_times, s.Monte_carlo.count_rise)
    | `Fall -> (s.Monte_carlo.fall_times, s.Monte_carlo.count_fall)
  in
  {
    mu = Stats.acc_mean acc;
    sigma = Stats.acc_stddev acc;
    prob = float_of_int count /. float_of_int s.Monte_carlo.n_runs;
  }

(* critical endpoint as the Monte Carlo reference sees it: the endpoint
   with the largest mean arrival in the given direction, among endpoints
   that transitioned at least once; deepest endpoint as fallback *)
let critical_endpoint circuit (mc : Monte_carlo.result) direction =
  let endpoints = Circuit.endpoints circuit in
  let observed e =
    let s = Monte_carlo.stats mc e in
    match direction with
    | `Rise -> s.Monte_carlo.count_rise > 0
    | `Fall -> s.Monte_carlo.count_fall > 0
  in
  let mean e = (mc_direction_stats (Monte_carlo.stats mc e) direction).mu in
  match List.filter observed endpoints with
  | [] ->
    List.fold_left
      (fun best e -> if Circuit.level circuit e > Circuit.level circuit best then e else best)
      (List.hd endpoints) endpoints
  | e0 :: rest -> List.fold_left (fun best e -> if mean e > mean best then e else best) e0 rest

let run_circuit ?(runs = 10_000) ?(seed = 42) ?mc_engine ?mc_domains circuit ~case =
  let spec = Workloads.spec_fn case in
  let mc = Monte_carlo.simulate ~runs ~seed ?engine:mc_engine ?domains:mc_domains circuit ~spec in
  let spsta = Analyzer.Moments.analyze circuit ~spec in
  let ssta = Ssta.analyze circuit in
  let row direction =
    let e = critical_endpoint circuit mc direction in
    let mc_stats = mc_direction_stats (Monte_carlo.stats mc e) direction in
    let s_mean, s_sigma, s_prob =
      Analyzer.Moments.transition_stats (Analyzer.Moments.signal spsta e) direction
    in
    let ssta_arrival = Ssta.arrival ssta e in
    let ssta_normal =
      match direction with
      | `Rise -> ssta_arrival.Ssta.rise
      | `Fall -> ssta_arrival.Ssta.fall
    in
    {
      circuit_name = Circuit.name circuit;
      direction;
      endpoint = Circuit.net_name circuit e;
      spsta = { mu = s_mean; sigma = s_sigma; prob = s_prob };
      ssta = { mu = Normal.mean ssta_normal; sigma = Normal.stddev ssta_normal; prob = nan };
      mc = mc_stats;
    }
  in
  [ row `Rise; row `Fall ]

let run_suite ?runs ?seed ?mc_engine ?mc_domains ~case () =
  let circuits = List.map Benchmarks.load Benchmarks.evaluated_names in
  let per_circuit =
    List.map (fun c -> run_circuit ?runs ?seed ?mc_engine ?mc_domains c ~case) circuits
  in
  let rises = List.concat_map (fun rows -> List.filter (fun r -> r.direction = `Rise) rows) per_circuit in
  let falls = List.concat_map (fun rows -> List.filter (fun r -> r.direction = `Fall) rows) per_circuit in
  rises @ falls

let render ~case rows =
  let table =
    Table.create
      ~headers:
        [ "test"; "dir"; "SPSTA mu"; "SPSTA sig"; "SPSTA P"; "SSTA mu"; "SSTA sig";
          "MC mu"; "MC sig"; "MC P" ]
  in
  let add_row r =
    Table.add_row table
      [
        r.circuit_name;
        (match r.direction with `Rise -> "r" | `Fall -> "f");
        Table.cell_float r.spsta.mu;
        Table.cell_float r.spsta.sigma;
        Table.cell_float r.spsta.prob;
        Table.cell_float r.ssta.mu;
        Table.cell_float r.ssta.sigma;
        Table.cell_float r.mc.mu;
        Table.cell_float r.mc.sigma;
        Table.cell_float r.mc.prob;
      ]
  in
  let rises = List.filter (fun r -> r.direction = `Rise) rows in
  let falls = List.filter (fun r -> r.direction = `Fall) rows in
  List.iter add_row rises;
  if rises <> [] && falls <> [] then Table.add_separator table;
  List.iter add_row falls;
  Printf.sprintf "Table 2 (case %s): critical-path transition statistics\n%s"
    (Workloads.case_name case) (Table.render table)
