(** Table 2 of the paper: means, standard deviations and occurrence
    probabilities of the rising and falling transitions on the most
    critical path, for SPSTA, min/max-separated SSTA, and 10K-run Monte
    Carlo, under input cases I and II. *)

type method_stats = { mu : float; sigma : float; prob : float }

type row = {
  circuit_name : string;
  direction : [ `Rise | `Fall ];
  endpoint : string;  (** net name of the critical endpoint used *)
  spsta : method_stats;
  ssta : method_stats;  (** [prob] is [nan]: SSTA provides none (paper obs. 4) *)
  mc : method_stats;
}

val run_circuit :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?mc_domains:int ->
  Spsta_netlist.Circuit.t ->
  case:Workloads.case ->
  row list
(** Two rows (rise then fall).  The critical endpoint is selected per
    direction as the endpoint with the largest Monte Carlo mean arrival
    (the reference's view of criticality); all three methods are read at
    that same net.  [runs] defaults to 10_000, [seed] to 42.
    [mc_engine]/[mc_domains] select the Monte Carlo engine and domain
    count (defaults: bit-parallel packed engine, one domain); the rows
    are identical for every combination. *)

val run_suite :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?mc_domains:int ->
  case:Workloads.case ->
  unit ->
  row list
(** All nine evaluated circuits, rise rows first (paper layout). *)

val render : case:Workloads.case -> row list -> string
(** ASCII rendering in the paper's column layout. *)
