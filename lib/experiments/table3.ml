module Monte_carlo = Spsta_sim.Monte_carlo
module Ssta = Spsta_ssta.Ssta
module Analyzer = Spsta_core.Analyzer
module Table = Spsta_util.Table

type row = {
  circuit_name : string;
  spsta_seconds : float;
  ssta_seconds : float;
  mc_seconds : float;
  mc_runs : int;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)

let run_circuit ?(runs = 10_000) ?(seed = 42) ?mc_engine ?mc_domains circuit ~case =
  let spec = Workloads.spec_fn case in
  let _, spsta_seconds = time (fun () -> Analyzer.Moments.analyze circuit ~spec) in
  let _, ssta_seconds = time (fun () -> Ssta.analyze circuit) in
  let _, mc_seconds =
    time (fun () ->
        Monte_carlo.simulate ~runs ~seed ?engine:mc_engine ?domains:mc_domains circuit ~spec)
  in
  {
    circuit_name = Spsta_netlist.Circuit.name circuit;
    spsta_seconds;
    ssta_seconds;
    mc_seconds;
    mc_runs = runs;
  }

let run_suite ?runs ?seed ?mc_engine ?mc_domains ~case () =
  List.map
    (fun name -> run_circuit ?runs ?seed ?mc_engine ?mc_domains (Benchmarks.load name) ~case)
    Benchmarks.evaluated_names

let render rows =
  let table = Table.create ~headers:[ "test"; "SPSTA (s)"; "SSTA (s)"; "MC (s)"; "MC/SPSTA" ] in
  let add r =
    let ratio = if r.spsta_seconds > 0.0 then r.mc_seconds /. r.spsta_seconds else infinity in
    Table.add_row table
      [
        r.circuit_name;
        Printf.sprintf "%.4f" r.spsta_seconds;
        Printf.sprintf "%.4f" r.ssta_seconds;
        Printf.sprintf "%.4f" r.mc_seconds;
        Printf.sprintf "%.1fx" ratio;
      ]
  in
  List.iter add rows;
  Printf.sprintf "Table 3: CPU runtime (seconds), %d-run Monte Carlo\n%s"
    (match rows with r :: _ -> r.mc_runs | [] -> 0)
    (Table.render table)
