(** Table 3 of the paper: CPU runtimes of SPSTA, SSTA and 10K-run Monte
    Carlo per circuit.  Absolute seconds are machine-specific; the
    reproduced claim is the ordering (SSTA < SPSTA << MC). *)

type row = {
  circuit_name : string;
  spsta_seconds : float;
  ssta_seconds : float;
  mc_seconds : float;
  mc_runs : int;
}

val run_circuit :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?mc_domains:int ->
  Spsta_netlist.Circuit.t ->
  case:Workloads.case ->
  row

val run_suite :
  ?runs:int ->
  ?seed:int ->
  ?mc_engine:Spsta_sim.Monte_carlo.engine ->
  ?mc_domains:int ->
  case:Workloads.case ->
  unit ->
  row list
(** [mc_engine] (default the packed engine) and [mc_domains] (default 1)
    select how the Monte Carlo column is produced; the measured seconds
    change, the statistics do not. *)

val render : row list -> string
