module Normal = Spsta_dist.Normal
module Mixture = Spsta_dist.Mixture
module Discrete = Spsta_dist.Discrete

type issue = { rule : string; message : string }

let finite x = Float.is_finite x

let first = function [] -> None | { rule; message } :: _ -> Some (rule, message)

let prob_tolerance = 1e-6

let issue rule fmt = Printf.ksprintf (fun message -> { rule; message }) fmt

let check_finite ~what x =
  if finite x then [] else [ issue "non-finite" "%s is %h" what x ]

let check_nonnegative ~what x =
  if not (finite x) then [ issue "non-finite" "%s is %h" what x ]
  else if x < 0.0 then [ issue "negative-mass" "%s is negative (%.17g)" what x ]
  else []

let check_prob ~what p =
  if not (finite p) then [ issue "non-finite" "%s is %h" what p ]
  else if p < -.prob_tolerance || p > 1.0 +. prob_tolerance then
    [ issue "probability-range" "%s = %.17g is outside [0, 1]" what p ]
  else []

let check_prob_sum ~what components =
  let ranges =
    List.concat_map
      (fun (name, p) -> check_prob ~what:(Printf.sprintf "%s %s" what name) p)
      components
  in
  let sum = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 components in
  if not (finite sum) then ranges
  else if Float.abs (sum -. 1.0) > prob_tolerance then
    ranges @ [ issue "probability-sum" "%s sums to %.17g, expected 1" what sum ]
  else ranges

let check_normal_parts ~what ~mean ~sigma =
  check_finite ~what:(what ^ " mean") mean
  @
  if not (finite sigma) then [ issue "non-finite" "%s sigma is %h" what sigma ]
  else if sigma < 0.0 then
    [ issue "negative-sigma" "%s sigma is negative (%.17g)" what sigma ]
  else []

let check_normal ~what (n : Normal.t) =
  check_normal_parts ~what ~mean:(Normal.mean n) ~sigma:(Normal.stddev n)

let check_interval ~what (lo, hi) =
  check_finite ~what:(what ^ " lower bound") lo
  @ check_finite ~what:(what ^ " upper bound") hi
  @
  if finite lo && finite hi && lo > hi then
    [ issue "inverted-interval" "%s bounds inverted: [%.17g, %.17g]" what lo hi ]
  else []

let check_cdf ~what cdf =
  let issues = ref [] in
  let n = Array.length cdf in
  for i = n - 1 downto 0 do
    ( match check_prob ~what:(Printf.sprintf "%s[%d]" what i) cdf.(i) with
    | [] -> ()
    | found -> issues := found @ !issues );
    if i > 0 && finite cdf.(i) && finite cdf.(i - 1) && cdf.(i) < cdf.(i - 1) -. prob_tolerance
    then
      issues :=
        issue "non-monotone-cdf" "%s decreases at index %d (%.17g -> %.17g)" what i
          cdf.(i - 1) cdf.(i)
        :: !issues
  done;
  !issues

let check_total ~what total =
  check_nonnegative ~what total
  @
  if finite total && total > 1.0 +. prob_tolerance then
    [ issue "probability-range" "%s = %.17g exceeds 1" what total ]
  else []

let check_mixture ~what m =
  check_total ~what:(what ^ " total weight") (Mixture.total_weight m)
  @ List.concat
      (List.mapi
         (fun i (c : Mixture.component) ->
           let cw = Printf.sprintf "%s component %d" what i in
           check_nonnegative ~what:(cw ^ " weight") c.Mixture.weight
           @ check_normal ~what:cw c.Mixture.dist)
         (Mixture.components m))

let check_discrete ~what d =
  check_total ~what:(what ^ " total mass") (Discrete.total d)
  @ check_nonnegative ~what:(what ^ " dropped mass") (Discrete.dropped_mass d)
  @ check_finite ~what:(what ^ " mean") (Discrete.mean d)
  @ check_finite ~what:(what ^ " variance") (Discrete.variance d)
  @ List.concat_map
      (fun (t, m) ->
        check_nonnegative ~what:(Printf.sprintf "%s mass at t=%g" what t) m)
      (Discrete.series d)

let mass_conserved ?(tol = prob_tolerance) ~expected ~total ~dropped () =
  finite expected && finite total && finite dropped
  && total <= expected +. tol
  && total >= expected -. dropped -. tol

let check_mass_conservation ~what ~expected ~total ~dropped =
  if mass_conserved ~expected ~total ~dropped () then []
  else
    [ issue "mass-conservation"
        "%s carries mass %.17g, expected %.17g (accumulated truncation bound %.17g)" what total
        expected dropped ]
