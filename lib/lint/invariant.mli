(** Numeric invariant predicates shared by the static checker
    ({!Lint}), the engine-wired sanitizer
    ({!Spsta_engine.Propagate.Sanitize}) checkers each analyzer builds,
    and the property tests.

    Every predicate returns [[]] (or [None]) when the value is healthy
    and a list of issues otherwise.  An issue pairs a stable rule
    identifier with a human-readable message; the sanitizer lifts the
    first issue into a located {!Spsta_engine.Propagate.Sanitize.Violation}.

    The paper's pipeline rests on exactly these invariants: four-value
    probabilities sum to 1 (Table 1), t.o.p. functions are non-negative
    sub-probability measures whose mass WEIGHTED SUM/MAX conserve up to
    the tracked epsilon-truncation bound, and moments stay finite. *)

type issue = { rule : string; message : string }

val finite : float -> bool
(** Neither NaN nor infinite. *)

val first : issue list -> (string * string) option
(** The head issue as a [(rule, message)] pair — the shape
    {!Spsta_engine.Propagate.Sanitize} checkers return. *)

val prob_tolerance : float
(** Slack allowed on probability range and sum checks (1e-6): wide
    enough for the float error a deep WEIGHTED-SUM cascade accumulates,
    orders of magnitude tighter than any real corruption. *)

val check_finite : what:string -> float -> issue list
(** ["non-finite"] when the value is NaN or infinite. *)

val check_nonnegative : what:string -> float -> issue list
(** ["non-finite"] / ["negative-mass"] violations. *)

val check_prob : what:string -> float -> issue list
(** A probability: finite and within [[-tol, 1 + tol]]
    (["probability-range"]). *)

val check_prob_sum : what:string -> (string * float) list -> issue list
(** Each named component a probability, and the sum within
    {!prob_tolerance} of 1 (["probability-sum"]). *)

val check_normal_parts : what:string -> mean:float -> sigma:float -> issue list
(** Finite mean; finite, non-negative sigma (["negative-sigma"]).  The
    float-level form checked against the flat engine's slots without
    materializing a record; {!check_normal} is expressed through it. *)

val check_normal : what:string -> Spsta_dist.Normal.t -> issue list
(** {!check_normal_parts} of the distribution's moments. *)

val check_interval : what:string -> float * float -> issue list
(** Finite, ordered [(lo, hi)] bounds (["inverted-interval"]). *)

val check_cdf : what:string -> float array -> issue list
(** A tabulated cdf: every value a probability and the sequence
    monotone non-decreasing (["non-monotone-cdf"]). *)

val check_mixture : what:string -> Spsta_dist.Mixture.t -> issue list
(** Every component weight finite and non-negative, every component
    normal valid, total weight at most [1 + tol]. *)

val check_discrete : what:string -> Spsta_dist.Discrete.t -> issue list
(** Every bin mass finite and non-negative, the tracked dropped mass
    finite and non-negative, total at most [1 + tol], and mean /
    variance finite. *)

val mass_conserved :
  ?tol:float -> expected:float -> total:float -> dropped:float -> unit -> bool
(** The t.o.p. mass-conservation invariant: a distribution carrying
    [total] observable mass and an accumulated truncation bound
    [dropped] accounts for an [expected] mass when
    [expected - dropped - tol <= total <= expected + tol].
    [tol] defaults to {!prob_tolerance}. *)

val check_mass_conservation :
  what:string -> expected:float -> total:float -> dropped:float -> issue list
(** ["mass-conservation"] when {!mass_conserved} fails. *)
