module Circuit = Spsta_netlist.Circuit
module Cell_library = Spsta_netlist.Cell_library
module Sized_library = Spsta_netlist.Sized_library
module Bench_io = Spsta_netlist.Bench_io
module Verilog_io = Spsta_netlist.Verilog_io
module Gate_kind = Spsta_logic.Gate_kind
module Input_spec = Spsta_sim.Input_spec

type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  nets : string list;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Beyond this fan-in the exact four-value enumeration (4^n branch
   combinations per gate) is folded pairwise, trading exactness of the
   correlation treatment for tractability. *)
let enumeration_threshold = 6

(* Worst-case accumulated truncation mass (2 * eps per gate, both tails)
   above which the grid backend's tracked error bound stops being
   meaningfully small. *)
let grid_error_budget = 1e-3

let rules =
  [
    ("io-error", Error, "netlist file could not be read");
    ("parse-error", Error, "netlist file could not be parsed");
    ("undriven-net", Error, "a net is referenced but never driven");
    ("multiply-driven-net", Error, "a net has more than one driver");
    ("combinational-cycle", Error, "gates form a combinational loop (nets named)");
    ("invalid-circuit", Error, "the netlist was rejected for another structural reason");
    ("no-sources", Error, "the circuit has no primary inputs or flip-flop outputs");
    ("no-endpoints", Error, "the circuit has no primary outputs or flip-flop data pins");
    ("arity-mismatch", Error, "a gate's fan-in violates its kind's arity bounds");
    ("dff-self-loop", Warning, "a flip-flop's D input is its own Q output");
    ("duplicate-fanin", Warning, "a gate lists the same input net twice");
    ("dangling-net", Warning, "a driven net has no fanout and is not an endpoint");
    ("dead-logic", Warning, "no timing endpoint is reachable from a gate");
    ("unused-input", Info, "a timing source drives nothing");
    ("high-fanin", Info, "fan-in exceeds the exact four-value enumeration threshold");
    ("lib-invalid-delay", Error, "a cell delay used by the circuit is negative or non-finite");
    ("lib-zero-delay", Warning, "a cell delay used by the circuit is zero");
    ("spec-probability", Error, "source four-value probabilities are invalid or do not sum to 1");
    ("spec-arrival", Error, "a source arrival distribution has a non-finite mean or invalid sigma");
    ("grid-dt", Error, "the grid step is non-positive or non-finite");
    ("grid-eps", Error, "the truncation threshold is negative, non-finite, or >= 1");
    ("grid-error-bound", Warning, "the worst-case accumulated truncation bound is too large");
    ("grid-dt-coarse", Warning, "the grid step exceeds a source arrival sigma");
    ( "size-group",
      Error,
      "a size group used by the circuit breaks the drive-strength laws: delay must be \
       finite and non-increasing, area/capacitance non-decreasing" );
    ("constant-logic", Warning, "a gate output is statically tied to 0 or 1");
    ( "unobservable-logic",
      Warning,
      "constant downstream logic masks a gate from every endpoint (structurally alive, \
       yet unobservable)" );
    ( "reconvergent-fanout",
      Info,
      "fanout paths remerge, so independent signal-probability propagation (eq. 5) is \
       unsound on the merge cone" );
  ]

let severity_of_rule rule =
  match List.find_opt (fun (r, _, _) -> String.equal r rule) rules with
  | Some (_, severity, _) -> severity
  | None -> Error

let finding rule ?(nets = []) fmt =
  Printf.ksprintf
    (fun message -> { rule; severity = severity_of_rule rule; nets; message })
    fmt

(* ---------- structure ---------- *)

(* Nets from which a timing endpoint is reachable, walking fan-in edges
   backwards from the endpoints.  Flip-flops need no special casing: a
   D net is itself an endpoint, so liveness never has to cross the
   register boundary. *)
let alive_nets circuit =
  let n = Circuit.num_nets circuit in
  let alive = Array.make n false in
  let rec mark id =
    if not alive.(id) then begin
      alive.(id) <- true;
      match Circuit.driver circuit id with
      | Circuit.Input | Circuit.Dff_output _ -> ()
      | Circuit.Gate { inputs; _ } -> Array.iter mark inputs
    end
  in
  List.iter mark (Circuit.endpoints circuit);
  alive

let check_structure circuit =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let name id = Circuit.net_name circuit id in
  let n = Circuit.num_nets circuit in
  if n > 0 && Circuit.sources circuit = [] then
    add (finding "no-sources" "circuit %S has no timing sources" (Circuit.name circuit));
  if n > 0 && Circuit.endpoints circuit = [] then
    add
      (finding "no-endpoints"
         "circuit %S has no timing endpoints: no output or flip-flop observes the logic"
         (Circuit.name circuit));
  let endpoint = Array.make (max n 1) false in
  List.iter (fun id -> endpoint.(id) <- true) (Circuit.endpoints circuit);
  let alive = alive_nets circuit in
  for id = 0 to n - 1 do
    let fanout_empty = Array.length (Circuit.fanout circuit id) = 0 in
    (match Circuit.driver circuit id with
    | Circuit.Input ->
      if fanout_empty && not endpoint.(id) then
        add
          (finding "unused-input" ~nets:[ name id ]
             "primary input %s drives nothing; its input statistics are ignored" (name id))
    | Circuit.Dff_output { data } ->
      if data = id then
        add
          (finding "dff-self-loop" ~nets:[ name id ]
             "flip-flop %s feeds itself directly (D = Q); its launch and capture \
              statistics collapse to one net"
             (name id));
      if fanout_empty then
        add
          (finding "unused-input" ~nets:[ name id ]
             "flip-flop output %s drives nothing; the register's launch statistics are \
              ignored"
             (name id))
    | Circuit.Gate { kind; inputs } ->
      let fanin = Array.length inputs in
      let min_arity = Gate_kind.min_arity kind in
      let arity_bad =
        fanin < min_arity
        ||
        match Gate_kind.max_arity kind with
        | Some max_arity -> fanin > max_arity
        | None -> false
      in
      if arity_bad then
        add
          (finding "arity-mismatch" ~nets:[ name id ]
             "gate %s: %s with fan-in %d (kind accepts %s)" (name id)
             (Gate_kind.to_string kind) fanin
             (match Gate_kind.max_arity kind with
             | Some m when m = min_arity -> Printf.sprintf "exactly %d" m
             | Some m -> Printf.sprintf "%d..%d" min_arity m
             | None -> Printf.sprintf ">= %d" min_arity));
      if fanin > enumeration_threshold then
        add
          (finding "high-fanin" ~nets:[ name id ]
             "gate %s: %s fan-in %d exceeds the exact-enumeration threshold %d; the \
              analyzer folds it pairwise"
             (name id) (Gate_kind.to_string kind) fanin enumeration_threshold);
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun input ->
          if Hashtbl.mem seen input then begin
            if not (Hashtbl.find seen input) then begin
              Hashtbl.replace seen input true;
              add
                (finding "duplicate-fanin"
                  ~nets:[ name id; name input ]
                  "gate %s lists input %s more than once; the analyses treat the \
                   duplicates as independent signals"
                  (name id) (name input))
            end
          end
          else Hashtbl.add seen input false)
        inputs;
      if fanout_empty && not endpoint.(id) then
        add
          (finding "dangling-net" ~nets:[ name id ]
             "gate output %s drives nothing and is not an endpoint" (name id))
      else if not alive.(id) then
        add
          (finding "dead-logic" ~nets:[ name id ]
             "no timing endpoint is reachable from gate %s; it cannot affect any \
              reported arrival"
             (name id)))
  done;
  List.rev !findings

(* ---------- cell library ---------- *)

(* The (kind, fan-in) pairs the circuit actually instantiates, in first
   appearance order — the cells whose models the analyses will read. *)
let instantiated_pairs circuit =
  let pairs = Hashtbl.create 16 in
  let count = ref 0 in
  for id = 0 to Circuit.num_nets circuit - 1 do
    match Circuit.driver circuit id with
    | Circuit.Gate { kind; inputs } ->
      let key = (kind, Array.length inputs) in
      if not (Hashtbl.mem pairs key) then begin
        Hashtbl.add pairs key !count;
        incr count
      end
    | Circuit.Input | Circuit.Dff_output _ -> ()
  done;
  Hashtbl.fold (fun key order acc -> (order, key) :: acc) pairs []
  |> List.sort compare
  |> List.map snd

let check_library library circuit =
  let ordered = instantiated_pairs circuit in
  List.concat_map
    (fun (kind, fanin) ->
      let describe dir delay =
        let label =
          Printf.sprintf "%s %s delay (fan-in %d)" (Gate_kind.to_string kind) dir fanin
        in
        if not (Invariant.finite delay) || delay < 0.0 then
          [ finding "lib-invalid-delay" "%s is %h" label delay ]
        else if delay = 0.0 then
          [
            finding "lib-zero-delay"
              "%s is zero; zero-delay gates make distinct arrival orders \
               indistinguishable"
              label;
          ]
        else []
      in
      let rise, fall = Cell_library.rise_fall_of library kind ~fanin in
      describe "rise" rise @ describe "fall" fall)
    ordered

(* ---------- size groups ---------- *)

let check_sized_library sized circuit =
  let n = Sized_library.num_sizes sized in
  let series ~what ~law values =
    (* [law] is the direction the drive-strength ladder must respect:
       `Down for delays, `Up for area and capacitance. *)
    let bad = ref [] in
    Array.iteri
      (fun k v ->
        if not (Invariant.finite v) || v < 0.0 then
          bad := finding "size-group" "%s at size %d is %h" what k v :: !bad)
      values;
    for k = 1 to n - 1 do
      let prev = values.(k - 1) and cur = values.(k) in
      if Invariant.finite prev && Invariant.finite cur then begin
        let broken, direction =
          match law with
          | `Down -> (cur > prev, "increases")
          | `Up -> (cur < prev, "decreases")
        in
        if broken then
          bad :=
            finding "size-group" "%s %s from size %d to %d (%g -> %g)" what direction
              (k - 1) k prev cur
            :: !bad
      end
    done;
    List.rev !bad
  in
  List.concat_map
    (fun (kind, fanin) ->
      let label what =
        Printf.sprintf "%s %s (fan-in %d)" (Gate_kind.to_string kind) what fanin
      in
      let of_size f = Array.init n (fun k -> f ~size:k kind ~fanin) in
      series ~what:(label "rise delay") ~law:`Down
        (of_size (fun ~size kind ~fanin -> Sized_library.delay sized ~size kind ~fanin `Rise))
      @ series ~what:(label "fall delay") ~law:`Down
          (of_size (fun ~size kind ~fanin ->
               Sized_library.delay sized ~size kind ~fanin `Fall))
      @ series ~what:(label "area") ~law:`Up (of_size (Sized_library.area sized))
      @ series ~what:(label "capacitance") ~law:`Up
          (of_size (Sized_library.capacitance sized)))
    (instantiated_pairs circuit)

(* ---------- input statistics ---------- *)

let check_spec ~spec circuit =
  List.concat_map
    (fun id ->
      let name = Circuit.net_name circuit id in
      let s : Input_spec.t = spec id in
      let probs =
        Invariant.check_prob_sum
          ~what:(Printf.sprintf "source %s probability" name)
          [
            ("p_zero", s.Input_spec.p_zero);
            ("p_one", s.Input_spec.p_one);
            ("p_rise", s.Input_spec.p_rise);
            ("p_fall", s.Input_spec.p_fall);
          ]
        |> List.map (fun (issue : Invariant.issue) ->
               finding "spec-probability" ~nets:[ name ] "%s" issue.Invariant.message)
      in
      let arrivals =
        Invariant.check_normal
          ~what:(Printf.sprintf "source %s rise arrival" name)
          s.Input_spec.rise_arrival
        @ Invariant.check_normal
            ~what:(Printf.sprintf "source %s fall arrival" name)
            s.Input_spec.fall_arrival
        |> List.map (fun (issue : Invariant.issue) ->
               finding "spec-arrival" ~nets:[ name ] "%s" issue.Invariant.message)
      in
      probs @ arrivals)
    (Circuit.sources circuit)

(* ---------- grid settings ---------- *)

let check_grid ?spec ~dt ~truncate_eps circuit =
  let settings =
    (if not (Invariant.finite dt) || dt <= 0.0 then
       [ finding "grid-dt" "grid step dt = %.17g must be finite and positive" dt ]
     else [])
    @
    if not (Invariant.finite truncate_eps) || truncate_eps < 0.0 || truncate_eps >= 1.0
    then
      [
        finding "grid-eps" "truncation threshold eps = %.17g must lie in [0, 1)"
          truncate_eps;
      ]
    else []
  in
  if settings <> [] then settings
  else
    let bound = 2.0 *. truncate_eps *. float_of_int (Circuit.gate_count circuit) in
    let budget =
      if bound > grid_error_budget then
        [
          finding "grid-error-bound"
            "worst-case accumulated truncation bound 2 * %g * %d gates = %.3g exceeds \
             %g; the tracked error bound cannot certify the reported probabilities"
            truncate_eps (Circuit.gate_count circuit) bound grid_error_budget;
        ]
      else []
    in
    let coarse =
      match spec with
      | None -> []
      | Some spec ->
        List.filter_map
          (fun id ->
            let s : Input_spec.t = spec id in
            let sigma =
              Float.min
                (Spsta_dist.Normal.stddev s.Input_spec.rise_arrival)
                (Spsta_dist.Normal.stddev s.Input_spec.fall_arrival)
            in
            if Invariant.finite sigma && sigma > 0.0 && dt > sigma then
              let name = Circuit.net_name circuit id in
              Some
                (finding "grid-dt-coarse" ~nets:[ name ]
                   "grid step dt = %g exceeds source %s arrival sigma %g; the grid \
                    cannot resolve the input distribution"
                   dt name sigma)
            else None)
          (Circuit.sources circuit)
    in
    budget @ coarse

(* ---------- dataflow-powered rules ---------- *)

(* Facts from lib/analysis: static constants, constant-masked
   (unobservable) logic, and reconvergent-fanout regions.  The first two
   report per net like the structural rules; reconvergence is summarised
   in one finding per circuit — real netlists have hundreds of regions
   and the per-region detail belongs to `spsta static`, not lint. *)
let check_dataflow circuit =
  let name id = Circuit.net_name circuit id in
  let result =
    Spsta_analysis.Static.run
      ~passes:[ `Constants; `Reconvergence; `Observability ]
      circuit
  in
  let constants =
    match result.Spsta_analysis.Static.constants with
    | None -> []
    | Some c ->
      List.map
        (fun id ->
          let v = match Spsta_analysis.Constprop.const_of c id with
            | Some true -> 1
            | _ -> 0
          in
          finding "constant-logic" ~nets:[ name id ]
            "gate output %s is statically %d; its cone computes nothing" (name id) v)
        (Spsta_analysis.Constprop.constants c)
  in
  let unobservable =
    match result.Spsta_analysis.Static.observability with
    | None -> []
    | Some o ->
      List.map
        (fun id ->
          finding "unobservable-logic" ~nets:[ name id ]
            "gate %s never reaches an endpoint through non-constant logic; it cannot \
             affect any reported arrival"
            (name id))
        (Spsta_analysis.Observability.sharpened o)
  in
  let reconvergent =
    match result.Spsta_analysis.Static.reconvergence with
    | None -> []
    | Some r ->
      (match Spsta_analysis.Reconvergence.regions r with
      | [] -> []
      | regions ->
        let worst =
          List.fold_left
            (fun acc (reg : Spsta_analysis.Reconvergence.region) ->
              match acc with
              | Some (best : Spsta_analysis.Reconvergence.region)
                when best.Spsta_analysis.Reconvergence.width >= reg.width -> acc
              | _ -> Some reg)
            None regions
          |> Option.get
        in
        [
          finding "reconvergent-fanout"
            ~nets:[ name worst.Spsta_analysis.Reconvergence.stem;
                    name worst.Spsta_analysis.Reconvergence.merge ]
            "%d reconvergent fanout regions (%d nets where eq. 5 independence is \
             unsound); widest: stem %s remerges at %s (width %d, depth %d)"
            (List.length regions)
            (Spsta_analysis.Reconvergence.num_tainted r)
            (name worst.Spsta_analysis.Reconvergence.stem)
            (name worst.Spsta_analysis.Reconvergence.merge)
            worst.Spsta_analysis.Reconvergence.width
            worst.Spsta_analysis.Reconvergence.depth;
        ])
  in
  constants @ unobservable @ reconvergent

let check_circuit ?library ?sized ?spec ?grid circuit =
  check_structure circuit
  @ check_dataflow circuit
  @ (match library with
    | Some library -> check_library library circuit
    | None -> [])
  @ (match sized with
    | Some sized -> check_sized_library sized circuit
    | None -> [])
  @ (match spec with Some spec -> check_spec ~spec circuit | None -> [])
  @
  match grid with
  | Some (dt, truncate_eps) -> check_grid ?spec ~dt ~truncate_eps circuit
  | None -> []

(* ---------- file-level lint ---------- *)

let contains ~substring s =
  let n = String.length s and m = String.length substring in
  let rec scan i = i + m <= n && (String.sub s i m = substring || scan (i + 1)) in
  m = 0 || scan 0

let classify_invalid message =
  if contains ~substring:"multiple drivers" message then "multiply-driven-net"
  else if contains ~substring:"never driven" message then "undriven-net"
  else if contains ~substring:"cycle" message then "combinational-cycle"
  else if contains ~substring:"fan-in" message then "arity-mismatch"
  else "invalid-circuit"

let has_extension path ext =
  Filename.check_suffix (String.lowercase_ascii path) ext

let parse path =
  if has_extension path ".v" then Verilog_io.parse_file path
  else Bench_io.parse_file path

let lint_path ?library ?spec ?grid path =
  match parse path with
  | circuit -> check_circuit ?library ?spec ?grid circuit
  | exception Sys_error message -> [ finding "io-error" "%s" message ]
  | exception Bench_io.Parse_error { line; message } ->
    [ finding "parse-error" "%s:%d: %s" path line message ]
  | exception Verilog_io.Parse_error { line; message } ->
    [ finding "parse-error" "%s:%d: %s" path line message ]
  | exception Circuit.Invalid_circuit message ->
    [ finding (classify_invalid message) "%s: %s" path message ]

(* ---------- reporting ---------- *)

let count severity findings =
  List.length (List.filter (fun f -> f.severity = severity) findings)

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

let exit_code ?(strict = false) findings =
  if has_errors findings then 3
  else if strict && count Warning findings > 0 then 4
  else 0

let render_text findings =
  String.concat ""
    (List.map
       (fun f ->
         Printf.sprintf "  %-7s [%s] %s\n" (severity_name f.severity) f.rule f.message)
       findings)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf {|{"rule":"%s","severity":"%s","nets":[%s],"message":"%s"}|}
    (json_escape f.rule)
    (severity_name f.severity)
    (String.concat "," (List.map (fun n -> Printf.sprintf {|"%s"|} (json_escape n)) f.nets))
    (json_escape f.message)

let json_of_findings ~subject findings =
  Printf.sprintf
    {|{"subject":"%s","errors":%d,"warnings":%d,"infos":%d,"findings":[%s]}|}
    (json_escape subject) (count Error findings) (count Warning findings)
    (count Info findings)
    (String.concat "," (List.map finding_to_json findings))
