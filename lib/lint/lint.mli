(** [spsta.lint]: static netlist / model checking.

    The checker walks a finalized {!Spsta_netlist.Circuit.t} (and
    optionally a cell library, input-statistics spec and grid-backend
    settings) and emits structured findings for defects the analyses
    would otherwise silently absorb: dead or dangling logic, degenerate
    gate wiring, probability vectors that do not sum to 1, negative or
    non-finite delays, and grid settings whose truncation bound cannot
    keep the discretisation error small.

    Defects a {!Spsta_netlist.Circuit.Builder} refuses to finalize
    (undriven or multiply-driven nets, arity violations, combinational
    cycles) are surfaced by {!lint_path}, which parses a netlist file
    and converts the builder's rejection into an [Error]-severity
    finding under the matching rule. *)

type severity = Error | Warning | Info

type finding = {
  rule : string;  (** stable rule identifier, e.g. "dangling-net" *)
  severity : severity;
  nets : string list;  (** offending net names, possibly empty *)
  message : string;
}

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val rules : (string * severity * string) list
(** The rule catalogue: (identifier, severity, description), in the
    order findings are reported.  [doc/lint.md] mirrors this table. *)

val check_structure : Spsta_netlist.Circuit.t -> finding list
(** Structural rules over a finalized circuit: [no-endpoints],
    [no-sources], [arity-mismatch], [duplicate-fanin], [dff-self-loop],
    [unused-input], [dangling-net], [dead-logic], [high-fanin]. *)

val check_library :
  Spsta_netlist.Cell_library.t -> Spsta_netlist.Circuit.t -> finding list
(** Model rules over the delays of every (kind, fan-in) pair the
    circuit instantiates: [lib-invalid-delay], [lib-zero-delay]. *)

val check_sized_library :
  Spsta_netlist.Sized_library.t -> Spsta_netlist.Circuit.t -> finding list
(** Rule [size-group] over every (kind, fan-in) pair the circuit
    instantiates: each sized variant's rise/fall delay must be finite
    and non-negative, delays must be non-increasing and area /
    switched capacitance non-decreasing along the drive-strength
    ladder.  Catches custom scaling hooks that break the laws
    {!Spsta_netlist.Sized_library.make} trusts. *)

val check_dataflow : Spsta_netlist.Circuit.t -> finding list
(** Rules powered by the {!Spsta_analysis} dataflow passes:
    [constant-logic] (one finding per gate net statically tied to 0/1),
    [unobservable-logic] (one per gate masked from every endpoint by
    constant downstream logic — the constant-aware sharpening of
    [dead-logic]), and [reconvergent-fanout] (one summary finding per
    circuit naming the region count, the eq.-5-unsound net count and
    the widest region; per-region detail lives in [spsta static]). *)

val check_spec :
  spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  Spsta_netlist.Circuit.t ->
  finding list
(** Model rules over the input statistics of every timing source:
    [spec-probability] (four-value vector outside [0,1] or not summing
    to 1) and [spec-arrival] (non-finite mean / invalid sigma). *)

val check_grid :
  ?spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  dt:float ->
  truncate_eps:float ->
  Spsta_netlist.Circuit.t ->
  finding list
(** Grid-backend settings: [grid-dt] / [grid-eps] (non-positive or
    non-finite), [grid-error-bound] (the worst-case accumulated
    truncation bound [2 * eps * gate_count] exceeds 1e-3, so the
    tracked error bound cannot certify three digits), and
    [grid-dt-coarse] (with [spec]: [dt] exceeds a source arrival
    sigma, so the grid cannot resolve the input distribution). *)

val check_circuit :
  ?library:Spsta_netlist.Cell_library.t ->
  ?sized:Spsta_netlist.Sized_library.t ->
  ?spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  ?grid:float * float ->
  Spsta_netlist.Circuit.t ->
  finding list
(** All applicable rule groups (structural, dataflow, and the model
    rules whose inputs were supplied); [grid] is [(dt, truncate_eps)]. *)

val lint_path :
  ?library:Spsta_netlist.Cell_library.t ->
  ?spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
  ?grid:float * float ->
  string ->
  finding list
(** Parse a [.bench] / [.v] netlist file and lint it.  Parser and
    builder rejections become [Error] findings: [io-error],
    [parse-error], [undriven-net], [multiply-driven-net],
    [arity-mismatch], [combinational-cycle] (nets named), or
    [invalid-circuit] for anything unclassified. *)

val count : severity -> finding list -> int
val has_errors : finding list -> bool

val exit_code : ?strict:bool -> finding list -> int
(** The [spsta lint] convention: [0] when no Error findings (with
    [strict], also no Warnings), [3] when Errors are present, [4] when
    [strict] and Warnings are present. *)

val render_text : finding list -> string
(** One line per finding: ["  error [rule] message"].  Empty string
    for no findings. *)

val finding_to_json : finding -> string

val json_of_findings : subject:string -> finding list -> string
(** A JSON object: subject (circuit name or path), per-severity
    counts, and the findings array. *)
