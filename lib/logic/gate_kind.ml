type t = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

let all = [ And; Nand; Or; Nor; Xor; Xnor; Not; Buf ]

let equal (a : t) (b : t) = a = b

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

(* Stable dense codes (the [all] order) for kernels that store gate
   kinds in flat int arrays; the inverse is total over 0..7. *)
let to_code = function
  | And -> 0
  | Nand -> 1
  | Or -> 2
  | Nor -> 3
  | Xor -> 4
  | Xnor -> 5
  | Not -> 6
  | Buf -> 7

let of_code = function
  | 0 -> And
  | 1 -> Nand
  | 2 -> Or
  | 3 -> Nor
  | 4 -> Xor
  | 5 -> Xnor
  | 6 -> Not
  | 7 -> Buf
  | c -> invalid_arg (Printf.sprintf "Gate_kind.of_code: %d outside 0..7" c)

let min_arity = function
  | Not | Buf -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2

let max_arity = function
  | Not | Buf -> Some 1
  | And | Nand | Or | Nor | Xor | Xnor -> None

let inverting = function
  | Nand | Nor | Xnor | Not -> true
  | And | Or | Xor | Buf -> false

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf -> None

let controlled_value t =
  match controlling_value t with
  | None -> None
  | Some c ->
    (* a controlling input c yields base-gate output c for AND/OR families *)
    Some (if inverting t then not c else c)

type plane_op = Op_and | Op_or | Op_xor

let plane_op = function
  | And | Nand | Not | Buf -> Op_and
  | Or | Nor -> Op_or
  | Xor | Xnor -> Op_xor

let check_arity t inputs =
  let n = List.length inputs in
  if n < min_arity t then
    invalid_arg (Printf.sprintf "Gate_kind.%s: needs >= %d inputs, got %d" (to_string t) (min_arity t) n);
  match max_arity t with
  | Some m when n > m ->
    invalid_arg (Printf.sprintf "Gate_kind.%s: needs <= %d inputs, got %d" (to_string t) m n)
  | Some _ | None -> ()

let eval_bool t inputs =
  check_arity t inputs;
  let base =
    match t with
    | And | Nand -> List.for_all Fun.id inputs
    | Or | Nor -> List.exists Fun.id inputs
    | Xor | Xnor -> List.fold_left (fun acc b -> acc <> b) false inputs
    | Not | Buf -> ( match inputs with [ b ] -> b | [] | _ :: _ -> assert false )
  in
  if inverting t then not base else base

let eval4 t inputs =
  check_arity t inputs;
  let init = eval_bool t (List.map Value4.initial inputs) in
  let final = eval_bool t (List.map Value4.final inputs) in
  Value4.of_initial_final init final
