(** The gate vocabulary of ISCAS'89 [.bench] netlists, with the logical
    attributes the analyses need: controlling/controlled values (§3.3),
    output inversion, Boolean and four-value evaluation. *)

type t = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

val all : t list
val equal : t -> t -> bool
val to_string : t -> string
(** Upper-case [.bench] spelling, e.g. "NAND". *)

val of_string : string -> t option
(** Case-insensitive; accepts the "BUFF" spelling used by some benchmarks. *)

val to_code : t -> int
(** Stable dense code in [0..7] (the {!all} order) — the representation
    flat struct-of-arrays kernels store per gate. *)

val of_code : int -> t
(** Inverse of {!to_code}.  Raises [Invalid_argument] outside [0..7]. *)

val min_arity : t -> int
val max_arity : t -> int option
(** [None] = unbounded (AND/OR families accept any fan-in >= 1). *)

val inverting : t -> bool
(** Whether the gate logically complements (NAND/NOR/XNOR/NOT). *)

val controlling_value : t -> bool option
(** The input value that forces the output regardless of other inputs:
    0 for AND/NAND, 1 for OR/NOR, none for XOR/XNOR/NOT/BUF. *)

val controlled_value : t -> bool option
(** Output value produced by a controlling input. *)

type plane_op = Op_and | Op_or | Op_xor
(** The associative bitwise fold underlying each gate family. *)

val plane_op : t -> plane_op
(** Plane-wise evaluation hook for bit-parallel engines: every gate is a
    fold of one associative boolean op over its inputs, complemented when
    {!inverting}.  Applied independently to a packed initial-level plane
    and final-level plane this reproduces {!eval4} lane by lane, because
    the no-glitch semantics evaluate the two levels independently (see
    {!Value4.lift2}).  NOT/BUF use [Op_and], where a single-input fold is
    the identity. *)

val eval_bool : t -> bool list -> bool
(** Boolean evaluation.  Raises [Invalid_argument] on an arity violation
    (e.g. NOT with two inputs). *)

val eval4 : t -> Value4.t list -> Value4.t
(** Four-value evaluation under the paper's no-glitch convention:
    start-of-cycle and end-of-cycle levels are evaluated independently
    (matches Table 1 for AND/OR and extends it to the full vocabulary). *)
