type id = int

type driver =
  | Input
  | Dff_output of { data : id }
  | Gate of { kind : Spsta_logic.Gate_kind.t; inputs : id array }

exception Invalid_circuit of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_circuit s)) fmt

(* Flat struct-of-arrays view of the gates for kernels whose inner loop
   must not chase [driver] record pointers: gate [k] (in topological
   order, the [topo] order) drives net [gate_net.(k)], computes kind
   [Spsta_logic.Gate_kind.of_code kind_code.(k)] and reads operand nets
   [fanin.(fanin_off.(k)) .. fanin.(fanin_off.(k+1) - 1)].  [level_off]
   cuts the gate index space into the same groups as [by_level]:
   group [l] is gates [level_off.(l) .. level_off.(l+1) - 1]. *)
type csr = {
  gate_net : id array;
  kind_code : int array;
  fanin_off : int array; (* length num_gates + 1 *)
  fanin : id array;
  level_off : int array; (* length num_groups + 1 *)
  max_fanin : int;
}

type t = {
  name : string;
  names : string array;
  ids : (string, id) Hashtbl.t;
  drivers : driver array;
  primary_inputs : id list;
  primary_outputs : id list;
  dffs : (id * id) list;
  fanouts : id array array;
  topo : id array; (* gate nets only, in evaluation order *)
  topo_pos : int array; (* gate net -> index in [topo]; -1 for sources *)
  levels : int array;
  depth : int;
  by_level : id array array; (* gate nets grouped by level, topo order within *)
  sources : id list; (* primary inputs @ flip-flop Q nets, precomputed *)
  endpoints : id list; (* primary outputs @ flip-flop D nets, deduplicated *)
  mutable csr : csr option; (* built on first demand, kind codes kept
                               in sync by [retype_gate] *)
}

module Builder = struct
  type pending =
    | P_input
    | P_dff of string (* d net name *)
    | P_gate of Spsta_logic.Gate_kind.t * string list

  type t = {
    circuit_name : string;
    mutable order : (string * pending) list; (* declaration order, reversed *)
    table : (string, pending) Hashtbl.t;
    mutable outs : string list; (* reversed *)
    referenced : (string, unit) Hashtbl.t;
  }

  let create ?(name = "") () =
    { circuit_name = name; order = []; table = Hashtbl.create 64; outs = []; referenced = Hashtbl.create 64 }

  (* [order] carries the pending payload so [finalize] never has to look
     a declared net up by name again: at a million gates the repeated
     string-keyed [Hashtbl.find]s were a measurable slice of build time *)
  let declare b name pending =
    if Hashtbl.mem b.table name then invalid "net %s has multiple drivers" name;
    Hashtbl.replace b.table name pending;
    b.order <- (name, pending) :: b.order

  let reference b name = Hashtbl.replace b.referenced name ()

  let add_input b name = declare b name P_input

  let add_dff b ~q ~d =
    declare b q (P_dff d);
    reference b d

  let add_gate b ~output kind inputs =
    let n = List.length inputs in
    if n < Spsta_logic.Gate_kind.min_arity kind then
      invalid "gate %s driving %s: fan-in %d below minimum" (Spsta_logic.Gate_kind.to_string kind)
        output n;
    (match Spsta_logic.Gate_kind.max_arity kind with
    | Some m when n > m ->
      invalid "gate %s driving %s: fan-in %d above maximum" (Spsta_logic.Gate_kind.to_string kind)
        output n
    | Some _ | None -> ());
    declare b output (P_gate (kind, inputs));
    List.iter (reference b) inputs

  let add_output b name =
    b.outs <- name :: b.outs;
    reference b name

  (* Kahn topological sort restricted to combinational edges; flip-flops
     break timing loops (Q is a source, D an endpoint).  [names] is only
     consulted on failure, to name the nets stuck on (or fed by) a
     cycle.

     Successor edges live in a flat CSR layout (offsets + one edge
     array): at a million gates the per-edge cons cells were costlier
     than the sort itself.  Each net's successor slice is walked from
     the high end, which replays the exact release order of the old
     prepend-built lists — the resulting topological order, and with it
     [gates_by_level], is unchanged. *)
  let topo_sort ~names drivers =
    let n = Array.length drivers in
    let indegree = Array.make n 0 in
    let succ_off = Array.make (n + 1) 0 in
    Array.iter
      (fun d ->
        match d with
        | Input | Dff_output _ -> ()
        | Gate { inputs; _ } ->
          Array.iter (fun i -> succ_off.(i + 1) <- succ_off.(i + 1) + 1) inputs)
      drivers;
    for i = 0 to n - 1 do
      succ_off.(i + 1) <- succ_off.(i + 1) + succ_off.(i)
    done;
    let succ = Array.make succ_off.(n) 0 in
    let cursor = Array.init n (fun i -> succ_off.(i)) in
    Array.iteri
      (fun out d ->
        match d with
        | Input | Dff_output _ -> ()
        | Gate { inputs; _ } ->
          indegree.(out) <- Array.length inputs;
          Array.iter
            (fun i ->
              succ.(cursor.(i)) <- out;
              cursor.(i) <- cursor.(i) + 1)
            inputs)
      drivers;
    let queue = Queue.create () in
    Array.iteri
      (fun i d ->
        match d with
        | Input | Dff_output _ -> Queue.add i queue
        | Gate _ -> if indegree.(i) = 0 then Queue.add i queue)
      drivers;
    let order = Array.make n 0 in
    let gates = ref 0 in
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr seen;
      (match drivers.(i) with
      | Gate _ ->
        order.(!gates) <- i;
        incr gates
      | Input | Dff_output _ -> ());
      for k = succ_off.(i + 1) - 1 downto succ_off.(i) do
        let out = succ.(k) in
        indegree.(out) <- indegree.(out) - 1;
        if indegree.(out) = 0 then Queue.add out queue
      done
    done;
    if !seen <> n then begin
      (* nets with remaining indegree are on a cycle or downstream of
         one; iteratively trimming stuck nets with no stuck successor
         peels off the downstream tails (a DAG) and leaves exactly the
         cycle nets *)
      let stuck = Array.map (fun d -> d > 0) indegree in
      let has_stuck_succ i =
        let rec scan k = k < succ_off.(i + 1) && (stuck.(succ.(k)) || scan (k + 1)) in
        scan succ_off.(i)
      in
      let shrunk = ref true in
      while !shrunk do
        shrunk := false;
        Array.iteri
          (fun i s ->
            if s && not (has_stuck_succ i) then begin
              stuck.(i) <- false;
              shrunk := true
            end)
          stuck
      done;
      let on_cycle =
        Array.to_list (Array.mapi (fun i s -> (i, s)) stuck)
        |> List.filter_map (fun (i, s) -> if s then Some names.(i) else None)
      in
      invalid "combinational cycle detected among nets: %s" (String.concat ", " on_cycle)
    end;
    Array.sub order 0 !gates

  let finalize b =
    let order = Array.of_list (List.rev b.order) in
    (* every referenced net must be driven *)
    Hashtbl.iter
      (fun name () -> if not (Hashtbl.mem b.table name) then invalid "net %s is referenced but never driven" name)
      b.referenced;
    List.iter
      (fun name -> if not (Hashtbl.mem b.table name) then invalid "output %s is never driven" name)
      (List.rev b.outs);
    let names = Array.map fst order in
    let ids = Hashtbl.create (Array.length names) in
    Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
    let id_of name =
      match Hashtbl.find_opt ids name with
      | Some i -> i
      | None -> invalid "net %s is referenced but never driven" name
    in
    let drivers =
      Array.map
        (fun (_, pending) ->
          match pending with
          | P_input -> Input
          | P_dff d -> Dff_output { data = id_of d }
          | P_gate (kind, inputs) ->
            Gate { kind; inputs = Array.of_list (List.map id_of inputs) })
        order
    in
    let topo = topo_sort ~names drivers in
    let n = Array.length drivers in
    let topo_pos = Array.make n (-1) in
    Array.iteri (fun i g -> topo_pos.(g) <- i) topo;
    let levels = Array.make n 0 in
    Array.iter
      (fun g ->
        match drivers.(g) with
        | Gate { inputs; _ } ->
          levels.(g) <- 1 + Array.fold_left (fun acc i -> max acc levels.(i)) 0 inputs
        | Input | Dff_output _ -> assert false)
      topo;
    let depth = Array.fold_left max 0 levels in
    (* gates grouped by level: within a level no gate feeds another, so
       the whole group can be evaluated concurrently; keeping topo order
       inside each group preserves the sequential evaluation order.
       Counting passes + exact-size arrays, like the fanout map below:
       the intermediate per-bucket lists were pure allocation churn. *)
    let by_level =
      let counts = Array.make (depth + 1) 0 in
      Array.iter (fun g -> counts.(levels.(g)) <- counts.(levels.(g)) + 1) topo;
      let buckets = Array.map (fun c -> Array.make c 0) counts in
      let cursor = Array.make (depth + 1) 0 in
      Array.iter
        (fun g ->
          let l = levels.(g) in
          buckets.(l).(cursor.(l)) <- g;
          cursor.(l) <- cursor.(l) + 1)
        topo;
      Array.of_list
        (List.filter (fun gates -> Array.length gates > 0) (Array.to_list buckets))
    in
    let fanouts =
      let counts = Array.make n 0 in
      let count i = counts.(i) <- counts.(i) + 1 in
      Array.iter
        (fun d ->
          match d with
          | Input -> ()
          | Dff_output { data } -> count data
          | Gate { inputs; _ } -> Array.iter count inputs)
        drivers;
      let fanouts = Array.map (fun c -> Array.make c 0) counts in
      let cursor = Array.make n 0 in
      Array.iteri
        (fun out d ->
          let push i =
            fanouts.(i).(cursor.(i)) <- out;
            cursor.(i) <- cursor.(i) + 1
          in
          match d with
          | Input -> ()
          | Dff_output { data } -> push data
          | Gate { inputs; _ } -> Array.iter push inputs)
        drivers;
      fanouts
    in
    (* declaration order = id order, so scanning [drivers] backwards with
       prepends rebuilds both lists in their historical order without
       another name lookup per net *)
    let primary_inputs = ref [] in
    let dffs = ref [] in
    for i = n - 1 downto 0 do
      match drivers.(i) with
      | Input -> primary_inputs := i :: !primary_inputs
      | Dff_output { data } -> dffs := (i, data) :: !dffs
      | Gate _ -> ()
    done;
    let primary_inputs = !primary_inputs in
    let dffs = !dffs in
    let primary_outputs = List.map id_of (List.rev b.outs) in
    let sources = primary_inputs @ List.map fst dffs in
    let endpoints =
      let candidates = primary_outputs @ List.map snd dffs in
      let seen = Hashtbl.create 16 in
      List.filter
        (fun i ->
          if Hashtbl.mem seen i then false
          else begin
            Hashtbl.replace seen i ();
            true
          end)
        candidates
    in
    {
      name = b.circuit_name;
      names;
      ids;
      drivers;
      primary_inputs;
      primary_outputs;
      dffs;
      fanouts;
      topo;
      topo_pos;
      levels;
      depth;
      by_level;
      sources;
      endpoints;
      csr = None;
    }
end

let name t = t.name
let num_nets t = Array.length t.names

let net_name t i = t.names.(i)
let find t name = Hashtbl.find_opt t.ids name

let find_exn t name =
  match find t name with
  | Some i -> i
  | None ->
    invalid_arg (Printf.sprintf "Circuit.find_exn: no net %S in circuit %S" name t.name)

let driver t i = t.drivers.(i)

(* In-place driver-kind swap for ECO edits.  Topology, levels, topo
   order and fanout maps all depend only on the input edges, which are
   untouched, so every precomputed structure stays valid. *)
let retype_gate t i kind =
  match t.drivers.(i) with
  | Gate { inputs; _ } ->
    let n = Array.length inputs in
    if n < Spsta_logic.Gate_kind.min_arity kind then
      invalid_arg
        (Printf.sprintf "Circuit.retype_gate: %s needs fan-in >= %d, net %S has %d"
           (Spsta_logic.Gate_kind.to_string kind)
           (Spsta_logic.Gate_kind.min_arity kind)
           t.names.(i) n);
    (match Spsta_logic.Gate_kind.max_arity kind with
    | Some m when n > m ->
      invalid_arg
        (Printf.sprintf "Circuit.retype_gate: %s allows fan-in <= %d, net %S has %d"
           (Spsta_logic.Gate_kind.to_string kind)
           m t.names.(i) n)
    | Some _ | None -> ());
    t.drivers.(i) <- Gate { kind; inputs };
    (* the cached flat view stores the kind as a code; everything else
       in it depends only on the untouched input edges *)
    (match t.csr with
    | Some csr -> csr.kind_code.(t.topo_pos.(i)) <- Spsta_logic.Gate_kind.to_code kind
    | None -> ())
  | Input | Dff_output _ -> invalid_arg "Circuit.retype_gate: net is not gate-driven"

let primary_inputs t = t.primary_inputs
let primary_outputs t = t.primary_outputs
let dffs t = t.dffs

(* both lists are built once in [Builder.finalize]: [sources] is hit on
   every analysis *and* on every incremental update (once per sizer
   trial), so a per-call allocation was measurable *)
let sources t = t.sources
let endpoints t = t.endpoints

let fanout t i = t.fanouts.(i)
let topo_gates t = t.topo

(* Counting pass + exact-size arrays, like the fanout map in [finalize];
   built lazily because only the flat kernels consume it, and cached
   because they consume it on every sweep. *)
let build_csr t =
  let n_gates = Array.length t.topo in
  let gate_net = Array.copy t.topo in
  let kind_code = Array.make n_gates 0 in
  let fanin_off = Array.make (n_gates + 1) 0 in
  let max_fanin = ref 0 in
  Array.iteri
    (fun k g ->
      match t.drivers.(g) with
      | Gate { kind; inputs } ->
        kind_code.(k) <- Spsta_logic.Gate_kind.to_code kind;
        let a = Array.length inputs in
        if a > !max_fanin then max_fanin := a;
        fanin_off.(k + 1) <- fanin_off.(k) + a
      | Input | Dff_output _ -> assert false)
    gate_net;
  let fanin = Array.make fanin_off.(n_gates) 0 in
  Array.iteri
    (fun k g ->
      match t.drivers.(g) with
      | Gate { inputs; _ } -> Array.blit inputs 0 fanin fanin_off.(k) (Array.length inputs)
      | Input | Dff_output _ -> assert false)
    gate_net;
  (* [by_level] concatenated equals [topo], so the groups are contiguous
     gate-index ranges *)
  let level_off = Array.make (Array.length t.by_level + 1) 0 in
  Array.iteri
    (fun l gates -> level_off.(l + 1) <- level_off.(l) + Array.length gates)
    t.by_level;
  { gate_net; kind_code; fanin_off; fanin; level_off; max_fanin = !max_fanin }

let csr t =
  match t.csr with
  | Some c -> c
  | None ->
    let c = build_csr t in
    t.csr <- Some c;
    c
let topo_position t i = t.topo_pos.(i)
let gates_by_level t = t.by_level
let level t i = t.levels.(i)
let depth t = t.depth

let gate_count t =
  Array.fold_left
    (fun acc d -> match d with Gate _ -> acc + 1 | Input | Dff_output _ -> acc)
    0 t.drivers

let count_gates_of_kind t kind =
  Array.fold_left
    (fun acc d ->
      match d with
      | Gate { kind = k; _ } when Spsta_logic.Gate_kind.equal k kind -> acc + 1
      | Gate _ | Input | Dff_output _ -> acc)
    0 t.drivers

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d PI, %d PO, %d DFF, %d gates, depth %d"
    (if t.name = "" then "<unnamed>" else t.name)
    (List.length t.primary_inputs) (List.length t.primary_outputs) (List.length t.dffs)
    (gate_count t) t.depth
