type id = int

type driver =
  | Input
  | Dff_output of { data : id }
  | Gate of { kind : Spsta_logic.Gate_kind.t; inputs : id array }

exception Invalid_circuit of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_circuit s)) fmt

type t = {
  name : string;
  names : string array;
  ids : (string, id) Hashtbl.t;
  drivers : driver array;
  primary_inputs : id list;
  primary_outputs : id list;
  dffs : (id * id) list;
  fanouts : id array array;
  topo : id array; (* gate nets only, in evaluation order *)
  levels : int array;
  depth : int;
  by_level : id array array; (* gate nets grouped by level, topo order within *)
}

module Builder = struct
  type pending =
    | P_input
    | P_dff of string (* d net name *)
    | P_gate of Spsta_logic.Gate_kind.t * string list

  type t = {
    circuit_name : string;
    mutable order : string list; (* declaration order, reversed *)
    table : (string, pending) Hashtbl.t;
    mutable outs : string list; (* reversed *)
    referenced : (string, unit) Hashtbl.t;
  }

  let create ?(name = "") () =
    { circuit_name = name; order = []; table = Hashtbl.create 64; outs = []; referenced = Hashtbl.create 64 }

  let declare b name pending =
    if Hashtbl.mem b.table name then invalid "net %s has multiple drivers" name;
    Hashtbl.replace b.table name pending;
    b.order <- name :: b.order

  let reference b name = Hashtbl.replace b.referenced name ()

  let add_input b name = declare b name P_input

  let add_dff b ~q ~d =
    declare b q (P_dff d);
    reference b d

  let add_gate b ~output kind inputs =
    let n = List.length inputs in
    if n < Spsta_logic.Gate_kind.min_arity kind then
      invalid "gate %s driving %s: fan-in %d below minimum" (Spsta_logic.Gate_kind.to_string kind)
        output n;
    (match Spsta_logic.Gate_kind.max_arity kind with
    | Some m when n > m ->
      invalid "gate %s driving %s: fan-in %d above maximum" (Spsta_logic.Gate_kind.to_string kind)
        output n
    | Some _ | None -> ());
    declare b output (P_gate (kind, inputs));
    List.iter (reference b) inputs

  let add_output b name =
    b.outs <- name :: b.outs;
    reference b name

  (* Kahn topological sort restricted to combinational edges; flip-flops
     break timing loops (Q is a source, D an endpoint).  [names] is only
     consulted on failure, to name the nets stuck on (or fed by) a
     cycle. *)
  let topo_sort ~names drivers =
    let n = Array.length drivers in
    let indegree = Array.make n 0 in
    let succs = Array.make n [] in
    Array.iteri
      (fun out d ->
        match d with
        | Input | Dff_output _ -> ()
        | Gate { inputs; _ } ->
          indegree.(out) <- Array.length inputs;
          Array.iter (fun i -> succs.(i) <- out :: succs.(i)) inputs)
      drivers;
    let queue = Queue.create () in
    Array.iteri
      (fun i d ->
        match d with
        | Input | Dff_output _ -> Queue.add i queue
        | Gate _ -> if indegree.(i) = 0 then Queue.add i queue)
      drivers;
    let order = ref [] in
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr seen;
      (match drivers.(i) with Gate _ -> order := i :: !order | Input | Dff_output _ -> ());
      let release out =
        indegree.(out) <- indegree.(out) - 1;
        if indegree.(out) = 0 then Queue.add out queue
      in
      List.iter release succs.(i)
    done;
    if !seen <> n then begin
      (* nets with remaining indegree are on a cycle or downstream of
         one; iteratively trimming stuck nets with no stuck successor
         peels off the downstream tails (a DAG) and leaves exactly the
         cycle nets *)
      let stuck = Array.map (fun d -> d > 0) indegree in
      let shrunk = ref true in
      while !shrunk do
        shrunk := false;
        Array.iteri
          (fun i s ->
            if s && not (List.exists (fun j -> stuck.(j)) succs.(i)) then begin
              stuck.(i) <- false;
              shrunk := true
            end)
          stuck
      done;
      let on_cycle =
        Array.to_list (Array.mapi (fun i s -> (i, s)) stuck)
        |> List.filter_map (fun (i, s) -> if s then Some names.(i) else None)
      in
      invalid "combinational cycle detected among nets: %s" (String.concat ", " on_cycle)
    end;
    Array.of_list (List.rev !order)

  let finalize b =
    let order = List.rev b.order in
    (* every referenced net must be driven *)
    Hashtbl.iter
      (fun name () -> if not (Hashtbl.mem b.table name) then invalid "net %s is referenced but never driven" name)
      b.referenced;
    List.iter
      (fun name -> if not (Hashtbl.mem b.table name) then invalid "output %s is never driven" name)
      (List.rev b.outs);
    let names = Array.of_list order in
    let ids = Hashtbl.create (Array.length names) in
    Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
    let id_of name =
      match Hashtbl.find_opt ids name with
      | Some i -> i
      | None -> invalid "net %s is referenced but never driven" name
    in
    let drivers =
      Array.map
        (fun name ->
          match Hashtbl.find b.table name with
          | P_input -> Input
          | P_dff d -> Dff_output { data = id_of d }
          | P_gate (kind, inputs) ->
            Gate { kind; inputs = Array.of_list (List.map id_of inputs) })
        names
    in
    let topo = topo_sort ~names drivers in
    let n = Array.length drivers in
    let levels = Array.make n 0 in
    Array.iter
      (fun g ->
        match drivers.(g) with
        | Gate { inputs; _ } ->
          levels.(g) <- 1 + Array.fold_left (fun acc i -> max acc levels.(i)) 0 inputs
        | Input | Dff_output _ -> assert false)
      topo;
    let depth = Array.fold_left max 0 levels in
    (* gates grouped by level: within a level no gate feeds another, so
       the whole group can be evaluated concurrently; keeping topo order
       inside each group preserves the sequential evaluation order *)
    let by_level =
      let buckets = Array.make (depth + 1) [] in
      Array.iter (fun g -> buckets.(levels.(g)) <- g :: buckets.(levels.(g))) topo;
      let groups =
        Array.to_list buckets
        |> List.filter_map (function
             | [] -> None
             | gates -> Some (Array.of_list (List.rev gates)))
      in
      Array.of_list groups
    in
    let fanout_lists = Array.make n [] in
    Array.iteri
      (fun out d ->
        match d with
        | Input -> ()
        | Dff_output { data } -> fanout_lists.(data) <- out :: fanout_lists.(data)
        | Gate { inputs; _ } ->
          Array.iter (fun i -> fanout_lists.(i) <- out :: fanout_lists.(i)) inputs)
      drivers;
    let fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists in
    let primary_inputs =
      List.filter_map
        (fun name ->
          match Hashtbl.find b.table name with
          | P_input -> Some (id_of name)
          | P_dff _ | P_gate _ -> None)
        order
    in
    let dffs =
      List.filter_map
        (fun name ->
          match Hashtbl.find b.table name with
          | P_dff d -> Some (id_of name, id_of d)
          | P_input | P_gate _ -> None)
        order
    in
    let primary_outputs = List.map id_of (List.rev b.outs) in
    {
      name = b.circuit_name;
      names;
      ids;
      drivers;
      primary_inputs;
      primary_outputs;
      dffs;
      fanouts;
      topo;
      levels;
      depth;
      by_level;
    }
end

let name t = t.name
let num_nets t = Array.length t.names

let net_name t i = t.names.(i)
let find t name = Hashtbl.find_opt t.ids name

let find_exn t name =
  match find t name with
  | Some i -> i
  | None ->
    invalid_arg (Printf.sprintf "Circuit.find_exn: no net %S in circuit %S" name t.name)

let driver t i = t.drivers.(i)
let primary_inputs t = t.primary_inputs
let primary_outputs t = t.primary_outputs
let dffs t = t.dffs
let sources t = t.primary_inputs @ List.map fst t.dffs

let endpoints t =
  let candidates = t.primary_outputs @ List.map snd t.dffs in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun i ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.replace seen i ();
        true
      end)
    candidates

let fanout t i = t.fanouts.(i)
let topo_gates t = t.topo
let gates_by_level t = t.by_level
let level t i = t.levels.(i)
let depth t = t.depth

let gate_count t =
  Array.fold_left
    (fun acc d -> match d with Gate _ -> acc + 1 | Input | Dff_output _ -> acc)
    0 t.drivers

let count_gates_of_kind t kind =
  Array.fold_left
    (fun acc d ->
      match d with
      | Gate { kind = k; _ } when Spsta_logic.Gate_kind.equal k kind -> acc + 1
      | Gate _ | Input | Dff_output _ -> acc)
    0 t.drivers

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d PI, %d PO, %d DFF, %d gates, depth %d"
    (if t.name = "" then "<unnamed>" else t.name)
    (List.length t.primary_inputs) (List.length t.primary_outputs) (List.length t.dffs)
    (gate_count t) t.depth
