(** Gate-level sequential circuits in the ISCAS'89 style: primary inputs,
    primary outputs, D flip-flops, and combinational gates over named nets.

    For timing purposes flip-flop outputs are *timing sources* (they launch
    a cycle alongside the primary inputs, and the paper assigns them input
    statistics exactly like primary inputs) and flip-flop data inputs are
    *timing endpoints* alongside the primary outputs. *)

type id = int
(** Dense net identifier, [0 .. num_nets - 1]. *)

type driver =
  | Input  (** primary input *)
  | Dff_output of { data : id }  (** flip-flop Q; [data] is its D net *)
  | Gate of { kind : Spsta_logic.Gate_kind.t; inputs : id array }

type t

exception Invalid_circuit of string
(** Raised by {!Builder.finalize} on undriven nets, arity violations,
    duplicate drivers, or combinational cycles. *)

module Builder : sig
  type circuit := t
  type t

  val create : ?name:string -> unit -> t
  val add_input : t -> string -> unit
  val add_dff : t -> q:string -> d:string -> unit
  val add_gate : t -> output:string -> Spsta_logic.Gate_kind.t -> string list -> unit
  val add_output : t -> string -> unit
  val finalize : t -> circuit
  (** Validates and freezes the circuit; computes topological order,
      levels and fanout maps.  Raises {!Invalid_circuit}. *)
end

val name : t -> string
(** Circuit name ("" when not set). *)

val num_nets : t -> int
val net_name : t -> id -> string
val find : t -> string -> id option
val find_exn : t -> string -> id
(** Raises [Invalid_argument] with a message naming both the missing
    net and the circuit, e.g.
    ["Circuit.find_exn: no net \"nope\" in circuit \"s27\""]. *)

val driver : t -> id -> driver

val retype_gate : t -> id -> Spsta_logic.Gate_kind.t -> unit
(** Swap the logical function of the gate driving this net, in place —
    an ECO edit, deliberately {e not} semantics-preserving.  The input
    edges are unchanged, so topology, levels, fanout maps and
    topological order all remain valid; only analyses that consult the
    gate kind (timing via the cell library, logic evaluation) see the
    change.  Raises [Invalid_argument] if the net is not gate-driven or
    the existing fan-in violates the new kind's arity bounds. *)

val primary_inputs : t -> id list
val primary_outputs : t -> id list
val dffs : t -> (id * id) list
(** (q, d) pairs. *)

val sources : t -> id list
(** Primary inputs followed by flip-flop outputs: the nets that receive
    input statistics.  Precomputed at {!Builder.finalize}; O(1). *)

val endpoints : t -> id list
(** Primary outputs followed by flip-flop data nets (deduplicated):
    where critical-path statistics are read.  Precomputed at
    {!Builder.finalize}; O(1). *)

val fanout : t -> id -> id array
(** Gates (and flip-flops, via their data pin) driven by a net. *)

val topo_gates : t -> id array
(** All [Gate] nets in a valid combinational evaluation order. *)

val topo_position : t -> id -> int
(** Index of a gate net in {!topo_gates} (-1 for sources).  Lets sparse
    gate sets be replayed in exactly the sequential evaluation order by
    sorting on this key — the incremental engine's dirty cone is. *)

val gates_by_level : t -> id array array
(** {!topo_gates} grouped by {!level}, ascending, preserving topological
    order within each group.  Gates in one group depend only on earlier
    groups (and on sources), never on each other, so a group is a unit of
    safe concurrent evaluation.  Empty levels are omitted; concatenating
    the groups is a valid evaluation order covering every gate once. *)

type csr = {
  gate_net : id array;  (** = {!topo_gates}: gate [k] drives [gate_net.(k)] *)
  kind_code : int array;  (** {!Spsta_logic.Gate_kind.to_code} of gate [k] *)
  fanin_off : int array;
      (** length [num_gates + 1]; gate [k] reads
          [fanin.(fanin_off.(k)) .. fanin.(fanin_off.(k+1) - 1)] *)
  fanin : id array;  (** concatenated fan-in net ids, in declaration order *)
  level_off : int array;
      (** length [Array.length (gates_by_level t) + 1]; group [l] of
          {!gates_by_level} is gates [level_off.(l) .. level_off.(l+1) - 1] *)
  max_fanin : int;
}
(** Flat CSR view of the combinational gates, for kernels that walk the
    circuit as int arrays instead of chasing [driver] constructors. *)

val csr : t -> csr
(** Built once on first use and cached on the circuit; {!retype_gate}
    keeps the cached [kind_code] in sync.  Treat as read-only. *)

val level : t -> id -> int
(** Unit-delay logic level: 0 for sources, 1 + max(input levels) for
    gates. *)

val depth : t -> int
(** Maximum level over all nets (0 for a gate-free circuit). *)

val gate_count : t -> int
val count_gates_of_kind : t -> Spsta_logic.Gate_kind.t -> int

val pp_summary : Format.formatter -> t -> unit
(** One-line "name: #PI #PO #DFF #gates depth" summary. *)
