type profile = {
  name : string;
  n_inputs : int;
  n_outputs : int;
  n_dffs : int;
  n_gates : int;
  target_depth : int;
  seed : int;
}

module Rng = Spsta_util.Rng
module Gate_kind = Spsta_logic.Gate_kind

(* gate mix loosely modelled on ISCAS'89 circuits: mostly 2-input
   AND/OR-family gates with a healthy share of inverters *)
let kind_choices =
  [| (Gate_kind.And, 0.22); (Gate_kind.Nand, 0.16); (Gate_kind.Or, 0.18);
     (Gate_kind.Nor, 0.14); (Gate_kind.Not, 0.18); (Gate_kind.Buf, 0.02);
     (Gate_kind.Xor, 0.05); (Gate_kind.Xnor, 0.05) |]

(* hoisted: rebuilding the weight array per generated gate showed up at
   the million-gate profiles *)
let kind_weights = Array.map snd kind_choices

let pick_kind rng = fst kind_choices.(Rng.choose_index rng kind_weights)

(* Growable net-name pools, one per level.  Picks must be O(1): the old
   [string list] pools were converted to arrays on *every* pick, an
   O(gates) cost per gate — O(gates^2) generation that made the 100k/1M
   scale profiles unreachable.  Lists prepended, so list index [i] was
   the [len - 1 - i]-th insertion: [pick] keeps that mapping (and the
   level-0 pool is seeded in reverse) so every existing profile seed
   still generates the byte-identical netlist. *)
module Pool = struct
  type t = { mutable names : string array; mutable len : int }

  let create () = { names = [||]; len = 0 }

  let push t name =
    if t.len = Array.length t.names then begin
      let grown = Array.make (max 8 (2 * t.len)) name in
      Array.blit t.names 0 grown 0 t.len;
      t.names <- grown
    end;
    t.names.(t.len) <- name;
    t.len <- t.len + 1

  let len t = t.len

  (* element [i] in the old newest-first list order *)
  let nth t i = t.names.(t.len - 1 - i)

  let pick rng t = nth t (Rng.int rng t.len)
end

let pick_fanin rng kind =
  match kind with
  | Gate_kind.Not | Gate_kind.Buf -> 1
  | Gate_kind.And | Gate_kind.Nand | Gate_kind.Or | Gate_kind.Nor | Gate_kind.Xor
  | Gate_kind.Xnor ->
    let u = Rng.float rng in
    if u < 0.70 then 2 else if u < 0.95 then 3 else 4

let validate p =
  if p.n_inputs < 0 || p.n_dffs < 0 then invalid_arg "Generator: negative interface count";
  if p.n_inputs + p.n_dffs = 0 then invalid_arg "Generator: circuit needs at least one source";
  if p.n_outputs < 1 then invalid_arg "Generator: circuit needs at least one output";
  if p.target_depth < 1 then invalid_arg "Generator: target depth must be >= 1";
  if p.n_gates < p.target_depth then invalid_arg "Generator: gate budget below target depth"

let generate p =
  validate p;
  let rng = Rng.create ~seed:p.seed in
  let builder = Circuit.Builder.create ~name:p.name () in
  let input_names = List.init p.n_inputs (fun i -> Printf.sprintf "I%d" i) in
  let dff_q_names = List.init p.n_dffs (fun i -> Printf.sprintf "Q%d" i) in
  List.iter (Circuit.Builder.add_input builder) input_names;
  let sources = Array.of_list (input_names @ dff_q_names) in
  (* nets_at.(l) = names of nets whose unit-delay level is l; the level-0
     pool is pushed in reverse so [Pool.pick]'s newest-first indexing
     reproduces the historical source order *)
  let nets_at = Array.init (p.target_depth + 1) (fun _ -> Pool.create ()) in
  for i = Array.length sources - 1 downto 0 do
    Pool.push nets_at.(0) sources.(i)
  done;
  let any_net_below rng l =
    (* uniform over levels [0, l), then uniform within the level; biases
       toward higher levels are applied by callers choosing l *)
    let rec attempt tries =
      if tries = 0 then sources.(Rng.int rng (Array.length sources))
      else begin
        let lvl = Rng.int rng l in
        if Pool.len nets_at.(lvl) = 0 then attempt (tries - 1)
        else Pool.pick rng nets_at.(lvl)
      end
    in
    attempt 8
  in
  let net_at_level rng l =
    if Pool.len nets_at.(l) = 0 then any_net_below rng (l + 1)
    else Pool.pick rng nets_at.(l)
  in
  let gate_counter = ref 0 in
  (* same "N<k>" names as [Printf.sprintf "N%d"], minus the format
     interpreter: this runs a million times per scale-profile build *)
  let fresh_gate_name () =
    incr gate_counter;
    "N" ^ string_of_int !gate_counter
  in
  let emit_gate ~level kind inputs =
    let name = fresh_gate_name () in
    Circuit.Builder.add_gate builder ~output:name kind inputs;
    Pool.push nets_at.(level) name;
    name
  in
  (* depth spine: a chain of 2-input gates guaranteeing the target depth *)
  let spine_end = ref "" in
  for l = 1 to p.target_depth do
    let primary = if l = 1 then net_at_level rng 0 else !spine_end in
    let side = any_net_below rng l in
    let kind =
      (* spine gates are 2-input AND/OR family so the depth is also a
         sensitisable path under typical input statistics *)
      match Rng.int rng 4 with
      | 0 -> Gate_kind.And
      | 1 -> Gate_kind.Or
      | 2 -> Gate_kind.Nand
      | _ -> Gate_kind.Nor
    in
    spine_end := emit_gate ~level:l kind [ primary; side ]
  done;
  (* remaining gates: levels biased to the middle of the depth range *)
  let remaining = p.n_gates - p.target_depth in
  for _ = 1 to remaining do
    let kind = pick_kind rng in
    let fanin = pick_fanin rng kind in
    let l = 1 + Rng.int rng p.target_depth in
    let first = net_at_level rng (l - 1) in
    let others = List.init (fanin - 1) (fun _ -> any_net_below rng l) in
    let inputs = first :: others in
    (* reject degenerate gates whose inputs repeat a net (common with tiny
       source pools): retry with distinct-ish choice, else allow for
       1-input kinds only *)
    let distinct = List.sort_uniq compare inputs in
    let inputs = if List.length distinct = List.length inputs then inputs else distinct in
    let inputs = if List.length inputs < Gate_kind.min_arity kind then [ List.hd inputs ] else inputs in
    let kind, inputs =
      if List.length inputs = 1 then ((if Rng.bool rng then Gate_kind.Not else Gate_kind.Buf), inputs)
      else (kind, inputs)
    in
    ignore (emit_gate ~level:l kind inputs)
  done;
  (* primary outputs: spine end first, then deepest-available gates.
     Built deepest level first, newest-first within a level — the order
     the old list concatenation produced — with one linear pass instead
     of a quadratic [acc @ nets_at.(l)] fold *)
  let deep_nets =
    let total = ref 0 in
    for l = 1 to p.target_depth do
      total := !total + Pool.len nets_at.(l)
    done;
    let out = Array.make (max 1 !total) "" in
    let w = ref 0 in
    for l = p.target_depth downto 1 do
      let pool = nets_at.(l) in
      for i = 0 to Pool.len pool - 1 do
        out.(!w) <- Pool.nth pool i;
        incr w
      done
    done;
    Array.sub out 0 !total
  in
  Circuit.Builder.add_output builder !spine_end;
  let used = Hashtbl.create 16 in
  Hashtbl.replace used !spine_end ();
  let pick_endpoint () =
    let n = Array.length deep_nets in
    let rec attempt tries =
      let candidate = deep_nets.(Rng.int rng (min n (max 1 (n / 2)))) in
      if Hashtbl.mem used candidate && tries > 0 then attempt (tries - 1) else candidate
    in
    let c = attempt 16 in
    Hashtbl.replace used c ();
    c
  in
  for _ = 2 to p.n_outputs do
    Circuit.Builder.add_output builder (pick_endpoint ())
  done;
  List.iter (fun q -> Circuit.Builder.add_dff builder ~q ~d:(pick_endpoint ())) dff_q_names;
  Circuit.Builder.finalize builder

let iscas89_profiles =
  [
    { name = "s27"; n_inputs = 4; n_outputs = 1; n_dffs = 3; n_gates = 10; target_depth = 4; seed = 2701 };
    { name = "s208"; n_inputs = 10; n_outputs = 1; n_dffs = 8; n_gates = 96; target_depth = 8; seed = 20801 };
    { name = "s298"; n_inputs = 3; n_outputs = 6; n_dffs = 14; n_gates = 119; target_depth = 6; seed = 29801 };
    { name = "s344"; n_inputs = 9; n_outputs = 11; n_dffs = 15; n_gates = 160; target_depth = 9; seed = 34401 };
    { name = "s349"; n_inputs = 9; n_outputs = 11; n_dffs = 15; n_gates = 161; target_depth = 9; seed = 34901 };
    { name = "s382"; n_inputs = 3; n_outputs = 6; n_dffs = 21; n_gates = 158; target_depth = 7; seed = 38201 };
    { name = "s386"; n_inputs = 7; n_outputs = 7; n_dffs = 6; n_gates = 159; target_depth = 9; seed = 38601 };
    { name = "s526"; n_inputs = 3; n_outputs = 6; n_dffs = 21; n_gates = 193; target_depth = 6; seed = 52601 };
    { name = "s1196"; n_inputs = 14; n_outputs = 14; n_dffs = 18; n_gates = 529; target_depth = 14; seed = 119601 };
    { name = "s1238"; n_inputs = 14; n_outputs = 14; n_dffs = 18; n_gates = 508; target_depth = 13; seed = 123801 };
  ]

let extended_profiles =
  [
    { name = "s5378"; n_inputs = 35; n_outputs = 49; n_dffs = 179; n_gates = 2779; target_depth = 12; seed = 537801 };
    { name = "s9234"; n_inputs = 36; n_outputs = 39; n_dffs = 211; n_gates = 5597; target_depth = 14; seed = 923401 };
    { name = "s13207"; n_inputs = 62; n_outputs = 152; n_dffs = 638; n_gates = 7951; target_depth = 14; seed = 1320701 };
    { name = "s15850"; n_inputs = 77; n_outputs = 150; n_dffs = 534; n_gates = 9772; target_depth = 16; seed = 1585001 };
  ]

(* Scale profiles for the million-gate roadmap: wide mid-depth levels
   (~3k gates/level at c100k, ~21k at c1000k) so the levelized engine
   has real parallel width, with register counts in ISCAS proportion.
   Generation is linear in n_gates (see [Pool]); both profiles are
   seeded, so every bench/test run sees the identical netlist. *)
let scale_profiles =
  [
    { name = "c100k"; n_inputs = 64; n_outputs = 64; n_dffs = 512; n_gates = 100_000; target_depth = 32; seed = 100_001 };
    { name = "c1000k"; n_inputs = 128; n_outputs = 128; n_dffs = 2048; n_gates = 1_000_000; target_depth = 48; seed = 1_000_001 };
  ]

let find_profile name =
  List.find_opt
    (fun p -> p.name = name)
    (iscas89_profiles @ extended_profiles @ scale_profiles)
