(** Seeded synthetic circuit generator.

    The original ISCAS'89 netlists are not redistributable inside this
    repository (see DESIGN.md, substitution 1), so the experiments run on
    deterministic random logic whose *interface and size profile* (primary
    input/output counts, flip-flop count, gate count, gate mix, logic
    depth) match each published benchmark.  The analyses under test only
    see netlist structure plus input statistics, so this preserves the
    behaviours the paper measures: deep MIN/MAX chains, reconvergent
    fanout, mixed gate types. *)

type profile = {
  name : string;
  n_inputs : int;  (** primary inputs *)
  n_outputs : int;  (** primary outputs *)
  n_dffs : int;
  n_gates : int;  (** combinational gates, flip-flops excluded *)
  target_depth : int;  (** desired unit-delay logic depth (>= 1) *)
  seed : int;
}

val generate : profile -> Circuit.t
(** Deterministic in [profile] (including [seed]).  The result is a valid
    circuit with exactly the requested interface counts and gate count;
    its depth is at least [target_depth] (a dedicated depth-spine
    guarantees it) and the spine output feeds a primary output, so
    critical paths reach the requested depth.
    Raises [Invalid_argument] on nonsensical profiles (e.g. no sources,
    or [n_gates < target_depth]). *)

val iscas89_profiles : profile list
(** Size profiles of the ten ISCAS'89 circuits used in the paper (s27 is
    included for completeness alongside the nine evaluated ones), with
    fixed seeds so the whole experiment suite is reproducible. *)

val extended_profiles : profile list
(** Larger ISCAS'89 profiles (s5378 .. s15850) beyond the paper's
    evaluation set, for scaling studies. *)

val scale_profiles : profile list
(** Seeded synthetic scale profiles: [c100k] (100,000 gates, depth 32)
    and [c1000k] (1,000,000 gates, depth 48), with wide mid-depth levels
    so the levelized engine has real parallel width.  Generation is
    linear in the gate count. *)

val find_profile : string -> profile option
(** Look up a profile by name (covering all three lists), e.g. "s344"
    or "c100k". *)
