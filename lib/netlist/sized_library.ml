module Gate_kind = Spsta_logic.Gate_kind

type t = {
  base : Cell_library.t;
  drives : float array;
  delay_scale : drive:float -> float;
  area_scale : drive:float -> float;
  cap_scale : drive:float -> float;
  area_base : Gate_kind.t -> float;
  cap_base : Gate_kind.t -> float;
}

let finite x = Float.is_finite x

(* Unit-drive area per kind, in arbitrary "grid" units: complexity-ordered
   like the default library's delays (inverter smallest, XOR largest). *)
let default_area_base = function
  | Gate_kind.Not -> 1.0
  | Gate_kind.Buf -> 1.2
  | Gate_kind.Nand -> 1.5
  | Gate_kind.Nor -> 1.5
  | Gate_kind.And -> 2.0
  | Gate_kind.Or -> 2.0
  | Gate_kind.Xor -> 3.0
  | Gate_kind.Xnor -> 3.0

(* Unit-drive switched capacitance, in femtofarads: tracks area (gate
   capacitance is proportional to transistor width). *)
let default_cap_base kind = 2.0 *. default_area_base kind

let make ?(intrinsic = 0.3) ?delay_scale ?area_scale ?cap_scale
    ?(area_base = default_area_base) ?(cap_base = default_cap_base) ~drives base =
  if Array.length drives = 0 then invalid_arg "Sized_library.make: empty drive ladder";
  Array.iter
    (fun d ->
      if not (finite d) || d <= 0.0 then
        invalid_arg "Sized_library.make: drive strengths must be finite and positive")
    drives;
  for k = 1 to Array.length drives - 1 do
    if drives.(k) <= drives.(k - 1) then
      invalid_arg "Sized_library.make: drive strengths must be strictly increasing"
  done;
  if not (finite intrinsic) || intrinsic < 0.0 || intrinsic > 1.0 then
    invalid_arg "Sized_library.make: intrinsic fraction must lie in [0, 1]";
  let delay_scale =
    match delay_scale with
    | Some f -> f
    | None -> fun ~drive -> intrinsic +. ((1.0 -. intrinsic) /. drive)
  in
  let area_scale = match area_scale with Some f -> f | None -> fun ~drive -> drive in
  let cap_scale = match cap_scale with Some f -> f | None -> fun ~drive -> drive in
  { base; drives = Array.copy drives; delay_scale; area_scale; cap_scale; area_base; cap_base }

let family ?(sizes = 4) ?(ratio = 1.5) ?intrinsic base =
  if sizes < 1 then invalid_arg "Sized_library.family: sizes must be at least 1";
  if not (finite ratio) || ratio <= 1.0 then
    invalid_arg "Sized_library.family: ratio must exceed 1";
  let drives = Array.init sizes (fun k -> ratio ** float_of_int k) in
  make ?intrinsic ~drives base

let default = family Cell_library.default

let base t = t.base
let num_sizes t = Array.length t.drives

let drive t k =
  if k < 0 || k >= Array.length t.drives then
    invalid_arg
      (Printf.sprintf "Sized_library.drive: size %d outside [0, %d)" k (Array.length t.drives));
  t.drives.(k)

let delay t ~size kind ~fanin direction =
  Cell_library.delay t.base kind ~fanin direction *. t.delay_scale ~drive:(drive t size)

let rise_fall_of t ~size kind ~fanin =
  (delay t ~size kind ~fanin `Rise, delay t ~size kind ~fanin `Fall)

let mean_delay t ~size kind ~fanin =
  let r, f = rise_fall_of t ~size kind ~fanin in
  (r +. f) /. 2.0

(* Fan-in widens the cell: extra input stacks add ~25% of the unit area
   each, matching the library's per-input delay increments in spirit. *)
let fanin_factor fanin = 1.0 +. (0.25 *. float_of_int (max 0 (fanin - 1)))

let area t ~size kind ~fanin =
  t.area_base kind *. fanin_factor fanin *. t.area_scale ~drive:(drive t size)

let capacitance t ~size kind ~fanin =
  t.cap_base kind *. fanin_factor fanin *. t.cap_scale ~drive:(drive t size)

(* ---------- per-circuit assignments ---------- *)

type assignment = int array

let initial circuit = Array.make (Circuit.num_nets circuit) 0

let uniform t circuit ~size =
  if size < 0 || size >= num_sizes t then
    invalid_arg
      (Printf.sprintf "Sized_library.uniform: size %d outside [0, %d)" size (num_sizes t));
  (* non-gate entries stay 0, per the assignment convention *)
  Array.init (Circuit.num_nets circuit) (fun i ->
      match Circuit.driver circuit i with
      | Circuit.Gate _ -> size
      | Circuit.Input | Circuit.Dff_output _ -> 0)

let copy = Array.copy

let size_of (asg : assignment) id = asg.(id)

let gate_of circuit id ~what =
  match Circuit.driver circuit id with
  | Circuit.Gate { kind; inputs } -> (kind, Array.length inputs)
  | Circuit.Input | Circuit.Dff_output _ ->
    invalid_arg (Printf.sprintf "Sized_library.%s: net is not gate-driven" what)

let delay_rf t circuit (asg : assignment) id =
  let kind, fanin = gate_of circuit id ~what:"delay_rf" in
  rise_fall_of t ~size:asg.(id) kind ~fanin

let gate_area t circuit (asg : assignment) id =
  let kind, fanin = gate_of circuit id ~what:"gate_area" in
  area t ~size:asg.(id) kind ~fanin

let gate_capacitance t circuit (asg : assignment) id =
  let kind, fanin = gate_of circuit id ~what:"gate_capacitance" in
  capacitance t ~size:asg.(id) kind ~fanin

let total_over f t circuit asg =
  Array.fold_left (fun acc g -> acc +. f t circuit asg g) 0.0 (Circuit.topo_gates circuit)

let total_area t circuit asg = total_over gate_area t circuit asg
let total_capacitance t circuit asg = total_over gate_capacitance t circuit asg
