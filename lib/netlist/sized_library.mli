(** Size groups over a characterised cell library: for every logical
    function (gate kind x fan-in), a family of sized variants indexed by
    drive strength.  This is the cell-selection space of statistical
    gate sizing (Agarwal/Chopra/Blaauw, "Statistical Timing Based
    Optimization using Gate Sizing"): upsizing a gate buys delay at the
    cost of area and switched capacitance.

    A family is derived from an existing {!Cell_library} by a geometric
    ladder of drive strengths.  The default scaling laws are the usual
    first-order model

    - delay(k)  = base_delay * (intrinsic + (1 - intrinsic) / drive_k)
      — non-increasing in drive strength,
    - area(k)   = base_area * drive_k — non-decreasing,
    - cap(k)    = base_cap  * drive_k — non-decreasing,

    so stronger variants are never slower and never smaller.  Custom
    scaling hooks may violate those monotonicity laws; the lint rule
    [size-group] ({!Spsta_lint.Lint}) checks them over every (kind,
    fan-in) pair a circuit actually instantiates.

    A {!assignment} maps every net to the size index of its driving
    gate; it is the mutable state a sizing loop edits in place (see
    {!Transform.resize_gate}). *)

type t

val make :
  ?intrinsic:float ->
  ?delay_scale:(drive:float -> float) ->
  ?area_scale:(drive:float -> float) ->
  ?cap_scale:(drive:float -> float) ->
  ?area_base:(Spsta_logic.Gate_kind.t -> float) ->
  ?cap_base:(Spsta_logic.Gate_kind.t -> float) ->
  drives:float array ->
  Cell_library.t ->
  t
(** [drives] are the drive strengths of the size group, smallest first.
    Raises [Invalid_argument] if [drives] is empty, non-finite,
    non-positive, or not strictly increasing, or if [intrinsic] (default
    0.3) lies outside [0, 1].  The scaling hooks default to the laws
    above; they are trusted here and audited by lint rule
    [size-group]. *)

val family : ?sizes:int -> ?ratio:float -> ?intrinsic:float -> Cell_library.t -> t
(** The generator: an N-size family ([sizes], default 4) on a geometric
    drive ladder [1, ratio, ratio^2, ...] ([ratio] default 1.5) with the
    default scaling laws.  Raises [Invalid_argument] if [sizes < 1] or
    [ratio <= 1]. *)

val default : t
(** [family Cell_library.default]: four sizes, ratio 1.5. *)

val base : t -> Cell_library.t
val num_sizes : t -> int
val drive : t -> int -> float
(** Drive strength of a size index.  Raises [Invalid_argument] when the
    index is outside [0, num_sizes). *)

val delay :
  t -> size:int -> Spsta_logic.Gate_kind.t -> fanin:int -> [ `Rise | `Fall ] -> float

val rise_fall_of : t -> size:int -> Spsta_logic.Gate_kind.t -> fanin:int -> float * float

val mean_delay : t -> size:int -> Spsta_logic.Gate_kind.t -> fanin:int -> float
(** Average of rise and fall at the given size. *)

val area : t -> size:int -> Spsta_logic.Gate_kind.t -> fanin:int -> float
(** Cell area (arbitrary units) of the sized variant. *)

val capacitance : t -> size:int -> Spsta_logic.Gate_kind.t -> fanin:int -> float
(** Switched capacitance of the sized variant — the per-toggle dynamic
    power proxy ({!Spsta_power.Power_model} supplies the V^2 f scale). *)

(** {2 Per-circuit size assignments} *)

type assignment = int array
(** [assignment.(id)] is the size index of the gate driving net [id];
    entries of non-gate nets are ignored (kept at 0). *)

val initial : Circuit.t -> assignment
(** Every gate at size 0 — the smallest, slowest variant. *)

val uniform : t -> Circuit.t -> size:int -> assignment
(** Every gate at the same size index — [size = num_sizes - 1] is the
    fastest, largest starting point of a power-recovery sizing run.
    Raises [Invalid_argument] when the index is outside
    [0, num_sizes). *)

val copy : assignment -> assignment

val size_of : assignment -> Circuit.id -> int

val delay_rf :
  t -> Circuit.t -> assignment -> Circuit.id -> float * float
(** (rise, fall) delay of the gate driving this net at its assigned
    size.  Raises [Invalid_argument] if the net is not gate-driven or
    its assigned size is outside the family. *)

val gate_area : t -> Circuit.t -> assignment -> Circuit.id -> float
val gate_capacitance :
  t -> Circuit.t -> assignment -> Circuit.id -> float

val total_area : t -> Circuit.t -> assignment -> float
(** Sum of {!gate_area} over every gate. *)

val total_capacitance : t -> Circuit.t -> assignment -> float
(** Sum of {!gate_capacitance} over every gate. *)
