module Gate_kind = Spsta_logic.Gate_kind

let base_kind = function
  | Gate_kind.And | Gate_kind.Nand -> Gate_kind.And
  | Gate_kind.Or | Gate_kind.Nor -> Gate_kind.Or
  | Gate_kind.Xor | Gate_kind.Xnor -> Gate_kind.Xor
  | Gate_kind.Not | Gate_kind.Buf -> Gate_kind.Buf

let decompose_gates ?(max_fanin = 2) circuit =
  if max_fanin < 2 then invalid_arg "Transform.decompose_gates: max_fanin must be >= 2";
  let b = Builder_of_circuit.builder_with_interface circuit in
  let fresh = ref 0 in
  let fresh_name () =
    incr fresh;
    Printf.sprintf "_dec%d" !fresh
  in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        let names = Array.to_list (Array.map (Circuit.net_name circuit) inputs) in
        let out = Circuit.net_name circuit g in
        if List.length names <= max_fanin then Circuit.Builder.add_gate b ~output:out kind names
        else begin
          let base = base_kind kind in
          (* reduce in rounds of [max_fanin]-wide groups until at most
             max_fanin operands remain, then emit the final gate (with
             the original kind, restoring any inversion) at [out] *)
          let rec reduce operands =
            if List.length operands <= max_fanin then operands
            else begin
              let rec group acc current = function
                | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
                | x :: rest ->
                  if List.length current = max_fanin then group (List.rev current :: acc) [ x ] rest
                  else group acc (x :: current) rest
              in
              let groups = group [] [] operands in
              let next =
                List.map
                  (fun members ->
                    match members with
                    | [ single ] -> single
                    | _ ->
                      let name = fresh_name () in
                      Circuit.Builder.add_gate b ~output:name base members;
                      name)
                  groups
              in
              reduce next
            end
          in
          let final_operands = reduce names in
          let final_kind =
            match final_operands with
            | [ _ ] ->
              (* single operand left: finish with NOT/BUF per inversion *)
              if Gate_kind.inverting kind then Gate_kind.Not else Gate_kind.Buf
            | _ -> kind
          in
          Circuit.Builder.add_gate b ~output:out final_kind final_operands
        end
      | Circuit.Input | Circuit.Dff_output _ -> ())
    (Circuit.topo_gates circuit);
  Circuit.Builder.finalize b

let strip_buffers circuit =
  (* resolve each net to its non-buffer driver transitively *)
  let keep = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace keep o ()) (Circuit.primary_outputs circuit);
  List.iter (fun (_, d) -> Hashtbl.replace keep d ()) (Circuit.dffs circuit);
  let rec resolve id =
    match Circuit.driver circuit id with
    | Circuit.Gate { kind = Gate_kind.Buf; inputs } when not (Hashtbl.mem keep id) ->
      resolve inputs.(0)
    | Circuit.Gate _ | Circuit.Input | Circuit.Dff_output _ -> id
  in
  let name id = Circuit.net_name circuit (resolve id) in
  let b = Builder_of_circuit.builder_with_interface circuit in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind = Gate_kind.Buf; _ } when not (Hashtbl.mem keep g) -> ()
      | Circuit.Gate { kind; inputs } ->
        Circuit.Builder.add_gate b ~output:(Circuit.net_name circuit g) kind
          (Array.to_list (Array.map name inputs))
      | Circuit.Input | Circuit.Dff_output _ -> ())
    (Circuit.topo_gates circuit);
  Circuit.Builder.finalize b

let resize_gate sized circuit (asg : Sized_library.assignment) id ~size =
  (match Circuit.driver circuit id with
  | Circuit.Gate _ -> ()
  | Circuit.Input | Circuit.Dff_output _ ->
    invalid_arg "Transform.resize_gate: net is not gate-driven");
  if size < 0 || size >= Sized_library.num_sizes sized then
    invalid_arg
      (Printf.sprintf "Transform.resize_gate: size %d outside [0, %d)" size
         (Sized_library.num_sizes sized));
  if asg.(id) = size then []
  else begin
    asg.(id) <- size;
    [ id ]
  end

let retype_gate circuit id ~kind =
  match Circuit.driver circuit id with
  | Circuit.Gate { kind = old; _ } ->
    if Gate_kind.equal old kind then []
    else begin
      Circuit.retype_gate circuit id kind;
      [ id ]
    end
  | Circuit.Input | Circuit.Dff_output _ ->
    invalid_arg "Transform.retype_gate: net is not gate-driven"

let statistics circuit =
  let max_fanout =
    let worst = ref 0 in
    for id = 0 to Circuit.num_nets circuit - 1 do
      worst := max !worst (Array.length (Circuit.fanout circuit id))
    done;
    !worst
  in
  [
    ("nets", Circuit.num_nets circuit);
    ("primary_inputs", List.length (Circuit.primary_inputs circuit));
    ("primary_outputs", List.length (Circuit.primary_outputs circuit));
    ("flip_flops", List.length (Circuit.dffs circuit));
    ("gates", Circuit.gate_count circuit);
    ("depth", Circuit.depth circuit);
    ("max_fanout", max_fanout);
  ]
  @ List.map
      (fun kind ->
        (String.lowercase_ascii (Gate_kind.to_string kind), Circuit.count_gates_of_kind circuit kind))
      Gate_kind.all
