(** Structural netlist transformations.

    {!decompose_gates} and {!strip_buffers} are semantics-preserving
    rewrites (checked by property tests): the transformed circuit
    computes the same Boolean function on every net that survives, which
    also pins down the probabilistic analyses — signal probabilities are
    invariant, and unit-delay arrival times scale with the structural
    depth in a predictable way.  {!resize_gate} and {!retype_gate} are
    instead ECO edits: in-place mutations whose dirty net set feeds the
    incremental analyzers. *)

val decompose_gates : ?max_fanin:int -> Circuit.t -> Circuit.t
(** Rewrite every gate with more than [max_fanin] (default 2) inputs
    into a balanced tree of [max_fanin]-input gates of the base
    associative kind, with the inversion (for NAND/NOR/XNOR) applied at
    the root.  Net names of original gates are preserved; helper nets get
    fresh names. *)

val strip_buffers : Circuit.t -> Circuit.t
(** Remove BUF gates by reconnecting their fanout to their input.
    Buffers that drive primary outputs or flip-flops are kept (the name
    is part of the interface). *)

val resize_gate :
  Sized_library.t -> Circuit.t -> Sized_library.assignment -> Circuit.id -> size:int ->
  Circuit.id list
(** Swap the cell driving this net for the [size]-indexed variant of its
    size group, in place, and return the dirty net set to hand to the
    incremental analyzers ([Ssta.update_rf] / [Propagate.update]).  The
    delay model is load-independent, so only the gate's own output net is
    dirtied; returns [[]] when the gate already has that size.  Raises
    [Invalid_argument] if the net is not gate-driven or [size] is outside
    the family. *)

val retype_gate :
  Circuit.t -> Circuit.id -> kind:Spsta_logic.Gate_kind.t -> Circuit.id list
(** Swap the logical function of the gate driving this net, in place
    ({!Circuit.retype_gate}), and return the dirty net set for the
    incremental analyzers; returns [[]] when the gate already has that
    kind.  An ECO edit, {e not} semantics-preserving.  Raises
    [Invalid_argument] if the net is not gate-driven or the fan-in
    violates the new kind's arity bounds. *)

val statistics : Circuit.t -> (string * int) list
(** Named structural counters (nets, gates per kind, fanout max, ...)
    for reports. *)
