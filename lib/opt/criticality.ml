module Circuit = Spsta_netlist.Circuit
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark
module Ssta = Spsta_ssta.Ssta

type t = {
  circuit : Circuit.t;
  arrivals : Normal.t array;
  chip : Normal.t;
  crit : float array;
  required : float array;
}

(* P(element i is the max of the list): tightness of arrival i against
   the Clark MAX of all the others, via prefix/suffix max arrays so the
   whole split is O(n) Clark steps. *)
let selection_probs (arrivals : Normal.t array) =
  let n = Array.length arrivals in
  if n = 1 then [| 1.0 |]
  else begin
    let prefix = Array.make n arrivals.(0) in
    for i = 1 to n - 1 do
      prefix.(i) <- Clark.max_normal prefix.(i - 1) arrivals.(i)
    done;
    let suffix = Array.make n arrivals.(n - 1) in
    for i = n - 2 downto 0 do
      suffix.(i) <- Clark.max_normal arrivals.(i) suffix.(i + 1)
    done;
    let raw =
      Array.init n (fun i ->
          let others =
            if i = 0 then suffix.(1)
            else if i = n - 1 then prefix.(n - 2)
            else Clark.max_normal prefix.(i - 1) suffix.(i + 1)
          in
          Clark.tightness arrivals.(i) others)
    in
    (* The events are exhaustive but Clark is approximate: renormalise
       so the split conserves the parent's criticality exactly. *)
    let total = Array.fold_left ( +. ) 0.0 raw in
    if total > 0.0 then Array.map (fun p -> p /. total) raw
    else Array.make n (1.0 /. float_of_int n)
  end

let of_arrivals circuit ~arrival =
  let n = Circuit.num_nets circuit in
  let arrivals = Array.init n arrival in
  let endpoints = Array.of_list (Circuit.endpoints circuit) in
  if Array.length endpoints = 0 then
    invalid_arg "Criticality.of_arrivals: circuit has no endpoints";
  let endpoint_arrivals = Array.map (fun e -> arrivals.(e)) endpoints in
  let chip = Clark.max_normal_many (Array.to_list endpoint_arrivals) in
  let crit = Array.make n 0.0 in
  let split = selection_probs endpoint_arrivals in
  Array.iteri (fun i e -> crit.(e) <- crit.(e) +. split.(i)) endpoints;
  (* Backward pass: distribute each gate's criticality over its fanin by
     the per-input selection probabilities.  topo_gates is forward
     topological, so the reverse sweep sees every gate after all its
     fanout. *)
  let gates = Circuit.topo_gates circuit in
  for k = Array.length gates - 1 downto 0 do
    let g = gates.(k) in
    let c = crit.(g) in
    if c > 0.0 then
      match Circuit.driver circuit g with
      | Circuit.Gate { inputs; _ } ->
        let split = selection_probs (Array.map (fun i -> arrivals.(i)) inputs) in
        Array.iteri (fun i input -> crit.(input) <- crit.(input) +. (c *. split.(i))) inputs
      | Circuit.Input | Circuit.Dff_output _ -> assert false
  done;
  (* Mean-based required times: endpoints owe the chip-delay mean; a
     gate's effective mean delay is its mean arrival minus the latest
     mean over its inputs. *)
  let required = Array.make n infinity in
  Array.iter
    (fun e -> required.(e) <- Float.min required.(e) (Normal.mean chip))
    endpoints;
  for k = Array.length gates - 1 downto 0 do
    let g = gates.(k) in
    match Circuit.driver circuit g with
    | Circuit.Gate { inputs; _ } ->
      let latest_in =
        Array.fold_left
          (fun acc i -> Float.max acc (Normal.mean arrivals.(i)))
          neg_infinity inputs
      in
      let d = Normal.mean arrivals.(g) -. latest_in in
      Array.iter
        (fun i -> required.(i) <- Float.min required.(i) (required.(g) -. d))
        inputs
    | Circuit.Input | Circuit.Dff_output _ -> assert false
  done;
  { circuit; arrivals; chip; crit; required }

let settle_of_ssta (a : Ssta.arrival) = Clark.max_normal a.Ssta.rise a.Ssta.fall

let of_ssta result =
  let circuit = Ssta.circuit_of result in
  of_arrivals circuit ~arrival:(fun id -> settle_of_ssta (Ssta.arrival result id))

let mixture_normal (mr, sr, pr) (mf, sf, pf) =
  let p = pr +. pf in
  if p <= 0.0 then Normal.make ~mu:0.0 ~sigma:0.0
  else begin
    let mu = ((pr *. mr) +. (pf *. mf)) /. p in
    let second =
      ((pr *. ((sr *. sr) +. (mr *. mr))) +. (pf *. ((sf *. sf) +. (mf *. mf)))) /. p
    in
    Normal.make ~mu ~sigma:(sqrt (Float.max 0.0 (second -. (mu *. mu))))
  end

let of_transition_stats circuit ~stats =
  of_arrivals circuit ~arrival:(fun id ->
      mixture_normal (stats id `Rise) (stats id `Fall))

let circuit t = t.circuit
let chip_delay t = t.chip
let quantile t p = Normal.quantile t.chip p

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let criticality t id = clamp01 t.crit.(id)
let slack t id = t.required.(id) -. Normal.mean t.arrivals.(id)

let ranked t =
  Circuit.topo_gates t.circuit |> Array.to_list
  |> List.map (fun g -> (g, clamp01 t.crit.(g)))
  |> List.stable_sort (fun (g1, c1) (g2, c2) ->
         match compare c2 c1 with 0 -> compare g1 g2 | n -> n)
