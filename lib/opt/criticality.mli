(** Per-gate statistical criticality and slack — the analysis side of
    statistical gate sizing (Agarwal/Chopra/Blaauw).

    The criticality of a net is the probability that it lies on the
    statistically critical path: 1 at the chip level (some endpoint
    always sets the chip delay among transitioning endpoints), Clark
    tightness probabilities split it across endpoints, and a reverse
    topological pass distributes each gate's criticality over its fanin
    by per-input tightness.  A net feeding several critical fanouts
    accumulates their contributions, so criticalities along a fanout
    tree sum rather than average — the standard criticality calculus.

    The module is domain-agnostic: it consumes one normal settle-time
    arrival per net, with adapters from the SSTA result
    ({!of_ssta}) and from any SPSTA analyzer's per-direction transition
    statistics ({!of_transition_stats}) — moment and grid backends
    alike. *)

type t

val of_arrivals :
  Spsta_netlist.Circuit.t ->
  arrival:(Spsta_netlist.Circuit.id -> Spsta_dist.Normal.t) ->
  t
(** [arrival] is the settle-time distribution of every net (both
    transition directions folded in).  Raises [Invalid_argument] if the
    circuit has no endpoints. *)

val of_ssta : Spsta_ssta.Ssta.result -> t
(** Settle time per net = Clark MAX of the rise and fall arrivals. *)

val of_transition_stats :
  Spsta_netlist.Circuit.t ->
  stats:
    (Spsta_netlist.Circuit.id ->
    [ `Rise | `Fall ] ->
    float * float * float) ->
  t
(** Adapter for {!Spsta_core.Analyzer.Make.transition_stats}: [stats]
    returns (mean, stddev, occurrence probability) per direction.  The
    settle normal is the probability-weighted mixture moment-match of
    the two directions; nets that never transition get a point mass at
    time 0 and fall out of the criticality ranking naturally. *)

val circuit : t -> Spsta_netlist.Circuit.t

val chip_delay : t -> Spsta_dist.Normal.t
(** Clark MAX over all endpoint settle arrivals. *)

val quantile : t -> float -> float
(** Quantile of {!chip_delay} — the sizing objective at a percentile. *)

val criticality : t -> Spsta_netlist.Circuit.id -> float
(** P(net on the statistically critical path), in [0, 1] up to Clark
    approximation error (clamped). *)

val slack : t -> Spsta_netlist.Circuit.id -> float
(** Mean-based slack: required time (backward min over fanout, seeded
    with the chip-delay mean at endpoints) minus mean arrival. *)

val ranked : t -> (Spsta_netlist.Circuit.id * float) list
(** Gate-driven nets sorted by criticality, descending; ties break on
    net id (ascending) so the order is bit-deterministic. *)
