module Circuit = Spsta_netlist.Circuit
module Sized_library = Spsta_netlist.Sized_library
module Transform = Spsta_netlist.Transform
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark
module Ssta = Spsta_ssta.Ssta
module Transition_density = Spsta_power.Transition_density
module Input_spec = Spsta_sim.Input_spec

type config = {
  quantile : float;
  target : float option;
  area_budget : float option;
  max_moves : int;
  candidates : int;
  downsize_threshold : float;
}

let default_config =
  {
    quantile = 0.99;
    target = None;
    area_budget = None;
    max_moves = 400;
    candidates = 8;
    downsize_threshold = 0.01;
  }

type move = {
  net : Circuit.id;
  direction : [ `Up | `Down ];
  from_size : int;
  to_size : int;
  objective_after : float;
  area_after : float;
}

type report = {
  moves : move list;
  evaluations : int;
  pruned : int;
  objective_before : float;
  objective_after : float;
  area_before : float;
  area_after : float;
  capacitance_before : float;
  capacitance_after : float;
  yield_before : (float * float) list;
  yield_after : (float * float) list;
  assignment : Sized_library.assignment;
}

let validate config =
  if not (config.quantile > 0.0 && config.quantile < 1.0) then
    invalid_arg "Sizer: quantile must lie in (0, 1)";
  if config.max_moves < 0 then invalid_arg "Sizer: max_moves must be non-negative";
  if config.candidates < 1 then invalid_arg "Sizer: candidates must be at least 1";
  (match config.target with
  | Some t when not (t > 0.0) -> invalid_arg "Sizer: target must be positive"
  | _ -> ());
  match config.area_budget with
  | Some a when not (a > 0.0) -> invalid_arg "Sizer: area_budget must be positive"
  | _ -> ()

let settle (a : Ssta.arrival) = Clark.max_normal a.Ssta.rise a.Ssta.fall

let chip_normal ~endpoints result =
  Clark.max_normal_many (List.map (fun e -> settle (Ssta.arrival result e)) endpoints)

let yield_points = [ 0.5; 0.9; 0.95; 0.99; 0.999 ]

let yield_curve chip = List.map (fun p -> (p, Normal.quantile chip p)) yield_points

(* First [k] elements satisfying [f]; the candidate lists are already
   ranked, so this is "the top of the list, skipping rejects". *)
let rec take_where k f = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> if f x then x :: take_where (k - 1) f rest else take_where k f rest

let run ?(config = default_config) ?check ?initial ?prune sized circuit =
  validate config;
  let endpoints = Circuit.endpoints circuit in
  if endpoints = [] then invalid_arg "Sizer.run: circuit has no endpoints";
  let top = Sized_library.num_sizes sized - 1 in
  let asg =
    match initial with
    | None -> Sized_library.initial circuit
    | Some given ->
      if Array.length given <> Circuit.num_nets circuit then
        invalid_arg "Sizer.run: initial assignment length differs from the net count";
      Array.iter
        (fun s ->
          if s < 0 || s > top then
            invalid_arg "Sizer.run: initial assignment has a size outside the family")
        given;
      Sized_library.copy given
  in
  let delay_rf id = Sized_library.delay_rf sized circuit asg id in
  let objective result = Normal.quantile (chip_normal ~endpoints result) config.quantile in
  let result = ref (Ssta.analyze_rf ~delay_rf ?check circuit) in
  let evaluations = ref 0 in
  let phi = ref (objective !result) in
  let area = ref (Sized_library.total_area sized circuit asg) in
  let objective_before = !phi in
  let area_before = !area in
  let capacitance_before = Sized_library.total_capacitance sized circuit asg in
  let yield_before = yield_curve (chip_normal ~endpoints !result) in
  let moves = ref [] in
  let num_moves = ref 0 in
  (* Upsize candidates rejected by the static never-critical filter —
     hopeless moves the incremental engine never has to trial. *)
  let pruned = ref 0 in
  let keep g =
    match prune with
    | None -> true
    | Some p ->
      if p g then (
        incr pruned;
        false)
      else true
  in
  let record direction net from_size to_size =
    incr num_moves;
    moves :=
      { net; direction; from_size; to_size; objective_after = !phi; area_after = !area }
      :: !moves
  in
  (* One trial: flip the gate to [size], re-analyse just its cone, undo. *)
  let trial g ~size =
    let before = asg.(g) in
    let dirty = Transform.resize_gate sized circuit asg g ~size in
    let r' = Ssta.update_rf ~delay_rf ?check !result ~changed:dirty in
    incr evaluations;
    let phi' = objective r' in
    let area_trial = Sized_library.gate_area sized circuit asg g in
    ignore (Transform.resize_gate sized circuit asg g ~size:before);
    let da = area_trial -. Sized_library.gate_area sized circuit asg g in
    (r', phi', da)
  in
  let target_met () = match config.target with Some t -> !phi <= t | None -> false in
  let within_budget da =
    match config.area_budget with Some b -> !area +. da <= b | None -> true
  in
  (* Phase A: upsize the best objective-per-area move on the critical set. *)
  let improving = ref true in
  while !improving && !num_moves < config.max_moves && not (target_met ()) do
    improving := false;
    let crit = Criticality.of_ssta !result in
    let cands =
      Criticality.ranked crit
      |> take_where config.candidates (fun (g, c) -> c > 0.0 && asg.(g) < top && keep g)
    in
    let best =
      List.fold_left
        (fun best (g, _) ->
          let r', phi', da = trial g ~size:(asg.(g) + 1) in
          if phi' < !phi && within_budget da then begin
            let merit = (!phi -. phi') /. Float.max da epsilon_float in
            match best with
            | Some (_, _, _, best_merit) when best_merit >= merit -> best
            | _ -> Some (g, r', da, merit)
          end
          else best)
        None cands
    in
    match best with
    | None -> ()
    | Some (g, r', da, _) ->
      let from_size = asg.(g) in
      ignore (Transform.resize_gate sized circuit asg g ~size:(from_size + 1));
      result := r';
      phi := objective r';
      area := !area +. da;
      record `Up g from_size (from_size + 1);
      improving := true
  done;
  (* Phase B: downsize off-critical gates, biggest power saving first,
     as long as the objective limit holds. *)
  let limit =
    match config.target with Some t -> Float.max t !phi | None -> !phi
  in
  let density =
    Transition_density.of_input_specs circuit ~spec:(fun _ -> Input_spec.case_i)
  in
  let saving g =
    (* Switched-capacitance drop of one downsize step, weighted by how
       often the net actually toggles. *)
    let s = asg.(g) in
    let cap k =
      let _ = Transform.resize_gate sized circuit asg g ~size:k in
      Sized_library.gate_capacitance sized circuit asg g
    in
    let drop = cap s -. cap (s - 1) in
    let _ = Transform.resize_gate sized circuit asg g ~size:s in
    drop *. Transition_density.density density g
  in
  let progress = ref true in
  while !progress && !num_moves < config.max_moves do
    progress := false;
    let crit = Criticality.of_ssta !result in
    let cands =
      Circuit.topo_gates circuit |> Array.to_list
      |> List.filter (fun g ->
             asg.(g) > 0 && Criticality.criticality crit g <= config.downsize_threshold)
      |> List.map (fun g -> (g, saving g))
      |> List.stable_sort (fun (g1, s1) (g2, s2) ->
             match compare s2 s1 with 0 -> compare g1 g2 | n -> n)
    in
    List.iter
      (fun (g, _) ->
        if !num_moves < config.max_moves then begin
          let from_size = asg.(g) in
          let r', phi', da = trial g ~size:(from_size - 1) in
          if phi' <= limit then begin
            ignore (Transform.resize_gate sized circuit asg g ~size:(from_size - 1));
            result := r';
            phi := phi';
            area := !area +. da;
            record `Down g from_size (from_size - 1);
            progress := true
          end
        end)
      cands
  done;
  {
    moves = List.rev !moves;
    evaluations = !evaluations;
    pruned = !pruned;
    objective_before;
    objective_after = !phi;
    area_before;
    area_after = !area;
    capacitance_before;
    capacitance_after = Sized_library.total_capacitance sized circuit asg;
    yield_before;
    yield_after = yield_curve (chip_normal ~endpoints !result);
    assignment = asg;
  }
