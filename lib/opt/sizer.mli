(** Greedy sensitivity-guided statistical gate sizing (TILOS-style,
    after Agarwal/Chopra/Blaauw): trade area and switched capacitance
    against a statistical delay objective on a {!Spsta_netlist.Sized_library}
    size family.

    The objective is a quantile (default the 99th percentile) of the
    chip delay — the Clark MAX over all endpoint settle arrivals of an
    SSTA run under the sized cell delays.  Phase A repeatedly upsizes
    the move with the best Δobjective/Δarea among the most critical
    gates ({!Criticality}); phase B walks the off-critical set in
    descending power-saving order (switched capacitance × transition
    density) and downsizes every gate the objective can spare.

    Every candidate move — trial and commit alike — is evaluated with
    {!Spsta_ssta.Ssta.update_rf} dirty-cone incremental re-analysis;
    the only full propagation is the initial one.  The loop is free of
    randomness and breaks all ties on net id, so a fixed (circuit,
    config) pair reproduces bit-identical reports. *)

type config = {
  quantile : float;  (** objective percentile in (0, 1); default 0.99 *)
  target : float option;
      (** stop upsizing once the objective reaches this; downsizing then
          recovers area against it rather than against the best
          objective achieved *)
  area_budget : float option;  (** absolute cap on total area *)
  max_moves : int;  (** committed-move bound across both phases *)
  candidates : int;  (** critical gates trialled per upsize iteration *)
  downsize_threshold : float;
      (** criticality at or below which a gate counts as off-critical *)
}

val default_config : config
(** quantile 0.99, no target, no budget, 400 moves, 8 candidates,
    threshold 0.01. *)

type move = {
  net : Spsta_netlist.Circuit.id;
  direction : [ `Up | `Down ];
  from_size : int;
  to_size : int;
  objective_after : float;
  area_after : float;
}

type report = {
  moves : move list;  (** in commit order *)
  evaluations : int;
      (** incremental re-analyses performed (trials + commits), not
          counting the single initial full propagation *)
  pruned : int;
      (** upsize candidates rejected by the [prune] filter before any
          trial was spent on them (0 without [prune]) *)
  objective_before : float;
  objective_after : float;
  area_before : float;
  area_after : float;
  capacitance_before : float;
  capacitance_after : float;
  yield_before : (float * float) list;
      (** (yield target, clock) points of the chip-delay curve *)
  yield_after : (float * float) list;
  assignment : Spsta_netlist.Sized_library.assignment;  (** final sizes *)
}

val run :
  ?config:config ->
  ?check:bool ->
  ?initial:Spsta_netlist.Sized_library.assignment ->
  ?prune:(Spsta_netlist.Circuit.id -> bool) ->
  Spsta_netlist.Sized_library.t ->
  Spsta_netlist.Circuit.t ->
  report
(** [prune] marks gates phase A must never trial an upsize on —
    typically {!Spsta_analysis.Crit_bounds.never_critical} under
    {!Spsta_analysis.Crit_bounds.bounds_of_sized}, which is sound for
    every assignment the run could reach.  Pruned gates may still be
    {e downsized} in phase B (shrinking a never-critical gate is
    exactly the point).  Rejections are counted in [report.pruned].

    Sizes the circuit starting from [initial] (default the all-smallest
    assignment; the given array is copied, not mutated).  Starting from
    {!Spsta_netlist.Sized_library.uniform} at the top size turns the
    run into power recovery: phase A finds nothing to upsize and phase
    B downsizes every gate the [target] can spare.
    [check] (default {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    runs every propagation — initial, trial and commit — under the
    arrival sanitizer.  Raises [Invalid_argument] on a config with
    [quantile] outside (0, 1), [max_moves < 0], [candidates < 1], or a
    non-positive [target]/[area_budget], on an [initial] whose length
    or entries do not fit the circuit and family, and on circuits
    without endpoints. *)
