(* Benchmark tracking: flattening a machine-readable bench document
   (bench/main.exe --json, schema spsta-bench/5) into named wall-clock
   metrics, appending per-commit records to an append-only JSONL history
   file, and comparing two documents for wall-time regressions.

   The logic lives here rather than in the bench binary so the test
   suite can exercise the regression detector on synthetic documents
   without timing anything. *)

(* ---------- metric extraction ---------- *)

(* A tracked metric is a named wall-clock second count.  Keys are
   "<circuit>/<field>" for the per-circuit engine timings,
   "<circuit>/sizing/<field>" for the sizing workload, and
   "<scale-profile>/<field>" for the scale section. *)

let num_fields json =
  match json with
  | Json.Obj fields ->
    List.filter_map
      (fun (k, v) -> match v with Json.Num x -> Some (k, x) | _ -> None)
      fields
  | _ -> []

let name_of json =
  match Json.member "name" json with Some (Json.Str s) -> Some s | _ -> None

let circuit_metrics c =
  match name_of c with
  | None -> []
  | Some name ->
    let timings =
      match Json.member "timings_s" c with
      | Some t -> List.map (fun (k, x) -> (name ^ "/" ^ k, x)) (num_fields t)
      | None -> []
    in
    let sizing =
      match Json.member "sizing" c with
      | Some s ->
        List.filter_map
          (fun key ->
            match Json.member key s with
            | Some (Json.Num x) -> Some (name ^ "/sizing/" ^ key, x)
            | _ -> None)
          [ "full_analysis_s"; "incremental_update_s"; "sizer_s" ]
      | None -> []
    in
    timings @ sizing

(* scale entries: every "*_s" field is a wall-clock measurement
   (generate_s, ssta_s, incremental_update_s, ...); ratios and counts
   are skipped. *)
let scale_metrics s =
  match name_of s with
  | None -> []
  | Some name ->
    List.filter_map
      (fun (k, x) ->
        let n = String.length k in
        if n > 2 && String.sub k (n - 2) 2 = "_s" then Some (name ^ "/" ^ k, x) else None)
      (num_fields s)

let metrics doc =
  let list_of key =
    match Json.member key doc with Some (Json.List xs) -> xs | _ -> []
  in
  List.concat_map circuit_metrics (list_of "circuits")
  @ List.concat_map scale_metrics (list_of "scale")

(* ---------- history ---------- *)

let history_schema = "spsta-bench-history/1"

let history_record ~commit ~utc doc =
  let carry key =
    match Json.member key doc with Some v -> [ (key, v) ] | None -> []
  in
  Json.Obj
    ([ ("schema", Json.string history_schema);
       ("commit", Json.string commit);
       ("utc", Json.string utc) ]
    @ carry "host_cores" @ carry "domains"
    @ [ ("metrics", Json.Obj (List.map (fun (k, x) -> (k, Json.float x)) (metrics doc))) ])

(* One compact JSON record per line, append-only: the file is a
   chronological log across commits, never rewritten. *)
let append_history ~path record =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.to_string record);
  output_char oc '\n';
  close_out oc

(* ---------- regression comparison ---------- *)

type regression = { metric : string; base_s : float; current_s : float; ratio : float }

let default_threshold = 0.15
let default_min_base_s = 1e-4
let default_min_delta_s = 0.005

(* Metrics are matched by name; anything present in only one document is
   skipped (the tracked suites need not coincide), as are metrics whose
   baseline sits below [min_base_s].  The bench harness already
   stabilises small timings by batching (min over at least three
   >= 10 ms batches), so the floor only has to screen out the
   few-microsecond entries where loop overhead and timer granularity,
   not the measured kernel, decide the figure.

   A regression must clear the relative [threshold] AND grow by at
   least [min_delta_s] of absolute wall time.  The absolute floor is
   what keeps the gate usable on shared hosts: a few-millisecond metric
   can drift 30-40% purely from scheduler interference sustained across
   every batch, and an absolute drift of a millisecond or two is below
   anything the gate could act on anyway.  Real regressions on the
   entries that matter (tens of milliseconds to seconds) clear both
   bars comfortably.

   "*_baseline" metrics are reference measurements, not performance
   products: they time a deliberately-unoptimised configuration (e.g.
   the untruncated grid kernels) purely to anchor an in-process speedup
   ratio.  They are recorded in documents and history for post-hoc
   analysis but excluded from the gate — there is no optimised code
   path behind them to regress, and the untruncated configuration's
   giant transient allocations make it structurally the noisiest entry
   in the suite. *)
let is_reference name =
  let suffix = "_baseline" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix
let compare_docs ?(threshold = default_threshold) ?(min_base_s = default_min_base_s)
    ?(min_delta_s = default_min_delta_s) ~base ~current () =
  let base_metrics = metrics base in
  let current_metrics = metrics current in
  let compared = ref 0 and regressions = ref [] in
  List.iter
    (fun (name, base_s) ->
      match List.assoc_opt name current_metrics with
      | _ when is_reference name -> ()
      | Some current_s when base_s >= min_base_s && base_s > 0.0 ->
        incr compared;
        let ratio = current_s /. base_s in
        if ratio > 1.0 +. threshold && current_s -. base_s > min_delta_s then
          regressions := { metric = name; base_s; current_s; ratio } :: !regressions
      | Some _ | None -> ())
    base_metrics;
  (!compared, List.rev !regressions)
