(** Benchmark tracking for the machine-readable bench mode
    ([bench/main.exe --json], schema [spsta-bench/5]): flattens a bench
    document into named wall-clock metrics, builds append-only
    per-commit history records, and compares two documents for
    wall-time regressions (the [--compare] gate).  Pure with respect to
    timing — the test suite drives it on synthetic documents. *)

val metrics : Json.t -> (string * float) list
(** Tracked wall-clock metrics of a bench document, as
    [("s344/ssta", seconds); ...] pairs: every [timings_s] entry and
    the sizing wall-times per circuit, and every ["*_s"] field per
    scale profile.  Unrecognised documents yield []. *)

val history_schema : string
(** Schema tag of history records, ["spsta-bench-history/1"]. *)

val history_record : commit:string -> utc:string -> Json.t -> Json.t
(** One history line for a bench document: schema tag, commit id, UTC
    timestamp, the document's [host_cores] / [domains] when present,
    and the flattened {!metrics}. *)

val append_history : path:string -> Json.t -> unit
(** Append one record as a compact JSON line to [path], creating the
    file if needed.  The history file is append-only by construction —
    a chronological log across commits, never rewritten. *)

type regression = { metric : string; base_s : float; current_s : float; ratio : float }
(** A metric whose current time exceeds the baseline by more than the
    threshold; [ratio] = current / base. *)

val default_threshold : float
(** 0.15 — fail on >15% wall-time regression. *)

val default_min_base_s : float
(** 1e-4 s — baselines below this are skipped: few-microsecond entries
    are decided by loop overhead and timer granularity, not the
    measured kernel (larger ones are already batch-stabilised by the
    harness). *)

val default_min_delta_s : float
(** 0.005 s — a flagged regression must also have grown by at least
    this much absolute wall time.  Few-millisecond metrics can drift
    30-40% relative purely from sustained scheduler interference on a
    shared host; an absolute drift that small is below anything the
    gate could act on. *)

val compare_docs :
  ?threshold:float ->
  ?min_base_s:float ->
  ?min_delta_s:float ->
  base:Json.t ->
  current:Json.t ->
  unit ->
  int * regression list
(** [compare_docs ~base ~current ()] matches metrics by name (skipping
    ones present in only one document or below [min_base_s] in the
    baseline) and returns (number compared, regressions that exceed
    [threshold] relative AND [min_delta_s] absolute growth).
    ["*_baseline"] metrics — reference timings of deliberately
    unoptimised configurations, kept only to anchor in-process speedup
    ratios — are recorded in history but never gated: there is no
    optimised path behind them to regress. *)
