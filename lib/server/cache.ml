(* Caching layer for the analysis service.

   Two levels, both LRU with hit/miss/eviction counters and both safe to
   share across worker domains:

   - a circuit cache: parsed {!Spsta_netlist.Circuit.t} values keyed by the
     circuit argument (suite name or file path), each stored with a content
     digest so memoised results survive cache eviction and reload;
   - a result memo table: encoded JSON payloads keyed by
     (circuit digest, engine, input case, delay/engine params).

   Repeated what-if queries over the same netlist — the dominant SPSTA
   workload shape — then pay the parse cost once and the analysis cost once
   per distinct parameter set. *)

module Lru = struct
  type 'a entry = { value : 'a; mutable tick : int }

  type 'a t = {
    capacity : int;
    table : (string, 'a entry) Hashtbl.t;
    mutex : Mutex.t;
    mutable clock : int;
    (* counters are atomic, not merely mutex-guarded: the accessors below
       are called from [stats] requests on other domains without taking
       [mutex], which would otherwise be a data race on a plain mutable
       field *)
    hits : int Atomic.t;
    misses : int Atomic.t;
    evictions : int Atomic.t;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
    { capacity; table = Hashtbl.create (2 * capacity); mutex = Mutex.create ();
      clock = 0; hits = Atomic.make 0; misses = Atomic.make 0; evictions = Atomic.make 0 }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
          t.clock <- t.clock + 1;
          e.tick <- t.clock;
          Atomic.incr t.hits;
          Some e.value
        | None ->
          Atomic.incr t.misses;
          None)

  (* Evict the least-recently-used entry.  A linear scan over at most
     [capacity] entries; capacities here are tens to hundreds, far below
     the cost of a single timing analysis. *)
  let evict_lru t =
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, best) when best <= e.tick -> ()
        | _ -> victim := Some (key, e.tick))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      Atomic.incr t.evictions
    | None -> ()

  let add t key value =
    locked t (fun () ->
        t.clock <- t.clock + 1;
        Hashtbl.remove t.table key;
        while Hashtbl.length t.table >= t.capacity do
          evict_lru t
        done;
        Hashtbl.replace t.table key { value; tick = t.clock })

  let length t = locked t (fun () -> Hashtbl.length t.table)
  let hits t = Atomic.get t.hits
  let misses t = Atomic.get t.misses
  let evictions t = Atomic.get t.evictions

  let counters_json t =
    locked t (fun () ->
        Json.Obj
          [ ("size", Json.int (Hashtbl.length t.table)); ("capacity", Json.int t.capacity);
            ("hits", Json.int (Atomic.get t.hits)); ("misses", Json.int (Atomic.get t.misses));
            ("evictions", Json.int (Atomic.get t.evictions)) ])
end

module Circuit = Spsta_netlist.Circuit
module Bench_io = Spsta_netlist.Bench_io

type loaded = { circuit : Circuit.t; digest : string }

type t = {
  circuits : loaded Lru.t;
  results : Json.t Lru.t;
  loader : string -> Circuit.t;
  store : Store.t option;
      (* persistent backing for the result memo: consulted on LRU miss,
         appended on store, so memoised payloads survive process
         restarts and are shared by every instance on the same path *)
}

exception Load_error of { code : Protocol.error_code; message : string }

let default_loader name_or_path =
  if Sys.file_exists name_or_path then
    if Filename.check_suffix name_or_path ".v" then
      Spsta_netlist.Verilog_io.parse_file name_or_path
    else Bench_io.parse_file name_or_path
  else Spsta_experiments.Benchmarks.load name_or_path

let create ?(loader = default_loader) ?store ?(circuit_capacity = 32)
    ?(result_capacity = 512) () =
  { circuits = Lru.create ~capacity:circuit_capacity;
    results = Lru.create ~capacity:result_capacity;
    loader; store }

let load_circuit t name =
  match Lru.find t.circuits name with
  | Some loaded -> loaded
  | None ->
    let circuit =
      try t.loader name with
      | Not_found ->
        raise
          (Load_error
             { code = Protocol.Circuit_not_found;
               message = Printf.sprintf "%s is neither a file nor a suite circuit" name })
      | Bench_io.Parse_error { line; message } ->
        raise
          (Load_error
             { code = Protocol.Parse_failure;
               message = Printf.sprintf "%s:%d: %s" name line message })
      | Spsta_netlist.Verilog_io.Parse_error { line; message } ->
        raise
          (Load_error
             { code = Protocol.Parse_failure;
               message = Printf.sprintf "%s:%d: %s" name line message })
      | Sys_error message -> raise (Load_error { code = Protocol.Parse_failure; message })
    in
    (* digest the canonical .bench text so the same netlist reached via
       different names (file copy vs suite name) shares memoised results *)
    let digest = Digest.to_hex (Digest.string (Bench_io.to_string circuit)) in
    let loaded = { circuit; digest } in
    Lru.add t.circuits name loaded;
    loaded

(* Memo keys spell out every parameter that influences the payload. *)
let memo_key ~digest (kind : Protocol.kind) =
  match kind with
  | Protocol.Analyze p ->
    (* [check] is part of the key even though checked and unchecked runs
       return bit-identical payloads: a checked run that was memoised
       would otherwise let a later [check:true] request hit the cache and
       skip the verification the client asked for *)
    Printf.sprintf "analyze|%s|case=%s|top=%d%s" digest (Protocol.case_name p.case) p.top
      (if p.check then "|check=1" else "")
  | Protocol.Ssta p ->
    Printf.sprintf "ssta|%s|top=%d%s" digest p.top (if p.check then "|check=1" else "")
  | Protocol.Mc p ->
    (* deliberately engine-free: the packed and scalar engines return
       bit-identical results for equal (runs, seed), so a payload cached
       under one engine is valid for the other *)
    Printf.sprintf "mc|%s|case=%s|runs=%d|seed=%d|top=%d" digest (Protocol.case_name p.case)
      p.runs p.seed p.top
  | Protocol.Paths p ->
    Printf.sprintf "paths|%s|k=%d|sg=%.9g|ss=%.9g|sr=%.9g" digest p.k p.sigma_global
      p.sigma_spatial p.sigma_random
  | Protocol.Size p ->
    (* [check] is in the key for the same reason as analyze/ssta: a
       cached unchecked payload must not satisfy a request that asked
       for the sanitizer *)
    Printf.sprintf "size|%s|q=%.9g|target=%s|moves=%d|cand=%d|sizes=%d|ratio=%.9g|init=%s%s"
      digest p.quantile
      (match p.target with None -> "-" | Some t -> Printf.sprintf "%.9g" t)
      p.max_moves p.candidates p.sizes p.ratio
      (Protocol.size_initial_name p.initial)
      (if p.check then "|check=1" else "")
  | Protocol.Static p ->
    (* [passes] arrive canonicalised (sorted, deduplicated short names)
       from the decoder, so equal selections share one entry *)
    Printf.sprintf "static|%s|passes=%s" digest (String.concat "," p.passes)
  | Protocol.Session_open _ | Protocol.Session_mutate _ | Protocol.Session_query _
  | Protocol.Session_verify _ | Protocol.Session_close _ | Protocol.Stats
  | Protocol.Shutdown ->
    invalid_arg "Cache.memo_key: not a cacheable kind"

(* LRU first, then the persistent store; a store hit is promoted into
   the LRU so repeats stay in memory. *)
let find_result t key =
  match Lru.find t.results key with
  | Some _ as hit -> hit
  | None -> (
    match t.store with
    | None -> None
    | Some store -> (
      match Store.find store key with
      | Some payload ->
        Lru.add t.results key payload;
        Some payload
      | None -> None ) )

let store_result t key payload =
  Lru.add t.results key payload;
  match t.store with None -> () | Some store -> Store.add store key payload

let store t = t.store

let stats_json t =
  Json.Obj
    ( [ ("circuits", Lru.counters_json t.circuits); ("results", Lru.counters_json t.results) ]
    @ match t.store with None -> [] | Some s -> [ ("store", Store.stats_json s) ] )

let result_hits t = Lru.hits t.results
let result_misses t = Lru.misses t.results
let circuit_hits t = Lru.hits t.circuits
