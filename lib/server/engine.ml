(* Executes decoded protocol requests against the analysis libraries.

   Every analysis kind goes through the result memo table: the payload is
   computed at most once per (circuit digest, engine, params) key; repeats
   are served from cache.  Payloads are plain {!Json.t} values so cache
   hits cost one encode, not one analysis.

   All analyses here are deterministic given the request (Monte Carlo runs
   sequentially inside one worker with the request's seed), so responses do
   not depend on worker-pool size or scheduling. *)

module Circuit = Spsta_netlist.Circuit
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module Monte_carlo = Spsta_sim.Monte_carlo
module Stats = Spsta_util.Stats
module Workloads = Spsta_experiments.Workloads

let spec_of_case = function
  | Protocol.Case_i -> Workloads.spec_fn Workloads.Case_i
  | Protocol.Case_ii -> Workloads.spec_fn Workloads.Case_ii

(* [top = 0] means every endpoint; otherwise the [top] endpoints with the
   largest mean arrival (ties broken by net id, so the order is stable). *)
let select_endpoints circuit ~top ~mean_of =
  let all = Circuit.endpoints circuit in
  if top <= 0 then all
  else
    let scored = List.map (fun e -> (e, mean_of e)) all in
    let sorted =
      List.sort (fun (e1, m1) (e2, m2) ->
          match compare m2 m1 with 0 -> compare e1 e2 | c -> c)
        scored
    in
    List.filteri (fun i _ -> i < top) (List.map fst sorted)

let circuit_header circuit =
  [ ("circuit", Json.string (Circuit.name circuit));
    ("nets", Json.int (Circuit.num_nets circuit));
    ("depth", Json.int (Circuit.depth circuit)) ]

(* Shared per-endpoint payload assembly: every per-endpoint analysis
   scores the endpoints with [mean_of], keeps the [top] best
   ({!select_endpoints}), and renders the circuit header, its own
   [extra] request-specific fields, and one [endpoint_json] object per
   selected endpoint. *)
let endpoints_payload circuit ~top ~extra ~mean_of ~endpoint_json =
  let endpoints = select_endpoints circuit ~top ~mean_of in
  Json.Obj
    (circuit_header circuit
    @ extra
    @ [ ("endpoints", Json.List (List.map endpoint_json endpoints)) ])

(* [check = false] maps to [Some false], not [None]: the server decides
   per request, so the worker's SPSTA_CHECK environment must not leak
   into the answer. *)
let analyze_payload circuit ~case ~top ~check ~domains =
  let spec = spec_of_case case in
  let result = Analyzer.Moments.analyze ~check ~domains circuit ~spec in
  let endpoint_json e =
    let s = Analyzer.Moments.signal result e in
    let rmu, rsig, rp = Analyzer.Moments.transition_stats s `Rise in
    let fmu, fsig, fp = Analyzer.Moments.transition_stats s `Fall in
    Json.Obj
      [ ("net", Json.string (Circuit.net_name circuit e));
        ("p_rise", Json.float rp); ("mu_rise", Json.float rmu); ("sigma_rise", Json.float rsig);
        ("p_fall", Json.float fp); ("mu_fall", Json.float fmu); ("sigma_fall", Json.float fsig);
        ("sp", Json.float (Four_value.signal_probability s.Analyzer.Moments.probs)) ]
  in
  let mean_of e =
    let s = Analyzer.Moments.signal result e in
    let rmu, _, _ = Analyzer.Moments.transition_stats s `Rise in
    let fmu, _, _ = Analyzer.Moments.transition_stats s `Fall in
    Float.max rmu fmu
  in
  endpoints_payload circuit ~top
    ~extra:[ ("case", Json.string (Protocol.case_name case)) ]
    ~mean_of ~endpoint_json

let ssta_payload circuit ~top ~check ~domains =
  let result = Spsta_ssta.Ssta.analyze ~check ~domains circuit in
  let open Spsta_dist.Normal in
  let endpoint_json e =
    let a = Spsta_ssta.Ssta.arrival result e in
    Json.Obj
      [ ("net", Json.string (Circuit.net_name circuit e));
        ("mu_rise", Json.float (mean a.Spsta_ssta.Ssta.rise));
        ("sigma_rise", Json.float (stddev a.Spsta_ssta.Ssta.rise));
        ("mu_fall", Json.float (mean a.Spsta_ssta.Ssta.fall));
        ("sigma_fall", Json.float (stddev a.Spsta_ssta.Ssta.fall)) ]
  in
  let mean_of e =
    let a = Spsta_ssta.Ssta.arrival result e in
    Float.max (mean a.Spsta_ssta.Ssta.rise) (mean a.Spsta_ssta.Ssta.fall)
  in
  endpoints_payload circuit ~top ~extra:[] ~mean_of ~endpoint_json

let mc_payload circuit ~case ~runs ~seed ~top ~engine =
  let spec = spec_of_case case in
  let engine = match engine with Protocol.Scalar -> `Scalar | Protocol.Packed -> `Packed in
  let result = Monte_carlo.simulate ~runs ~seed ~engine circuit ~spec in
  let endpoint_json e =
    let s = Monte_carlo.stats result e in
    Json.Obj
      [ ("net", Json.string (Circuit.net_name circuit e));
        ("p_rise", Json.float (Monte_carlo.p_rise s));
        ("mu_rise", Json.float (Stats.acc_mean s.Monte_carlo.rise_times));
        ("sigma_rise", Json.float (Stats.acc_stddev s.Monte_carlo.rise_times));
        ("p_fall", Json.float (Monte_carlo.p_fall s));
        ("mu_fall", Json.float (Stats.acc_mean s.Monte_carlo.fall_times));
        ("sigma_fall", Json.float (Stats.acc_stddev s.Monte_carlo.fall_times));
        ("sp", Json.float (Monte_carlo.signal_probability s)) ]
  in
  let mean_of e =
    let s = Monte_carlo.stats result e in
    Float.max (Stats.acc_mean s.Monte_carlo.rise_times) (Stats.acc_mean s.Monte_carlo.fall_times)
  in
  endpoints_payload circuit ~top
    ~extra:
      [ ("case", Json.string (Protocol.case_name case));
        ("runs", Json.int runs); ("seed", Json.int seed) ]
    ~mean_of ~endpoint_json

let paths_payload circuit ~k ~sigma_global ~sigma_spatial ~sigma_random =
  let model =
    Spsta_variation.Param_model.create ~sigma_global ~sigma_spatial ~sigma_random ~grid:4 ()
  in
  let placement = Spsta_variation.Param_model.place model circuit in
  let paths = Spsta_paths.Path_enum.enumerate ~k circuit in
  let stats = Spsta_paths.Path_stats.analyze model placement circuit paths in
  let crit = Spsta_paths.Path_stats.criticality stats in
  let path_json i p =
    Json.Obj
      [ ("endpoint", Json.string (Circuit.net_name circuit p.Spsta_paths.Path_enum.endpoint));
        ("source", Json.string (Circuit.net_name circuit p.Spsta_paths.Path_enum.source));
        ("length", Json.int (Spsta_paths.Path_enum.length p));
        ("mu", Json.float (Spsta_paths.Path_stats.delay_mean stats i));
        ("sigma", Json.float (Spsta_paths.Path_stats.delay_stddev stats i));
        ("criticality", Json.float crit.(i)) ]
  in
  Json.Obj
    (circuit_header circuit
    @ [ ("k", Json.int k); ("paths", Json.List (List.mapi path_json paths)) ])

let size_payload circuit ~quantile ~target ~max_moves ~candidates ~sizes ~ratio ~initial
    ~check =
  let sized =
    Spsta_netlist.Sized_library.family ~sizes ~ratio Spsta_netlist.Cell_library.default
  in
  let config =
    { Spsta_opt.Sizer.default_config with
      Spsta_opt.Sizer.quantile; target; max_moves; candidates }
  in
  let initial =
    match initial with
    | Protocol.Smallest -> None
    | Protocol.Largest ->
      Some
        (Spsta_netlist.Sized_library.uniform sized circuit
           ~size:(Spsta_netlist.Sized_library.num_sizes sized - 1))
  in
  let report = Spsta_opt.Sizer.run ~config ~check ?initial sized circuit in
  let open Spsta_opt.Sizer in
  let move m =
    Json.Obj
      [ ("net", Json.string (Circuit.net_name circuit m.net));
        ("direction", Json.string (match m.direction with `Up -> "up" | `Down -> "down"));
        ("from_size", Json.int m.from_size); ("to_size", Json.int m.to_size);
        ("objective_after", Json.float m.objective_after);
        ("area_after", Json.float m.area_after) ]
  in
  let curve points =
    Json.List
      (List.map
         (fun (p, t) -> Json.Obj [ ("yield", Json.float p); ("clock", Json.float t) ])
         points)
  in
  Json.Obj
    (circuit_header circuit
    @ [ ("quantile", Json.float quantile);
        ("objective_before", Json.float report.objective_before);
        ("objective_after", Json.float report.objective_after);
        ("area_before", Json.float report.area_before);
        ("area_after", Json.float report.area_after);
        ("capacitance_before", Json.float report.capacitance_before);
        ("capacitance_after", Json.float report.capacitance_after);
        ("evaluations", Json.int report.evaluations);
        ("moves", Json.List (List.map move report.moves));
        ("yield_before", curve report.yield_before);
        ("yield_after", curve report.yield_after) ])

(* Static dataflow facts.  The pass set arrives canonicalised from the
   decoder; regions are reported widest-first and capped so a stem-heavy
   circuit cannot balloon the stored payload. *)
let static_payload circuit ~passes =
  let module Static = Spsta_analysis.Static in
  let module Reconvergence = Spsta_analysis.Reconvergence in
  let module Crit_bounds = Spsta_analysis.Crit_bounds in
  let pass_list = List.filter_map Static.pass_of_name passes in
  let t = Static.run ~passes:pass_list circuit in
  let max_regions = 25 in
  let regions =
    match t.Static.reconvergence with
    | None -> []
    | Some r ->
      let widest =
        List.stable_sort
          (fun (a : Reconvergence.region) b ->
            match compare b.width a.width with 0 -> compare a.stem b.stem | c -> c)
          (Reconvergence.regions r)
      in
      List.filteri (fun i _ -> i < max_regions) widest
  in
  let region (r : Reconvergence.region) =
    Json.Obj
      [ ("stem", Json.string (Circuit.net_name circuit r.stem));
        ("merge", Json.string (Circuit.net_name circuit r.merge));
        ("width", Json.int r.width); ("depth", Json.int r.depth);
        ("gates", match r.gates with Some n -> Json.int n | None -> Json.Null) ]
  in
  Json.Obj
    (circuit_header circuit
    @ [ ("passes", Json.List (List.map Json.string passes));
        ( "facts",
          Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (Static.fact_counts t)) );
        ("regions", Json.List (List.map region regions)) ]
    @
    match t.Static.criticality with
    | Some c -> [ ("t_lb", Json.float (Crit_bounds.t_lb c)) ]
    | None -> [])

let compute_payload ~domains (cache : Cache.t) (kind : Protocol.kind) =
  let circuit_of name = (Cache.load_circuit cache name).Cache.circuit in
  match kind with
  | Protocol.Analyze p ->
    analyze_payload (circuit_of p.circuit) ~case:p.case ~top:p.top ~check:p.check ~domains
  | Protocol.Ssta p -> ssta_payload (circuit_of p.circuit) ~top:p.top ~check:p.check ~domains
  | Protocol.Mc p ->
    mc_payload (circuit_of p.circuit) ~case:p.case ~runs:p.runs ~seed:p.seed ~top:p.top
      ~engine:p.engine
  | Protocol.Paths p ->
    paths_payload (circuit_of p.circuit) ~k:p.k ~sigma_global:p.sigma_global
      ~sigma_spatial:p.sigma_spatial ~sigma_random:p.sigma_random
  | Protocol.Size p ->
    size_payload (circuit_of p.circuit) ~quantile:p.quantile ~target:p.target
      ~max_moves:p.max_moves ~candidates:p.candidates ~sizes:p.sizes ~ratio:p.ratio
      ~initial:p.initial ~check:p.check
  | Protocol.Static p -> static_payload (circuit_of p.circuit) ~passes:p.passes
  | Protocol.Session_open _ | Protocol.Session_mutate _ | Protocol.Session_query _
  | Protocol.Session_verify _ | Protocol.Session_close _ ->
    invalid_arg "Engine.compute_payload: session request"
  | Protocol.Stats | Protocol.Shutdown -> invalid_arg "Engine.compute_payload: control request"

(* Session requests bypass the memo table entirely: their payloads
   depend on the session's accumulated mutation state, not just the
   request parameters. *)
let session_payload sessions cache (kind : Protocol.kind) =
  match kind with
  | Protocol.Session_open p -> Session.open_session sessions cache p
  | Protocol.Session_mutate { session; mutation } -> Session.mutate sessions session mutation
  | Protocol.Session_query { session; top } -> Session.query sessions session ~top
  | Protocol.Session_verify { session } -> Session.verify sessions session
  | Protocol.Session_close { session } -> Session.close sessions session
  | Protocol.Analyze _ | Protocol.Ssta _ | Protocol.Mc _ | Protocol.Paths _ | Protocol.Size _
  | Protocol.Static _ | Protocol.Stats | Protocol.Shutdown ->
    invalid_arg "Engine.session_payload: not a session request"

(* Execute an analysis request, memoising through the cache.  Control
   requests ([stats], [shutdown]) never reach the engine.

   [domains] (default 1) parallelises the levelized propagation
   ({!Spsta_engine.Propagate}) within one request, for every request
   kind backed by a propagation analyzer (analyze, ssta).  Because the
   engine's parallel traversal is bit-identical to the sequential one,
   memo keys need no domains component: cached payloads are valid at
   every domain count.  Monte Carlo likewise runs single-domain inside
   one worker, but its engine is selectable per request (packed
   bit-parallel vs scalar oracle); trial [i] always draws from
   [Rng.stream ~seed i], so both engines — at any domain count — return
   bit-identical results and the memo key stays engine-free.  The paths
   kind enumerates paths rather than propagating per-net state. *)
let execute ?(domains = 1) ?sessions (cache : Cache.t) (request : Protocol.request) :
    Protocol.response =
  let start = Unix.gettimeofday () in
  let finish result =
    Protocol.Ok
      { id = request.Protocol.id;
        kind = Protocol.kind_name request.Protocol.kind;
        elapsed_ms = (Unix.gettimeofday () -. start) *. 1000.0;
        result }
  in
  try
    match request.Protocol.kind with
    | ( Protocol.Session_open _ | Protocol.Session_mutate _ | Protocol.Session_query _
      | Protocol.Session_verify _ | Protocol.Session_close _ ) as kind ->
      let sessions =
        match sessions with
        | Some s -> s
        | None -> invalid_arg "Engine.execute: session request without a registry"
      in
      finish (session_payload sessions cache kind)
    | _ ->
      let loaded =
        match request.Protocol.kind with
        | Protocol.Analyze { circuit; _ } | Protocol.Ssta { circuit; _ }
        | Protocol.Mc { circuit; _ } | Protocol.Paths { circuit; _ }
        | Protocol.Size { circuit; _ } | Protocol.Static { circuit; _ } ->
          Cache.load_circuit cache circuit
        | Protocol.Session_open _ | Protocol.Session_mutate _ | Protocol.Session_query _
        | Protocol.Session_verify _ | Protocol.Session_close _ | Protocol.Stats
        | Protocol.Shutdown ->
          invalid_arg "Engine.execute: control request"
      in
      let key = Cache.memo_key ~digest:loaded.Cache.digest request.Protocol.kind in
      let payload =
        match Cache.find_result cache key with
        | Some payload -> payload
        | None ->
          let payload = compute_payload ~domains cache request.Protocol.kind in
          Cache.store_result cache key payload;
          payload
      in
      finish payload
  with
  | Session.Error { code; message } ->
    Protocol.Error { id = Some request.Protocol.id; code; message }
  | Cache.Load_error { code; message } ->
    Protocol.Error { id = Some request.Protocol.id; code; message }
  | Circuit.Invalid_circuit message ->
    Protocol.Error { id = Some request.Protocol.id; code = Protocol.Parse_failure; message }
  | Spsta_engine.Propagate.Sanitize.Violation _ as e ->
    Protocol.Error
      { id = Some request.Protocol.id; code = Protocol.Invariant_violation;
        message = Printexc.to_string e }
  | e ->
    Protocol.Error
      { id = Some request.Protocol.id; code = Protocol.Internal; message = Printexc.to_string e }
