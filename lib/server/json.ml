(* A minimal, dependency-free JSON value type with a strict parser and a
   compact printer.  The server protocol is JSON-lines, so the parser
   additionally rejects trailing garbage after the top-level value; numbers
   are kept as floats (delay statistics dominate the payloads). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

let fail pos fmt = Printf.ksprintf (fun message -> raise (Parse_error { pos; message })) fmt

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    (* NaN / infinities are not representable in JSON; encode as null *)
    if not (Float.is_finite x) then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string x)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.pos "expected %c, found %c" ch x
  | None -> fail c.pos "expected %c, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "invalid literal"

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      ( match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        ( match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then fail c.pos "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail c.pos "bad \\u escape %s" hex
          in
          c.pos <- c.pos + 4;
          (* encode the code point as UTF-8; surrogate pairs are passed
             through as two separate 3-byte sequences, which suffices for
             the ASCII-dominated protocol *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | e -> fail c.pos "invalid escape \\%c" e ) );
      loop ()
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail start "invalid number %s" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> fail c.pos "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> fail c.pos "expected , or ] in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos "unexpected character %c" ch

let of_string s =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage after JSON value";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num x -> Some x | _ -> None

let to_int_opt = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

let string s = Str s
let float x = Num x
let int i = Num (float_of_int i)
let bool b = Bool b
