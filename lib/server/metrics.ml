(* Request counters and latency histograms, per request kind.

   Latencies are tracked two ways: a streaming accumulator
   ({!Spsta_util.Stats.acc}) for mean/stddev/min/max, and a fixed-range
   log-ish histogram for the latency profile reported by the [stats]
   request.  All mutation is mutex-guarded; workers record from their own
   domains. *)

module Stats = Spsta_util.Stats
module Histogram = Spsta_util.Histogram

type outcome = [ `Ok | `Error | `Timeout ]

type per_kind = {
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  latency : Stats.acc;
  (* 0..500 ms in 25 bins; latencies beyond the range appear as the
     histogram's overflow count rather than distorting the last bin *)
  histogram : Histogram.t;
}

(* Session lifecycle and incremental-analysis counters, all atomic so
   sessions mutate them from worker domains while [stats] requests read
   them from others.  [dirty_gates] accumulates the per-mutation dirty
   cone sizes, so mean cone size = dirty_gates / incremental. *)
type sessions = {
  opened : int Atomic.t;
  closed : int Atomic.t;
  evicted : int Atomic.t;
  mutations : int Atomic.t;
  incremental : int Atomic.t; (* dirty-cone incremental re-analyses *)
  full : int Atomic.t; (* full sweeps (session open / verify) *)
  dirty_gates : int Atomic.t;
}

type t = {
  mutex : Mutex.t;
  kinds : (string, per_kind) Hashtbl.t;
  sessions : sessions;
  started : float;
}

let hist_lo = 0.0
let hist_hi = 500.0
let hist_bins = 25

let create () =
  { mutex = Mutex.create (); kinds = Hashtbl.create 8;
    sessions =
      { opened = Atomic.make 0; closed = Atomic.make 0; evicted = Atomic.make 0;
        mutations = Atomic.make 0; incremental = Atomic.make 0; full = Atomic.make 0;
        dirty_gates = Atomic.make 0 };
    started = Unix.gettimeofday () }

let session_opened t = Atomic.incr t.sessions.opened
let session_closed t = Atomic.incr t.sessions.closed
let session_evicted t = Atomic.incr t.sessions.evicted

let session_mutation t ~dirty =
  Atomic.incr t.sessions.mutations;
  if dirty > 0 then begin
    Atomic.incr t.sessions.incremental;
    ignore (Atomic.fetch_and_add t.sessions.dirty_gates dirty)
  end

let session_full_analysis t = Atomic.incr t.sessions.full

let sessions_mutations t = Atomic.get t.sessions.mutations
let sessions_incremental t = Atomic.get t.sessions.incremental
let sessions_opened_total t = Atomic.get t.sessions.opened

(* [open_sessions] is a gauge owned by the session registry; it is
   passed in at render time rather than double-counted here. *)
let sessions_json t ~open_sessions =
  let s = t.sessions in
  let incremental = Atomic.get s.incremental in
  let mean_cone =
    if incremental = 0 then 0.0
    else float_of_int (Atomic.get s.dirty_gates) /. float_of_int incremental
  in
  Json.Obj
    [ ("open", Json.int open_sessions); ("opened", Json.int (Atomic.get s.opened));
      ("closed", Json.int (Atomic.get s.closed)); ("evicted", Json.int (Atomic.get s.evicted));
      ("mutations", Json.int (Atomic.get s.mutations));
      ("incremental_analyses", Json.int incremental);
      ("full_analyses", Json.int (Atomic.get s.full));
      ("dirty_gates_total", Json.int (Atomic.get s.dirty_gates));
      ("mean_dirty_cone", Json.float mean_cone) ]

let per_kind t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some p -> p
  | None ->
    let p =
      { ok = 0; errors = 0; timeouts = 0; latency = Stats.acc_create ();
        histogram = Histogram.create ~lo:hist_lo ~hi:hist_hi ~bins:hist_bins }
    in
    Hashtbl.add t.kinds kind p;
    p

let record t ~kind ~(outcome : outcome) ~elapsed_ms =
  Mutex.lock t.mutex;
  let p = per_kind t kind in
  ( match outcome with
  | `Ok -> p.ok <- p.ok + 1
  | `Error -> p.errors <- p.errors + 1
  | `Timeout -> p.timeouts <- p.timeouts + 1 );
  Stats.acc_add p.latency elapsed_ms;
  Histogram.add p.histogram elapsed_ms;
  Mutex.unlock t.mutex

let total t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold (fun _ p acc -> acc + p.ok + p.errors + p.timeouts) t.kinds 0
  in
  Mutex.unlock t.mutex;
  n

let kind_json p =
  let n = Stats.acc_count p.latency in
  let latency =
    if n = 0 then Json.Null
    else
      Json.Obj
        [ ("mean_ms", Json.float (Stats.acc_mean p.latency));
          ("stddev_ms", Json.float (Stats.acc_stddev p.latency));
          ("min_ms", Json.float (Stats.acc_min p.latency));
          ("max_ms", Json.float (Stats.acc_max p.latency)) ]
  in
  let buckets =
    Json.List
      (List.filter_map
         (fun i ->
           let count = Histogram.bin_samples p.histogram i in
           if count = 0 then None
           else
             Some
               (Json.Obj
                  [ ("le_ms", Json.float (Histogram.bin_center p.histogram i));
                    ("count", Json.int count) ]))
         (List.init hist_bins Fun.id))
  in
  Json.Obj
    [ ("ok", Json.int p.ok); ("errors", Json.int p.errors); ("timeouts", Json.int p.timeouts);
      ("latency", latency); ("histogram", buckets);
      ("histogram_overflow", Json.int (Histogram.overflow p.histogram)) ]

let to_json t =
  Mutex.lock t.mutex;
  let kinds =
    Hashtbl.fold (fun kind p acc -> (kind, kind_json p) :: acc) t.kinds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let json =
    Json.Obj
      [ ("uptime_s", Json.float (Unix.gettimeofday () -. t.started));
        ("requests", Json.Obj kinds) ]
  in
  Mutex.unlock t.mutex;
  json

let render t =
  Mutex.lock t.mutex;
  let buf = Buffer.create 256 in
  let kinds =
    Hashtbl.fold (fun kind p acc -> (kind, p) :: acc) t.kinds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Buffer.add_string buf "request metrics:\n";
  if kinds = [] then Buffer.add_string buf "  (no requests served)\n";
  List.iter
    (fun (kind, p) ->
      let n = Stats.acc_count p.latency in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s ok %-5d err %-4d timeout %-4d" kind p.ok p.errors p.timeouts);
      if n > 0 then
        Buffer.add_string buf
          (Printf.sprintf " latency mean %.2f ms, max %.2f ms" (Stats.acc_mean p.latency)
             (Stats.acc_max p.latency));
      Buffer.add_char buf '\n')
    kinds;
  let s = t.sessions in
  if Atomic.get s.opened > 0 then begin
    let incremental = Atomic.get s.incremental in
    let mean_cone =
      if incremental = 0 then 0.0
      else float_of_int (Atomic.get s.dirty_gates) /. float_of_int incremental
    in
    Buffer.add_string buf
      (Printf.sprintf
         "sessions: opened %d closed %d evicted %d; mutations %d (incremental %d, full %d, \
          mean cone %.1f gates)\n"
         (Atomic.get s.opened) (Atomic.get s.closed) (Atomic.get s.evicted)
         (Atomic.get s.mutations) incremental (Atomic.get s.full) mean_cone)
  end;
  Mutex.unlock t.mutex;
  Buffer.contents buf
