(* A fixed pool of OCaml 5 domains draining a bounded job queue.

   Design points:

   - the queue is bounded; [submit] blocks the producer when it is full,
     giving natural back-pressure instead of unbounded memory growth;
     [try_submit] instead refuses immediately, for callers (the socket
     transport) that must answer [overloaded] rather than stall a
     connection;
   - jobs may carry an *affinity key*.  Jobs sharing a key execute
     strictly in submission order, one at a time — while that key has a
     running or runnable job, later jobs with the same key are parked in
     a per-key queue and promoted only when their predecessor completes.
     Jobs with distinct keys (or none) run in parallel as before.  This
     is how one timing session's mutation stream serializes while the
     pool keeps every other session's work flowing;
   - every job carries an optional absolute deadline.  Deadlines are
     cooperative: a job whose deadline has already passed when a worker
     dequeues it is failed immediately without running, and a job that
     finishes past its deadline reports [Timed_out] rather than its result.
     Either way the waiter always gets an outcome — nothing hangs;
   - [shutdown] is a graceful drain: no new jobs are accepted, workers
     finish everything already queued (including parked affinity chains,
     promoted as their predecessors complete), then the domains are
     joined.

   The pool is generic in the job result type; the server instantiates it
   with {!Protocol.response}. *)

type 'a outcome =
  | Done of 'a
  | Timed_out of { budget_ms : float; elapsed_ms : float }
  | Failed of exn

type 'a cell = {
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable state : 'a outcome option;
}

type 'a job = {
  run : unit -> 'a;
  deadline : float option; (* absolute, seconds on the gettimeofday clock *)
  submitted : float;
  cell : 'a cell;
  on_complete : ('a outcome -> unit) option;
  affinity : string option;
}

type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : 'a job Queue.t;
  (* per-affinity-key parked jobs: a key present here has exactly one
     job running or runnable in [queue]; its queue holds the successors
     in submission order *)
  parked : (string, 'a job Queue.t) Hashtbl.t;
  capacity : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  (* statistics counters are read by [stats] requests on other domains
     while workers mutate them, so they must be atomic: a plain mutable
     int read outside [t.mutex] is a data race (and under- or
     over-reports under contention even on one core, since OCaml gives
     no atomicity for read-modify-write) *)
  executed : int Atomic.t;
  timed_out : int Atomic.t;
  callback_errors : int Atomic.t;
}

type 'a ticket = 'a cell

let now () = Unix.gettimeofday ()

let deliver cell outcome =
  Mutex.lock cell.cell_mutex;
  cell.state <- Some outcome;
  Condition.broadcast cell.cell_cond;
  Mutex.unlock cell.cell_mutex

let complete t job outcome =
  (* the callback runs before the waiter is woken, so effects it performs
     (metrics, response writes) are visible to whoever awaited the job;
     a raising callback must not leave the waiter hanging.  Non-fatal
     callback exceptions are counted and swallowed; fatal ones
     (Out_of_memory, Stack_overflow) are re-raised — after the waiter is
     unblocked — because continuing on a heap-exhausted worker would
     only fail later and further from the cause. *)
  ( match job.on_complete with
  | None -> ()
  | Some f -> (
    try f outcome with
    | (Out_of_memory | Stack_overflow) as fatal ->
      deliver job.cell outcome;
      raise fatal
    | _ -> Atomic.incr t.callback_errors ) );
  deliver job.cell outcome

(* A keyed job finished: promote its parked successor into the runnable
   queue (bypassing the capacity bound — it was admitted at submit time)
   or retire the key. *)
let release_affinity t job =
  match job.affinity with
  | None -> ()
  | Some key ->
    Mutex.lock t.mutex;
    ( match Hashtbl.find_opt t.parked key with
    | Some q when not (Queue.is_empty q) ->
      Queue.push (Queue.pop q) t.queue;
      Condition.signal t.not_empty
    | _ -> Hashtbl.remove t.parked key );
    Mutex.unlock t.mutex

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then begin
      (* stopping and fully drained *)
      Mutex.unlock t.mutex;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      Atomic.incr t.executed;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      let start = now () in
      let budget_ms d = (d -. job.submitted) *. 1000.0 in
      let elapsed_ms () = (now () -. job.submitted) *. 1000.0 in
      ( match job.deadline with
      | Some d when start > d ->
        (* expired while queued: don't burn a worker on a dead request *)
        Atomic.incr t.timed_out;
        complete t job (Timed_out { budget_ms = budget_ms d; elapsed_ms = elapsed_ms () })
      | deadline -> (
        let result = try Done (job.run ()) with e -> Failed e in
        match (deadline, result) with
        | Some d, Done _ when now () > d ->
          Atomic.incr t.timed_out;
          complete t job (Timed_out { budget_ms = budget_ms d; elapsed_ms = elapsed_ms () })
        | _ -> complete t job result ) );
      release_affinity t job;
      next ()
    end
  in
  next ()

let create ?(queue_capacity = 64) ~workers () =
  if workers <= 0 then invalid_arg "Pool.create: workers must be positive";
  if queue_capacity <= 0 then invalid_arg "Pool.create: queue capacity must be positive";
  let t =
    { mutex = Mutex.create (); not_empty = Condition.create (); not_full = Condition.create ();
      queue = Queue.create (); parked = Hashtbl.create 16; capacity = queue_capacity;
      stopping = false; workers = [||];
      executed = Atomic.make 0; timed_out = Atomic.make 0; callback_errors = Atomic.make 0 }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

let num_workers t = Array.length t.workers

let make_job ?deadline_ms ?on_complete ?affinity run =
  let submitted = now () in
  let deadline = Option.map (fun ms -> submitted +. (ms /. 1000.0)) deadline_ms in
  let cell = { cell_mutex = Mutex.create (); cell_cond = Condition.create (); state = None } in
  { run; deadline; submitted; cell; on_complete; affinity }

(* Enqueue under [t.mutex]: a keyed job whose key is already live parks
   behind its predecessor, everything else becomes runnable. *)
let enqueue_locked t job =
  ( match job.affinity with
  | Some key when Hashtbl.mem t.parked key -> Queue.push job (Hashtbl.find t.parked key)
  | affinity ->
    (match affinity with Some key -> Hashtbl.add t.parked key (Queue.create ()) | None -> ());
    Queue.push job t.queue;
    Condition.signal t.not_empty );
  job.cell

let submit ?deadline_ms ?on_complete ?affinity t run =
  let job = make_job ?deadline_ms ?on_complete ?affinity run in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length t.queue >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let cell = enqueue_locked t job in
  Mutex.unlock t.mutex;
  cell

(* Non-blocking admission: [None] when the pool is stopping, the
   runnable queue is at capacity, or the job's affinity chain already
   holds a capacity's worth of parked work.  The socket transport turns
   a refusal into a structured [overloaded] response instead of
   stalling its read loop the way blocking [submit] would. *)
let try_submit ?deadline_ms ?on_complete ?affinity t run =
  Mutex.lock t.mutex;
  let full =
    t.stopping
    ||
    match affinity with
    | Some key when Hashtbl.mem t.parked key ->
      Queue.length (Hashtbl.find t.parked key) >= t.capacity
    | _ -> Queue.length t.queue >= t.capacity
  in
  if full then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    let cell = enqueue_locked t (make_job ?deadline_ms ?on_complete ?affinity run) in
    Mutex.unlock t.mutex;
    Some cell
  end

let await (cell : 'a ticket) =
  Mutex.lock cell.cell_mutex;
  while Option.is_none cell.state do
    Condition.wait cell.cell_cond cell.cell_mutex
  done;
  let outcome = Option.get cell.state in
  Mutex.unlock cell.cell_mutex;
  outcome

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
  else Mutex.unlock t.mutex

let executed t = Atomic.get t.executed
let timed_out t = Atomic.get t.timed_out
let callback_errors t = Atomic.get t.callback_errors
