(* JSON-lines request/response codec for the timing-analysis service.

   One request per line, one response per line.  Batch requests mirror
   the CLI subcommand flags:

     {"id":"r1","kind":"analyze","circuit":"s344","case":"II"}
     {"id":"r2","kind":"mc","circuit":"s344","runs":2000,"seed":7}
     {"id":"r3","kind":"ssta","circuit":"s1196"}
     {"id":"r4","kind":"paths","circuit":"s386","k":8,"sigma_global":0.05}
     {"id":"r5","kind":"size","circuit":"s344","quantile":0.99,"max_moves":50}
     {"id":"r6","kind":"stats"}
     {"id":"r7","kind":"shutdown"}

   Stateful *session* requests load a circuit once and then stream ECO
   mutations, each answered by a dirty-cone incremental re-analysis:

     {"id":"o","kind":"open","session":"s1","circuit":"s5378"}
     {"id":"m1","kind":"mutate","session":"s1","op":"resize","net":"g123","size":2}
     {"id":"m2","kind":"mutate","session":"s1","op":"retype","net":"g77","gate":"NOR"}
     {"id":"m3","kind":"mutate","session":"s1","op":"set_input","net":"pi4","mu_rise":0.5}
     {"id":"q","kind":"query","session":"s1","top":5}
     {"id":"v","kind":"verify","session":"s1"}
     {"id":"c","kind":"close","session":"s1"}

   Session ids are client-chosen so a mutation stream can be pipelined
   without waiting for the open acknowledgement; the server serializes
   requests of one session and runs distinct sessions in parallel.

   Any analysis request may carry "deadline_ms": the server answers with a
   structured "timeout" error if the result cannot be produced within that
   budget.  Propagation-backed kinds (analyze, ssta) also accept
   "check":true, which runs the analysis under the engine's invariant
   sanitizer and reports any per-gate numeric violation as an
   "invariant_violation" error.  Responses are either

     {"id":"r1","status":"ok","kind":"analyze","elapsed_ms":1.93,"result":{...}}
     {"id":"r1","status":"error","code":"timeout","message":"..."}

   The codec is deliberately dependency-free (module {!Json}) so clients in
   any language can speak it with a stock JSON library. *)

type case = Case_i | Case_ii

let case_name = function Case_i -> "I" | Case_ii -> "II"

let case_of_string = function
  | "I" | "i" | "1" -> Some Case_i
  | "II" | "ii" | "2" -> Some Case_ii
  | _ -> None

(* [check = true] runs the analysis under the engine's invariant
   sanitizer ({!Spsta_engine.Propagate.Sanitize}); a violation comes
   back as an [invariant_violation] error instead of a payload. *)
type analyze_params = { circuit : string; case : case; top : int; check : bool }

(* Which Monte Carlo engine serves the request.  Both produce
   bit-identical results (the packed engine is the fast path, the scalar
   one the oracle), so the choice is a throughput knob, not part of the
   result identity. *)
type mc_engine = Scalar | Packed

let mc_engine_name = function Scalar -> "scalar" | Packed -> "packed"

let mc_engine_of_string = function
  | "scalar" -> Some Scalar
  | "packed" -> Some Packed
  | _ -> None

type mc_params = {
  circuit : string;
  case : case;
  runs : int;
  seed : int;
  top : int;
  engine : mc_engine;
}

type ssta_params = { circuit : string; top : int; check : bool }

type paths_params = {
  circuit : string;
  k : int;
  sigma_global : float;
  sigma_spatial : float;
  sigma_random : float;
}

(* Gate-sizing request: the knobs of the [spsta size] CLI subcommand
   that change the result — all of them are part of the memo key. *)
type size_initial = Smallest | Largest

let size_initial_name = function Smallest -> "smallest" | Largest -> "largest"

type size_params = {
  circuit : string;
  quantile : float;
  target : float option;
  max_moves : int;
  candidates : int;
  sizes : int;
  ratio : float;
  initial : size_initial;
  check : bool;
}

(* ---------- sessions ---------- *)

(* One ECO edit.  [Resize] swaps the driving cell for another size of
   its group ({!Spsta_netlist.Transform.resize_gate}); [Retype] swaps
   the gate's logical kind in place (same fan-in — an ECO edit, *not*
   semantics-preserving); [Set_input] replaces the arrival statistics of
   a timing source.  Each maps to a dirty-net set of exactly the edited
   net, so the server's incremental re-analysis cost is the fanout
   cone. *)
type mutation =
  | Resize of { net : string; size : int }
  | Retype of { net : string; gate : Spsta_logic.Gate_kind.t }
  | Set_input of {
      net : string;
      mu_rise : float;
      sigma_rise : float;
      mu_fall : float;
      sigma_fall : float;
    }

let mutation_op = function
  | Resize _ -> "resize"
  | Retype _ -> "retype"
  | Set_input _ -> "set_input"

let mutation_net = function
  | Resize { net; _ } | Retype { net; _ } | Set_input { net; _ } -> net

(* [sizes]/[ratio] fix the drive-strength family of the session's sized
   library (see {!Spsta_netlist.Sized_library.family}); every gate
   starts at size 0. *)
type session_open_params = { session : string; circuit : string; sizes : int; ratio : float }

(* Static-analysis request: [passes] holds canonical short pass names
   ({!Spsta_analysis.Static.pass_name}), sorted and deduplicated at
   decode time so equal selections share one memo entry. *)
type static_params = { circuit : string; passes : string list }

type kind =
  | Analyze of analyze_params
  | Ssta of ssta_params
  | Mc of mc_params
  | Paths of paths_params
  | Size of size_params
  | Static of static_params
  | Session_open of session_open_params
  | Session_mutate of { session : string; mutation : mutation }
  | Session_query of { session : string; top : int }
  | Session_verify of { session : string }
  | Session_close of { session : string }
  | Stats
  | Shutdown

let kind_name = function
  | Analyze _ -> "analyze"
  | Ssta _ -> "ssta"
  | Mc _ -> "mc"
  | Paths _ -> "paths"
  | Size _ -> "size"
  | Static _ -> "static"
  | Session_open _ -> "open"
  | Session_mutate _ -> "mutate"
  | Session_query _ -> "query"
  | Session_verify _ -> "verify"
  | Session_close _ -> "close"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* The session a request addresses, when any — the server's affinity
   key: requests of one session execute in submission order while
   distinct sessions run in parallel on the pool. *)
let session_of_kind = function
  | Session_open { session; _ }
  | Session_mutate { session; _ }
  | Session_query { session; _ }
  | Session_verify { session }
  | Session_close { session } ->
    Some session
  | Analyze _ | Ssta _ | Mc _ | Paths _ | Size _ | Static _ | Stats | Shutdown -> None

type request = { id : string; deadline_ms : float option; kind : kind }

type error_code =
  | Bad_json
  | Unknown_kind
  | Missing_field
  | Bad_field
  | Circuit_not_found
  | Parse_failure
  | Invariant_violation
  | Timeout
  | Overloaded
  | Frame_too_large
  | Invalid_utf8
  | Unknown_session
  | Session_exists
  | Session_limit
  | Internal

let error_code_name = function
  | Bad_json -> "bad_json"
  | Unknown_kind -> "unknown_kind"
  | Missing_field -> "missing_field"
  | Bad_field -> "bad_field"
  | Circuit_not_found -> "circuit_not_found"
  | Parse_failure -> "parse_error"
  | Invariant_violation -> "invariant_violation"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Frame_too_large -> "frame_too_large"
  | Invalid_utf8 -> "invalid_utf8"
  | Unknown_session -> "unknown_session"
  | Session_exists -> "session_exists"
  | Session_limit -> "session_limit"
  | Internal -> "internal"

let error_code_of_name = function
  | "bad_json" -> Some Bad_json
  | "unknown_kind" -> Some Unknown_kind
  | "missing_field" -> Some Missing_field
  | "bad_field" -> Some Bad_field
  | "circuit_not_found" -> Some Circuit_not_found
  | "parse_error" -> Some Parse_failure
  | "invariant_violation" -> Some Invariant_violation
  | "timeout" -> Some Timeout
  | "overloaded" -> Some Overloaded
  | "frame_too_large" -> Some Frame_too_large
  | "invalid_utf8" -> Some Invalid_utf8
  | "unknown_session" -> Some Unknown_session
  | "session_exists" -> Some Session_exists
  | "session_limit" -> Some Session_limit
  | "internal" -> Some Internal
  | _ -> None

type response =
  | Ok of { id : string; kind : string; elapsed_ms : float; result : Json.t }
  | Error of { id : string option; code : error_code; message : string }

type decode_error = { id : string option; code : error_code; message : string }

let error_response (e : decode_error) = Error { id = e.id; code = e.code; message = e.message }

(* ---------- encoding ---------- *)

let request_to_json (r : request) : Json.t =
  let base = [ ("id", Json.string r.id); ("kind", Json.string (kind_name r.kind)) ] in
  let deadline =
    match r.deadline_ms with None -> [] | Some d -> [ ("deadline_ms", Json.float d) ]
  in
  let params =
    match r.kind with
    | Analyze p ->
      [ ("circuit", Json.string p.circuit); ("case", Json.string (case_name p.case));
        ("top", Json.int p.top) ]
      @ (if p.check then [ ("check", Json.bool true) ] else [])
    | Ssta p ->
      [ ("circuit", Json.string p.circuit); ("top", Json.int p.top) ]
      @ (if p.check then [ ("check", Json.bool true) ] else [])
    | Mc p ->
      [ ("circuit", Json.string p.circuit); ("case", Json.string (case_name p.case));
        ("runs", Json.int p.runs); ("seed", Json.int p.seed); ("top", Json.int p.top);
        ("mc_engine", Json.string (mc_engine_name p.engine)) ]
    | Paths p ->
      [ ("circuit", Json.string p.circuit); ("k", Json.int p.k);
        ("sigma_global", Json.float p.sigma_global);
        ("sigma_spatial", Json.float p.sigma_spatial);
        ("sigma_random", Json.float p.sigma_random) ]
    | Size p ->
      [ ("circuit", Json.string p.circuit); ("quantile", Json.float p.quantile);
        ("max_moves", Json.int p.max_moves); ("candidates", Json.int p.candidates);
        ("sizes", Json.int p.sizes); ("ratio", Json.float p.ratio);
        ("initial", Json.string (size_initial_name p.initial)) ]
      @ (match p.target with None -> [] | Some t -> [ ("target", Json.float t) ])
      @ (if p.check then [ ("check", Json.bool true) ] else [])
    | Static p ->
      [ ("circuit", Json.string p.circuit);
        ("passes", Json.List (List.map Json.string p.passes)) ]
    | Session_open p ->
      [ ("session", Json.string p.session); ("circuit", Json.string p.circuit);
        ("sizes", Json.int p.sizes); ("ratio", Json.float p.ratio) ]
    | Session_mutate { session; mutation } ->
      [ ("session", Json.string session); ("op", Json.string (mutation_op mutation)) ]
      @ ( match mutation with
        | Resize { net; size } -> [ ("net", Json.string net); ("size", Json.int size) ]
        | Retype { net; gate } ->
          [ ("net", Json.string net);
            ("gate", Json.string (Spsta_logic.Gate_kind.to_string gate)) ]
        | Set_input { net; mu_rise; sigma_rise; mu_fall; sigma_fall } ->
          [ ("net", Json.string net); ("mu_rise", Json.float mu_rise);
            ("sigma_rise", Json.float sigma_rise); ("mu_fall", Json.float mu_fall);
            ("sigma_fall", Json.float sigma_fall) ] )
    | Session_query { session; top } ->
      [ ("session", Json.string session); ("top", Json.int top) ]
    | Session_verify { session } | Session_close { session } ->
      [ ("session", Json.string session) ]
    | Stats | Shutdown -> []
  in
  Json.Obj (base @ params @ deadline)

let request_to_line r = Json.to_string (request_to_json r)

let response_to_json = function
  | Ok { id; kind; elapsed_ms; result } ->
    Json.Obj
      [ ("id", Json.string id); ("status", Json.string "ok"); ("kind", Json.string kind);
        ("elapsed_ms", Json.float elapsed_ms); ("result", result) ]
  | Error { id; code; message } ->
    Json.Obj
      [ ("id", (match id with None -> Json.Null | Some i -> Json.string i));
        ("status", Json.string "error");
        ("code", Json.string (error_code_name code));
        ("message", Json.string message) ]

let response_to_line r = Json.to_string (response_to_json r)

(* ---------- decoding ---------- *)

let decode_fail ?id code fmt =
  Printf.ksprintf (fun message -> Stdlib.Error { id; code; message }) fmt

let field_string ?id obj name =
  match Json.member name obj with
  | None -> decode_fail ?id Missing_field "missing required field %S" name
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Stdlib.Ok s
    | None -> decode_fail ?id Bad_field "field %S must be a string" name )

let opt_with ?id obj name convert what ~default =
  match Json.member name obj with
  | None -> Stdlib.Ok default
  | Some v -> (
    match convert v with
    | Some x -> Stdlib.Ok x
    | None -> decode_fail ?id Bad_field "field %S must be %s" name what )

let ( let* ) = Result.bind

let decode_case ?id obj =
  match Json.member "case" obj with
  | None -> Stdlib.Ok Case_i
  | Some v -> (
    match Json.to_string_opt v with
    | None -> decode_fail ?id Bad_field "field \"case\" must be a string"
    | Some s -> (
      match case_of_string s with
      | Some c -> Stdlib.Ok c
      | None -> decode_fail ?id Bad_field "unknown input case %S (use I or II)" s ) )

let decode_request_json (json : Json.t) : (request, decode_error) Stdlib.result =
  match json with
  | Json.Obj _ ->
    let* id =
      match Json.member "id" json with
      | None -> decode_fail Missing_field "missing required field \"id\""
      | Some v -> (
        match Json.to_string_opt v with
        | Some s -> Stdlib.Ok s
        | None -> decode_fail Bad_field "field \"id\" must be a string" )
    in
    let* kind_s = field_string ~id json "kind" in
    let* kind =
      match kind_s with
      | "analyze" ->
        let* circuit = field_string ~id json "circuit" in
        let* case = decode_case ~id json in
        let* top = opt_with ~id json "top" Json.to_int_opt "an integer" ~default:0 in
        let* check = opt_with ~id json "check" Json.to_bool_opt "a boolean" ~default:false in
        Stdlib.Ok (Analyze { circuit; case; top; check })
      | "ssta" ->
        let* circuit = field_string ~id json "circuit" in
        let* top = opt_with ~id json "top" Json.to_int_opt "an integer" ~default:0 in
        let* check = opt_with ~id json "check" Json.to_bool_opt "a boolean" ~default:false in
        Stdlib.Ok (Ssta { circuit; top; check })
      | "mc" ->
        let* circuit = field_string ~id json "circuit" in
        let* case = decode_case ~id json in
        let* runs = opt_with ~id json "runs" Json.to_int_opt "an integer" ~default:10_000 in
        let* seed = opt_with ~id json "seed" Json.to_int_opt "an integer" ~default:42 in
        let* top = opt_with ~id json "top" Json.to_int_opt "an integer" ~default:0 in
        let* engine =
          opt_with ~id json "mc_engine"
            (fun v -> Option.bind (Json.to_string_opt v) mc_engine_of_string)
            {|"scalar" or "packed"|} ~default:Packed
        in
        if runs <= 0 then decode_fail ~id Bad_field "field \"runs\" must be positive"
        else Stdlib.Ok (Mc { circuit; case; runs; seed; top; engine })
      | "paths" ->
        let* circuit = field_string ~id json "circuit" in
        let* k = opt_with ~id json "k" Json.to_int_opt "an integer" ~default:8 in
        let* sigma_global =
          opt_with ~id json "sigma_global" Json.to_float_opt "a number" ~default:0.05
        in
        let* sigma_spatial =
          opt_with ~id json "sigma_spatial" Json.to_float_opt "a number" ~default:0.05
        in
        let* sigma_random =
          opt_with ~id json "sigma_random" Json.to_float_opt "a number" ~default:0.05
        in
        if k <= 0 then decode_fail ~id Bad_field "field \"k\" must be positive"
        else Stdlib.Ok (Paths { circuit; k; sigma_global; sigma_spatial; sigma_random })
      | "size" ->
        let* circuit = field_string ~id json "circuit" in
        let* quantile =
          opt_with ~id json "quantile" Json.to_float_opt "a number" ~default:0.99
        in
        let* target =
          opt_with ~id json "target"
            (fun v -> Option.map Option.some (Json.to_float_opt v))
            "a number" ~default:None
        in
        let* max_moves =
          opt_with ~id json "max_moves" Json.to_int_opt "an integer" ~default:400
        in
        let* candidates =
          opt_with ~id json "candidates" Json.to_int_opt "an integer" ~default:8
        in
        let* sizes = opt_with ~id json "sizes" Json.to_int_opt "an integer" ~default:4 in
        let* ratio = opt_with ~id json "ratio" Json.to_float_opt "a number" ~default:1.5 in
        let* initial =
          opt_with ~id json "initial"
            (fun v ->
              Option.bind (Json.to_string_opt v) (function
                | "smallest" -> Some Smallest
                | "largest" -> Some Largest
                | _ -> None))
            {|"smallest" or "largest"|} ~default:Smallest
        in
        let* check = opt_with ~id json "check" Json.to_bool_opt "a boolean" ~default:false in
        if not (quantile > 0.0 && quantile < 1.0) then
          decode_fail ~id Bad_field "field \"quantile\" must lie in (0, 1)"
        else if max_moves < 0 then
          decode_fail ~id Bad_field "field \"max_moves\" must be non-negative"
        else if candidates <= 0 then
          decode_fail ~id Bad_field "field \"candidates\" must be positive"
        else if sizes <= 0 then decode_fail ~id Bad_field "field \"sizes\" must be positive"
        else if not (ratio > 1.0) then
          decode_fail ~id Bad_field "field \"ratio\" must exceed 1"
        else if (match target with Some t -> not (t > 0.0) | None -> false) then
          decode_fail ~id Bad_field "field \"target\" must be positive"
        else
          Stdlib.Ok
            (Size
               { circuit; quantile; target; max_moves; candidates; sizes; ratio; initial;
                 check })
      | "static" ->
        let* circuit = field_string ~id json "circuit" in
        let all = List.map Spsta_analysis.Static.pass_name Spsta_analysis.Static.all_passes in
        let* passes =
          match Json.member "passes" json with
          | None -> Stdlib.Ok (List.sort_uniq compare all)
          | Some (Json.List vs) ->
            let rec convert acc = function
              | [] -> Stdlib.Ok (List.rev acc)
              | v :: rest -> (
                match Option.bind (Json.to_string_opt v) Spsta_analysis.Static.pass_of_name with
                | Some p -> convert (Spsta_analysis.Static.pass_name p :: acc) rest
                | None ->
                  decode_fail ~id Bad_field
                    "field \"passes\" entries must name passes (const, reconv, obs, crit)" )
            in
            let* named = convert [] vs in
            if named = [] then
              decode_fail ~id Bad_field "field \"passes\" must not be empty"
            else Stdlib.Ok (List.sort_uniq compare named)
          | Some _ -> decode_fail ~id Bad_field "field \"passes\" must be an array"
        in
        Stdlib.Ok (Static { circuit; passes })
      | "open" ->
        let* session = field_string ~id json "session" in
        let* circuit = field_string ~id json "circuit" in
        let* sizes = opt_with ~id json "sizes" Json.to_int_opt "an integer" ~default:4 in
        let* ratio = opt_with ~id json "ratio" Json.to_float_opt "a number" ~default:1.5 in
        if session = "" then decode_fail ~id Bad_field "field \"session\" must be non-empty"
        else if sizes <= 0 then decode_fail ~id Bad_field "field \"sizes\" must be positive"
        else if not (ratio > 1.0) then
          decode_fail ~id Bad_field "field \"ratio\" must exceed 1"
        else Stdlib.Ok (Session_open { session; circuit; sizes; ratio })
      | "mutate" ->
        let* session = field_string ~id json "session" in
        let* op = field_string ~id json "op" in
        let* net = field_string ~id json "net" in
        let* mutation =
          match op with
          | "resize" ->
            let* size =
              match Json.member "size" json with
              | None -> decode_fail ~id Missing_field "missing required field \"size\""
              | Some v -> (
                match Json.to_int_opt v with
                | Some s when s >= 0 -> Stdlib.Ok s
                | Some _ -> decode_fail ~id Bad_field "field \"size\" must be non-negative"
                | None -> decode_fail ~id Bad_field "field \"size\" must be an integer" )
            in
            Stdlib.Ok (Resize { net; size })
          | "retype" ->
            let* gate_s = field_string ~id json "gate" in
            ( match Spsta_logic.Gate_kind.of_string gate_s with
            | Some gate -> Stdlib.Ok (Retype { net; gate })
            | None -> decode_fail ~id Bad_field "unknown gate kind %S" gate_s )
          | "set_input" ->
            let* mu_rise =
              opt_with ~id json "mu_rise" Json.to_float_opt "a number" ~default:0.0
            in
            let* sigma_rise =
              opt_with ~id json "sigma_rise" Json.to_float_opt "a number" ~default:1.0
            in
            let* mu_fall =
              opt_with ~id json "mu_fall" Json.to_float_opt "a number" ~default:0.0
            in
            let* sigma_fall =
              opt_with ~id json "sigma_fall" Json.to_float_opt "a number" ~default:1.0
            in
            if sigma_rise < 0.0 || sigma_fall < 0.0 then
              decode_fail ~id Bad_field "arrival sigmas must be non-negative"
            else if
              not
                (Float.is_finite mu_rise && Float.is_finite sigma_rise
                && Float.is_finite mu_fall && Float.is_finite sigma_fall)
            then decode_fail ~id Bad_field "arrival statistics must be finite"
            else Stdlib.Ok (Set_input { net; mu_rise; sigma_rise; mu_fall; sigma_fall })
          | other -> decode_fail ~id Bad_field "unknown mutation op %S" other
        in
        Stdlib.Ok (Session_mutate { session; mutation })
      | "query" ->
        let* session = field_string ~id json "session" in
        let* top = opt_with ~id json "top" Json.to_int_opt "an integer" ~default:0 in
        Stdlib.Ok (Session_query { session; top })
      | "verify" ->
        let* session = field_string ~id json "session" in
        Stdlib.Ok (Session_verify { session })
      | "close" ->
        let* session = field_string ~id json "session" in
        Stdlib.Ok (Session_close { session })
      | "stats" -> Stdlib.Ok Stats
      | "shutdown" -> Stdlib.Ok Shutdown
      | other -> decode_fail ~id Unknown_kind "unknown request kind %S" other
    in
    let* deadline_ms =
      match Json.member "deadline_ms" json with
      | None -> Stdlib.Ok None
      | Some v -> (
        match Json.to_float_opt v with
        | Some d when d > 0.0 -> Stdlib.Ok (Some d)
        | Some _ -> decode_fail ~id Bad_field "field \"deadline_ms\" must be positive"
        | None -> decode_fail ~id Bad_field "field \"deadline_ms\" must be a number" )
    in
    Stdlib.Ok { id; deadline_ms; kind }
  | _ -> decode_fail Bad_json "request must be a JSON object"

let request_of_line line : (request, decode_error) Stdlib.result =
  match Json.of_string line with
  | exception Json.Parse_error { pos; message } ->
    Stdlib.Error
      { id = None; code = Bad_json;
        message = Printf.sprintf "invalid JSON at offset %d: %s" pos message }
  | json -> decode_request_json json

(* Response decoding exists for clients and for round-trip testing; the
   server itself only encodes responses. *)
let response_of_line line : (response, decode_error) Stdlib.result =
  match Json.of_string line with
  | exception Json.Parse_error { pos; message } ->
    Stdlib.Error
      { id = None; code = Bad_json;
        message = Printf.sprintf "invalid JSON at offset %d: %s" pos message }
  | json -> (
    let* status = field_string json "status" in
    match status with
    | "ok" ->
      let* id = field_string json "id" in
      let* kind = field_string ~id json "kind" in
      let* elapsed_ms = opt_with ~id json "elapsed_ms" Json.to_float_opt "a number" ~default:0.0 in
      let result = Option.value (Json.member "result" json) ~default:Json.Null in
      Stdlib.Ok (Ok { id; kind; elapsed_ms; result })
    | "error" ->
      let id = Option.bind (Json.member "id" json) Json.to_string_opt in
      let* code_s = field_string ?id json "code" in
      let* code =
        match error_code_of_name code_s with
        | Some c -> Stdlib.Ok c
        | None -> decode_fail ?id Bad_field "unknown error code %S" code_s
      in
      let* message = field_string ?id json "message" in
      Stdlib.Ok (Error { id; code; message })
    | other -> decode_fail Bad_field "unknown status %S" other )

let is_ok = function Ok _ -> true | Error _ -> false

let response_id = function Ok { id; _ } -> Some id | Error { id; _ } -> id
