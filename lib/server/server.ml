(* The batch timing-analysis service.

   Two entry points over the same machinery:

   - [serve ic oc]: long-lived JSON-lines loop.  Requests are read from
     [ic] one per line and dispatched to the worker pool; responses are
     streamed to [oc] as they complete (completion order, tagged with the
     request id).  EOF or a [shutdown] request drains the pool gracefully.
   - [run_batch lines]: execute a request file concurrently and return the
     responses in request order.

   Control requests ([stats], [shutdown]) are answered by the server loop
   itself; analysis requests go through {!Engine.execute} on a worker
   domain, memoised via {!Cache}. *)

type config = {
  workers : int;
  queue_capacity : int;
  circuit_cache : int;
  result_cache : int;
  default_deadline_ms : float option;
  analysis_domains : int;
      (* domains per SPSTA/SSTA propagation inside one request; results
         are bit-identical at every value, so it composes freely with
         the memo table.  Worth raising above 1 only when requests are
         few and circuits large — otherwise [workers] already saturates
         the cores. *)
  max_sessions : int;
  idle_timeout_s : float;
      (* sessions idle longer than this are evicted by the transport's
         sweep; the stdio loop has no sweep, so it only applies on
         sockets *)
  store_path : string option;
      (* persistent backing for the result memo; [None] keeps the memo
         purely in-memory as before *)
  store_fsync : bool;
  max_frame_bytes : int; (* JSONL frame bound on socket transports *)
  max_inflight : int; (* per-connection in-flight request bound *)
}

let default_config =
  { workers = max 1 (Domain.recommended_domain_count () - 1);
    queue_capacity = 64;
    circuit_cache = 32;
    result_cache = 512;
    default_deadline_ms = None;
    analysis_domains = 1;
    max_sessions = 64;
    idle_timeout_s = 300.0;
    store_path = None;
    store_fsync = true;
    max_frame_bytes = 1 lsl 20;
    max_inflight = 32 }

type t = {
  config : config;
  cache : Cache.t;
  metrics : Metrics.t;
  pool : Protocol.response Pool.t;
  sessions : Session.registry;
}

let create ?(config = default_config) () =
  let store = Option.map (Store.open_ ~fsync:config.store_fsync) config.store_path in
  let metrics = Metrics.create () in
  { config;
    cache = Cache.create ?store ~circuit_capacity:config.circuit_cache
        ~result_capacity:config.result_cache ();
    metrics;
    pool = Pool.create ~queue_capacity:config.queue_capacity ~workers:config.workers ();
    sessions = Session.create_registry ~max_sessions:config.max_sessions metrics }

let cache t = t.cache
let metrics t = t.metrics
let sessions t = t.sessions
let config t = t.config

(* Graceful drain: finish everything already accepted, then flush and
   close the persistent store so its last append is durable. *)
let drain t =
  Pool.shutdown t.pool;
  Session.close_all t.sessions;
  match Cache.store t.cache with None -> () | Some s -> Store.close s

let pool_json t =
  Json.Obj
    [ ("workers", Json.int (Pool.num_workers t.pool));
      ("executed", Json.int (Pool.executed t.pool));
      ("timed_out", Json.int (Pool.timed_out t.pool));
      ("callback_errors", Json.int (Pool.callback_errors t.pool)) ]

let stats_response t ~id =
  let result =
    Json.Obj
      [ ("cache", Cache.stats_json t.cache); ("pool", pool_json t);
        ("sessions", Session.stats_json t.sessions);
        ("metrics", Metrics.to_json t.metrics) ]
  in
  Metrics.record t.metrics ~kind:"stats" ~outcome:`Ok ~elapsed_ms:0.0;
  Protocol.Ok { id; kind = "stats"; elapsed_ms = 0.0; result }

let shutdown_response ~id =
  Protocol.Ok
    { id; kind = "shutdown"; elapsed_ms = 0.0;
      result = Json.Obj [ ("drained", Json.Bool true) ] }

let response_of_outcome ~id = function
  | Pool.Done response -> response
  | Pool.Timed_out { budget_ms; elapsed_ms } ->
    Protocol.Error
      { id = Some id; code = Protocol.Timeout;
        message =
          Printf.sprintf "deadline of %.3g ms exceeded (%.3g ms elapsed)" budget_ms elapsed_ms }
  | Pool.Failed e ->
    Protocol.Error
      { id = Some id; code = Protocol.Internal; message = Printexc.to_string e }

let metrics_class = function
  | Pool.Timed_out _ -> `Timeout
  | Pool.Failed _ -> `Error
  | Pool.Done (Protocol.Ok _) -> `Ok
  | Pool.Done (Protocol.Error _) -> `Error

(* Submit an analysis or session request to the pool.  [on_response],
   when given, runs on the completing worker domain after metrics are
   recorded.  Session requests carry their session name as the pool
   affinity key — one session's stream executes in submission order
   while distinct sessions run in parallel — and hold the registry's
   per-name inflight count so the idle sweep never evicts a session
   with queued work. *)
let submission_parts ?on_response t (request : Protocol.request) =
  let deadline_ms =
    match request.Protocol.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  let kind = Protocol.kind_name request.Protocol.kind in
  let affinity = Protocol.session_of_kind request.Protocol.kind in
  Option.iter (Session.retain t.sessions) affinity;
  let submitted = Unix.gettimeofday () in
  let on_complete outcome =
    Option.iter (Session.release t.sessions) affinity;
    let elapsed_ms = (Unix.gettimeofday () -. submitted) *. 1000.0 in
    Metrics.record t.metrics ~kind ~outcome:(metrics_class outcome) ~elapsed_ms;
    match on_response with
    | None -> ()
    | Some f -> f (response_of_outcome ~id:request.Protocol.id outcome)
  in
  let run () =
    Engine.execute ~domains:t.config.analysis_domains ~sessions:t.sessions t.cache request
  in
  (deadline_ms, affinity, on_complete, run)

let submit ?on_response t (request : Protocol.request) =
  let deadline_ms, affinity, on_complete, run = submission_parts ?on_response t request in
  Pool.submit ?deadline_ms ?affinity ~on_complete t.pool run

(* Non-blocking variant for the socket transport: [None] means the pool
   refused admission and the caller must answer [overloaded]. *)
let try_submit ?on_response t (request : Protocol.request) =
  let deadline_ms, affinity, on_complete, run = submission_parts ?on_response t request in
  let ticket = Pool.try_submit ?deadline_ms ?affinity ~on_complete t.pool run in
  if Option.is_none ticket then Option.iter (Session.release t.sessions) affinity;
  ticket

let record_invalid t = Metrics.record t.metrics ~kind:"invalid" ~outcome:`Error ~elapsed_ms:0.0

(* ---------- streaming server ---------- *)

let serve ?config ic oc =
  let t = create ?config () in
  let out_mutex = Mutex.create () in
  let write response =
    Mutex.lock out_mutex;
    output_string oc (Protocol.response_to_line response);
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_mutex
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | "" -> loop ()
    | line -> (
      match Protocol.request_of_line line with
      | Error e ->
        record_invalid t;
        write (Protocol.error_response e);
        loop ()
      | Ok request -> (
        match request.Protocol.kind with
        | Protocol.Stats ->
          write (stats_response t ~id:request.Protocol.id);
          loop ()
        | Protocol.Shutdown ->
          (* stop reading, finish everything already accepted, then ack *)
          Pool.shutdown t.pool;
          Metrics.record t.metrics ~kind:"shutdown" ~outcome:`Ok ~elapsed_ms:0.0;
          write (shutdown_response ~id:request.Protocol.id)
        | _ ->
          ignore (submit ~on_response:write t request);
          loop () ) )
  in
  loop ();
  drain t;
  t

(* ---------- batch execution ---------- *)

(* Responses come back in request order.  Control requests are evaluated
   when their turn in the output order is reached — i.e. after every
   earlier request has completed — so a trailing [stats] request observes
   the cache traffic of the whole batch. *)
let run_batch ?config lines =
  let t = create ?config () in
  let pending =
    List.map
      (fun line ->
        match Protocol.request_of_line line with
        | Error e ->
          `Inline
            (fun () ->
              record_invalid t;
              Protocol.error_response e)
        | Ok request -> (
          match request.Protocol.kind with
          | Protocol.Stats -> `Inline (fun () -> stats_response t ~id:request.Protocol.id)
          | Protocol.Shutdown ->
            `Inline
              (fun () ->
                Metrics.record t.metrics ~kind:"shutdown" ~outcome:`Ok ~elapsed_ms:0.0;
                shutdown_response ~id:request.Protocol.id)
          | _ -> `Ticket (request, submit t request) ))
      lines
  in
  let responses =
    List.map
      (function
        | `Inline f -> f ()
        | `Ticket ((request : Protocol.request), ticket) ->
          response_of_outcome ~id:request.Protocol.id (Pool.await ticket))
      pending
  in
  drain t;
  (t, responses)

let run_batch_file ?config path =
  let ic = open_in path in
  let lines = ref [] in
  ( try
      while true do
        let line = input_line ic in
        if String.trim line <> "" then lines := line :: !lines
      done
    with End_of_file -> close_in ic );
  run_batch ?config (List.rev !lines)
