(* The batch timing-analysis service.

   Two entry points over the same machinery:

   - [serve ic oc]: long-lived JSON-lines loop.  Requests are read from
     [ic] one per line and dispatched to the worker pool; responses are
     streamed to [oc] as they complete (completion order, tagged with the
     request id).  EOF or a [shutdown] request drains the pool gracefully.
   - [run_batch lines]: execute a request file concurrently and return the
     responses in request order.

   Control requests ([stats], [shutdown]) are answered by the server loop
   itself; analysis requests go through {!Engine.execute} on a worker
   domain, memoised via {!Cache}. *)

type config = {
  workers : int;
  queue_capacity : int;
  circuit_cache : int;
  result_cache : int;
  default_deadline_ms : float option;
  analysis_domains : int;
      (* domains per SPSTA/SSTA propagation inside one request; results
         are bit-identical at every value, so it composes freely with
         the memo table.  Worth raising above 1 only when requests are
         few and circuits large — otherwise [workers] already saturates
         the cores. *)
}

let default_config =
  { workers = max 1 (Domain.recommended_domain_count () - 1);
    queue_capacity = 64;
    circuit_cache = 32;
    result_cache = 512;
    default_deadline_ms = None;
    analysis_domains = 1 }

type t = {
  config : config;
  cache : Cache.t;
  metrics : Metrics.t;
  pool : Protocol.response Pool.t;
}

let create ?(config = default_config) () =
  { config;
    cache = Cache.create ~circuit_capacity:config.circuit_cache
        ~result_capacity:config.result_cache ();
    metrics = Metrics.create ();
    pool = Pool.create ~queue_capacity:config.queue_capacity ~workers:config.workers () }

let cache t = t.cache
let metrics t = t.metrics

let pool_json t =
  Json.Obj
    [ ("workers", Json.int (Pool.num_workers t.pool));
      ("executed", Json.int (Pool.executed t.pool));
      ("timed_out", Json.int (Pool.timed_out t.pool));
      ("callback_errors", Json.int (Pool.callback_errors t.pool)) ]

let stats_response t ~id =
  let result =
    Json.Obj
      [ ("cache", Cache.stats_json t.cache); ("pool", pool_json t);
        ("metrics", Metrics.to_json t.metrics) ]
  in
  Metrics.record t.metrics ~kind:"stats" ~outcome:`Ok ~elapsed_ms:0.0;
  Protocol.Ok { id; kind = "stats"; elapsed_ms = 0.0; result }

let shutdown_response ~id =
  Protocol.Ok
    { id; kind = "shutdown"; elapsed_ms = 0.0;
      result = Json.Obj [ ("drained", Json.Bool true) ] }

let response_of_outcome ~id = function
  | Pool.Done response -> response
  | Pool.Timed_out { budget_ms; elapsed_ms } ->
    Protocol.Error
      { id = Some id; code = Protocol.Timeout;
        message =
          Printf.sprintf "deadline of %.3g ms exceeded (%.3g ms elapsed)" budget_ms elapsed_ms }
  | Pool.Failed e ->
    Protocol.Error
      { id = Some id; code = Protocol.Internal; message = Printexc.to_string e }

let metrics_class = function
  | Pool.Timed_out _ -> `Timeout
  | Pool.Failed _ -> `Error
  | Pool.Done (Protocol.Ok _) -> `Ok
  | Pool.Done (Protocol.Error _) -> `Error

(* Submit an analysis request to the pool.  [on_response], when given, runs
   on the completing worker domain after metrics are recorded. *)
let submit ?on_response t (request : Protocol.request) =
  let deadline_ms =
    match request.Protocol.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  let kind = Protocol.kind_name request.Protocol.kind in
  let submitted = Unix.gettimeofday () in
  let on_complete outcome =
    let elapsed_ms = (Unix.gettimeofday () -. submitted) *. 1000.0 in
    Metrics.record t.metrics ~kind ~outcome:(metrics_class outcome) ~elapsed_ms;
    match on_response with
    | None -> ()
    | Some f -> f (response_of_outcome ~id:request.Protocol.id outcome)
  in
  Pool.submit ?deadline_ms ~on_complete t.pool (fun () ->
      Engine.execute ~domains:t.config.analysis_domains t.cache request)

let record_invalid t = Metrics.record t.metrics ~kind:"invalid" ~outcome:`Error ~elapsed_ms:0.0

(* ---------- streaming server ---------- *)

let serve ?config ic oc =
  let t = create ?config () in
  let out_mutex = Mutex.create () in
  let write response =
    Mutex.lock out_mutex;
    output_string oc (Protocol.response_to_line response);
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_mutex
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Pool.shutdown t.pool
    | "" -> loop ()
    | line -> (
      match Protocol.request_of_line line with
      | Error e ->
        record_invalid t;
        write (Protocol.error_response e);
        loop ()
      | Ok request -> (
        match request.Protocol.kind with
        | Protocol.Stats ->
          write (stats_response t ~id:request.Protocol.id);
          loop ()
        | Protocol.Shutdown ->
          (* stop reading, finish everything already accepted, then ack *)
          Pool.shutdown t.pool;
          Metrics.record t.metrics ~kind:"shutdown" ~outcome:`Ok ~elapsed_ms:0.0;
          write (shutdown_response ~id:request.Protocol.id)
        | _ ->
          ignore (submit ~on_response:write t request);
          loop () ) )
  in
  loop ();
  Pool.shutdown t.pool;
  t

(* ---------- batch execution ---------- *)

(* Responses come back in request order.  Control requests are evaluated
   when their turn in the output order is reached — i.e. after every
   earlier request has completed — so a trailing [stats] request observes
   the cache traffic of the whole batch. *)
let run_batch ?config lines =
  let t = create ?config () in
  let pending =
    List.map
      (fun line ->
        match Protocol.request_of_line line with
        | Error e ->
          `Inline
            (fun () ->
              record_invalid t;
              Protocol.error_response e)
        | Ok request -> (
          match request.Protocol.kind with
          | Protocol.Stats -> `Inline (fun () -> stats_response t ~id:request.Protocol.id)
          | Protocol.Shutdown ->
            `Inline
              (fun () ->
                Metrics.record t.metrics ~kind:"shutdown" ~outcome:`Ok ~elapsed_ms:0.0;
                shutdown_response ~id:request.Protocol.id)
          | _ -> `Ticket (request, submit t request) ))
      lines
  in
  let responses =
    List.map
      (function
        | `Inline f -> f ()
        | `Ticket ((request : Protocol.request), ticket) ->
          response_of_outcome ~id:request.Protocol.id (Pool.await ticket))
      pending
  in
  Pool.shutdown t.pool;
  (t, responses)

let run_batch_file ?config path =
  let ic = open_in path in
  let lines = ref [] in
  ( try
      while true do
        let line = input_line ic in
        if String.trim line <> "" then lines := line :: !lines
      done
    with End_of_file -> close_in ic );
  run_batch ?config (List.rev !lines)
