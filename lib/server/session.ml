(* Stateful incremental timing sessions.

   A session loads a circuit once, runs one full SSTA sweep, and then
   answers a stream of ECO mutations — resize a gate within its
   drive-strength family, retype a gate in place, replace a timing
   source's arrival statistics — each with a dirty-cone incremental
   re-analysis ({!Spsta_ssta.Ssta.update_rf}).  The session owns a
   *private copy* of the circuit: retype mutates driver records in
   place, and the cache's circuit object is shared with concurrent batch
   requests, so sessions must never alias it.

   Concurrency contract: the worker pool serializes all requests of one
   session via its affinity key (see {!Pool}), so at most one request
   touches a session record at a time and the per-session state needs no
   lock of its own.  The registry table and the per-name inflight
   counters are mutex-guarded because opens, closes, the idle sweep and
   the [stats] gauge run on different domains.

   Timing bookkeeping: the full sweep on open and every incremental
   update are wall-clocked, so [verify] can report the measured speedup
   of the mutation stream against a from-scratch analysis — the number
   the session-smoke CI step asserts on. *)

module Circuit = Spsta_netlist.Circuit
module Sized = Spsta_netlist.Sized_library
module Transform = Spsta_netlist.Transform
module Ssta = Spsta_ssta.Ssta
module Normal = Spsta_dist.Normal

exception Error of { code : Protocol.error_code; message : string }

let fail code fmt = Printf.ksprintf (fun message -> raise (Error { code; message })) fmt
let now () = Unix.gettimeofday ()

type t = {
  key : string;
  circuit : Circuit.t; (* private copy; retype mutates it in place *)
  sized : Sized.t;
  assignment : Sized.assignment;
  (* arrival overrides for timing sources; absent sources keep the
     paper's standard-normal input statistics *)
  arrivals : (Circuit.id, Ssta.arrival) Hashtbl.t;
  mutable result : Ssta.result;
  mutable mutations : int;
  mutable incremental : int; (* mutations that re-evaluated >= 1 gate *)
  mutable dirty_total : int; (* gates re-evaluated across those *)
  mutable full_ms : float; (* the full sweep on open *)
  mutable incr_ms_total : float;
  mutable last_active : float;
  created : float;
}

(* Rebuild the circuit from its interface and gate list so the session
   owns every mutable driver record.  Net ids are freshly assigned and
   may differ from the cache's copy; they never leave the session. *)
let copy_circuit circuit =
  let b = Spsta_netlist.Builder_of_circuit.builder_with_interface circuit in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; inputs } ->
        Circuit.Builder.add_gate b ~output:(Circuit.net_name circuit g) kind
          (Array.to_list (Array.map (Circuit.net_name circuit) inputs))
      | Circuit.Input | Circuit.Dff_output _ -> ())
    (Circuit.topo_gates circuit);
  Circuit.Builder.finalize b

let default_arrival = { Ssta.rise = Normal.standard; fall = Normal.standard }

let arrival_of s id =
  match Hashtbl.find_opt s.arrivals id with Some a -> a | None -> default_arrival

let delay_rf s id = Sized.delay_rf s.sized s.circuit s.assignment id

(* Sessions pin the record engine.  An ECO session's lifetime is one
   full sweep on open followed by hundreds of tiny dirty-cone updates,
   and the record engine's [update_rf] physically shares every state
   outside the cone — per-mutation cost is the cone alone.  The flat
   engine (the default elsewhere) is built for sweep-dominated
   workloads: its update functionally copies the per-net slot arrays,
   a fixed per-mutation tax that dwarfs a ten-gate cone.  Both engines
   are bit-identical, so [verify]'s comparison against a from-scratch
   default-engine sweep is unaffected. *)
let full_analyze s =
  let start = now () in
  let result =
    Ssta.analyze_rf ~engine:`Record ~delay_rf:(delay_rf s) ~input_arrival_of:(arrival_of s)
      s.circuit
  in
  (result, (now () -. start) *. 1000.0)

(* ---------- payload helpers ---------- *)

let critical_json s =
  let rise = Ssta.max_arrival s.result `Rise in
  let fall = Ssta.max_arrival s.result `Fall in
  let worst = if Normal.mean rise >= Normal.mean fall then rise else fall in
  Json.Obj
    [ ("mu", Json.float (Normal.mean worst)); ("sigma", Json.float (Normal.stddev worst));
      ("mu_rise", Json.float (Normal.mean rise)); ("sigma_rise", Json.float (Normal.stddev rise));
      ("mu_fall", Json.float (Normal.mean fall)); ("sigma_fall", Json.float (Normal.stddev fall)) ]

let session_header s =
  [ ("session", Json.string s.key); ("circuit", Json.string (Circuit.name s.circuit));
    ("mutations", Json.int s.mutations) ]

(* ---------- registry ---------- *)

type registry = {
  table : (string, t) Hashtbl.t;
  (* queued-or-running requests per session name, maintained by the
     transport; the idle sweep never evicts a session with work pending *)
  inflight : (string, int ref) Hashtbl.t;
  mutex : Mutex.t;
  max_sessions : int;
  metrics : Metrics.t;
}

let create_registry ?(max_sessions = 64) metrics =
  if max_sessions <= 0 then invalid_arg "Session.create_registry: max_sessions must be positive";
  { table = Hashtbl.create 16; inflight = Hashtbl.create 16; mutex = Mutex.create ();
    max_sessions; metrics }

let locked reg f =
  Mutex.lock reg.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.mutex) f

let open_count reg = locked reg (fun () -> Hashtbl.length reg.table)

let retain reg name =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.inflight name with
      | Some r -> incr r
      | None -> Hashtbl.replace reg.inflight name (ref 1))

let release reg name =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.inflight name with
      | Some r ->
        decr r;
        if !r <= 0 then Hashtbl.remove reg.inflight name
      | None -> ())

let find_session reg name =
  match locked reg (fun () -> Hashtbl.find_opt reg.table name) with
  | Some s -> s
  | None -> fail Protocol.Unknown_session "no open session %S" name

let find_net s name =
  match Circuit.find s.circuit name with
  | Some id -> id
  | None ->
    fail Protocol.Bad_field "no net %S in circuit %S" name (Circuit.name s.circuit)

(* ---------- operations ----------

   Each returns the response payload and raises {!Error} on failure;
   {!Engine} maps the exception to a protocol error response. *)

let open_session reg cache (p : Protocol.session_open_params) =
  (* cheap pre-check before paying for the copy + full sweep; re-checked
     under the mutex at insert time, where it is authoritative *)
  locked reg (fun () ->
      if Hashtbl.mem reg.table p.Protocol.session then
        fail Protocol.Session_exists "session %S is already open" p.Protocol.session;
      if Hashtbl.length reg.table >= reg.max_sessions then
        fail Protocol.Session_limit "session limit %d reached" reg.max_sessions);
  let loaded = Cache.load_circuit cache p.Protocol.circuit in
  let circuit = copy_circuit loaded.Cache.circuit in
  let sized =
    Sized.family ~sizes:p.Protocol.sizes ~ratio:p.Protocol.ratio
      Spsta_netlist.Cell_library.default
  in
  let assignment = Sized.initial circuit in
  let arrivals = Hashtbl.create 8 in
  let delay id = Sized.delay_rf sized circuit assignment id in
  let arrival_of id =
    match Hashtbl.find_opt arrivals id with Some a -> a | None -> default_arrival
  in
  let t0 = now () in
  (* record engine: updates follow the representation of their input
     result — see [full_analyze] *)
  let result = Ssta.analyze_rf ~engine:`Record ~delay_rf:delay ~input_arrival_of:arrival_of circuit in
  let full_ms = (now () -. t0) *. 1000.0 in
  let s =
    { key = p.Protocol.session; circuit; sized; assignment; arrivals; result;
      mutations = 0; incremental = 0; dirty_total = 0; full_ms; incr_ms_total = 0.0;
      last_active = now (); created = t0 }
  in
  locked reg (fun () ->
      if Hashtbl.mem reg.table s.key then
        fail Protocol.Session_exists "session %S is already open" s.key;
      if Hashtbl.length reg.table >= reg.max_sessions then
        fail Protocol.Session_limit "session limit %d reached" reg.max_sessions;
      Hashtbl.replace reg.table s.key s);
  Metrics.session_opened reg.metrics;
  Metrics.session_full_analysis reg.metrics;
  Json.Obj
    ( session_header s
    @ [ ("nets", Json.int (Circuit.num_nets circuit));
        ("gates", Json.int (Circuit.gate_count circuit));
        ("depth", Json.int (Circuit.depth circuit));
        ("sizes", Json.int (Sized.num_sizes sized));
        ("full_ms", Json.float s.full_ms); ("critical", critical_json s) ] )

let apply_mutation s (m : Protocol.mutation) =
  match m with
  | Protocol.Resize { net; size } ->
    let id = find_net s net in
    (match Circuit.driver s.circuit id with
    | Circuit.Gate _ -> ()
    | Circuit.Input | Circuit.Dff_output _ ->
      fail Protocol.Bad_field "net %S is not gate-driven" net);
    if size < 0 || size >= Sized.num_sizes s.sized then
      fail Protocol.Bad_field "size %d outside [0, %d)" size (Sized.num_sizes s.sized);
    Transform.resize_gate s.sized s.circuit s.assignment id ~size
  | Protocol.Retype { net; gate } -> (
    let id = find_net s net in
    try Transform.retype_gate s.circuit id ~kind:gate
    with Invalid_argument message -> fail Protocol.Bad_field "%s" message )
  | Protocol.Set_input { net; mu_rise; sigma_rise; mu_fall; sigma_fall } ->
    let id = find_net s net in
    (match Circuit.driver s.circuit id with
    | Circuit.Input | Circuit.Dff_output _ -> ()
    | Circuit.Gate _ ->
      fail Protocol.Bad_field "net %S is not a timing source" net);
    Hashtbl.replace s.arrivals id
      { Ssta.rise = Normal.make ~mu:mu_rise ~sigma:sigma_rise;
        fall = Normal.make ~mu:mu_fall ~sigma:sigma_fall };
    [ id ]

let mutate reg session (m : Protocol.mutation) =
  let s = find_session reg session in
  let dirty = apply_mutation s m in
  (* [delay_rf] is consulted exactly once per re-evaluated gate, so a
     wrapped counter measures the dirty cone the update actually
     touched *)
  let cone = ref 0 in
  let elapsed_ms =
    match dirty with
    | [] -> 0.0
    | changed ->
      let counting_delay id =
        incr cone;
        delay_rf s id
      in
      let start = now () in
      let result =
        Ssta.update_rf ~delay_rf:counting_delay ~input_arrival_of:(arrival_of s) s.result
          ~changed
      in
      let elapsed = (now () -. start) *. 1000.0 in
      s.result <- result;
      elapsed
  in
  s.mutations <- s.mutations + 1;
  if !cone > 0 then begin
    s.incremental <- s.incremental + 1;
    s.dirty_total <- s.dirty_total + !cone;
    s.incr_ms_total <- s.incr_ms_total +. elapsed_ms
  end;
  Metrics.session_mutation reg.metrics ~dirty:!cone;
  s.last_active <- now ();
  Json.Obj
    ( session_header s
    @ [ ("op", Json.string (Protocol.mutation_op m));
        ("net", Json.string (Protocol.mutation_net m));
        ("applied", Json.bool (dirty <> [])); ("dirty_gates", Json.int !cone);
        ("update_ms", Json.float elapsed_ms); ("critical", critical_json s) ] )

(* [top = 0] means every endpoint; otherwise the [top] with the largest
   mean arrival, ties broken by net id (same rule as the batch kinds). *)
let query reg session ~top =
  let s = find_session reg session in
  let mean_of e =
    let a = Ssta.arrival s.result e in
    Float.max (Normal.mean a.Ssta.rise) (Normal.mean a.Ssta.fall)
  in
  let endpoints =
    let all = Circuit.endpoints s.circuit in
    if top <= 0 then all
    else
      List.map (fun e -> (e, mean_of e)) all
      |> List.sort (fun (e1, m1) (e2, m2) ->
             match compare m2 m1 with 0 -> compare e1 e2 | c -> c)
      |> List.filteri (fun i _ -> i < top)
      |> List.map fst
  in
  let endpoint_json e =
    let a = Ssta.arrival s.result e in
    Json.Obj
      [ ("net", Json.string (Circuit.net_name s.circuit e));
        ("mu_rise", Json.float (Normal.mean a.Ssta.rise));
        ("sigma_rise", Json.float (Normal.stddev a.Ssta.rise));
        ("mu_fall", Json.float (Normal.mean a.Ssta.fall));
        ("sigma_fall", Json.float (Normal.stddev a.Ssta.fall)) ]
  in
  s.last_active <- now ();
  Json.Obj
    ( session_header s
    @ [ ("critical", critical_json s);
        ("endpoints", Json.List (List.map endpoint_json endpoints)) ] )

(* Exact equality on the wire-level bit patterns: [Int64.bits_of_float]
   distinguishes 0.0 from -0.0 and compares NaNs by payload, which is
   the identity the incremental engine promises. *)
let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arrivals_equal a b =
  bits_equal (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise)
  && bits_equal (Normal.stddev a.Ssta.rise) (Normal.stddev b.Ssta.rise)
  && bits_equal (Normal.mean a.Ssta.fall) (Normal.mean b.Ssta.fall)
  && bits_equal (Normal.stddev a.Ssta.fall) (Normal.stddev b.Ssta.fall)

let verify reg session =
  let s = find_session reg session in
  (* best of three sweeps: the smoke test asserts on the speedup ratio,
     and a one-shot timing on a loaded CI box is too noisy to gate on *)
  let fresh = ref None in
  let full_ms = ref infinity in
  for _ = 1 to 3 do
    let result, ms = full_analyze s in
    if ms < !full_ms then begin
      full_ms := ms;
      fresh := Some result
    end
  done;
  let fresh = Option.get !fresh in
  Metrics.session_full_analysis reg.metrics;
  let mismatches = ref 0 in
  for id = 0 to Circuit.num_nets s.circuit - 1 do
    if not (arrivals_equal (Ssta.arrival s.result id) (Ssta.arrival fresh id)) then
      incr mismatches
  done;
  let mean_incr_ms =
    if s.incremental = 0 then 0.0 else s.incr_ms_total /. float_of_int s.incremental
  in
  let speedup = if mean_incr_ms > 0.0 then !full_ms /. mean_incr_ms else 0.0 in
  let mean_cone =
    if s.incremental = 0 then 0.0 else float_of_int s.dirty_total /. float_of_int s.incremental
  in
  s.last_active <- now ();
  Json.Obj
    ( session_header s
    @ [ ("identical", Json.bool (!mismatches = 0)); ("mismatches", Json.int !mismatches);
        ("nets_compared", Json.int (Circuit.num_nets s.circuit));
        ("incremental_analyses", Json.int s.incremental);
        ("mean_dirty_cone", Json.float mean_cone);
        ("full_ms", Json.float !full_ms); ("mean_incremental_ms", Json.float mean_incr_ms);
        ("speedup", Json.float speedup) ] )

let close reg session =
  let s =
    locked reg (fun () ->
        match Hashtbl.find_opt reg.table session with
        | Some s ->
          Hashtbl.remove reg.table session;
          s
        | None -> fail Protocol.Unknown_session "no open session %S" session)
  in
  Metrics.session_closed reg.metrics;
  Json.Obj
    ( session_header s
    @ [ ("incremental_analyses", Json.int s.incremental);
        ("uptime_s", Json.float (now () -. s.created)) ] )

(* Close sessions idle longer than the timeout; sessions with queued or
   running requests are skipped regardless of their clock.  Returns the
   evicted names (for the transport's log line). *)
let evict_idle reg ~idle_timeout_s =
  let cutoff = now () -. idle_timeout_s in
  let victims =
    locked reg (fun () ->
        Hashtbl.fold
          (fun name s acc ->
            let busy =
              match Hashtbl.find_opt reg.inflight name with
              | Some r -> !r > 0
              | None -> false
            in
            if (not busy) && s.last_active < cutoff then name :: acc else acc)
          reg.table []
        |> List.map (fun name ->
               Hashtbl.remove reg.table name;
               name))
  in
  List.iter (fun _ -> Metrics.session_evicted reg.metrics) victims;
  victims

let close_all reg =
  locked reg (fun () -> Hashtbl.reset reg.table)

let stats_json reg =
  Metrics.sessions_json reg.metrics ~open_sessions:(open_count reg)
