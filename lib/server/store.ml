(* Persistent, append-only backing for the digest-keyed result memo.

   One record per line: {"k":"<memo key>","v":<payload>}.  The file is
   loaded into a hashtable on open (later records supersede earlier
   ones, so re-writing a key is just another append), every append is
   flushed and fsync'd before [add] returns, and the file is compacted —
   rewritten with only the live records, via a tmp file + atomic rename
   — when superseded records outnumber live ones.  A torn final line
   from a crash mid-append is skipped on load and trimmed away by the
   next compaction.

   Memo payloads are deterministic (bit-identical at every worker/domain
   count) and keyed by the circuit's content digest plus every parameter
   that influences them, so a record written by one server process is
   valid verbatim in any other: a restarted or second instance pointed
   at the same path answers previously-computed requests as warm cache
   hits without re-running the analysis.

   All operations are mutex-guarded; counters are atomic so the [stats]
   request can read them from other domains. *)

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  table : (string, Json.t) Hashtbl.t;
  mutex : Mutex.t;
  fsync : bool;
  mutable dead : int; (* superseded records physically in the file *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  appends : int Atomic.t;
  compactions : int Atomic.t;
  loaded : int Atomic.t; (* live records recovered at open *)
  skipped : int Atomic.t; (* malformed lines ignored at open *)
}

let record_line key value =
  Json.to_string (Json.Obj [ ("k", Json.Str key); ("v", value) ]) ^ "\n"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let decode_record line =
  match Json.of_string_opt line with
  | Some (Json.Obj _ as obj) -> (
    match (Json.member "k" obj, Json.member "v" obj) with
    | Some (Json.Str k), Some v -> Some (k, v)
    | _ -> None )
  | _ -> None

let load_file t =
  if Sys.file_exists t.path then begin
    let ic = open_in t.path in
    ( try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match decode_record line with
            | Some (k, v) ->
              if Hashtbl.mem t.table k then t.dead <- t.dead + 1;
              Hashtbl.replace t.table k v
            | None -> Atomic.incr t.skipped
        done
      with End_of_file -> () );
    close_in ic
  end

let sync t = if t.fsync then Unix.fsync t.fd

(* Rewrite the file with only the live records.  Crash-safe: the new
   image is written and fsync'd to a tmp file first, then renamed over
   the original (atomic on POSIX). *)
let compact_locked t =
  let tmp = t.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let buf = Buffer.create 4096 in
  Hashtbl.iter (fun k v -> Buffer.add_string buf (record_line k v)) t.table;
  write_all fd (Buffer.contents buf);
  if t.fsync then Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp t.path;
  Unix.close t.fd;
  t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.dead <- 0;
  Atomic.incr t.compactions

let needs_compaction t = t.dead > Hashtbl.length t.table && t.dead > 16

let open_ ?(fsync = true) path =
  let t =
    { path; fd = Unix.stdout (* replaced below *); table = Hashtbl.create 256;
      mutex = Mutex.create (); fsync; dead = 0;
      hits = Atomic.make 0; misses = Atomic.make 0; appends = Atomic.make 0;
      compactions = Atomic.make 0; loaded = Atomic.make 0; skipped = Atomic.make 0 }
  in
  load_file t;
  Atomic.set t.loaded (Hashtbl.length t.table);
  t.fd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
  if needs_compaction t then compact_locked t;
  t

let find t key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  (match v with Some _ -> Atomic.incr t.hits | None -> Atomic.incr t.misses);
  v

let add t key value =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some _ ->
        (* deterministic payloads: a re-store of a known key carries the
           same bytes, so skip the redundant append *)
        ()
      | None ->
        Hashtbl.replace t.table key value;
        write_all t.fd (record_line key value);
        sync t;
        Atomic.incr t.appends;
        if needs_compaction t then compact_locked t)

let flush t =
  Mutex.lock t.mutex;
  (try sync t with Unix.Unix_error _ -> ());
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  (try sync t with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let appends t = Atomic.get t.appends
let loaded t = Atomic.get t.loaded
let path t = t.path

let stats_json t =
  Json.Obj
    [ ("path", Json.string t.path); ("entries", Json.int (length t));
      ("loaded", Json.int (Atomic.get t.loaded)); ("hits", Json.int (Atomic.get t.hits));
      ("misses", Json.int (Atomic.get t.misses));
      ("appends", Json.int (Atomic.get t.appends));
      ("compactions", Json.int (Atomic.get t.compactions));
      ("skipped_records", Json.int (Atomic.get t.skipped)) ]
