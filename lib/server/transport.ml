(* Socket and stdio transports for the JSONL protocol.

   One single-threaded [Unix.select] event loop owns every connection:
   it accepts clients, assembles newline-delimited frames from partial
   reads, and dispatches decoded requests to the server's worker pool.
   Responses are written by the *completing worker domain* under a
   per-connection write mutex, so a slow analysis never blocks the
   loop and frames from different requests never interleave.

   Admission control, outermost first:

   - frames are bounded ([max_frame_bytes]): a connection that exceeds
     the bound without a newline gets a [frame_too_large] error and is
     closed — an unbounded line is indistinguishable from an attack on
     the loop's memory;
   - frames must be valid UTF-8: a violating frame gets an
     [invalid_utf8] error, but the connection survives (the framing
     itself was intact);
   - each connection may have at most [max_inflight] requests queued or
     running; excess requests are refused with [overloaded];
   - the pool itself admits non-blockingly ({!Pool.try_submit}); a
     refusal — full queue, or a session's affinity chain at capacity —
     is also [overloaded].  The transport never blocks on the pool:
     back-pressure is made visible to the client instead of stalling
     every other connection's reads;
   - sessions idle longer than the configured timeout are evicted by a
     periodic sweep (skipping any session with work in flight).

   Graceful shutdown: a [shutdown] request, SIGTERM or SIGINT (when
   [signals] is on) flips one atomic flag.  The loop then stops
   accepting and reading, drains the pool — every accepted request
   still gets its response — flushes and closes the persistent store,
   acknowledges any pending [shutdown] request, and returns, so the CLI
   exits 0.

   Stdio mode is the degenerate transport: one pre-accepted connection
   on stdin/stdout, EOF plays the role of the shutdown signal.  [spsta
   serve] without a socket flag runs exactly this. *)

type listen = Unix_socket of string | Tcp of int | Stdio

type conn = {
  in_fd : Unix.file_descr;
  out_fd : Unix.file_descr;
  peer : string;
  mutable pending : string; (* bytes of an incomplete trailing frame *)
  write_mutex : Mutex.t;
  inflight : int Atomic.t;
  mutable eof : bool; (* no more reads; close once inflight drains *)
  stdio : bool; (* borrowed fds: never actually closed *)
}

let make_conn ?(stdio = false) ~peer ~in_fd ~out_fd () =
  { in_fd; out_fd; peer; pending = ""; write_mutex = Mutex.create ();
    inflight = Atomic.make 0; eof = false; stdio }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

(* Worker domains and the loop both write here; EPIPE (client went
   away) just marks the connection for reaping. *)
let write_response conn response =
  let line = Protocol.response_to_line response ^ "\n" in
  Mutex.lock conn.write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.write_mutex)
    (fun () ->
      try write_all conn.out_fd line
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        conn.eof <- true)

let error_response ?id code message = Protocol.Error { id; code; message }

type t = {
  server : Server.t;
  stop : bool Atomic.t;
  mutable conns : conn list;
  (* shutdown requests are acknowledged only after the drain completes,
     matching the stdio loop's "drained: true" semantics *)
  mutable pending_shutdown : (conn * string) list;
  log : string -> unit;
}

let logf t fmt = Printf.ksprintf t.log fmt

(* ---------- frame handling ---------- *)

let handle_request t conn line =
  let server = t.server in
  match Protocol.request_of_line line with
  | Error e ->
    Server.record_invalid server;
    write_response conn (Protocol.error_response e)
  | Ok request -> (
    let id = request.Protocol.id in
    match request.Protocol.kind with
    | Protocol.Stats -> write_response conn (Server.stats_response server ~id)
    | Protocol.Shutdown ->
      Atomic.set t.stop true;
      t.pending_shutdown <- (conn, id) :: t.pending_shutdown
    | _ ->
      if Atomic.get conn.inflight >= (Server.config server).Server.max_inflight then
        write_response conn
          (error_response ~id Protocol.Overloaded
             (Printf.sprintf "connection already has %d requests in flight"
                (Atomic.get conn.inflight)))
      else begin
        Atomic.incr conn.inflight;
        let on_response response =
          write_response conn response;
          Atomic.decr conn.inflight
        in
        match Server.try_submit ~on_response server request with
        | Some _ticket -> ()
        | None ->
          Atomic.decr conn.inflight;
          write_response conn
            (error_response ~id Protocol.Overloaded "server queue is full")
      end )

let handle_frame t conn line =
  if line = "" then ()
  else if not (String.is_valid_utf_8 line) then
    write_response conn (error_response Protocol.Invalid_utf8 "frame is not valid UTF-8")
  else handle_request t conn line

(* Split complete frames off the accumulated bytes; a partial frame
   over the bound is fatal for the connection. *)
let process_pending t conn =
  let max_frame = (Server.config t.server).Server.max_frame_bytes in
  let continue = ref true in
  while !continue do
    match String.index_opt conn.pending '\n' with
    | Some i ->
      let line = String.sub conn.pending 0 i in
      conn.pending <- String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
      let line =
        (* tolerate CRLF framing *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.length line > max_frame then begin
        write_response conn
          (error_response Protocol.Frame_too_large
             (Printf.sprintf "frame of %d bytes exceeds the %d byte bound"
                (String.length line) max_frame));
        conn.pending <- "";
        conn.eof <- true;
        continue := false
      end
      else handle_frame t conn line
    | None ->
      if String.length conn.pending > max_frame then begin
        write_response conn
          (error_response Protocol.Frame_too_large
             (Printf.sprintf "frame exceeds the %d byte bound without a newline" max_frame));
        conn.pending <- "";
        conn.eof <- true
      end;
      continue := false
  done

let read_chunk_size = 65536

let handle_readable t conn =
  let chunk = Bytes.create read_chunk_size in
  match Unix.read conn.in_fd chunk 0 read_chunk_size with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> conn.eof <- true
  | 0 -> conn.eof <- true
  | n ->
    conn.pending <- conn.pending ^ Bytes.sub_string chunk 0 n;
    process_pending t conn

(* ---------- connection lifecycle ---------- *)

let close_conn conn =
  if not conn.stdio then begin
    (try Unix.close conn.in_fd with Unix.Unix_error _ -> ());
    if conn.out_fd != conn.in_fd then
      try Unix.close conn.out_fd with Unix.Unix_error _ -> ()
  end

(* A connection is reaped once it has hit EOF (or a fatal framing
   error) and its last in-flight response has been written. *)
let reap t =
  let dead, live =
    List.partition (fun c -> c.eof && Atomic.get c.inflight = 0) t.conns
  in
  List.iter
    (fun c ->
      logf t "transport: closing %s" c.peer;
      close_conn c)
    dead;
  t.conns <- live

let accept t listener =
  match Unix.accept listener with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | fd, addr ->
    let peer =
      match addr with
      | Unix.ADDR_UNIX _ -> "unix client"
      | Unix.ADDR_INET (host, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
    in
    logf t "transport: accepted %s" peer;
    t.conns <- make_conn ~peer ~in_fd:fd ~out_fd:fd () :: t.conns

(* ---------- main loop ---------- *)

let select_timeout_s = 0.25
let sweep_interval_s = 2.0

let open_listener = function
  | Stdio -> None
  | Unix_socket path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    Some fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    Some fd

let run ?config ?(signals = true) ?(log = fun _ -> ()) listen =
  let server = Server.create ?config () in
  let t =
    { server; stop = Atomic.make false; conns = []; pending_shutdown = []; log }
  in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> Atomic.set t.stop true) in
    ignore (Sys.signal Sys.sigterm handler);
    ignore (Sys.signal Sys.sigint handler)
  end;
  (* a client that disconnects mid-response must not kill the process *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let listener = open_listener listen in
  ( match listen with
  | Stdio ->
    t.conns <- [ make_conn ~stdio:true ~peer:"stdio" ~in_fd:Unix.stdin ~out_fd:Unix.stdout () ]
  | Unix_socket path -> logf t "transport: listening on %s" path
  | Tcp port -> logf t "transport: listening on 127.0.0.1:%d" port );
  let last_sweep = ref (Unix.gettimeofday ()) in
  let finished () =
    Atomic.get t.stop
    ||
    (* stdio mode ends at EOF once the last response is out *)
    match listen with
    | Stdio -> t.conns = []
    | Unix_socket _ | Tcp _ -> false
  in
  while not (finished ()) do
    let read_fds =
      (match listener with Some fd -> [ fd ] | None -> [])
      @ List.filter_map (fun c -> if c.eof then None else Some c.in_fd) t.conns
    in
    ( match Unix.select read_fds [] [] select_timeout_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if listener = Some fd then accept t fd
          else
            match List.find_opt (fun c -> c.in_fd == fd) t.conns with
            | Some conn -> handle_readable t conn
            | None -> ())
        ready );
    reap t;
    let now = Unix.gettimeofday () in
    if now -. !last_sweep >= sweep_interval_s then begin
      last_sweep := now;
      let idle_timeout_s = (Server.config server).Server.idle_timeout_s in
      match Session.evict_idle (Server.sessions server) ~idle_timeout_s with
      | [] -> ()
      | victims ->
        logf t "transport: evicted idle sessions %s" (String.concat ", " victims)
    end
  done;
  (* graceful drain: stop accepting, finish everything admitted, make
     the store durable, ack pending shutdowns, close everything *)
  logf t "transport: draining";
  (match listener with Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  Server.drain server;
  List.iter
    (fun (conn, id) -> write_response conn (Server.shutdown_response ~id))
    t.pending_shutdown;
  List.iter close_conn t.conns;
  t.conns <- [];
  ( match listen with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ | Stdio -> () );
  logf t "transport: stopped";
  server
