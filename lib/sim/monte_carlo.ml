module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Stats = Spsta_util.Stats
module Rng = Spsta_util.Rng
module Parallel = Spsta_util.Parallel

type engine = [ `Scalar | `Packed ]

type net_stats = {
  n_runs : int;
  count_zero : int;
  count_one : int;
  count_rise : int;
  count_fall : int;
  rise_times : Stats.acc;
  fall_times : Stats.acc;
}

(* n <= 0 guards both the empty result and any nonsense count *)
let ratio count n = if n <= 0 then 0.0 else float_of_int count /. float_of_int n

let p_zero s = ratio s.count_zero s.n_runs
let p_one s = ratio s.count_one s.n_runs
let p_rise s = ratio s.count_rise s.n_runs
let p_fall s = ratio s.count_fall s.n_runs
let signal_probability s = p_one s +. ((p_rise s +. p_fall s) /. 2.0)
let toggling_rate s = p_rise s +. p_fall s

type result = { circuit : Circuit.t; runs : int; per_net : net_stats array }

let stats r id = r.per_net.(id)

let merge a b =
  if Circuit.num_nets a.circuit <> Circuit.num_nets b.circuit then
    invalid_arg "Monte_carlo.merge: mismatched circuits";
  let combine (x : net_stats) (y : net_stats) =
    {
      n_runs = x.n_runs + y.n_runs;
      count_zero = x.count_zero + y.count_zero;
      count_one = x.count_one + y.count_one;
      count_rise = x.count_rise + y.count_rise;
      count_fall = x.count_fall + y.count_fall;
      rise_times = Stats.acc_merge x.rise_times y.rise_times;
      fall_times = Stats.acc_merge x.fall_times y.fall_times;
    }
  in
  {
    circuit = a.circuit;
    runs = a.runs + b.runs;
    per_net = Array.mapi (fun i x -> combine x b.per_net.(i)) a.per_net;
  }

(* Per-chunk accumulation state, turned into net_stats when the chunk
   completes.  The Welford update is written out inline (same-module, so
   it actually inlines) but reproduces Stats.acc_add's arithmetic
   exactly — required for the scalar and packed engines to produce
   bit-identical accumulators. *)
type chunk_acc = {
  mutable zero : int;
  mutable one : int;
  mutable rise : int;
  mutable fall : int;
  racc : Stats.acc;
  facc : Stats.acc;
}

let[@inline] acc_add (a : Stats.acc) x =
  let n = a.Stats.n + 1 in
  a.Stats.n <- n;
  let delta = x -. a.Stats.mu in
  a.Stats.mu <- a.Stats.mu +. (delta /. float_of_int n);
  a.Stats.m2 <- a.Stats.m2 +. (delta *. (x -. a.Stats.mu));
  if x < a.Stats.lo then a.Stats.lo <- x;
  if x > a.Stats.hi then a.Stats.hi <- x

let fresh_accs n =
  Array.init n (fun _ ->
      { zero = 0; one = 0; rise = 0; fall = 0; racc = Stats.acc_create (); facc = Stats.acc_create () })

let finish_chunk ~circuit ~runs accs =
  {
    circuit;
    runs;
    per_net =
      Array.map
        (fun a ->
          {
            n_runs = runs;
            count_zero = a.zero;
            count_one = a.one;
            count_rise = a.rise;
            count_fall = a.fall;
            rise_times = a.racc;
            fall_times = a.facc;
          })
        accs;
  }

(* ---- scalar engine: one Logic_sim trial per substream ---- *)

let scalar_chunk ?gate_delay ?delay_sigma ?mis ~seed ~lo ~hi circuit ~spec =
  let n = Circuit.num_nets circuit in
  let accs = fresh_accs n in
  for run = lo to hi - 1 do
    let rng = Rng.stream ~seed run in
    let r = Logic_sim.run_random ?gate_delay ?delay_sigma ?mis rng circuit ~spec in
    let values = r.Logic_sim.values and times = r.Logic_sim.times in
    for i = 0 to n - 1 do
      let a = accs.(i) in
      match values.(i) with
      | Value4.Zero -> a.zero <- a.zero + 1
      | Value4.One -> a.one <- a.one + 1
      | Value4.Rising ->
        a.rise <- a.rise + 1;
        acc_add a.racc times.(i)
      | Value4.Falling ->
        a.fall <- a.fall + 1;
        acc_add a.facc times.(i)
    done
  done;
  finish_chunk ~circuit ~runs:(hi - lo) accs

(* ---- packed engine: 64 trials per block, popcount counts, masked
   lane folds for the time statistics ---- *)

let mask32 = 0xFFFFFFFF

(* SWAR popcount of a 32-lane half; unlike C uint32 arithmetic the
   multiply keeps bits above 31 in a native int, so the byte extracted
   by [lsr 24] must be masked *)
let[@inline] popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

(* fold the times of the set lanes of [mask] (a 32-lane half) into
   [acc], in ascending lane order — the same order a scalar sweep over
   the block's runs would use *)
let[@inline] add_masked_times acc mask times tbase =
  let m = ref mask in
  while !m <> 0 do
    let l = popcount32 ((!m land - !m) - 1) in
    m := !m land (!m - 1);
    acc_add acc (Array.unsafe_get times (tbase + l))
  done

let packed_chunk ?gate_delay ?delay_sigma ?mis ~seed ~lo ~hi sim ~spec =
  let circuit = Packed_sim.circuit sim in
  let n = Circuit.num_nets circuit in
  let accs = fresh_accs n in
  let planes = Packed_sim.raw_planes sim in
  let times = Packed_sim.raw_times sim in
  let base = ref lo in
  while !base < hi do
    let k = min 64 (hi - !base) in
    let b0 = !base in
    let rngs = Array.init k (fun l -> Rng.stream ~seed (b0 + l)) in
    Packed_sim.run ?gate_delay ?delay_sigma ?mis sim ~rngs ~spec;
    let act_lo = if k >= 32 then mask32 else (1 lsl k) - 1 in
    let act_hi = if k <= 32 then 0 else (1 lsl (k - 32)) - 1 in
    for i = 0 to n - 1 do
      let p = i * 4 in
      let il = Array.unsafe_get planes p land act_lo in
      let ih = Array.unsafe_get planes (p + 1) land act_hi in
      let fl = Array.unsafe_get planes (p + 2) land act_lo in
      let fh = Array.unsafe_get planes (p + 3) land act_hi in
      let rise_lo = lnot il land fl and rise_hi = lnot ih land fh in
      let fall_lo = il land lnot fl and fall_hi = ih land lnot fh in
      let one = popcount32 (il land fl) + popcount32 (ih land fh) in
      let rise = popcount32 rise_lo + popcount32 rise_hi in
      let fall = popcount32 fall_lo + popcount32 fall_hi in
      let a = accs.(i) in
      a.zero <- a.zero + (k - one - rise - fall);
      a.one <- a.one + one;
      a.rise <- a.rise + rise;
      a.fall <- a.fall + fall;
      if rise > 0 then begin
        let tbase = i * 64 in
        add_masked_times a.racc rise_lo times tbase;
        add_masked_times a.racc rise_hi times (tbase + 32)
      end;
      if fall > 0 then begin
        let tbase = i * 64 in
        add_masked_times a.facc fall_lo times tbase;
        add_masked_times a.facc fall_hi times (tbase + 32)
      end
    done;
    base := !base + k
  done;
  finish_chunk ~circuit ~runs:(hi - lo) accs

(* ---- chunked, order-fixed reduction ----

   Trials are grouped into fixed 512-run chunks (chunk c covers trials
   [512c, 512(c+1)) ∩ [0, runs)), accumulated left-to-right inside the
   chunk, and the chunk results are merged along a fixed binary tree
   (split at the largest power of two below the size).  Neither the
   grouping nor the tree depends on the engine or the domain count, and
   both engines produce identical per-trial observations, so every
   (engine, domains) combination yields bit-identical results. *)

let chunk_runs = 512

let rec reduce_tree slots lo hi =
  if hi - lo = 1 then slots.(lo)
  else begin
    let size = hi - lo in
    let p = ref 1 in
    while !p * 2 < size do
      p := !p * 2
    done;
    merge (reduce_tree slots lo (lo + !p)) (reduce_tree slots (lo + !p) hi)
  end

let empty_result circuit =
  let empty _ =
    {
      n_runs = 0;
      count_zero = 0;
      count_one = 0;
      count_rise = 0;
      count_fall = 0;
      rise_times = Stats.acc_create ();
      fall_times = Stats.acc_create ();
    }
  in
  { circuit; runs = 0; per_net = Array.init (Circuit.num_nets circuit) empty }

let simulate ?gate_delay ?delay_sigma ?mis ?(runs = 10_000) ?(engine = `Packed) ?(domains = 1)
    ~seed circuit ~spec =
  if runs < 0 then invalid_arg "Monte_carlo.simulate: negative runs";
  if domains < 1 then invalid_arg "Monte_carlo.simulate: domains must be positive";
  if runs = 0 then empty_result circuit
  else begin
    let nchunks = (runs + chunk_runs - 1) / chunk_runs in
    let slots = Array.make nchunks (empty_result circuit) in
    let compute lo hi =
      (* one scratch simulator per contiguous chunk range (= per domain) *)
      let chunk =
        match engine with
        | `Scalar ->
          fun ~lo ~hi -> scalar_chunk ?gate_delay ?delay_sigma ?mis ~seed ~lo ~hi circuit ~spec
        | `Packed ->
          let sim = Packed_sim.create circuit in
          fun ~lo ~hi -> packed_chunk ?gate_delay ?delay_sigma ?mis ~seed ~lo ~hi sim ~spec
      in
      for c = lo to hi - 1 do
        slots.(c) <- chunk ~lo:(c * chunk_runs) ~hi:(min runs ((c + 1) * chunk_runs))
      done
    in
    if domains = 1 then compute 0 nchunks
    else Parallel.iter_ranges ~domains nchunks compute;
    reduce_tree slots 0 nchunks
  end

let simulate_parallel ?gate_delay ?delay_sigma ?mis ?runs ?domains ?engine ~seed circuit ~spec =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Monte_carlo.simulate_parallel: domains must be positive"
    | None -> Parallel.default_domains ()
  in
  simulate ?gate_delay ?delay_sigma ?mis ?runs ?engine ~domains ~seed circuit ~spec
