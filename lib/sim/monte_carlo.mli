(** Monte Carlo statistical timing: repeat {!Logic_sim}-semantics trials
    with independently drawn source behaviours and accumulate per-net
    statistics — the paper's accuracy reference (10,000 runs in §4).

    Trial [i] always consumes its own generator, [Rng.stream ~seed i],
    and the per-trial observations are folded in a fixed chunked order,
    so the result is a function of [(seed, runs)] alone: bit-identical
    across engines ([`Scalar] runs one {!Logic_sim.run_random} per
    trial; [`Packed] propagates 64 trials per {!Packed_sim} block) and
    across every [domains] count. *)

type engine = [ `Scalar | `Packed ]

type net_stats = {
  n_runs : int;
  count_zero : int;
  count_one : int;
  count_rise : int;
  count_fall : int;
  rise_times : Spsta_util.Stats.acc;  (** arrival times of observed rises *)
  fall_times : Spsta_util.Stats.acc;
}

val p_zero : net_stats -> float
val p_one : net_stats -> float
val p_rise : net_stats -> float
val p_fall : net_stats -> float
(** Occurrence ratios; all four are 0 when [n_runs = 0]. *)

val signal_probability : net_stats -> float
(** Time-averaged one-probability: p_one + (p_rise + p_fall)/2. *)

val toggling_rate : net_stats -> float

type result = {
  circuit : Spsta_netlist.Circuit.t;
  runs : int;
  per_net : net_stats array;
}

val simulate :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  ?runs:int ->
  ?engine:engine ->
  ?domains:int ->
  seed:int ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** [runs] defaults to 10_000, matching the paper.  [delay_sigma] adds
    independent N(gate_delay, delay_sigma) process variation per gate
    per run (default 0).  [engine] defaults to [`Packed], the
    bit-parallel fast path; [`Scalar] is the oracle and produces
    bit-identical results.  [domains] (default 1) spreads the trial
    chunks over that many OCaml domains — a pure throughput knob, the
    result does not depend on it.  [spec] must be pure.  Raises
    [Invalid_argument] on negative [runs] or non-positive [domains]. *)

val simulate_parallel :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  ?runs:int ->
  ?domains:int ->
  ?engine:engine ->
  seed:int ->
  Spsta_netlist.Circuit.t ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  result
(** {!simulate} with [domains] defaulting to the machine's recommended
    domain count.  Every trial draws from the same per-trial stream at
    any domain count, and chunk results are merged along a fixed
    reduction tree, so this equals the sequential {!simulate} bit for
    bit — the historical "parallel results differ from the sequential
    stream" caveat is gone. *)

val merge : result -> result -> result
(** Combine two results over the same circuit (e.g. shards of a larger
    campaign); either side may have zero runs.  Raises
    [Invalid_argument] on mismatched circuits. *)

val stats : result -> Spsta_netlist.Circuit.id -> net_stats
