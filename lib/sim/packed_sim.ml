module Circuit = Spsta_netlist.Circuit
module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind
module Timing_rule = Spsta_logic.Timing_rule
module Mis_model = Spsta_logic.Mis_model
module Rng = Spsta_util.Rng

(* The hot loops run on native ints, not Int64: every Int64 operation
   allocates a box without flambda, while a 64-lane block split into two
   32-lane native halves stays register-resident.  The per-net plane
   layout is 4 consecutive words in [planes]:

     planes.(4*net)     initial levels, lanes  0..31
     planes.(4*net + 1) initial levels, lanes 32..63
     planes.(4*net + 2) final   levels, lanes  0..31
     planes.(4*net + 3) final   levels, lanes 32..63

   and [times]/[delays] are lane-major per net: index [64*net + lane].
   Packed_value4's int64 view is reconstructed only at the API edge. *)

type t = {
  circuit : Circuit.t;
  n : int;
  sources : int array;
  gates : int array;  (* output net per gate, topological order *)
  op : int array;  (* plane_op per gate: 0 = and, 1 = or, 2 = xor *)
  invert : bool array;
  ctrl : int array;  (* controlled output value per gate: -1 none, 0, 1 *)
  inputs : int array array;
  planes : int array;
  times : float array;
  mutable delays : float array;  (* empty until a run needs delay_sigma > 0 *)
  itrans_lo : int array;  (* scratch: per-input transition masks of one gate *)
  itrans_hi : int array;
  mutable nlanes : int;  (* lanes of the last run; 0 before any run *)
}

let mask32 = 0xFFFFFFFF

let create circuit =
  let n = Circuit.num_nets circuit in
  let gates = Array.copy (Circuit.topo_gates circuit) in
  let g = Array.length gates in
  let op = Array.make g 0 in
  let invert = Array.make g false in
  let ctrl = Array.make g (-1) in
  let inputs = Array.make g [||] in
  let maxfan = ref 1 in
  Array.iteri
    (fun k id ->
      match Circuit.driver circuit id with
      | Circuit.Gate { kind; inputs = ins } ->
        op.(k) <-
          (match Gate_kind.plane_op kind with
          | Gate_kind.Op_and -> 0
          | Gate_kind.Op_or -> 1
          | Gate_kind.Op_xor -> 2);
        invert.(k) <- Gate_kind.inverting kind;
        ctrl.(k) <-
          (match Gate_kind.controlled_value kind with
          | None -> -1
          | Some false -> 0
          | Some true -> 1);
        inputs.(k) <- Array.copy ins;
        if Array.length ins > !maxfan then maxfan := Array.length ins
      | Circuit.Input | Circuit.Dff_output _ -> assert false)
    gates;
  {
    circuit;
    n;
    sources = Array.of_list (Circuit.sources circuit);
    gates;
    op;
    invert;
    ctrl;
    inputs;
    planes = Array.make (4 * n) 0;
    times = Array.make (64 * n) 0.0;
    delays = [||];
    itrans_lo = Array.make !maxfan 0;
    itrans_hi = Array.make !maxfan 0;
    nlanes = 0;
  }

let circuit t = t.circuit
let lanes_used t = t.nlanes

let active t =
  if t.nlanes = 64 then -1L else Int64.sub (Int64.shift_left 1L t.nlanes) 1L

(* number of trailing zeros of a single-bit native value via de Bruijn
   multiplication (works for bits 0..31, all we isolate from halves) *)
let ntz_table =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.((0x077CB531 lsl i) lsr 27 land 31) <- i
  done;
  t

(* evaluate the timing of one 32-lane half of one gate's output.
   [tmask]/[minmask] are the transitioning / MIN-rule lanes of the half;
   [itrans_half] holds the input transition masks of the same half.  The
   per-lane winner and delay arithmetic reproduces Logic_sim exactly:
   the comparison-based min/max equals Timing_rule.combine's Float.min /
   Float.max fold on every value the simulator produces (times are never
   NaN, and a -0.0 can only enter via a user-supplied -0.0 arrival
   mean). *)
let timing_half t ins ni tmask minmask lane_base itrans_half gate_delay have_sigma mis gbase =
  let times = t.times in
  let delays = t.delays in
  let m = ref tmask in
  while !m <> 0 do
    let bit = !m land (- !m) in
    m := !m land (!m - 1);
    let l = Array.unsafe_get ntz_table ((bit * 0x077CB531) lsr 27 land 31) in
    let lane = lane_base + l in
    let is_min = minmask land bit <> 0 in
    let w = ref (if is_min then infinity else neg_infinity) in
    if is_min then
      for j = 0 to ni - 1 do
        if Array.unsafe_get itrans_half j land bit <> 0 then begin
          let tv = Array.unsafe_get times ((Array.unsafe_get ins j * 64) + lane) in
          if tv < !w then w := tv
        end
      done
    else
      for j = 0 to ni - 1 do
        if Array.unsafe_get itrans_half j land bit <> 0 then begin
          let tv = Array.unsafe_get times ((Array.unsafe_get ins j * 64) + lane) in
          if tv > !w then w := tv
        end
      done;
    let winner = !w in
    let d = if have_sigma then Array.unsafe_get delays (gbase + l) else gate_delay in
    let d =
      match mis with
      | None -> d
      | Some model ->
        let simultaneous = ref 0 in
        let window = model.Mis_model.window in
        for j = 0 to ni - 1 do
          if Array.unsafe_get itrans_half j land bit <> 0 then begin
            let tv = Array.unsafe_get times ((Array.unsafe_get ins j * 64) + lane) in
            if Float.abs (tv -. winner) <= window then incr simultaneous
          end
        done;
        let rule = if is_min then Timing_rule.Min else Timing_rule.Max in
        d *. Mis_model.factor model rule ~simultaneous:!simultaneous
    in
    Array.unsafe_set times (gbase + l) (winner +. d)
  done

let run ?(gate_delay = 1.0) ?(delay_sigma = 0.0) ?mis t ~rngs ~spec =
  let k = Array.length rngs in
  if k < 1 || k > 64 then invalid_arg "Packed_sim.run: need 1..64 lane generators";
  t.nlanes <- k;
  let have_sigma = delay_sigma > 0.0 in
  (* per-lane draw order matches Logic_sim.run_random: gate delays for
     every net first (when delay_sigma > 0), then the sources in
     Circuit.sources order — so lane [l] consumes rngs.(l) exactly as
     one scalar run would *)
  if have_sigma then begin
    if Array.length t.delays = 0 then t.delays <- Array.make (64 * t.n) 0.0;
    let delays = t.delays in
    for l = 0 to k - 1 do
      let rng = rngs.(l) in
      for i = 0 to t.n - 1 do
        delays.((i * 64) + l) <- Rng.gaussian rng ~mu:gate_delay ~sigma:delay_sigma
      done
    done
  end;
  let planes = t.planes in
  let times = t.times in
  (* sources: inline Input_spec.sample with identical stream consumption
     (one uniform for the symbol, one gaussian per transition) and
     identical choose_index threshold arithmetic *)
  let sources = t.sources in
  for si = 0 to Array.length sources - 1 do
    let s = sources.(si) in
    let sp : Input_spec.t = spec s in
    let c1 = 0.0 +. sp.Input_spec.p_zero in
    let c2 = c1 +. sp.Input_spec.p_one in
    let c3 = c2 +. sp.Input_spec.p_rise in
    let total = c3 +. sp.Input_spec.p_fall in
    if not (total > 0.0) then invalid_arg "Rng.choose_index: zero total weight";
    let mu_r = Spsta_dist.Normal.mean sp.Input_spec.rise_arrival in
    let sg_r = Spsta_dist.Normal.stddev sp.Input_spec.rise_arrival in
    let mu_f = Spsta_dist.Normal.mean sp.Input_spec.fall_arrival in
    let sg_f = Spsta_dist.Normal.stddev sp.Input_spec.fall_arrival in
    let base = s * 64 in
    let il = ref 0 and ih = ref 0 and fl = ref 0 and fh = ref 0 in
    for l = 0 to k - 1 do
      let rng = rngs.(l) in
      let target = Rng.float rng *. total in
      if target < c1 then times.(base + l) <- 0.0 (* Zero *)
      else if target < c2 then begin
        (* One *)
        times.(base + l) <- 0.0;
        if l < 32 then begin
          let b = 1 lsl l in
          il := !il lor b;
          fl := !fl lor b
        end
        else begin
          let b = 1 lsl (l - 32) in
          ih := !ih lor b;
          fh := !fh lor b
        end
      end
      else if target < c3 then begin
        (* Rising *)
        times.(base + l) <- Rng.gaussian rng ~mu:mu_r ~sigma:sg_r;
        if l < 32 then fl := !fl lor (1 lsl l) else fh := !fh lor (1 lsl (l - 32))
      end
      else begin
        (* Falling *)
        times.(base + l) <- Rng.gaussian rng ~mu:mu_f ~sigma:sg_f;
        if l < 32 then il := !il lor (1 lsl l) else ih := !ih lor (1 lsl (l - 32))
      end
    done;
    let p = s * 4 in
    planes.(p) <- !il;
    planes.(p + 1) <- !ih;
    planes.(p + 2) <- !fl;
    planes.(p + 3) <- !fh
  done;
  (* gates, in topological order *)
  let act_lo = if k >= 32 then mask32 else (1 lsl k) - 1 in
  let act_hi = if k <= 32 then 0 else (1 lsl (k - 32)) - 1 in
  let act_hi = if k = 64 then mask32 else act_hi in
  let gates = t.gates in
  let itrans_lo = t.itrans_lo and itrans_hi = t.itrans_hi in
  for gi = 0 to Array.length gates - 1 do
    let gout = Array.unsafe_get gates gi in
    let ins = Array.unsafe_get t.inputs gi in
    let ni = Array.length ins in
    let o0 = Array.unsafe_get ins 0 * 4 in
    let il = ref (Array.unsafe_get planes o0)
    and ih = ref (Array.unsafe_get planes (o0 + 1))
    and fl = ref (Array.unsafe_get planes (o0 + 2))
    and fh = ref (Array.unsafe_get planes (o0 + 3)) in
    (match Array.unsafe_get t.op gi with
    | 0 ->
      for j = 1 to ni - 1 do
        let o = Array.unsafe_get ins j * 4 in
        il := !il land Array.unsafe_get planes o;
        ih := !ih land Array.unsafe_get planes (o + 1);
        fl := !fl land Array.unsafe_get planes (o + 2);
        fh := !fh land Array.unsafe_get planes (o + 3)
      done
    | 1 ->
      for j = 1 to ni - 1 do
        let o = Array.unsafe_get ins j * 4 in
        il := !il lor Array.unsafe_get planes o;
        ih := !ih lor Array.unsafe_get planes (o + 1);
        fl := !fl lor Array.unsafe_get planes (o + 2);
        fh := !fh lor Array.unsafe_get planes (o + 3)
      done
    | _ ->
      for j = 1 to ni - 1 do
        let o = Array.unsafe_get ins j * 4 in
        il := !il lxor Array.unsafe_get planes o;
        ih := !ih lxor Array.unsafe_get planes (o + 1);
        fl := !fl lxor Array.unsafe_get planes (o + 2);
        fh := !fh lxor Array.unsafe_get planes (o + 3)
      done);
    if Array.unsafe_get t.invert gi then begin
      il := lnot !il land mask32;
      ih := lnot !ih land mask32;
      fl := lnot !fl land mask32;
      fh := lnot !fh land mask32
    end;
    let p = gout * 4 in
    planes.(p) <- !il;
    planes.(p + 1) <- !ih;
    planes.(p + 2) <- !fl;
    planes.(p + 3) <- !fh;
    let tr_lo = (!il lxor !fl) land act_lo and tr_hi = (!ih lxor !fh) land act_hi in
    if tr_lo lor tr_hi <> 0 then begin
      (* MIN-rule lanes: transitioning lanes whose final output level is
         the gate's controlled value (Timing_rule.for_output) *)
      let min_lo, min_hi =
        match Array.unsafe_get t.ctrl gi with
        | -1 -> (0, 0)
        | 1 -> (tr_lo land !fl, tr_hi land !fh)
        | _ -> (tr_lo land lnot !fl, tr_hi land lnot !fh)
      in
      for j = 0 to ni - 1 do
        let o = Array.unsafe_get ins j * 4 in
        Array.unsafe_set itrans_lo j
          (Array.unsafe_get planes o lxor Array.unsafe_get planes (o + 2));
        Array.unsafe_set itrans_hi j
          (Array.unsafe_get planes (o + 1) lxor Array.unsafe_get planes (o + 3))
      done;
      let gbase = gout * 64 in
      if tr_lo <> 0 then
        timing_half t ins ni tr_lo min_lo 0 itrans_lo gate_delay have_sigma mis gbase;
      if tr_hi <> 0 then
        timing_half t ins ni tr_hi min_hi 32 itrans_hi gate_delay have_sigma mis (gbase + 32)
    end
  done

let check_lane t lane =
  if lane < 0 || lane >= t.nlanes then
    invalid_arg
      (Printf.sprintf "Packed_sim: lane %d outside the %d lanes of the last run" lane t.nlanes)

let planes t id =
  let p = id * 4 in
  let join lo hi =
    Int64.logor (Int64.of_int (t.planes.(p + lo) land mask32))
      (Int64.shift_left (Int64.of_int (t.planes.(p + hi) land mask32)) 32)
  in
  { Packed_value4.init = join 0 1; fin = join 2 3 }

let lane_value t id ~lane =
  check_lane t lane;
  let p = id * 4 in
  let half = if lane < 32 then 0 else 1 in
  let b = 1 lsl (lane land 31) in
  Value4.of_initial_final (t.planes.(p + half) land b <> 0) (t.planes.(p + 2 + half) land b <> 0)

let lane_time t id ~lane =
  check_lane t lane;
  let v = lane_value t id ~lane in
  if Value4.is_transition v then t.times.((id * 64) + lane) else 0.0

let raw_planes t = t.planes
let raw_times t = t.times
