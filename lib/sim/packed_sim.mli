(** Bit-parallel four-value logic-and-timing simulation: one call to
    {!run} propagates up to 64 independent Monte Carlo trials (lanes)
    through the whole circuit, using {!Packed_value4} plane semantics
    for the symbols and mask-selected per-lane min/max blends for the
    arrival times.

    Lane [l] of a run reproduces exactly — bit for bit on the symbol,
    float for float on the arrival time — what
    {!Logic_sim.run_random} would compute with generator [rngs.(l)]:
    the per-lane draw order (gate-delay gaussians for every net when
    [delay_sigma > 0], then the sources in [Circuit.sources] order),
    the {!Spsta_logic.Timing_rule} MIN/MAX winner selection, and the
    MIS delay factors are all replicated.  The scalar simulator is the
    oracle; this engine is the fast path. *)

type t
(** Reusable simulation state for one circuit: the gate program plus
    plane/time buffers.  Not safe for concurrent use; give each domain
    its own. *)

val create : Spsta_netlist.Circuit.t -> t

val circuit : t -> Spsta_netlist.Circuit.t

val run :
  ?gate_delay:float ->
  ?delay_sigma:float ->
  ?mis:Spsta_logic.Mis_model.t ->
  t ->
  rngs:Spsta_util.Rng.t array ->
  spec:(Spsta_netlist.Circuit.id -> Input_spec.t) ->
  unit
(** Simulate one block of [Array.length rngs] trials (1..64); lane [l]
    draws from [rngs.(l)], which is advanced in place.  Defaults match
    {!Logic_sim.run_random}: [gate_delay] 1.0, [delay_sigma] 0.
    [spec] is assumed pure (it is consulted once per source per call,
    not once per lane).  Raises [Invalid_argument] on an empty or
    oversized [rngs]. *)

val lanes_used : t -> int
(** Number of lanes of the most recent {!run} (0 before any). *)

val active : t -> int64
(** Mask of the lanes of the most recent run: bits [0 .. lanes_used-1]. *)

val planes : t -> Spsta_netlist.Circuit.id -> Packed_value4.t
(** Packed symbol planes of a net after {!run}.  Lanes at or beyond
    {!lanes_used} are unspecified; mask with {!active}. *)

val lane_value : t -> Spsta_netlist.Circuit.id -> lane:int -> Spsta_logic.Value4.t
(** Net symbol in one lane of the last run; raises [Invalid_argument]
    for lanes at or beyond {!lanes_used}. *)

val lane_time : t -> Spsta_netlist.Circuit.id -> lane:int -> float
(** Net arrival time in one lane of the last run: the transition time
    for Rising/Falling lanes and 0.0 for steady lanes, exactly like the
    [times] array of {!Logic_sim.run}. *)

(** {2 Raw accumulation interface}

    Zero-copy views for the Monte Carlo accumulator; read-only, valid
    until the next {!run}, layout subject to change. *)

val raw_planes : t -> int array
(** Planes as native 32-lane halves, 4 words per net:
    [4*net] initial lanes 0-31, [4*net+1] initial lanes 32-63,
    [4*net+2] final lanes 0-31, [4*net+3] final lanes 32-63.  Lanes at
    or beyond {!lanes_used} are unspecified. *)

val raw_times : t -> float array
(** Arrival times, lane-major: [64*net + lane].  Meaningful only where
    the lane is active and the net transitions in that lane. *)
