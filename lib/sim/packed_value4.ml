module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind

type t = { init : int64; fin : int64 }

let lanes = 64

let broadcast v =
  let full b = if b then -1L else 0L in
  { init = full (Value4.initial v); fin = full (Value4.final v) }

let zero = broadcast Value4.Zero

let pack vs =
  let n = Array.length vs in
  if n > lanes then invalid_arg "Packed_value4.pack: more than 64 lanes";
  let init = ref 0L and fin = ref 0L in
  for l = 0 to n - 1 do
    let v = vs.(l) in
    if Value4.initial v then init := Int64.logor !init (Int64.shift_left 1L l);
    if Value4.final v then fin := Int64.logor !fin (Int64.shift_left 1L l)
  done;
  { init = !init; fin = !fin }

let get t lane =
  if lane < 0 || lane >= lanes then invalid_arg "Packed_value4.get: lane out of range";
  let bit p = Int64.logand (Int64.shift_right_logical p lane) 1L = 1L in
  Value4.of_initial_final (bit t.init) (bit t.fin)

let unpack t = Array.init lanes (get t)

let lnot t = { init = Int64.lognot t.init; fin = Int64.lognot t.fin }
let land2 a b = { init = Int64.logand a.init b.init; fin = Int64.logand a.fin b.fin }
let lor2 a b = { init = Int64.logor a.init b.init; fin = Int64.logor a.fin b.fin }
let lxor2 a b = { init = Int64.logxor a.init b.init; fin = Int64.logxor a.fin b.fin }

(* arity rules identical to Gate_kind.check_arity, over an array *)
let check_arity kind n =
  if n < Gate_kind.min_arity kind then
    invalid_arg
      (Printf.sprintf "Packed_value4.eval: %s needs >= %d inputs, got %d"
         (Gate_kind.to_string kind) (Gate_kind.min_arity kind) n);
  match Gate_kind.max_arity kind with
  | Some m when n > m ->
    invalid_arg
      (Printf.sprintf "Packed_value4.eval: %s needs <= %d inputs, got %d"
         (Gate_kind.to_string kind) m n)
  | Some _ | None -> ()

let eval kind inputs =
  let n = Array.length inputs in
  check_arity kind n;
  let op =
    match Gate_kind.plane_op kind with
    | Gate_kind.Op_and -> land2
    | Gate_kind.Op_or -> lor2
    | Gate_kind.Op_xor -> lxor2
  in
  let acc = ref inputs.(0) in
  for i = 1 to n - 1 do
    acc := op !acc inputs.(i)
  done;
  if Gate_kind.inverting kind then lnot !acc else !acc

let transition_mask t = Int64.logxor t.init t.fin
let rise_mask t = Int64.logand (Int64.lognot t.init) t.fin
let fall_mask t = Int64.logand t.init (Int64.lognot t.fin)
let one_mask t = Int64.logand t.init t.fin
let zero_mask t = Int64.lognot (Int64.logor t.init t.fin)

let popcount x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let equal a b = Int64.equal a.init b.init && Int64.equal a.fin b.fin

let pp fmt t =
  for l = 0 to lanes - 1 do
    Format.pp_print_string fmt (Value4.to_string (get t l))
  done
