(** 64-lane bit-sliced four-value vectors: one {!Spsta_logic.Value4.t}
    per lane, stored as two 64-bit planes.

    Bit [l] of [init] is the lane-[l] start-of-cycle level and bit [l] of
    [fin] its end-of-cycle level, so the encoding is Zero = (0,0),
    One = (1,1), Rising = (0,1), Falling = (1,0).  Because the no-glitch
    semantics evaluate the two levels independently
    ({!Spsta_logic.Value4.lift2}), any gate evaluates over all 64 lanes
    with one bitwise fold per plane ({!Spsta_logic.Gate_kind.plane_op})
    plus a complement for inverting kinds — 64 Monte Carlo trials per
    gate evaluation. *)

type t = { init : int64; fin : int64 }

val lanes : int
(** 64. *)

val broadcast : Spsta_logic.Value4.t -> t
(** All 64 lanes set to the given symbol. *)

val zero : t
(** [broadcast Zero]. *)

val pack : Spsta_logic.Value4.t array -> t
(** [pack vs] puts [vs.(l)] in lane [l]; missing lanes (length < 64) are
    Zero.  Raises [Invalid_argument] beyond 64 elements. *)

val get : t -> int -> Spsta_logic.Value4.t
(** [get t l] is lane [l] (0..63); raises [Invalid_argument] outside. *)

val unpack : t -> Spsta_logic.Value4.t array
(** All 64 lanes, [get t 0 .. get t 63]. *)

val lnot : t -> t
val land2 : t -> t -> t
val lor2 : t -> t -> t
val lxor2 : t -> t -> t
(** Lane-wise four-value connectives, equal to
    {!Spsta_logic.Value4.lnot} etc. per lane. *)

val eval : Spsta_logic.Gate_kind.t -> t array -> t
(** Lane-wise {!Spsta_logic.Gate_kind.eval4}: a fold of the kind's
    {!Spsta_logic.Gate_kind.plane_op} over the inputs, complemented for
    inverting kinds.  Raises [Invalid_argument] on arity violations,
    mirroring [eval4]. *)

val transition_mask : t -> int64
(** Bit [l] set iff lane [l] is Rising or Falling. *)

val rise_mask : t -> int64
val fall_mask : t -> int64
val one_mask : t -> int64
val zero_mask : t -> int64

val popcount : int64 -> int
(** Number of set bits (branch-free SWAR); turns masks into counts. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** 64 symbol characters, lane 0 first. *)
