module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Value4 = Spsta_logic.Value4
module Gate_kind = Spsta_logic.Gate_kind
module Timing_rule = Spsta_logic.Timing_rule
module Input_spec = Spsta_sim.Input_spec

module Make (B : Top.BACKEND) = struct
  type signal = { probs : Four_value.t; rise : B.top; fall : B.top }

  let source_signal (spec : Input_spec.t) =
    {
      probs = Four_value.of_input_spec spec;
      rise = B.of_normal ~weight:spec.Input_spec.p_rise spec.Input_spec.rise_arrival;
      fall = B.of_normal ~weight:spec.Input_spec.p_fall spec.Input_spec.fall_arrival;
    }

  (* The base, non-inverting associative kind of each gate; inversion is
     applied afterwards by swapping 0/1 and rise/fall. *)
  let base_kind = function
    | Gate_kind.And | Gate_kind.Nand -> Gate_kind.And
    | Gate_kind.Or | Gate_kind.Nor -> Gate_kind.Or
    | Gate_kind.Xor | Gate_kind.Xnor -> Gate_kind.Xor
    | Gate_kind.Not | Gate_kind.Buf -> Gate_kind.Buf

  let invert_signal s =
    {
      probs =
        Four_value.make ~p_zero:s.probs.Four_value.p_one ~p_one:s.probs.Four_value.p_zero
          ~p_rise:s.probs.Four_value.p_fall ~p_fall:s.probs.Four_value.p_rise;
      rise = s.fall;
      fall = s.rise;
    }

  let normalised top =
    let w = B.total top in
    if w > 0.0 then B.scale top (1.0 /. w) else top

  (* Eq. 11 generalised: enumerate input four-value combinations, weight
     each by the product of input probabilities, and combine the arrival
     pdfs of the transitioning inputs under the gate's MIN/MAX rule.
     [extra_term_delay rule out k] shifts a term decided by [k]
     switching inputs (the multiple-input-switching correction). *)
  let enumerate_gate ?extra_term_delay kind (inputs : signal array) =
    let k = Array.length inputs in
    let norm_rise = Array.map (fun s -> normalised s.rise) inputs in
    let norm_fall = Array.map (fun s -> normalised s.fall) inputs in
    let p_zero = ref 0.0 and p_one = ref 0.0 in
    (* in-place WEIGHTED SUM accumulation: one buffer per direction
       reused across the up-to-4^k enumerated terms *)
    let rise_acc = B.Acc.create () and fall_acc = B.Acc.create () in
    let rise_mass = ref 0.0 and fall_mass = ref 0.0 in
    let values = Array.make k Value4.Zero in
    let rec go i weight =
      if weight <= 0.0 then ()
      else if i = k then begin
        let out = Gate_kind.eval4 kind (Array.to_list values) in
        match out with
        | Value4.Zero -> p_zero := !p_zero +. weight
        | Value4.One -> p_one := !p_one +. weight
        | Value4.Rising | Value4.Falling ->
          let rule = Timing_rule.for_output kind out in
          let tops = ref [] in
          for j = k - 1 downto 0 do
            match values.(j) with
            | Value4.Rising -> tops := norm_rise.(j) :: !tops
            | Value4.Falling -> tops := norm_fall.(j) :: !tops
            | Value4.Zero | Value4.One -> ()
          done;
          (* a transition probability can be positive while its t.o.p.
             was epsilon-truncated to zero mass (weights ~1e-16 on deep
             circuits); such branches carry negligible weight — drop
             them and let the closing renormalisation absorb it *)
          if List.exists (fun top -> B.total top <= 0.0) !tops then ()
          else begin
          let combined = B.combine rule !tops in
          let combined =
            match extra_term_delay with
            | None -> combined
            | Some f ->
              let extra = f rule out (List.length !tops) in
              if extra = 0.0 then combined else B.shift combined extra
          in
          let contribution = B.scale combined weight in
          ( match out with
          | Value4.Rising ->
            B.Acc.add rise_acc contribution;
            rise_mass := !rise_mass +. weight
          | Value4.Falling ->
            B.Acc.add fall_acc contribution;
            fall_mass := !fall_mass +. weight
          | Value4.Zero | Value4.One -> assert false )
          end
      end
      else begin
        let dist = inputs.(i).probs in
        let branch v =
          let p = Four_value.prob dist v in
          if p > 0.0 then begin
            values.(i) <- v;
            go (i + 1) (weight *. p)
          end
        in
        List.iter branch Value4.all
      end
    in
    go 0 1.0;
    let total = !p_zero +. !p_one +. !rise_mass +. !fall_mass in
    let probs =
      Four_value.make ~p_zero:(!p_zero /. total) ~p_one:(!p_one /. total)
        ~p_rise:(!rise_mass /. total) ~p_fall:(!fall_mass /. total)
    in
    { probs; rise = B.compact (B.Acc.to_top rise_acc); fall = B.compact (B.Acc.to_top fall_acc) }

  let shift_signal s (d_rise, d_fall) sigma =
    if sigma > 0.0 then
      { s with
        rise = B.convolve_normal s.rise (Spsta_dist.Normal.make ~mu:d_rise ~sigma);
        fall = B.convolve_normal s.fall (Spsta_dist.Normal.make ~mu:d_fall ~sigma) }
    else
      { s with
        rise = (if d_rise = 0.0 then s.rise else B.shift s.rise d_rise);
        fall = (if d_fall = 0.0 then s.fall else B.shift s.fall d_fall) }

  let gate_output ?(gate_delay = 1.0) ?gate_delay_rf ?(delay_sigma = 0.0) ?mis
      ?(max_enumerated_fanin = 6) kind inputs =
    if inputs = [] then invalid_arg "Analyzer.gate_output: no inputs";
    let base = base_kind kind in
    let inputs = Array.of_list inputs in
    let delays =
      match gate_delay_rf with Some rf -> rf | None -> (gate_delay, gate_delay)
    in
    let extra_term_delay =
      (* MIS: a term decided by k simultaneous switching inputs gets its
         direction's delay scaled; the base enumeration's output
         direction maps to the inverted one for NAND/NOR/XNOR *)
      match mis with
      | None -> None
      | Some model ->
        let d_rise, d_fall = delays in
        Some
          (fun rule out k ->
            let final_out = if Gate_kind.inverting kind then Value4.lnot out else out in
            let d =
              match final_out with
              | Value4.Rising -> d_rise
              | Value4.Falling -> d_fall
              | Value4.Zero | Value4.One -> 0.0
            in
            d *. (Spsta_logic.Mis_model.factor model rule ~simultaneous:k -. 1.0))
    in
    let combined =
      match base with
      | Gate_kind.Buf -> inputs.(0)
      | Gate_kind.And | Gate_kind.Or | Gate_kind.Xor ->
        if Array.length inputs <= max_enumerated_fanin then
          enumerate_gate ?extra_term_delay base inputs
        else
          (* pairwise fold over the associative base kind (exact under
             the same input-independence assumption; MIS sees at most
             pairwise simultaneity on this path) *)
          Array.fold_left
            (fun acc s ->
              match acc with
              | None -> Some s
              | Some a -> Some (enumerate_gate ?extra_term_delay base [| a; s |]))
            None inputs
          |> Option.get
      | Gate_kind.Nand | Gate_kind.Nor | Gate_kind.Xnor | Gate_kind.Not -> assert false
    in
    let combined = if Gate_kind.inverting kind then invert_signal combined else combined in
    shift_signal combined delays delay_sigma

  type result = signal Propagate.result

  (* Sanitizer checker: validates every per-net signal the engine
     produces.  The four-value probabilities must be a distribution, each
     direction's t.o.p. must be internally healthy (finite, non-negative,
     sub-unit mass), and its total mass must match the transition
     probability up to the representation's own tracked truncation bound
     plus enumeration slack: branches whose t.o.p. was epsilon-truncated
     to zero mass still count toward the probability but not the mass. *)
  let signal_check : signal Propagate.Sanitize.check =
    fun _circuit _id s ->
    let open Spsta_lint.Invariant in
    let direction label p top =
      match B.check ~what:(label ^ " t.o.p.") top with
      | Some _ as violation -> violation
      | None ->
        first
          (check_mass_conservation
             ~what:(label ^ " t.o.p. mass")
             ~expected:p ~total:(B.total top) ~dropped:(B.dropped top))
    in
    match
      first
        (check_prob_sum ~what:"four-value probability"
           [
             ("p_zero", s.probs.Four_value.p_zero);
             ("p_one", s.probs.Four_value.p_one);
             ("p_rise", s.probs.Four_value.p_rise);
             ("p_fall", s.probs.Four_value.p_fall);
           ])
    with
    | Some _ as violation -> violation
    | None -> (
      match direction "rise" s.probs.Four_value.p_rise s.rise with
      | Some _ as violation -> violation
      | None -> direction "fall" s.probs.Four_value.p_fall s.fall )

  let domain ~spec eval : (module Propagate.DOMAIN with type state = signal) =
    (module struct
      type state = signal

      let source s = source_signal (spec s)
      let eval = eval
    end)

  let checked_domain ?check circuit dom =
    if Propagate.Sanitize.resolve check then
      Propagate.Sanitize.wrap ~circuit ~check:signal_check dom
    else dom

  (* The engine's per-gate transfer function, closed over the per-call
     parameters: a pure function of the gate's operand signals, which is
     what makes the engine's parallel schedule bit-identical to the
     sequential sweep. *)
  let gate_eval ?gate_delay ?delay_sigma ?delay_of ?delay_rf ?mis ?max_enumerated_fanin () =
    fun _circuit g driver operands ->
      match driver with
      | Circuit.Gate { kind; _ } ->
        let gate_delay = match delay_of with Some f -> Some (f g) | None -> gate_delay in
        let gate_delay_rf = Option.map (fun f -> f g) delay_rf in
        gate_output ?gate_delay ?gate_delay_rf ?delay_sigma ?mis ?max_enumerated_fanin kind
          (Array.to_list operands)
      | Circuit.Input | Circuit.Dff_output _ -> assert false

  let analyze ?gate_delay ?delay_sigma ?delay_of ?delay_rf ?mis ?max_enumerated_fanin ?check
      ?domains ?instrument circuit ~spec =
    let eval = gate_eval ?gate_delay ?delay_sigma ?delay_of ?delay_rf ?mis ?max_enumerated_fanin () in
    let module D = (val checked_domain ?check circuit (domain ~spec eval)) in
    let module E = Propagate.Make (D) in
    E.run ?domains ?instrument circuit

  let circuit (r : result) = r.Propagate.circuit
  let signal (r : result) id = r.Propagate.per_net.(id)

  let update ?gate_delay ?delay_sigma ?delay_of ?delay_rf ?mis ?max_enumerated_fanin ?check r
      ~changed ~spec =
    let eval = gate_eval ?gate_delay ?delay_sigma ?delay_of ?delay_rf ?mis ?max_enumerated_fanin () in
    let module D =
      (val checked_domain ?check r.Propagate.circuit (domain ~spec eval))
    in
    let module E = Propagate.Make (D) in
    E.update r ~changed

  let direction_top s = function `Rise -> s.rise | `Fall -> s.fall

  let transition_stats s direction =
    let top = direction_top s direction in
    (B.mean top, B.stddev top, B.total top)

  let critical_endpoint (r : result) direction =
    match Circuit.endpoints r.circuit with
    | [] -> invalid_arg "Analyzer.critical_endpoint: circuit has no endpoints"
    | (first :: _ as endpoints) ->
      let transitioning =
        List.filter (fun e -> B.total (direction_top r.per_net.(e) direction) > 0.0) endpoints
      in
      ( match transitioning with
      | [] ->
        List.fold_left
          (fun best e ->
            if Circuit.level r.circuit e > Circuit.level r.circuit best then e else best)
          first endpoints
      | e0 :: rest ->
        List.fold_left
          (fun best e ->
            let mean_of x = B.mean (direction_top r.per_net.(x) direction) in
            if mean_of e > mean_of best then e else best)
          e0 rest )
end

module Moments = Make (Top.Moment_backend)
