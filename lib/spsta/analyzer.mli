(** The SPSTA engine (paper §3): propagates four-value signal
    probabilities and transition t.o.p. functions through a netlist in
    one topological traversal, replacing SSTA's unconditional MIN/MAX
    with the WEIGHTED SUM over input-value combinations (eq. 8/11), with
    MIN/MAX applied only inside multiple-input-switching terms.

    The engine is a functor over the t.o.p. representation; see {!Top}. *)

module Make (B : Top.BACKEND) : sig
  type signal = {
    probs : Four_value.t;
    rise : B.top;  (** total mass = probs.p_rise *)
    fall : B.top;  (** total mass = probs.p_fall *)
  }

  val source_signal : Spsta_sim.Input_spec.t -> signal
  (** The signal of a timing source under the given input statistics. *)

  val gate_output :
    ?gate_delay:float ->
    ?gate_delay_rf:float * float ->
    ?delay_sigma:float ->
    ?mis:Spsta_logic.Mis_model.t ->
    ?max_enumerated_fanin:int ->
    Spsta_logic.Gate_kind.t ->
    signal list ->
    signal
  (** One gate step (exposed for unit tests and the Fig. 4 bench).
      Inputs are treated as independent.  Fan-ins above
      [max_enumerated_fanin] (default 6) are folded pairwise over the
      gate's base associative kind, which is exact under the same
      independence assumption.  [gate_delay] defaults to 1.0;
      [gate_delay_rf] supplies direction-dependent (rise, fall) delays
      and overrides it; a positive [delay_sigma] models process
      variation as an independent normal delay per gate (default 0). *)

  type result

  val analyze :
    ?gate_delay:float ->
    ?delay_sigma:float ->
    ?delay_of:(Spsta_netlist.Circuit.id -> float) ->
    ?delay_rf:(Spsta_netlist.Circuit.id -> float * float) ->
    ?mis:Spsta_logic.Mis_model.t ->
    ?max_enumerated_fanin:int ->
    ?check:bool ->
    ?domains:int ->
    ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
    Spsta_netlist.Circuit.t ->
    spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
    result
  (** [delay_of] overrides the deterministic delay per gate (e.g. a
      wire-load model); [delay_rf] gives direction-dependent (rise,
      fall) delays (e.g. {!Spsta_netlist.Cell_library.gate_delays}) and
      takes precedence; [delay_sigma] applies on top of either.

      [domains] (default 1: fully sequential) evaluates each logic
      level's gates concurrently across that many OCaml domains via
      {!Spsta_engine.Propagate}.  Gates within a level never feed each
      other and each gate step is a pure function of its operands, so
      the result is bit-identical to the sequential traversal at every
      domain count.  Raises [Invalid_argument] if [domains < 1].

      [instrument] receives per-level gate counts and wall-clock timings
      (see {!Spsta_engine.Propagate.level_stat}).

      [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
      verifies every per-net signal the engine produces — four-value
      probabilities forming a distribution, t.o.p. masses non-negative
      and conserved up to the backend's tracked truncation bound, finite
      moments — raising {!Spsta_engine.Propagate.Sanitize.Violation}
      naming the circuit, net, gate kind and level on the first
      violation.  When off, no wrapper is installed and results are
      bit-identical to a run without the feature. *)

  val circuit : result -> Spsta_netlist.Circuit.t
  val signal : result -> Spsta_netlist.Circuit.id -> signal

  val update :
    ?gate_delay:float ->
    ?delay_sigma:float ->
    ?delay_of:(Spsta_netlist.Circuit.id -> float) ->
    ?delay_rf:(Spsta_netlist.Circuit.id -> float * float) ->
    ?mis:Spsta_logic.Mis_model.t ->
    ?max_enumerated_fanin:int ->
    ?check:bool ->
    result ->
    changed:Spsta_netlist.Circuit.id list ->
    spec:(Spsta_netlist.Circuit.id -> Spsta_sim.Input_spec.t) ->
    result
  (** Incremental re-analysis (the block-based property the paper's
      intro highlights): recompute only the fanout cones of the
      [changed] nets — e.g. sources whose statistics changed, or gates
      whose delay model changed.  The result is identical to a full
      {!analyze} under the new parameters provided everything outside
      the cones is unchanged.  The input [result] is not mutated. *)

  val critical_endpoint : result -> [ `Rise | `Fall ] -> Spsta_netlist.Circuit.id
  (** Endpoint with the largest normalised mean arrival in the given
      direction among endpoints whose transition probability is nonzero
      (falls back to the deepest endpoint if none transitions).
      Raises [Invalid_argument] if the circuit has no endpoints. *)

  val transition_stats : signal -> [ `Rise | `Fall ] -> float * float * float
  (** (mean, stddev, occurrence probability) of the chosen transition. *)
end

module Moments : module type of Make (Top.Moment_backend)
(** The default moment/mixture instantiation. *)
